package repro

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// TestAllocsSessionSetup pins the allocation cost of one full session
// establishment cycle — Open anycast, server-side session start, session
// group join, a second of streaming, graceful stop — once the pools on both
// sides are warm. The per-frame path is pinned at zero elsewhere; this pin
// covers the per-session path the capacity experiments exercise a thousand
// times per run: pooled server sessions, pooled open/reply events, the
// reused client pipeline and policy. The budget is deliberately loose (the
// cycle includes GCS view changes, whose coordination messages still
// allocate) — it exists to catch order-of-magnitude regressions such as a
// per-incarnation reallocation sneaking back in, not to enforce zero.
func TestAllocsSessionSetup(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1, netsim.LAN())

	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 5 * time.Second, Seed: 1})
	cat := store.NewCatalog()
	cat.Add(movie)
	srv, err := server.New(server.Config{
		ID:      "server-1",
		Clock:   clk,
		Network: net,
		Catalog: cat,
		Peers:   []string{"server-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(500 * time.Millisecond)

	c, err := client.New(client.Config{
		ID:      "viewer-1",
		Clock:   clk,
		Network: net,
		Servers: []string{"server-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cycle := func() {
		if err := c.Watch("feature"); err != nil {
			t.Fatal(err)
		}
		clk.Advance(1 * time.Second)
		if st := c.State(); st != client.StateWatching {
			t.Fatalf("after open: state %v, want watching", st)
		}
		if err := c.StopWatching(); err != nil {
			t.Fatal(err)
		}
		// Let the server observe the stop, retire the session, and let
		// GCS stability garbage-collect the cycle's retained messages so
		// their buffers return to the pools.
		clk.Advance(2 * time.Second)
	}

	for i := 0; i < 8; i++ { // warm every pool on both sides
		cycle()
	}
	allocs := testing.AllocsPerRun(16, cycle)

	// A warm cycle measures ≈260 allocs (mostly view-change coordination);
	// the budget leaves ~2× headroom for toolchain drift while still
	// catching any per-incarnation reallocation of session state.
	const budget = 600
	if allocs > budget {
		t.Fatalf("session setup cycle = %v allocs, budget %d", allocs, budget)
	}
	t.Logf("session setup cycle = %v allocs (budget %d)", allocs, budget)
}

// TestAllocsShapedStreaming pins the frame egress path with the full
// traffic-class ladder engaged: token-bucket shaping (with active
// shedding), best-effort quality degradation, and a reserved stream
// overdrafting the bucket. A warm simulated second moves hundreds of
// frames and sheds hundreds of tokens, so a single allocation anywhere on
// the shaped per-frame path would blow the budget by an order of
// magnitude; the budget itself only absorbs the periodic session-sync and
// starvation-reopen traffic, which allocated exactly the same before the
// shaper existed (~35/s measured, shaped or not).
func TestAllocsShapedStreaming(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1, netsim.LAN())
	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 10 * time.Minute, Seed: 1})
	cat := store.NewCatalog()
	cat.Add(movie)
	srv, err := server.New(server.Config{
		ID:      "server-1",
		Clock:   clk,
		Network: net,
		Catalog: cat,
		Peers:   []string{"server-1"},
		Overload: server.OverloadConfig{
			// Below the two streams' joint demand, so the bucket runs dry
			// and best-effort frames are repeatedly shed and retried, while
			// leaving enough residual rate that the degraded stream still
			// moves (thinning stays active too).
			ShapeRate:       200_000,
			DegradeSessions: 1,
			DegradeFPS:      10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(500 * time.Millisecond)

	for _, v := range []struct {
		id    string
		class wire.Class
	}{{"res-1", wire.ClassReserved}, {"be-1", wire.ClassBestEffort}} {
		c, err := client.New(client.Config{
			ID:      v.id,
			Clock:   clk,
			Network: net,
			Servers: []string{"server-1"},
			Class:   v.class,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Watch("feature"); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(15 * time.Second) // warm pools, engage the ladder

	before := srv.Stats()
	allocs := testing.AllocsPerRun(10, func() { clk.Advance(time.Second) })
	after := srv.Stats()
	if after.ShedTokens == before.ShedTokens || after.DegradedFrames == before.DegradedFrames {
		t.Fatalf("ladder idle during measurement: shed %d→%d degraded %d→%d",
			before.ShedTokens, after.ShedTokens, before.DegradedFrames, after.DegradedFrames)
	}

	const budget = 120
	if allocs > budget {
		t.Fatalf("shaped streaming = %v allocs per simulated second, budget %d", allocs, budget)
	}
	t.Logf("shaped streaming = %v allocs per simulated second (budget %d)", allocs, budget)
}
