package repro

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
)

// TestAllocsSessionSetup pins the allocation cost of one full session
// establishment cycle — Open anycast, server-side session start, session
// group join, a second of streaming, graceful stop — once the pools on both
// sides are warm. The per-frame path is pinned at zero elsewhere; this pin
// covers the per-session path the capacity experiments exercise a thousand
// times per run: pooled server sessions, pooled open/reply events, the
// reused client pipeline and policy. The budget is deliberately loose (the
// cycle includes GCS view changes, whose coordination messages still
// allocate) — it exists to catch order-of-magnitude regressions such as a
// per-incarnation reallocation sneaking back in, not to enforce zero.
func TestAllocsSessionSetup(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1, netsim.LAN())

	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 5 * time.Second, Seed: 1})
	cat := store.NewCatalog()
	cat.Add(movie)
	srv, err := server.New(server.Config{
		ID:      "server-1",
		Clock:   clk,
		Network: net,
		Catalog: cat,
		Peers:   []string{"server-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(500 * time.Millisecond)

	c, err := client.New(client.Config{
		ID:      "viewer-1",
		Clock:   clk,
		Network: net,
		Servers: []string{"server-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cycle := func() {
		if err := c.Watch("feature"); err != nil {
			t.Fatal(err)
		}
		clk.Advance(1 * time.Second)
		if st := c.State(); st != client.StateWatching {
			t.Fatalf("after open: state %v, want watching", st)
		}
		if err := c.StopWatching(); err != nil {
			t.Fatal(err)
		}
		// Let the server observe the stop, retire the session, and let
		// GCS stability garbage-collect the cycle's retained messages so
		// their buffers return to the pools.
		clk.Advance(2 * time.Second)
	}

	for i := 0; i < 8; i++ { // warm every pool on both sides
		cycle()
	}
	allocs := testing.AllocsPerRun(16, cycle)

	// A warm cycle measures ≈260 allocs (mostly view-change coordination);
	// the budget leaves ~2× headroom for toolchain drift while still
	// catching any per-incarnation reallocation of session state.
	const budget = 600
	if allocs > budget {
		t.Fatalf("session setup cycle = %v allocs, budget %d", allocs, budget)
	}
	t.Logf("session setup cycle = %v allocs (budget %d)", allocs, budget)
}
