// Package metrics provides the time-series collection the experiment
// harness uses to regenerate the paper's figures: each figure is one or
// more named series sampled on the simulation clock.
package metrics

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Series is a named time series: (elapsed time, value) samples in
// append order.
type Series struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// NewSeries returns an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Last returns the final value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// At returns the value of the latest sample at or before t (0 if none).
func (s *Series) At(t time.Duration) float64 {
	v := 0.0
	for i, st := range s.Times {
		if st > t {
			break
		}
		v = s.Values[i]
	}
	return v
}

// Max returns the largest value (0 for an empty series).
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the smallest value (0 for an empty series).
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// MeanBetween averages the samples with from ≤ t < to; 0 if none.
func (s *Series) MeanBetween(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for i, t := range s.Times {
		if t >= from && t < to {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MinBetween returns the smallest sample with from ≤ t < to (0 if none).
func (s *Series) MinBetween(from, to time.Duration) float64 {
	min := math.Inf(1)
	for i, t := range s.Times {
		if t >= from && t < to && s.Values[i] < min {
			min = s.Values[i]
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// MaxBetween returns the largest sample with from ≤ t < to (0 if none).
func (s *Series) MaxBetween(from, to time.Duration) float64 {
	max := math.Inf(-1)
	for i, t := range s.Times {
		if t >= from && t < to && s.Values[i] > max {
			max = s.Values[i]
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Delta returns Last − At(from): the growth of a cumulative series after
// the given instant.
func (s *Series) Delta(from time.Duration) float64 { return s.Last() - s.At(from) }

// WriteTSV writes "seconds<TAB>value" rows — the format vodbench prints so
// each figure can be re-plotted.
func (s *Series) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Name); err != nil {
		return err
	}
	for i := range s.Times {
		if _, err := fmt.Fprintf(w, "%.2f\t%g\n", s.Times[i].Seconds(), s.Values[i]); err != nil {
			return err
		}
	}
	return nil
}
