// Package metrics provides the time-series collection the experiment
// harness uses to regenerate the paper's figures: each figure is one or
// more named series sampled on the simulation clock.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Series is a named time series: (elapsed time, value) samples kept
// sorted by time. The sampler appends in clock order, so Add is O(1) in
// the common case; an out-of-order sample is insert-sorted to preserve
// the invariant the binary-search accessors rely on.
type Series struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// NewSeries returns an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add inserts a sample, keeping Times sorted.
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Times); n == 0 || s.Times[n-1] <= t {
		s.Times = append(s.Times, t)
		s.Values = append(s.Values, v)
		return
	}
	i := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t })
	s.Times = append(s.Times, 0)
	s.Values = append(s.Values, 0)
	copy(s.Times[i+1:], s.Times[i:])
	copy(s.Values[i+1:], s.Values[i:])
	s.Times[i] = t
	s.Values[i] = v
}

// searchAfter returns the index of the first sample with time > t.
func (s *Series) searchAfter(t time.Duration) int {
	return sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t })
}

// searchAtOrAfter returns the index of the first sample with time ≥ t.
func (s *Series) searchAtOrAfter(t time.Duration) int {
	return sort.Search(len(s.Times), func(i int) bool { return s.Times[i] >= t })
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Last returns the final value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// At returns the value of the latest sample at or before t (0 if none).
func (s *Series) At(t time.Duration) float64 {
	i := s.searchAfter(t)
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// Max returns the largest value (0 for an empty series).
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the smallest value (0 for an empty series).
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// MeanBetween averages the samples with from ≤ t < to; 0 if none.
func (s *Series) MeanBetween(from, to time.Duration) float64 {
	lo, hi := s.searchAtOrAfter(from), s.searchAtOrAfter(to)
	if lo >= hi {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// MinBetween returns the smallest sample with from ≤ t < to (0 if none).
func (s *Series) MinBetween(from, to time.Duration) float64 {
	lo, hi := s.searchAtOrAfter(from), s.searchAtOrAfter(to)
	if lo >= hi {
		return 0
	}
	min := math.Inf(1)
	for _, v := range s.Values[lo:hi] {
		if v < min {
			min = v
		}
	}
	return min
}

// MaxBetween returns the largest sample with from ≤ t < to (0 if none).
func (s *Series) MaxBetween(from, to time.Duration) float64 {
	lo, hi := s.searchAtOrAfter(from), s.searchAtOrAfter(to)
	if lo >= hi {
		return 0
	}
	max := math.Inf(-1)
	for _, v := range s.Values[lo:hi] {
		if v > max {
			max = v
		}
	}
	return max
}

// Delta returns Last − At(from): the growth of a cumulative series after
// the given instant.
func (s *Series) Delta(from time.Duration) float64 { return s.Last() - s.At(from) }

// WriteTSV writes "seconds<TAB>value" rows — the format vodbench prints so
// each figure can be re-plotted.
func (s *Series) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Name); err != nil {
		return err
	}
	for i := range s.Times {
		if _, err := fmt.Fprintf(w, "%.2f\t%g\n", s.Times[i].Seconds(), s.Values[i]); err != nil {
			return err
		}
	}
	return nil
}
