package metrics

import (
	"strings"
	"testing"
	"time"
)

func sampleSeries() *Series {
	s := NewSeries("test")
	s.Add(1*time.Second, 10)
	s.Add(2*time.Second, 30)
	s.Add(3*time.Second, 20)
	s.Add(4*time.Second, 40)
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := sampleSeries()
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Last(); got != 40 {
		t.Fatalf("Last = %v", got)
	}
	if got := s.Max(); got != 40 {
		t.Fatalf("Max = %v", got)
	}
	if got := s.Min(); got != 10 {
		t.Fatalf("Min = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Last() != 0 || s.Max() != 0 || s.Min() != 0 || s.At(time.Second) != 0 {
		t.Fatal("empty series accessors must return 0")
	}
	if s.MeanBetween(0, time.Hour) != 0 {
		t.Fatal("MeanBetween on empty series")
	}
}

func TestSeriesAt(t *testing.T) {
	s := sampleSeries()
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{500 * time.Millisecond, 0}, // before first sample
		{1 * time.Second, 10},
		{1500 * time.Millisecond, 10},
		{2 * time.Second, 30},
		{10 * time.Second, 40},
	}
	for _, tt := range tests {
		if got := s.At(tt.at); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestSeriesWindows(t *testing.T) {
	s := sampleSeries()
	if got := s.MeanBetween(1*time.Second, 3*time.Second); got != 20 { // (10+30)/2
		t.Fatalf("MeanBetween = %v", got)
	}
	if got := s.MinBetween(2*time.Second, 5*time.Second); got != 20 {
		t.Fatalf("MinBetween = %v", got)
	}
	if got := s.MaxBetween(1*time.Second, 4*time.Second); got != 30 {
		t.Fatalf("MaxBetween = %v", got)
	}
	if got := s.MinBetween(10*time.Second, 20*time.Second); got != 0 {
		t.Fatalf("MinBetween empty window = %v", got)
	}
}

func TestSeriesDelta(t *testing.T) {
	s := sampleSeries()
	if got := s.Delta(2 * time.Second); got != 10 { // 40 − 30
		t.Fatalf("Delta = %v", got)
	}
}

func TestWriteTSV(t *testing.T) {
	s := sampleSeries()
	var sb strings.Builder
	if err := s.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# test\n") {
		t.Fatalf("missing header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	if lines[1] != "1.00\t10" {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestNegativeValues(t *testing.T) {
	s := NewSeries("neg")
	s.Add(time.Second, -5)
	s.Add(2*time.Second, -1)
	if s.Max() != -1 || s.Min() != -5 {
		t.Fatalf("Max/Min with negatives: %v/%v", s.Max(), s.Min())
	}
}

func TestSeriesOutOfOrderAdd(t *testing.T) {
	s := NewSeries("ooo")
	s.Add(1*time.Second, 10)
	s.Add(3*time.Second, 30)
	s.Add(2*time.Second, 20) // late sample must insert-sort, not corrupt
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i-1] > s.Times[i] {
			t.Fatalf("Times not sorted after out-of-order Add: %v", s.Times)
		}
	}
	if got := s.At(2 * time.Second); got != 20 {
		t.Fatalf("At(2s) = %v, want 20", got)
	}
	if got := s.At(2500 * time.Millisecond); got != 20 {
		t.Fatalf("At(2.5s) = %v, want 20", got)
	}
	if got := s.MeanBetween(1*time.Second, 4*time.Second); got != 20 {
		t.Fatalf("MeanBetween = %v, want 20", got)
	}
}

func TestSeriesBinarySearchBounds(t *testing.T) {
	s := NewSeries("bounds")
	if s.At(time.Second) != 0 {
		t.Fatal("At on empty series != 0")
	}
	for i := 0; i < 100; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	if got := s.At(0); got != 0 {
		t.Fatalf("At(first) = %v", got)
	}
	if got := s.At(-time.Second); got != 0 {
		t.Fatalf("At(before first) = %v, want 0", got)
	}
	if got := s.At(99 * time.Second); got != 99 {
		t.Fatalf("At(last) = %v", got)
	}
	if got := s.At(time.Hour); got != 99 {
		t.Fatalf("At(past end) = %v", got)
	}
	// Half-open window semantics: from inclusive, to exclusive.
	if got := s.MinBetween(10*time.Second, 12*time.Second); got != 10 {
		t.Fatalf("MinBetween = %v, want 10", got)
	}
	if got := s.MaxBetween(10*time.Second, 12*time.Second); got != 11 {
		t.Fatalf("MaxBetween = %v, want 11", got)
	}
	if got := s.MeanBetween(5*time.Second, 5*time.Second); got != 0 {
		t.Fatalf("empty window mean = %v, want 0", got)
	}
}
