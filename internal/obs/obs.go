// Package obs is the cluster observability layer: a concurrency-safe
// registry of named counters and gauges plus a bounded in-memory event
// trace (a "flight recorder"), scoped per node. Every protocol layer —
// transport, group communication, server, client, network simulator —
// increments the same registry shapes, so a real-UDP daemon, a vodbench
// run and a deterministic scenario test all expose the cluster's internal
// activity through one vocabulary.
//
// Counter names are dotted paths, "<subsystem>.<quantity>":
//
//	transport.sent_datagrams   gcs.view_changes    server.takeovers
//	transport.read_errors      gcs.naks_sent       client.stalls
//
// Hot-path cost is one atomic add: callers resolve a *Counter or *Gauge
// once at wire-up time and hold the pointer. The registry lock is taken
// only at registration and snapshot time, never on the update path.
//
// All methods are nil-receiver safe: a nil *Registry hands out working
// (but unregistered) counters and swallows events, so components can be
// instrumented unconditionally and run unobserved at zero configuration
// cost.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (an occupancy, a queue depth).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set records the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Event is one entry of the flight-recorder trace.
type Event struct {
	At   time.Time `json:"at"`
	Kind string    `json:"kind"` // dotted path, e.g. "gcs.view"
	Note string    `json:"note"` // free-form detail
}

// Registry holds one node's counters, gauges and event trace.
type Registry struct {
	node string
	now  func() time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	trace    *trace
}

// DefaultTraceDepth is the event-trace ring capacity of NewRegistry.
const DefaultTraceDepth = 256

// NewRegistry creates a registry for the named node. now supplies event
// timestamps — pass the node's clock.Clock Now method so simulated runs
// trace in deterministic virtual time; nil means time.Now.
func NewRegistry(node string, now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	return &Registry{
		node:     node,
		now:      now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		trace:    newTrace(DefaultTraceDepth),
	}
}

// Node returns the node name this registry is scoped to ("" for nil).
func (r *Registry) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Counter returns the named counter, creating it on first use. Two calls
// with the same name return the same counter. On a nil registry it
// returns a fresh unregistered counter that works but is never reported.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil-registry
// behavior mirrors Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Event appends one entry to the flight recorder; the oldest entry is
// overwritten once the ring is full. No-op on a nil registry.
func (r *Registry) Event(kind, note string) {
	if r == nil {
		return
	}
	r.trace.add(Event{At: r.now(), Kind: kind, Note: note})
}

// Snapshot is a point-in-time copy of a registry's state, safe to retain
// and compare. Snapshots of a deterministic (virtual-clock) run are
// themselves deterministic.
type Snapshot struct {
	Node     string            `json:"node"`
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]int64  `json:"gauges"`
	Events   []Event           `json:"events"`
	// Dropped counts trace events lost to ring overwrite.
	Dropped uint64 `json:"events_dropped"`
}

// Snapshot captures every counter, gauge and traced event. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Counters: map[string]uint64{}, Gauges: map[string]int64{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Node:     r.node,
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	s.Events, s.Dropped = r.trace.snapshot()
	return s
}

// CounterNames returns the sorted names of every registered counter.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted names of every registered gauge.
func (s Snapshot) GaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// trace is the bounded flight-recorder ring.
type trace struct {
	mu      sync.Mutex
	ring    []Event
	next    int // write position
	filled  bool
	dropped uint64
}

func newTrace(depth int) *trace {
	if depth < 1 {
		depth = 1
	}
	return &trace{ring: make([]Event, depth)}
}

func (t *trace) add(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		t.dropped++
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// snapshot returns the retained events oldest-first.
func (t *trace) snapshot() ([]Event, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	if t.filled {
		out = make([]Event, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else if t.next > 0 {
		out = append([]Event(nil), t.ring[:t.next]...)
	}
	return out, t.dropped
}
