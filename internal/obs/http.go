package obs

import (
	"encoding/json"
	"net/http"
)

// ServeHTTP implements http.Handler: it writes the registry snapshot as
// indented JSON, in the spirit of expvar's /debug/vars. Wire it under a
// -debug-addr mux:
//
//	mux.Handle("/debug/vod", reg)
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, r.Snapshot())
}

// Handler serves several registries (e.g. one per hosted node) as a JSON
// array ordered as given.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snaps := make([]Snapshot, 0, len(regs))
		for _, r := range regs {
			snaps = append(snaps, r.Snapshot())
		}
		writeJSON(w, snaps)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
