package obs_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCounterAndGauge(t *testing.T) {
	r := obs.NewRegistry("node-1", nil)
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter is not idempotent per name")
	}
	g := r.Gauge("a.level")
	g.Set(-7)
	if got := g.Load(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}

	snap := r.Snapshot()
	if snap.Node != "node-1" {
		t.Fatalf("snapshot node = %q", snap.Node)
	}
	if snap.Counters["a.count"] != 5 || snap.Gauges["a.level"] != -7 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x")
	c.Inc() // must not panic, and must still count
	if c.Load() != 1 {
		t.Fatal("unregistered counter does not count")
	}
	r.Gauge("y").Set(3)
	r.Event("kind", "note")
	snap := r.Snapshot()
	if snap.Node != "" || len(snap.Counters) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := obs.NewRegistry("n", func() time.Time { return now })
	for i := 0; i < obs.DefaultTraceDepth+10; i++ {
		r.Event("k", fmt.Sprintf("e%d", i))
	}
	snap := r.Snapshot()
	if len(snap.Events) != obs.DefaultTraceDepth {
		t.Fatalf("trace holds %d events, want %d", len(snap.Events), obs.DefaultTraceDepth)
	}
	if snap.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.Dropped)
	}
	// Oldest surviving event first.
	if snap.Events[0].Note != "e10" {
		t.Fatalf("first event = %q, want e10", snap.Events[0].Note)
	}
	last := snap.Events[len(snap.Events)-1]
	if last.Note != fmt.Sprintf("e%d", obs.DefaultTraceDepth+9) {
		t.Fatalf("last event = %q", last.Note)
	}
	if !last.At.Equal(now) {
		t.Fatalf("event timestamp = %v, want the injected clock's %v", last.At, now)
	}
}

// TestConcurrentCountersAndSnapshot hammers the registry from many
// goroutines while snapshots are taken; run under -race this is the
// tentpole's concurrency-safety check.
func TestConcurrentCountersAndSnapshot(t *testing.T) {
	r := obs.NewRegistry("n", nil)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", w)).Inc()
				r.Gauge("level").Set(int64(i))
				if i%100 == 0 {
					r.Event("tick", "note")
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)

	snap := r.Snapshot()
	if got := snap.Counters["shared"]; got != workers*perWorker {
		t.Fatalf("shared = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := snap.Counters[fmt.Sprintf("own.%d", w)]; got != perWorker {
			t.Fatalf("own.%d = %d, want %d", w, got, perWorker)
		}
	}
}

func TestServeHTTP(t *testing.T) {
	r := obs.NewRegistry("node-9", nil)
	r.Counter("c").Add(42)
	r.Event("boot", "hello")

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vod", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content-type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Node != "node-9" || snap.Counters["c"] != 42 || len(snap.Events) != 1 {
		t.Fatalf("decoded snapshot = %+v", snap)
	}
}

func TestHandlerMultipleRegistries(t *testing.T) {
	a := obs.NewRegistry("a", nil)
	b := obs.NewRegistry("b", nil)
	a.Counter("x").Inc()

	rec := httptest.NewRecorder()
	obs.Handler(a, b).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var snaps []obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("body is not a JSON array: %v", err)
	}
	if len(snaps) != 2 || snaps[0].Node != "a" || snaps[1].Node != "b" {
		t.Fatalf("snapshots = %+v", snaps)
	}
}

func TestNames(t *testing.T) {
	r := obs.NewRegistry("n", nil)
	r.Counter("zeta")
	r.Counter("alpha")
	r.Gauge("mid")
	snap := r.Snapshot()
	if got := snap.CounterNames(); len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("CounterNames = %v", got)
	}
	if got := snap.GaugeNames(); len(got) != 1 || got[0] != "mid" {
		t.Fatalf("GaugeNames = %v", got)
	}
}
