package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// TestMultiMovieDeployment exercises the full service shape: four movies
// placed with replication factor 2 across three servers, eight clients
// across the movies, one server crash — every client must keep playing if
// its movie survives on another replica.
func TestMultiMovieDeployment(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 21, netsim.LAN())
	movies := make([]*core.Movie, 4)
	for i := range movies {
		movies[i] = core.GenerateMovie(fmt.Sprintf("movie-%d", i), 60*time.Second, int64(i+1))
	}
	d, err := core.Deploy(core.DeployOptions{
		Clock:    clk,
		Network:  net,
		Servers:  []string{"srv-a", "srv-b", "srv-c"},
		Movies:   movies,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	clk.Advance(2 * time.Second)

	// Each movie is on exactly 2 of the 3 servers.
	serverLoad := map[string]int{}
	for movie, holders := range d.Placement {
		if len(holders) != 2 {
			t.Fatalf("movie %s on %d servers", movie, len(holders))
		}
		for _, h := range holders {
			serverLoad[h]++
		}
	}
	for s, n := range serverLoad {
		if n < 2 || n > 3 {
			t.Fatalf("server %s holds %d movies; placement unbalanced %v", s, n, serverLoad)
		}
	}

	// Eight clients spread over the four movies.
	clients := make([]*core.Client, 8)
	for i := range clients {
		c, err := d.NewClient(fmt.Sprintf("viewer-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Watch(fmt.Sprintf("movie-%d", i%4)); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		clk.Advance(150 * time.Millisecond)
	}
	clk.Advance(10 * time.Second)

	for i, c := range clients {
		if c.State() != client.StateWatching {
			t.Fatalf("viewer-%d state = %v", i, c.State())
		}
		if got := d.ServingServer(c.ID()); got == "" {
			t.Fatalf("viewer-%d unserved", i)
		}
	}

	// Crash one server; replication factor 2 covers every movie.
	d.StopServer("srv-b")
	net.Crash(transport.Addr("srv-b"))
	clk.Advance(10 * time.Second)

	for i, c := range clients {
		before := c.Counters().Displayed
		clk.Advance(5 * time.Second)
		after := c.Counters().Displayed
		if after-before < 130 {
			t.Fatalf("viewer-%d displayed only %d frames after the crash", i, after-before)
		}
		if got := d.ServingServer(c.ID()); got == "" || got == "srv-b" {
			t.Fatalf("viewer-%d served by %q after crash", i, got)
		}
	}

	// Aggregate smoothness across all eight clients.
	var totalStalls, maxRun uint64
	for _, c := range clients {
		cnt := c.Counters()
		totalStalls += cnt.Stalls
		if cnt.MaxStallRun > maxRun {
			maxRun = cnt.MaxStallRun
		}
	}
	if maxRun > 15 {
		t.Fatalf("a client froze for %d display ticks (>0.5s)", maxRun)
	}
	t.Logf("8 clients, 4 movies, 1 crash: total stalls=%d, worst freeze=%d ticks",
		totalStalls, maxRun)
}
