package core_test

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
)

// Example deploys a two-replica VoD service and plays ten seconds of a
// movie — the shortest end-to-end use of the library.
func Example() {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	network := netsim.New(clk, 1, netsim.LAN())

	deployment, err := core.Deploy(core.DeployOptions{
		Clock:   clk,
		Network: network,
		Servers: []string{"server-1", "server-2"},
		Movies:  []*core.Movie{core.GenerateMovie("casablanca", 30*time.Second, 1)},
	})
	if err != nil {
		panic(err)
	}
	defer deployment.Stop()
	clk.Advance(time.Second)

	viewer, err := deployment.NewClient("viewer-1")
	if err != nil {
		panic(err)
	}
	defer viewer.Close()
	if err := viewer.Watch("casablanca"); err != nil {
		panic(err)
	}
	clk.Advance(10 * time.Second)

	c := viewer.Counters()
	fmt.Printf("state=%v displayed≈%v skipped=%d stalls=%d\n",
		viewer.State(), c.Displayed/10*10, c.Skipped(), c.Stalls)
	// Output:
	// state=watching displayed≈290 skipped=0 stalls=0
}
