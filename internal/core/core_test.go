package core_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/transport"
)

func deployRig(t *testing.T) (*clock.Virtual, *netsim.Network, *core.Deployment) {
	t.Helper()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 5, netsim.LAN())
	d, err := core.Deploy(core.DeployOptions{
		Clock:      clk,
		Network:    net,
		Servers:    []string{"srv-a", "srv-b"},
		ExtraPeers: []string{"srv-c"},
		Movies: []*core.Movie{
			core.GenerateMovie("movie-1", 30*time.Second, 1),
			core.GenerateMovie("movie-2", 30*time.Second, 2),
		},
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return clk, net, d
}

func TestDeployAndWatch(t *testing.T) {
	clk, _, d := deployRig(t)
	clk.Advance(2 * time.Second)

	if got := len(d.ServerIDs()); got != 2 {
		t.Fatalf("deployed %d servers, want 2", got)
	}
	for movie, holders := range d.Placement {
		if len(holders) != 2 {
			t.Fatalf("movie %s placed on %d servers, want 2", movie, len(holders))
		}
	}

	c, err := d.NewClient("viewer-1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Watch("movie-1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if c.State() != client.StateWatching {
		t.Fatalf("client state = %v", c.State())
	}
	if got := c.Counters().Displayed; got < 250 {
		t.Fatalf("displayed %d frames", got)
	}
	if s := d.ServingServer("viewer-1"); s == "" {
		t.Fatal("no serving server reported")
	}
}

func TestDeployFailoverViaStopServer(t *testing.T) {
	clk, net, d := deployRig(t)
	clk.Advance(2 * time.Second)
	c, err := d.NewClient("viewer-1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Watch("movie-1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)

	victim := d.ServingServer("viewer-1")
	if victim == "" {
		t.Fatal("nobody serving")
	}
	d.StopServer(victim)
	net.Crash(transport.Addr(victim))
	clk.Advance(8 * time.Second)

	survivor := d.ServingServer("viewer-1")
	if survivor == "" || survivor == victim {
		t.Fatalf("serving server after failover = %q", survivor)
	}
}

func TestDeployAddServer(t *testing.T) {
	clk, _, d := deployRig(t)
	clk.Advance(2 * time.Second)
	c, err := d.NewClient("viewer-1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Watch("movie-1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)

	if err := d.AddServer("srv-c"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	if got := d.ServingServer("viewer-1"); got != "srv-c" {
		t.Fatalf("after adding a fresh server, serving = %q, want srv-c (newcomer absorbs load)", got)
	}
}

func TestDeployValidation(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1, netsim.LAN())
	movie := core.GenerateMovie("m", time.Second, 1)

	if _, err := core.Deploy(core.DeployOptions{Network: net, Servers: []string{"s"}, Movies: []*core.Movie{movie}}); err == nil {
		t.Fatal("Deploy without clock succeeded")
	}
	if _, err := core.Deploy(core.DeployOptions{Clock: clk, Network: net, Movies: []*core.Movie{movie}}); err == nil {
		t.Fatal("Deploy without servers succeeded")
	}
	if _, err := core.Deploy(core.DeployOptions{Clock: clk, Network: net, Servers: []string{"s"}}); err == nil {
		t.Fatal("Deploy without movies succeeded")
	}
	if _, err := core.Deploy(core.DeployOptions{
		Clock: clk, Network: net, Servers: []string{"s"},
		Movies: []*core.Movie{movie}, Replicas: 5,
	}); err == nil {
		t.Fatal("Deploy with replicas > servers succeeded")
	}
}
