// Package core is the public face of the fault-tolerant VoD library: it
// re-exports the server and client types and provides Deploy, which
// assembles a whole service — replica placement, catalogs, servers — in a
// few lines. The examples and command-line tools are written against this
// package.
//
// The service it builds is the system of "Fault Tolerant Video on Demand
// Services" (Anker, Dolev, Keidar; ICDCS 1999): movies replicated across
// servers, loose coordination through a group communication system, and
// transparent client migration on crash or load imbalance.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/flowctl"
	"repro/internal/gcs"
	"repro/internal/mpeg"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
)

// Re-exported aliases so library users import one package.
type (
	// Server is a VoD server instance.
	Server = server.Server
	// ServerConfig configures a Server.
	ServerConfig = server.Config
	// Client is a VoD client instance.
	Client = client.Client
	// ClientConfig configures a Client.
	ClientConfig = client.Config
	// Movie is a synthetic MPEG stream.
	Movie = mpeg.Movie
	// FlowParams are the flow-control tunables.
	FlowParams = flowctl.Params
)

// NewServer creates a VoD server (call Start on it).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewClient creates a VoD client (call Watch on it).
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }

// DefaultFlowParams returns the paper's prototype flow-control parameters.
func DefaultFlowParams() FlowParams { return flowctl.DefaultParams() }

// GenerateMovie synthesizes a test movie with the paper's stream
// parameters (1.4 Mbps, 30 fps) and the given duration.
func GenerateMovie(id string, duration time.Duration, seed int64) *Movie {
	return mpeg.Generate(id, mpeg.StreamConfig{Duration: duration, Seed: seed})
}

// DeployOptions describes a whole VoD service deployment.
type DeployOptions struct {
	// Clock and Network supply the runtime (virtual clock + simulated
	// network, or real clock + UDP).
	Clock   clock.Clock
	Network transport.Network
	// Servers are the server IDs (transport addresses) to start now.
	Servers []string
	// ExtraPeers are additional server addresses that may join later;
	// they are included in every contact list so late servers merge in.
	ExtraPeers []string
	// Movies is the material to serve.
	Movies []*Movie
	// Replicas is the replication factor k; each movie lands on k servers
	// and tolerates k−1 failures (default: all servers).
	Replicas int
	// Directory, when set, is a CONGRESS directory address: servers
	// register there and clients resolve the service through it.
	Directory string
	// Flow overrides the flow-control parameters (paper defaults if zero).
	Flow FlowParams
	// SyncInterval overrides the state-sync period (default 500ms).
	SyncInterval time.Duration
	// GCS overrides group-communication timing.
	GCS gcs.Config
}

// Deployment is a running VoD service.
type Deployment struct {
	opts    DeployOptions
	peers   []string
	servers map[string]*Server
	movies  map[string]*Movie
	// Placement maps movie ID to the servers holding it.
	Placement map[string][]string
}

// Deploy places the movies, builds per-server catalogs, and starts every
// server. The caller owns the returned deployment and must Stop it.
func Deploy(opts DeployOptions) (*Deployment, error) {
	if opts.Clock == nil || opts.Network == nil {
		return nil, fmt.Errorf("core: Clock and Network are required")
	}
	if len(opts.Servers) == 0 {
		return nil, fmt.Errorf("core: no servers to deploy")
	}
	if len(opts.Movies) == 0 {
		return nil, fmt.Errorf("core: no movies to serve")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = len(opts.Servers)
	}

	movieIDs := make([]string, 0, len(opts.Movies))
	movies := make(map[string]*Movie, len(opts.Movies))
	for _, m := range opts.Movies {
		movieIDs = append(movieIDs, m.ID())
		movies[m.ID()] = m
	}
	placement, err := store.Place(movieIDs, opts.Servers, opts.Replicas)
	if err != nil {
		return nil, fmt.Errorf("core: placing movies: %w", err)
	}

	peerSet := map[string]bool{}
	for _, s := range opts.Servers {
		peerSet[s] = true
	}
	for _, s := range opts.ExtraPeers {
		peerSet[s] = true
	}
	peers := make([]string, 0, len(peerSet))
	for s := range peerSet {
		peers = append(peers, s)
	}
	sort.Strings(peers)

	d := &Deployment{
		opts:      opts,
		peers:     peers,
		servers:   make(map[string]*Server, len(opts.Servers)),
		movies:    movies,
		Placement: placement,
	}
	for _, id := range opts.Servers {
		if err := d.startServer(id); err != nil {
			d.Stop()
			return nil, err
		}
	}
	return d, nil
}

func (d *Deployment) startServer(id string) error {
	cat := store.NewCatalog()
	for movieID, holders := range d.Placement {
		for _, h := range holders {
			if h == id {
				cat.Add(d.movies[movieID])
			}
		}
	}
	s, err := server.New(server.Config{
		ID:           id,
		Clock:        d.opts.Clock,
		Network:      d.opts.Network,
		Catalog:      cat,
		Peers:        d.peers,
		Directory:    d.opts.Directory,
		Flow:         d.opts.Flow,
		SyncInterval: d.opts.SyncInterval,
		GCS:          d.opts.GCS,
	})
	if err != nil {
		return fmt.Errorf("core: creating server %s: %w", id, err)
	}
	if err := s.Start(); err != nil {
		return fmt.Errorf("core: starting server %s: %w", id, err)
	}
	d.servers[id] = s
	return nil
}

// AddServer brings up an additional server holding every movie — the
// load-balancing move of the paper ("new servers may be brought up on the
// fly to alleviate the load on other servers").
func (d *Deployment) AddServer(id string) error {
	if _, ok := d.servers[id]; ok {
		return fmt.Errorf("core: server %s already deployed", id)
	}
	for movieID := range d.Placement {
		if !contains(d.Placement[movieID], id) {
			d.Placement[movieID] = append(d.Placement[movieID], id)
		}
	}
	if !contains(d.peers, id) {
		d.peers = append(d.peers, id)
		sort.Strings(d.peers)
	}
	return d.startServer(id)
}

// StopServer stops one server; peers detect the silence and migrate its
// clients exactly as after a crash.
func (d *Deployment) StopServer(id string) {
	if s, ok := d.servers[id]; ok {
		s.Stop()
		delete(d.servers, id)
	}
}

// Server returns a running server by ID (nil if not running).
func (d *Deployment) Server(id string) *Server { return d.servers[id] }

// ServerIDs returns the running servers' IDs, sorted.
func (d *Deployment) ServerIDs() []string {
	out := make([]string, 0, len(d.servers))
	for id := range d.servers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Peers returns the full contact list (for clients).
func (d *Deployment) Peers() []string { return append([]string(nil), d.peers...) }

// NewClient creates a client wired to this deployment's contact list.
func (d *Deployment) NewClient(id string) (*Client, error) {
	return client.New(client.Config{
		ID:        id,
		Clock:     d.opts.Clock,
		Network:   d.opts.Network,
		Servers:   d.Peers(),
		Directory: d.opts.Directory,
		Flow:      d.opts.Flow,
		GCS:       d.opts.GCS,
	})
}

// ServingServer returns which running server currently serves clientID
// ("" if none) — handy for demos and assertions.
func (d *Deployment) ServingServer(clientID string) string {
	for id, s := range d.servers {
		for _, c := range s.ActiveSessions() {
			if c == clientID {
				return id
			}
		}
	}
	return ""
}

// Stop stops every server.
func (d *Deployment) Stop() {
	for id := range d.servers {
		d.StopServer(id)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
