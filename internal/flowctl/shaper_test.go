package flowctl

import (
	"testing"
	"time"
)

// manualClock is a hand-cranked time source for shaper tests.
type manualClock struct{ t time.Time }

func (c *manualClock) now() time.Time          { return c.t }
func (c *manualClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func newTestShaper(c *manualClock, p ShaperParams) *Shaper { return NewShaper(c.now, p) }

func TestShaperStartsFull(t *testing.T) {
	c := newManualClock()
	s := newTestShaper(c, ShaperParams{Rate: 1000, Burst: 250})
	if got := s.Tokens(); got != 250 {
		t.Fatalf("fresh bucket = %d tokens, want 250", got)
	}
	if s.UnderPressure() {
		t.Fatal("fresh bucket reports pressure")
	}
}

func TestShaperRefillRate(t *testing.T) {
	c := newManualClock()
	s := newTestShaper(c, ShaperParams{Rate: 1000, Burst: 1000})
	s.TakeReserved(1000) // drain to zero
	if got := s.Tokens(); got != 0 {
		t.Fatalf("after drain = %d, want 0", got)
	}
	c.advance(100 * time.Millisecond)
	if got := s.Tokens(); got != 100 {
		t.Fatalf("after 100ms at 1000/s = %d tokens, want 100", got)
	}
	c.advance(10 * time.Second) // idle far past full: caps at burst
	if got := s.Tokens(); got != 1000 {
		t.Fatalf("after long idle = %d tokens, want burst 1000", got)
	}
}

// TestShaperRemainderCarry pins the sub-token carry: at 3 tokens/s, three
// 333ms steps credit 0+0+1 naively, but the cursor arithmetic must make one
// full second yield exactly 3 tokens regardless of step size.
func TestShaperRemainderCarry(t *testing.T) {
	c := newManualClock()
	s := newTestShaper(c, ShaperParams{Rate: 3, Burst: 30})
	s.TakeReserved(30)
	for i := 0; i < 30; i++ {
		c.advance(100 * time.Millisecond)
		s.Tokens() // force refill at each step
	}
	if got := s.Tokens(); got != 9 {
		t.Fatalf("3 tokens/s for 3s in 100ms steps = %d tokens, want 9", got)
	}
}

func TestShaperReservedOverdraft(t *testing.T) {
	c := newManualClock()
	s := newTestShaper(c, ShaperParams{Rate: 1000, Burst: 500})
	for i := 0; i < 10; i++ {
		s.TakeReserved(1000) // reserved never blocks
	}
	if got := s.Tokens(); got != -500 {
		t.Fatalf("overdraft = %d, want floor at -burst (-500)", got)
	}
	if s.TakeBestEffort(1) {
		t.Fatal("best effort proceeded while bucket in debt")
	}
	// Debt is bounded at one burst, so half a second of refill plus the
	// time to get positive again bounds the best-effort lockout.
	c.advance(501 * time.Millisecond)
	if !s.TakeBestEffort(1) {
		t.Fatalf("best effort still blocked after refill; tokens=%d", s.Tokens())
	}
}

func TestShaperBestEffortYields(t *testing.T) {
	c := newManualClock()
	s := newTestShaper(c, ShaperParams{Rate: 1000, Burst: 400})
	if !s.TakeBestEffort(400) {
		t.Fatal("best effort blocked on a full bucket")
	}
	if s.TakeBestEffort(1) {
		t.Fatal("best effort proceeded on an empty bucket")
	}
	if !s.UnderPressure() {
		t.Fatal("empty bucket does not report pressure")
	}
	c.advance(150 * time.Millisecond) // 150 tokens: above burst/4 = 100
	if s.UnderPressure() {
		t.Fatalf("pressure still reported at %d/%d tokens", s.Tokens(), s.Burst())
	}
}

func TestShaperDefaultBurst(t *testing.T) {
	c := newManualClock()
	s := newTestShaper(c, ShaperParams{Rate: 1000})
	if got := s.Burst(); got != 250 {
		t.Fatalf("default burst = %d, want rate/4 = 250", got)
	}
}

func TestShaperParamsValidate(t *testing.T) {
	if err := (ShaperParams{Rate: 0}).Validate(); err == nil {
		t.Fatal("zero rate validated")
	}
	if err := (ShaperParams{Rate: -5}).Validate(); err == nil {
		t.Fatal("negative rate validated")
	}
	if err := (ShaperParams{Rate: 1 << 40}).Validate(); err == nil {
		t.Fatal("huge rate validated")
	}
	if err := (ShaperParams{Rate: 1000, Burst: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocsShaper pins the shaper hot path at zero allocations: it sits on
// the per-frame egress path, which is pinned allocation-free end to end.
func TestAllocsShaper(t *testing.T) {
	c := newManualClock()
	s := newTestShaper(c, ShaperParams{Rate: 1_000_000, Burst: 250_000})
	allocs := testing.AllocsPerRun(1000, func() {
		c.advance(time.Millisecond)
		s.TakeReserved(1400)
		s.TakeBestEffort(1400)
		s.UnderPressure()
	})
	if allocs != 0 {
		t.Fatalf("shaper hot path = %v allocs/op, want 0", allocs)
	}
}
