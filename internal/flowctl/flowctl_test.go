package flowctl

import (
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// §4.2 / §6: 2.4s of buffering, low water 73%, high water 88%.
	if p.CombinedCapacity != 74 {
		t.Fatalf("capacity = %d, want 74 frames (2.4s at 30fps)", p.CombinedCapacity)
	}
	if p.LowWater != 54 {
		t.Fatalf("low water = %d, want 54 (73%%)", p.LowWater)
	}
	if p.HighWater != 65 {
		t.Fatalf("high water = %d, want 65 (88%%)", p.HighWater)
	}
	if p.SoftwareCapacity != 37 {
		t.Fatalf("software capacity = %d, want 37 frames", p.SoftwareCapacity)
	}
	if p.CriticalMinor != 11 || p.CriticalMajor != 5 {
		t.Fatalf("critical thresholds = %d/%d, want 11/5 (30%%/15%% of the software buffer)", p.CriticalMinor, p.CriticalMajor)
	}
	if p.NormalEvery != 8 || p.UrgentEvery != 4 {
		t.Fatalf("frequencies = %d/%d, want 8/4", p.NormalEvery, p.UrgentEvery)
	}
}

func TestEmergencyTotalMatchesPaper(t *testing.T) {
	// §4.1: q=12, f=0.8 → "the resulting sequence sum is 43 frames".
	if got := EmergencyTotal(12, 0.8); got != 43 {
		t.Fatalf("EmergencyTotal(12, 0.8) = %d, want 43", got)
	}
	// §4.1 reports 15 for q=6; iterated truncation yields 16 — within one
	// frame of the paper's arithmetic (see EXPERIMENTS.md).
	if got := EmergencyTotal(6, 0.8); got < 15 || got > 16 {
		t.Fatalf("EmergencyTotal(6, 0.8) = %d, want 15..16", got)
	}
	if got := EmergencyTotal(0, 0.8); got != 0 {
		t.Fatalf("EmergencyTotal(0) = %d", got)
	}
}

func TestEmergencyBandwidthBound(t *testing.T) {
	// The emergency boost must stay ≤ 40% of the mean bandwidth (§4.1):
	// q=12 extra frames/s on a 30 fps stream.
	p := DefaultParams()
	if frac := float64(p.EmergencyMajorQ) / float64(p.DefaultRate); frac > 0.40 {
		t.Fatalf("emergency boost is %.0f%% of mean bandwidth, paper bound is 40%%", frac*100)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.CombinedCapacity = 0 },
		func(p *Params) { p.CriticalMajor = 0 },
		func(p *Params) { p.CriticalMajor = p.CriticalMinor + 1 },
		func(p *Params) { p.SoftwareCapacity = 0 },
		func(p *Params) { p.SoftwareCapacity = p.CombinedCapacity + 1 },
		func(p *Params) { p.CriticalMinor = p.SoftwareCapacity + 1 },
		func(p *Params) { p.LowWater = p.HighWater },
		func(p *Params) { p.HighWater = p.CombinedCapacity + 1 },
		func(p *Params) { p.UrgentEvery = p.NormalEvery + 1 },
		func(p *Params) { p.EmergencyDecay = 1.0 },
		func(p *Params) { p.EmergencyDecay = 0 },
		func(p *Params) { p.EmergencyMajorQ = p.EmergencyMinorQ - 1 },
		func(p *Params) { p.MaxRate = p.DefaultRate - 1 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d passed validation: %+v", i, p)
		}
	}
}

// policyDrive feeds combined occupancies (software modeled as half the
// combined value, the steady-state split) and collects emitted requests.
func policyDrive(f *Policy, occs []int) []wire.FlowKind {
	var out []wire.FlowKind
	for _, occ := range occs {
		if k, ok := f.OnFrame(occ, occ/2); ok {
			out = append(out, k)
		}
	}
	return out
}

func TestPolicyBelowLowWaterIncreases(t *testing.T) {
	f := NewPolicy(DefaultParams())
	occs := make([]int, 16)
	for i := range occs {
		occs[i] = 40 // below low water (54), above critical (22)
	}
	got := policyDrive(f, occs)
	// Urgent cadence: every 4 frames → 4 requests in 16 frames.
	if len(got) != 4 {
		t.Fatalf("emitted %d requests, want 4 (urgent cadence)", len(got))
	}
	for _, k := range got {
		if k != wire.FlowIncrease {
			t.Fatalf("request = %v, want increase", k)
		}
	}
}

func TestPolicyAboveHighWaterDecreases(t *testing.T) {
	f := NewPolicy(DefaultParams())
	occs := make([]int, 8)
	for i := range occs {
		occs[i] = 70 // above high water (65)
	}
	got := policyDrive(f, occs)
	if len(got) != 2 {
		t.Fatalf("emitted %d requests, want 2", len(got))
	}
	for _, k := range got {
		if k != wire.FlowDecrease {
			t.Fatalf("request = %v, want decrease", k)
		}
	}
}

func TestPolicyBetweenWaterMarksFollowsTrend(t *testing.T) {
	f := NewPolicy(DefaultParams())
	// First 8 frames at 60 set the baseline (no emission on the first
	// cadence hit because there is no previous occupancy yet).
	occs := make([]int, 8)
	for i := range occs {
		occs[i] = 60
	}
	if got := policyDrive(f, occs); len(got) != 0 {
		t.Fatalf("baseline pass emitted %v", got)
	}
	// Falling occupancy → increase.
	for i := range occs {
		occs[i] = 58
	}
	got := policyDrive(f, occs)
	if len(got) != 1 || got[0] != wire.FlowIncrease {
		t.Fatalf("falling trend emitted %v, want [increase]", got)
	}
	// Rising occupancy → decrease.
	for i := range occs {
		occs[i] = 63
	}
	got = policyDrive(f, occs)
	if len(got) != 1 || got[0] != wire.FlowDecrease {
		t.Fatalf("rising trend emitted %v, want [decrease]", got)
	}
	// Unchanged occupancy → silence ("no request is emitted").
	got = policyDrive(f, occs)
	if len(got) != 0 {
		t.Fatalf("flat trend emitted %v, want none", got)
	}
}

func TestPolicyEmergencyEdgeTriggered(t *testing.T) {
	f := NewPolicy(DefaultParams())
	// Crossing below the major threshold fires immediately, not on the
	// cadence.
	if k, ok := f.OnFrame(5, 2); !ok || k != wire.FlowEmergencyMajor {
		t.Fatalf("first frame below major threshold: %v, %v", k, ok)
	}
	// Staying below must not fire another emergency while armed-off; at
	// the urgent cadence it emits increases instead.
	var kinds []wire.FlowKind
	for i := 0; i < 8; i++ {
		if k, ok := f.OnFrame(5, 2); ok {
			kinds = append(kinds, k)
		}
	}
	for _, k := range kinds {
		if k == wire.FlowEmergencyMajor || k == wire.FlowEmergencyMinor {
			t.Fatalf("repeated emergency while still in the same dip: %v", kinds)
		}
	}
	// Recover above the minor threshold, then dip again → a new emergency.
	for i := 0; i < 12; i++ {
		f.OnFrame(60, 30)
	}
	if k, ok := f.OnFrame(5, 2); !ok || k != wire.FlowEmergencyMajor {
		t.Fatalf("re-armed emergency: %v, %v", k, ok)
	}
}

func TestPolicyMinorVsMajorEmergency(t *testing.T) {
	f := NewPolicy(DefaultParams())
	// Software occupancy 7 is below 30% (11) but above 15% (5): minor.
	if k, ok := f.OnFrame(15, 7); !ok || k != wire.FlowEmergencyMinor {
		t.Fatalf("minor emergency: %v, %v", k, ok)
	}
}

func TestRateControllerBasics(t *testing.T) {
	r := NewRateController(DefaultParams())
	if r.Rate() != 30 {
		t.Fatalf("initial rate = %d, want 30", r.Rate())
	}
	r.OnRequest(wire.FlowIncrease)
	if r.Rate() != 31 {
		t.Fatalf("after increase = %d, want 31", r.Rate())
	}
	r.OnRequest(wire.FlowDecrease)
	r.OnRequest(wire.FlowDecrease)
	if r.Rate() != 29 {
		t.Fatalf("after decreases = %d, want 29", r.Rate())
	}
}

func TestRateControllerClamps(t *testing.T) {
	p := DefaultParams()
	p.MinRate, p.MaxRate = 28, 32
	r := NewRateController(p)
	for i := 0; i < 10; i++ {
		r.OnRequest(wire.FlowIncrease)
	}
	if r.Rate() != 32 {
		t.Fatalf("rate exceeded max: %d", r.Rate())
	}
	for i := 0; i < 10; i++ {
		r.OnRequest(wire.FlowDecrease)
	}
	if r.Rate() != 28 {
		t.Fatalf("rate fell below min: %d", r.Rate())
	}
}

func TestRateControllerEmergencySequence(t *testing.T) {
	r := NewRateController(DefaultParams())
	r.OnRequest(wire.FlowEmergencyMajor)
	// §4.1: the boost decays by iterated truncation 12, 9, 7, 5, 4, 3,
	// 2, 1, 0 — totalling 43 extra frames.
	want := []int{42, 39, 37, 35, 34, 33, 32, 31, 30, 30}
	var total int
	for i, w := range want {
		if r.Rate() != w {
			t.Fatalf("second %d: rate = %d, want %d", i, r.Rate(), w)
		}
		total += r.Rate() - 30
		r.DecayTick()
	}
	if total != EmergencyTotal(12, 0.8) {
		t.Fatalf("total extra frames = %d, want %d", total, EmergencyTotal(12, 0.8))
	}
}

func TestRateControllerIgnoresRequestsDuringEmergency(t *testing.T) {
	r := NewRateController(DefaultParams())
	r.OnRequest(wire.FlowEmergencyMinor)
	if !r.EmergencyActive() {
		t.Fatal("emergency not active")
	}
	base := r.Base()
	r.OnRequest(wire.FlowIncrease)
	r.OnRequest(wire.FlowDecrease)
	if r.Base() != base {
		t.Fatal("ordinary requests were applied during an emergency (§4.1 violation)")
	}
	// A stronger emergency upgrades the quantity.
	r.OnRequest(wire.FlowEmergencyMajor)
	if r.Rate() != base+12 {
		t.Fatalf("rate after upgrade = %d, want %d", r.Rate(), base+12)
	}
	// A weaker one arriving during a stronger one changes nothing.
	r.OnRequest(wire.FlowEmergencyMinor)
	if r.Rate() != base+12 {
		t.Fatalf("weaker emergency downgraded the boost: %d", r.Rate())
	}
}

func TestRateControllerSetBase(t *testing.T) {
	r := NewRateController(DefaultParams())
	r.SetBase(28)
	if r.Base() != 28 {
		t.Fatalf("SetBase: %d", r.Base())
	}
	r.SetBase(1000)
	if r.Base() != DefaultParams().MaxRate {
		t.Fatalf("SetBase did not clamp above: %d", r.Base())
	}
	r.SetBase(1)
	if r.Base() != DefaultParams().MinRate {
		t.Fatalf("SetBase did not clamp below: %d", r.Base())
	}
}

// TestEmergencyDecayConvergesProperty: for any q and valid f, the decay
// reaches zero (the boost never persists forever) and the total is finite
// and at least q.
func TestEmergencyDecayConvergesProperty(t *testing.T) {
	prop := func(q uint8, fRaw uint8) bool {
		f := 0.1 + 0.8*float64(fRaw)/255.0 // f ∈ [0.1, 0.9]
		total := EmergencyTotal(int(q), f)
		if q == 0 {
			return total == 0
		}
		return total >= int(q) && total <= int(q)*20
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyNeverSilentWhenOutsideWaterMarks: whatever the occupancy
// trajectory, a policy fed frames while outside the water marks emits a
// request within UrgentEvery frames — the control loop cannot stall.
func TestPolicyNeverSilentWhenOutsideWaterMarks(t *testing.T) {
	prop := func(seed int64) bool {
		p := DefaultParams()
		f := NewPolicy(p)
		occ := int(seed % int64(p.LowWater-1))
		if occ < 0 {
			occ = -occ
		}
		occ++ // occ ∈ [1, LowWater-1]: strictly below the low water mark
		silent := 0
		for i := 0; i < 64; i++ {
			if _, ok := f.OnFrame(occ, occ/2); ok {
				silent = 0
			} else {
				silent++
			}
			if silent > p.UrgentEvery {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPolicyOnFrame(b *testing.B) {
	f := NewPolicy(DefaultParams())
	for i := 0; i < b.N; i++ {
		f.OnFrame(50+i%20, 20)
	}
}

// TestClosedLoopConvergence simulates the entire control loop in miniature
// — a virtual server paced by a RateController feeding a virtual buffer
// drained at 30fps, with the Policy in the feedback path — and requires
// the occupancy to converge between the water marks and stay there, the
// defining property of §4's design.
func TestClosedLoopConvergence(t *testing.T) {
	p := DefaultParams()
	pol := NewPolicy(p)
	rc := NewRateController(p)

	combined := 0
	displayedCredit := 0.0
	arrivalCredit := 0.0
	inBand := 0
	for tick := 0; tick < 60*100; tick++ { // 60 simulated seconds at 10ms
		if tick%100 == 0 {
			rc.DecayTick()
		}
		arrivalCredit += float64(rc.Rate()) / 100
		for arrivalCredit >= 1 {
			arrivalCredit--
			if combined < p.CombinedCapacity {
				combined++
			}
			sw := combined - 37 // software share once the decoder is full
			if sw < 0 {
				sw = combined
			}
			if k, ok := pol.OnFrame(combined, sw); ok {
				rc.OnRequest(k)
			}
		}
		displayedCredit += 30.0 / 100
		for displayedCredit >= 1 {
			displayedCredit--
			if combined > 0 {
				combined--
			}
		}
		if tick > 30*100 { // after convergence time
			if combined >= p.LowWater && combined < p.HighWater {
				inBand++
			}
		}
	}
	frac := float64(inBand) / float64(30*100)
	if frac < 0.8 {
		t.Fatalf("occupancy in the water-mark band only %.0f%% of steady state", frac*100)
	}
}
