package flowctl

import "repro/internal/wire"

// zone classifies an occupancy reading against the thresholds.
type zone int

const (
	zoneEmergencyMajor zone = iota + 1 // software buffer below 15%
	zoneEmergencyMinor                 // software buffer below 30%
	zoneBelowLow                       // combined below the low water mark
	zoneBetween                        // combined between the water marks
	zoneAboveHigh                      // combined at or above the high water mark
)

// Policy is the client-side flow-control engine: Figure 2 of the paper.
// The increase/decrease steering runs on the combined occupancy; the
// emergency thresholds watch the software buffer, which is the part that
// drains during an irregularity period (the decoder buffer sits behind
// it). Policy is not safe for concurrent use; the client drives it from
// its single event context.
type Policy struct {
	p Params

	sinceLast int // frames received since the last request was emitted
	prevOcc   int // combined occupancy when the previous request was emitted
	started   bool

	// Emergency requests are edge-triggered per dip: once an emergency is
	// sent, another is sent only after the software buffer recovers above
	// the minor threshold (the server ignores requests while its
	// emergency quantity is positive anyway, §4.1). As a safety net, a
	// dip that persists long past the previous boost's decay re-arms by
	// frame count.
	emergencyArmed bool
	framesInDip    int
}

// rearmAfterFrames re-arms a stuck emergency trigger after ~3 seconds of
// sustained starvation at the nominal rate — by then any previous boost
// has fully decayed, so a fresh request is meaningful.
const rearmAfterFrames = 90

// NewPolicy returns a Policy with the given parameters. It panics if the
// parameters are invalid: they are static configuration, and a
// misconfigured control loop must fail loudly at startup.
func NewPolicy(p Params) *Policy {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Policy{p: p, emergencyArmed: true}
}

// Reset reinitializes the policy in place to the state NewPolicy would
// return — used when a client re-watches, so a long-lived viewer reuses
// one Policy across incarnations instead of allocating a fresh one.
func (f *Policy) Reset(p Params) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	*f = Policy{p: p, emergencyArmed: true}
}

func (f *Policy) zoneOf(combined, software int) zone {
	switch {
	case software < f.p.CriticalMajor:
		return zoneEmergencyMajor
	case software < f.p.CriticalMinor:
		return zoneEmergencyMinor
	case combined < f.p.LowWater:
		return zoneBelowLow
	case combined < f.p.HighWater:
		return zoneBetween
	default:
		return zoneAboveHigh
	}
}

// OnFrame is invoked for every received frame with the combined and
// software buffer occupancies after insertion. It returns the request to
// send now, if any.
func (f *Policy) OnFrame(combined, software int) (wire.FlowKind, bool) {
	f.sinceLast++
	z := f.zoneOf(combined, software)

	// Re-arm the emergency trigger once the software buffer recovered,
	// or after a long-sustained dip (the previous boost has decayed).
	if z != zoneEmergencyMajor && z != zoneEmergencyMinor {
		f.emergencyArmed = true
		f.framesInDip = 0
	} else {
		f.framesInDip++
		if f.framesInDip >= rearmAfterFrames {
			f.emergencyArmed = true
			f.framesInDip = 0
		}
	}

	every := f.p.UrgentEvery
	if z == zoneBetween {
		every = f.p.NormalEvery
	}
	if f.sinceLast < every {
		// Emergencies preempt the cadence on the downward edge: the
		// first frame observed below a critical threshold triggers one.
		if (z == zoneEmergencyMajor || z == zoneEmergencyMinor) && f.emergencyArmed {
			return f.emit(combined, emergencyKind(z)), true
		}
		return 0, false
	}

	switch z {
	case zoneEmergencyMajor, zoneEmergencyMinor:
		if f.emergencyArmed {
			return f.emit(combined, emergencyKind(z)), true
		}
		// Emergency already requested this dip; keep asking for more
		// bandwidth at the urgent cadence (the server ignores these while
		// its emergency quantity is positive — they matter afterwards).
		return f.emit(combined, wire.FlowIncrease), true
	case zoneBelowLow:
		return f.emit(combined, wire.FlowIncrease), true
	case zoneAboveHigh:
		return f.emit(combined, wire.FlowDecrease), true
	default: // zoneBetween: steer by the trend since the last request
		prev := f.prevOcc
		f.sinceLast = 0
		if !f.started {
			f.started = true
			f.prevOcc = combined
			return 0, false
		}
		switch {
		case combined < prev:
			return f.emit(combined, wire.FlowIncrease), true
		case combined > prev:
			return f.emit(combined, wire.FlowDecrease), true
		default:
			f.prevOcc = combined
			return 0, false
		}
	}
}

func emergencyKind(z zone) wire.FlowKind {
	if z == zoneEmergencyMajor {
		return wire.FlowEmergencyMajor
	}
	return wire.FlowEmergencyMinor
}

func (f *Policy) emit(combined int, k wire.FlowKind) wire.FlowKind {
	f.sinceLast = 0
	f.prevOcc = combined
	f.started = true
	if k == wire.FlowEmergencyMajor || k == wire.FlowEmergencyMinor {
		f.emergencyArmed = false
		f.framesInDip = 0
	}
	return k
}

// Rearm forces the emergency trigger armed — called when the client knows
// the situation changed (a seek flushed the buffers), so the next frame
// below a critical threshold requests a fresh refill.
func (f *Policy) Rearm() { f.emergencyArmed = true }
