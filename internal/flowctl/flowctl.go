// Package flowctl implements both halves of the paper's loosely-coupled,
// feedback-based flow control (§4):
//
//   - Policy is the client side: the Figure 2 water-mark policy that emits
//     increase/decrease requests at f_normal or f_urgent frequency based on
//     buffer occupancy, plus the two-level emergency requests of §4.1;
//   - RateController is the server side: a per-client transmission rate
//     adjusted ±1 frame/s per request, with a decaying emergency quantity
//     that refills the client's buffers quickly after an irregularity
//     period without persisting long enough to overflow them.
package flowctl

import "fmt"

// Params collects every tunable of the flow-control mechanism. The zero
// value is not valid; use DefaultParams (the paper's prototype values) and
// override as needed.
type Params struct {
	// CombinedCapacity is the total client buffer space in frames
	// (software + hardware ≈ 2.4 s of video).
	CombinedCapacity int
	// SoftwareCapacity is the software buffer's share, in frames. The
	// emergency thresholds are fractions of it: the software buffer is
	// the early-warning gauge — it drains first during an irregularity
	// period while the decoder buffer is still being consumed.
	SoftwareCapacity int
	// LowWater and HighWater are combined-occupancy thresholds the
	// policy keeps the buffers between (73% and 88% of capacity).
	LowWater  int
	HighWater int
	// CriticalMinor and CriticalMajor are the §4.1 emergency thresholds
	// on the software buffer occupancy (30% and 15% of its capacity):
	// crossing them is what migrations, startup and seeks do.
	CriticalMinor int
	CriticalMajor int
	// NormalEvery / UrgentEvery are the f_normal and f_urgent check
	// frequencies, in received frames (8 and 4 in the prototype:
	// "flow control messages are sent every 8 received frames, and
	// otherwise the frequency is doubled").
	NormalEvery int
	UrgentEvery int
	// EmergencyMinorQ / EmergencyMajorQ are the base emergency quantities
	// in extra frames/s (6 and 12).
	EmergencyMinorQ int
	EmergencyMajorQ int
	// EmergencyDecay is the per-second decay factor f ∈ (0,1) (0.8).
	EmergencyDecay float64
	// DefaultRate is the transmission rate used at session start,
	// frames/s (the movie's nominal rate).
	DefaultRate int
	// MinRate / MaxRate clamp the granted base rate. The paper frames
	// normal transmission as a CBR reservation at the nominal rate with
	// a separate emergency VBR allowance (§4.1), so the base rate only
	// drifts a little around nominal (±10% by default) — enough to track
	// clock skew between sender and decoder; refilling after an
	// irregularity is the emergency mechanism's job, not the base rate's.
	MinRate int
	MaxRate int
}

// DefaultParams returns the paper's prototype parameter set for a
// 1.4 Mbps / 30 fps stream with 2.4 s of client buffering. See DESIGN.md
// §2 for the derivation of each value.
func DefaultParams() Params {
	const (
		capacity = 74 // 37 software frames + ~37 frames of 240KB decoder
		software = 37
	)
	return Params{
		CombinedCapacity: capacity,
		SoftwareCapacity: software,
		LowWater:         capacity * 73 / 100, // 54 frames ≈ 1.7s
		HighWater:        capacity * 88 / 100, // 65 frames
		CriticalMinor:    software * 30 / 100, // 11 software frames
		CriticalMajor:    software * 15 / 100, // 5 software frames
		NormalEvery:      8,
		UrgentEvery:      4,
		EmergencyMinorQ:  6,
		EmergencyMajorQ:  12,
		EmergencyDecay:   0.8,
		DefaultRate:      30,
		MinRate:          27, // nominal −10%
		MaxRate:          33, // nominal +10%
	}
}

// Validate reports the first inconsistency in the parameter set.
func (p Params) Validate() error {
	switch {
	case p.CombinedCapacity <= 0:
		return fmt.Errorf("flowctl: CombinedCapacity %d", p.CombinedCapacity)
	case p.SoftwareCapacity <= 0 || p.SoftwareCapacity > p.CombinedCapacity:
		return fmt.Errorf("flowctl: SoftwareCapacity %d of %d", p.SoftwareCapacity, p.CombinedCapacity)
	case !(0 < p.CriticalMajor && p.CriticalMajor <= p.CriticalMinor && p.CriticalMinor <= p.SoftwareCapacity):
		return fmt.Errorf("flowctl: critical thresholds %d/%d", p.CriticalMajor, p.CriticalMinor)
	case !(p.LowWater < p.HighWater && p.HighWater <= p.CombinedCapacity && p.LowWater > 0):
		return fmt.Errorf("flowctl: water marks %d/%d of %d", p.LowWater, p.HighWater, p.CombinedCapacity)
	case p.NormalEvery <= 0 || p.UrgentEvery <= 0 || p.UrgentEvery > p.NormalEvery:
		return fmt.Errorf("flowctl: check frequencies %d/%d", p.NormalEvery, p.UrgentEvery)
	case p.EmergencyDecay <= 0 || p.EmergencyDecay >= 1:
		return fmt.Errorf("flowctl: decay %v outside (0,1)", p.EmergencyDecay)
	case p.EmergencyMinorQ < 0 || p.EmergencyMajorQ < p.EmergencyMinorQ:
		return fmt.Errorf("flowctl: emergency quantities %d/%d", p.EmergencyMinorQ, p.EmergencyMajorQ)
	case p.DefaultRate <= 0 || p.MinRate <= 0 || p.MaxRate < p.DefaultRate:
		return fmt.Errorf("flowctl: rates default=%d min=%d max=%d", p.DefaultRate, p.MinRate, p.MaxRate)
	}
	return nil
}

// EmergencyTotal returns the total number of extra frames a decaying
// emergency burst transmits: the sum of the iterated truncated sequence
// q, ⌊q·f⌋, ⌊⌊q·f⌋·f⌋, … — 43 frames for q=12, f=0.8 and 15 for q=6
// (§4.1: "the resulting sequence sum is 43 frames" / "sums up to 15").
func EmergencyTotal(q int, f float64) int {
	total := 0
	for q > 0 {
		total += q
		q = int(float64(q) * f)
	}
	return total
}
