package flowctl

import "repro/internal/wire"

// RateController is the server-side per-client transmission rate state
// (§4, §4.1): a base rate adjusted ±1 frame/s per client request, plus a
// decaying emergency quantity. While the emergency quantity is positive,
// ordinary flow-control requests are ignored.
//
// RateController is not safe for concurrent use; the server serializes
// access per client.
type RateController struct {
	p         Params
	base      int // granted steady-state rate, frames/s
	emergency int // extra frames/s, decaying
}

// NewRateController starts at the parameter set's default rate.
func NewRateController(p Params) *RateController {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &RateController{p: p, base: p.DefaultRate}
}

// Reset reinitializes the controller in place to the state NewRateController
// would produce, so pooled per-client state can be reused across session
// incarnations without reallocating.
func (r *RateController) Reset(p Params) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	*r = RateController{p: p, base: p.DefaultRate}
}

// Rate returns the current transmission rate in frames/s: the base rate
// plus the live emergency quantity.
func (r *RateController) Rate() int { return r.base + r.emergency }

// Base returns the granted steady-state rate without the emergency boost.
func (r *RateController) Base() int { return r.base }

// EmergencyActive reports whether an emergency burst is still decaying.
func (r *RateController) EmergencyActive() bool { return r.emergency > 0 }

// OnRequest applies one client flow-control request.
func (r *RateController) OnRequest(k wire.FlowKind) {
	switch k {
	case wire.FlowEmergencyMajor:
		r.boost(r.p.EmergencyMajorQ)
	case wire.FlowEmergencyMinor:
		r.boost(r.p.EmergencyMinorQ)
	case wire.FlowIncrease:
		if r.emergency > 0 {
			return // §4.1: ignore ordinary requests during an emergency
		}
		if r.base < r.p.MaxRate {
			r.base++
		}
	case wire.FlowDecrease:
		if r.emergency > 0 {
			return
		}
		if r.base > r.p.MinRate {
			r.base--
		}
	}
}

// boost raises the emergency quantity to at least q. A stronger emergency
// arriving during a weaker one upgrades it; a weaker one changes nothing.
func (r *RateController) boost(q int) {
	if q > r.emergency {
		r.emergency = q
	}
}

// DecayTick applies one second of decay to the emergency quantity:
// qₙ₊₁ = ⌊qₙ·f⌋, the iterated truncation whose sum is the paper's 43
// (q=12) and ~15 (q=6) extra frames.
func (r *RateController) DecayTick() {
	if r.emergency > 0 {
		r.emergency = int(float64(r.emergency) * r.p.EmergencyDecay)
	}
}

// SetBase overrides the granted rate — used when a server takes over a
// migrated client and resumes at "the offset and transmission rate that
// were last heard from the previous server" (§5.2).
func (r *RateController) SetBase(rate int) {
	if rate < r.p.MinRate {
		rate = r.p.MinRate
	}
	if rate > r.p.MaxRate {
		rate = r.p.MaxRate
	}
	r.base = rate
}
