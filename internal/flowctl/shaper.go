package flowctl

import (
	"fmt"
	"time"
)

// ShaperParams configures a token-bucket egress shaper.
type ShaperParams struct {
	// Rate is the sustained egress budget in tokens (bytes) per second.
	Rate int64
	// Burst is the bucket depth: how many tokens may accumulate while the
	// egress is idle, and therefore how large a back-to-back burst can be.
	// Zero defaults to a quarter second of Rate.
	Burst int64
}

// Validate reports whether the parameters are usable.
func (p ShaperParams) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("flowctl: shaper rate %d must be positive", p.Rate)
	}
	if p.Burst < 0 {
		return fmt.Errorf("flowctl: shaper burst %d must be non-negative", p.Burst)
	}
	const maxBurst = 1 << 30
	if p.Burst > maxBurst || p.Rate > maxBurst {
		return fmt.Errorf("flowctl: shaper rate/burst above %d not supported", maxBurst)
	}
	return nil
}

// Shaper is a token-bucket egress shaper with two service classes. Reserved
// traffic is never blocked — its sessions were admitted against the budget,
// so the shaper's job is to account for them first; the bucket may run into
// debt (floored at one burst) and best-effort traffic is what actually
// yields: TakeBestEffort fails while the bucket is empty or in debt, and
// UnderPressure signals the degrade ladder before refusals become necessary.
//
// Time comes from an injected now func (the server passes clock.Virtual's
// Now), so shaping is exactly as deterministic as the simulation driving it.
// Refill is lazy integer arithmetic on call — no background task, no floats,
// no allocation — and the clock cursor advances only by the time the
// credited tokens actually took to accrue, so sub-token remainders carry
// over instead of being lost to rounding.
//
// A Shaper is not safe for concurrent use; the server calls it under its
// session mutex.
type Shaper struct {
	now    func() time.Time
	rate   int64
	burst  int64
	tokens int64
	last   time.Time // refill cursor: credit has been granted up to here
}

// NewShaper returns a full bucket. It panics on invalid parameters, same as
// NewRateController — shaper configs are static and a bad one is a bug.
func NewShaper(now func() time.Time, p ShaperParams) *Shaper {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.Burst == 0 {
		p.Burst = p.Rate / 4
		if p.Burst == 0 {
			p.Burst = 1
		}
	}
	return &Shaper{now: now, rate: p.Rate, burst: p.Burst, tokens: p.Burst, last: now()}
}

// refill credits tokens for the time elapsed since the cursor.
func (s *Shaper) refill() {
	now := s.now()
	dt := now.Sub(s.last)
	if dt <= 0 {
		return
	}
	// If the elapsed time is enough to fill the bucket from its current
	// level, short-circuit: this both caps the arithmetic below (no
	// overflow however long the idle gap) and discards idle time beyond
	// full, which is the token-bucket contract.
	fill := (s.burst-s.tokens)*int64(time.Second)/s.rate + 1
	if int64(dt) >= fill {
		s.tokens = s.burst
		s.last = now
		return
	}
	add := s.rate * int64(dt) / int64(time.Second)
	if add <= 0 {
		return
	}
	s.tokens += add
	if s.tokens >= s.burst {
		s.tokens = s.burst
		s.last = now
		return
	}
	s.last = s.last.Add(time.Duration(add * int64(time.Second) / s.rate))
}

// TakeReserved charges n tokens for a reserved-class send. It always
// succeeds: reserved sessions were admitted against the budget and must not
// jitter. Overdraft is floored at one burst of debt, which bounds how long
// best-effort traffic can stay locked out after a reserved spike.
func (s *Shaper) TakeReserved(n int) {
	s.refill()
	s.tokens -= int64(n)
	if s.tokens < -s.burst {
		s.tokens = -s.burst
	}
}

// TakeBestEffort charges n tokens for a best-effort send if the bucket has
// any credit, and reports whether the send may proceed. A frame may drive
// the bucket below zero (frames are not split), in which case subsequent
// best-effort sends wait for the refill.
func (s *Shaper) TakeBestEffort(n int) bool {
	s.refill()
	if s.tokens <= 0 {
		return false
	}
	s.tokens -= int64(n)
	if s.tokens < -s.burst {
		s.tokens = -s.burst
	}
	return true
}

// UnderPressure reports whether the bucket has drained below a quarter of
// its depth — the early-warning signal that drives best-effort quality
// shedding before any frame has to be withheld outright.
func (s *Shaper) UnderPressure() bool {
	s.refill()
	return s.tokens < s.burst/4
}

// Tokens returns the current bucket level (possibly negative), after refill.
func (s *Shaper) Tokens() int64 {
	s.refill()
	return s.tokens
}

// Burst returns the configured bucket depth.
func (s *Shaper) Burst() int64 { return s.burst }
