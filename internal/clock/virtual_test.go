package clock

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var testEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	c := NewVirtual(testEpoch)
	if got := c.Now(); !got.Equal(testEpoch) {
		t.Fatalf("Now() = %v, want %v", got, testEpoch)
	}
}

func TestVirtualAfterFuncFiresInOrder(t *testing.T) {
	c := NewVirtual(testEpoch)
	var got []int
	c.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	c.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	c.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })

	if n := c.Advance(100 * time.Millisecond); n != 3 {
		t.Fatalf("Advance executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestVirtualTieBreakIsSchedulingOrder(t *testing.T) {
	c := NewVirtual(testEpoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(5*time.Millisecond, func() { got = append(got, i) })
	}
	c.Advance(5 * time.Millisecond)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("equal-deadline events ran out of scheduling order: %v", got)
	}
}

func TestVirtualAdvanceSetsTimeExactly(t *testing.T) {
	c := NewVirtual(testEpoch)
	c.Advance(1700 * time.Millisecond)
	want := testEpoch.Add(1700 * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestVirtualNowDuringCallback(t *testing.T) {
	c := NewVirtual(testEpoch)
	var at time.Time
	c.AfterFunc(42*time.Millisecond, func() { at = c.Now() })
	c.Advance(time.Second)
	if want := testEpoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("Now() inside callback = %v, want %v", at, want)
	}
}

func TestVirtualStop(t *testing.T) {
	c := NewVirtual(testEpoch)
	fired := false
	tm := c.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualStopAfterFire(t *testing.T) {
	c := NewVirtual(testEpoch)
	tm := c.AfterFunc(10*time.Millisecond, func() {})
	c.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after firing = true, want false")
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	c := NewVirtual(testEpoch)
	var times []time.Duration
	var chain func()
	chain = func() {
		times = append(times, c.Now().Sub(testEpoch))
		if len(times) < 5 {
			c.AfterFunc(10*time.Millisecond, chain)
		}
	}
	c.AfterFunc(10*time.Millisecond, chain)
	c.Advance(time.Second)
	if len(times) != 5 {
		t.Fatalf("chained callback ran %d times, want 5", len(times))
	}
	for i, d := range times {
		if want := time.Duration(i+1) * 10 * time.Millisecond; d != want {
			t.Fatalf("chain step %d at %v, want %v", i, d, want)
		}
	}
}

func TestVirtualNegativeDelayClampsToNow(t *testing.T) {
	c := NewVirtual(testEpoch)
	fired := false
	c.AfterFunc(-time.Hour, func() { fired = true })
	if fired {
		t.Fatal("callback ran synchronously inside AfterFunc")
	}
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay callback did not run at current time")
	}
}

func TestVirtualDrainLimit(t *testing.T) {
	c := NewVirtual(testEpoch)
	n := 0
	var rearm func()
	rearm = func() {
		n++
		c.AfterFunc(time.Millisecond, rearm)
	}
	c.AfterFunc(time.Millisecond, rearm)
	if got := c.Drain(100); got != 100 {
		t.Fatalf("Drain(100) = %d, want 100", got)
	}
	if n != 100 {
		t.Fatalf("self-rearming callback ran %d times, want 100", n)
	}
}

func TestVirtualAdvanceToPast(t *testing.T) {
	c := NewVirtual(testEpoch)
	c.Advance(time.Second)
	c.AdvanceTo(testEpoch) // must not move time backwards
	if got := c.Now(); got.Before(testEpoch.Add(time.Second)) {
		t.Fatalf("AdvanceTo moved time backwards to %v", got)
	}
}

func TestVirtualConcurrentScheduling(t *testing.T) {
	c := NewVirtual(testEpoch)
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AfterFunc(time.Duration(j)*time.Millisecond, func() {
					mu.Lock()
					count++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	c.Advance(time.Second)
	if count != 800 {
		t.Fatalf("executed %d events, want 800", count)
	}
}

// TestVirtualFiringOrderMatchesDeadlines is a property test: for any set of
// delays, callbacks observe non-decreasing clock readings and every event
// within the advanced window fires exactly once.
func TestVirtualFiringOrderMatchesDeadlines(t *testing.T) {
	prop := func(delays []uint16) bool {
		c := NewVirtual(testEpoch)
		fired := 0
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			c.AfterFunc(d, func() {
				at := c.Now().Sub(testEpoch)
				if at < last {
					ok = false
				}
				last = at
				fired++
			})
		}
		c.Advance(time.Duration(1<<16) * time.Microsecond)
		return ok && fired == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicTicksAtPeriod(t *testing.T) {
	c := NewVirtual(testEpoch)
	var ticks []time.Duration
	p := Every(c, 500*time.Millisecond, func() {
		ticks = append(ticks, c.Now().Sub(testEpoch))
	})
	defer p.Stop()
	c.Advance(2 * time.Second)
	if len(ticks) != 4 {
		t.Fatalf("got %d ticks in 2s at 500ms, want 4", len(ticks))
	}
	for i, d := range ticks {
		if want := time.Duration(i+1) * 500 * time.Millisecond; d != want {
			t.Fatalf("tick %d at %v, want %v", i, d, want)
		}
	}
}

func TestPeriodicStop(t *testing.T) {
	c := NewVirtual(testEpoch)
	n := 0
	p := Every(c, 100*time.Millisecond, func() { n++ })
	c.Advance(250 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	c.Advance(time.Second)
	if n != 2 {
		t.Fatalf("ticks after stop: got %d total, want 2", n)
	}
}

func TestPeriodicSetPeriod(t *testing.T) {
	c := NewVirtual(testEpoch)
	var ticks []time.Duration
	var p *Periodic
	p = Every(c, 100*time.Millisecond, func() {
		ticks = append(ticks, c.Now().Sub(testEpoch))
		p.SetPeriod(300 * time.Millisecond)
	})
	defer p.Stop()
	c.Advance(time.Second)
	// The tick at 100ms was armed with the original period before fn ran,
	// so the new 300ms period takes effect from the 200ms tick onward.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond, 800 * time.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestPeriodicPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	Every(NewVirtual(testEpoch), 0, func() {})
}

func TestRealClockBasics(t *testing.T) {
	var c Real
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("Real.Now() went backwards")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.AfterFunc callback never ran")
	}
}

func TestRealTimerStop(t *testing.T) {
	var c Real
	tm := c.AfterFunc(time.Hour, func() { t.Error("stopped real timer fired") })
	if !tm.Stop() {
		t.Fatal("Stop() = false for pending real timer")
	}
}

// TestVirtualDeterminism replays a randomized scheduling workload twice and
// requires identical execution traces.
func TestVirtualDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		c := NewVirtual(testEpoch)
		var trace []int
		for i := 0; i < 200; i++ {
			i := i
			c.AfterFunc(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				trace = append(trace, i)
			})
		}
		c.Advance(time.Second)
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkVirtualAfterFuncAndFire(b *testing.B) {
	c := NewVirtual(testEpoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AfterFunc(time.Millisecond, func() {})
		c.Step()
	}
}
