package clock

import (
	"sync"
	"testing"
	"time"
)

// Tests for the coalescing timer-wheel internals: many events sharing one
// deadline live in one bucket, and cancellation inside a bucket must
// preserve the firing order of the survivors.

func TestWheelCoalescesSharedDeadlines(t *testing.T) {
	c := NewVirtual(testEpoch)
	for i := 0; i < 100; i++ {
		c.AfterFunc(time.Second, func() {})
	}
	for i := 0; i < 50; i++ {
		c.AfterFunc(2*time.Second, func() {})
	}
	c.mu.Lock()
	heapLen := len(c.bq)
	c.mu.Unlock()
	if heapLen != 2 {
		t.Fatalf("150 events on 2 deadlines occupy %d heap entries, want 2", heapLen)
	}
	if got := c.Len(); got != 150 {
		t.Fatalf("Len() = %d, want 150", got)
	}
	if n := c.Advance(2 * time.Second); n != 150 {
		t.Fatalf("Advance executed %d events, want 150", n)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len() after drain = %d, want 0", got)
	}
}

func TestWheelStopInsideBucketKeepsOrder(t *testing.T) {
	c := NewVirtual(testEpoch)
	var got []int
	timers := make([]Timer, 10)
	for i := 0; i < 10; i++ {
		i := i
		timers[i] = c.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	// Cancel a middle, the first and the last entry of the bucket.
	timers[4].Stop()
	timers[0].Stop()
	timers[9].Stop()
	c.Advance(time.Second)
	want := []int{1, 2, 3, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestWheelSameInstantScheduleDuringDrain(t *testing.T) {
	// A callback scheduling at zero delay lands in the very bucket being
	// drained and must fire in the same pass, after everything already
	// pending at that instant.
	c := NewVirtual(testEpoch)
	var got []string
	c.AfterFunc(time.Second, func() {
		got = append(got, "a")
		c.AfterFunc(0, func() { got = append(got, "nested") })
	})
	c.AfterFunc(time.Second, func() { got = append(got, "b") })
	c.Advance(time.Second)
	want := []string{"a", "b", "nested"}
	if len(got) != len(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestWheelStopLastPendingReclaimsBucket(t *testing.T) {
	c := NewVirtual(testEpoch)
	tm := c.AfterFunc(time.Second, func() {})
	c.AfterFunc(2*time.Second, func() {})
	tm.Stop()
	c.mu.Lock()
	heapLen, mapLen := len(c.bq), c.buckets.n
	c.mu.Unlock()
	if heapLen != 1 || mapLen != 1 {
		t.Fatalf("after cancelling a bucket's only event: heap=%d map=%d, want 1/1", heapLen, mapLen)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
}

// TestPeriodicStopAtMostOneTickAfter pins the Stop contract under -race: a
// tick whose timer already fired may still complete after Stop returns, but
// never more than one, and no tick starts afterwards. Run with -race this
// also proves Stop and tick don't race on Periodic state.
func TestPeriodicStopAtMostOneTickAfter(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		c := NewVirtual(testEpoch)
		var mu sync.Mutex
		ticks := 0
		p := Every(c, time.Millisecond, func() {
			mu.Lock()
			ticks++
			mu.Unlock()
		})

		done := make(chan struct{})
		go func() {
			defer close(done)
			c.Advance(50 * time.Millisecond)
		}()
		// Let a few ticks happen, then stop concurrently with the advance.
		for {
			mu.Lock()
			n := ticks
			mu.Unlock()
			if n >= 3 {
				break
			}
		}
		p.Stop()
		mu.Lock()
		atStop := ticks
		mu.Unlock()
		<-done
		mu.Lock()
		final := ticks
		mu.Unlock()
		if final > atStop+1 {
			t.Fatalf("iteration %d: %d ticks completed after Stop returned, want ≤ 1", iter, final-atStop)
		}
	}
}

// TestPeriodicStopFromWithinTick pins the reentrant use every display loop
// relies on: fn calling Stop on its own task must not deadlock, and no tick
// runs afterwards.
func TestPeriodicStopFromWithinTick(t *testing.T) {
	c := NewVirtual(testEpoch)
	n := 0
	var p *Periodic
	p = Every(c, time.Millisecond, func() {
		n++
		if n == 3 {
			p.Stop()
		}
	})
	c.Advance(time.Second)
	if n != 3 {
		t.Fatalf("self-stopping periodic ran %d ticks, want 3", n)
	}
}
