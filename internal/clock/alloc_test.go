package clock

import (
	"testing"
	"time"
)

// These tests pin the Virtual clock's free-list guarantees: the arm → fire →
// release cycle that frame pacing and packet delivery run tens of thousands
// of times per simulated second must not allocate once the first event
// record exists.

func TestAllocsAfterFuncFireRelease(t *testing.T) {
	clk := NewVirtual(time.Unix(0, 0))
	fn := func() {}
	tm := clk.AfterFunc(time.Millisecond, fn) // warm: creates the one record
	clk.Advance(time.Millisecond)
	Release(tm)
	allocs := testing.AllocsPerRun(1000, func() {
		tm := clk.AfterFunc(time.Millisecond, fn)
		clk.Advance(time.Millisecond)
		Release(tm)
	})
	if allocs != 0 {
		t.Fatalf("warm AfterFunc/fire/Release cycle = %v allocs/op, want 0", allocs)
	}
}

func TestAllocsAfterFuncStopRelease(t *testing.T) {
	clk := NewVirtual(time.Unix(0, 0))
	fn := func() {}
	Release(clk.AfterFunc(time.Millisecond, fn)) // warm
	allocs := testing.AllocsPerRun(1000, func() {
		tm := clk.AfterFunc(time.Millisecond, fn)
		tm.Stop()
		Release(tm)
	})
	if allocs != 0 {
		t.Fatalf("warm AfterFunc/Stop/Release cycle = %v allocs/op, want 0", allocs)
	}
}

func TestAllocsScheduleFire(t *testing.T) {
	clk := NewVirtual(time.Unix(0, 0))
	fn := func() {}
	clk.Schedule(time.Millisecond, fn) // warm
	clk.Advance(time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		clk.Schedule(time.Millisecond, fn)
		clk.Advance(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("warm Schedule/fire cycle = %v allocs/op, want 0", allocs)
	}
}
