package clock

import (
	"math/rand"
	"testing"
)

// TestBucketTableAgainstMap drives the open-addressing table with a random
// interleave of inserts and deletes and checks every lookup against a plain
// map — including after heavy churn, which exercises the backward-shift
// deletion that keeps probe runs tombstone-free.
func TestBucketTableAgainstMap(t *testing.T) {
	var bt bucketTable
	ref := make(map[int64]*bucket)
	rng := rand.New(rand.NewSource(42))
	live := make([]int64, 0, 1024)

	for step := 0; step < 200_000; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			// Structured keys like real deadlines: multiples of a few
			// periods, plus occasional jittered odd values.
			k := int64(rng.Intn(5_000)) * 33_366_600
			if rng.Intn(10) == 0 {
				k += int64(rng.Intn(1_000_000))
			}
			if _, ok := ref[k]; ok {
				continue
			}
			b := &bucket{nanos: k}
			bt.put(k, b)
			ref[k] = b
			live = append(live, k)
		} else {
			i := rng.Intn(len(live))
			k := live[i]
			bt.del(k)
			delete(ref, k)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%1_000 == 0 {
			for k, want := range ref {
				if got := bt.get(k); got != want {
					t.Fatalf("step %d: get(%d) = %p, want %p", step, k, got, want)
				}
			}
			if bt.get(-1) != nil {
				t.Fatalf("step %d: ghost entry for absent key", step)
			}
		}
	}
	if bt.n != len(ref) {
		t.Fatalf("size drift: table %d, map %d", bt.n, len(ref))
	}
	for k, want := range ref {
		if got := bt.get(k); got != want {
			t.Fatalf("final: get(%d) = %p, want %p", k, got, want)
		}
	}
	// Deleting everything must leave a fully reusable table.
	for _, k := range live {
		bt.del(k)
	}
	if bt.n != 0 {
		t.Fatalf("n = %d after deleting all keys", bt.n)
	}
}
