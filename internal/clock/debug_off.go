//go:build !clockdebug

package clock

// releaseDebug gates the double-release assertion in Release. The default
// build keeps the historical behavior — a Release of an already-recycled
// record is silently ignored, since the record may already back an unrelated
// timer and touching it would corrupt the queue. Build with -tags clockdebug
// (CI does, for the race suite) to turn such a call into a panic and surface
// the caller bug instead of masking it.
const releaseDebug = false
