package clock

// bucketTable maps deadline nanos to their pending bucket. It replaces a
// map[int64]*bucket on the clock's hottest path: every arm probes it, every
// fresh instant inserts, and every drained instant deletes — at simulation
// scale that is millions of runtime map calls whose hashing and bucket-group
// scans dominate armLocked. A flat linear-probe table with fibonacci hashing
// does the same job in a few loads per call.
//
// Occupancy is marked by vals[i] != nil (keys alone can't mark emptiness:
// any int64, including 0, is a legal deadline). Deletion backward-shifts the
// probe run instead of leaving tombstones, so probe lengths stay short no
// matter how many instants come and go. The zero value is ready to use.
type bucketTable struct {
	keys []int64
	vals []*bucket
	mask uint64
	n    int
}

// hashNanos spreads structured deadlines (mostly multiples of a few pacing
// periods) across the table. Fibonacci multiplicative hashing is enough: the
// high bits of k*phi are well mixed even for arithmetic-progression keys.
func (t *bucketTable) hashNanos(k int64) uint64 {
	return (uint64(k) * 0x9e3779b97f4a7c15) >> 32 & t.mask
}

func (t *bucketTable) get(k int64) *bucket {
	if t.n == 0 {
		return nil
	}
	for i := t.hashNanos(k); ; i = (i + 1) & t.mask {
		if t.vals[i] == nil {
			return nil
		}
		if t.keys[i] == k {
			return t.vals[i]
		}
	}
}

// put inserts k, which must not already be present.
func (t *bucketTable) put(k int64, b *bucket) {
	// Grow at 5/8 load: linear probing stays O(1) well past that, but the
	// headroom keeps worst-case runs short during fan-in bursts.
	if t.vals == nil || t.n >= len(t.vals)*5/8 {
		t.grow()
	}
	i := t.hashNanos(k)
	for t.vals[i] != nil {
		i = (i + 1) & t.mask
	}
	t.keys[i] = k
	t.vals[i] = b
	t.n++
}

// del removes k if present, backward-shifting the rest of its probe run so
// lookups never need tombstones.
func (t *bucketTable) del(k int64) {
	if t.n == 0 {
		return
	}
	i := t.hashNanos(k)
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & t.mask
	}
	// Standard linear-probe deletion: walk the run after i, moving back any
	// entry whose home slot means it could have probed into i's position.
	j := i
	for {
		j = (j + 1) & t.mask
		if t.vals[j] == nil {
			break
		}
		home := t.hashNanos(t.keys[j])
		// Entry at j may fill slot i iff i lies within [home, j] cyclically.
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.keys[i] = t.keys[j]
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.vals[i] = nil
	t.n--
}

func (t *bucketTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	size := 64
	if len(oldVals) > 0 {
		size = len(oldVals) * 2
	}
	t.keys = make([]int64, size)
	t.vals = make([]*bucket, size)
	t.mask = uint64(size - 1)
	t.n = 0
	for i, b := range oldVals {
		if b != nil {
			t.put(oldKeys[i], b)
		}
	}
}
