package clock

import (
	"sync"
	"time"
)

// Periodic invokes a function at a fixed period on any Clock. It is the
// building block for heartbeats, state-sync broadcasts and frame pacing.
// Unlike time.Ticker it is implemented with AfterFunc re-arming, so it works
// identically on Real and Virtual clocks.
type Periodic struct {
	mu      sync.Mutex
	c       Clock
	v       *Virtual // non-nil when c is a Virtual: enables the rearm fast path
	period  time.Duration
	fn      func()
	tickFn  func() // p.tick, bound once: a method value allocates per use
	timer   Timer
	stopped bool
}

// Every schedules fn to run every period on c, starting one period from
// now. It panics if period is not positive; a zero-period heartbeat would
// wedge a Virtual clock in an infinite event cascade.
func Every(c Clock, period time.Duration, fn func()) *Periodic {
	if period <= 0 {
		panic("clock: Every requires a positive period")
	}
	p := &Periodic{c: c, period: period, fn: fn}
	p.v, _ = c.(*Virtual)
	p.tickFn = p.tick
	p.mu.Lock()
	p.timer = c.AfterFunc(period, p.tickFn)
	p.mu.Unlock()
	return p
}

func (p *Periodic) tick() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	// The pending timer just fired; re-arm it so a long-lived heartbeat
	// reuses one event record forever. On a Virtual clock the record is
	// re-armed in place under one queue lock; elsewhere it is recycled and
	// re-issued, which is the same lifecycle in two steps.
	if p.v == nil || !p.v.rearm(p.timer, p.period) {
		Release(p.timer)
		p.timer = p.c.AfterFunc(p.period, p.tickFn)
	}
	p.mu.Unlock()
	p.fn()
}

// SetPeriod changes the interval used when the task next re-arms. It does
// not reschedule the currently pending tick.
func (p *Periodic) SetPeriod(d time.Duration) {
	if d <= 0 {
		panic("clock: SetPeriod requires a positive period")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.period = d
}

// Stop cancels the task: the pending timer is released and no further tick
// is ever dispatched. A tick whose timer has already fired may still be
// between re-arming and invoking fn when Stop is called — tick drops the
// mutex before calling fn so that fn may itself call Stop (display loops
// stop their own task from inside the tick) — so on any clock at most one
// invocation of fn can still complete after Stop returns. Callers needing a
// hard cut must make fn check its own stop condition, as every fn in this
// repository does by re-checking state under its subsystem lock.
func (p *Periodic) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.stopped = true
	if p.timer != nil {
		Release(p.timer)
		p.timer = nil
	}
}
