package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Periodic invokes a function at a fixed period on any Clock. It is the
// building block for heartbeats, state-sync broadcasts and frame pacing.
// Unlike time.Ticker it is implemented with AfterFunc re-arming, so it works
// identically on Real and Virtual clocks.
//
// The tick fast path takes no Periodic lock: period and stopped are
// atomics, and timer is only ever written under mu (at creation, on the
// re-issue slow path, never by Stop), so the in-place rearm can read it
// bare. Stop cancels the pending timer instead of recycling its record —
// recycling would let an unrelated caller reincarnate the record while a
// straggling tick still holds the handle, and rearm would then hijack the
// new owner's event. A cancelled record is never reissued, so the worst a
// straggler can do is observe stateStopped and bail.
type Periodic struct {
	c       Clock
	v       *Virtual // non-nil when c is a Virtual: enables the rearm fast path
	period  atomic.Int64
	fn      func()
	tickFn  func() // p.tick, bound once: a method value allocates per use
	stopped atomic.Bool

	mu    sync.Mutex // guards timer re-issue on the slow path
	timer Timer
}

// Every schedules fn to run every period on c, starting one period from
// now. It panics if period is not positive; a zero-period heartbeat would
// wedge a Virtual clock in an infinite event cascade.
func Every(c Clock, period time.Duration, fn func()) *Periodic {
	if period <= 0 {
		panic("clock: Every requires a positive period")
	}
	p := &Periodic{c: c, fn: fn}
	p.period.Store(int64(period))
	p.v, _ = c.(*Virtual)
	p.tickFn = p.tick
	p.mu.Lock()
	p.timer = c.AfterFunc(period, p.tickFn)
	p.mu.Unlock()
	return p
}

func (p *Periodic) tick() {
	if p.stopped.Load() {
		return
	}
	period := time.Duration(p.period.Load())
	// The pending timer just fired; re-arm it so a long-lived heartbeat
	// reuses one event record forever. On a Virtual clock the record is
	// re-armed in place under one queue lock; elsewhere it is recycled and
	// re-issued, which is the same lifecycle in two steps.
	if p.v != nil && p.v.rearm(p.timer, period) {
		p.fn()
		return
	}
	p.mu.Lock()
	if !p.stopped.Load() {
		Release(p.timer)
		p.timer = p.c.AfterFunc(period, p.tickFn)
	}
	p.mu.Unlock()
	p.fn()
}

// SetPeriod changes the interval used when the task next re-arms. It does
// not reschedule the currently pending tick.
func (p *Periodic) SetPeriod(d time.Duration) {
	if d <= 0 {
		panic("clock: SetPeriod requires a positive period")
	}
	p.period.Store(int64(d))
}

// Stop cancels the task: the pending timer is stopped and no further tick
// is ever dispatched. A tick whose timer has already fired may still be
// between re-arming and invoking fn when Stop is called — tick never holds
// a lock across fn so that fn may itself call Stop (display loops stop
// their own task from inside the tick) — so on any clock at most one
// invocation of fn can still complete after Stop returns. Callers needing a
// hard cut must make fn check its own stop condition, as every fn in this
// repository does by re-checking state under its subsystem lock.
func (p *Periodic) Stop() {
	if p.stopped.Swap(true) {
		return
	}
	p.mu.Lock()
	if p.timer != nil {
		// Cancel but keep the handle: the lock-free fast path may still
		// read p.timer, so the field is never cleared once set.
		p.timer.Stop()
	}
	p.mu.Unlock()
}
