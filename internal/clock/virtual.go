package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is a deterministic discrete-event Clock. Events fire in deadline
// order; ties break in scheduling order, so a run is exactly reproducible.
//
// Virtual is safe for concurrent use, but events themselves execute
// sequentially on whichever goroutine drives the clock (Step, Advance or
// Drain), never concurrently with each other. Event callbacks may schedule
// further events and stop timers.
//
// The queue is a coalescing timer wheel: events sharing a deadline are
// grouped into one bucket (scheduling order within the bucket is creation
// order, which preserves the (when, seq) contract), and the buckets form a
// binary min-heap keyed on the deadline's integer nanoseconds. Simulated
// workloads schedule heavily onto shared instants — frame-pacing grids,
// zero-delay trampolines, heartbeats phase-locked at start — so the heap a
// frame-pacing timer percolates through is one or two orders of magnitude
// smaller than an event-per-entry heap, and the comparisons are single
// integer compares instead of time.Time method calls. Event records come
// from slab-allocated chunks recycled through a free list, so steady-state
// timer traffic — frame pacing, heartbeats, packet deliveries — allocates
// nothing: Schedule recycles its event automatically when it fires, and
// AfterFunc callers that are done with a Timer can hand its record back with
// Release.
type Virtual struct {
	mu       sync.Mutex
	now      time.Time
	nowNanos int64 // now.UnixNano(), cached: bucket keys are integer nanos

	// nowAtomic mirrors nowNanos so Now — the single hottest read in a
	// simulation — needs no lock: callers reconstruct the time.Time from
	// the base instant, which is exact integer arithmetic and therefore
	// equal to the locked chain of Adds it replaces.
	nowAtomic atomic.Int64
	base      time.Time
	baseNanos int64

	buckets bucketTable // pending buckets by deadline nanos
	bq      []bqEntry   // min-heap on deadline nanos (keys are unique)

	// Recycled bucket records, segregated by backing so a record whose evs
	// slice grew past the inline array is preferentially reissued to the
	// deadlines that need it: same-instant deferrals (d == 0) fan dozens of
	// events into one bucket, while serialized egress packets get unique
	// deadlines and never outgrow the inline array. One mixed LIFO list
	// would constantly hand small records to big instants and regrow them.
	freeB    []*bucket // inline-backed records
	freeBBig []*bucket // records with a grown evs slice (capacity stays warm)

	free  *event  // free list of event records
	slab  []event // current allocation chunk for fresh records
	slabN int

	bslab  []bucket // current allocation chunk for fresh buckets
	bslabN int

	seq     uint64
	runs    uint64 // total events executed, for diagnostics
	pending int    // armed events across all buckets
}

var _ Clock = (*Virtual)(nil)
var _ Scheduler = (*Virtual)(nil)

// eventSlabSize is how many event records one allocation provides. Capacity
// runs arm tens of thousands of concurrent events (one per in-flight packet,
// one per paced session); chunking the records keeps the cold-start cost at
// a few dozen allocations instead of one per record.
const eventSlabSize = 256

// bucketSlabSize is the same chunking for bucket records. Egress
// serialization gives most in-flight packets a unique deadline, so the
// high-water mark of simultaneous buckets tracks the high-water mark of
// events; without slabs every fresh instant would cost a bucket allocation
// plus its first entry-slice allocation.
const bucketSlabSize = 64

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	c := &Virtual{
		now:       start,
		nowNanos:  start.UnixNano(),
		base:      start,
		baseNanos: start.UnixNano(),
	}
	c.nowAtomic.Store(c.nowNanos)
	return c
}

// Now implements Clock. It is lock-free: the instant is reconstructed from
// the clock's base time, which yields a value identical to the internally
// tracked c.now (both are exact integer arithmetic from the same start).
func (c *Virtual) Now() time.Time {
	return c.base.Add(time.Duration(c.nowAtomic.Load() - c.baseNanos))
}

// bucket holds every pending event for one deadline instant. Entries before
// cur have already been consumed (their slots are nil); entries at or after
// cur are armed, in seq order — appends are creation-ordered and removals
// preserve relative order.
type bucket struct {
	nanos int64     // deadline in UnixNano; the heap key, unique per bucket
	when  time.Time // the deadline as first computed, for advancing now
	index int       // position in the bucket heap
	cur   int       // next entry to fire
	evs   []*event
	// inline backs evs for the common case — most instants hold a single
	// event — so a fresh bucket needs no entry-slice allocation; evs only
	// moves to the heap when a shared instant outgrows it.
	inline [4]*event
}

// takeEventLocked returns a blank event record: free list first, then the
// current slab, growing a fresh slab when both run dry. Caller holds mu.
func (c *Virtual) takeEventLocked() *event {
	if ev := c.free; ev != nil {
		c.free = ev.nextFree
		ev.nextFree = nil
		return ev
	}
	if c.slabN == len(c.slab) {
		c.slab = make([]event, eventSlabSize)
		c.slabN = 0
	}
	ev := &c.slab[c.slabN]
	c.slabN++
	ev.c = c
	return ev
}

// newEventLocked arms a recycled (or freshly slab-carved) event record.
// Caller must hold mu.
func (c *Virtual) newEventLocked(d time.Duration, f func(), autoFree bool) *event {
	if d < 0 {
		d = 0
	}
	ev := c.takeEventLocked()
	ev.fn = f
	ev.autoFree = autoFree
	c.armLocked(ev, d)
	return ev
}

// armLocked stamps a sequence number on ev and files it into the bucket for
// now+d, creating the bucket if the instant is fresh. Caller holds mu; ev
// must not be in any bucket.
func (c *Virtual) armLocked(ev *event, d time.Duration) {
	ev.seq = c.seq
	ev.state = statePending
	c.seq++

	nanos := c.nowNanos + int64(d)
	b := c.buckets.get(nanos)
	if b == nil {
		b = c.takeBucketLocked(d == 0)
		b.nanos = nanos
		b.when = c.now.Add(d)
		b.cur = 0
		c.buckets.put(nanos, b)
		c.pushBucketLocked(b)
	}
	ev.b = b
	ev.pos = len(b.evs)
	if len(b.evs) == cap(b.evs) && cap(b.evs) == len(b.inline) {
		// Outgrowing the inline array: jump straight to the steady-state
		// size for fan-in buckets instead of letting append double through
		// 8, 16, 32 — the grown backing stays with the record forever.
		// Recycled grown records usually hold a warm backing already, so
		// steal one (demoting the donor to the inline pool) before
		// allocating: fan-in instants mostly land on inline-backed records
		// popped from freeB, and without the steal every outgrow paid a
		// fresh slice while freeBBig sat on idle capacity.
		var evs []*event
		if n := len(c.freeBBig); n > 0 {
			donor := c.freeBBig[n-1]
			c.freeBBig[n-1] = nil
			c.freeBBig = c.freeBBig[:n-1]
			evs = donor.evs[:len(b.evs)]
			donor.evs = donor.inline[:0]
			c.freeB = append(c.freeB, donor)
		} else {
			evs = make([]*event, len(b.evs), 64)
		}
		copy(evs, b.evs)
		b.evs = evs
	}
	b.evs = append(b.evs, ev)
	c.pending++
}

// rearm re-arms a timer record from this clock for d from now, reusing the
// record (and its callback) instead of releasing and re-issuing it. For a
// fired timer this is exactly equivalent to Release followed by AfterFunc
// with the same fn — Release would push the record onto the free-list head
// and AfterFunc would pop that same record straight back, with one sequence
// number consumed either way — so replay order is untouched; it just skips
// the second lock round trip and the free-list churn. Returns false if the
// record is not reusable (foreign clock, or already released), in which case
// the caller must fall back to the two-step path.
func (c *Virtual) rearm(t Timer, d time.Duration) bool {
	ev, ok := t.(*event)
	if !ok || ev.c != c {
		return false
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.state {
	case statePending:
		c.unlinkLocked(ev)
	case stateFired:
		// Not queued; the record and its fn are intact and reusable.
	default:
		// stateStopped cleared fn; stateFree records may already back an
		// unrelated timer. Neither is safely re-armable.
		return false
	}
	c.armLocked(ev, d)
	return true
}

// takeBucketLocked issues a bucket record, preferring a grown one for
// same-instant deferrals (they fan many events into one bucket) and an
// inline-backed one for everything else. Caller holds mu.
func (c *Virtual) takeBucketLocked(big bool) *bucket {
	from := &c.freeB
	if big && len(c.freeBBig) > 0 || !big && len(c.freeB) == 0 {
		from = &c.freeBBig
	}
	if n := len(*from); n > 0 {
		b := (*from)[n-1]
		(*from)[n-1] = nil
		*from = (*from)[:n-1]
		return b
	}
	if c.bslabN == len(c.bslab) {
		c.bslab = make([]bucket, bucketSlabSize)
		c.bslabN = 0
	}
	b := &c.bslab[c.bslabN]
	c.bslabN++
	b.evs = b.inline[:0]
	return b
}

// AfterFunc implements Clock. The returned Timer's record is not recycled
// until the caller passes it to Release (or the Schedule fast path is used
// instead), so holding a handle across an arbitrary span stays safe.
func (c *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.newEventLocked(d, f, false)
}

// Schedule implements Scheduler: AfterFunc without the Timer handle. The
// internal event record returns to the free list as soon as the callback
// fires, so steady-state fire-and-forget scheduling does not allocate.
func (c *Virtual) Schedule(d time.Duration, f func()) {
	c.mu.Lock()
	c.newEventLocked(d, f, true)
	c.mu.Unlock()
}

// Len returns the number of pending events.
func (c *Virtual) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}

// Executed returns the total number of events run so far.
func (c *Virtual) Executed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Step executes the earliest pending event, advancing the clock to its
// deadline. It reports whether an event was executed.
func (c *Virtual) Step() bool {
	c.mu.Lock()
	fn := c.takeLocked(0, false)
	c.mu.Unlock()
	if fn == nil {
		return false
	}
	fn()
	return true
}

// takeLocked pops the earliest event due at or before limitNanos (no limit
// when limited is false), advances the clock to its deadline, and returns
// its callback — nil if no event qualifies. Auto-free events are recycled
// here, before the callback runs: nothing else references them, and the
// callback itself is already copied out. A drained bucket is left in place
// until its turn at the heap root comes again, so callbacks scheduling onto
// the same instant (zero-delay trampolines) append behind the cursor and
// fire this pass, in seq order. Caller holds mu.
func (c *Virtual) takeLocked(limitNanos int64, limited bool) func() {
	for {
		if len(c.bq) == 0 {
			return nil
		}
		if limited && c.bq[0].nanos > limitNanos {
			return nil
		}
		b := c.bq[0].b
		if b.cur == len(b.evs) {
			c.removeBucketLocked(b) // fully consumed; lazily reclaimed here
			continue
		}
		if b.nanos > c.nowNanos {
			c.now = b.when
			c.nowNanos = b.nanos
			c.nowAtomic.Store(b.nanos)
		}
		ev := b.evs[b.cur]
		b.evs[b.cur] = nil
		b.cur++
		c.runs++
		c.pending--
		ev.state = stateFired
		ev.b = nil
		fn := ev.fn
		if ev.autoFree {
			c.recycleLocked(ev)
		}
		return fn
	}
}

// Advance runs every event with a deadline at or before now+d, in order,
// then sets the clock to exactly now+d. It returns the number of events
// executed. Events scheduled by callbacks are included if they fall within
// the window.
func (c *Virtual) Advance(d time.Duration) int {
	c.mu.Lock()
	deadline := c.now.Add(d)
	c.mu.Unlock()
	return c.AdvanceTo(deadline)
}

// AdvanceTo runs every event with a deadline at or before t, then sets the
// clock to t (if t is later than the current time). It returns the number
// of events executed.
func (c *Virtual) AdvanceTo(t time.Time) int {
	limit := t.UnixNano()
	n := 0
	for {
		c.mu.Lock()
		fn := c.takeLocked(limit, true)
		if fn == nil {
			if limit > c.nowNanos {
				c.now = t
				c.nowNanos = limit
				c.nowAtomic.Store(limit)
			}
			c.mu.Unlock()
			return n
		}
		c.mu.Unlock()
		fn()
		n++
	}
}

// Drain runs events until none remain or limit events have executed.
// It returns the number of events executed. A limit of 0 means no limit;
// callers use a limit to guard against self-perpetuating timer chains
// (heartbeats reschedule themselves forever).
func (c *Virtual) Drain(limit int) int {
	n := 0
	for limit <= 0 || n < limit {
		if !c.Step() {
			break
		}
		n++
	}
	return n
}

// recycleLocked clears an event record and links it onto the free list.
// Caller holds mu; the event must no longer be in any bucket.
func (c *Virtual) recycleLocked(ev *event) {
	ev.fn = nil
	ev.b = nil
	ev.state = stateFree
	ev.nextFree = c.free
	c.free = ev
}

// unlinkLocked removes a pending event from its bucket, preserving the
// relative order of the remaining entries, and reclaims the bucket if
// nothing pending is left in it. Caller holds mu.
func (c *Virtual) unlinkLocked(ev *event) {
	b := ev.b
	i := ev.pos
	last := len(b.evs) - 1
	copy(b.evs[i:], b.evs[i+1:])
	b.evs[last] = nil
	b.evs = b.evs[:last]
	for j := i; j < last; j++ {
		b.evs[j].pos = j
	}
	ev.b = nil
	c.pending--
	if b.cur == len(b.evs) {
		c.removeBucketLocked(b)
	}
}

// removeBucketLocked takes a bucket (drained or emptied by cancellations)
// out of the heap and the deadline map and recycles its record; the entry
// slice keeps its capacity for the next occupant. Caller holds mu.
func (c *Virtual) removeBucketLocked(b *bucket) {
	i := b.index
	last := len(c.bq) - 1
	c.swapLocked(i, last)
	c.bq[last] = bqEntry{}
	c.bq = c.bq[:last]
	b.index = -1
	if i < last {
		c.downLocked(i)
		c.upLocked(i)
	}
	c.buckets.del(b.nanos)
	b.evs = b.evs[:0]
	b.cur = 0
	if cap(b.evs) > len(b.inline) {
		c.freeBBig = append(c.freeBBig, b)
	} else {
		c.freeB = append(c.freeB, b)
	}
}

// Event lifecycle states.
const (
	statePending = uint8(iota) // armed, in a bucket
	stateFired                 // callback ran (or is about to run)
	stateStopped               // cancelled before firing
	stateFree                  // recycled onto the free list
)

// event is a pending Virtual callback; it doubles as the Timer handle.
type event struct {
	seq      uint64
	fn       func()
	c        *Virtual
	nextFree *event  // free-list link while recycled
	b        *bucket // owning bucket while pending
	pos      int     // position in b.evs; meaningless once consumed
	state    uint8
	autoFree bool // Schedule()-created: recycle on fire, no handle exists
}

var _ Timer = (*event)(nil)

// Stop implements Timer. A stopped event is removed from the queue
// immediately; its record is reclaimed by the garbage collector unless the
// caller also hands it back with Release.
func (ev *event) Stop() bool {
	ev.c.mu.Lock()
	defer ev.c.mu.Unlock()
	if ev.state != statePending {
		return false
	}
	ev.c.unlinkLocked(ev)
	ev.state = stateStopped
	ev.fn = nil
	return true
}

// Release cancels t if it is still pending and returns its internal record
// to the owning Virtual clock's free list. It is the explicit opt-in that
// makes re-arming timer patterns (pacing loops, periodic tasks)
// allocation-free: after Release returns, the handle is dead and must be
// discarded — calling Stop or Release on it again is a caller bug, since the
// record may already be carrying an unrelated timer. Building with the
// clockdebug tag turns a releases-after-release into a panic instead of a
// silent (and potentially queue-corrupting) no-op. For Timers from other
// clocks, Release just calls Stop.
func Release(t Timer) {
	ev, ok := t.(*event)
	if !ok {
		if t != nil {
			t.Stop()
		}
		return
	}
	c := ev.c
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.state {
	case statePending:
		c.unlinkLocked(ev)
	case stateFree:
		// Double release: the record may already back another timer, so
		// touching it would corrupt the queue. Leave it alone (and, under
		// the clockdebug build tag, panic so the caller bug surfaces).
		if releaseDebug {
			panic("clock: Release called on an already-released timer record")
		}
		return
	}
	c.recycleLocked(ev)
}

// Heap primitives: a 4-ary min-heap over buckets keyed on their integer
// deadline, kept inline (no container/heap) so Push/Pop stay monomorphic and
// allocation-free. Keys are unique — one bucket per instant — so no
// tie-break is needed, and any heap arity pops the same order. Each entry
// carries its key beside the bucket pointer so sift comparisons walk the
// contiguous heap slice instead of dereferencing a cold bucket record per
// compare; four-way branching then halves the sift depth, trading compares
// that share a cache line for pointer hops that don't.

// bqEntry is one heap slot: the owning bucket and a copy of its deadline.
type bqEntry struct {
	nanos int64
	b     *bucket
}

func (c *Virtual) swapLocked(i, j int) {
	c.bq[i], c.bq[j] = c.bq[j], c.bq[i]
	c.bq[i].b.index = i
	c.bq[j].b.index = j
}

func (c *Virtual) pushBucketLocked(b *bucket) {
	b.index = len(c.bq)
	c.bq = append(c.bq, bqEntry{nanos: b.nanos, b: b})
	c.upLocked(b.index)
}

func (c *Virtual) upLocked(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if c.bq[i].nanos >= c.bq[parent].nanos {
			break
		}
		c.swapLocked(i, parent)
		i = parent
	}
}

func (c *Virtual) downLocked(i int) {
	n := len(c.bq)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		last := first + 4
		if last > n {
			last = n
		}
		least := first
		for k := first + 1; k < last; k++ {
			if c.bq[k].nanos < c.bq[least].nanos {
				least = k
			}
		}
		if c.bq[least].nanos >= c.bq[i].nanos {
			return
		}
		c.swapLocked(i, least)
		i = least
	}
}
