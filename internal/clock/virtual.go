package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event Clock. Events fire in deadline
// order; ties break in scheduling order, so a run is exactly reproducible.
//
// Virtual is safe for concurrent use, but events themselves execute
// sequentially on whichever goroutine drives the clock (Step, Advance or
// Drain), never concurrently with each other. Event callbacks may schedule
// further events and stop timers.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	pq   eventQueue
	seq  uint64
	runs uint64 // total events executed, for diagnostics
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (c *Virtual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock.
func (c *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := &event{
		when: c.now.Add(d),
		seq:  c.seq,
		fn:   f,
		c:    c,
	}
	c.seq++
	heap.Push(&c.pq, ev)
	return ev
}

// Len returns the number of pending events.
func (c *Virtual) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pq.Len()
}

// Executed returns the total number of events run so far.
func (c *Virtual) Executed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Step executes the earliest pending event, advancing the clock to its
// deadline. It reports whether an event was executed.
func (c *Virtual) Step() bool {
	c.mu.Lock()
	ev := c.pop()
	if ev == nil {
		c.mu.Unlock()
		return false
	}
	if ev.when.After(c.now) {
		c.now = ev.when
	}
	c.runs++
	c.mu.Unlock()
	ev.fn()
	return true
}

// Advance runs every event with a deadline at or before now+d, in order,
// then sets the clock to exactly now+d. It returns the number of events
// executed. Events scheduled by callbacks are included if they fall within
// the window.
func (c *Virtual) Advance(d time.Duration) int {
	c.mu.Lock()
	deadline := c.now.Add(d)
	c.mu.Unlock()
	return c.AdvanceTo(deadline)
}

// AdvanceTo runs every event with a deadline at or before t, then sets the
// clock to t (if t is later than the current time). It returns the number
// of events executed.
func (c *Virtual) AdvanceTo(t time.Time) int {
	n := 0
	for {
		c.mu.Lock()
		next := c.peek()
		if next == nil || next.when.After(t) {
			if t.After(c.now) {
				c.now = t
			}
			c.mu.Unlock()
			return n
		}
		ev := c.pop()
		if ev.when.After(c.now) {
			c.now = ev.when
		}
		c.runs++
		c.mu.Unlock()
		ev.fn()
		n++
	}
}

// Drain runs events until none remain or limit events have executed.
// It returns the number of events executed. A limit of 0 means no limit;
// callers use a limit to guard against self-perpetuating timer chains
// (heartbeats reschedule themselves forever).
func (c *Virtual) Drain(limit int) int {
	n := 0
	for limit <= 0 || n < limit {
		if !c.Step() {
			break
		}
		n++
	}
	return n
}

// pop removes and returns the earliest live event, skipping stopped ones.
// Caller must hold mu.
func (c *Virtual) pop() *event {
	for c.pq.Len() > 0 {
		ev, ok := heap.Pop(&c.pq).(*event)
		if !ok {
			continue
		}
		if ev.stopped {
			continue
		}
		ev.fired = true
		return ev
	}
	return nil
}

// peek returns the earliest live event without removing it, discarding
// stopped events it passes over. Caller must hold mu.
func (c *Virtual) peek() *event {
	for c.pq.Len() > 0 {
		ev := c.pq[0]
		if ev.stopped {
			heap.Pop(&c.pq)
			continue
		}
		return ev
	}
	return nil
}

// event is a pending Virtual callback; it doubles as the Timer handle.
type event struct {
	when    time.Time
	seq     uint64
	fn      func()
	c       *Virtual
	stopped bool
	fired   bool
	index   int // heap index; -1 once popped
}

var _ Timer = (*event)(nil)

// Stop implements Timer. Stopped events are lazily removed from the queue.
func (ev *event) Stop() bool {
	ev.c.mu.Lock()
	defer ev.c.mu.Unlock()
	if ev.stopped || ev.fired {
		return false
	}
	ev.stopped = true
	return true
}

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
