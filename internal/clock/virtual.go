package clock

import (
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event Clock. Events fire in deadline
// order; ties break in scheduling order, so a run is exactly reproducible.
//
// Virtual is safe for concurrent use, but events themselves execute
// sequentially on whichever goroutine drives the clock (Step, Advance or
// Drain), never concurrently with each other. Event callbacks may schedule
// further events and stop timers.
//
// The event queue is a slice-backed binary min-heap ordered by (when, seq)
// with a free list of event records, so steady-state timer traffic — frame
// pacing, heartbeats, packet deliveries — allocates nothing: Schedule
// recycles its event automatically when it fires, and AfterFunc callers that
// are done with a Timer can hand its record back with Release.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	pq   []*event // min-heap on (when, seq)
	free *event   // free list, linked through event.nextFree
	seq  uint64
	runs uint64 // total events executed, for diagnostics
}

var _ Clock = (*Virtual)(nil)
var _ Scheduler = (*Virtual)(nil)

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (c *Virtual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// newEventLocked takes an event record off the free list (or allocates one)
// and arms it. Caller must hold mu.
func (c *Virtual) newEventLocked(d time.Duration, f func(), autoFree bool) *event {
	if d < 0 {
		d = 0
	}
	ev := c.free
	if ev != nil {
		c.free = ev.nextFree
		ev.nextFree = nil
	} else {
		ev = &event{c: c}
	}
	ev.when = c.now.Add(d)
	ev.seq = c.seq
	ev.fn = f
	ev.state = statePending
	ev.autoFree = autoFree
	c.seq++
	c.pushLocked(ev)
	return ev
}

// AfterFunc implements Clock. The returned Timer's record is not recycled
// until the caller passes it to Release (or the Schedule fast path is used
// instead), so holding a handle across an arbitrary span stays safe.
func (c *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.newEventLocked(d, f, false)
}

// Schedule implements Scheduler: AfterFunc without the Timer handle. The
// internal event record returns to the free list as soon as the callback
// fires, so steady-state fire-and-forget scheduling does not allocate.
func (c *Virtual) Schedule(d time.Duration, f func()) {
	c.mu.Lock()
	c.newEventLocked(d, f, true)
	c.mu.Unlock()
}

// Len returns the number of pending events.
func (c *Virtual) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pq)
}

// Executed returns the total number of events run so far.
func (c *Virtual) Executed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Step executes the earliest pending event, advancing the clock to its
// deadline. It reports whether an event was executed.
func (c *Virtual) Step() bool {
	c.mu.Lock()
	fn := c.takeLocked(nil)
	c.mu.Unlock()
	if fn == nil {
		return false
	}
	fn()
	return true
}

// takeLocked pops the earliest event due at or before limit (no limit when
// nil), advances the clock to its deadline, and returns its callback — nil
// if no event qualifies. Auto-free events are recycled here, before the
// callback runs: nothing else references them, and the callback itself is
// already copied out. Caller holds mu.
func (c *Virtual) takeLocked(limit *time.Time) func() {
	if len(c.pq) == 0 {
		return nil
	}
	ev := c.pq[0]
	if limit != nil && ev.when.After(*limit) {
		return nil
	}
	c.popLocked()
	if ev.when.After(c.now) {
		c.now = ev.when
	}
	c.runs++
	ev.state = stateFired
	fn := ev.fn
	if ev.autoFree {
		c.recycleLocked(ev)
	}
	return fn
}

// Advance runs every event with a deadline at or before now+d, in order,
// then sets the clock to exactly now+d. It returns the number of events
// executed. Events scheduled by callbacks are included if they fall within
// the window.
func (c *Virtual) Advance(d time.Duration) int {
	c.mu.Lock()
	deadline := c.now.Add(d)
	c.mu.Unlock()
	return c.AdvanceTo(deadline)
}

// AdvanceTo runs every event with a deadline at or before t, then sets the
// clock to t (if t is later than the current time). It returns the number
// of events executed.
func (c *Virtual) AdvanceTo(t time.Time) int {
	n := 0
	for {
		c.mu.Lock()
		fn := c.takeLocked(&t)
		if fn == nil {
			if t.After(c.now) {
				c.now = t
			}
			c.mu.Unlock()
			return n
		}
		c.mu.Unlock()
		fn()
		n++
	}
}

// Drain runs events until none remain or limit events have executed.
// It returns the number of events executed. A limit of 0 means no limit;
// callers use a limit to guard against self-perpetuating timer chains
// (heartbeats reschedule themselves forever).
func (c *Virtual) Drain(limit int) int {
	n := 0
	for limit <= 0 || n < limit {
		if !c.Step() {
			break
		}
		n++
	}
	return n
}

// recycleLocked clears an event record and links it onto the free list.
// Caller holds mu; the event must no longer be in the heap.
func (c *Virtual) recycleLocked(ev *event) {
	ev.fn = nil
	ev.state = stateFree
	ev.nextFree = c.free
	c.free = ev
}

// Event lifecycle states.
const (
	statePending = uint8(iota) // armed, in the heap
	stateFired                 // callback ran (or is about to run)
	stateStopped               // cancelled before firing
	stateFree                  // recycled onto the free list
)

// event is a pending Virtual callback; it doubles as the Timer handle.
type event struct {
	when     time.Time
	seq      uint64
	fn       func()
	c        *Virtual
	nextFree *event // free-list link while recycled
	index    int    // heap index; -1 once removed
	state    uint8
	autoFree bool // Schedule()-created: recycle on fire, no handle exists
}

var _ Timer = (*event)(nil)

// Stop implements Timer. A stopped event is removed from the queue
// immediately; its record is reclaimed by the garbage collector unless the
// caller also hands it back with Release.
func (ev *event) Stop() bool {
	ev.c.mu.Lock()
	defer ev.c.mu.Unlock()
	if ev.state != statePending {
		return false
	}
	ev.c.removeLocked(ev)
	ev.state = stateStopped
	ev.fn = nil
	return true
}

// Release cancels t if it is still pending and returns its internal record
// to the owning Virtual clock's free list. It is the explicit opt-in that
// makes re-arming timer patterns (pacing loops, periodic tasks)
// allocation-free: after Release returns, the handle is dead and must be
// discarded — calling Stop or Release on it again is a caller bug, since the
// record may already be carrying an unrelated timer. For Timers from other
// clocks, Release just calls Stop.
func Release(t Timer) {
	ev, ok := t.(*event)
	if !ok {
		if t != nil {
			t.Stop()
		}
		return
	}
	c := ev.c
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.state {
	case statePending:
		c.removeLocked(ev)
	case stateFree:
		// Double release: the record may already back another timer, so
		// touching it would corrupt the queue. Leave it alone.
		return
	}
	c.recycleLocked(ev)
}

// Heap primitives: a standard binary min-heap on (when, seq), kept inline
// (no container/heap) so Push/Pop stay monomorphic and allocation-free.

func (c *Virtual) lessLocked(i, j int) bool {
	a, b := c.pq[i], c.pq[j]
	if !a.when.Equal(b.when) {
		return a.when.Before(b.when)
	}
	return a.seq < b.seq
}

func (c *Virtual) swapLocked(i, j int) {
	c.pq[i], c.pq[j] = c.pq[j], c.pq[i]
	c.pq[i].index = i
	c.pq[j].index = j
}

func (c *Virtual) pushLocked(ev *event) {
	ev.index = len(c.pq)
	c.pq = append(c.pq, ev)
	c.upLocked(ev.index)
}

// popLocked removes the heap root.
func (c *Virtual) popLocked() {
	last := len(c.pq) - 1
	root := c.pq[0]
	c.swapLocked(0, last)
	c.pq[last] = nil
	c.pq = c.pq[:last]
	root.index = -1
	if last > 0 {
		c.downLocked(0)
	}
}

// removeLocked deletes an event from an arbitrary heap position.
func (c *Virtual) removeLocked(ev *event) {
	i := ev.index
	last := len(c.pq) - 1
	c.swapLocked(i, last)
	c.pq[last] = nil
	c.pq = c.pq[:last]
	ev.index = -1
	if i < last {
		c.downLocked(i)
		c.upLocked(i)
	}
}

func (c *Virtual) upLocked(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.lessLocked(i, parent) {
			break
		}
		c.swapLocked(i, parent)
		i = parent
	}
}

func (c *Virtual) downLocked(i int) {
	n := len(c.pq)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && c.lessLocked(right, left) {
			least = right
		}
		if !c.lessLocked(least, i) {
			return
		}
		c.swapLocked(i, least)
		i = least
	}
}
