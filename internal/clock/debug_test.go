//go:build clockdebug

package clock

import (
	"testing"
	"time"
)

// Run with: go test -tags clockdebug ./internal/clock

func TestDebugDoubleReleasePanics(t *testing.T) {
	c := NewVirtual(testEpoch)
	tm := c.AfterFunc(time.Millisecond, func() {})
	Release(tm)
	defer func() {
		if recover() == nil {
			t.Fatal("second Release of the same record did not panic under clockdebug")
		}
	}()
	Release(tm)
}

func TestDebugStopThenReleaseIsLegal(t *testing.T) {
	// Stop followed by one Release is the documented hand-back sequence and
	// must not trip the assertion.
	c := NewVirtual(testEpoch)
	tm := c.AfterFunc(time.Millisecond, func() {})
	tm.Stop()
	Release(tm)

	// Likewise a Release after natural firing.
	tm = c.AfterFunc(time.Millisecond, func() {})
	c.Advance(time.Millisecond)
	Release(tm)
}
