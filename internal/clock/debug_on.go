//go:build clockdebug

package clock

// releaseDebug is the clockdebug-build counterpart of debug_off.go: Release
// panics when handed a record that is already on the free list, which is the
// signature of a double release — a caller kept a handle past the point it
// surrendered the record, and the record may meanwhile be carrying someone
// else's timer.
const releaseDebug = true
