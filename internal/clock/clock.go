// Package clock provides the time base every protocol component in this
// repository is written against. Components never call the time package
// directly; they take a Clock. Two implementations are provided:
//
//   - Real: thin wrapper over the standard time package, used by the
//     cmd/ binaries and the real-UDP example.
//   - Virtual: a deterministic discrete-event scheduler, used by the
//     simulator, the test suite and the benchmark harness. An entire
//     multi-node cluster advances in a single goroutine, so a 90-second
//     evaluation scenario executes in milliseconds and is exactly
//     reproducible.
package clock

import "time"

// Clock is the interface protocol components schedule against.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time

	// AfterFunc schedules f to run once, d from now. f runs on the
	// clock's executor: for Real, on its own goroutine (as with
	// time.AfterFunc); for Virtual, inline when the simulation reaches
	// the deadline. A non-positive d schedules f to run as soon as
	// possible, never synchronously inside AfterFunc.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the callback. It reports whether the call prevented
	// the callback from running. Stopping an already-fired or
	// already-stopped timer returns false.
	Stop() bool
}

// Scheduler is an optional fast path a Clock may provide for fire-and-forget
// callbacks that will never be cancelled. It carries the same semantics as
// AfterFunc minus the Timer handle, which lets an implementation recycle the
// timer record the moment the callback fires. Callers that might need Stop
// must use AfterFunc.
type Scheduler interface {
	Schedule(d time.Duration, f func())
}

// Schedule runs f once, d from now, on c. It uses the Scheduler fast path
// when c provides one and falls back to AfterFunc otherwise, so hot callers
// (per-packet delivery events) can stay allocation-free on a Virtual clock
// without type-asserting themselves.
func Schedule(c Clock, d time.Duration, f func()) {
	if s, ok := c.(Scheduler); ok {
		s.Schedule(d, f)
		return
	}
	c.AfterFunc(d, f)
}

// Real is a Clock backed by the standard time package.
// The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

// Schedule implements Scheduler.
func (Real) Schedule(d time.Duration, f func()) { time.AfterFunc(d, f) }

type realTimer struct{ t *time.Timer }

var _ Timer = realTimer{}

func (rt realTimer) Stop() bool { return rt.t.Stop() }
