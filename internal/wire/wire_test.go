package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 0xAB)
	b = AppendU16(b, 0xBEEF)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, math.MaxUint64)
	b = AppendI64(b, -12345678901234)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "movie group")

	r := NewReader(b)
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.I64(); got != -12345678901234 {
		t.Fatalf("I64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.String(); got != "movie group" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
		read func(*Reader)
	}{
		{"u16 short", []byte{1}, func(r *Reader) { r.U16() }},
		{"u32 short", []byte{1, 2, 3}, func(r *Reader) { r.U32() }},
		{"u64 short", []byte{1, 2, 3, 4, 5, 6, 7}, func(r *Reader) { r.U64() }},
		{"bytes length lies", []byte{0, 0, 0, 9, 1, 2}, func(r *Reader) { r.Bytes() }},
		{"string length lies", []byte{0, 9, 'a'}, func(r *Reader) { _ = r.String() }},
		{"empty u8", nil, func(r *Reader) { r.U8() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewReader(tt.buf)
			tt.read(r)
			if !errors.Is(r.Err(), ErrTruncated) {
				t.Fatalf("Err() = %v, want ErrTruncated", r.Err())
			}
		})
	}
}

func TestReaderErrorSticks(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32() // fails
	if got := r.U8(); got != 0 {
		t.Fatalf("read after error = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err() = %v", r.Err())
	}
}

func TestReaderDoneTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.U8()
	if err := r.Done(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Done() = %v, want ErrTrailing", err)
	}
}

func TestAppendStringPanicsOnHuge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendString accepted a >64KB string")
		}
	}()
	AppendString(nil, string(make([]byte, 70_000)))
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	out, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode(Encode(%#v)): %v", m, err)
	}
	return out
}

func TestOpenRoundTrip(t *testing.T) {
	in := &Open{ClientID: "c1", ClientAddr: "client-1", Movie: "casablanca"}
	got, ok := roundTrip(t, in).(*Open)
	if !ok || *got != *in {
		t.Fatalf("got %#v, want %#v", got, in)
	}
}

func TestOpenReplyRoundTrip(t *testing.T) {
	in := &OpenReply{
		OK:           true,
		Movie:        "casablanca",
		TotalFrames:  2700,
		FPS:          30,
		SessionGroup: "session.c1",
	}
	got, ok := roundTrip(t, in).(*OpenReply)
	if !ok || *got != *in {
		t.Fatalf("got %#v, want %#v", got, in)
	}
	errIn := &OpenReply{OK: false, Error: "no such movie"}
	gotErr, ok := roundTrip(t, errIn).(*OpenReply)
	if !ok || *gotErr != *errIn {
		t.Fatalf("got %#v, want %#v", gotErr, errIn)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := &Frame{
		Movie:   "casablanca",
		Index:   1234,
		Class:   FrameI,
		Payload: bytes.Repeat([]byte{0x5A}, 5833),
	}
	got, ok := roundTrip(t, in).(*Frame)
	if !ok {
		t.Fatal("wrong type")
	}
	if got.Movie != in.Movie || got.Index != in.Index || got.Class != in.Class {
		t.Fatalf("header mismatch: %#v", got)
	}
	if !bytes.Equal(got.Payload, in.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestFlowControlRoundTrip(t *testing.T) {
	for _, k := range []FlowKind{FlowIncrease, FlowDecrease, FlowEmergencyMinor, FlowEmergencyMajor} {
		in := &FlowControl{ClientID: "c9", Request: k, Occupancy: 53}
		got, ok := roundTrip(t, in).(*FlowControl)
		if !ok || *got != *in {
			t.Fatalf("kind %v: got %#v, want %#v", k, got, in)
		}
	}
}

func TestVCRRoundTrip(t *testing.T) {
	for _, op := range []VCROp{VCRPause, VCRResume, VCRSeek, VCRQuality, VCRStop} {
		in := &VCR{ClientID: "c2", Op: op, Arg: 777}
		got, ok := roundTrip(t, in).(*VCR)
		if !ok || *got != *in {
			t.Fatalf("op %v: got %#v, want %#v", op, got, in)
		}
	}
}

func TestClientStateRoundTrip(t *testing.T) {
	in := &ClientState{
		Server:   "server-2",
		ViewSeq:  7,
		Newcomer: true,
		Clients: []ClientRecord{
			{
				ClientID:   "c1",
				ClientAddr: "client-1",
				Offset:     1140,
				Rate:       31,
				QualityFPS: 0,
				Paused:     false,
				SentAt:     1_700_000_000_123,
			},
			{
				ClientID:   "c2",
				ClientAddr: "client-2",
				Offset:     88,
				Rate:       29,
				QualityFPS: 15,
				Paused:     true,
				Departed:   true,
				SentAt:     1_700_000_000_456,
			},
		},
	}
	got, ok := roundTrip(t, in).(*ClientState)
	if !ok {
		t.Fatal("wrong type")
	}
	if got.Server != in.Server || len(got.Clients) != len(in.Clients) ||
		got.ViewSeq != in.ViewSeq || got.Newcomer != in.Newcomer {
		t.Fatalf("got %#v", got)
	}
	for i := range in.Clients {
		if got.Clients[i] != in.Clients[i] {
			t.Fatalf("client %d: got %#v, want %#v", i, got.Clients[i], in.Clients[i])
		}
	}
}

func TestClientStateEmpty(t *testing.T) {
	in := &ClientState{Server: "server-1"}
	got, ok := roundTrip(t, in).(*ClientState)
	if !ok || got.Server != "server-1" || len(got.Clients) != 0 {
		t.Fatalf("got %#v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	tests := [][]byte{
		nil,
		{0},                // kind 0
		{99},               // unknown kind
		{byte(KindFrame)},  // truncated body
		{byte(KindVCR), 0}, // truncated body
	}
	for _, buf := range tests {
		if _, err := Decode(buf); err == nil {
			t.Fatalf("Decode(%v) accepted garbage", buf)
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	// VCR has no optional trailing fields: any extra byte is an error.
	b := Encode(&VCR{ClientID: "c", Op: VCRPause})
	b = append(b, 0xFF)
	if _, err := Decode(b); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Decode with trailing byte = %v, want ErrTrailing", err)
	}
	// Open accepts at most two optional bytes (class, then lease flags);
	// three extras are trailing.
	o := Encode(&Open{ClientID: "c", ClientAddr: "a", Movie: "m"})
	o = append(o, 0xFF, 0xFF, 0xFF)
	if _, err := Decode(o); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Decode Open with three trailing bytes = %v, want ErrTrailing", err)
	}
}

// TestFrameRoundTripProperty fuzzes frame fields through encode/decode.
func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(movie string, index uint32, class uint8, payload []byte) bool {
		if len(movie) > 0xFFFF {
			movie = movie[:0xFFFF]
		}
		in := &Frame{
			Movie:   movie,
			Index:   index,
			Class:   FrameClass(class%3 + 1),
			Payload: payload,
		}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		f, ok := out.(*Frame)
		if !ok {
			return false
		}
		return f.Movie == in.Movie && f.Index == in.Index &&
			f.Class == in.Class && bytes.Equal(f.Payload, in.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReaderNeverPanics feeds random bytes through every decoder; decoders
// must fail cleanly, never panic.
func TestReaderNeverPanics(t *testing.T) {
	prop := func(buf []byte) bool {
		_, _ = Decode(buf)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	f := &Frame{Movie: "casablanca", Index: 1, Class: FrameP, Payload: make([]byte, 5833)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(f)
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	buf := Encode(&Frame{Movie: "casablanca", Index: 1, Class: FrameP, Payload: make([]byte, 5833)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReaderRest(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	if got := r.U8(); got != 1 {
		t.Fatalf("U8 = %d", got)
	}
	rest := r.Rest()
	if len(rest) != 3 || rest[0] != 2 || rest[2] != 4 {
		t.Fatalf("Rest = %v", rest)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining after Rest = %d", r.Remaining())
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	// Rest after an error returns nil.
	r2 := NewReader([]byte{1})
	r2.U32()
	if got := r2.Rest(); got != nil {
		t.Fatalf("Rest after error = %v, want nil", got)
	}
}
