package wire

import "testing"

// These tests pin the allocation behavior of the frame hot path: a server
// session encodes ~30 frames per client per second and a client decodes the
// same stream, so a single allocation per frame dominates the whole
// simulator's heap profile. The benchmarks in the repo root measure the
// aggregate; these pins catch the exact regression point.

func TestAllocsFrameEncode(t *testing.T) {
	payload := make([]byte, 1500)
	f := &Frame{Movie: "feature", Index: 0, Class: FrameI, Payload: payload}
	var enc Encoder
	enc.Encode(f) // warm the scratch buffer
	allocs := testing.AllocsPerRun(1000, func() {
		f.Index++
		enc.Encode(f)
	})
	if allocs != 0 {
		t.Fatalf("warm Encoder.Encode(Frame) = %v allocs/op, want 0", allocs)
	}
}

func TestAllocsFrameAppendMessage(t *testing.T) {
	payload := make([]byte, 1500)
	f := &Frame{Movie: "feature", Index: 0, Class: FrameI, Payload: payload}
	buf := AppendMessage(nil, f) // size the buffer once
	allocs := testing.AllocsPerRun(1000, func() {
		f.Index++
		buf = AppendMessage(buf[:0], f)
	})
	if allocs != 0 {
		t.Fatalf("warm AppendMessage(Frame) = %v allocs/op, want 0", allocs)
	}
}

func TestAllocsFrameDecode(t *testing.T) {
	pkt := Encode(&Frame{Movie: "feature", Index: 7, Class: FrameI, Payload: make([]byte, 1500)})
	var f Frame
	if err := DecodeFrameInto(&f, pkt); err != nil { // warm: interns the movie name
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := DecodeFrameInto(&f, pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm DecodeFrameInto = %v allocs/op, want 0", allocs)
	}
	if f.Movie != "feature" || f.Index != 7 || len(f.Payload) != 1500 {
		t.Fatalf("decode corrupted the frame: %+v", f)
	}
}
