package wire

import "fmt"

// AppendMessage frames m — kind byte, then body — onto b and returns the
// extended slice. It is the allocation-free core of Encode: callers that
// bring their own buffer (an Encoder scratch, a pooled packet) pay nothing
// per message.
func AppendMessage(b []byte, m Message) []byte {
	b = AppendU8(b, uint8(m.Kind()))
	return m.appendBody(b)
}

// Encoder frames messages into a reusable scratch buffer. After the first
// few messages warm the buffer, Encode performs zero allocations. The zero
// value is ready to use.
//
// An Encoder is not safe for concurrent use, and each Encode invalidates the
// slice returned by the previous one: callers that retain an encoded message
// past the next Encode (deferred sends, queued packets) must copy it or use
// the package-level Encode instead.
type Encoder struct {
	buf []byte
}

// Encode frames m into the scratch buffer and returns it. The returned
// slice is only valid until the next call on this Encoder.
func (e *Encoder) Encode(m Message) []byte {
	e.buf = AppendMessage(e.buf[:0], m)
	return e.buf
}

// DecodeFrameInto parses a framed KindFrame message into *f without
// allocating in steady state: f.Payload aliases b (same contract as Decode),
// and f.Movie is kept as-is when the bytes on the wire match it, so a
// receiver decoding a stream of frames for one movie reuses the same string
// for the whole session. Any previous Payload value is overwritten.
func DecodeFrameInto(f *Frame, b []byte) error {
	r := Reader{b: b}
	if k := Kind(r.U8()); r.err == nil && k != KindFrame {
		return fmt.Errorf("wire: decoding Frame: unexpected kind %v", k)
	}
	movie := r.StringBytes()
	// string(movie) == f.Movie compiles to an allocation-free comparison;
	// the conversion below only runs (and allocates) when the movie changes.
	if string(movie) != f.Movie {
		f.Movie = string(movie)
	}
	f.Index = r.U32()
	f.Class = FrameClass(r.U8())
	f.Payload = r.Bytes()
	if err := r.Done(); err != nil {
		return fmt.Errorf("wire: decoding Frame: %w", err)
	}
	return nil
}

// DecodeFlowControlInto parses a framed KindFlowControl message into *m
// without allocating in steady state: m.ClientID is kept as-is when the
// bytes on the wire match it, so a server decoding the flow-control stream
// of one client into per-session scratch reuses the same string for the
// whole session.
func DecodeFlowControlInto(m *FlowControl, b []byte) error {
	r := Reader{b: b}
	if k := Kind(r.U8()); r.err == nil && k != KindFlowControl {
		return fmt.Errorf("wire: decoding FlowControl: unexpected kind %v", k)
	}
	id := r.StringBytes()
	if string(id) != m.ClientID { // allocation-free comparison
		m.ClientID = string(id)
	}
	m.Request = FlowKind(r.U8())
	m.Occupancy = r.U16()
	if err := r.Done(); err != nil {
		return fmt.Errorf("wire: decoding FlowControl: %w", err)
	}
	return nil
}

// keepString stores b as a string in *dst, reusing the existing string when
// the bytes already match. The comparison compiles allocation-free, so the
// conversion (and its allocation) only runs when the value actually changed —
// the idiom shared by the Decode*Into family for fields that are stable
// across a session (client IDs, movie names, group names).
func keepString(dst *string, b []byte) {
	if string(b) != *dst {
		*dst = string(b)
	}
}

// DecodeOpenInto parses a framed KindOpen message into *m. All three fields
// are strings that a retrying client resends verbatim, so decoding into a
// pooled scratch Open is allocation-free for every retry after the first.
func DecodeOpenInto(m *Open, b []byte) error {
	r := Reader{b: b}
	if k := Kind(r.U8()); r.err == nil && k != KindOpen {
		return fmt.Errorf("wire: decoding Open: unexpected kind %v", k)
	}
	keepString(&m.ClientID, r.StringBytes())
	keepString(&m.ClientAddr, r.StringBytes())
	keepString(&m.Movie, r.StringBytes())
	m.Class = ClassReserved
	m.Lease, m.Takeover = false, false
	if r.err == nil && r.Remaining() > 0 {
		m.Class = Class(r.U8())
	}
	if r.err == nil && r.Remaining() > 0 {
		flags := r.U8()
		m.Lease = flags&openFlagLease != 0
		m.Takeover = flags&openFlagTakeover != 0
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("wire: decoding Open: %w", err)
	}
	return nil
}

// DecodeOpenReplyInto parses a framed KindOpenReply message into *m. A
// client cycling through refusing servers receives the same at-capacity
// reply over and over; decoding into scratch makes each one free.
func DecodeOpenReplyInto(m *OpenReply, b []byte) error {
	r := Reader{b: b}
	if k := Kind(r.U8()); r.err == nil && k != KindOpenReply {
		return fmt.Errorf("wire: decoding OpenReply: unexpected kind %v", k)
	}
	m.OK = r.Bool()
	keepString(&m.Error, r.StringBytes())
	keepString(&m.Movie, r.StringBytes())
	m.TotalFrames = r.U32()
	m.FPS = r.U16()
	keepString(&m.SessionGroup, r.StringBytes())
	m.RetryAfterMs = 0
	m.LeaseTTLMs = 0
	if r.err == nil && r.Remaining() > 0 {
		m.RetryAfterMs = r.U32()
	}
	if r.err == nil && r.Remaining() > 0 {
		m.LeaseTTLMs = r.U32()
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("wire: decoding OpenReply: %w", err)
	}
	return nil
}

// Intern is a string intern table for decoders on repetitive streams: the
// same identifiers (client IDs, addresses) arrive over and over, and looking
// a byte slice up under a string conversion compiles allocation-free, so
// only the first sighting of each distinct value allocates. Entries are
// never evicted; tables are scoped to an owner whose identifier population
// is bounded (a server's client set).
type Intern map[string]string

// get returns the interned string for b, adding it on first sight.
func (t Intern) get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := t[string(b)]; ok { // allocation-free lookup
		return s
	}
	s := string(b)
	t[s] = s
	return s
}

// DecodeClientStateInto parses a framed KindClientState message into *m —
// the state-sync hot path. It reuses m.Clients' backing array across calls
// and interns the per-record strings through tab, so a warm decode of a
// periodic sync allocates nothing: at cluster scale the naive Decode's two
// string allocations per record dominate the whole simulation's allocation
// profile. Field semantics and validation match Decode exactly.
func DecodeClientStateInto(m *ClientState, tab Intern, b []byte) error {
	r := Reader{b: b}
	if k := Kind(r.U8()); r.err == nil && k != KindClientState {
		return fmt.Errorf("wire: decoding ClientState: unexpected kind %v", k)
	}
	keepString(&m.Server, r.StringBytes())
	m.ViewSeq = r.U64()
	m.Newcomer = r.Bool()
	n := int(r.U16())
	if r.err != nil {
		return fmt.Errorf("wire: decoding ClientState: %w", r.err)
	}
	// Same hostile-count guard as decodeClientState: n records need at least
	// n*minClientRecordBytes more input.
	if n*minClientRecordBytes > r.Remaining() {
		return fmt.Errorf("wire: decoding ClientState: %w", ErrTruncated)
	}
	if cap(m.Clients) < n {
		m.Clients = make([]ClientRecord, n)
	}
	m.Clients = m.Clients[:n]
	for i := 0; i < n; i++ {
		c := &m.Clients[i]
		c.ClientID = tab.get(r.StringBytes())
		c.ClientAddr = tab.get(r.StringBytes())
		c.Offset = r.U32()
		c.Rate = r.U16()
		c.QualityFPS = r.U16()
		c.Paused = r.Bool()
		c.Departed = r.Bool()
		c.SentAt = r.I64()
		c.Class = ClassReserved
		c.Leased = false
		if r.err != nil {
			return fmt.Errorf("wire: decoding ClientState: %w", r.err)
		}
	}
	if r.Remaining() > 0 {
		for i := range m.Clients {
			cb := r.U8()
			m.Clients[i].Class = Class(cb &^ recLeasedBit)
			m.Clients[i].Leased = cb&recLeasedBit != 0
		}
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("wire: decoding ClientState: %w", err)
	}
	return nil
}

// StringBytes consumes a 16-bit length prefix and returns the raw string
// bytes, aliasing the underlying buffer. It is the no-copy twin of String
// for decoders that compare (or intern) before converting.
func (r *Reader) StringBytes() []byte {
	n := r.U16()
	if r.err != nil {
		return nil
	}
	if len(r.b) < int(n) {
		r.err = ErrTruncated
		return nil
	}
	return r.take(int(n))
}
