package wire

import "fmt"

// AppendMessage frames m — kind byte, then body — onto b and returns the
// extended slice. It is the allocation-free core of Encode: callers that
// bring their own buffer (an Encoder scratch, a pooled packet) pay nothing
// per message.
func AppendMessage(b []byte, m Message) []byte {
	b = AppendU8(b, uint8(m.Kind()))
	return m.appendBody(b)
}

// Encoder frames messages into a reusable scratch buffer. After the first
// few messages warm the buffer, Encode performs zero allocations. The zero
// value is ready to use.
//
// An Encoder is not safe for concurrent use, and each Encode invalidates the
// slice returned by the previous one: callers that retain an encoded message
// past the next Encode (deferred sends, queued packets) must copy it or use
// the package-level Encode instead.
type Encoder struct {
	buf []byte
}

// Encode frames m into the scratch buffer and returns it. The returned
// slice is only valid until the next call on this Encoder.
func (e *Encoder) Encode(m Message) []byte {
	e.buf = AppendMessage(e.buf[:0], m)
	return e.buf
}

// DecodeFrameInto parses a framed KindFrame message into *f without
// allocating in steady state: f.Payload aliases b (same contract as Decode),
// and f.Movie is kept as-is when the bytes on the wire match it, so a
// receiver decoding a stream of frames for one movie reuses the same string
// for the whole session. Any previous Payload value is overwritten.
func DecodeFrameInto(f *Frame, b []byte) error {
	r := Reader{b: b}
	if k := Kind(r.U8()); r.err == nil && k != KindFrame {
		return fmt.Errorf("wire: decoding Frame: unexpected kind %v", k)
	}
	movie := r.StringBytes()
	// string(movie) == f.Movie compiles to an allocation-free comparison;
	// the conversion below only runs (and allocates) when the movie changes.
	if string(movie) != f.Movie {
		f.Movie = string(movie)
	}
	f.Index = r.U32()
	f.Class = FrameClass(r.U8())
	f.Payload = r.Bytes()
	if err := r.Done(); err != nil {
		return fmt.Errorf("wire: decoding Frame: %w", err)
	}
	return nil
}

// StringBytes consumes a 16-bit length prefix and returns the raw string
// bytes, aliasing the underlying buffer. It is the no-copy twin of String
// for decoders that compare (or intern) before converting.
func (r *Reader) StringBytes() []byte {
	n := r.U16()
	if r.err != nil {
		return nil
	}
	if len(r.b) < int(n) {
		r.err = ErrTruncated
		return nil
	}
	return r.take(int(n))
}
