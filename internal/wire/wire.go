// Package wire implements the binary encoding used on every datagram in the
// system: low-level append/consume primitives plus the typed VoD protocol
// messages exchanged between clients and servers (video frames, flow-control
// requests, VCR operations, session management and inter-server state sync).
//
// Encoding is hand-rolled rather than reflective (gob/json) because video
// frames are the hot path — one message per frame at 30 frames/s per client,
// exactly as in the paper's prototype — and because a fixed layout makes the
// formats documentable and testable.
//
// All integers are big-endian. Variable-length fields carry a 16-bit or
// 32-bit length prefix as noted on each Append function.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a buffer ends before a field completes.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTrailing is returned by decoders when bytes remain after the message.
var ErrTrailing = errors.New("wire: trailing bytes after message")

// AppendU8 appends a byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU16 appends a big-endian uint16.
func AppendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// AppendU64 appends a big-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendI64 appends a big-endian int64 (two's complement).
func AppendI64(b []byte, v int64) []byte { return binary.BigEndian.AppendUint64(b, uint64(v)) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a 32-bit length prefix followed by v.
func AppendBytes(b, v []byte) []byte {
	b = AppendU32(b, uint32(len(v)))
	return append(b, v...)
}

// AppendString appends a 16-bit length prefix followed by the string bytes.
// It panics if the string exceeds 65535 bytes: strings on the wire are
// identifiers (addresses, group names, movie IDs), never bulk data.
func AppendString(b []byte, s string) []byte {
	if len(s) > 0xFFFF {
		panic(fmt.Sprintf("wire: string field of %d bytes", len(s)))
	}
	b = AppendU16(b, uint16(len(s)))
	return append(b, s...)
}

// Reader consumes a buffer field by field. The first decoding error sticks;
// subsequent reads return zero values, so decoders can read an entire
// message and check Err once (the "handle errors once" idiom).
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.b) }

// Done returns nil when the buffer is fully consumed without errors,
// ErrTrailing when bytes remain, or the sticky error.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.b))
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// U8 consumes one byte.
func (r *Reader) U8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U16 consumes a big-endian uint16.
func (r *Reader) U16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// I64 consumes a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool consumes one byte as a bool; any nonzero value is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Rest consumes and returns all remaining bytes (possibly empty). The
// returned slice aliases the underlying buffer; callers that retain it
// must copy.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	v := r.b
	r.b = nil
	return v
}

// Bytes consumes a 32-bit length prefix and that many bytes. The returned
// slice aliases the underlying buffer; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if uint32(len(r.b)) < n {
		r.err = ErrTruncated
		return nil
	}
	return r.take(int(n))
}

// String consumes a 16-bit length prefix and that many bytes as a string.
func (r *Reader) String() string {
	n := r.U16()
	if r.err != nil {
		return ""
	}
	if len(r.b) < int(n) {
		r.err = ErrTruncated
		return ""
	}
	return string(r.take(int(n)))
}
