package wire

import (
	"bytes"
	"testing"
)

// TestOpenLeaseFlagsRoundTrip covers the optional trailing flags byte:
// every Lease/Takeover/Class combination must survive both decode paths,
// and flag-free Opens must stay byte-identical to the legacy encoding.
func TestOpenLeaseFlagsRoundTrip(t *testing.T) {
	cases := []Open{
		{ClientID: "c", ClientAddr: "c", Movie: "m"},
		{ClientID: "c", ClientAddr: "c", Movie: "m", Lease: true},
		{ClientID: "c", ClientAddr: "c", Movie: "m", Lease: true, Takeover: true},
		{ClientID: "c", ClientAddr: "c", Movie: "m", Takeover: true},
		{ClientID: "c", ClientAddr: "c", Movie: "m", Class: ClassBestEffort, Lease: true},
		{ClientID: "c", ClientAddr: "c", Movie: "m", Class: ClassBestEffort, Lease: true, Takeover: true},
	}
	for _, in := range cases {
		b := Encode(&in)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if *got.(*Open) != in {
			t.Fatalf("generic round trip: %+v != %+v", got, in)
		}
		scratch := Open{ClientID: "stale", Class: ClassBestEffort, Lease: true, Takeover: true}
		if err := DecodeOpenInto(&scratch, b); err != nil {
			t.Fatalf("%+v: DecodeOpenInto: %v", in, err)
		}
		if scratch != in {
			t.Fatalf("into round trip: %+v != %+v", scratch, in)
		}
	}

	legacy := Encode(&Open{ClientID: "c", ClientAddr: "c", Movie: "m"})
	classed := Encode(&Open{ClientID: "c", ClientAddr: "c", Movie: "m", Class: ClassBestEffort})
	flagged := Encode(&Open{ClientID: "c", ClientAddr: "c", Movie: "m", Lease: true})
	if len(classed) != len(legacy)+1 {
		t.Fatalf("class byte: %d vs %d bytes", len(classed), len(legacy))
	}
	if len(flagged) != len(legacy)+2 {
		t.Fatalf("flags force class+flags bytes: %d vs %d", len(flagged), len(legacy))
	}
}

// TestOpenReplyLeaseTTLRoundTrip covers the second optional trailing u32:
// the TTL forces RetryAfterMs out so length disambiguates, and TTL-free
// replies stay byte-identical to the legacy encoding.
func TestOpenReplyLeaseTTLRoundTrip(t *testing.T) {
	cases := []OpenReply{
		{OK: true, Movie: "m", TotalFrames: 100, FPS: 30, SessionGroup: "g"},
		{OK: true, Movie: "m", TotalFrames: 100, FPS: 30, SessionGroup: "g", LeaseTTLMs: 2000},
		{OK: false, Error: "full", Movie: "m", RetryAfterMs: 500},
		{OK: true, Movie: "m", RetryAfterMs: 500, LeaseTTLMs: 2000},
	}
	for _, in := range cases {
		b := Encode(&in)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if *got.(*OpenReply) != in {
			t.Fatalf("generic round trip: %+v != %+v", got, in)
		}
		scratch := OpenReply{RetryAfterMs: 9, LeaseTTLMs: 9, Error: "stale"}
		if err := DecodeOpenReplyInto(&scratch, b); err != nil {
			t.Fatalf("%+v: DecodeOpenReplyInto: %v", in, err)
		}
		if scratch != in {
			t.Fatalf("into round trip: %+v != %+v", scratch, in)
		}
	}

	plain := Encode(&OpenReply{OK: true, Movie: "m", SessionGroup: "g"})
	ttl := Encode(&OpenReply{OK: true, Movie: "m", SessionGroup: "g", LeaseTTLMs: 2000})
	if len(ttl) != len(plain)+8 {
		t.Fatalf("TTL must force both u32s: %d vs %d bytes", len(ttl), len(plain))
	}
}

// TestClientRecordLeasedBit covers the lease mark packed into the class
// block, including the case where Leased alone forces the block out.
func TestClientRecordLeasedBit(t *testing.T) {
	in := ClientState{Server: "s1", Clients: []ClientRecord{
		{ClientID: "a", ClientAddr: "a", Offset: 1, Rate: 30, SentAt: 5, Leased: true},
		{ClientID: "b", ClientAddr: "b", Offset: 2, Rate: 30, SentAt: 5, Class: ClassBestEffort},
		{ClientID: "c", ClientAddr: "c", Offset: 3, Rate: 30, SentAt: 5, Class: ClassBestEffort, Leased: true},
		{ClientID: "d", ClientAddr: "d", Offset: 4, Rate: 30, SentAt: 5},
	}}
	got, err := Decode(Encode(&in))
	if err != nil {
		t.Fatal(err)
	}
	cs := got.(*ClientState)
	for i, rec := range cs.Clients {
		if rec != in.Clients[i] {
			t.Fatalf("record %d: %+v != %+v", i, rec, in.Clients[i])
		}
	}

	// An all-reserved, lease-free sync must stay byte-identical to the
	// legacy block-free encoding.
	plain := ClientState{Server: "s1", Clients: []ClientRecord{
		{ClientID: "a", ClientAddr: "a", Offset: 1, Rate: 30, SentAt: 5},
	}}
	leased := plain
	leased.Clients = []ClientRecord{plain.Clients[0]}
	leased.Clients[0].Leased = true
	pb, lb := Encode(&plain), Encode(&leased)
	if len(lb) != len(pb)+1 {
		t.Fatalf("lease mark must cost exactly the class block: %d vs %d bytes", len(lb), len(pb))
	}
	if bytes.Equal(pb, lb) {
		t.Fatal("leased record encoded identically to unleased")
	}
}
