package wire

import "fmt"

// Kind discriminates the VoD protocol messages. GCS-internal messages have
// their own envelope inside package gcs; these kinds cover everything the
// VoD layer itself puts on the wire, whether over raw datagrams (frames) or
// as payloads of reliable group multicasts (control, state sync).
type Kind uint8

// The VoD message kinds.
const (
	// KindOpen is sent by a client to the server group to start watching
	// a movie ("connect to the VoD service and request a movie").
	KindOpen Kind = iota + 1
	// KindOpenReply answers an Open with the session parameters.
	KindOpenReply
	// KindFrame carries one video frame, server → client, over the
	// unreliable video channel: one frame per message, as in the paper.
	KindFrame
	// KindFlowControl carries a client flow-control request into the
	// session group (±1 frame/s, or an emergency refill request).
	KindFlowControl
	// KindVCR carries a client VCR operation (pause/resume/seek/quality/
	// stop) into the session group.
	KindVCR
	// KindClientState is the periodic server→server state-sync record
	// multicast on a movie group every half second.
	KindClientState
)

// Message is a VoD protocol message that can be framed with Encode.
type Message interface {
	// Kind returns the message's wire discriminator.
	Kind() Kind
	// appendBody appends the message body (without the kind byte).
	appendBody(b []byte) []byte
}

// sizedMessage is implemented by messages that can compute their encoded
// body length up front, letting Encode allocate exactly once. State-sync
// messages carry hundreds of client records; without the hint the append
// loop reallocates the buffer several times per sync.
type sizedMessage interface {
	encodedSize() int
}

// Encode frames m as a kind byte followed by its body.
func Encode(m Message) []byte {
	capacity := 64
	if sm, ok := m.(sizedMessage); ok {
		capacity = 1 + sm.encodedSize()
	}
	b := make([]byte, 0, capacity)
	b = AppendU8(b, uint8(m.Kind()))
	return m.appendBody(b)
}

// Decode parses a framed message produced by Encode. The returned message
// does not alias b except where noted (Frame.Payload).
func Decode(b []byte) (Message, error) {
	r := NewReader(b)
	kind := Kind(r.U8())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: reading kind: %w", err)
	}
	var (
		m   Message
		err error
	)
	switch kind {
	case KindOpen:
		m, err = decodeOpen(r)
	case KindOpenReply:
		m, err = decodeOpenReply(r)
	case KindFrame:
		m, err = decodeFrame(r)
	case KindFlowControl:
		m, err = decodeFlowControl(r)
	case KindVCR:
		m, err = decodeVCR(r)
	case KindClientState:
		m, err = decodeClientState(r)
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", kind, err)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", kind, err)
	}
	return m, nil
}

// String implements fmt.Stringer for log readability.
func (k Kind) String() string {
	switch k {
	case KindOpen:
		return "Open"
	case KindOpenReply:
		return "OpenReply"
	case KindFrame:
		return "Frame"
	case KindFlowControl:
		return "FlowControl"
	case KindVCR:
		return "VCR"
	case KindClientState:
		return "ClientState"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Class is the traffic class of a session: reserved viewers paid for
// guaranteed service and are starved last; best-effort viewers absorb
// degradation first when the cluster is under pressure. The zero value is
// ClassReserved, so every pre-class encoding and every client that never
// sets a class behaves exactly as before classes existed.
type Class uint8

// The traffic classes.
const (
	ClassReserved   Class = 0
	ClassBestEffort Class = 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassReserved:
		return "reserved"
	case ClassBestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Open asks the abstract server group to start a session. The client never
// names a particular server.
type Open struct {
	ClientID   string // globally unique client identifier
	ClientAddr string // transport address video frames should be sent to
	Movie      string // requested movie ID from the catalog
	Class      Class  // traffic class; encoded only when non-reserved
	// Lease marks a two-tier (lease-mode) client: it will not join a
	// session group and keeps the session alive with lease renewals
	// instead. Travels in an optional trailing flags byte.
	Lease bool
	// Takeover marks a starvation re-anycast from a lease-mode client:
	// the receiving replica may adopt the session from the knowledge
	// table even though another server nominally holds it.
	Takeover bool
}

// Open flag bits (optional trailing flags byte).
const (
	openFlagLease    = 1 << 0
	openFlagTakeover = 1 << 1
)

var _ Message = (*Open)(nil)

// Kind implements Message.
func (*Open) Kind() Kind { return KindOpen }

func (m *Open) appendBody(b []byte) []byte {
	b = AppendString(b, m.ClientID)
	b = AppendString(b, m.ClientAddr)
	b = AppendString(b, m.Movie)
	// The class travels as an optional trailing byte so reserved-class
	// (default) Opens stay byte-identical to the pre-class encoding. The
	// lease/takeover flags byte follows it, appended only when some flag
	// is set (which forces the class byte out too, even when reserved,
	// so the decoder can position the fields by the remaining length).
	flags := uint8(0)
	if m.Lease {
		flags |= openFlagLease
	}
	if m.Takeover {
		flags |= openFlagTakeover
	}
	if m.Class != ClassReserved || flags != 0 {
		b = AppendU8(b, uint8(m.Class))
	}
	if flags != 0 {
		b = AppendU8(b, flags)
	}
	return b
}

func decodeOpen(r *Reader) (Message, error) {
	m := &Open{
		ClientID:   r.String(),
		ClientAddr: r.String(),
		Movie:      r.String(),
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Class = Class(r.U8())
	}
	if r.Err() == nil && r.Remaining() > 0 {
		flags := r.U8()
		m.Lease = flags&openFlagLease != 0
		m.Takeover = flags&openFlagTakeover != 0
	}
	return m, r.Err()
}

// OpenReply carries the session parameters back to the client, or an error.
type OpenReply struct {
	OK           bool
	Error        string // set when !OK
	Movie        string
	TotalFrames  uint32 // length of the movie in frames
	FPS          uint16 // nominal display rate
	SessionGroup string // group the client must join for control traffic
	// RetryAfterMs, when nonzero on a refusal, is the server's hint for how
	// long the client should wait before retrying the Open (milliseconds).
	// Encoded only when nonzero, as an optional trailing field.
	RetryAfterMs uint32
	// LeaseTTLMs, when nonzero on a successful reply to a lease-mode
	// Open, is the granted lease lifetime (milliseconds): the client
	// must renew within it or the server reclaims the session. Optional
	// trailing field after RetryAfterMs; its presence forces
	// RetryAfterMs out too so the decoder can tell the two apart by the
	// remaining length.
	LeaseTTLMs uint32
}

var _ Message = (*OpenReply)(nil)

// Kind implements Message.
func (*OpenReply) Kind() Kind { return KindOpenReply }

func (m *OpenReply) appendBody(b []byte) []byte {
	b = AppendBool(b, m.OK)
	b = AppendString(b, m.Error)
	b = AppendString(b, m.Movie)
	b = AppendU32(b, m.TotalFrames)
	b = AppendU16(b, m.FPS)
	b = AppendString(b, m.SessionGroup)
	if m.RetryAfterMs != 0 || m.LeaseTTLMs != 0 {
		b = AppendU32(b, m.RetryAfterMs)
	}
	if m.LeaseTTLMs != 0 {
		b = AppendU32(b, m.LeaseTTLMs)
	}
	return b
}

func decodeOpenReply(r *Reader) (Message, error) {
	m := &OpenReply{
		OK:           r.Bool(),
		Error:        r.String(),
		Movie:        r.String(),
		TotalFrames:  r.U32(),
		FPS:          r.U16(),
		SessionGroup: r.String(),
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.RetryAfterMs = r.U32()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.LeaseTTLMs = r.U32()
	}
	return m, r.Err()
}

// FrameClass is the MPEG frame type carried in a Frame message. I frames
// are full images; P and B frames are incremental and undecodable without
// their reference frames.
type FrameClass uint8

// The MPEG frame classes.
const (
	FrameI FrameClass = iota + 1
	FrameP
	FrameB
)

// String implements fmt.Stringer.
func (c FrameClass) String() string {
	switch c {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return fmt.Sprintf("FrameClass(%d)", uint8(c))
	}
}

// Frame is one video frame in flight. Exactly one frame travels per
// datagram; the stream is identified by the session, so the frame carries
// only its index and class.
type Frame struct {
	Movie   string
	Index   uint32     // position in the movie, 0-based
	Class   FrameClass // I, P or B
	Payload []byte     // frame bytes; aliases the receive buffer on decode
}

var _ Message = (*Frame)(nil)

// Kind implements Message.
func (*Frame) Kind() Kind { return KindFrame }

func (m *Frame) appendBody(b []byte) []byte {
	b = AppendString(b, m.Movie)
	b = AppendU32(b, m.Index)
	b = AppendU8(b, uint8(m.Class))
	return AppendBytes(b, m.Payload)
}

func decodeFrame(r *Reader) (Message, error) {
	m := &Frame{
		Movie:   r.String(),
		Index:   r.U32(),
		Class:   FrameClass(r.U8()),
		Payload: r.Bytes(),
	}
	return m, r.Err()
}

// FlowKind is the type of a client flow-control request (Figure 2 and §4.1
// of the paper).
type FlowKind uint8

// The flow-control request kinds.
const (
	// FlowIncrease asks the server to raise the rate by one frame/s.
	FlowIncrease FlowKind = iota + 1
	// FlowDecrease asks the server to lower the rate by one frame/s.
	FlowDecrease
	// FlowEmergencyMinor reports occupancy below the 30% threshold;
	// the server adds the minor emergency quantity (q=6).
	FlowEmergencyMinor
	// FlowEmergencyMajor reports occupancy below the 15% threshold;
	// the server adds the major emergency quantity (q=12).
	FlowEmergencyMajor
)

// String implements fmt.Stringer.
func (k FlowKind) String() string {
	switch k {
	case FlowIncrease:
		return "increase"
	case FlowDecrease:
		return "decrease"
	case FlowEmergencyMinor:
		return "emergency-minor"
	case FlowEmergencyMajor:
		return "emergency-major"
	default:
		return fmt.Sprintf("FlowKind(%d)", uint8(k))
	}
}

// FlowControl is a client→server flow-control request, multicast into the
// session group so whichever server currently serves the client gets it.
type FlowControl struct {
	ClientID  string
	Request   FlowKind
	Occupancy uint16 // combined buffer occupancy in frames, for diagnostics
}

var _ Message = (*FlowControl)(nil)

// Kind implements Message.
func (*FlowControl) Kind() Kind { return KindFlowControl }

func (m *FlowControl) appendBody(b []byte) []byte {
	b = AppendString(b, m.ClientID)
	b = AppendU8(b, uint8(m.Request))
	return AppendU16(b, m.Occupancy)
}

func decodeFlowControl(r *Reader) (Message, error) {
	m := &FlowControl{
		ClientID:  r.String(),
		Request:   FlowKind(r.U8()),
		Occupancy: r.U16(),
	}
	return m, r.Err()
}

// VCROp is a VCR operation ("full VCR-like control over the transmitted
// material", §3, per the ATM Forum VoD spec).
type VCROp uint8

// The VCR operations.
const (
	VCRPause VCROp = iota + 1
	VCRResume
	VCRSeek    // random access to Arg (frame index)
	VCRQuality // reduce to Arg frames/s; server skips non-I frames
	VCRStop    // end the session
)

// String implements fmt.Stringer.
func (op VCROp) String() string {
	switch op {
	case VCRPause:
		return "pause"
	case VCRResume:
		return "resume"
	case VCRSeek:
		return "seek"
	case VCRQuality:
		return "quality"
	case VCRStop:
		return "stop"
	default:
		return fmt.Sprintf("VCROp(%d)", uint8(op))
	}
}

// VCR is a client→server VCR command, multicast into the session group.
type VCR struct {
	ClientID string
	Op       VCROp
	Arg      uint32 // seek target frame, or quality target fps
}

var _ Message = (*VCR)(nil)

// Kind implements Message.
func (*VCR) Kind() Kind { return KindVCR }

func (m *VCR) appendBody(b []byte) []byte {
	b = AppendString(b, m.ClientID)
	b = AppendU8(b, uint8(m.Op))
	return AppendU32(b, m.Arg)
}

func decodeVCR(r *Reader) (Message, error) {
	m := &VCR{
		ClientID: r.String(),
		Op:       VCROp(r.U8()),
		Arg:      r.U32(),
	}
	return m, r.Err()
}

// ClientRecord is one client's entry in a state-sync multicast: everything
// another server needs to take the client over (§5.2 — "the offsets of its
// clients in the movie and their current transmission rates").
// The session group ("vod.session."+ClientID) and the movie (implied by
// the movie group the record is multicast on) are derivable and therefore
// not carried — the paper reports "a total of a few dozen bytes" per
// client, and this record is exactly that.
type ClientRecord struct {
	ClientID   string
	ClientAddr string
	Offset     uint32 // next frame index to transmit
	Rate       uint16 // current transmission rate, frames/s
	QualityFPS uint16 // client-requested quality cap; 0 = full quality
	Paused     bool
	Departed   bool  // session ended; peers must forget this client
	SentAt     int64 // sender's clock, unix milliseconds, for ordering
	Class      Class // traffic class, preserved across takeover
	// Leased marks a two-tier client attached by lease rather than
	// session-group membership. Leased clients are excluded from
	// view-change redistribution (they migrate by re-anycasting) but
	// their records still sync, so any replica can adopt them. Packed
	// into the high bit of the optional per-record class byte.
	Leased bool
}

// recLeasedBit is the Leased flag inside the optional per-record class
// byte: low 7 bits carry the Class, the high bit the lease mark.
const recLeasedBit = 0x80

// ClientState is the state-sync message multicast on a movie group: the
// periodic half-second sync (a few dozen bytes per client) and, with
// ViewSeq set, the knowledge exchange that precedes client redistribution
// after a view change (§5.2: "the servers first exchange information about
// clients, and then use it to deduce which clients each of them will
// serve").
type ClientState struct {
	Server  string // sending server's ID
	Clients []ClientRecord
	// ViewSeq, when nonzero, marks this as the sender's view-synchronization
	// message for the movie-group view with that sequence number.
	ViewSeq uint64
	// Newcomer is set on view-sync messages by servers that joined the
	// group with no client knowledge — fresh servers brought up to
	// alleviate load. Redistribution deals clients to newcomers first.
	Newcomer bool
}

var _ Message = (*ClientState)(nil)

// Kind implements Message.
func (*ClientState) Kind() Kind { return KindClientState }

func (m *ClientState) appendBody(b []byte) []byte {
	b = AppendString(b, m.Server)
	b = AppendU64(b, m.ViewSeq)
	b = AppendBool(b, m.Newcomer)
	b = AppendU16(b, uint16(len(m.Clients)))
	classed := false
	for i := range m.Clients {
		c := &m.Clients[i]
		b = AppendString(b, c.ClientID)
		b = AppendString(b, c.ClientAddr)
		b = AppendU32(b, c.Offset)
		b = AppendU16(b, c.Rate)
		b = AppendU16(b, c.QualityFPS)
		b = AppendBool(b, c.Paused)
		b = AppendBool(b, c.Departed)
		b = AppendI64(b, c.SentAt)
		if c.Class != ClassReserved || c.Leased {
			classed = true
		}
	}
	// Per-record classes travel as an optional trailing block (one byte per
	// record, in record order), appended only when some record is
	// non-reserved or leased — an all-reserved, lease-free sync stays
	// byte-identical to the pre-class encoding, keeping SyncBytes and the
	// figures unchanged for clusters that never use classes or leases.
	if classed {
		for i := range m.Clients {
			cb := uint8(m.Clients[i].Class) &^ recLeasedBit
			if m.Clients[i].Leased {
				cb |= recLeasedBit
			}
			b = AppendU8(b, cb)
		}
	}
	return b
}

// encodedSize implements sizedMessage: the exact body length appendBody
// will produce, so Encode sizes the packet buffer in one allocation.
func (m *ClientState) encodedSize() int {
	n := 2 + len(m.Server) + 8 + 1 + 2
	classed := false
	for i := range m.Clients {
		c := &m.Clients[i]
		n += minClientRecordBytes + len(c.ClientID) + len(c.ClientAddr)
		if c.Class != ClassReserved || c.Leased {
			classed = true
		}
	}
	if classed {
		n += len(m.Clients)
	}
	return n
}

// minClientRecordBytes is the smallest possible encoded ClientRecord: two
// empty strings (2 bytes of length prefix each) plus the fixed fields.
const minClientRecordBytes = 2 + 2 + 4 + 2 + 2 + 1 + 1 + 8

func decodeClientState(r *Reader) (Message, error) {
	m := &ClientState{Server: r.String(), ViewSeq: r.U64(), Newcomer: r.Bool()}
	n := int(r.U16())
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Guard the pre-allocation against a hostile count: n records need at
	// least n*minClientRecordBytes more input, so a short packet claiming
	// 65535 records fails here instead of allocating megabytes first.
	if n*minClientRecordBytes > r.Remaining() {
		return nil, ErrTruncated
	}
	m.Clients = make([]ClientRecord, 0, n)
	for i := 0; i < n; i++ {
		m.Clients = append(m.Clients, ClientRecord{
			ClientID:   r.String(),
			ClientAddr: r.String(),
			Offset:     r.U32(),
			Rate:       r.U16(),
			QualityFPS: r.U16(),
			Paused:     r.Bool(),
			Departed:   r.Bool(),
			SentAt:     r.I64(),
		})
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	if r.Remaining() > 0 {
		for i := range m.Clients {
			cb := r.U8()
			m.Clients[i].Class = Class(cb &^ recLeasedBit)
			m.Clients[i].Leased = cb&recLeasedBit != 0
		}
	}
	return m, r.Err()
}
