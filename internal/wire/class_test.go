package wire

import (
	"bytes"
	"testing"
)

// TestOpenClassRoundTrip covers the optional trailing class byte on Open.
func TestOpenClassRoundTrip(t *testing.T) {
	in := &Open{ClientID: "c1", ClientAddr: "c1", Movie: "m", Class: ClassBestEffort}
	out := mustDecode(t, Encode(in)).(*Open)
	if *out != *in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}

	var scratch Open
	if err := DecodeOpenInto(&scratch, Encode(in)); err != nil {
		t.Fatal(err)
	}
	if scratch != *in {
		t.Fatalf("DecodeOpenInto: got %+v, want %+v", scratch, in)
	}
	// Decoding a reserved Open into the same scratch must clear the class.
	reserved := &Open{ClientID: "c1", ClientAddr: "c1", Movie: "m"}
	if err := DecodeOpenInto(&scratch, Encode(reserved)); err != nil {
		t.Fatal(err)
	}
	if scratch.Class != ClassReserved {
		t.Fatalf("scratch class not reset: %v", scratch.Class)
	}
}

// TestOpenReservedLegacyBytes pins the compatibility contract: a
// reserved-class Open encodes byte-identically to one that predates the
// Class field, and pre-class bytes decode as reserved.
func TestOpenReservedLegacyBytes(t *testing.T) {
	classed := Encode(&Open{ClientID: "c1", ClientAddr: "a1", Movie: "m", Class: ClassReserved})
	var legacy []byte
	legacy = AppendU8(legacy, uint8(KindOpen))
	legacy = AppendString(legacy, "c1")
	legacy = AppendString(legacy, "a1")
	legacy = AppendString(legacy, "m")
	if !bytes.Equal(classed, legacy) {
		t.Fatalf("reserved Open not byte-identical to legacy encoding:\n got %x\nwant %x", classed, legacy)
	}
	m := mustDecode(t, legacy).(*Open)
	if m.Class != ClassReserved {
		t.Fatalf("legacy bytes decoded class %v, want reserved", m.Class)
	}
}

// TestOpenReplyRetryAfterRoundTrip covers the optional trailing retry hint.
func TestOpenReplyRetryAfterRoundTrip(t *testing.T) {
	in := &OpenReply{Error: "busy", Movie: "m", RetryAfterMs: 1500}
	out := mustDecode(t, Encode(in)).(*OpenReply)
	if *out != *in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}

	var scratch OpenReply
	if err := DecodeOpenReplyInto(&scratch, Encode(in)); err != nil {
		t.Fatal(err)
	}
	if scratch != *in {
		t.Fatalf("DecodeOpenReplyInto: got %+v, want %+v", scratch, in)
	}
	// A hint-free reply decoded into the same scratch must clear the hint.
	ok := &OpenReply{OK: true, Movie: "m", TotalFrames: 10, FPS: 30, SessionGroup: "g"}
	if err := DecodeOpenReplyInto(&scratch, Encode(ok)); err != nil {
		t.Fatal(err)
	}
	if scratch.RetryAfterMs != 0 {
		t.Fatalf("scratch retry hint not reset: %d", scratch.RetryAfterMs)
	}

	// No-hint replies stay byte-identical to the legacy encoding.
	var legacy []byte
	legacy = AppendU8(legacy, uint8(KindOpenReply))
	legacy = AppendBool(legacy, true)
	legacy = AppendString(legacy, "")
	legacy = AppendString(legacy, "m")
	legacy = AppendU32(legacy, 10)
	legacy = AppendU16(legacy, 30)
	legacy = AppendString(legacy, "g")
	if !bytes.Equal(Encode(ok), legacy) {
		t.Fatalf("hint-free OpenReply not byte-identical to legacy encoding")
	}
}

// TestClientStateClassRoundTrip covers the optional trailing per-record
// class block on ClientState.
func TestClientStateClassRoundTrip(t *testing.T) {
	in := &ClientState{
		Server: "server-1",
		Clients: []ClientRecord{
			{ClientID: "c1", ClientAddr: "a1", Offset: 7, Rate: 30, SentAt: 99},
			{ClientID: "c2", ClientAddr: "a2", Offset: 9, Rate: 28, SentAt: 98, Class: ClassBestEffort},
		},
	}
	out := mustDecode(t, Encode(in)).(*ClientState)
	if len(out.Clients) != 2 || out.Clients[0].Class != ClassReserved || out.Clients[1].Class != ClassBestEffort {
		t.Fatalf("classes lost in round trip: %+v", out.Clients)
	}

	// All-reserved syncs omit the class block entirely.
	allReserved := &ClientState{
		Server: "server-1",
		Clients: []ClientRecord{
			{ClientID: "c1", ClientAddr: "a1", Offset: 7, Rate: 30, SentAt: 99},
		},
	}
	without := Encode(allReserved)
	// Decode+encode idempotence catches an accidental always-append of the
	// class block.
	redecoded := mustDecode(t, without).(*ClientState)
	if !bytes.Equal(Encode(redecoded), without) {
		t.Fatalf("all-reserved ClientState not stable across decode/encode")
	}
	for _, c := range redecoded.Clients {
		if c.Class != ClassReserved {
			t.Fatalf("all-reserved decode produced class %v", c.Class)
		}
	}
}

// TestClientStateRecordCountGuard pins the hostile-count guard: a packet
// claiming 65535 records with a short body must fail before allocating the
// record slice.
func TestClientStateRecordCountGuard(t *testing.T) {
	var b []byte
	b = AppendU8(b, uint8(KindClientState))
	b = AppendString(b, "server-1")
	b = AppendU64(b, 0)
	b = AppendBool(b, false)
	b = AppendU16(b, 65535)
	if _, err := Decode(b); err == nil {
		t.Fatal("hostile record count decoded without error")
	}
}

func mustDecode(t *testing.T, b []byte) Message {
	t.Helper()
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
