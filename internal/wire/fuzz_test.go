package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns one valid encoding of every message kind, including the
// optional trailing fields (class bytes, retry hints), plus a few known
// nasty shapes — truncations and hostile length prefixes.
func fuzzSeeds() [][]byte {
	seeds := [][]byte{
		Encode(&Open{ClientID: "client-1", ClientAddr: "client-1", Movie: "feature"}),
		Encode(&Open{ClientID: "client-1", ClientAddr: "client-1", Movie: "feature", Class: ClassBestEffort}),
		Encode(&OpenReply{OK: true, Movie: "feature", TotalFrames: 1800, FPS: 30, SessionGroup: "vod.session.client-1"}),
		Encode(&OpenReply{Error: "at capacity", Movie: "feature", RetryAfterMs: 1000}),
		Encode(&Frame{Movie: "feature", Index: 42, Class: FrameP, Payload: []byte{1, 2, 3, 4}}),
		Encode(&FlowControl{ClientID: "client-1", Request: FlowEmergencyMajor, Occupancy: 11}),
		Encode(&VCR{ClientID: "client-1", Op: VCRSeek, Arg: 900}),
		Encode(&ClientState{Server: "server-1", ViewSeq: 3, Newcomer: true, Clients: []ClientRecord{
			{ClientID: "client-1", ClientAddr: "client-1", Offset: 7, Rate: 30, SentAt: 99},
			{ClientID: "client-2", ClientAddr: "client-2", Offset: 9, Rate: 28, QualityFPS: 10, Paused: true, SentAt: 98, Class: ClassBestEffort},
		}}),
		{},                      // empty
		{0},                     // kind 0
		{byte(KindClientState)}, // truncated header
		{byte(KindClientState), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF}, // hostile record count
		{byte(KindFrame), 0xFF, 0xFF},                                        // string length past end
	}
	return seeds
}

// FuzzDecodeMessage feeds arbitrary bytes to the generic decoder. Two
// properties must hold: no panic on any input, and any message that decodes
// must re-encode to something that decodes again to the same value
// (decode∘encode idempotence, which also exercises the optional trailing
// fields both absent and present).
func FuzzDecodeMessage(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		b2 := Encode(m)
		m2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-encoding decoded message failed to decode: %v\ninput  %x\nencode %x", err, b, b2)
		}
		if b3 := Encode(m2); !bytes.Equal(b2, b3) {
			t.Fatalf("encode not stable after round trip:\nfirst  %x\nsecond %x", b2, b3)
		}
	})
}

// FuzzDecodeOpenInto feeds arbitrary bytes to the allocation-free Open
// decoder and checks it agrees with the generic path: same accept/reject
// decision, same decoded value, and scratch reuse never leaks state from a
// previous decode into the next.
func FuzzDecodeOpenInto(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		// Dirty scratch: a failed decode must not be mistaken for a
		// success, and a successful one must overwrite every field.
		scratch := Open{ClientID: "stale", ClientAddr: "stale", Movie: "stale", Class: ClassBestEffort}
		err := DecodeOpenInto(&scratch, b)

		m, gerr := Decode(b)
		if want, isOpen := m.(*Open); gerr == nil && isOpen {
			if err != nil {
				t.Fatalf("generic decode accepted Open but DecodeOpenInto rejected: %v (input %x)", err, b)
			}
			if scratch != *want {
				t.Fatalf("DecodeOpenInto disagrees with Decode:\n got %+v\nwant %+v", scratch, *want)
			}
		} else if err == nil {
			// DecodeOpenInto may only accept what Decode accepts as an Open.
			t.Fatalf("DecodeOpenInto accepted input the generic decoder rejected: %x", b)
		}
	})
}
