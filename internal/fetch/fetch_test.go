package fetch_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fetch"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/transport"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type node struct {
	fetchOut transport.Endpoint // bulk (requests out / provider in)
	replyIn  transport.Endpoint // bulk-reply (chunks in / provider out)
}

func newNode(t *testing.T, net *netsim.Network, addr transport.Addr) node {
	t.Helper()
	raw, err := net.NewEndpoint(addr)
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(raw)
	return node{
		fetchOut: mux.Channel(transport.ChannelBulk),
		replyIn:  mux.Channel(transport.ChannelBulkReply),
	}
}

func fetchRig(t *testing.T, prof netsim.Profile, movieDur time.Duration) (*clock.Virtual, *fetch.Fetcher, *mpeg.Movie) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 7, prof)

	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: movieDur, Seed: 5})
	cat := store.NewCatalog()
	cat.Add(movie)
	prov := newNode(t, net, "provider")
	fetch.NewProvider(cat, prov.fetchOut, prov.replyIn, nil)

	cli := newNode(t, net, "getter")
	return clk, fetch.NewFetcher(clk, cli.fetchOut, cli.replyIn, nil), movie
}

func TestFetchRoundTrip(t *testing.T) {
	// A two-hour movie: ~216k frames ≈ 1 MB serialized ≈ 34 chunks.
	clk, f, movie := fetchRig(t, netsim.LAN(), 2*time.Hour)
	var got *mpeg.Movie
	var gotErr error
	if err := f.Fetch("feature", "provider", func(m *mpeg.Movie, err error) {
		got, gotErr = m, err
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got == nil {
		t.Fatal("fetch never completed")
	}
	if got.TotalFrames() != movie.TotalFrames() || got.TotalBytes() != movie.TotalBytes() {
		t.Fatalf("fetched movie differs: %v vs %v", got, movie)
	}
}

func TestFetchUnderLoss(t *testing.T) {
	prof := netsim.LAN()
	prof.Loss = 0.15 // brutal; stop-and-wait retries must push through
	clk, f, movie := fetchRig(t, prof, 10*time.Minute)
	var got *mpeg.Movie
	var gotErr error
	if err := f.Fetch("feature", "provider", func(m *mpeg.Movie, err error) {
		got, gotErr = m, err
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(60 * time.Second)
	if gotErr != nil || got == nil {
		t.Fatalf("fetch under loss: %v, %v", got, gotErr)
	}
	if got.TotalBytes() != movie.TotalBytes() {
		t.Fatal("fetched movie corrupted under loss")
	}
}

func TestFetchNotFound(t *testing.T) {
	clk, f, _ := fetchRig(t, netsim.LAN(), time.Minute)
	var gotErr error
	called := false
	if err := f.Fetch("no-such-movie", "provider", func(m *mpeg.Movie, err error) {
		called, gotErr = true, err
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	if !called || gotErr == nil {
		t.Fatalf("not-found: called=%v err=%v", called, gotErr)
	}
	if !strings.Contains(gotErr.Error(), "does not hold") {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestFetchDeadPeerTimesOut(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1, netsim.LAN())
	if _, err := net.NewEndpoint("ghost"); err != nil { // bound but silent
		t.Fatal(err)
	}
	cli := newNode(t, net, "getter")
	f := fetch.NewFetcher(clk, cli.fetchOut, cli.replyIn, nil)
	var gotErr error
	if err := f.Fetch("feature", "ghost", func(m *mpeg.Movie, err error) { gotErr = err }); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second)
	if gotErr == nil {
		t.Fatal("fetch from a dead peer never failed")
	}
	// The fetcher must be reusable after a failure.
	if err := f.Fetch("feature", "ghost", func(*mpeg.Movie, error) {}); err != nil {
		t.Fatalf("fetcher not reusable: %v", err)
	}
}

func TestFetchOneAtATime(t *testing.T) {
	clk, f, _ := fetchRig(t, netsim.LAN(), time.Minute)
	if err := f.Fetch("feature", "provider", func(*mpeg.Movie, error) {}); err != nil {
		t.Fatal(err)
	}
	if err := f.Fetch("feature", "provider", func(*mpeg.Movie, error) {}); err == nil {
		t.Fatal("second concurrent Fetch accepted")
	}
	clk.Advance(5 * time.Second)
}
