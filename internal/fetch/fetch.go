// Package fetch is the "separate mechanism for replicating the video
// material" the paper assumes (§3, footnote): a chunked movie-transfer
// protocol over the same unreliable datagrams as everything else. A server
// brought up on the fly (§7: "a new server can be brought up without any
// special preparations") fetches the movies it should serve from any peer
// that has them, then joins their movie groups.
//
// The protocol is stop-and-wait per chunk with timeout retries — movies are
// stored as structure only (≈5 bytes/frame; a two-hour feature is ≈1 MB),
// so transfer time is irrelevant next to streaming. Providers are
// stateless: every chunk request is answered from the catalog.
package fetch

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ChunkSize is the transfer unit; comfortably under the datagram limit.
const ChunkSize = 32 * 1024

// Message kinds on the bulk channel.
const (
	kindChunkReq uint8 = iota + 1
	kindChunkResp
	kindNotFound
)

// Provider answers chunk requests from a catalog. Requests arrive on in
// (the bulk channel); chunks go back out on out (the bulk-reply channel),
// where the requesting Fetcher listens.
type Provider struct {
	catalog *store.Catalog
	in      transport.Endpoint
	out     transport.Endpoint

	ctrServed   *obs.Counter // fetch.chunks_served
	ctrNotFound *obs.Counter // fetch.not_found

	mu      sync.Mutex
	serial  map[string][]byte // serialized movies, built lazily
	scratch []byte            // reusable response buffer, guarded by mu
}

// NewProvider starts serving the catalog's movies. reg (nil ok) receives
// the provider-side fetch.* counters.
func NewProvider(catalog *store.Catalog, in, out transport.Endpoint, reg *obs.Registry) *Provider {
	p := &Provider{
		catalog:     catalog,
		in:          in,
		out:         out,
		serial:      make(map[string][]byte),
		ctrServed:   reg.Counter("fetch.chunks_served"),
		ctrNotFound: reg.Counter("fetch.not_found"),
	}
	in.SetHandler(p.onPacket)
	return p
}

func (p *Provider) onPacket(from transport.Addr, payload []byte) {
	r := wire.NewReader(payload)
	if r.U8() != kindChunkReq {
		return
	}
	reqID := r.U64()
	movieID := r.String()
	chunk := int(r.U32())
	if r.Done() != nil {
		return
	}

	data, err := p.serialized(movieID)
	if err != nil {
		p.ctrNotFound.Inc()
		p.mu.Lock()
		resp := wire.AppendU8(p.scratch[:0], kindNotFound)
		resp = wire.AppendU64(resp, reqID)
		resp = wire.AppendString(resp, movieID)
		p.scratch = resp[:0]
		_ = p.out.Send(from, resp)
		p.mu.Unlock()
		return
	}
	total := (len(data) + ChunkSize - 1) / ChunkSize
	if chunk < 0 || chunk >= total {
		return
	}
	lo := chunk * ChunkSize
	hi := lo + ChunkSize
	if hi > len(data) {
		hi = len(data)
	}
	// Responses are framed into a reusable scratch buffer; Send does not
	// retain the payload, so the buffer is free again once it returns.
	p.mu.Lock()
	resp := wire.AppendU8(p.scratch[:0], kindChunkResp)
	resp = wire.AppendU64(resp, reqID)
	resp = wire.AppendString(resp, movieID)
	resp = wire.AppendU32(resp, uint32(chunk))
	resp = wire.AppendU32(resp, uint32(total))
	resp = wire.AppendBytes(resp, data[lo:hi])
	p.scratch = resp[:0]
	p.ctrServed.Inc()
	_ = p.out.Send(from, resp)
	p.mu.Unlock()
}

// serialized returns (building and caching on first use) the movie's
// on-the-wire form.
func (p *Provider) serialized(movieID string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if data, ok := p.serial[movieID]; ok {
		return data, nil
	}
	m, err := p.catalog.Get(movieID)
	if err != nil {
		return nil, err
	}
	var buf sliceWriter
	if _, err := m.WriteTo(&buf); err != nil {
		return nil, err
	}
	p.serial[movieID] = buf.b
	return buf.b, nil
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Fetcher retrieves movies from providers: requests go out on out (the
// bulk channel, where Providers listen); chunks arrive on in (the
// bulk-reply channel). One outstanding transfer at a time per Fetcher; the
// VoD server fetches sequentially at startup.
type Fetcher struct {
	clk clock.Clock
	out transport.Endpoint
	in  transport.Endpoint

	obs         *obs.Registry
	ctrRequests *obs.Counter // fetch.requests_sent
	ctrRetries  *obs.Counter // fetch.chunk_retries
	ctrFetched  *obs.Counter // fetch.movies_fetched
	ctrFailed   *obs.Counter // fetch.failures

	mu      sync.Mutex
	nextID  uint64
	current *transfer
	reqBuf  []byte // reusable request buffer, guarded by mu
}

type transfer struct {
	id       uint64
	movie    string
	peer     transport.Addr
	chunks   [][]byte
	total    int // -1 until the first response arrives
	next     int
	retries  int
	timer    clock.Timer
	callback func(*mpeg.Movie, error)
}

// NewFetcher wires a fetcher to its request/reply channels (it takes over
// in's inbound handler). reg (nil ok) receives the fetcher-side fetch.*
// counters and trace events.
func NewFetcher(clk clock.Clock, out, in transport.Endpoint, reg *obs.Registry) *Fetcher {
	f := &Fetcher{
		clk:         clk,
		out:         out,
		in:          in,
		obs:         reg,
		ctrRequests: reg.Counter("fetch.requests_sent"),
		ctrRetries:  reg.Counter("fetch.chunk_retries"),
		ctrFetched:  reg.Counter("fetch.movies_fetched"),
		ctrFailed:   reg.Counter("fetch.failures"),
	}
	in.SetHandler(f.onPacket)
	return f
}

// maxChunkRetries bounds per-chunk retransmissions before the transfer
// fails (the caller then tries another peer).
const maxChunkRetries = 20

// Fetch retrieves movieID from peer, invoking callback exactly once with
// the movie or an error. Only one Fetch may be in flight per Fetcher.
func (f *Fetcher) Fetch(movieID string, peer transport.Addr, callback func(*mpeg.Movie, error)) error {
	f.mu.Lock()
	if f.current != nil {
		f.mu.Unlock()
		return fmt.Errorf("fetch: transfer of %q already in flight", f.current.movie)
	}
	f.nextID++
	tr := &transfer{
		id:       f.nextID,
		movie:    movieID,
		peer:     peer,
		total:    -1,
		callback: callback,
	}
	f.current = tr
	f.mu.Unlock()
	f.requestChunk(tr)
	return nil
}

func (f *Fetcher) requestChunk(tr *transfer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	req := wire.AppendU8(f.reqBuf[:0], kindChunkReq)
	req = wire.AppendU64(req, tr.id)
	req = wire.AppendString(req, tr.movie)
	req = wire.AppendU32(req, uint32(tr.next))
	f.reqBuf = req[:0]
	f.ctrRequests.Inc()
	_ = f.out.Send(tr.peer, req)

	if f.current != tr {
		return
	}
	tr.timer = f.clk.AfterFunc(300*time.Millisecond, func() {
		f.mu.Lock()
		if f.current != tr {
			f.mu.Unlock()
			return
		}
		tr.retries++
		f.ctrRetries.Inc()
		if tr.retries > maxChunkRetries {
			f.current = nil
			cb := tr.callback
			f.mu.Unlock()
			f.ctrFailed.Inc()
			f.obs.Event("fetch.fail", tr.movie+" from "+string(tr.peer)+": timeout")
			cb(nil, fmt.Errorf("fetch: %q from %s: no response after %d retries", tr.movie, tr.peer, maxChunkRetries))
			return
		}
		f.mu.Unlock()
		f.requestChunk(tr)
	})
}

func (f *Fetcher) onPacket(from transport.Addr, payload []byte) {
	r := wire.NewReader(payload)
	kind := r.U8()
	reqID := r.U64()
	movieID := r.String()
	if r.Err() != nil {
		return
	}

	f.mu.Lock()
	tr := f.current
	if tr == nil || tr.id != reqID || tr.movie != movieID || from != tr.peer {
		f.mu.Unlock()
		return
	}

	if kind == kindNotFound {
		f.current = nil
		if tr.timer != nil {
			tr.timer.Stop()
		}
		cb := tr.callback
		f.mu.Unlock()
		f.ctrFailed.Inc()
		cb(nil, fmt.Errorf("fetch: peer %s does not hold %q", from, movieID))
		return
	}
	if kind != kindChunkResp {
		f.mu.Unlock()
		return
	}
	chunk := int(r.U32())
	total := int(r.U32())
	data := r.Bytes()
	if r.Done() != nil || chunk != tr.next || total <= 0 {
		f.mu.Unlock()
		return
	}
	if tr.timer != nil {
		tr.timer.Stop()
	}
	tr.total = total
	tr.retries = 0
	tr.chunks = append(tr.chunks, append([]byte(nil), data...))
	tr.next++

	if tr.next < tr.total {
		f.mu.Unlock()
		f.requestChunk(tr)
		return
	}

	// Complete: assemble and parse.
	f.current = nil
	cb := tr.callback
	var whole []byte
	for _, c := range tr.chunks {
		whole = append(whole, c...)
	}
	f.mu.Unlock()

	movie, err := mpeg.ReadFrom(bytes.NewReader(whole))
	if err != nil {
		f.ctrFailed.Inc()
		cb(nil, fmt.Errorf("fetch: %q from %s corrupt: %w", movieID, from, err))
		return
	}
	f.ctrFetched.Inc()
	f.obs.Event("fetch.done", movieID+" from "+string(from))
	cb(movie, nil)
}
