package chaos

import (
	"context"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// ClassReport is the outcome of one traffic-class overload trial: the
// seeded flash-crowd scenario plus the checked class invariants. Even
// seeds also crash and cold-restart the primary mid-crowd, so the sweep
// alternates between pure-overload and overload-plus-takeover runs.
type ClassReport struct {
	Seed       int64
	Restart    bool
	Res        sim.OverloadResult
	Violations []string
}

// OK reports whether every class invariant held.
func (r *ClassReport) OK() bool { return len(r.Violations) == 0 }

// Write renders the report (per-class counters, verdict).
func (r *ClassReport) Write(w io.Writer) {
	fmt.Fprintf(w, "classes seed %d (restart=%v):\n", r.Seed, r.Restart)
	fmt.Fprintf(w, "  reserved:    viewers=%d watching=%d displayed=%d stalls=%d refused=%d\n",
		r.Res.Reserved.Viewers, r.Res.Reserved.Watching, r.Res.Reserved.Displayed,
		r.Res.Reserved.Stalls, r.Res.Reserved.Refusals)
	fmt.Fprintf(w, "  best effort: viewers=%d watching=%d displayed=%d stalls=%d worst=%d refused=%d\n",
		r.Res.BestEffort.Viewers, r.Res.BestEffort.Watching, r.Res.BestEffort.Displayed,
		r.Res.BestEffort.Stalls, r.Res.BestEffort.WorstStall, r.Res.BestEffort.Refusals)
	fmt.Fprintf(w, "  server: admits=%d/%d refusals=%d/%d shed=%d degraded=%d\n",
		r.Res.Stats.AdmitsReserved, r.Res.Stats.AdmitsBestEffort,
		r.Res.Stats.RefusalsReserved, r.Res.Stats.RefusalsBestEffort,
		r.Res.Stats.ShedTokens, r.Res.Stats.DegradedFrames)
	if r.OK() {
		fmt.Fprintf(w, "  OK: all class invariants held\n")
		return
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION: %s\n", v)
	}
}

// maxBestEffortFreeze bounds the longest tolerated best-effort stall run
// (display ticks — 600 is 20 virtual seconds at full rate). Degradation
// may stretch best-effort playback badly, but a freeze this long means
// the class has effectively deadlocked rather than degraded.
const maxBestEffortFreeze = 600

// RunClasses executes the overload trial for one seed and checks the
// degrade-before-refuse contract:
//
//   - guarantee: reserved viewers never stall and are never refused — the
//     ladder sheds best-effort load first, at any cost to that class;
//   - liveness: best-effort playback keeps moving — degraded and throttled,
//     but never deadlocked (post-disruption progress, bounded freezes);
//   - sanity: the ladder actually engaged (frames were degraded), so a
//     passing run can't be an accidentally idle server.
func RunClasses(seed int64) *ClassReport {
	r := &ClassReport{Seed: seed, Restart: seed%2 == 0}
	r.Res = sim.OverloadTrial(sim.OverloadConfig{Seed: seed, Restart: r.Restart})

	res, be := r.Res.Reserved, r.Res.BestEffort
	if res.Stalls != 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("reserved class stalled %d times (worst run %d ticks); the ladder must shed best-effort load first",
				res.Stalls, res.WorstStall))
	}
	if res.Refusals != 0 || r.Res.Stats.RefusalsReserved != 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("reserved opens refused (client saw %d, server counted %d) with best-effort sessions still sheddable",
				res.Refusals, r.Res.Stats.RefusalsReserved))
	}
	if res.Watching != res.Viewers {
		r.Violations = append(r.Violations,
			fmt.Sprintf("only %d/%d reserved viewers still watching or finished", res.Watching, res.Viewers))
	}
	if be.Finished < be.Viewers && be.Displayed <= r.Res.BestEffortProbe {
		r.Violations = append(r.Violations,
			fmt.Sprintf("best-effort class deadlocked: displayed stuck at %d since the 24s probe (%d)",
				be.Displayed, r.Res.BestEffortProbe))
	}
	if be.WorstStall > maxBestEffortFreeze {
		r.Violations = append(r.Violations,
			fmt.Sprintf("best-effort freeze of %d ticks exceeds the %d-tick degradation bound",
				be.WorstStall, maxBestEffortFreeze))
	}
	if r.Res.Stats.DegradedFrames == 0 {
		r.Violations = append(r.Violations,
			"overload ladder never engaged (no degraded frames) — trial did not exercise the contract")
	}
	return r
}

// SweepClasses runs RunClasses for seeds first..first+n-1 across a bounded
// worker pool, mirroring Sweep: reports come back in seed order, invariant
// violations live in the reports, and only a panic or cancellation
// surfaces as an error. onReport, when non-nil, streams reports in seed
// order as a contiguous prefix finishes.
func SweepClasses(ctx context.Context, first int64, n, workers int, reg *obs.Registry, onReport func(*ClassReport)) ([]*ClassReport, sweep.Summary, error) {
	reports := make([]*ClassReport, n)
	opts := sweep.Options{
		Workers:   workers,
		FirstSeed: first,
		KeepGoing: true,
		Obs:       reg,
	}
	if onReport != nil {
		done := make([]bool, n)
		flushed := 0
		opts.OnResult = func(i int, seed int64, err error) {
			done[i] = true
			for flushed < n && done[flushed] {
				if r := reports[flushed]; r != nil {
					onReport(r)
				}
				flushed++
			}
		}
	}
	_, sum, err := sweep.RunOpts(ctx, n, opts, func(i int, seed int64) (struct{}, error) {
		reports[i] = RunClasses(seed)
		return struct{}{}, nil
	})
	return reports, sum, err
}

// FailedClassSeeds returns the seeds whose class reports violated an
// invariant, in seed order. Nil reports (panicked jobs) are skipped; those
// surface through the sweep error.
func FailedClassSeeds(reports []*ClassReport) []int64 {
	var seeds []int64
	for _, r := range reports {
		if r != nil && !r.OK() {
			seeds = append(seeds, r.Seed)
		}
	}
	return seeds
}
