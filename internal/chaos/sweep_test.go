package chaos_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/chaos"
)

// TestSweepEquivalence is the determinism contract's guard: the same seeds
// executed sequentially (workers=1) and through an 8-worker pool must
// produce byte-identical reports — schedules, counters, verdicts, all of
// it. Parallelism is across runs, never inside one; if this test ever
// fails, some package-level state leaked between concurrent runs.
func TestSweepEquivalence(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	ctx := context.Background()
	seq, _, err := chaos.Sweep(ctx, 1, n, 1, nil, nil)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	par, _, err := chaos.Sweep(ctx, 1, n, 8, nil, nil)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	for i := range seq {
		var a, b bytes.Buffer
		seq[i].Write(&a)
		par[i].Write(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("seed %d diverged between workers=1 and workers=8:\n--- sequential ---\n%s--- parallel ---\n%s",
				seq[i].Seed, a.String(), b.String())
		}
	}
}

// TestSweepStreamsInOrder: the onReport callback sees reports in seed
// order — a contiguous prefix, never an out-of-order or duplicate report —
// regardless of which worker finishes first.
func TestSweepStreamsInOrder(t *testing.T) {
	const n = 10
	var streamed []int64
	reports, sum, err := chaos.Sweep(context.Background(), 1, n, 8, nil,
		func(r *chaos.Report) { streamed = append(streamed, r.Seed) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != n {
		t.Fatalf("summary says %d jobs, want %d", sum.Jobs, n)
	}
	if len(streamed) != n {
		t.Fatalf("streamed %d reports, want %d", len(streamed), n)
	}
	for i, s := range streamed {
		if s != int64(i+1) {
			t.Fatalf("streamed seeds %v: not in seed order", streamed)
		}
	}
	for i, r := range reports {
		if r.Seed != int64(i+1) {
			t.Fatalf("reports[%d].Seed = %d", i, r.Seed)
		}
	}
}

// TestFailedSeedsSorted: FailedSeeds extracts violating seeds in ascending
// order whatever order the reports landed in.
func TestFailedSeedsSorted(t *testing.T) {
	mk := func(seed int64, ok bool) *chaos.Report {
		r := &chaos.Report{Seed: seed}
		if !ok {
			r.Violations = append(r.Violations, fmt.Sprintf("synthetic violation for seed %d", seed))
		}
		return r
	}
	reports := []*chaos.Report{
		mk(9, false), nil, mk(3, false), mk(5, true), mk(1, false),
	}
	got := chaos.FailedSeeds(reports)
	want := []int64{1, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("failed seeds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("failed seeds %v, want %v", got, want)
		}
	}
}
