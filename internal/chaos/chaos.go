// Package chaos generates and executes randomized fault schedules against
// a full VoD cluster, then checks the service-level invariants the paper's
// design promises. Everything is driven by a single seed: the same seed
// produces the same schedule, the same simulated network weather, and the
// same counters — a failing seed from CI replays exactly with
// `vodbench -chaos -seed N`.
//
// The generator is constraint-aware rather than blindly random: it never
// crashes the last server that holds the movie (the paper's guarantee is
// "as long as one server holding the movie survives"), it never restarts a
// server into an active partition (a cold restart must be able to re-fetch
// the movie from a peer), and it always heals the network before the quiet
// tail so the invariant probes measure the settled system, not a fault in
// progress.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Kind enumerates the fault-schedule operations.
type Kind int

// The schedule operations.
const (
	KindCrash        Kind = iota + 1 // fail-stop the named server
	KindCrashServing                 // fail-stop whichever server serves the client
	KindRestart                      // cold-restart a previously crashed server
	KindAdd                          // bring up a fresh server
	KindPartition                    // split the network into Groups
	KindHeal                         // clear all partitions and link faults
	KindLinkFlap                     // take one link down for Dur, then back up
	KindLossBurst                    // superimpose loss P on every link for Dur
	KindPause                        // pause playback for Dur, then resume
	KindSeek                         // random access to Frame
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindCrashServing:
		return "crash-serving"
	case KindRestart:
		return "restart"
	case KindAdd:
		return "add"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindLinkFlap:
		return "link-flap"
	case KindLossBurst:
		return "loss-burst"
	case KindPause:
		return "pause"
	case KindSeek:
		return "seek"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one scheduled operation.
type Op struct {
	At   time.Duration
	Kind Kind

	Target string     // crash/restart/add: the server ID
	A, B   string     // link-flap: the link's endpoints
	OneWay bool       // link-flap: block only A→B
	Groups [][]string // partition: the isolation groups

	P     float64       // loss-burst probability
	Dur   time.Duration // flap/burst/pause length
	Frame uint32        // seek target
}

// String renders the op for schedule listings.
func (o Op) String() string {
	s := fmt.Sprintf("%7.1fs %-13s", o.At.Seconds(), o.Kind)
	switch o.Kind {
	case KindCrash, KindRestart, KindAdd:
		s += " " + o.Target
	case KindPartition:
		s += fmt.Sprintf(" %v", o.Groups)
	case KindLinkFlap:
		arrow := " <-> "
		if o.OneWay {
			arrow = " -> "
		}
		s += fmt.Sprintf(" %s%s%s for %v", o.A, arrow, o.B, o.Dur)
	case KindLossBurst:
		s += fmt.Sprintf(" p=%.2f for %v", o.P, o.Dur)
	case KindPause:
		s += fmt.Sprintf(" for %v", o.Dur)
	case KindSeek:
		s += fmt.Sprintf(" to frame %d", o.Frame)
	}
	return s
}

// Plan is a complete seeded fault schedule.
type Plan struct {
	Seed int64
	Ops  []Op
}

// Config bounds the generated schedules and the scenario they run in.
type Config struct {
	// Servers is the number of servers started at time zero (default 2).
	Servers int
	// MaxServers is the server ID pool ceiling — adds and restarts draw
	// from server-1..server-MaxServers (default 4).
	MaxServers int
	// WindowStart/WindowEnd bound the fault window (default 8s–50s). After
	// WindowEnd the schedule heals everything and goes quiet so invariant
	// probes see the settled system.
	WindowStart, WindowEnd time.Duration
	// MaxOps bounds the number of drawn operations (default 10; the forced
	// final heal is extra).
	MaxOps int
	// Duration is the total scenario time (default 100s for the paper's
	// 90s movie: faults delay playback, the tail lets it settle).
	Duration time.Duration
}

func (c *Config) fillDefaults() {
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.MaxServers < c.Servers {
		c.MaxServers = c.Servers + 2
	}
	if c.WindowStart <= 0 {
		c.WindowStart = 8 * time.Second
	}
	if c.WindowEnd <= c.WindowStart {
		c.WindowEnd = 50 * time.Second
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 10
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Second
	}
}

// pool returns the full server ID pool.
func (c *Config) pool() []string {
	ids := make([]string, c.MaxServers)
	for i := range ids {
		ids[i] = fmt.Sprintf("server-%d", i+1)
	}
	return ids
}

// ClientID is the observed client in every chaos scenario.
const ClientID = "client-1"

// holderAge is how long a server must have been up before the generator
// trusts it to hold the movie (a cold restart needs a few seconds to
// re-fetch before it can serve).
const holderAge = 5 * time.Second

// genState is the generator's model of the cluster while it draws ops. It
// tracks enough to respect the safety constraints; it does not (cannot)
// know which server actually serves, so crash-serving kills are accounted
// as an "unknown dead" that conservatively discounts the holder count.
type genState struct {
	upSince     map[string]time.Duration
	crashedAt   map[string]time.Duration
	nextAdd     int
	unknownDead int
	partEnd     time.Duration // active partition heals at this instant
	pauseEnd    time.Duration
	lossEnd     time.Duration
}

// holders counts servers presumed to hold the movie at time t.
func (g *genState) holders(t time.Duration) int {
	n := 0
	for _, up := range g.upSince {
		if t-up >= holderAge {
			n++
		}
	}
	return n - g.unknownDead
}

// alive returns the model-live server IDs, sorted for determinism.
func (g *genState) alive() []string {
	ids := make([]string, 0, len(g.upSince))
	for id := range g.upSince {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// restartable returns crashed servers eligible for restart at t, sorted.
func (g *genState) restartable(t time.Duration) []string {
	var ids []string
	for id, at := range g.crashedAt {
		if t-at >= 3*time.Second {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// NewPlan draws a fault schedule from the seed. Identical (seed, cfg)
// always produce the identical plan.
func NewPlan(seed int64, cfg Config) Plan {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(seed))
	pool := cfg.pool()

	st := &genState{
		upSince:   make(map[string]time.Duration),
		crashedAt: make(map[string]time.Duration),
		nextAdd:   cfg.Servers,
	}
	for _, id := range pool[:cfg.Servers] {
		st.upSince[id] = 0
	}

	var ops []Op
	t := cfg.WindowStart + time.Duration(rng.Intn(2000))*time.Millisecond
	for t < cfg.WindowEnd && len(ops) < cfg.MaxOps {
		if op, ok := drawOp(rng, cfg, st, pool, t); ok {
			ops = append(ops, op...)
		}
		t += 2*time.Second + time.Duration(rng.Intn(5000))*time.Millisecond
	}

	// Always end with a heal: whatever the draw produced, the quiet tail
	// starts from a connected network.
	ops = append(ops, Op{At: cfg.WindowEnd + 2*time.Second, Kind: KindHeal})
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
	return Plan{Seed: seed, Ops: ops}
}

// drawOp picks one feasible operation at time t (a partition draw also
// emits its paired heal). ok is false when the weighted pick landed on an
// op whose preconditions do not hold at t — the slot is simply skipped,
// keeping the schedule shape seed-stable.
func drawOp(rng *rand.Rand, cfg Config, st *genState, pool []string, t time.Duration) ([]Op, bool) {
	inPartition := t < st.partEnd

	// Weighted kinds; infeasible draws skip the slot rather than redraw,
	// so schedules stay sparse under constrained states.
	kinds := []Kind{
		KindCrash, KindCrash,
		KindCrashServing,
		KindRestart, KindRestart, KindRestart,
		KindAdd,
		KindPartition, KindPartition, KindPartition,
		KindLinkFlap, KindLinkFlap,
		KindLossBurst, KindLossBurst,
		KindPause,
		KindSeek,
	}
	kind := kinds[rng.Intn(len(kinds))]

	switch kind {
	case KindCrash:
		alive := st.alive()
		if len(alive) == 0 {
			return nil, false
		}
		target := alive[rng.Intn(len(alive))]
		isHolder := t-st.upSince[target] >= holderAge
		need := 1
		if isHolder {
			need = 2 // the victim is among the holders we count
		}
		if st.holders(t) < need {
			return nil, false
		}
		delete(st.upSince, target)
		st.crashedAt[target] = t
		return []Op{{At: t, Kind: KindCrash, Target: target}}, true

	case KindCrashServing:
		// The victim is unknown to the model; require two trusted holders
		// and discount one of them forever after.
		if st.holders(t) < 2 {
			return nil, false
		}
		st.unknownDead++
		return []Op{{At: t, Kind: KindCrashServing}}, true

	case KindRestart:
		if inPartition {
			return nil, false // a cold restart must be able to reach a peer
		}
		cands := st.restartable(t)
		if len(cands) == 0 {
			return nil, false
		}
		target := cands[rng.Intn(len(cands))]
		delete(st.crashedAt, target)
		st.upSince[target] = t
		return []Op{{At: t, Kind: KindRestart, Target: target}}, true

	case KindAdd:
		if inPartition || st.nextAdd >= cfg.MaxServers {
			return nil, false
		}
		target := pool[st.nextAdd]
		st.nextAdd++
		st.upSince[target] = t
		return []Op{{At: t, Kind: KindAdd, Target: target}}, true

	case KindPartition:
		if inPartition || t < st.pauseEnd {
			return nil, false
		}
		dur := 3*time.Second + time.Duration(rng.Intn(5000))*time.Millisecond
		var groups [][]string
		if rng.Intn(2) == 0 {
			// Client-cut: the client alone against the whole cluster — the
			// fault only client-side reopen can survive.
			groups = [][]string{{ClientID}, append([]string(nil), pool...)}
		} else {
			// Server-split: the client keeps one side; the other side's
			// servers get suspected and their sessions taken over.
			sideA, sideB := []string{ClientID}, []string(nil)
			for _, id := range pool {
				if rng.Intn(2) == 0 {
					sideA = append(sideA, id)
				} else {
					sideB = append(sideB, id)
				}
			}
			if len(sideB) == 0 {
				sideB = append(sideB, sideA[len(sideA)-1])
				sideA = sideA[:len(sideA)-1]
			}
			groups = [][]string{sideA, sideB}
		}
		st.partEnd = t + dur
		return []Op{
			{At: t, Kind: KindPartition, Groups: groups, Dur: dur},
			{At: t + dur, Kind: KindHeal},
		}, true

	case KindLinkFlap:
		dur := 500*time.Millisecond + time.Duration(rng.Intn(1500))*time.Millisecond
		alive := st.alive()
		if rng.Intn(3) == 0 || len(alive) < 2 {
			// Client-side flap: always bidirectional. (A one-way cut of only
			// the client's outbound control path starves the flow-control
			// loop while frames keep arriving — a QoS hit by design, not a
			// bug the invariants should flag.)
			if len(alive) == 0 {
				return nil, false
			}
			b := alive[rng.Intn(len(alive))]
			return []Op{{At: t, Kind: KindLinkFlap, A: ClientID, B: b, Dur: dur}}, true
		}
		i := rng.Intn(len(alive))
		j := rng.Intn(len(alive) - 1)
		if j >= i {
			j++
		}
		return []Op{{At: t, Kind: KindLinkFlap,
			A: alive[i], B: alive[j], OneWay: rng.Intn(2) == 0, Dur: dur}}, true

	case KindLossBurst:
		if t < st.lossEnd {
			return nil, false
		}
		dur := time.Second + time.Duration(rng.Intn(3000))*time.Millisecond
		st.lossEnd = t + dur
		return []Op{{At: t, Kind: KindLossBurst,
			P: 0.2 + 0.3*rng.Float64(), Dur: dur}}, true

	case KindPause:
		if inPartition || t < st.pauseEnd || t < 12*time.Second {
			return nil, false
		}
		dur := time.Second + time.Duration(rng.Intn(2000))*time.Millisecond
		st.pauseEnd = t + dur
		return []Op{{At: t, Kind: KindPause, Dur: dur}}, true

	case KindSeek:
		if inPartition || t < 12*time.Second {
			return nil, false
		}
		return []Op{{At: t, Kind: KindSeek, Frame: uint32(rng.Intn(2200))}}, true
	}
	return nil, false
}
