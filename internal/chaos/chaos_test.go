package chaos_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestClusterMonkey is the full-stack chaos harness: dozens of seeded fault
// schedules against a live cluster, each checked for the paper's
// service-level invariants. The seeds fan across all cores through the
// sweep engine — the same path `vodbench -chaos` takes — and a failing
// seed replays exactly with `vodbench -chaos -seed N`.
func TestClusterMonkey(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 50
	}
	reports, sum, err := chaos.Sweep(context.Background(), 1, n, 0, nil, nil)
	if err != nil {
		t.Fatalf("sweep error (panicked seed?): %v", err)
	}
	for _, rep := range reports {
		if !rep.OK() {
			var buf bytes.Buffer
			rep.Write(&buf)
			t.Errorf("invariant violations:\n%s", buf.String())
		}
	}
	if failed := chaos.FailedSeeds(reports); len(failed) > 0 {
		t.Errorf("failed seeds: %v", failed)
	}
	t.Logf("monkey sweep: %s", sum)
}

// TestPlanDeterministic: the same seed must always produce the same
// schedule — reproducibility is the whole point of the harness.
func TestPlanDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := chaos.NewPlan(seed, chaos.Config{})
		b := chaos.NewPlan(seed, chaos.Config{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d produced two different plans", seed)
		}
	}
}

// TestPlanConstraints checks the generator's structural guarantees across
// many seeds: ops sorted and inside the fault window, every partition
// paired with a heal, a final heal before the quiet tail, and targets drawn
// from the declared pool.
func TestPlanConstraints(t *testing.T) {
	cfg := chaos.Config{}
	for seed := int64(1); seed <= 300; seed++ {
		plan := chaos.NewPlan(seed, cfg)
		if len(plan.Ops) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
		var prev time.Duration
		partitions, heals := 0, 0
		for _, op := range plan.Ops {
			if op.At < prev {
				t.Fatalf("seed %d: ops not sorted (%v after %v)", seed, op.At, prev)
			}
			prev = op.At
			switch op.Kind {
			case chaos.KindPartition:
				partitions++
				if len(op.Groups) < 2 {
					t.Fatalf("seed %d: partition with %d groups", seed, len(op.Groups))
				}
			case chaos.KindHeal:
				heals++
			}
		}
		if heals < partitions+1 {
			t.Fatalf("seed %d: %d partitions but only %d heals", seed, partitions, heals)
		}
		last := plan.Ops[len(plan.Ops)-1]
		if last.Kind != chaos.KindHeal {
			t.Fatalf("seed %d: schedule does not end with a heal (%v)", seed, last)
		}
	}
}

// TestExecuteReproducible: executing the same plan twice yields identical
// reports (counters and all) — the property that makes a CI failure
// replayable on a developer machine.
func TestExecuteReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("two full executions; skipped in -short")
	}
	a := chaos.Run(3)
	b := chaos.Run(3)
	if a.Displayed != b.Displayed || a.Stalls != b.Stalls ||
		a.Reopens != b.Reopens || a.Takeovers != b.Takeovers || a.Owners != b.Owners {
		t.Fatalf("two runs of seed 3 diverged:\n%+v\n%+v", a, b)
	}
}
