package chaos

import (
	"context"
	"sort"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// Sweep executes the schedules for seeds first..first+n-1 across a bounded
// worker pool (workers <= 0 means all cores) and returns the reports in
// seed order. Each seed builds its own cluster, clock and network, so the
// reports are byte-identical to running the same seeds sequentially —
// parallelism only changes the wall-clock time (see TestSweepEquivalence).
//
// The sweep keeps going past invariant violations (a violation lives in
// its Report, not in an error); only a panicking seed or context
// cancellation surfaces as an error, tagged with the seed that caused it.
//
// onReport, when non-nil, is called once per report in *seed order* as a
// contiguous prefix of finished seeds becomes available, so a CLI can
// stream output while later seeds still run. reg, when non-nil, receives
// the sweep summary counters and trace event.
func Sweep(ctx context.Context, first int64, n, workers int, reg *obs.Registry, onReport func(*Report)) ([]*Report, sweep.Summary, error) {
	reports := make([]*Report, n)
	opts := sweep.Options{
		Workers:   workers,
		FirstSeed: first,
		KeepGoing: true,
		Obs:       reg,
	}
	if onReport != nil {
		// done and flushed are only touched inside OnResult, which the
		// engine serializes; reports[i] is written by job i's goroutine
		// strictly before its own OnResult fires, so a done[i] observed
		// under the sweep lock guarantees reports[i] is visible too.
		done := make([]bool, n)
		flushed := 0
		opts.OnResult = func(i int, seed int64, err error) {
			done[i] = true
			for flushed < n && done[flushed] {
				// A panicked seed has no report; its failure comes back
				// through the sweep error with the seed attached.
				if r := reports[flushed]; r != nil {
					onReport(r)
				}
				flushed++
			}
		}
	}
	_, sum, err := sweep.RunOpts(ctx, n, opts, func(i int, seed int64) (struct{}, error) {
		reports[i] = Run(seed)
		return struct{}{}, nil
	})
	return reports, sum, err
}

// FailedSeeds returns the seeds whose reports violated an invariant,
// sorted ascending — stable however the sweep was scheduled. Nil reports
// (jobs that panicked or never ran) are skipped; those seeds surface
// through the sweep error instead.
func FailedSeeds(reports []*Report) []int64 {
	var seeds []int64
	for _, r := range reports {
		if r != nil && !r.OK() {
			seeds = append(seeds, r.Seed)
		}
	}
	sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
	return seeds
}
