package chaos

import (
	"fmt"
	"io"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Report is the outcome of one executed schedule: the plan, the checked
// invariants, and the headline counters for a human reading a failure.
type Report struct {
	Seed       int64
	Plan       Plan
	Violations []string

	Displayed  uint64
	GapSkipped uint64
	Stalls     uint64
	Reopens    uint64
	Takeovers  uint64
	Finished   bool
	Owners     int // serving servers at the settle probe
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Write renders the report (schedule, counters, verdict).
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "chaos seed %d: %d ops\n", r.Seed, len(r.Plan.Ops))
	for _, op := range r.Plan.Ops {
		fmt.Fprintf(w, "  %s\n", op)
	}
	fmt.Fprintf(w, "  displayed=%d gap_skipped=%d stalls=%d reopens=%d takeovers=%d finished=%v owners=%d\n",
		r.Displayed, r.GapSkipped, r.Stalls, r.Reopens, r.Takeovers, r.Finished, r.Owners)
	if r.OK() {
		fmt.Fprintf(w, "  OK: all invariants held\n")
		return
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION: %s\n", v)
	}
}

// Run generates the seed's schedule and executes it with default bounds.
func Run(seed int64) *Report { return Execute(NewPlan(seed, Config{}), Config{}) }

// Execute runs the plan against a fresh cluster and checks the paper's
// service-level invariants over the result:
//
//   - safety: the overflow policy never discards an I frame;
//   - safety: after the network heals and the cluster settles, at most one
//     server serves the client (exactly one unless the movie finished);
//   - liveness: playback makes progress after the last fault heals — the
//     movie finishes or the displayed count keeps growing through the tail;
//   - sanity: the cumulative stall series is monotone.
func Execute(plan Plan, cfg Config) *Report {
	cfg.fillDefaults()
	pool := cfg.pool()

	var (
		displayedMid uint64
		owners       int
		endState     client.State
	)
	events := make([]sim.Event, 0, len(plan.Ops)+2)
	for _, op := range plan.Ops {
		op := op
		events = append(events, sim.Event{At: op.At, Do: func(rt *sim.Runtime) { apply(op, rt) }})
	}
	// Liveness probe: well after the forced heal (reopen backoff may sleep
	// up to ~10s past it), but long before the movie can possibly finish.
	events = append(events, sim.Event{At: cfg.WindowEnd + 12*time.Second, Do: func(rt *sim.Runtime) {
		if c := rt.Client(); c != nil {
			displayedMid = c.Counters().Displayed
		}
	}})
	// Settle probe: ownership at the very end of the quiet tail.
	events = append(events, sim.Event{At: cfg.Duration - 500*time.Millisecond, Do: func(rt *sim.Runtime) {
		owners = 0
		for _, s := range rt.Servers() {
			for _, id := range s.ActiveSessions() {
				if id == ClientID {
					owners++
				}
			}
		}
		if c := rt.Client(); c != nil {
			endState = c.State()
		}
	}})

	res := sim.Run(sim.Scenario{
		Name:     fmt.Sprintf("chaos-seed-%d", plan.Seed),
		Profile:  netsim.LAN(),
		Seed:     plan.Seed,
		Servers:  pool[:cfg.Servers],
		Peers:    pool,
		ClientID: ClientID,
		Duration: cfg.Duration,
		Events:   events,
	})

	rep := &Report{
		Seed:       plan.Seed,
		Plan:       plan,
		Displayed:  res.Final.Displayed,
		GapSkipped: res.Final.GapSkipped,
		Stalls:     res.Final.Stalls,
		Reopens:    res.ClientStats.Reopens,
		Finished:   endState == client.StateFinished,
		Owners:     owners,
	}
	for _, snap := range res.Obs {
		rep.Takeovers += snap.Counters["server.takeovers"]
	}

	if n := res.Final.OverflowDroppedI; n != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("safety: overflow policy discarded %d I frames", n))
	}
	if owners > 1 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("safety: %d servers serve the client after settling", owners))
	}
	if !rep.Finished && owners != 1 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("convergence: %d serving servers for an unfinished movie after settling", owners))
	}
	if !rep.Finished && res.Final.Displayed <= displayedMid {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("liveness: playback stuck at %d displayed frames since the post-heal probe", displayedMid))
	}
	prev := 0.0
	for _, v := range res.StallsCum.Values {
		if v < prev {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("sanity: cumulative stall series decreased (%v -> %v)", prev, v))
			break
		}
		prev = v
	}
	return rep
}

// apply executes one op on the live cluster. Infeasible ops (a target that
// is already dead, a client not yet watching) degrade to no-ops: schedules
// are generated against a model, and the model is allowed to be wrong about
// details as long as the invariants hold.
func apply(op Op, rt *sim.Runtime) {
	switch op.Kind {
	case KindCrash:
		_ = rt.CrashServer(op.Target)
	case KindCrashServing:
		rt.CrashServing()
	case KindRestart:
		_ = rt.RestartServer(op.Target)
	case KindAdd:
		_ = rt.AddServer(op.Target)
	case KindPartition:
		rt.Partition(op.Groups...)
	case KindHeal:
		rt.HealNetwork()
	case KindLinkFlap:
		if op.OneWay {
			rt.SetLinkOneWay(op.A, op.B, true)
			rt.Clk.AfterFunc(op.Dur, func() { rt.SetLinkOneWay(op.A, op.B, false) })
		} else {
			rt.SetLink(op.A, op.B, true)
			rt.Clk.AfterFunc(op.Dur, func() { rt.SetLink(op.A, op.B, false) })
		}
	case KindLossBurst:
		rt.LossBurst(op.P, op.Dur)
	case KindPause:
		c := rt.Client()
		if c == nil {
			return
		}
		if err := c.Pause(); err != nil {
			return
		}
		rt.Clk.AfterFunc(op.Dur, func() { _ = c.Resume() })
	case KindSeek:
		if c := rt.Client(); c != nil {
			_ = c.Seek(op.Frame)
		}
	}
}
