package chaos_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/chaos"
)

// TestClassInvariantSweep is the traffic-class chaos harness: many seeded
// flash-crowd overload trials (even seeds also crash and restart the
// primary mid-crowd), each checked for the degrade-before-refuse contract
// — reserved viewers ride through with zero stalls and zero refusals
// while best-effort load is degraded, shed and refused but never
// deadlocked. The seeds fan across all cores through the sweep engine,
// the same path `vodbench -classes` takes; a failing seed replays exactly
// with `vodbench -classes -seed N`.
func TestClassInvariantSweep(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	reports, sum, err := chaos.SweepClasses(context.Background(), 1, n, 0, nil, nil)
	if err != nil {
		t.Fatalf("sweep error (panicked seed?): %v", err)
	}
	for _, rep := range reports {
		if !rep.OK() {
			var buf bytes.Buffer
			rep.Write(&buf)
			t.Errorf("class invariant violations:\n%s", buf.String())
		}
	}
	if failed := chaos.FailedClassSeeds(reports); len(failed) > 0 {
		t.Errorf("failed seeds: %v", failed)
	}
	t.Logf("class sweep: %s", sum)
}

// TestClassSweepEquivalence: the class sweep inherits the determinism
// contract — workers=1 and workers=8 must produce byte-identical reports
// for the same seeds.
func TestClassSweepEquivalence(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 4
	}
	ctx := context.Background()
	seq, _, err := chaos.SweepClasses(ctx, 1, n, 1, nil, nil)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	par, _, err := chaos.SweepClasses(ctx, 1, n, 8, nil, nil)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	for i := range seq {
		var a, b bytes.Buffer
		seq[i].Write(&a)
		par[i].Write(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("seed %d diverged between workers=1 and workers=8:\n--- sequential ---\n%s--- parallel ---\n%s",
				seq[i].Seed, a.String(), b.String())
		}
	}
}
