package sim

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/gcs"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
)

// TableScale is the two-tier capacity table (DESIGN §12): clusters far past
// the full-mesh ceiling, reachable only because viewers hold leases instead
// of group memberships and each movie's virtual-synchrony group is sharded
// to its consistent-hash arc (Replicas owners) rather than every server.
// The top row is a sanity size; the bottom row is the headline 50-server /
// 10,000-viewer configuration. Load points are independent clusters, fanned
// across cores; every row is deterministic for a given seed regardless of
// the worker count.
//
// The table is reachable via -table scale but deliberately absent from
// TableIDs: -table all and -list keep their exact pre-§12 output.
//
// The production table runs with striped egress and broadcast fan-out on:
// the aggregate row metrics are identical either way
// (TestTableScaleStripedEquivalent and TestTableScaleBroadcastEquivalent
// pin that), and coalesced pacing plus batched delivery are most of what
// makes the 10k-viewer row cheap enough to regenerate casually.
func TableScale(seed int64) Table {
	return tableScale(seed, []scalePoint{
		{servers: 10, viewers: 1_000},
		{servers: 25, viewers: 4_000},
		{servers: 50, viewers: 10_000},
	}, true, true)
}

type scalePoint struct {
	servers int
	viewers int
}

// tableScale is the parameterized core, shared with the reduced-size tests.
func tableScale(seed int64, points []scalePoint, striped, broadcast bool) Table {
	t := Table{
		ID:    "Tbl 2T",
		Title: "two-tier capacity: sharded movie groups + leased viewers (§12)",
		Header: []string{
			"servers", "viewers", "titles", "healthy", "starved",
			"stalls/healthy viewer", "worst freeze (ticks)", "opens/viewer",
		},
	}
	trials := fanOut(len(points), func(i int) scaleResult {
		return scaleTrial(seed, points[i].servers, points[i].viewers, striped, broadcast, nil)
	})
	for i, p := range points {
		res := trials[i]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.servers),
			strconv.Itoa(p.viewers),
			strconv.Itoa(p.servers),
			strconv.Itoa(res.healthy),
			strconv.Itoa(res.starved),
			fmt.Sprintf("%.1f", res.stallsPerHealthy),
			strconv.FormatUint(res.worstFreeze, 10),
			fmt.Sprintf("%.2f", res.opensPerViewer),
		})
	}
	return t
}

type scaleResult struct {
	capacityResult
	opensPerViewer float64 // 1.00 when every Open lands on the ring owner first
}

// scaleMovieLen keeps a 10,000-stream trial inside the CI budget: each
// viewer watches a short feature rather than the 30s one the single-server
// capacity table uses. Health classification scales with it.
const scaleMovieLen = 10 * time.Second

// scaleMovies caches generated titles across load points and workers. A
// movie's content is a pure function of (id, seed, length), and Movie is
// immutable and safe for concurrent use, so the 50-title headline set — and
// the preframed packet tables lazily built on each movie — is generated once
// per process instead of once per trial. Only a handful of seeds ever run in
// one process, so the cache is unbounded.
var scaleMovies struct {
	sync.Mutex
	m map[string]*mpeg.Movie
}

// scaleMovie returns the cached movie for (title, seed) at scaleMovieLen,
// generating it on first use.
func scaleMovie(title string, seed int64) *mpeg.Movie {
	key := title + "|" + strconv.FormatInt(seed, 10)
	scaleMovies.Lock()
	defer scaleMovies.Unlock()
	if m, ok := scaleMovies.m[key]; ok {
		return m
	}
	m := mpeg.Generate(title, mpeg.StreamConfig{
		Duration: scaleMovieLen,
		Seed:     seed,
	})
	if scaleMovies.m == nil {
		scaleMovies.m = make(map[string]*mpeg.Movie)
	}
	scaleMovies.m[key] = m
	return m
}

// scaleTrial runs nViewers leased viewers against nServers servers sharing
// one consistent-hash ring. One title per server, stocked only on its arc's
// Replicas owners; each server joins movie groups solely for the titles it
// holds, so group size stays at Replicas while the cluster grows. Viewers
// attach by lease (no session groups at all) with the ring ordering their
// anycast, arrivals spread over the first two seconds.
func scaleTrial(seed int64, nServers, nViewers int, striped, broadcast bool, disrupt func(net *netsim.Network, clk *clock.Virtual, servers []string)) scaleResult {
	const replicas = 2
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, seed, netsim.LAN())

	ring := placement.New(placement.DefaultVNodes)
	serverIDs := make([]string, nServers)
	for i := range serverIDs {
		serverIDs[i] = fmt.Sprintf("server-%02d", i)
		ring.Add(serverIDs[i])
		// 1 Gbps per server: ~200 streams/server at the headline row needs
		// ~280 Mbps, so egress is provisioned, not the bottleneck — the
		// table measures the control plane, not the NIC.
		net.SetEgressLimit(transport.Addr(serverIDs[i]), 1000*1000*1000/8)
	}

	// One title per server; each lives only on its arc's owners.
	titles := make([]string, nServers)
	catalogs := make(map[string]*store.Catalog, nServers)
	for _, id := range serverIDs {
		catalogs[id] = store.NewCatalog()
	}
	for i := range titles {
		titles[i] = fmt.Sprintf("title-%02d", i)
		movie := scaleMovie(titles[i], seed+int64(i))
		for _, owner := range ring.LookupN(titles[i], replicas) {
			catalogs[owner].Add(movie)
		}
	}

	servers := make([]*server.Server, 0, nServers)
	defer func() {
		for _, s := range servers {
			s.Stop()
		}
	}()
	for _, id := range serverIDs {
		srv, err := server.New(server.Config{
			ID:        id,
			Clock:     clk,
			Network:   net,
			Catalog:   catalogs[id],
			Peers:     serverIDs,
			Placement: ring,
			Replicas:  replicas,
			// One coalesced timer per server instead of one per group
			// membership — at 50 servers the difference is the simulation
			// budget.
			GCS: gcs.Config{SharedTimers: true},
			// Likewise one coalesced pacing tick per (movie, rate) instead
			// of one timer per viewer session.
			StripedEgress: striped,
			// And one batched delivery event per stripe beat instead of one
			// per viewer.
			BroadcastFanout: broadcast,
		})
		if err != nil {
			panic(err)
		}
		if err := srv.Start(); err != nil {
			panic(err)
		}
		servers = append(servers, srv)
	}
	clk.Advance(2 * time.Second) // server core + movie groups converge

	var vs viewerSet
	vs.reset()
	defer func() {
		for _, c := range vs.clients {
			c.Close()
		}
	}()
	arrivalGap := 2 * time.Second / time.Duration(nViewers)
	for i := 0; i < nViewers; i++ {
		c, err := client.New(client.Config{
			ID:        fmt.Sprintf("viewer-%05d", i),
			Clock:     clk,
			Network:   net,
			Servers:   serverIDs,
			Lease:     true,
			Placement: ring,
		})
		if err != nil {
			panic(err)
		}
		if err := c.Watch(titles[i%len(titles)]); err != nil {
			c.Close()
			panic(err)
		}
		vs.clients = append(vs.clients, c)
		clk.Advance(arrivalGap)
	}
	if disrupt != nil {
		// Test hook: inject faults (partitions, loss bursts) mid-stream —
		// the broadcast-equivalence spot check drives its divergence
		// fallback through here. The callback may advance the clock; the
		// play-out below still runs in full afterwards.
		disrupt(net, clk, serverIDs)
	}
	clk.Advance(scaleMovieLen + 2*time.Second) // play out + drain

	expected := uint64(scaleMovieLen/time.Second) * 30 * 9 / 10
	vs.harvest()
	var opens uint64
	for _, c := range vs.clients {
		opens += c.Stats().OpensSent
	}
	return scaleResult{
		capacityResult: vs.classify(expected),
		opensPerViewer: float64(opens) / float64(nViewers),
	}
}
