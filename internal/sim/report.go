package sim

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/flowctl"
	"repro/internal/metrics"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/tiger"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Write renders the table as aligned text.
func (t Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FigureIDs lists the reproducible figures in paper order.
func FigureIDs() []string { return []string{"4a", "4b", "4c", "4d", "5a", "5b"} }

// Figures runs the two evaluation scenarios and returns every figure's
// series keyed by figure ID, plus each figure's event annotations. The
// LAN and WAN runs are independent, so they execute in parallel (see
// SetParallelism); the series are identical either way.
func Figures(seed int64) (map[string]*metrics.Series, map[string][]Annotation) {
	scenarios := []Scenario{LANScenario(seed), WANScenario(seed)}
	runs := fanOut(len(scenarios), func(i int) *Result { return Run(scenarios[i]) })
	lan, wan := runs[0], runs[1]
	series := map[string]*metrics.Series{
		"4a": lan.SkippedCum,
		"4b": lan.LateCum,
		"4c": lan.SWOccupancy,
		"4d": lan.HWOccupancy,
		"5a": wan.SkippedCum,
		"5b": wan.OverflowCum,
	}
	ann := map[string][]Annotation{}
	for id := range series {
		if id[0] == '4' {
			ann[id] = lan.Annotations
		} else {
			ann[id] = wan.Annotations
		}
	}
	return series, ann
}

// Figure returns one figure's series and its event annotations.
func Figure(id string, seed int64) (*metrics.Series, []Annotation, error) {
	var res *Result
	switch id {
	case "4a", "4b", "4c", "4d":
		res = Run(LANScenario(seed))
	case "5a", "5b":
		res = Run(WANScenario(seed))
	default:
		return nil, nil, fmt.Errorf("sim: unknown figure %q (have %v)", id, FigureIDs())
	}
	switch id {
	case "4a", "5a":
		return res.SkippedCum, res.Annotations, nil
	case "4b":
		return res.LateCum, res.Annotations, nil
	case "4c":
		return res.SWOccupancy, res.Annotations, nil
	case "4d":
		return res.HWOccupancy, res.Annotations, nil
	default: // "5b"
		return res.OverflowCum, res.Annotations, nil
	}
}

// TableIDs lists the reproducible tables.
func TableIDs() []string {
	return []string{
		"flowctl", "emergency", "sync", "takeover", "faults",
		"buffersweep", "emergencysweep", "syncsweep", "discard", "qos",
		"capacity", "obs",
	}
}

// TableByID dispatches to the table generators.
func TableByID(id string, seed int64) (Table, error) {
	switch id {
	case "flowctl":
		return TableFlowControl(), nil
	case "emergency":
		return TableEmergency(seed), nil
	case "sync":
		return TableSyncOverhead(seed), nil
	case "takeover":
		return TableTakeover(5), nil
	case "faults":
		return TableFaultTolerance(seed), nil
	case "buffersweep":
		return TableBufferSweep(seed), nil
	case "emergencysweep":
		return TableEmergencySweep(seed), nil
	case "syncsweep":
		return TableSyncSweep(seed), nil
	case "discard":
		return TableDiscard(seed), nil
	case "qos":
		return TableQoS(seed), nil
	case "capacity":
		return TableCapacity(seed), nil
	case "scale":
		// Not listed in TableIDs: -table all and -list keep their exact
		// pre-§12 byte output; the two-tier table is opt-in by name.
		return TableScale(seed), nil
	case "obs":
		return TableObservability(seed), nil
	default:
		return Table{}, fmt.Errorf("sim: unknown table %q (have %v)", id, TableIDs())
	}
}

// TableFlowControl reprints the paper's Figure 2 policy table and verifies
// each row against a live Policy instance.
func TableFlowControl() Table {
	p := flowctl.DefaultParams()
	type row struct {
		desc string
		occs []int // drive the policy with these occupancies
		want string
	}
	rows := []row{
		{"0 .. critical threshold − 1", occs(5, p.UrgentEvery), "emergency"},
		{"critical threshold .. low water − 1", occs(40, p.UrgentEvery), "increase"},
		{"low..high, occupancy < previous", append(occs(60, p.NormalEvery), occs(58, p.NormalEvery)...), "increase"},
		{"low..high, occupancy > previous", append(occs(58, p.NormalEvery), occs(60, p.NormalEvery)...), "decrease"},
		{"high water .. full", occs(70, p.UrgentEvery), "decrease"},
	}
	t := Table{
		ID:     "Tbl FC",
		Title:  "flow-control policy (paper Figure 2), verified live",
		Header: []string{"buffer occupancy", "check freq", "request", "verified"},
	}
	for _, r := range rows {
		pol := flowctl.NewPolicy(p)
		var last string
		for _, occ := range r.occs {
			// The software buffer holds roughly half the combined
			// occupancy at steady state.
			if k, ok := pol.OnFrame(occ, occ/2); ok {
				last = flowName(k)
			}
		}
		freq := "f_urgent"
		if strings.HasPrefix(r.desc, "low..high") {
			freq = "f_normal"
		}
		verified := "OK"
		if last != r.want {
			verified = fmt.Sprintf("MISMATCH (got %s)", last)
		}
		t.Rows = append(t.Rows, []string{r.desc, freq, r.want, verified})
	}
	return t
}

func occs(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func flowName(k wire.FlowKind) string {
	switch k {
	case wire.FlowIncrease:
		return "increase"
	case wire.FlowDecrease:
		return "decrease"
	case wire.FlowEmergencyMinor, wire.FlowEmergencyMajor:
		return "emergency"
	default:
		return k.String()
	}
}

// TableEmergency reports the decaying emergency sequences (§4.1) and the
// measured peak bandwidth boost during the LAN crash recovery.
func TableEmergency(seed int64) Table {
	res := Run(LANScenario(seed))
	crashAt, _ := EventTimesLAN()

	// Peak 1-second send rate during the emergency burst right after the
	// takeover (the decaying quantity dominates the first ~3s; the later
	// base-rate climb is ordinary Figure 2 flow control, outside the
	// §4.1 bound).
	var peak float64
	for w := crashAt; w < crashAt+3500*time.Millisecond; w += 100 * time.Millisecond {
		rate := res.VideoBytesCum.At(w+time.Second) - res.VideoBytesCum.At(w)
		if rate > peak {
			peak = rate
		}
	}
	mean := res.VideoBytesCum.Last() / res.VideoBytesCum.Times[len(res.VideoBytesCum.Times)-1].Seconds()
	boost := 0.0
	if mean > 0 {
		boost = (peak - mean) / mean * 100
	}

	return Table{
		ID:     "Tbl E",
		Title:  "emergency refill mechanism (§4.1)",
		Header: []string{"quantity", "value", "paper"},
		Rows: [][]string{
			{"base q (occupancy < 15%)", "12 frames/s", "12"},
			{"base q (occupancy < 30%)", "6 frames/s", "6"},
			{"decay factor f", "0.8 per second", "0.8"},
			{"total extra frames (q=12)", strconv.Itoa(flowctl.EmergencyTotal(12, 0.8)), "43"},
			{"total extra frames (q=6)", strconv.Itoa(flowctl.EmergencyTotal(6, 0.8)), "15"},
			{"measured peak boost after crash", fmt.Sprintf("+%.0f%% of mean bandwidth", boost), "≤ +40%"},
		},
	}
}

// TableSyncOverhead reports the state-sync bandwidth share (§1: "less than
// one thousandth of the total communication bandwidth").
func TableSyncOverhead(seed int64) Table {
	res := Run(LANScenario(seed))
	var video, sync, msgs uint64
	for _, st := range res.ServerStats {
		video += st.VideoBytes
		sync += st.SyncBytes
		msgs += st.SyncMessages
	}
	ratio := float64(sync) / float64(video)
	return Table{
		ID:     "Tbl S",
		Title:  "server state-synchronization overhead (90s LAN run)",
		Header: []string{"quantity", "measured", "paper"},
		Rows: [][]string{
			{"sync messages", strconv.FormatUint(msgs, 10), "every 0.5s per server"},
			{"sync bytes", strconv.FormatUint(sync, 10), "a few dozen bytes/client"},
			{"video bytes", strconv.FormatUint(video, 10), "~1.4 Mbps stream"},
			{"overhead ratio", fmt.Sprintf("%.6f", ratio), "< 0.001"},
		},
	}
}

// TableTakeover reports crash-takeover latency over several trials
// (paper: "the take over time was half a second on the average").
func TableTakeover(trials int) Table {
	t := Table{
		ID:     "Tbl T",
		Title:  "crash takeover time on a LAN",
		Header: []string{"trial", "takeover"},
	}
	// Every trial is its own cluster and seed; fan them across cores.
	durs := fanOut(trials, func(i int) time.Duration { return TakeoverTrial(int64(i + 1)) })
	var total time.Duration
	for i, d := range durs {
		total += d
		t.Rows = append(t.Rows, []string{strconv.Itoa(i + 1), d.String()})
	}
	avg := total / time.Duration(trials)
	t.Rows = append(t.Rows, []string{"average", avg.String() + " (paper: ≈0.5s)"})
	return t
}

// TableFaultTolerance contrasts replication-k failover with Tiger-style
// striping (§7): replication tolerates k−1 arbitrary failures; Tiger
// masks one failure but loses blocks when two adjacent cubs die.
func TableFaultTolerance(seed int64) Table {
	t := Table{
		ID:     "Tbl K",
		Title:  "failures tolerated: replication-k vs Tiger striping (§7)",
		Header: []string{"system", "failures", "frames lost", "verdict"},
	}

	// Replication k=3: two sequential failures.
	repl := Run(Scenario{
		Name:    "repl-k3",
		Profile: netsim.LAN(),
		Seed:    seed,
		Servers: []string{"server-1", "server-2", "server-3"},
		Events: []Event{
			{At: 20 * time.Second, Do: func(rt *Runtime) { rt.CrashServing() }},
			{At: 40 * time.Second, Do: func(rt *Runtime) { rt.CrashServing() }},
		},
	})
	t.Rows = append(t.Rows, []string{
		"VoD replication k=3", "2 sequential",
		strconv.FormatUint(repl.Final.Skipped(), 10),
		verdict(repl.Final.Skipped() < 100 && repl.Final.Displayed > 2300),
	})

	// Replication k=2: a single failure is fine; a second ends service.
	repl2 := Run(Scenario{
		Name:    "repl-k2",
		Profile: netsim.LAN(),
		Seed:    seed,
		Servers: []string{"server-1", "server-2"},
		Events: []Event{
			{At: 20 * time.Second, Do: func(rt *Runtime) { rt.CrashServing() }},
		},
	})
	t.Rows = append(t.Rows, []string{
		"VoD replication k=2", "1",
		strconv.FormatUint(repl2.Final.Skipped(), 10),
		verdict(repl2.Final.Skipped() < 100 && repl2.Final.Displayed > 2300),
	})

	// Tiger with 4 cubs, mirroring 2.
	for _, tc := range []struct {
		label   string
		crashes []string
		masked  bool
	}{
		{"1", []string{"cub-1"}, true},
		{"2 adjacent", []string{"cub-0", "cub-1"}, false},
		{"2 non-adjacent", []string{"cub-0", "cub-2"}, true},
	} {
		lost, displayed := tigerTrial(seed, tc.crashes)
		ok := lost < 100 && displayed > 2000
		t.Rows = append(t.Rows, []string{
			"Tiger striping (4 cubs, 2 copies)", tc.label,
			strconv.FormatUint(lost, 10),
			verdict(ok),
		})
	}
	return t
}

func verdict(ok bool) string {
	if ok {
		return "service continuous"
	}
	return "video impaired"
}

// tigerTrial runs a 90s Tiger stream, crashing the given cubs at 20s and
// 40s, and returns (frames lost, frames displayed).
func tigerTrial(seed int64, crashes []string) (lost, displayed uint64) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, seed, netsim.LAN())
	movie := mpeg.Generate("striped", mpeg.StreamConfig{Seed: seed})
	svc, err := tiger.New(tiger.Config{
		Clock:   clk,
		Network: net,
		Cubs:    []string{"cub-0", "cub-1", "cub-2", "cub-3"},
		Mirrors: 2,
		Movie:   movie,
	})
	if err != nil {
		panic(err)
	}
	defer svc.Stop()
	recv, err := tiger.NewReceiver(clk, net, "viewer", movie.FPS())
	if err != nil {
		panic(err)
	}
	defer recv.Close()

	clk.Advance(time.Second)
	svc.StartStream("viewer")
	for i, id := range crashes {
		id := id
		clk.AfterFunc(time.Duration(20+20*i)*time.Second, func() {
			svc.CrashCub(id)
			net.Crash(transport.Addr(id))
		})
	}
	clk.Advance(movie.Duration())
	c := recv.Counters()
	return c.GapSkipped, c.Displayed
}

// TableBufferSweep varies the client buffer size and reports smoothness
// across the LAN crash scenario — the §4.2 sizing tradeoff.
func TableBufferSweep(seed int64) Table {
	t := Table{
		ID:     "Abl B",
		Title:  "buffer-size sweep on the LAN crash scenario (§4.2)",
		Header: []string{"buffer (s of video)", "capacity (frames)", "skipped", "late", "stalls"},
	}
	scales := []float64{0.25, 0.5, 1.0, 1.5, 2.0}
	t.Rows = fanOut(len(scales), func(i int) []string {
		scale := scales[i]
		buf := buffer.Config{
			SoftwareCapacity:      int(37 * scale),
			HardwareCapacityBytes: int(240 * 1024 * scale),
		}
		flow := ParamsForBuffer(buf)
		res := Run(Scenario{
			Name:    fmt.Sprintf("buf-%.1fx", scale),
			Profile: netsim.LAN(),
			Seed:    seed,
			Servers: []string{"server-1", "server-2"},
			Buffer:  buf,
			Flow:    flow,
			Events: []Event{
				{At: 30 * time.Second, Do: func(rt *Runtime) { rt.CrashServing() }},
			},
		})
		return []string{
			fmt.Sprintf("%.1f", 2.4*scale),
			strconv.Itoa(flow.CombinedCapacity),
			strconv.FormatUint(res.Final.Skipped(), 10),
			strconv.FormatUint(res.Final.Late, 10),
			strconv.FormatUint(res.Final.Stalls, 10),
		}
	})
	return t
}

// ParamsForBuffer derives the paper's threshold fractions (73% / 88% /
// 30% / 15%) for a non-default buffer size.
func ParamsForBuffer(buf buffer.Config) flowctl.Params {
	const meanFrame = 5833 // 1.4 Mbps / 8 / 30 fps
	p := flowctl.DefaultParams()
	capacity := buf.SoftwareCapacity + buf.HardwareCapacityBytes/meanFrame
	p.CombinedCapacity = capacity
	p.SoftwareCapacity = buf.SoftwareCapacity
	p.LowWater = maxInt(capacity*73/100, 4)
	p.HighWater = maxInt(capacity*88/100, p.LowWater+1)
	p.CriticalMinor = maxInt(buf.SoftwareCapacity*30/100, 2)
	p.CriticalMajor = maxInt(buf.SoftwareCapacity*15/100, 1)
	if p.CriticalMajor > p.CriticalMinor {
		p.CriticalMajor = p.CriticalMinor
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TableEmergencySweep varies the base emergency quantity and reports the
// §4.1 tradeoff: refill speed vs overflow.
func TableEmergencySweep(seed int64) Table {
	t := Table{
		ID:     "Abl E",
		Title:  "emergency quantity sweep on the LAN crash scenario (§4.1)",
		Header: []string{"base q", "total extra", "refill time after crash", "overflow discards", "stalls"},
	}
	crashAt := 30 * time.Second
	qs := []int{0, 6, 12, 24}
	t.Rows = fanOut(len(qs), func(i int) []string {
		q := qs[i]
		flow := flowctl.DefaultParams()
		flow.EmergencyMajorQ = q
		flow.EmergencyMinorQ = q / 2
		res := Run(Scenario{
			Name:    fmt.Sprintf("emq-%d", q),
			Profile: netsim.LAN(),
			Seed:    seed,
			Servers: []string{"server-1", "server-2"},
			Flow:    flow,
			Events: []Event{
				{At: crashAt, Do: func(rt *Runtime) { rt.CrashServing() }},
			},
		})
		// Refill time: from the first dip below the low water mark after
		// the crash until occupancy recovers above it.
		refill := "never"
		var dipAt time.Duration
		for i, ts := range res.Combined.Times {
			if ts <= crashAt {
				continue
			}
			v := res.Combined.Values[i]
			if dipAt == 0 {
				if v < float64(flow.LowWater) {
					dipAt = ts
				}
				continue
			}
			if v >= float64(flow.LowWater) {
				refill = (ts - dipAt).Truncate(100 * time.Millisecond).String()
				break
			}
		}
		return []string{
			strconv.Itoa(q),
			strconv.Itoa(flowctl.EmergencyTotal(q, flow.EmergencyDecay)),
			refill,
			strconv.FormatUint(res.Final.OverflowDropped, 10),
			strconv.FormatUint(res.Final.Stalls, 10),
		}
	})
	return t
}

// TableSyncSweep varies the state-sync period: a longer period means
// staler takeover offsets, hence more duplicate (late) frames at
// migration, against lower (already negligible) overhead (§5.2).
func TableSyncSweep(seed int64) Table {
	t := Table{
		ID:     "Abl S",
		Title:  "state-sync period sweep on the LAN crash scenario (§5.2)",
		Header: []string{"sync period", "late frames (duplicates)", "skipped", "sync bytes"},
	}
	periods := []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second}
	t.Rows = fanOut(len(periods), func(i int) []string {
		period := periods[i]
		res := Run(Scenario{
			Name:         fmt.Sprintf("sync-%v", period),
			Profile:      netsim.LAN(),
			Seed:         seed,
			Servers:      []string{"server-1", "server-2"},
			SyncInterval: period,
			Events: []Event{
				{At: 30 * time.Second, Do: func(rt *Runtime) { rt.CrashServing() }},
			},
		})
		var sync uint64
		for _, st := range res.ServerStats {
			sync += st.SyncBytes
		}
		return []string{
			period.String(),
			strconv.FormatUint(res.Final.Late, 10),
			strconv.FormatUint(res.Final.Skipped(), 10),
			strconv.FormatUint(sync, 10),
		}
	})
	return t
}

// TableQoS contrasts the WAN scenario with and without QoS reservation
// (§2: the service "is best provided using QoS reservation mechanisms",
// e.g. an ATM CBR channel; without one, "some buffer space and a flow
// control mechanism can account for jitter periods"). A reserved channel
// is modeled as the same path with no loss and bounded jitter. The last
// two rows come from the server-side traffic-class ladder: a LAN flash
// crowd where the server itself shapes egress and degrades best-effort
// sessions so reserved viewers keep their guarantees.
func TableQoS(seed int64) Table {
	t := Table{
		ID:     "Abl Q",
		Title:  "WAN with vs without QoS reservation (§2)",
		Header: []string{"network", "class", "skipped", "late", "stalls", "worst freeze (ticks)", "arrival jitter"},
	}
	reserved := netsim.WAN()
	reserved.Loss = 0
	reserved.Jitter = 2 * time.Millisecond
	cases := []struct {
		name string
		prof netsim.Profile
	}{
		{"best effort (0.5% loss, 8ms jitter)", netsim.WAN()},
		{"reserved channel (no loss, 2ms jitter)", reserved},
	}
	classRow := func(name string, out ClassOutcome) []string {
		return []string{
			"LAN flash crowd (server-shaped)",
			name,
			strconv.FormatUint(out.Skipped, 10),
			strconv.FormatUint(out.Late, 10),
			strconv.FormatUint(out.Stalls, 10),
			strconv.FormatUint(out.WorstStall, 10),
			"-",
		}
	}
	rows := fanOut(len(cases)+1, func(i int) [][]string {
		if i == len(cases) {
			res := OverloadTrial(OverloadConfig{Seed: seed})
			return [][]string{
				classRow("reserved", res.Reserved),
				classRow("best effort", res.BestEffort),
			}
		}
		sc := WANScenario(seed)
		sc.Profile = cases[i].prof
		res := Run(sc)
		return [][]string{{
			cases[i].name,
			"-",
			strconv.FormatUint(res.Final.Skipped(), 10),
			strconv.FormatUint(res.Final.Late, 10),
			strconv.FormatUint(res.Final.Stalls, 10),
			strconv.FormatUint(res.Final.MaxStallRun, 10),
			res.ClientJitter.Truncate(100 * time.Microsecond).String(),
		}}
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r...)
	}
	return t
}

// TableObservability dumps every node's obs counters after the LAN crash
// scenario — the deterministic end-of-run snapshot of the cluster-wide
// observability layer. Counter values are exactly reproducible for a
// given seed, so this table doubles as a regression canary for the
// protocol's message economy.
func TableObservability(seed int64) Table {
	res := Run(LANScenario(seed))
	t := Table{
		ID:     "Tbl O",
		Title:  "per-node observability counters (90s LAN crash scenario)",
		Header: []string{"node", "counter", "value"},
	}
	nodes := make([]string, 0, len(res.Obs))
	for id := range res.Obs {
		nodes = append(nodes, id)
	}
	sort.Strings(nodes)
	for _, id := range nodes {
		snap := res.Obs[id]
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t.Rows = append(t.Rows, []string{
				id, name, strconv.FormatUint(snap.Counters[name], 10),
			})
		}
	}
	return t
}

// TableDiscard quantifies the I-frame-preserving overflow policy (§3) on
// the WAN scenario, where overflow actually occurs.
func TableDiscard(seed int64) Table {
	t := Table{
		ID:     "Abl D",
		Title:  "overflow discard policy: I-frame preserving vs naive (§3)",
		Header: []string{"policy", "overflow discards", "I frames among them"},
	}
	policies := []bool{false, true}
	t.Rows = fanOut(len(policies), func(i int) []string {
		naive := policies[i]
		// A half-size buffer puts real pressure on the overflow path, so
		// the policy difference is visible.
		buf := buffer.Config{
			SoftwareCapacity:      18,
			HardwareCapacityBytes: 108_000,
			NaiveDiscard:          naive,
		}
		sc := LANScenario(seed)
		sc.Buffer = buf
		sc.Flow = ParamsForBuffer(buf)
		res := Run(sc)
		name := "preserve I frames (paper)"
		if naive {
			name = "naive (newest first)"
		}
		return []string{
			name,
			strconv.FormatUint(res.Final.OverflowDropped, 10),
			strconv.FormatUint(res.Final.OverflowDroppedI, 10),
		}
	})
	return t
}
