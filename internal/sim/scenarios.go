package sim

import (
	"time"

	"repro/internal/netsim"
)

// Timing of the paper's two evaluation scenarios (§6.1, §6.2). The client
// opens the movie at t=1s; event offsets below match the paper's narrative
// relative to the start of the movie.
const (
	// Figure 4 (LAN): "Approximately 38 seconds after the movie began, the
	// server transmitting this movie was terminated ... Approximately 24
	// seconds later, a new server was brought up and the client was
	// migrated to it for load balancing purposes."
	fig4CrashAt = 39 * time.Second // 1s open + 38s
	fig4LBAt    = 63 * time.Second // 24s later

	// Figure 5 (WAN): "Approximately 25 seconds after the movie began, a
	// new server was brought up and the client was migrated to it ...
	// Approximately 22 seconds later, the server transmitting this movie
	// was terminated."
	fig5LBAt    = 26 * time.Second
	fig5CrashAt = 48 * time.Second
)

// LANScenario reproduces the Figure 4 experiment: a client on a switched
// Ethernet LAN watching a 90-second, 1.4 Mbps movie; the serving server
// crashes at ~38s; a fresh server is brought up ~24s later and the client
// migrates to it for load balancing.
func LANScenario(seed int64) Scenario {
	return Scenario{
		Name:    "fig4-lan",
		Profile: netsim.LAN(),
		Seed:    seed,
		Servers: []string{"server-1", "server-2"},
		Peers:   []string{"server-1", "server-2", "server-3"},
		Events: []Event{
			{At: fig4CrashAt, Label: "crash", Do: func(rt *Runtime) { rt.CrashServing() }},
			{At: fig4LBAt, Label: "load balance", Do: func(rt *Runtime) { rt.AddServer("server-3") }},
		},
	}
}

// WANScenario reproduces the Figure 5 experiment: the same client behavior
// over a 7-hop Internet path without QoS reservation (delay, jitter-induced
// reordering and sporadic loss); a new server is brought up at ~25s (load
// balancing) and the serving server is terminated ~22s later.
func WANScenario(seed int64) Scenario {
	return Scenario{
		Name:    "fig5-wan",
		Profile: netsim.WAN(),
		Seed:    seed,
		Servers: []string{"server-1", "server-2"},
		Peers:   []string{"server-1", "server-2", "server-3"},
		Events: []Event{
			{At: fig5LBAt, Label: "load balance", Do: func(rt *Runtime) { rt.AddServer("server-3") }},
			{At: fig5CrashAt, Label: "crash", Do: func(rt *Runtime) { rt.CrashServing() }},
		},
	}
}

// EventTimesLAN returns the Figure 4 event instants, for reporting.
func EventTimesLAN() (crash, lb time.Duration) { return fig4CrashAt, fig4LBAt }

// EventTimesWAN returns the Figure 5 event instants, for reporting.
func EventTimesWAN() (lb, crash time.Duration) { return fig5LBAt, fig5CrashAt }

// TakeoverTrial runs one crash-failover and returns how long the client
// was without a serving server (Table T: "the take over time was half a
// second on the average" on a LAN). The crash instant varies with the
// seed so trials sample different phases of the heartbeat and sync cycles.
func TakeoverTrial(seed int64) time.Duration {
	crashAt := 20*time.Second + time.Duration(seed*137%500)*time.Millisecond
	sc := Scenario{
		Name:        "takeover",
		Profile:     netsim.LAN(),
		Seed:        seed,
		Servers:     []string{"server-1", "server-2"},
		Duration:    40 * time.Second,
		SampleEvery: 10 * time.Millisecond, // fine-grained for the gap
		Events: []Event{
			{At: crashAt, Do: func(rt *Runtime) { rt.CrashServing() }},
		},
	}
	res := Run(sc)
	// Find the gap in the serving-server series around the crash.
	var gapStart, gapEnd time.Duration
	inGap := false
	for i, t := range res.ServingServer.Times {
		if t < 19*time.Second {
			continue
		}
		v := res.ServingServer.Values[i]
		if v < 0 && !inGap {
			inGap = true
			gapStart = t
		}
		if v >= 0 && inGap {
			gapEnd = t
			break
		}
	}
	if !inGap || gapEnd == 0 {
		return 0
	}
	return gapEnd - gapStart
}
