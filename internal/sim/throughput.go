package sim

import (
	"runtime"
	"time"
)

// Throughput is one hot-path throughput measurement: the Figure 4 LAN
// scenario run start to finish under a wall-clock timer, with the simulated
// network's delivery counters alongside. BenchmarkSimThroughput and
// `vodbench -stats` both report from here, so the benchmark and the CLI can
// never disagree about what "simulator throughput" means.
type Throughput struct {
	Packets    uint64        // datagrams delivered to a handler
	Bytes      uint64        // payload bytes delivered
	SimTime    time.Duration // simulated time covered by the run
	WallTime   time.Duration // wall-clock time the run took
	Allocs     uint64        // heap allocations performed by the run
	AllocBytes uint64        // heap bytes allocated by the run
	Result     *Result       // the full scenario result
}

// PacketsPerSec is delivered datagrams per wall-clock second.
func (t Throughput) PacketsPerSec() float64 {
	return float64(t.Packets) / t.WallTime.Seconds()
}

// SpeedRatio is simulated seconds advanced per wall-clock second.
func (t Throughput) SpeedRatio() float64 {
	return t.SimTime.Seconds() / t.WallTime.Seconds()
}

// MeasureThroughput runs the LAN scenario with the given seed and measures
// the simulator's delivery throughput.
func MeasureThroughput(seed int64) Throughput {
	sc := LANScenario(seed)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := Run(sc)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if wall <= 0 {
		wall = time.Nanosecond
	}
	net := res.Obs["net"]
	return Throughput{
		Packets:    net.Counters["netsim.delivered"],
		Bytes:      net.Counters["netsim.delivered_bytes"],
		SimTime:    res.Duration,
		WallTime:   wall,
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Result:     res,
	}
}
