package sim

import (
	"context"
	"sync/atomic"

	"repro/internal/sweep"
)

// parallelism is the package's across-run worker bound for table and
// figure generation: 0 (the default) means all cores. It is a pure
// performance knob — results are byte-identical at any setting, because
// every fanned-out job builds its own clock, network and registries from
// its arguments (the sweep determinism contract, pinned by
// TestTableParallelEquivalence).
var parallelism atomic.Int32

// SetParallelism bounds the worker pool used when a table or figure set
// fans its independent trials across cores; n <= 0 restores the default
// (all cores). It only changes wall-clock time, never results.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current worker bound (0 = all cores).
func Parallelism() int { return int(parallelism.Load()) }

// fanOut runs n independent jobs across the package worker bound and
// returns the results in job order. Jobs must be self-contained — they are
// simulation runs, deterministic in their inputs alone. A panicking job
// re-panics here with its seed context attached: the sequential loops this
// replaces panicked on programming errors too, and a half-generated table
// is worthless.
func fanOut[T any](n int, f func(i int) T) []T {
	results, _, err := sweep.RunOpts(context.Background(), n,
		sweep.Options{Workers: Parallelism(), KeepGoing: true},
		func(i int, _ int64) (T, error) { return f(i), nil })
	if err != nil {
		panic(err)
	}
	return results
}
