package sim

import (
	"bytes"
	"testing"
)

// TestFigureTSVDeterminism pins the figures' replay contract at the bytes
// level now that the network simulator indexes endpoints and link state by
// dense ID: the rendered TSV for a LAN figure and a WAN figure must come
// out byte-identical run over run. Counter-level determinism is pinned by
// TestScenarioDeterminism; this test additionally covers the series points
// and their formatting, which is what the checked-in figure data is diffed
// against. Any ordering leak in the dense index — map-ordered sweeps,
// ID-dependent RNG draws — would show up here as a diverging series.
func TestFigureTSVDeterminism(t *testing.T) {
	render := func(id string) []byte {
		s, _, err := Figure(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, id := range []string{"4a", "5a"} {
		a, b := render(id), render(id)
		if len(a) == 0 {
			t.Fatalf("figure %s rendered empty", id)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("figure %s differs across identical runs:\n%s\nvs:\n%s", id, a, b)
		}
	}
}
