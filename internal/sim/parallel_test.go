package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// withParallelism runs f under a temporary worker bound, restoring the
// default afterwards. The knob only changes scheduling, never results —
// that is exactly what these tests pin.
func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	SetParallelism(n)
	defer SetParallelism(0)
	f()
}

// TestTableParallelEquivalence: every fanned-out table generator must
// produce byte-identical output at workers=1 and workers=8. TableCapacity
// is the heavyweight (five independent clusters of up to 85 viewers);
// TableTakeover sweeps five seeded trials. A diff here means a concurrent
// run leaked state into another — the bug class the sweep engine's
// contract forbids.
func TestTableParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the capacity table twice; skipped in -short")
	}
	gens := []struct {
		name string
		gen  func() Table
	}{
		{"capacity", func() Table { return TableCapacity(1) }},
		{"takeover", func() Table { return TableTakeover(5) }},
		{"syncsweep", func() Table { return TableSyncSweep(1) }},
	}
	for _, g := range gens {
		var seq, par Table
		withParallelism(t, 1, func() { seq = g.gen() })
		withParallelism(t, 8, func() { par = g.gen() })
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("table %s diverged between workers=1 and workers=8:\n%v\nvs\n%v",
				g.name, seq, par)
		}
		var a, b bytes.Buffer
		if err := seq.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := par.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("table %s rendered differently:\n%s\nvs\n%s", g.name, a.String(), b.String())
		}
	}
}

// TestFiguresParallelEquivalence: the figure set (LAN + WAN scenarios run
// concurrently) is byte-identical to the sequential run, series by series.
func TestFiguresParallelEquivalence(t *testing.T) {
	type rendered map[string]string
	render := func() rendered {
		figs, _ := Figures(1)
		out := make(rendered, len(figs))
		for id, s := range figs {
			var buf bytes.Buffer
			if err := s.WriteTSV(&buf); err != nil {
				t.Fatal(err)
			}
			out[id] = buf.String()
		}
		return out
	}
	var seq, par rendered
	withParallelism(t, 1, func() { seq = render() })
	withParallelism(t, 8, func() { par = render() })
	for _, id := range FigureIDs() {
		if seq[id] == "" {
			t.Fatalf("figure %s missing from sequential set", id)
		}
		if seq[id] != par[id] {
			t.Errorf("figure %s diverged between workers=1 and workers=8", id)
		}
	}
}

// TestSetParallelismClamps: negative settings restore the all-cores
// default instead of wedging the pool at zero workers.
func TestSetParallelismClamps(t *testing.T) {
	SetParallelism(-3)
	defer SetParallelism(0)
	if got := Parallelism(); got != 0 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 0", got)
	}
	// And a table still generates under the default.
	if tab := TableFlowControl(); len(tab.Rows) == 0 {
		t.Fatal("empty table under default parallelism")
	}
}
