package sim

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sweep"
	"repro/internal/transport"
)

// TestChaosRandomCrashSchedules runs randomized crash/add schedules against
// a 3-replica deployment and checks the system invariants the paper's
// design promises:
//
//   - as long as at least one server holding the movie is alive, playback
//     makes progress (replication k tolerates k−1 failures);
//   - after the network and membership settle, the client is served by
//     exactly one server;
//   - no I frame is ever discarded by the overflow policy;
//   - the client never displays frames out of order (enforced inside the
//     buffer pipeline, revalidated here via monotone display counts).
func TestChaosRandomCrashSchedules(t *testing.T) {
	// The eight seeded scenarios are independent clusters: run them through
	// the sweep engine across all cores (the CI race run covers this path),
	// then assert per seed in order.
	type outcome struct {
		res                  *Result
		crash1, crash2, join time.Duration
	}
	outcomes, err := sweep.Run(context.Background(), 8, 0,
		func(i int, seed int64) (outcome, error) {
			rng := rand.New(rand.NewSource(seed))
			names := []string{"server-1", "server-2", "server-3", "server-4"}
			initial := names[:3]
			spare := names[3]

			var events []Event
			// Two random crashes of whoever is serving, at random times,
			// plus a randomly-timed fresh server join.
			crash1 := time.Duration(10+rng.Intn(20)) * time.Second
			crash2 := crash1 + time.Duration(8+rng.Intn(20))*time.Second
			join := time.Duration(5+rng.Intn(60)) * time.Second
			events = append(events,
				Event{At: crash1, Do: func(rt *Runtime) { rt.CrashServing() }},
				Event{At: crash2, Do: func(rt *Runtime) { rt.CrashServing() }},
				Event{At: join, Do: func(rt *Runtime) { rt.AddServer(spare) }},
			)

			prof := netsim.LAN()
			prof.Loss = float64(rng.Intn(3)) / 100 // 0–2% loss
			res := Run(Scenario{
				Name:    fmt.Sprintf("chaos-%d", seed),
				Profile: prof,
				Seed:    seed,
				Servers: initial,
				Peers:   names,
				Events:  events,
			})
			return outcome{res, crash1, crash2, join}, nil
		})
	if err != nil {
		t.Fatal(err)
	}

	for i, oc := range outcomes {
		seed, res := i+1, oc.res
		if res.Final.OverflowDroppedI != 0 {
			t.Errorf("seed %d: discarded %d I frames", seed, res.Final.OverflowDroppedI)
		}
		// Progress: the vast majority of the movie still displays
		// despite two crashes.
		if res.Final.Displayed < 2200 {
			t.Errorf("seed %d: displayed only %d of 2700 frames (crash1=%v crash2=%v join=%v)",
				seed, res.Final.Displayed, oc.crash1, oc.crash2, oc.join)
		}
		// Exactly one serving server at the end of the run.
		if last := res.ServingServer.Last(); last < 0 {
			t.Errorf("seed %d: no serving server at scenario end", seed)
		}
		// Displayed counts are monotone (sampled cumulatively).
		prev := 0.0
		for _, v := range res.StallsCum.Values {
			if v < prev {
				t.Fatalf("seed %d: cumulative stalls decreased: %v -> %v", seed, prev, v)
			}
			prev = v
		}
	}
}

// TestChaosPartitionHeals partitions the serving server away from the
// client mid-movie; the majority side takes over, and after healing the
// system settles back to exactly one server without duplicated streams.
func TestChaosPartitionHeals(t *testing.T) {
	var serving string
	sc := Scenario{
		Name:    "partition",
		Profile: netsim.LAN(),
		Seed:    5,
		Servers: []string{"server-1", "server-2"},
		Events: []Event{
			{At: 15 * time.Second, Do: func(rt *Runtime) {
				serving = rt.ServingServer()
				other := "server-1"
				if serving == "server-1" {
					other = "server-2"
				}
				// Cut the serving server off from both its peer and the
				// client: a true network partition, not a crash.
				rt.Net.Partition(
					[]transport.Addr{transport.Addr(serving)},
					[]transport.Addr{transport.Addr(other), "client-1"},
				)
			}},
			{At: 35 * time.Second, Do: func(rt *Runtime) { rt.Net.Heal() }},
		},
	}
	res := Run(sc)

	// The client kept watching through the partition.
	if res.Final.Displayed < 2300 {
		t.Fatalf("displayed %d frames across a partition", res.Final.Displayed)
	}
	// After healing, there is exactly one serving server (the anti-entropy
	// and merge protocols must have reconciled the split).
	if last := res.ServingServer.Last(); last < 0 {
		t.Fatal("no serving server after heal")
	}
	// The partitioned server kept "serving" its stale session into the
	// void until the heal+merge; afterwards the client must not see a
	// flood of duplicates. Allow the sync-staleness retransmissions of
	// the takeover plus the partitioned server's catch-up burst.
	if res.Final.Late > 700 {
		t.Fatalf("%d late frames; duplicate streams after heal", res.Final.Late)
	}
}

// TestChaosFlappingServer repeatedly crashes and re-adds servers while the
// client watches; playback must survive every transition.
func TestChaosFlappingServer(t *testing.T) {
	var events []Event
	// server-3 joins at 10s, everything serving crashes at 20s, a fresh
	// server-4 joins at 25s, serving crashes again at 40s.
	events = append(events,
		Event{At: 10 * time.Second, Do: func(rt *Runtime) { rt.AddServer("server-3") }},
		Event{At: 20 * time.Second, Do: func(rt *Runtime) { rt.CrashServing() }},
		Event{At: 25 * time.Second, Do: func(rt *Runtime) { rt.AddServer("server-4") }},
		Event{At: 40 * time.Second, Do: func(rt *Runtime) { rt.CrashServing() }},
	)
	res := Run(Scenario{
		Name:    "flapping",
		Profile: netsim.LAN(),
		Seed:    9,
		Servers: []string{"server-1", "server-2"},
		Peers:   []string{"server-1", "server-2", "server-3", "server-4"},
		Events:  events,
	})
	if res.Final.Displayed < 2300 {
		t.Fatalf("displayed %d frames through the flapping", res.Final.Displayed)
	}
	if res.Final.Stalls > 60 {
		t.Fatalf("%d stalls through the flapping", res.Final.Stalls)
	}
	if last := res.ServingServer.Last(); last < 0 {
		t.Fatal("no serving server at the end")
	}
}
