package sim

import (
	"testing"
	"time"

	"repro/internal/mpeg"
	"repro/internal/netsim"
)

// TestObsCountersLANCrash asserts the observability layer's account of
// the Figure 4a scenario: the crash at 39s causes exactly one takeover
// (the surviving replica adopts the client), and the load-balance server
// added at 63s causes exactly one more (the newcomer-first deal). The
// counters are deterministic for a fixed seed.
func TestObsCountersLANCrash(t *testing.T) {
	res := Run(LANScenario(1))

	var takeovers, viewChanges, opens uint64
	for node, snap := range res.Obs {
		takeovers += snap.Counters["server.takeovers"]
		viewChanges += snap.Counters["gcs.view_changes"]
		if node != "net" {
			opens += snap.Counters["server.sessions_opened"]
		}
	}
	if takeovers != 2 {
		t.Errorf("total server.takeovers = %d, want 2 (crash takeover + load-balance migration)", takeovers)
	}
	if opens != 1 {
		t.Errorf("server.sessions_opened = %d, want 1", opens)
	}
	if viewChanges == 0 {
		t.Error("no gcs.view_changes counted anywhere; the view-install hook is dead")
	}

	// The crashed server must not have taken anything over, and the
	// survivor must have registered the crash as a view change.
	if snap, ok := res.Obs["server-1"]; !ok {
		t.Fatal("no snapshot retained for the crashed server")
	} else if snap.Counters["server.takeovers"] != 0 {
		t.Errorf("crashed server counts %d takeovers", snap.Counters["server.takeovers"])
	}
	if snap := res.Obs["server-2"]; snap.Counters["server.takeovers"] != 1 {
		t.Errorf("surviving server takeovers = %d, want 1", snap.Counters["server.takeovers"])
	}
	if snap := res.Obs["server-3"]; snap.Counters["server.takeovers"] != 1 {
		t.Errorf("load-balance server takeovers = %d, want 1", snap.Counters["server.takeovers"])
	}

	// The network pseudo-node traced the fault injection, stamped in
	// virtual time.
	crashAt, _ := EventTimesLAN()
	var sawCrash bool
	for _, ev := range res.Obs["net"].Events {
		if ev.Kind == "netsim.crash" && ev.Note == "server-1" {
			sawCrash = true
			if got := ev.At.Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); got != crashAt {
				t.Errorf("crash event at %v of scenario time, want %v", got, crashAt)
			}
		}
	}
	if !sawCrash {
		t.Error("netsim.crash event for server-1 missing from the net trace")
	}

	// The client's frame counter must agree with the buffer pipeline's
	// own accounting.
	cSnap := res.Obs["client-1"]
	if got, want := cSnap.Counters["client.frames_received"], res.Final.Received; got != want {
		t.Errorf("client.frames_received = %d, buffer counted %d", got, want)
	}
}

// TestObsSnapshotsDeterministic runs the same scenario twice and expects
// identical counter snapshots — the property that makes the obs layer
// usable in regression assertions.
func TestObsSnapshotsDeterministic(t *testing.T) {
	a := Run(LANScenario(7))
	b := Run(LANScenario(7))
	if len(a.Obs) != len(b.Obs) {
		t.Fatalf("node sets differ: %d vs %d", len(a.Obs), len(b.Obs))
	}
	for node, sa := range a.Obs {
		sb, ok := b.Obs[node]
		if !ok {
			t.Fatalf("run B lost node %q", node)
		}
		for name, va := range sa.Counters {
			if vb := sb.Counters[name]; vb != va {
				t.Errorf("%s %s: %d vs %d across identical runs", node, name, va, vb)
			}
		}
		if len(sa.Events) != len(sb.Events) {
			t.Errorf("%s: %d vs %d trace events across identical runs", node, len(sa.Events), len(sb.Events))
		}
	}
}

// TestObsScopedPerNode ensures two servers in one process do not share
// counters — the per-node scoping requirement.
func TestObsScopedPerNode(t *testing.T) {
	res := Run(Scenario{
		Name:    "scoping",
		Profile: netsim.LAN(),
		Seed:    1,
		Servers: []string{"server-1", "server-2"},
		Movie:   mpeg.StreamConfig{Duration: 20 * time.Second},
	})
	s1 := res.Obs["server-1"].Counters["server.frames_sent"]
	s2 := res.Obs["server-2"].Counters["server.frames_sent"]
	if s1+s2 == 0 {
		t.Fatal("no frames counted on either server")
	}
	// Exactly one server holds the single client's session; the other's
	// frame counter must stay at zero.
	if s1 != 0 && s2 != 0 {
		t.Errorf("both servers counted frames (%d, %d); counters are not node-scoped", s1, s2)
	}
}
