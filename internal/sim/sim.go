// Package sim is the experiment harness: it assembles whole VoD clusters
// (servers, clients, simulated network, virtual clock), runs the scripted
// scenarios of the paper's evaluation, and samples every quantity the
// figures plot. A 90-second scenario executes in milliseconds and is
// exactly reproducible from its seed.
package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/buffer"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/flowctl"
	"repro/internal/metrics"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
)

// Event is one scripted action at a point in scenario time.
type Event struct {
	At time.Duration
	// Label annotates the event in figure output ("crash", "load
	// balance"); unlabeled events are not annotated.
	Label string
	Do    func(rt *Runtime)
}

// Annotation marks a scripted event on a figure's time axis.
type Annotation struct {
	At    time.Duration
	Label string
}

// Scenario scripts one experiment run.
type Scenario struct {
	// Name labels the run in output.
	Name string
	// Profile is the network profile (netsim.LAN() or netsim.WAN()).
	Profile netsim.Profile
	// Seed drives all randomness.
	Seed int64
	// Movie parameters; zero values take the paper's stream (90s,
	// 1.4 Mbps, 30 fps).
	Movie mpeg.StreamConfig
	// Servers are started at time zero. Peers lists every server that may
	// ever exist (defaults to Servers plus any AddServer targets used in
	// Events — pass explicitly when using custom events).
	Servers []string
	Peers   []string
	// ClientID is the observed client (default "client-1"). It opens the
	// movie at ClientStart (default 1s, after the server group settles).
	ClientID    string
	ClientStart time.Duration
	// Buffer and Flow configure the client (paper defaults if zero).
	Buffer buffer.Config
	Flow   flowctl.Params
	// SyncInterval overrides the servers' state-sync period (default
	// 500ms — the paper's value).
	SyncInterval time.Duration
	// Events are the scripted actions (crashes, server additions, VCR).
	Events []Event
	// Duration is the total simulated time (default: movie duration).
	Duration time.Duration
	// SampleEvery is the metric sampling period (default 100ms).
	SampleEvery time.Duration
}

// Runtime is the live cluster handed to scripted events.
type Runtime struct {
	Clk   *clock.Virtual
	Net   *netsim.Network
	Movie *mpeg.Movie

	scenario *Scenario
	servers  map[string]*server.Server
	// serverOrder lists every ID ever started, sorted — the deterministic
	// iteration order for the servers map (see ServingServer).
	serverOrder []string
	client      *client.Client
	started     time.Time

	// retired accumulates the final stats of crashed servers so totals
	// (video bytes, sync bytes) survive the crash.
	retired      map[string]server.Stats
	retiredVideo uint64

	// regs holds one obs registry per node (servers, the client, and the
	// pseudo-node "net" for the simulator itself). Registries outlive
	// crashes so a crashed server's counters still appear in the report.
	regs map[string]*obs.Registry
}

// registry returns (creating on first use) the obs registry for a node.
// Timestamps come from the virtual clock, so traces are deterministic.
func (rt *Runtime) registry(node string) *obs.Registry {
	reg := rt.regs[node]
	if reg == nil {
		reg = obs.NewRegistry(node, rt.Clk.Now)
		rt.regs[node] = reg
	}
	return reg
}

// Result carries every series and counter the figures and tables need.
type Result struct {
	Name string

	// Cumulative client-side series (Figures 4a, 4b, 5a, 5b).
	SkippedCum  *metrics.Series // frames not displayed (gap + overflow)
	LateCum     *metrics.Series // late/duplicate frames
	OverflowCum *metrics.Series // overflow-discarded frames
	StallsCum   *metrics.Series // display stalls

	// Occupancy series (Figures 4c, 4d).
	SWOccupancy *metrics.Series // software buffer, frames
	HWOccupancy *metrics.Series // hardware buffer, bytes
	Combined    *metrics.Series // combined occupancy, frames

	// ServingServer samples which server holds the session (by index in
	// sorted server names; -1 when none) — used to measure takeover.
	ServingServer *metrics.Series

	// VideoBytesCum samples total video bytes sent by all servers, for
	// bandwidth/overhead accounting.
	VideoBytesCum *metrics.Series

	// Duration is the resolved simulated time the run covered.
	Duration time.Duration

	Final        buffer.Counters
	ClientJitter time.Duration // smoothed inter-arrival jitter at scenario end
	ClientStats  client.Stats
	ServerStats  map[string]server.Stats
	Flow         flowctl.Params
	// Annotations are the scenario's labeled events, for figure output.
	Annotations []Annotation

	// Obs holds the per-node observability snapshots taken at scenario
	// end, keyed by node ID (server IDs, the client ID, and "net" for the
	// simulator). Deterministic for a given scenario and seed.
	Obs map[string]obs.Snapshot
}

// AddServer starts a new server mid-scenario (the paper's load-balancing
// trigger: "a new server was brought up and the client was migrated to it").
// Adding an ID that is already running (or whose address is otherwise taken)
// is an error, not a panic, so fault schedules can be generated blindly.
func (rt *Runtime) AddServer(id string) error {
	if _, live := rt.servers[id]; live {
		return fmt.Errorf("sim: server %q already running", id)
	}
	cat := store.NewCatalog()
	cat.Add(rt.Movie)
	return rt.startServer(id, cat, nil)
}

// RestartServer cold-starts a previously crashed server under its original
// identity: it comes back with an EMPTY catalog, re-fetches the scenario's
// movie from whichever peer holds it (package fetch), and only then joins
// the movie group and absorbs load — §7's "a new server can be brought up
// without any special preparations", applied to crash recovery. The node's
// obs registry is reused, so counters accumulate across incarnations.
func (rt *Runtime) RestartServer(id string) error {
	if _, live := rt.servers[id]; live {
		return fmt.Errorf("sim: server %q is already running", id)
	}
	if _, crashed := rt.retired[id]; !crashed {
		return fmt.Errorf("sim: server %q never ran, nothing to restart", id)
	}
	return rt.startServer(id, store.NewCatalog(), []string{rt.Movie.ID()})
}

// startServer builds and starts one server instance on the runtime.
func (rt *Runtime) startServer(id string, cat *store.Catalog, fetchMovies []string) error {
	s, err := server.New(server.Config{
		ID:           id,
		Clock:        rt.Clk,
		Network:      rt.Net,
		Catalog:      cat,
		FetchMovies:  fetchMovies,
		Peers:        rt.scenario.Peers,
		Flow:         rt.scenario.Flow,
		SyncInterval: rt.scenario.SyncInterval,
		Obs:          rt.registry(id),
	})
	if err != nil {
		return fmt.Errorf("sim: adding server %s: %w", id, err)
	}
	if err := s.Start(); err != nil {
		return fmt.Errorf("sim: starting server %s: %w", id, err)
	}
	rt.servers[id] = s
	// serverOrder is the sorted iteration order for the live-server map;
	// entries persist across crash/restart (lookups skip dead IDs) so the
	// 10 Hz sampler never rebuilds or re-sorts it.
	i := sort.SearchStrings(rt.serverOrder, id)
	if i == len(rt.serverOrder) || rt.serverOrder[i] != id {
		rt.serverOrder = append(rt.serverOrder, "")
		copy(rt.serverOrder[i+1:], rt.serverOrder[i:])
		rt.serverOrder[i] = id
	}
	return nil
}

// CrashServer fail-stops a server. Stats accumulate in retired across
// repeated crash/restart cycles of the same ID.
func (rt *Runtime) CrashServer(id string) error {
	s := rt.servers[id]
	if s == nil {
		return fmt.Errorf("sim: no server %q to crash", id)
	}
	st := s.Stats()
	rt.retired[id] = addStats(rt.retired[id], st)
	rt.retiredVideo += st.VideoBytes
	s.Stop()
	rt.Net.Crash(transport.Addr(id))
	delete(rt.servers, id)
	return nil
}

// CrashServing fail-stops whichever server currently serves the client and
// reports whether one was crashed. Mid-takeover no server may hold the
// session; the no-op leaves a trace event so a schedule replay shows it.
func (rt *Runtime) CrashServing() bool {
	id := rt.ServingServer()
	if id == "" {
		rt.registry("net").Event("sim.crash_serving_noop", "no server holds the session")
		return false
	}
	_ = rt.CrashServer(id)
	return true
}

// Partition splits the network into isolated groups; nodes not listed keep
// their connectivity within the residual group (see netsim.Partition).
func (rt *Runtime) Partition(groups ...[]string) {
	conv := make([][]transport.Addr, len(groups))
	for i, g := range groups {
		for _, a := range g {
			conv[i] = append(conv[i], transport.Addr(a))
		}
	}
	rt.Net.Partition(conv...)
}

// HealNetwork clears every partition and link-down fault.
func (rt *Runtime) HealNetwork() { rt.Net.Heal() }

// SetLink takes the bidirectional link between a and b down (or back up).
func (rt *Runtime) SetLink(a, b string, down bool) {
	rt.Net.SetLinkDown(transport.Addr(a), transport.Addr(b), down)
}

// SetLinkOneWay takes only the from→to direction down (or back up) — the
// asymmetric fault that breaks naive failure detectors.
func (rt *Runtime) SetLinkOneWay(from, to string, down bool) {
	rt.Net.SetLinkOneWayDown(transport.Addr(from), transport.Addr(to), down)
}

// LossBurst superimposes extra random loss p on every link for dur, then
// clears it — a correlated loss episode (§2's best-effort network at its
// worst) rather than a topological fault.
func (rt *Runtime) LossBurst(p float64, dur time.Duration) {
	rt.Net.SetExtraLoss(p)
	rt.Clk.AfterFunc(dur, func() { rt.Net.SetExtraLoss(0) })
}

// addStats sums two server stat snapshots field by field.
func addStats(a, b server.Stats) server.Stats {
	a.FramesSent += b.FramesSent
	a.VideoBytes += b.VideoBytes
	a.SyncMessages += b.SyncMessages
	a.SyncBytes += b.SyncBytes
	a.SessionsOpened += b.SessionsOpened
	a.Takeovers += b.Takeovers
	a.Releases += b.Releases
	a.Emergencies += b.Emergencies
	a.FramesThinned += b.FramesThinned
	a.AdmitsReserved += b.AdmitsReserved
	a.AdmitsBestEffort += b.AdmitsBestEffort
	a.RefusalsReserved += b.RefusalsReserved
	a.RefusalsBestEffort += b.RefusalsBestEffort
	a.ShedTokens += b.ShedTokens
	a.DegradedFrames += b.DegradedFrames
	return a
}

// ServingServer returns the server currently holding the client's session
// ("" if none).
func (rt *Runtime) ServingServer() string {
	// Scan in sorted ID order: during a handoff two servers can briefly
	// both claim the session, and the sampled figure series must not
	// depend on map iteration order.
	for _, id := range rt.serverOrder {
		s := rt.servers[id]
		if s == nil {
			continue
		}
		for _, c := range s.ActiveSessions() {
			if c == rt.scenario.ClientID {
				return id
			}
		}
	}
	return ""
}

// Client returns the observed client.
func (rt *Runtime) Client() *client.Client { return rt.client }

// Servers returns the live servers keyed by ID.
func (rt *Runtime) Servers() map[string]*server.Server { return rt.servers }

// Elapsed returns the scenario time.
func (rt *Runtime) Elapsed() time.Duration { return rt.Clk.Now().Sub(rt.started) }

func (sc *Scenario) fillDefaults() {
	if sc.ClientID == "" {
		sc.ClientID = "client-1"
	}
	if sc.ClientStart <= 0 {
		sc.ClientStart = time.Second
	}
	if sc.SampleEvery <= 0 {
		sc.SampleEvery = 100 * time.Millisecond
	}
	if sc.Buffer.SoftwareCapacity == 0 {
		sc.Buffer = buffer.DefaultConfig()
	}
	if sc.Flow.CombinedCapacity == 0 {
		sc.Flow = flowctl.DefaultParams()
	}
	if len(sc.Peers) == 0 {
		sc.Peers = append([]string(nil), sc.Servers...)
	}
}

// Run executes the scenario and returns its result.
func Run(sc Scenario) *Result {
	sc.fillDefaults()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, sc.Seed, sc.Profile)
	movieCfg := sc.Movie
	movieCfg.Seed = sc.Seed
	movie := mpeg.Generate("feature", movieCfg)
	if sc.Duration <= 0 {
		sc.Duration = movie.Duration()
	}

	rt := &Runtime{
		Clk:      clk,
		Net:      net,
		Movie:    movie,
		scenario: &sc,
		servers:  make(map[string]*server.Server),
		started:  clk.Now(),
		retired:  make(map[string]server.Stats),
		regs:     make(map[string]*obs.Registry),
	}
	net.SetObs(rt.registry("net"))
	for _, id := range sc.Servers {
		if err := rt.AddServer(id); err != nil {
			panic(err)
		}
	}

	res := &Result{
		Name:          sc.Name,
		Duration:      sc.Duration,
		SkippedCum:    metrics.NewSeries("skipped frames (cumulative)"),
		LateCum:       metrics.NewSeries("late frames (cumulative)"),
		OverflowCum:   metrics.NewSeries("frames discarded due to overflow (cumulative)"),
		StallsCum:     metrics.NewSeries("display stalls (cumulative)"),
		SWOccupancy:   metrics.NewSeries("software buffer occupancy (frames)"),
		HWOccupancy:   metrics.NewSeries("hardware buffer occupancy (bytes)"),
		Combined:      metrics.NewSeries("combined buffer occupancy (frames)"),
		ServingServer: metrics.NewSeries("serving server (index; -1 none)"),
		VideoBytesCum: metrics.NewSeries("video bytes sent (cumulative)"),
		ServerStats:   make(map[string]server.Stats),
		Flow:          sc.Flow,
	}

	// Client creation and open.
	clk.AfterFunc(sc.ClientStart, func() {
		c, err := client.New(client.Config{
			ID:      sc.ClientID,
			Clock:   clk,
			Network: net,
			Servers: sc.Peers,
			Buffer:  sc.Buffer,
			Flow:    sc.Flow,
			Obs:     rt.registry(sc.ClientID),
		})
		if err != nil {
			panic(fmt.Sprintf("sim: creating client: %v", err))
		}
		rt.client = c
		if err := c.Watch(movie.ID()); err != nil {
			panic(fmt.Sprintf("sim: watch: %v", err))
		}
	})

	// Scripted events.
	for _, ev := range sc.Events {
		ev := ev
		clk.AfterFunc(ev.At, func() { ev.Do(rt) })
		if ev.Label != "" {
			res.Annotations = append(res.Annotations, Annotation{At: ev.At, Label: ev.Label})
		}
	}

	// Metric sampling. The sorted peer list is fixed for the whole run, so
	// build it once rather than per sample.
	sortedPeers := append([]string(nil), sc.Peers...)
	sort.Strings(sortedPeers)
	serverIndex := func(id string) float64 {
		if id == "" {
			return -1
		}
		for i, n := range sortedPeers {
			if n == id {
				return float64(i)
			}
		}
		return -1
	}
	sampler := clock.Every(clk, sc.SampleEvery, func() {
		t := rt.Elapsed()
		if rt.client != nil {
			cnt := rt.client.Counters()
			occ := rt.client.Occupancy()
			res.SkippedCum.Add(t, float64(cnt.Skipped()))
			res.LateCum.Add(t, float64(cnt.Late))
			res.OverflowCum.Add(t, float64(cnt.OverflowDropped))
			res.StallsCum.Add(t, float64(cnt.Stalls))
			res.SWOccupancy.Add(t, float64(occ.SoftwareFrames))
			res.HWOccupancy.Add(t, float64(occ.HardwareBytes))
			res.Combined.Add(t, float64(occ.CombinedFrames))
		}
		res.ServingServer.Add(t, serverIndex(rt.ServingServer()))
		vb := rt.retiredVideo
		for _, s := range rt.servers {
			vb += s.Stats().VideoBytes
		}
		res.VideoBytesCum.Add(t, float64(vb))
	})

	clk.Advance(sc.Duration)
	sampler.Stop()

	if rt.client != nil {
		res.Final = rt.client.Counters()
		res.ClientStats = rt.client.Stats()
		res.ClientJitter = rt.client.Jitter()
		rt.client.Close()
	}
	stopIDs := make([]string, 0, len(rt.servers))
	for id := range rt.servers {
		stopIDs = append(stopIDs, id)
	}
	sort.Strings(stopIDs)
	for _, id := range stopIDs {
		res.ServerStats[id] = rt.servers[id].Stats()
		rt.servers[id].Stop()
	}
	// A restarted server has both a live snapshot and retired history from
	// earlier incarnations; report the lifetime totals.
	for id, st := range rt.retired {
		res.ServerStats[id] = addStats(st, res.ServerStats[id])
	}
	res.Obs = make(map[string]obs.Snapshot, len(rt.regs))
	for id, reg := range rt.regs {
		res.Obs[id] = reg.Snapshot()
	}
	return res
}
