package sim

import (
	"bytes"
	"strconv"
	"testing"
)

// TestTableScaleReduced runs the two-tier table's core at the CI size (10
// servers / 1,000 leased viewers): every viewer must stream healthily, and
// the ring-ordered anycast must land each Open on its owner first try.
func TestTableScaleReduced(t *testing.T) {
	res := scaleTrial(1, 10, 1000, true)
	if res.healthy < 990 {
		t.Fatalf("healthy = %d of 1000, want ≥ 990 (starved %d, worst freeze %d)",
			res.healthy, res.starved, res.worstFreeze)
	}
	if res.starved != 0 {
		t.Fatalf("starved = %d, want 0", res.starved)
	}
	if res.opensPerViewer != 1.0 {
		t.Fatalf("opens/viewer = %.2f, want 1.00 (ring-ordered anycast missed owners)",
			res.opensPerViewer)
	}
}

// TestTableScaleWorkersEquivalent pins the sweep determinism contract for
// the new table in its production configuration (striped egress on, dense
// netsim indexing always on): the rendered bytes are identical whether its
// load points run on one worker or eight.
func TestTableScaleWorkersEquivalent(t *testing.T) {
	points := []scalePoint{{servers: 4, viewers: 120}, {servers: 6, viewers: 180}}
	render := func(workers int) []byte {
		SetParallelism(workers)
		defer SetParallelism(0)
		var buf bytes.Buffer
		if err := tableScale(7, points, true).Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, eight := render(1), render(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("table differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", one, eight)
	}
	if len(bytes.Split(one, []byte("\n"))) < 4 {
		t.Fatalf("table suspiciously short: %q", one)
	}
	if !bytes.Contains(one, []byte(strconv.Itoa(points[0].viewers))) {
		t.Fatalf("table missing viewer column: %s", one)
	}
}

// TestTableScaleStripedEquivalent pins what licenses turning striped egress
// on for the production table: per-frame timing quantizes differently, but
// the aggregate health metrics the table reports — healthy, starved, stalls,
// worst freeze, opens — render byte-identically with the feature on and off
// at the CI load point.
func TestTableScaleStripedEquivalent(t *testing.T) {
	points := []scalePoint{{servers: 10, viewers: 1_000}}
	render := func(striped bool) []byte {
		var buf bytes.Buffer
		if err := tableScale(1, points, striped).Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	off, on := render(false), render(true)
	if !bytes.Equal(off, on) {
		t.Fatalf("scale table differs with striped egress:\noff:\n%s\non:\n%s", off, on)
	}
}
