package sim

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// TestTableScaleReduced runs the two-tier table's core at the CI size (10
// servers / 1,000 leased viewers): every viewer must stream healthily, and
// the ring-ordered anycast must land each Open on its owner first try.
func TestTableScaleReduced(t *testing.T) {
	res := scaleTrial(1, 10, 1000, true, true, nil)
	if res.healthy < 990 {
		t.Fatalf("healthy = %d of 1000, want ≥ 990 (starved %d, worst freeze %d)",
			res.healthy, res.starved, res.worstFreeze)
	}
	if res.starved != 0 {
		t.Fatalf("starved = %d, want 0", res.starved)
	}
	if res.opensPerViewer != 1.0 {
		t.Fatalf("opens/viewer = %.2f, want 1.00 (ring-ordered anycast missed owners)",
			res.opensPerViewer)
	}
}

// TestTableScaleWorkersEquivalent pins the sweep determinism contract for
// the new table in its production configuration (striped egress on, dense
// netsim indexing always on): the rendered bytes are identical whether its
// load points run on one worker or eight.
func TestTableScaleWorkersEquivalent(t *testing.T) {
	points := []scalePoint{{servers: 4, viewers: 120}, {servers: 6, viewers: 180}}
	render := func(workers int) []byte {
		SetParallelism(workers)
		defer SetParallelism(0)
		var buf bytes.Buffer
		if err := tableScale(7, points, true, true).Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, eight := render(1), render(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("table differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", one, eight)
	}
	if len(bytes.Split(one, []byte("\n"))) < 4 {
		t.Fatalf("table suspiciously short: %q", one)
	}
	if !bytes.Contains(one, []byte(strconv.Itoa(points[0].viewers))) {
		t.Fatalf("table missing viewer column: %s", one)
	}
}

// TestTableScaleStripedEquivalent pins what licenses turning striped egress
// on for the production table: per-frame timing quantizes differently, but
// the aggregate health metrics the table reports — healthy, starved, stalls,
// worst freeze, opens — render byte-identically with the feature on and off
// at the CI load point.
func TestTableScaleStripedEquivalent(t *testing.T) {
	points := []scalePoint{{servers: 10, viewers: 1_000}}
	render := func(striped bool) []byte {
		var buf bytes.Buffer
		if err := tableScale(1, points, striped, false).Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	off, on := render(false), render(true)
	if !bytes.Equal(off, on) {
		t.Fatalf("scale table differs with striped egress:\noff:\n%s\non:\n%s", off, on)
	}
}

// TestTableScaleBroadcastEquivalent pins what licenses turning broadcast
// fan-out on for the production table: a stripe beat's survivors arrive
// together at the last slot of the beat's serialization train instead of
// one slot apart, but the aggregate health metrics the table reports render
// byte-identically with batching on and off at the CI load point.
func TestTableScaleBroadcastEquivalent(t *testing.T) {
	points := []scalePoint{{servers: 10, viewers: 1_000}}
	render := func(broadcast bool) []byte {
		var buf bytes.Buffer
		if err := tableScale(1, points, true, broadcast).Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	off, on := render(false), render(true)
	if !bytes.Equal(off, on) {
		t.Fatalf("scale table differs with broadcast fan-out:\noff:\n%s\non:\n%s", off, on)
	}
}

// TestTableScaleBroadcastChaosEquivalent is the chaos-seed spot check for
// the batch path's per-destination divergence fallback: with a mid-stream
// partition (blocked pairs), a network-wide loss burst (per-destination
// loss draws from the shared seeded RNG) and a lossy per-pair override all
// active while stripes are beating, a broadcast run must classify every
// viewer exactly as the per-send run does — the fallback draws and
// schedules per destination in batch order, which is the per-send order.
func TestTableScaleBroadcastChaosEquivalent(t *testing.T) {
	disrupt := func(net *netsim.Network, clk *clock.Virtual, servers []string) {
		clk.Advance(2 * time.Second) // streams established
		// Per-pair override: server-0's link to server-1 turns lossy and
		// slow, forcing every batched packet on that pair through the
		// divergence fallback (the pair also carries sync traffic).
		net.SetProfile(transport.Addr(servers[0]), transport.Addr(servers[1]),
			netsim.Profile{Delay: 5 * time.Millisecond, Jitter: time.Millisecond, Loss: 0.2, Bandwidth: 10 * 1000 * 1000 / 8})
		// Partition one server from another: blocked-pair drops inside and
		// outside batches.
		net.SetLinkDown(transport.Addr(servers[1]), transport.Addr(servers[2]), true)
		// Network-wide loss burst: every batched destination consumes an
		// extra-loss draw, in attach order.
		net.SetExtraLoss(0.05)
		clk.Advance(2 * time.Second)
		net.SetExtraLoss(0)
		net.SetLinkDown(transport.Addr(servers[1]), transport.Addr(servers[2]), false)
	}
	run := func(broadcast bool) scaleResult {
		return scaleTrial(11, 4, 160, true, broadcast, disrupt)
	}
	off, on := run(false), run(true)
	if off != on {
		t.Fatalf("chaos trial differs with broadcast fan-out:\noff: %+v\non:  %+v", off, on)
	}
	if off.healthy == 0 {
		t.Fatalf("chaos trial produced no healthy viewers: %+v", off)
	}
}
