package sim

import (
	"testing"
	"time"
)

// TestFig4LANShape checks the paper's Figure 4 qualitative claims on the
// LAN scenario. Quantities are asserted as shapes (who drops where, rough
// magnitudes), not exact values — see EXPERIMENTS.md.
func TestFig4LANShape(t *testing.T) {
	res := Run(LANScenario(1))
	crashAt, lbAt := EventTimesLAN()

	t.Logf("final counters: %+v", res.Final)
	t.Logf("client stats:   %+v", res.ClientStats)
	for id, st := range res.ServerStats {
		t.Logf("server %s: %+v", id, st)
	}
	t.Logf("skipped: start=%v crash=%v lb=%v end=%v",
		res.SkippedCum.At(15*time.Second), res.SkippedCum.At(crashAt),
		res.SkippedCum.At(lbAt), res.SkippedCum.Last())
	t.Logf("late:    crash-=%v crash+=%v lb-=%v end=%v",
		res.LateCum.At(crashAt), res.LateCum.At(crashAt+8*time.Second),
		res.LateCum.At(lbAt), res.LateCum.Last())
	t.Logf("sw occ:  mean(20..35s)=%.1f min(crash..+5s)=%.0f min(lb..+5s)=%.0f max=%.0f",
		res.SWOccupancy.MeanBetween(20*time.Second, 35*time.Second),
		res.SWOccupancy.MinBetween(crashAt, crashAt+5*time.Second),
		res.SWOccupancy.MinBetween(lbAt, lbAt+5*time.Second),
		res.SWOccupancy.Max())
	t.Logf("hw occ:  max=%.0f min(crash..+5s)=%.0f t(fill)≈%v",
		res.HWOccupancy.Max(),
		res.HWOccupancy.MinBetween(crashAt, crashAt+5*time.Second),
		firstTimeAbove(res, 0.95))
	t.Logf("stalls:  %v", res.StallsCum.Last())

	// Fig 4a: on a loss-free LAN frames are skipped only via overflow
	// during emergency recovery, a handful per event, never an I frame.
	if res.Final.GapSkipped > res.Final.OverflowDropped {
		t.Errorf("GapSkipped (%d) exceeds overflow discards (%d) on a loss-free LAN",
			res.Final.GapSkipped, res.Final.OverflowDropped)
	}
	if res.Final.OverflowDroppedI != 0 {
		t.Errorf("%d I frames discarded; policy must avoid I frames", res.Final.OverflowDroppedI)
	}
	if res.Final.Skipped() > 30 {
		t.Errorf("total skipped = %d, want small (paper: ≤6 per emergency)", res.Final.Skipped())
	}

	// Fig 4b: late (duplicate) frames jump at the crash.
	lateAtCrash := res.LateCum.At(crashAt+8*time.Second) - res.LateCum.At(crashAt)
	if lateAtCrash == 0 {
		t.Errorf("no duplicate frames after crash; takeover should retransmit the sync gap")
	}

	// Fig 4c: software occupancy oscillates at a healthy mean in steady
	// state, drops to ~0 at the crash, and recovers.
	mean := res.SWOccupancy.MeanBetween(20*time.Second, 35*time.Second)
	if mean < 10 || mean > 37 {
		t.Errorf("steady-state software occupancy mean = %.1f, want ≈ 23", mean)
	}
	minAtCrash := res.SWOccupancy.MinBetween(crashAt, crashAt+4*time.Second)
	if minAtCrash > 3 {
		t.Errorf("software occupancy only fell to %.0f at crash, want ≈ 0", minAtCrash)
	}
	recovered := res.SWOccupancy.MeanBetween(crashAt+15*time.Second, crashAt+20*time.Second)
	if recovered < 10 {
		t.Errorf("software occupancy did not recover after crash: %.1f", recovered)
	}

	// Fig 4d: hardware buffer fills early and dips (but not to zero) at
	// the crash.
	hwMax := res.HWOccupancy.Max()
	if hwMax < 200*1024 {
		t.Errorf("hardware buffer peak = %.0f bytes, want near 240KB", hwMax)
	}
	hwAtCrash := res.HWOccupancy.MinBetween(crashAt, crashAt+4*time.Second)
	if hwAtCrash <= 0 {
		t.Errorf("hardware buffer drained to zero at crash; want ≈ 3/4 capacity")
	}
	if hwAtCrash > 0.95*hwMax {
		t.Errorf("hardware buffer barely dipped at crash (%.0f of %.0f)", hwAtCrash, hwMax)
	}

	// Smoothness: bounded display stalls across the whole run ("not
	// noticeable to a human observer"): no sustained freeze longer than
	// half a second of display time.
	if res.StallsCum.Last() > 40 {
		t.Errorf("%v display stalls, playback not smooth", res.StallsCum.Last())
	}
	if res.Final.MaxStallRun > 15 {
		t.Errorf("longest freeze = %d ticks (>0.5s), noticeable to a human observer", res.Final.MaxStallRun)
	}
}

// firstTimeAbove returns when HWOccupancy first exceeds frac of its max.
func firstTimeAbove(res *Result, frac float64) time.Duration {
	max := res.HWOccupancy.Max()
	for i, v := range res.HWOccupancy.Values {
		if v >= frac*max {
			return res.HWOccupancy.Times[i]
		}
	}
	return -1
}

// TestFig5WANShape checks Figure 5: on a lossy WAN skipped frames grow
// steadily (message loss) and overflow discards appear after emergencies.
func TestFig5WANShape(t *testing.T) {
	res := Run(WANScenario(1))
	lbAt, crashAt := EventTimesWAN()

	t.Logf("final counters: %+v", res.Final)
	t.Logf("skipped end=%v overflow end=%v late end=%v stalls=%v",
		res.SkippedCum.Last(), res.OverflowCum.Last(), res.LateCum.Last(), res.StallsCum.Last())
	t.Logf("skipped at lb=%v at crash=%v", res.SkippedCum.At(lbAt), res.SkippedCum.At(crashAt))

	// Loss must cause ongoing skips (unlike the LAN).
	if res.Final.GapSkipped == 0 {
		t.Errorf("no loss-driven skips on a 0.5%% lossy WAN")
	}
	// Steady growth: skips in the quiet middle window too, not only at
	// events.
	quiet := res.SkippedCum.At(20*time.Second) - res.SkippedCum.At(10*time.Second)
	if quiet == 0 {
		t.Errorf("no skipped frames during quiet period; loss should show steadily")
	}
	// The client still plays the movie: the vast majority of frames
	// display.
	if res.Final.Displayed < 2300 {
		t.Errorf("displayed only %d of ~2700 frames on WAN", res.Final.Displayed)
	}
	if res.Final.Skipped() > 400 {
		t.Errorf("skipped %d frames; WAN quality collapsed", res.Final.Skipped())
	}
}

// TestTakeoverTime reproduces Table T: crash takeover on a LAN completes
// in about half a second (failure-detection dominated).
func TestTakeoverTime(t *testing.T) {
	var total time.Duration
	const trials = 5
	for seed := int64(1); seed <= trials; seed++ {
		d := TakeoverTrial(seed)
		t.Logf("trial %d: takeover = %v", seed, d)
		if d <= 0 {
			t.Fatalf("trial %d: no takeover detected", seed)
		}
		if d > 2*time.Second {
			t.Errorf("trial %d: takeover took %v, want ≲ 1s", seed, d)
		}
		total += d
	}
	avg := total / trials
	t.Logf("average takeover: %v", avg)
	if avg > 1200*time.Millisecond {
		t.Errorf("average takeover %v, paper reports ≈ 0.5s", avg)
	}
}

// TestScenarioDeterminism: the same seed must produce identical results.
func TestScenarioDeterminism(t *testing.T) {
	a := Run(LANScenario(7))
	b := Run(LANScenario(7))
	if a.Final != b.Final {
		t.Fatalf("same seed, different counters:\n%+v\n%+v", a.Final, b.Final)
	}
	if a.SkippedCum.Last() != b.SkippedCum.Last() || a.LateCum.Last() != b.LateCum.Last() {
		t.Fatal("same seed, different series")
	}
}

// TestSeedSensitivity: different seeds should still satisfy the LAN shape
// (stability of the reproduction, not a fluke of one seed).
func TestSeedSensitivity(t *testing.T) {
	for seed := int64(2); seed <= 4; seed++ {
		res := Run(LANScenario(seed))
		if res.Final.Displayed < 2300 {
			t.Errorf("seed %d: displayed %d frames", seed, res.Final.Displayed)
		}
		if res.Final.Skipped() > 40 {
			t.Errorf("seed %d: skipped %d frames", seed, res.Final.Skipped())
		}
		if res.Final.OverflowDroppedI != 0 {
			t.Errorf("seed %d: dropped %d I frames", seed, res.Final.OverflowDroppedI)
		}
	}
}
