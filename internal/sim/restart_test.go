package sim

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestRestartServerRefetches exercises the cold-restart path: the serving
// server crashes at 20s, its peer takes the session over, and at 30s the
// crashed server restarts with an empty catalog. It must re-fetch the movie
// from its peer over the fetch protocol, rejoin the movie group, and — being
// the newcomer in the redistribution deal — win the session back. Counters
// are exact for a fixed seed, as in obs_test.go.
func TestRestartServerRefetches(t *testing.T) {
	res := Run(Scenario{
		Name:    "restart",
		Profile: netsim.LAN(),
		Seed:    1,
		Servers: []string{"server-1", "server-2"},
		Events: []Event{
			{At: 20 * time.Second, Label: "crash", Do: func(rt *Runtime) { rt.CrashServing() }},
			{At: 30 * time.Second, Label: "restart", Do: func(rt *Runtime) {
				if err := rt.RestartServer("server-1"); err != nil {
					t.Errorf("RestartServer: %v", err)
				}
			}},
		},
	})

	// The restarted server held no movies: it must have pulled exactly one
	// over the wire, in more than zero chunk requests, served by its peer.
	s1 := res.Obs["server-1"]
	if got := s1.Counters["fetch.movies_fetched"]; got != 1 {
		t.Errorf("restarted server fetch.movies_fetched = %d, want 1", got)
	}
	if got := s1.Counters["fetch.requests_sent"]; got == 0 {
		t.Error("restarted server sent no fetch requests")
	}
	if got := res.Obs["server-2"].Counters["fetch.chunks_served"]; got == 0 {
		t.Error("surviving peer served no fetch chunks")
	}

	// Exactly two takeovers: the crash failover onto server-2, then the
	// newcomer-first migration back onto the restarted server-1.
	if got := res.Obs["server-2"].Counters["server.takeovers"]; got != 1 {
		t.Errorf("surviving server takeovers = %d, want 1 (crash failover)", got)
	}
	if got := s1.Counters["server.takeovers"]; got != 1 {
		t.Errorf("restarted server takeovers = %d, want 1 (newcomer migration)", got)
	}

	// At scenario end the restarted server is the one serving the client.
	last := res.ServingServer.Values[len(res.ServingServer.Values)-1]
	if last != 0 { // index 0 = "server-1" in sorted peer order
		t.Errorf("final serving server index = %v, want 0 (server-1)", last)
	}

	// The failover and the migration were both invisible enough that the
	// client never starved into a reopen, and no I frame was dropped.
	if res.ClientStats.Reopens != 0 {
		t.Errorf("client reopened %d times; takeover should not starve it", res.ClientStats.Reopens)
	}
	if res.Final.OverflowDroppedI != 0 {
		t.Errorf("%d I frames dropped on overflow", res.Final.OverflowDroppedI)
	}

	// Lifetime stats merge across incarnations: both incarnations of
	// server-1 sent frames, and the merged total reflects the first one's
	// pre-crash streaming plus the second one's post-migration streaming.
	if st := res.ServerStats["server-1"]; st.FramesSent == 0 || st.SessionsOpened != 1 {
		t.Errorf("merged server-1 stats = %+v; want FramesSent > 0 and SessionsOpened == 1", st)
	}
}

// TestClientSurvivesFullPartition cuts the client off from the entire
// cluster — the fault no server-side failover can mask. The client must
// starve, re-anycast the Open with backoff until the partition heals, and
// resume playback from where it stopped (the reopen's Seek rewinds the
// server; frames the old stream fired into the void must not fast-forward
// playback past the gap).
func TestClientSurvivesFullPartition(t *testing.T) {
	var reopens uint64
	res := Run(Scenario{
		Name:     "client-partition",
		Profile:  netsim.LAN(),
		Seed:     1,
		Servers:  []string{"server-1", "server-2"},
		Duration: 120 * time.Second,
		Events: []Event{
			{At: 20 * time.Second, Label: "partition", Do: func(rt *Runtime) {
				rt.Partition([]string{"client-1"}, []string{"server-1", "server-2"})
			}},
			{At: 30 * time.Second, Label: "heal", Do: func(rt *Runtime) {
				rt.HealNetwork()
			}},
		},
	})
	reopens = res.ClientStats.Reopens

	if reopens == 0 {
		t.Fatal("client never reopened across a 10s total partition")
	}
	snap := res.Obs["client-1"]
	if got := snap.Counters["client.reopens"]; got != reopens {
		t.Errorf("client.reopens counter = %d, stats say %d", got, reopens)
	}
	var sawReopen, sawReopenOK bool
	for _, ev := range snap.Events {
		switch ev.Kind {
		case "client.reopen":
			sawReopen = true
		case "client.reopen_ok":
			sawReopenOK = true
		}
	}
	if !sawReopen || !sawReopenOK {
		t.Errorf("reopen trace incomplete: reopen=%v reopen_ok=%v", sawReopen, sawReopenOK)
	}

	// Playback resumed after the heal and ran the movie essentially to the
	// end; the ten partitioned seconds delayed, not destroyed, the stream.
	if res.Final.Displayed < 2600 {
		t.Errorf("displayed %d frames of 2700 (gap-skipped %d); playback did not resume",
			res.Final.Displayed, res.Final.GapSkipped)
	}
	if res.Final.OverflowDroppedI != 0 {
		t.Errorf("%d I frames dropped on overflow", res.Final.OverflowDroppedI)
	}
	if res.Final.Stalls == 0 {
		t.Error("a 10s partition produced zero stalls; the fault never bit")
	}
}
