package sim

import (
	"reflect"
	"testing"
)

// TestReservedRidesThroughRestart: the flash-crowd overload trial with the
// primary crashed and cold-restarted mid-crowd. The reserved fleet must
// ride the whole thing — flash crowd, loss burst, takeover, restart,
// redistribution — with zero stalls and zero refusals, every viewer
// finishing the movie, while the ladder visibly worked the best-effort
// class over (degraded frames, shed tokens, refusals all nonzero).
func TestReservedRidesThroughRestart(t *testing.T) {
	res := OverloadTrial(OverloadConfig{Seed: 1, Restart: true})

	r := res.Reserved
	if r.Stalls != 0 || r.WorstStall != 0 {
		t.Errorf("reserved stalls = %d (worst %d), want 0 through crash+restart", r.Stalls, r.WorstStall)
	}
	if r.Refusals != 0 || res.Stats.RefusalsReserved != 0 {
		t.Errorf("reserved refusals = %d client / %d server, want 0", r.Refusals, res.Stats.RefusalsReserved)
	}
	if r.Finished != r.Viewers || r.Watching != r.Viewers {
		t.Errorf("reserved finished=%d watching=%d of %d viewers, want all", r.Finished, r.Watching, r.Viewers)
	}
	if res.Stats.AdmitsReserved != uint64(r.Viewers) {
		t.Errorf("reserved admits = %d, want exactly %d", res.Stats.AdmitsReserved, r.Viewers)
	}
	if res.Stats.Takeovers == 0 {
		t.Error("no takeovers — the crash never exercised failover")
	}
	if res.Stats.DegradedFrames == 0 || res.Stats.ShedTokens == 0 || res.Stats.RefusalsBestEffort == 0 {
		t.Errorf("ladder idle: degraded=%d shed=%d refusedBE=%d, want all nonzero",
			res.Stats.DegradedFrames, res.Stats.ShedTokens, res.Stats.RefusalsBestEffort)
	}
	be := res.BestEffort
	if be.Finished < be.Viewers && be.Displayed <= res.BestEffortProbe {
		t.Errorf("best effort deadlocked: displayed %d vs probe %d", be.Displayed, res.BestEffortProbe)
	}
}

// TestOverloadTrialDeterministic: the trial is part of the reproducibility
// contract — the same seed must produce the identical harvest, counters
// and all, run to run.
func TestOverloadTrialDeterministic(t *testing.T) {
	cfg := OverloadConfig{Seed: 7, Restart: true}
	a := OverloadTrial(cfg)
	b := OverloadTrial(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
