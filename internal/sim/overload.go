package sim

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// OverloadConfig scripts the overload scenario: a small fleet of
// reserved-class viewers is streaming comfortably when a flash crowd of
// best-effort viewers piles onto the same title, a loss burst hits the
// network mid-crowd, and (optionally) the primary server crashes and
// cold-restarts while all of it is going on. The server runs the
// degrade-before-refuse ladder: best-effort quality is shed first, then
// best-effort frames are throttled by the egress token bucket, then
// best-effort Opens are refused with a retry hint — reserved viewers are
// never touched and must ride through with zero stalls.
type OverloadConfig struct {
	Seed int64
	// Reserved and BestEffort size the two viewer fleets (defaults 8, 24).
	Reserved   int
	BestEffort int
	// MaxSessions, BestEffortSessions and DegradeSessions are the ladder
	// rungs, thresholds on the server's total session count (defaults 30,
	// 24, 16 — with 8 reserved viewers the crowd fills the remaining 16
	// best-effort slots and the rest are refused); ShapeRate is the egress
	// token-bucket rate in bytes/s (default 2.5 MB/s, below the degraded
	// fleet's demand so the bucket actually sheds frames).
	MaxSessions        int
	BestEffortSessions int
	DegradeSessions    int
	ShapeRate          int64
	// LossRate and LossDur shape the mid-crowd loss burst (defaults 0.25
	// for 2s).
	LossRate float64
	LossDur  time.Duration
	// Restart crashes the primary at 14s and cold-restarts it at 17s: the
	// peer adopts every session (takeover bypasses admission), then
	// redistribution deals them back after the restarted server refetches
	// the movie.
	Restart bool
}

func (cfg *OverloadConfig) fillDefaults() {
	if cfg.Reserved == 0 {
		cfg.Reserved = 8
	}
	if cfg.BestEffort == 0 {
		cfg.BestEffort = 24
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 30
	}
	if cfg.BestEffortSessions == 0 {
		cfg.BestEffortSessions = 24
	}
	if cfg.DegradeSessions == 0 {
		cfg.DegradeSessions = 16
	}
	if cfg.ShapeRate == 0 {
		cfg.ShapeRate = 2_500_000
	}
	if cfg.LossRate == 0 {
		cfg.LossRate = 0.25
	}
	if cfg.LossDur == 0 {
		cfg.LossDur = 2 * time.Second
	}
}

// ClassOutcome aggregates one traffic class's playback over an overload
// trial.
type ClassOutcome struct {
	Viewers    int    // fleet size
	Watching   int    // in StateWatching or StateFinished at the end
	Finished   int    // completed the movie
	Displayed  uint64 // frames displayed, summed over the fleet
	Stalls     uint64 // display ticks with an empty buffer, summed
	WorstStall uint64 // longest consecutive stall run of any viewer (ticks)
	Skipped    uint64 // frames never displayed (lost/overflowed), summed
	Late       uint64 // frames that arrived behind the display point, summed
	Refusals   uint64 // OK=false OpenReplies received by the fleet
}

// OverloadResult is the harvest of one overload trial.
type OverloadResult struct {
	Reserved   ClassOutcome
	BestEffort ClassOutcome
	// BestEffortProbe is the best-effort fleet's summed Displayed at the
	// 24s probe — after the loss burst healed and any restart settled.
	// Comparing it with the final count is the no-deadlock check: a
	// degraded class must still be moving.
	BestEffortProbe uint64
	// Stats sums every server incarnation's counters (including crashed
	// ones), so admits/refusals/shed/degraded cover the whole cluster.
	Stats server.Stats
}

// OverloadTrial runs the flash-crowd + loss-burst (+ optional restart)
// scenario on the virtual clock and returns per-class outcomes. Everything
// is seeded; the same seed gives a byte-identical run.
func OverloadTrial(cfg OverloadConfig) OverloadResult {
	cfg.fillDefaults()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, cfg.Seed, netsim.LAN())
	net.SetEgressLimit("server-1", 100*1000*1000/8)
	net.SetEgressLimit("server-2", 100*1000*1000/8)

	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 30 * time.Second, Seed: cfg.Seed})
	peers := []string{"server-1", "server-2"}
	overload := server.OverloadConfig{
		ShapeRate:          cfg.ShapeRate,
		BestEffortSessions: cfg.BestEffortSessions,
		DegradeSessions:    cfg.DegradeSessions,
	}
	var retired server.Stats
	startServer := func(id string, withMovie bool) *server.Server {
		cat := store.NewCatalog()
		sc := server.Config{
			ID:          id,
			Clock:       clk,
			Network:     net,
			Catalog:     cat,
			Peers:       peers,
			MaxSessions: cfg.MaxSessions,
			Overload:    overload,
		}
		if withMovie {
			cat.Add(movie)
		} else {
			sc.FetchMovies = []string{movie.ID()}
		}
		srv, err := server.New(sc)
		if err != nil {
			panic(err)
		}
		if err := srv.Start(); err != nil {
			panic(err)
		}
		return srv
	}
	servers := map[string]*server.Server{
		"server-1": startServer("server-1", true),
		"server-2": startServer("server-2", true),
	}
	defer func() {
		for _, s := range servers {
			s.Stop()
		}
	}()
	clk.Advance(500 * time.Millisecond)

	// Both fleets contact only server-1 — server-2 is the takeover peer.
	newViewer := func(id string, class wire.Class) *client.Client {
		c, err := client.New(client.Config{
			ID:      id,
			Clock:   clk,
			Network: net,
			Servers: []string{"server-1"},
			Class:   class,
		})
		if err != nil {
			panic(err)
		}
		if err := c.Watch(movie.ID()); err != nil {
			c.Close()
			panic(err)
		}
		return c
	}
	var reserved, bestEffort []*client.Client
	defer func() {
		for _, c := range reserved {
			c.Close()
		}
		for _, c := range bestEffort {
			c.Close()
		}
	}()

	// t≈1s: reserved viewers settle in, comfortably under every rung.
	clk.Advance(500 * time.Millisecond)
	for i := 0; i < cfg.Reserved; i++ {
		reserved = append(reserved, newViewer(fmt.Sprintf("res-%02d", i), wire.ClassReserved))
		clk.Advance(100 * time.Millisecond)
	}

	// t≈6s: the flash crowd bursts onto the same title.
	advanceTo(clk, 6*time.Second)
	for i := 0; i < cfg.BestEffort; i++ {
		bestEffort = append(bestEffort, newViewer(fmt.Sprintf("be-%02d", i), wire.ClassBestEffort))
		clk.Advance(5 * time.Millisecond)
	}

	// t=10s: loss burst on every link.
	advanceTo(clk, 10*time.Second)
	net.SetExtraLoss(cfg.LossRate)
	clk.Advance(cfg.LossDur)
	net.SetExtraLoss(0)

	if cfg.Restart {
		// t=14s: the primary dies with the full crowd on it; the peer
		// adopts every session (takeover bypasses admission). t=17s: cold
		// restart with an empty catalog — refetch, rejoin, redistribution
		// deals the clients back.
		advanceTo(clk, 14*time.Second)
		s1 := servers["server-1"]
		retired = addStats(retired, s1.Stats())
		s1.Stop()
		net.Crash("server-1")
		delete(servers, "server-1")
		advanceTo(clk, 17*time.Second)
		servers["server-1"] = startServer("server-1", false)
	}

	// t=24s: post-disruption probe for the no-deadlock check.
	advanceTo(clk, 24*time.Second)
	var probe uint64
	for _, c := range bestEffort {
		probe += c.Counters().Displayed
	}

	// Run long enough for the flash crowd to reach the end of the title.
	advanceTo(clk, 40*time.Second)

	res := OverloadResult{BestEffortProbe: probe}
	res.Reserved = harvestClass(reserved)
	res.BestEffort = harvestClass(bestEffort)
	res.Stats = retired
	for _, id := range []string{"server-1", "server-2"} {
		if s := servers[id]; s != nil {
			res.Stats = addStats(res.Stats, s.Stats())
		}
	}
	return res
}

// advanceTo advances the virtual clock to the given offset from the trial
// epoch (no-op when already past it).
func advanceTo(clk *clock.Virtual, offset time.Duration) {
	target := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(offset)
	if d := target.Sub(clk.Now()); d > 0 {
		clk.Advance(d)
	}
}

func harvestClass(fleet []*client.Client) ClassOutcome {
	out := ClassOutcome{Viewers: len(fleet)}
	for _, c := range fleet {
		cnt := c.Counters()
		out.Displayed += cnt.Displayed
		out.Stalls += cnt.Stalls
		out.Skipped += cnt.Skipped()
		out.Late += cnt.Late
		if cnt.MaxStallRun > out.WorstStall {
			out.WorstStall = cnt.MaxStallRun
		}
		switch c.State() {
		case client.StateFinished:
			out.Watching++
			out.Finished++
		case client.StateWatching:
			out.Watching++
		}
		out.Refusals += c.Stats().OpenRefusals
	}
	return out
}
