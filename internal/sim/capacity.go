package sim

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
)

// TableCapacity measures how many concurrent viewers one server's uplink
// sustains — the scalability pressure that motivates the paper's
// multi-server design (§1). The server's NIC is capped at 100 Mbps
// (switched Ethernet); each 1.4 Mbps stream takes ~1/70 of it. Beyond the
// knee the shared egress queue backs up: established streams coast on
// their buffers while newcomers cannot even complete session setup —
// which is exactly when "new servers may be brought up on the fly to
// alleviate the load", or when admission control caps the damage (last
// row: the same overload with the server admitting only 65).
func TableCapacity(seed int64) Table {
	t := Table{
		ID:    "Abl C",
		Title: "viewers per server on a 100 Mbps uplink (motivates §1)",
		Header: []string{
			"viewers", "admitted", "uplink demand", "healthy", "starved",
			"stalls/healthy viewer", "worst freeze (ticks)",
		},
	}
	type cfg struct {
		n   int
		max int // admission limit; 0 = none
	}
	cases := []cfg{{10, 0}, {40, 0}, {65, 0}, {85, 0}, {85, 65}}
	// Each load point is an independent cluster; fan them across cores.
	trials := fanOut(len(cases), func(i int) capacityResult {
		return capacityTrial(seed, cases[i].n, cases[i].max)
	})
	for i, tc := range cases {
		res := trials[i]
		admitted := "all"
		if tc.max > 0 {
			admitted = strconv.Itoa(tc.max)
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(tc.n),
			admitted,
			fmt.Sprintf("%d%%", tc.n*1400/1000),
			strconv.Itoa(res.healthy),
			strconv.Itoa(res.starved),
			fmt.Sprintf("%.1f", res.stallsPerHealthy),
			strconv.FormatUint(res.worstFreeze, 10),
		})
	}
	return t
}

type capacityResult struct {
	healthy          int // viewers that displayed ≥80% of their expected frames
	starved          int // viewers below 50% (typically: never finished setup)
	stallsPerHealthy float64
	worstFreeze      uint64
}

// viewerSet is the trial's per-viewer bookkeeping in struct-of-arrays
// layout: the live clients in one dense slice, and the per-viewer counters
// gathered into parallel columns at harvest time. Classification then scans
// three flat uint64 columns instead of chasing a thousand client pointers
// (each behind a mutex) per predicate, and the columns are reused across a
// sweep's load points via reset.
type viewerSet struct {
	clients   []*client.Client
	displayed []uint64
	stalls    []uint64
	maxStall  []uint64
}

func (vs *viewerSet) reset() {
	vs.clients = vs.clients[:0]
	vs.displayed = vs.displayed[:0]
	vs.stalls = vs.stalls[:0]
	vs.maxStall = vs.maxStall[:0]
}

// harvest snapshots every viewer's counters into the columns — one locked
// read per client, after which the classification passes touch only the
// arrays.
func (vs *viewerSet) harvest() {
	for _, c := range vs.clients {
		cnt := c.Counters()
		vs.displayed = append(vs.displayed, cnt.Displayed)
		vs.stalls = append(vs.stalls, cnt.Stalls)
		vs.maxStall = append(vs.maxStall, cnt.MaxStallRun)
	}
}

// classify buckets the harvested viewers against the expected frame count.
func (vs *viewerSet) classify(expected uint64) capacityResult {
	var res capacityResult
	var healthyStalls uint64
	for i, shown := range vs.displayed {
		switch {
		case shown >= expected*8/10:
			res.healthy++
			healthyStalls += vs.stalls[i]
		case shown < expected/2:
			res.starved++
		}
		if vs.maxStall[i] > res.worstFreeze {
			res.worstFreeze = vs.maxStall[i]
		}
	}
	if res.healthy > 0 {
		res.stallsPerHealthy = float64(healthyStalls) / float64(res.healthy)
	}
	return res
}

// capacityTrial runs n viewers against one egress-limited server for a
// 30-second movie and classifies each viewer's playback quality against
// what a healthy session would have displayed.
func capacityTrial(seed int64, n, maxSessions int) capacityResult {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, seed, netsim.LAN())
	net.SetEgressLimit("server-1", 100*1000*1000/8)

	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 30 * time.Second, Seed: seed})
	cat := store.NewCatalog()
	cat.Add(movie)
	srv, err := server.New(server.Config{
		ID:          "server-1",
		Clock:       clk,
		Network:     net,
		Catalog:     cat,
		Peers:       []string{"server-1"},
		MaxSessions: maxSessions,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		panic(err)
	}
	clk.Advance(500 * time.Millisecond)

	var vs viewerSet
	vs.reset()
	defer func() {
		for _, c := range vs.clients {
			c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		c, err := client.New(client.Config{
			ID:      fmt.Sprintf("viewer-%03d", i),
			Clock:   clk,
			Network: net,
			Servers: []string{"server-1"},
		})
		if err != nil {
			panic(err)
		}
		if err := c.Watch("feature"); err != nil {
			c.Close()
			panic(err)
		}
		vs.clients = append(vs.clients, c)
		clk.Advance(50 * time.Millisecond) // staggered arrivals
	}
	watch := 28 * time.Second
	clk.Advance(watch)

	expected := uint64(watch/time.Second) * 30 * 9 / 10 // minus startup slack
	vs.harvest()
	return vs.classify(expected)
}
