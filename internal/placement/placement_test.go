package placement

import (
	"fmt"
	"testing"
)

func movieName(i int) string { return fmt.Sprintf("movie-%04d", i) }

func TestLookupDeterministic(t *testing.T) {
	build := func() *Ring {
		r := New(0)
		// Insertion order must not matter.
		for _, id := range []string{"s3", "s1", "s2"} {
			r.Add(id)
		}
		return r
	}
	a, b := build(), New(0)
	for _, id := range []string{"s1", "s2", "s3"} {
		b.Add(id)
	}
	for i := 0; i < 200; i++ {
		key := movieName(i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("insertion order changed owner of %s: %s vs %s", key, a.Lookup(key), b.Lookup(key))
		}
	}
}

func TestAddIdempotentRemoveUnknown(t *testing.T) {
	r := New(8)
	r.Add("s1")
	r.Add("s1")
	if r.Len() != 1 || len(r.points) != 8 {
		t.Fatalf("double Add: Len=%d points=%d", r.Len(), len(r.points))
	}
	r.Remove("nope")
	if r.Len() != 1 {
		t.Fatalf("Remove unknown: Len=%d", r.Len())
	}
	r.Remove("s1")
	if r.Len() != 0 || len(r.points) != 0 || r.Lookup("m") != "" {
		t.Fatalf("empty ring: Len=%d points=%d", r.Len(), len(r.points))
	}
}

func TestLookupNDistinctOwners(t *testing.T) {
	r := New(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < 50; i++ {
		owners := r.LookupN(movieName(i), 3)
		if len(owners) != 3 {
			t.Fatalf("LookupN(3) = %v", owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Lookup(movieName(i)) {
			t.Fatalf("LookupN[0] != Lookup for %s", movieName(i))
		}
		full := r.LookupN(movieName(i), 0)
		if len(full) != 5 {
			t.Fatalf("full walk = %v", full)
		}
	}
}

func TestAppendOrderNoAlloc(t *testing.T) {
	r := New(0)
	for i := 0; i < 10; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	dst := make([]string, 0, 10)
	allocs := testing.AllocsPerRun(100, func() {
		dst = r.AppendOrder(dst[:0], "movie-0001", 3)
	})
	if allocs != 0 {
		t.Fatalf("AppendOrder allocs = %v, want 0", allocs)
	}
}

// TestRemapBound pins the consistent-hashing contract: changing one of
// N servers moves a bounded fraction of movies, and only the movies
// that touch the changed server move at all.
func TestRemapBound(t *testing.T) {
	const movies = 2000
	for _, n := range []int{5, 10, 25, 50} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			base := New(0)
			for i := 0; i < n; i++ {
				base.Add(fmt.Sprintf("srv-%02d", i))
			}
			before := make([]string, movies)
			for i := range before {
				before[i] = base.Lookup(movieName(i))
			}

			// Join: moved movies must all land on the newcomer, and the
			// moved fraction stays within 2/(n+1) — double the expected
			// 1/(n+1) share, slack for vnode variance.
			base.Add("srv-new")
			movedIn := 0
			for i := range before {
				after := base.Lookup(movieName(i))
				if after != before[i] {
					movedIn++
					if after != "srv-new" {
						t.Fatalf("join moved %s to %s, not the new server", movieName(i), after)
					}
				}
			}
			if bound := movies * 2 / (n + 1); movedIn > bound {
				t.Fatalf("join moved %d/%d movies, bound %d", movedIn, movies, bound)
			}
			if movedIn == 0 {
				t.Fatalf("join moved nothing — ring not rebalancing")
			}

			// Leave: only the removed server's movies move.
			base.Remove("srv-new")
			for i := range before {
				if got := base.Lookup(movieName(i)); got != before[i] {
					t.Fatalf("remove did not restore owner of %s: %s vs %s", movieName(i), got, before[i])
				}
			}
			victim := before[0]
			base.Remove(victim)
			movedOut := 0
			for i := range before {
				after := base.Lookup(movieName(i))
				if before[i] == victim {
					if after == victim {
						t.Fatalf("%s still owned by removed server", movieName(i))
					}
					movedOut++
				} else if after != before[i] {
					t.Fatalf("remove of %s moved unrelated movie %s (%s→%s)", victim, movieName(i), before[i], after)
				}
			}
			if bound := movies * 2 / n; movedOut > bound {
				t.Fatalf("leave moved %d/%d movies, bound %d", movedOut, movies, bound)
			}
		})
	}
}

func TestLoadSpread(t *testing.T) {
	// With DefaultVNodes the most-loaded of 50 servers should carry
	// less than 2.5x the mean over a 5000-movie catalog.
	r := New(0)
	const n, movies = 50, 5000
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("srv-%02d", i))
	}
	load := map[string]int{}
	for i := 0; i < movies; i++ {
		load[r.Lookup(movieName(i))]++
	}
	mean := movies / n
	for id, got := range load {
		if got > mean*5/2 {
			t.Fatalf("server %s carries %d movies, mean %d", id, got, mean)
		}
	}
	if len(load) != n {
		t.Fatalf("only %d of %d servers own movies", len(load), n)
	}
}
