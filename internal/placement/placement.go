// Package placement assigns movies to servers by consistent hashing.
//
// Each server contributes a fixed number of virtual nodes to a hash
// ring; a movie is owned by the first distinct servers found walking
// the ring clockwise from the movie's hash point. Adding or removing a
// server therefore reassigns only the arc that server's virtual nodes
// cover — about 1/n of the movies — instead of reshuffling the whole
// catalog the way modulo placement would (the remap-bound property
// test pins this).
//
// The ring is deterministic: the same member set always produces the
// same point layout (fnv64a of "server#vnode"), so every process that
// builds a ring from the same membership agrees on ownership without
// any coordination. Rings are plain data — build one, share the
// pointer read-only across a simulation, and rebuild on membership
// change (Add/Remove mutate in place for owners such as the congress
// directory, which serialises access).
package placement

import (
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per server. 64 keeps the
// per-server load imbalance under ~20% at 50 servers while a full
// ring rebuild stays microseconds.
const DefaultVNodes = 64

type point struct {
	hash uint64
	id   string // owning server
}

// Ring is a consistent-hash ring of servers. Not safe for concurrent
// mutation; concurrent Lookup/AppendOrder on an immutable ring is safe.
type Ring struct {
	vnodes int
	points []point // sorted by hash
	ids    []string

	// orderCache memoizes Order's full-walk result per key. Every viewer
	// of a movie computes the same preference order, so at simulation
	// scale the walk (and its slice) amortizes to one per title instead
	// of one per client. Guarded by orderMu so concurrent readers of an
	// otherwise-immutable ring stay safe; Add/Remove drop the cache.
	orderMu    sync.Mutex
	orderCache map[string][]string
}

// New returns an empty ring with the given virtual-node count per
// server (DefaultVNodes if n <= 0).
func New(n int) *Ring {
	if n <= 0 {
		n = DefaultVNodes
	}
	return &Ring{vnodes: n}
}

// fnv64a matches the seeded-jitter hash used elsewhere in the repo
// (DESIGN §9) — identity strings in, stable 64-bit points out — with a
// splitmix64 finalizer on top: raw FNV of short structured names
// ("srv-07#12") clumps badly on the ring (2.5x load skew at 50
// servers / 64 vnodes measured), the avalanche pass brings the
// max/mean arc share down to ~1.2x.
func fnv64a(parts ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range parts {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= '#' // separator so ("ab","c") != ("a","bc")
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func vnodeName(i int) string {
	// Stable two-digit-ish suffix without fmt: vnode counts are small.
	buf := [8]byte{}
	n := len(buf)
	for {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			break
		}
	}
	return string(buf[n:])
}

// Add inserts a server's virtual nodes. Adding an existing server is
// a no-op.
func (r *Ring) Add(id string) {
	for _, have := range r.ids {
		if have == id {
			return
		}
	}
	r.invalidateOrders()
	r.ids = append(r.ids, id)
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: fnv64a(id, vnodeName(v)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id // hash tie: stable by ID
	})
}

// Remove deletes a server's virtual nodes. Unknown servers are a no-op.
func (r *Ring) Remove(id string) {
	found := false
	for i, have := range r.ids {
		if have == id {
			r.ids = append(r.ids[:i], r.ids[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return
	}
	r.invalidateOrders()
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of servers on the ring.
func (r *Ring) Len() int { return len(r.ids) }

// Servers returns the member IDs in sorted order (a fresh slice).
func (r *Ring) Servers() []string {
	out := append([]string(nil), r.ids...)
	sort.Strings(out)
	return out
}

// Lookup returns the primary owner of key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].id
}

// LookupN returns up to n distinct owners of key in ring-walk order:
// the primary first, then each successive distinct server clockwise.
// This is the replica set (and the client's server-preference order).
func (r *Ring) LookupN(key string, n int) []string {
	return r.AppendOrder(nil, key, n)
}

// AppendOrder is LookupN into a caller-owned slice — allocation-free
// once dst has capacity. n <= 0 or n > Len() yields the full walk.
func (r *Ring) AppendOrder(dst []string, key string, n int) []string {
	if len(r.points) == 0 {
		return dst
	}
	if n <= 0 || n > len(r.ids) {
		n = len(r.ids)
	}
	start := len(dst)
	i := r.search(key)
	for seen := 0; seen < len(r.points) && len(dst)-start < n; seen++ {
		id := r.points[(i+seen)%len(r.points)].id
		dup := false
		for _, have := range dst[start:] {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, id)
		}
	}
	return dst
}

// Order returns the full ring-walk order for key — every server, primary
// first — as a cached shared slice. Callers must treat the result as
// read-only; copy before appending or mutating. Membership changes
// (Add/Remove) invalidate the cache.
func (r *Ring) Order(key string) []string {
	r.orderMu.Lock()
	defer r.orderMu.Unlock()
	if ord, ok := r.orderCache[key]; ok {
		return ord
	}
	ord := r.AppendOrder(make([]string, 0, len(r.ids)), key, 0)
	if r.orderCache == nil {
		r.orderCache = make(map[string][]string)
	}
	r.orderCache[key] = ord
	return ord
}

func (r *Ring) invalidateOrders() {
	r.orderMu.Lock()
	r.orderCache = nil
	r.orderMu.Unlock()
}

// search finds the first ring point at or after key's hash.
func (r *Ring) search(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return i
}
