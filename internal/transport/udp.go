package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// UDPEndpoint is the real-network Endpoint used by the cmd/ binaries. Its
// Addr is the socket's host:port string; peers are dialed by resolving
// their Addr on every Send (resolution results are cached).
type UDPEndpoint struct {
	conn *net.UDPConn
	addr Addr

	mu      sync.RWMutex
	handler Handler
	peers   map[Addr]*net.UDPAddr
	closed  bool

	wg sync.WaitGroup
}

var _ Endpoint = (*UDPEndpoint)(nil)

// ListenUDP binds a UDP socket on bind (e.g. "127.0.0.1:7001" or ":0") and
// starts its receive loop. advertise, when non-empty, overrides the address
// reported by Addr — needed when binding ":0" or a wildcard host.
func ListenUDP(bind string, advertise Addr) (*UDPEndpoint, error) {
	laddr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", bind, err)
	}
	addr := advertise
	if addr == "" {
		addr = Addr(conn.LocalAddr().String())
	}
	ep := &UDPEndpoint{
		conn:  conn,
		addr:  addr,
		peers: make(map[Addr]*net.UDPAddr),
	}
	ep.wg.Add(1)
	go ep.readLoop()
	return ep, nil
}

// Addr implements Endpoint.
func (e *UDPEndpoint) Addr() Addr { return e.addr }

// Send implements Endpoint.
func (e *UDPEndpoint) Send(to Addr, payload []byte) error {
	if len(payload) > MaxDatagram {
		return fmt.Errorf("udp send to %s: %w", to, ErrTooLarge)
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	raddr := e.peers[to]
	e.mu.RUnlock()

	if raddr == nil {
		resolved, err := net.ResolveUDPAddr("udp", string(to))
		if err != nil {
			return fmt.Errorf("resolve peer %q: %w", to, err)
		}
		e.mu.Lock()
		e.peers[to] = resolved
		e.mu.Unlock()
		raddr = resolved
	}
	if _, err := e.conn.WriteToUDP(payload, raddr); err != nil {
		return fmt.Errorf("udp send to %s: %w", to, err)
	}
	return nil
}

// SetHandler implements Endpoint.
func (e *UDPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Close implements Endpoint. It stops the receive loop and waits for it.
func (e *UDPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *UDPEndpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, MaxDatagram+1)
	for {
		n, raddr, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			e.mu.RLock()
			closed := e.closed
			e.mu.RUnlock()
			if closed {
				return
			}
			continue // transient error; keep serving
		}
		e.mu.RLock()
		h := e.handler
		e.mu.RUnlock()
		if h == nil || n > MaxDatagram {
			continue
		}
		// Handlers must not retain the payload, so one buffer suffices.
		h(Addr(raddr.String()), buf[:n])
	}
}
