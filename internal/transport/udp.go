package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultPeerCacheLimit bounds the peer-resolution cache of a UDPEndpoint.
// A long-lived server sees client addresses churn indefinitely; without a
// bound the cache is a slow memory leak. 4096 entries comfortably covers a
// node's live peer set while keeping the worst case small (~100 B each).
const DefaultPeerCacheLimit = 4096

// peerEntry is one cached address resolution. used is the CLOCK-eviction
// reference bit: set on every cache hit (atomically, under the read lock),
// cleared by the eviction hand, so recently used peers survive eviction.
type peerEntry struct {
	addr *net.UDPAddr
	used atomic.Bool
}

// UDPEndpoint is the real-network Endpoint used by the cmd/ binaries. Its
// Addr is the socket's host:port string; peers are dialed by resolving
// their Addr on every Send (resolution results are cached, with LRU-style
// eviction once the cache exceeds its limit).
type UDPEndpoint struct {
	conn *net.UDPConn
	addr Addr

	mu       sync.RWMutex
	handler  Handler
	peers    map[Addr]*peerEntry
	order    []Addr // insertion ring walked by the eviction hand
	hand     int
	maxPeers int
	closed   bool

	wg sync.WaitGroup

	// Counters resolved once at construction; a nil registry hands out
	// working unregistered counters, so the hot path never branches.
	sentDatagrams *obs.Counter
	sentBytes     *obs.Counter
	sendErrors    *obs.Counter
	sendOversized *obs.Counter
	recvDatagrams *obs.Counter
	recvBytes     *obs.Counter
	recvDropped   *obs.Counter
	readErrors    *obs.Counter
	peerEvictions *obs.Counter
}

var _ Endpoint = (*UDPEndpoint)(nil)

// ListenUDP binds a UDP socket on bind (e.g. "127.0.0.1:7001" or ":0") and
// starts its receive loop. advertise, when non-empty, overrides the address
// reported by Addr — needed when binding ":0" or a wildcard host. An
// optional obs.Registry receives the endpoint's transport.* counters.
func ListenUDP(bind string, advertise Addr, reg ...*obs.Registry) (*UDPEndpoint, error) {
	laddr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", bind, err)
	}
	addr := advertise
	if addr == "" {
		addr = Addr(conn.LocalAddr().String())
	}
	var r *obs.Registry
	if len(reg) > 0 {
		r = reg[0]
	}
	ep := &UDPEndpoint{
		conn:     conn,
		addr:     addr,
		peers:    make(map[Addr]*peerEntry),
		maxPeers: DefaultPeerCacheLimit,

		sentDatagrams: r.Counter("transport.sent_datagrams"),
		sentBytes:     r.Counter("transport.sent_bytes"),
		sendErrors:    r.Counter("transport.send_errors"),
		sendOversized: r.Counter("transport.send_oversized"),
		recvDatagrams: r.Counter("transport.recv_datagrams"),
		recvBytes:     r.Counter("transport.recv_bytes"),
		recvDropped:   r.Counter("transport.recv_dropped"),
		readErrors:    r.Counter("transport.read_errors"),
		peerEvictions: r.Counter("transport.peer_evictions"),
	}
	ep.wg.Add(1)
	go ep.readLoop()
	return ep, nil
}

// Addr implements Endpoint.
func (e *UDPEndpoint) Addr() Addr { return e.addr }

// SetPeerCacheLimit changes the peer-resolution cache bound (minimum 1).
// Existing entries above the new limit are evicted lazily on the next
// insertion.
func (e *UDPEndpoint) SetPeerCacheLimit(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.maxPeers = n
	e.mu.Unlock()
}

// PeerCacheLen reports the number of cached peer resolutions.
func (e *UDPEndpoint) PeerCacheLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.peers)
}

// Send implements Endpoint.
func (e *UDPEndpoint) Send(to Addr, payload []byte) error {
	if len(payload) > MaxDatagram {
		e.sendOversized.Inc()
		return fmt.Errorf("udp send to %s: %w", to, ErrTooLarge)
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	var raddr *net.UDPAddr
	if ent := e.peers[to]; ent != nil {
		ent.used.Store(true)
		raddr = ent.addr
	}
	e.mu.RUnlock()

	if raddr == nil {
		resolved, err := net.ResolveUDPAddr("udp", string(to))
		if err != nil {
			e.sendErrors.Inc()
			return fmt.Errorf("resolve peer %q: %w", to, err)
		}
		e.cachePeer(to, resolved)
		raddr = resolved
	}
	if _, err := e.conn.WriteToUDP(payload, raddr); err != nil {
		e.sendErrors.Inc()
		return fmt.Errorf("udp send to %s: %w", to, err)
	}
	e.sentDatagrams.Inc()
	e.sentBytes.Add(uint64(len(payload)))
	return nil
}

// cachePeer inserts one resolution, evicting an old entry if the cache is
// full. Eviction is CLOCK (second chance): the hand sweeps the insertion
// ring, sparing — and un-marking — entries hit since its last pass.
func (e *UDPEndpoint) cachePeer(to Addr, resolved *net.UDPAddr) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.peers[to]; ok {
		return // raced with another Send; first resolution wins
	}
	if len(e.peers) < e.maxPeers {
		e.peers[to] = &peerEntry{addr: resolved}
		e.order = append(e.order, to)
		return
	}
	// Full: sweep at most two passes — the first pass may only clear
	// reference bits, the second is then guaranteed a victim.
	for i := 0; i < 2*len(e.order); i++ {
		if e.hand >= len(e.order) {
			e.hand = 0
		}
		victim := e.order[e.hand]
		ent := e.peers[victim]
		if ent != nil && ent.used.CompareAndSwap(true, false) {
			e.hand++
			continue
		}
		delete(e.peers, victim)
		e.peers[to] = &peerEntry{addr: resolved}
		e.order[e.hand] = to
		e.hand++
		e.peerEvictions.Inc()
		return
	}
}

// SetHandler implements Endpoint.
func (e *UDPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Close implements Endpoint. It stops the receive loop and waits for it.
func (e *UDPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *UDPEndpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, MaxDatagram+1)
	failures := 0
	for {
		n, raddr, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			e.mu.RLock()
			closed := e.closed
			e.mu.RUnlock()
			if closed {
				return
			}
			e.readErrors.Inc()
			failures++
			if failures > 1 {
				// A persistent error (e.g. a broken socket that is not
				// reported as closed) must not busy-spin the loop; back
				// off exponentially up to 100ms.
				backoff := time.Millisecond << uint(minInt(failures-2, 7))
				if backoff > 100*time.Millisecond {
					backoff = 100 * time.Millisecond
				}
				time.Sleep(backoff)
			}
			continue // transient error; keep serving
		}
		failures = 0
		e.recvDatagrams.Inc()
		e.recvBytes.Add(uint64(n))
		e.mu.RLock()
		h := e.handler
		e.mu.RUnlock()
		if h == nil || n > MaxDatagram {
			e.recvDropped.Inc()
			continue
		}
		// Handlers must not retain the payload, so one buffer suffices.
		h(Addr(raddr.String()), buf[:n])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
