package transport_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/transport"
)

func TestUDPRoundTrip(t *testing.T) {
	a, err := transport.ListenUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := make(chan []byte, 1)
	b.SetHandler(func(from transport.Addr, payload []byte) {
		if from != a.Addr() {
			t.Errorf("from = %q, want %q", from, a.Addr())
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		got <- cp
	})

	msg := []byte("hello over udp")
	if err := a.Send(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, msg) {
			t.Fatalf("payload = %q, want %q", p, msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram never arrived on loopback")
	}
}

func TestUDPSendAfterClose(t *testing.T) {
	a, err := transport.ListenUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("127.0.0.1:9", []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestUDPOversizedPayload(t *testing.T) {
	a, err := transport.ListenUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	big := make([]byte, transport.MaxDatagram+1)
	if err := a.Send(a.Addr(), big); !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("oversized Send = %v, want ErrTooLarge", err)
	}
}

func TestUDPAdvertiseOverride(t *testing.T) {
	a, err := transport.ListenUDP("127.0.0.1:0", "node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Addr() != "node-a" {
		t.Fatalf("Addr() = %q, want %q", a.Addr(), "node-a")
	}
}

func newSimPair(t *testing.T) (transport.Endpoint, transport.Endpoint, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1, netsim.Profile{})
	a, err := net.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	return a, b, clk
}

func TestMuxSeparatesChannels(t *testing.T) {
	a, b, clk := newSimPair(t)
	muxA, muxB := transport.NewMux(a), transport.NewMux(b)

	var mu sync.Mutex
	var gcsGot, videoGot []string
	muxB.Channel(transport.ChannelGCS).SetHandler(func(_ transport.Addr, p []byte) {
		mu.Lock()
		gcsGot = append(gcsGot, string(p))
		mu.Unlock()
	})
	muxB.Channel(transport.ChannelVideo).SetHandler(func(_ transport.Addr, p []byte) {
		mu.Lock()
		videoGot = append(videoGot, string(p))
		mu.Unlock()
	})

	if err := muxA.Channel(transport.ChannelGCS).Send("b", []byte("view")); err != nil {
		t.Fatal(err)
	}
	if err := muxA.Channel(transport.ChannelVideo).Send("b", []byte("frame")); err != nil {
		t.Fatal(err)
	}
	clk.Drain(0)

	if len(gcsGot) != 1 || gcsGot[0] != "view" {
		t.Fatalf("GCS channel got %v, want [view]", gcsGot)
	}
	if len(videoGot) != 1 || videoGot[0] != "frame" {
		t.Fatalf("video channel got %v, want [frame]", videoGot)
	}
}

func TestMuxDropsUnclaimedChannel(t *testing.T) {
	a, _, clk := newSimPair(t)
	muxA := transport.NewMux(a)
	// b has a mux but never claims the video channel.
	if err := muxA.Channel(transport.ChannelVideo).Send("b", []byte("frame")); err != nil {
		t.Fatal(err)
	}
	clk.Drain(0) // must not panic or deliver anywhere
}

func TestMuxChannelIdentity(t *testing.T) {
	a, _, _ := newSimPair(t)
	m := transport.NewMux(a)
	if m.Channel(transport.ChannelGCS) != m.Channel(transport.ChannelGCS) {
		t.Fatal("Channel returned distinct endpoints for the same id")
	}
	if got := m.Channel(transport.ChannelGCS).Addr(); got != "a" {
		t.Fatalf("channel Addr() = %q, want %q", got, "a")
	}
}

func TestMuxChannelCloseDetachesHandler(t *testing.T) {
	a, b, clk := newSimPair(t)
	muxA, muxB := transport.NewMux(a), transport.NewMux(b)
	n := 0
	ch := muxB.Channel(transport.ChannelGCS)
	ch.SetHandler(func(transport.Addr, []byte) { n++ })
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if err := muxA.Channel(transport.ChannelGCS).Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Drain(0)
	if n != 0 {
		t.Fatalf("closed channel received %d messages, want 0", n)
	}
}

func TestMuxOversizedFrame(t *testing.T) {
	a, _, _ := newSimPair(t)
	m := transport.NewMux(a)
	big := make([]byte, transport.MaxDatagram) // leaves no room for the channel byte
	err := m.Channel(transport.ChannelVideo).Send("b", big)
	if !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("Send = %v, want ErrTooLarge", err)
	}
}
