package transport_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

func TestUDPPeerCacheEviction(t *testing.T) {
	reg := obs.NewRegistry("a", nil)
	a, err := transport.ListenUDP("127.0.0.1:0", "", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetPeerCacheLimit(8)

	// Sends to distinct (unreachable but resolvable) peers populate the
	// cache past its limit; eviction must bound it.
	for i := 0; i < 40; i++ {
		_ = a.Send(transport.Addr(fmt.Sprintf("127.0.0.1:%d", 20000+i)), []byte("x"))
	}
	if n := a.PeerCacheLen(); n > 8 {
		t.Fatalf("peer cache holds %d entries, want ≤ 8", n)
	}
	snap := reg.Snapshot()
	if ev := snap.Counters["transport.peer_evictions"]; ev < 32 {
		t.Fatalf("peer_evictions = %d, want ≥ 32", ev)
	}
	if sent := snap.Counters["transport.sent_datagrams"]; sent != 40 {
		t.Fatalf("sent_datagrams = %d, want 40", sent)
	}

	// An evicted peer is still reachable — re-resolved on demand.
	if err := a.Send("127.0.0.1:20000", []byte("y")); err != nil {
		t.Fatalf("send to evicted peer: %v", err)
	}
}

func TestUDPSendReusesCachedPeer(t *testing.T) {
	a, err := transport.ListenUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send("127.0.0.1:20099", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.PeerCacheLen(); n != 1 {
		t.Fatalf("peer cache holds %d entries after sends to one peer, want 1", n)
	}
}

// TestUDPCloseSendSetHandlerRace drives Send, SetHandler and Close
// concurrently; under -race this guards the endpoint's lifecycle
// locking (the satellite fix for the read-loop hot spin sits on the
// same paths).
func TestUDPCloseSendSetHandlerRace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		reg := obs.NewRegistry("a", nil)
		a, err := transport.ListenUDP("127.0.0.1:0", "", reg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := transport.ListenUDP("127.0.0.1:0", "")
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(3)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				_ = a.Send(b.Addr(), []byte("payload"))
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				a.SetHandler(func(transport.Addr, []byte) {})
				a.SetHandler(nil)
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(trial%5) * 100 * time.Microsecond)
			_ = a.Close()
		}()
		close(start)
		wg.Wait()
		_ = a.Close()
		_ = b.Close()
	}
}

func TestUDPObsRecvCounters(t *testing.T) {
	regA := obs.NewRegistry("a", nil)
	regB := obs.NewRegistry("b", nil)
	a, err := transport.ListenUDP("127.0.0.1:0", "", regA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenUDP("127.0.0.1:0", "", regB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := make(chan struct{}, 1)
	b.SetHandler(func(transport.Addr, []byte) { got <- struct{}{} })
	msg := []byte("counted")
	if err := a.Send(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("datagram never arrived")
	}

	snapA := regA.Snapshot()
	if snapA.Counters["transport.sent_datagrams"] != 1 {
		t.Fatalf("sender counters = %v", snapA.Counters)
	}
	if snapA.Counters["transport.sent_bytes"] != uint64(len(msg)) {
		t.Fatalf("sent_bytes = %d, want %d", snapA.Counters["transport.sent_bytes"], len(msg))
	}
	snapB := regB.Snapshot()
	if snapB.Counters["transport.recv_datagrams"] < 1 {
		t.Fatalf("receiver counters = %v", snapB.Counters)
	}
	if snapB.Counters["transport.recv_bytes"] < uint64(len(msg)) {
		t.Fatalf("recv_bytes = %d, want ≥ %d", snapB.Counters["transport.recv_bytes"], len(msg))
	}
}

func TestUDPOversizedCounted(t *testing.T) {
	reg := obs.NewRegistry("a", nil)
	a, err := transport.ListenUDP("127.0.0.1:0", "", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	big := make([]byte, transport.MaxDatagram+1)
	_ = a.Send(a.Addr(), big)
	if got := reg.Snapshot().Counters["transport.send_oversized"]; got != 1 {
		t.Fatalf("send_oversized = %d, want 1", got)
	}
}
