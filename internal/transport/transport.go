// Package transport defines the unreliable-datagram abstraction that every
// networked component in this repository is written against, mirroring the
// paper's use of raw UDP/IP for both video transmission and the group
// communication substrate.
//
// Two implementations exist: package netsim provides a deterministic
// simulated Network, and UDPEndpoint (in this package) provides real UDP
// sockets for the cmd/ binaries. A Mux splits one endpoint into independent
// channels so control-plane (GCS) and data-plane (video) traffic share a
// single address, as they share a single UDP port in the paper's prototype.
package transport

import "errors"

// Addr identifies an endpoint. For the simulated network it is a free-form
// node name ("server-1"); for UDP it is a host:port string.
type Addr string

// Handler receives an inbound datagram. The payload is only valid for the
// duration of the call: implementations may hand the same buffer to the next
// delivery (the simulated network recycles packet buffers through a pool),
// so handlers that retain any part of the payload must copy it before
// returning. Symmetrically, Send does not retain the payload after it
// returns; senders may immediately reuse their buffer.
type Handler func(from Addr, payload []byte)

// Endpoint is an unreliable, unordered datagram endpoint: messages may be
// dropped, duplicated or reordered by the network, exactly like UDP.
type Endpoint interface {
	// Addr returns the address other endpoints use to reach this one.
	Addr() Addr

	// Send transmits payload to the endpoint at to. A nil error means the
	// datagram was handed to the network, not that it will arrive.
	Send(to Addr, payload []byte) error

	// SetHandler installs the inbound handler. Datagrams arriving while no
	// handler is installed are dropped, as UDP drops datagrams when no one
	// is listening. SetHandler must be called before traffic is expected.
	SetHandler(h Handler)

	// Close releases the endpoint. Subsequent Sends fail with ErrClosed.
	Close() error
}

// StableSender is an optional Endpoint extension for payloads the caller
// guarantees are immutable for the rest of the process lifetime, such as
// precomputed frame tables shared by every viewer of a movie. Implementations
// may alias the payload indefinitely instead of copying it — the simulated
// network delivers the very same backing array to receiving handlers — so
// neither the sender nor any receiver may ever write through it. Endpoints
// without a no-copy path simply don't implement the interface; callers fall
// back to Send, which is always correct.
type StableSender interface {
	SendStable(to Addr, payload []byte) error
}

// PreframedSender is implemented by mux channels: SendPreframed transmits a
// payload whose first byte is already this channel's ID — the layout produced
// by framing a message with the channel's Preframe byte at build time — so no
// copy is needed to add the prefix and the underlying endpoint's StableSender
// path (when present) ships the caller's immutable buffer directly.
type PreframedSender interface {
	// Preframe returns the one-byte prefix a preframed payload must start
	// with.
	Preframe() byte

	// SendPreframed sends a payload that already begins with Preframe().
	// The payload must be immutable for the process lifetime, exactly as
	// for StableSender.SendStable.
	SendPreframed(to Addr, payload []byte) error
}

// AddrRef is a pre-resolved destination handle: a dense integer a network
// hands out for an Addr so per-packet sends need not re-hash the address
// string. Refs are only meaningful to the network that issued them.
type AddrRef int32

// NoAddrRef is the sentinel for "no reference available"; senders holding it
// must fall back to the address-keyed Send path.
const NoAddrRef AddrRef = -1

// RefResolver is an optional Endpoint extension implemented by networks with
// dense internal routing. ResolveAddr interns to and returns a stable
// reference that stays valid for the lifetime of the network — across
// crashes and rebinds of the referenced address — and is accepted by any
// RefSender endpoint of the same network. Endpoints without a dense index
// simply don't implement the interface.
type RefResolver interface {
	ResolveAddr(to Addr) AddrRef
}

// RefSender is an optional Endpoint extension accepting pre-resolved
// destination references. SendRef and SendStableRef behave exactly like Send
// and SendStable with the referenced address: same drop, duplication and
// timing behavior, so a run sending by reference replays byte-for-byte like
// one sending by address.
type RefSender interface {
	SendRef(to AddrRef, payload []byte) error
	SendStableRef(to AddrRef, payload []byte) error
}

// PreframedRefSender extends PreframedSender with a resolved-destination
// variant: the payload must already begin with the channel's Preframe byte
// and be immutable for the process lifetime, and to must come from this
// channel's ResolveAddr. The per-frame delivery path of a scale run goes
// through here — no string is hashed between the session and the wire.
type PreframedRefSender interface {
	SendPreframedRef(to AddrRef, payload []byte) error
}

// RefBatchSender is an optional Endpoint extension for fan-out: one call
// transmits payloads[i] to dsts[i] for every i (the slices must be the same
// length). Every payload carries the StableSender immutability obligation,
// and entries may alias one another — a broadcast hands the same backing
// array to every destination. The contract is equivalence with a loop:
// loss, duplication and per-destination link timing behave as if
// SendStableRef had been called once per destination in slice order,
// consuming the same random draws in the same order, so a run that batches
// its fan-out keeps aggregate statistics identical to one that loops.
// Implementations are free to coalesce the surviving deliveries into one
// scheduled event (netsim does); only per-delivery timing, never content or
// ordering among the batch, may differ from the loop.
type RefBatchSender interface {
	SendStableRefBatch(dsts []AddrRef, payloads [][]byte) error
}

// PreframedRefBatchSender is the batched form of PreframedRefSender: every
// payload must already begin with the channel's Preframe byte and be
// immutable for the process lifetime, and every destination must come from
// this channel's ResolveAddr. One striped pacing beat of a scale run goes
// through here as a single call — one network transmission event for the
// whole stripe instead of one per viewer.
type PreframedRefBatchSender interface {
	SendPreframedRefBatch(dsts []AddrRef, payloads [][]byte) error
}

// Network creates endpoints. The simulated implementation wires them to a
// shared topology; tests use it to build whole clusters in-process.
type Network interface {
	// NewEndpoint binds a new endpoint at addr.
	NewEndpoint(addr Addr) (Endpoint, error)
}

var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")

	// ErrAddrInUse is returned when binding an address that is taken.
	ErrAddrInUse = errors.New("transport: address already in use")

	// ErrNoRoute is returned by simulated sends to an address that has
	// never been bound. (UDP cannot detect this; the simulator reports it
	// because sending to a nonexistent node is always a harness bug.)
	ErrNoRoute = errors.New("transport: no route to address")

	// ErrTooLarge is returned for payloads exceeding the datagram limit.
	ErrTooLarge = errors.New("transport: payload exceeds datagram limit")
)

// MaxDatagram is the largest payload an Endpoint must accept, chosen below
// the 64 KiB UDP limit with room for channel framing. A single MPEG frame
// (≈6 KB at 1.4 Mbps / 30 fps) fits comfortably, matching the paper's
// one-frame-per-message transmission.
const MaxDatagram = 60 * 1024
