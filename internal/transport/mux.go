package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ChannelID tags each datagram with the logical plane it belongs to.
type ChannelID byte

// The planes used by the VoD service. Control (GCS membership + reliable
// multicast) and video frames share one endpoint per node, as they share
// one UDP stack in the paper's prototype.
const (
	ChannelGCS ChannelID = iota + 1
	ChannelVideo
	// ChannelDirectory carries CONGRESS group-address resolution traffic
	// (registrations and lookups).
	ChannelDirectory
	// ChannelBulk carries movie replication requests (package fetch);
	// ChannelBulkReply carries the chunks back. Two channels because each
	// side of a transfer owns one inbound handler.
	ChannelBulk
	ChannelBulkReply
)

// Mux splits a single Endpoint into independent logical channels by
// prefixing every datagram with a one-byte channel ID. Each channel is
// itself an Endpoint, so higher layers are unaware of the sharing.
type Mux struct {
	ep Endpoint

	mu       sync.RWMutex
	channels map[ChannelID]*muxChannel

	// chans mirrors the low channel IDs (every ID the VoD planes use) in a
	// flat array of atomic pointers: dispatch runs once per delivered
	// datagram — millions of times in a scale run — and an indexed atomic
	// load replaces the map hash plus reader-lock round trip.
	chans [muxDenseChans]atomic.Pointer[muxChannel]
}

// muxDenseChans bounds the dense dispatch array; all defined ChannelIDs fit.
const muxDenseChans = 8

// NewMux wraps ep. The mux takes over ep's handler; callers must not call
// ep.SetHandler afterwards.
func NewMux(ep Endpoint) *Mux {
	m := &Mux{
		ep:       ep,
		channels: make(map[ChannelID]*muxChannel),
	}
	ep.SetHandler(m.dispatch)
	return m
}

// Channel returns the Endpoint for id, creating it on first use. Calling
// Channel twice with the same id returns the same Endpoint.
func (m *Mux) Channel(id ChannelID) Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.channels[id]
	if !ok {
		ch = &muxChannel{mux: m, id: id}
		// The underlying endpoint's optional fast paths are resolved once
		// here instead of being type-asserted on every send.
		ch.stable, _ = m.ep.(StableSender)
		ch.refs, _ = m.ep.(RefSender)
		ch.resolver, _ = m.ep.(RefResolver)
		ch.batch, _ = m.ep.(RefBatchSender)
		m.channels[id] = ch
		if int(id) < muxDenseChans {
			m.chans[id].Store(ch)
		}
	}
	return ch
}

// Close closes the underlying endpoint and all channels.
func (m *Mux) Close() error {
	return m.ep.Close()
}

func (m *Mux) dispatch(from Addr, payload []byte) {
	if len(payload) == 0 {
		return
	}
	id := ChannelID(payload[0])
	var ch *muxChannel
	if int(id) < muxDenseChans {
		ch = m.chans[id].Load()
	} else {
		m.mu.RLock()
		ch = m.channels[id]
		m.mu.RUnlock()
	}
	if ch == nil {
		return // no listener on this plane; drop like UDP would
	}
	if h := ch.handler.Load(); h != nil {
		(*h)(from, payload[1:])
	}
}

type muxChannel struct {
	mux *Mux
	id  ChannelID

	// The underlying endpoint's optional send interfaces, asserted once at
	// channel creation (nil when unimplemented).
	stable   StableSender
	refs     RefSender
	resolver RefResolver
	batch    RefBatchSender

	// handler is an atomic pointer rather than a mutex-guarded field:
	// dispatch reads it per delivered datagram, installs are rare.
	handler atomic.Pointer[Handler]

	sendMu  sync.Mutex
	scratch []byte // reusable framing buffer, guarded by sendMu
}

var _ Endpoint = (*muxChannel)(nil)

func (c *muxChannel) Addr() Addr { return c.mux.ep.Addr() }

func (c *muxChannel) Send(to Addr, payload []byte) error {
	if len(payload) > MaxDatagram-1 {
		return fmt.Errorf("channel %d to %s: %w", c.id, to, ErrTooLarge)
	}
	// Frame into a per-channel scratch buffer instead of a fresh slice:
	// Endpoint.Send does not retain the payload after returning, so the
	// buffer is free for reuse as soon as the nested Send completes.
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	framed := append(c.scratch[:0], byte(c.id))
	framed = append(framed, payload...)
	c.scratch = framed[:0]
	return c.mux.ep.Send(to, framed)
}

// Preframe implements PreframedSender.
func (c *muxChannel) Preframe() byte { return byte(c.id) }

// SendPreframed implements PreframedSender: payload must already start with
// this channel's ID byte and be immutable for the process lifetime. When the
// underlying endpoint offers a StableSender fast path the buffer is shipped
// without any copy; otherwise it degrades to a plain Send of the preframed
// bytes (the wire layout is identical either way).
func (c *muxChannel) SendPreframed(to Addr, payload []byte) error {
	if len(payload) == 0 || payload[0] != byte(c.id) {
		return fmt.Errorf("channel %d to %s: preframed payload does not carry this channel's prefix", c.id, to)
	}
	if len(payload) > MaxDatagram {
		return fmt.Errorf("channel %d to %s: %w", c.id, to, ErrTooLarge)
	}
	if c.stable != nil {
		return c.stable.SendStable(to, payload)
	}
	return c.mux.ep.Send(to, payload)
}

// ResolveAddr implements RefResolver by delegating to the underlying
// endpoint. Channels over an endpoint without a dense index return NoAddrRef;
// callers then stay on the address-keyed send path.
func (c *muxChannel) ResolveAddr(to Addr) AddrRef {
	if c.resolver != nil {
		return c.resolver.ResolveAddr(to)
	}
	return NoAddrRef
}

// SendPreframedRef implements PreframedRefSender: SendPreframed with the
// destination already resolved. The payload carries the same immutability
// and prefix obligations; to must come from this channel's ResolveAddr.
func (c *muxChannel) SendPreframedRef(to AddrRef, payload []byte) error {
	if len(payload) == 0 || payload[0] != byte(c.id) {
		return fmt.Errorf("channel %d to ref#%d: preframed payload does not carry this channel's prefix", c.id, to)
	}
	if len(payload) > MaxDatagram {
		return fmt.Errorf("channel %d to ref#%d: %w", c.id, to, ErrTooLarge)
	}
	if c.refs == nil || to == NoAddrRef {
		return fmt.Errorf("channel %d to ref#%d: no reference send path", c.id, to)
	}
	return c.refs.SendStableRef(to, payload)
}

// SendPreframedRefBatch implements PreframedRefBatchSender: one batched
// fan-out through the underlying endpoint's RefBatchSender path. Every
// payload carries the same prefix and immutability obligations as
// SendPreframedRef; every destination must come from this channel's
// ResolveAddr. Callers should check the channel implements the interface
// (it does only when the underlying endpoint batches) and fall back to
// per-destination sends otherwise.
func (c *muxChannel) SendPreframedRefBatch(dsts []AddrRef, payloads [][]byte) error {
	if len(dsts) != len(payloads) {
		return fmt.Errorf("channel %d: batch with %d destinations but %d payloads", c.id, len(dsts), len(payloads))
	}
	if c.batch == nil {
		return fmt.Errorf("channel %d: no batched reference send path", c.id)
	}
	for i, p := range payloads {
		if len(p) == 0 || p[0] != byte(c.id) {
			return fmt.Errorf("channel %d to ref#%d: preframed payload does not carry this channel's prefix", c.id, dsts[i])
		}
		if len(p) > MaxDatagram {
			return fmt.Errorf("channel %d to ref#%d: %w", c.id, dsts[i], ErrTooLarge)
		}
	}
	return c.batch.SendStableRefBatch(dsts, payloads)
}

func (c *muxChannel) SetHandler(h Handler) {
	if h == nil {
		c.handler.Store(nil)
		return
	}
	c.handler.Store(&h)
}

// Close detaches this channel's handler; the shared endpoint stays open for
// the other planes.
func (c *muxChannel) Close() error {
	c.SetHandler(nil)
	return nil
}
