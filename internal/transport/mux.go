package transport

import (
	"fmt"
	"sync"
)

// ChannelID tags each datagram with the logical plane it belongs to.
type ChannelID byte

// The planes used by the VoD service. Control (GCS membership + reliable
// multicast) and video frames share one endpoint per node, as they share
// one UDP stack in the paper's prototype.
const (
	ChannelGCS ChannelID = iota + 1
	ChannelVideo
	// ChannelDirectory carries CONGRESS group-address resolution traffic
	// (registrations and lookups).
	ChannelDirectory
	// ChannelBulk carries movie replication requests (package fetch);
	// ChannelBulkReply carries the chunks back. Two channels because each
	// side of a transfer owns one inbound handler.
	ChannelBulk
	ChannelBulkReply
)

// Mux splits a single Endpoint into independent logical channels by
// prefixing every datagram with a one-byte channel ID. Each channel is
// itself an Endpoint, so higher layers are unaware of the sharing.
type Mux struct {
	ep Endpoint

	mu       sync.RWMutex
	channels map[ChannelID]*muxChannel
}

// NewMux wraps ep. The mux takes over ep's handler; callers must not call
// ep.SetHandler afterwards.
func NewMux(ep Endpoint) *Mux {
	m := &Mux{
		ep:       ep,
		channels: make(map[ChannelID]*muxChannel),
	}
	ep.SetHandler(m.dispatch)
	return m
}

// Channel returns the Endpoint for id, creating it on first use. Calling
// Channel twice with the same id returns the same Endpoint.
func (m *Mux) Channel(id ChannelID) Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.channels[id]
	if !ok {
		ch = &muxChannel{mux: m, id: id}
		m.channels[id] = ch
	}
	return ch
}

// Close closes the underlying endpoint and all channels.
func (m *Mux) Close() error {
	return m.ep.Close()
}

func (m *Mux) dispatch(from Addr, payload []byte) {
	if len(payload) == 0 {
		return
	}
	id := ChannelID(payload[0])
	m.mu.RLock()
	ch := m.channels[id]
	m.mu.RUnlock()
	if ch == nil {
		return // no listener on this plane; drop like UDP would
	}
	ch.mu.RLock()
	h := ch.handler
	ch.mu.RUnlock()
	if h != nil {
		h(from, payload[1:])
	}
}

type muxChannel struct {
	mux *Mux
	id  ChannelID

	mu      sync.RWMutex
	handler Handler

	sendMu  sync.Mutex
	scratch []byte // reusable framing buffer, guarded by sendMu
}

var _ Endpoint = (*muxChannel)(nil)

func (c *muxChannel) Addr() Addr { return c.mux.ep.Addr() }

func (c *muxChannel) Send(to Addr, payload []byte) error {
	if len(payload) > MaxDatagram-1 {
		return fmt.Errorf("channel %d to %s: %w", c.id, to, ErrTooLarge)
	}
	// Frame into a per-channel scratch buffer instead of a fresh slice:
	// Endpoint.Send does not retain the payload after returning, so the
	// buffer is free for reuse as soon as the nested Send completes.
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	framed := append(c.scratch[:0], byte(c.id))
	framed = append(framed, payload...)
	c.scratch = framed[:0]
	return c.mux.ep.Send(to, framed)
}

// Preframe implements PreframedSender.
func (c *muxChannel) Preframe() byte { return byte(c.id) }

// SendPreframed implements PreframedSender: payload must already start with
// this channel's ID byte and be immutable for the process lifetime. When the
// underlying endpoint offers a StableSender fast path the buffer is shipped
// without any copy; otherwise it degrades to a plain Send of the preframed
// bytes (the wire layout is identical either way).
func (c *muxChannel) SendPreframed(to Addr, payload []byte) error {
	if len(payload) == 0 || payload[0] != byte(c.id) {
		return fmt.Errorf("channel %d to %s: preframed payload does not carry this channel's prefix", c.id, to)
	}
	if len(payload) > MaxDatagram {
		return fmt.Errorf("channel %d to %s: %w", c.id, to, ErrTooLarge)
	}
	if s, ok := c.mux.ep.(StableSender); ok {
		return s.SendStable(to, payload)
	}
	return c.mux.ep.Send(to, payload)
}

func (c *muxChannel) SetHandler(h Handler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = h
}

// Close detaches this channel's handler; the shared endpoint stays open for
// the other planes.
func (c *muxChannel) Close() error {
	c.SetHandler(nil)
	return nil
}
