// Package lease implements the client side of two-tier membership.
//
// In the paper's design every viewer is a full group member, so
// heartbeats and ack vectors grow quadratically with the audience. The
// two-tier split (DESIGN §12) keeps virtual synchrony for the small
// server core only; clients attach to their serving server with a
// lightweight lease instead:
//
//   - the client's Keeper sends a Renew every TTL/3 on the injected
//     clock and expects an Ack; TTL of silence means the server (or the
//     path to it) is gone and the client re-anycasts its Open,
//   - the server's Table tracks one entry per leased session and
//     expires entries that stop renewing, reclaiming the session.
//
// Takeover needs no view change: the lease simply dies on both ends
// and the client's re-anycast (with the takeover flag) lands on the
// next ring replica, which resumes from the synced knowledge table.
//
// Renew/Ack ride the gcs direct channel next to OpenReply. Their kind
// bytes live above the wire.Kind range (1..6) so one dispatch switch
// can tell them apart without a version bump.
package lease

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/wire"
)

// Kind bytes for the direct channel, disjoint from wire.Kind 1..6.
const (
	KindRenew byte = 0x11 // client -> server: keep my session alive
	KindAck   byte = 0x12 // server -> client: lease confirmed for TTL
)

// DefaultTTL is the lease lifetime when the deployment doesn't pick
// one. Renewals go out every TTL/3, so two may be lost before expiry.
const DefaultTTL = 2 * time.Second

var errKind = errors.New("lease: wrong kind byte")

// Renew asks the serving server to extend the client's lease.
type Renew struct {
	ClientID string
	Seq      uint64 // monotonic per client; echoed in the Ack
}

// Ack confirms a Renew and restates the lease TTL.
type Ack struct {
	ClientID string
	Seq      uint64
	TTLMs    uint32
}

// AppendRenew appends the encoded message to b.
func AppendRenew(b []byte, m *Renew) []byte {
	b = wire.AppendU8(b, KindRenew)
	b = wire.AppendString(b, m.ClientID)
	b = wire.AppendU64(b, m.Seq)
	return b
}

// DecodeRenewInto decodes into m, reusing m.ClientID's storage when
// the value is unchanged (same keepString contract as internal/wire).
func DecodeRenewInto(m *Renew, b []byte) error {
	r := wire.NewReader(b)
	if r.U8() != KindRenew {
		if err := r.Err(); err != nil {
			return err
		}
		return errKind
	}
	if id := r.StringBytes(); m.ClientID != string(id) {
		m.ClientID = string(id)
	}
	m.Seq = r.U64()
	return r.Done()
}

// AppendAck appends the encoded message to b.
func AppendAck(b []byte, m *Ack) []byte {
	b = wire.AppendU8(b, KindAck)
	b = wire.AppendString(b, m.ClientID)
	b = wire.AppendU64(b, m.Seq)
	b = wire.AppendU32(b, m.TTLMs)
	return b
}

// DecodeAckInto decodes into m with the keepString contract.
func DecodeAckInto(m *Ack, b []byte) error {
	r := wire.NewReader(b)
	if r.U8() != KindAck {
		if err := r.Err(); err != nil {
			return err
		}
		return errKind
	}
	if id := r.StringBytes(); m.ClientID != string(id) {
		m.ClientID = string(id)
	}
	m.Seq = r.U64()
	m.TTLMs = r.U32()
	return r.Done()
}

// Table is the server-side lease table: one entry per leased session,
// swept on the injected clock. Entries are pooled the same way server
// sessions are — Drop recycles, Touch revives — so steady-state churn
// does not allocate.
type Table struct {
	clk      clock.Clock
	ttl      time.Duration
	onExpire func(id string) // called outside the table lock, in sorted ID order

	mu      sync.Mutex
	entries map[string]*tableEntry
	free    []*tableEntry
	sweep   *clock.Periodic
	expired []string // sweep scratch
	renews  uint64
}

type tableEntry struct {
	expiry time.Time
}

// NewTable starts the sweeper (one Periodic at TTL/4 granularity — the
// table adds a single timer per server, not one per client).
func NewTable(clk clock.Clock, ttl time.Duration, onExpire func(id string)) *Table {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	t := &Table{
		clk:      clk,
		ttl:      ttl,
		onExpire: onExpire,
		entries:  make(map[string]*tableEntry),
	}
	t.sweep = clock.Every(clk, ttl/4, t.sweepTick)
	return t
}

// TTL reports the configured lease lifetime.
func (t *Table) TTL() time.Duration { return t.ttl }

// Touch creates or refreshes the lease for id.
func (t *Table) Touch(id string) {
	now := t.clk.Now()
	t.mu.Lock()
	e := t.entries[id]
	if e == nil {
		if n := len(t.free); n > 0 {
			e = t.free[n-1]
			t.free[n-1] = nil
			t.free = t.free[:n-1]
		} else {
			e = new(tableEntry)
		}
		t.entries[id] = e
	} else {
		t.renews++
	}
	e.expiry = now.Add(t.ttl)
	t.mu.Unlock()
}

// Drop removes id's lease without firing onExpire (session closed
// through the normal teardown path).
func (t *Table) Drop(id string) {
	t.mu.Lock()
	if e, ok := t.entries[id]; ok {
		delete(t.entries, id)
		t.free = append(t.free, e)
	}
	t.mu.Unlock()
}

// Len reports the live lease count.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Renews reports how many Touch calls refreshed an existing lease.
func (t *Table) Renews() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.renews
}

// Close stops the sweeper. Entries are left in place (the owning
// server tears its sessions down itself).
func (t *Table) Close() { t.sweep.Stop() }

func (t *Table) sweepTick() {
	now := t.clk.Now()
	t.mu.Lock()
	t.expired = t.expired[:0]
	for id, e := range t.entries {
		if now.After(e.expiry) {
			t.expired = append(t.expired, id)
		}
	}
	// Sorted order: map iteration must never leak into callback order
	// (DESIGN §9).
	sort.Strings(t.expired)
	for _, id := range t.expired {
		t.free = append(t.free, t.entries[id])
		delete(t.entries, id)
	}
	t.mu.Unlock()
	if t.onExpire != nil {
		for _, id := range t.expired {
			t.onExpire(id)
		}
	}
}

// Keeper is the client-side renewer: one Periodic at TTL/3 that sends
// a sequenced Renew and watches for Acks. A full TTL without any Ack
// fires onLost (once per outage) so the client can re-anycast.
type Keeper struct {
	clk    clock.Clock
	send   func(seq uint64)
	onLost func()

	mu      sync.Mutex
	task    *clock.Periodic
	ttl     time.Duration
	seq     uint64
	acked   uint64
	lastAck time.Time
	lost    bool
}

// NewKeeper starts renewing immediately. send transmits one Renew
// (called without the Keeper lock held); onLost reports a dead lease.
func NewKeeper(clk clock.Clock, ttl time.Duration, send func(seq uint64), onLost func()) *Keeper {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	k := &Keeper{clk: clk, send: send, onLost: onLost, ttl: ttl, lastAck: clk.Now()}
	k.task = clock.Every(clk, ttl/3, k.tick)
	return k
}

func (k *Keeper) tick() {
	now := k.clk.Now()
	k.mu.Lock()
	if k.task == nil {
		k.mu.Unlock()
		return
	}
	expired := !k.lost && now.Sub(k.lastAck) > k.ttl
	if expired {
		k.lost = true
	}
	k.seq++
	seq := k.seq
	k.mu.Unlock()
	// Keep renewing even while lost: if the server (or the path) comes
	// back before the client re-opens, the next Ack revives the lease.
	k.send(seq)
	if expired && k.onLost != nil {
		k.onLost()
	}
}

// Ack records a confirmation. Stale sequence numbers (reordered
// deliveries) still count as liveness proof.
func (k *Keeper) Ack(seq uint64) {
	now := k.clk.Now()
	k.mu.Lock()
	if seq > k.acked {
		k.acked = seq
	}
	k.lastAck = now
	k.lost = false
	k.mu.Unlock()
}

// Touch resets the silence window without an Ack — called when the
// client re-attaches (a fresh OpenReply proves the server is alive).
func (k *Keeper) Touch() {
	now := k.clk.Now()
	k.mu.Lock()
	k.lastAck = now
	k.lost = false
	k.mu.Unlock()
}

// Seq reports the last sent and last acked renewal sequence numbers.
func (k *Keeper) Seq() (sent, acked uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.seq, k.acked
}

// Stop halts renewals.
func (k *Keeper) Stop() {
	k.mu.Lock()
	task := k.task
	k.task = nil
	k.mu.Unlock()
	if task != nil {
		task.Stop()
	}
}
