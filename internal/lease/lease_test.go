package lease

import (
	"testing"
	"time"

	"repro/internal/clock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestCodecRoundTrip(t *testing.T) {
	rn := Renew{ClientID: "viewer-7", Seq: 42}
	var gotR Renew
	if err := DecodeRenewInto(&gotR, AppendRenew(nil, &rn)); err != nil {
		t.Fatal(err)
	}
	if gotR != rn {
		t.Fatalf("renew round trip: %+v != %+v", gotR, rn)
	}
	ack := Ack{ClientID: "viewer-7", Seq: 42, TTLMs: 2000}
	var gotA Ack
	if err := DecodeAckInto(&gotA, AppendAck(nil, &ack)); err != nil {
		t.Fatal(err)
	}
	if gotA != ack {
		t.Fatalf("ack round trip: %+v != %+v", gotA, ack)
	}
	// Cross-kind decode must fail cleanly.
	if err := DecodeRenewInto(&gotR, AppendAck(nil, &ack)); err == nil {
		t.Fatal("renew decoder accepted an ack")
	}
	if err := DecodeAckInto(&gotA, AppendRenew(nil, &rn)); err == nil {
		t.Fatal("ack decoder accepted a renew")
	}
	if err := DecodeRenewInto(&gotR, nil); err == nil {
		t.Fatal("renew decoder accepted empty input")
	}
}

func TestTableExpiry(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	var expired []string
	tbl := NewTable(clk, time.Second, func(id string) { expired = append(expired, id) })
	defer tbl.Close()

	tbl.Touch("b")
	tbl.Touch("a")
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	// Keep "a" alive, let "b" lapse.
	clk.Advance(600 * time.Millisecond)
	tbl.Touch("a")
	clk.Advance(900 * time.Millisecond) // "b" lapses at 1.0s; sweep at 1.25s
	if len(expired) != 1 || expired[0] != "b" {
		t.Fatalf("expired = %v", expired)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len after expiry = %d", tbl.Len())
	}
	if tbl.Renews() != 1 {
		t.Fatalf("Renews = %d", tbl.Renews())
	}
	// Dropped entries never fire onExpire.
	tbl.Drop("a")
	clk.Advance(3 * time.Second)
	if len(expired) != 1 {
		t.Fatalf("expired after Drop = %v", expired)
	}
}

func TestTableExpiryOrderSorted(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	var expired []string
	tbl := NewTable(clk, time.Second, func(id string) { expired = append(expired, id) })
	defer tbl.Close()
	for _, id := range []string{"z", "m", "a", "q"} {
		tbl.Touch(id)
	}
	clk.Advance(2 * time.Second)
	want := []string{"a", "m", "q", "z"}
	if len(expired) < 4 {
		t.Fatalf("expired = %v", expired)
	}
	for i, id := range want {
		if expired[i] != id {
			t.Fatalf("expiry order = %v, want %v", expired, want)
		}
	}
}

func TestTableTouchAllocFree(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	tbl := NewTable(clk, time.Second, nil)
	defer tbl.Close()
	tbl.Touch("steady") // entry + map cell created once
	allocs := testing.AllocsPerRun(200, func() { tbl.Touch("steady") })
	if allocs != 0 {
		t.Fatalf("steady-state Touch allocs = %v, want 0", allocs)
	}
	// Drop/Touch churn reuses pooled entries.
	tbl.Drop("steady")
	tbl.Touch("steady")
	allocs = testing.AllocsPerRun(200, func() {
		tbl.Drop("steady")
		tbl.Touch("steady")
	})
	if allocs != 0 {
		t.Fatalf("churn Touch allocs = %v, want 0", allocs)
	}
}

func TestKeeperRenewAndLoss(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	var sent []uint64
	losses := 0
	k := NewKeeper(clk, 900*time.Millisecond, func(seq uint64) { sent = append(sent, seq) }, func() { losses++ })
	defer k.Stop()

	// Acked renewals: no loss.
	for i := 0; i < 3; i++ {
		clk.Advance(300 * time.Millisecond)
		if len(sent) != i+1 {
			t.Fatalf("after tick %d: sent = %v", i, sent)
		}
		k.Ack(sent[len(sent)-1])
	}
	if losses != 0 {
		t.Fatalf("losses = %d with acked renewals", losses)
	}
	if s, a := k.Seq(); s != 3 || a != 3 {
		t.Fatalf("Seq = %d/%d", s, a)
	}

	// Silence: onLost fires exactly once, renewals keep going.
	clk.Advance(3 * time.Second)
	if losses != 1 {
		t.Fatalf("losses = %d, want 1", losses)
	}
	if len(sent) < 10 {
		t.Fatalf("keeper stopped renewing while lost: %v", sent)
	}

	// Recovery: an Ack (or Touch) rearms the loss edge.
	k.Ack(sent[len(sent)-1])
	clk.Advance(3 * time.Second)
	if losses != 2 {
		t.Fatalf("losses after recovery = %d, want 2", losses)
	}
	k.Touch()
	clk.Advance(600 * time.Millisecond)
	if losses != 2 {
		t.Fatalf("losses right after Touch = %d, want 2", losses)
	}
}

func TestKeeperStopSilences(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	sent := 0
	k := NewKeeper(clk, 900*time.Millisecond, func(uint64) { sent++ }, nil)
	clk.Advance(time.Second)
	k.Stop()
	before := sent
	clk.Advance(5 * time.Second)
	if sent != before {
		t.Fatalf("keeper sent after Stop: %d -> %d", before, sent)
	}
}
