package lease

import (
	"bytes"
	"testing"
)

// FuzzDecodeLease drives both direct-channel decoders with arbitrary
// bytes: no panics, and decode∘encode must be the identity on every
// input the decoders accept — including with dirty scratch structs,
// which is how the client/server reuse them.
func FuzzDecodeLease(f *testing.F) {
	f.Add(AppendRenew(nil, &Renew{ClientID: "viewer-1", Seq: 1}))
	f.Add(AppendAck(nil, &Ack{ClientID: "viewer-1", Seq: 1, TTLMs: 2000}))
	f.Add(AppendRenew(nil, &Renew{}))
	f.Add([]byte{KindRenew})
	f.Add([]byte{KindAck, 0, 3, 'a', 'b'})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var rn, rnDirty Renew
		rnDirty = Renew{ClientID: "stale-scratch", Seq: 99}
		errClean := DecodeRenewInto(&rn, data)
		errDirty := DecodeRenewInto(&rnDirty, data)
		if (errClean == nil) != (errDirty == nil) {
			t.Fatalf("renew scratch state changed accept/reject: %v vs %v", errClean, errDirty)
		}
		if errClean == nil {
			if rn != rnDirty {
				t.Fatalf("renew dirty scratch decode differs: %+v vs %+v", rn, rnDirty)
			}
			if re := AppendRenew(nil, &rn); !bytes.Equal(re, data) {
				t.Fatalf("renew re-encode mismatch: %x vs %x", re, data)
			}
		}

		var ack, ackDirty Ack
		ackDirty = Ack{ClientID: "stale-scratch", Seq: 99, TTLMs: 77}
		errClean = DecodeAckInto(&ack, data)
		errDirty = DecodeAckInto(&ackDirty, data)
		if (errClean == nil) != (errDirty == nil) {
			t.Fatalf("ack scratch state changed accept/reject: %v vs %v", errClean, errDirty)
		}
		if errClean == nil {
			if ack != ackDirty {
				t.Fatalf("ack dirty scratch decode differs: %+v vs %+v", ack, ackDirty)
			}
			if re := AppendAck(nil, &ack); !bytes.Equal(re, data) {
				t.Fatalf("ack re-encode mismatch: %x vs %x", re, data)
			}
		}
	})
}
