package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/mpeg"
)

func TestSaveAndLoadDirectory(t *testing.T) {
	dir := t.TempDir()
	c := NewCatalog()
	c.Add(mpeg.Generate("alpha", mpeg.StreamConfig{Duration: 2 * time.Second, Seed: 1}))
	c.Add(mpeg.Generate("beta", mpeg.StreamConfig{Duration: 3 * time.Second, Seed: 2}))
	if err := c.SaveTo(dir); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.List(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("loaded %v", got)
	}
	orig, _ := c.Get("alpha")
	copy2, _ := loaded.Get("alpha")
	if orig.TotalBytes() != copy2.TotalBytes() || orig.TotalFrames() != copy2.TotalFrames() {
		t.Fatal("loaded movie differs from saved")
	}
}

func TestLoadDirectoryIgnoresOtherFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	c := NewCatalog()
	c.Add(mpeg.Generate("only", mpeg.StreamConfig{Duration: time.Second, Seed: 1}))
	if err := c.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 || !loaded.Has("only") {
		t.Fatalf("loaded %v", loaded.List())
	}
}

func TestLoadDirectoryErrors(t *testing.T) {
	if _, err := LoadDirectory(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad"+MovieFileExt), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDirectory(dir); err == nil {
		t.Fatal("corrupt movie file accepted")
	}
}
