// Package store holds the movie material a VoD server serves: a catalog of
// movies keyed by ID, plus the replica-placement helper that decides which
// servers hold which movies. The paper assumes "a separate mechanism for
// replicating the video material" (§3, footnote); placement here is that
// mechanism — each movie is replicated on k servers, and a server joins the
// movie group of exactly the movies it holds.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/mpeg"
)

// MovieFileExt is the filename extension of stored movies.
const MovieFileExt = ".vodm"

// ErrNotFound is returned when a movie is not in the catalog.
var ErrNotFound = errors.New("store: movie not found")

// Catalog is a server's movie library. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	movies map[string]*mpeg.Movie
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{movies: make(map[string]*mpeg.Movie)}
}

// Add stores a movie, replacing any previous movie with the same ID.
// Movies can be added while the server runs — the paper's "new movies can
// be added on the fly by storing them on machines where servers run".
func (c *Catalog) Add(m *mpeg.Movie) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.movies[m.ID()] = m
}

// Remove deletes a movie by ID.
func (c *Catalog) Remove(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.movies, id)
}

// Get returns the movie with the given ID.
func (c *Catalog) Get(id string) (*mpeg.Movie, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.movies[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return m, nil
}

// Has reports whether the catalog holds the movie.
func (c *Catalog) Has(id string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.movies[id]
	return ok
}

// List returns the catalog's movie IDs, sorted.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.movies))
	for id := range c.movies {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of movies held.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.movies)
}

// SaveTo writes every movie in the catalog to dir, one <id>.vodm file per
// movie. This is the paper's "separate mechanism for replicating the video
// material" at its simplest: copy the files.
func (c *Catalog) SaveTo(dir string) error {
	c.mu.RLock()
	movies := make([]*mpeg.Movie, 0, len(c.movies))
	for _, m := range c.movies {
		movies = append(movies, m)
	}
	c.mu.RUnlock()
	for _, m := range movies {
		path := filepath.Join(dir, m.ID()+MovieFileExt)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("store: saving %s: %w", m.ID(), err)
		}
		_, werr := m.WriteTo(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("store: saving %s: %w", m.ID(), werr)
		}
		if cerr != nil {
			return fmt.Errorf("store: saving %s: %w", m.ID(), cerr)
		}
	}
	return nil
}

// LoadDirectory builds a catalog from every .vodm file in dir.
func LoadDirectory(dir string) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: loading %s: %w", dir, err)
	}
	c := NewCatalog()
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != MovieFileExt {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("store: opening %s: %w", path, err)
		}
		m, rerr := mpeg.ReadFrom(f)
		cerr := f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("store: parsing %s: %w", path, rerr)
		}
		if cerr != nil {
			return nil, fmt.Errorf("store: closing %s: %w", path, cerr)
		}
		c.Add(m)
	}
	return c, nil
}

// Place computes a replica placement: each movie is assigned to replicas
// servers, spread round-robin so load distributes evenly. The result maps
// movie ID to the sorted server list holding it. Place is deterministic in
// its inputs, so every node computes the same placement.
//
// With replicas = k, the service tolerates k−1 server failures per movie
// (§7: "If a movie is replicated k times, then up to k−1 failures are
// tolerated").
func Place(movies []string, servers []string, replicas int) (map[string][]string, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("store: replicas = %d, need ≥ 1", replicas)
	}
	if replicas > len(servers) {
		return nil, fmt.Errorf("store: %d replicas requested with %d servers", replicas, len(servers))
	}
	sortedMovies := append([]string(nil), movies...)
	sort.Strings(sortedMovies)
	sortedServers := append([]string(nil), servers...)
	sort.Strings(sortedServers)

	placement := make(map[string][]string, len(sortedMovies))
	for i, movie := range sortedMovies {
		replicaSet := make([]string, 0, replicas)
		for r := 0; r < replicas; r++ {
			replicaSet = append(replicaSet, sortedServers[(i+r)%len(sortedServers)])
		}
		sort.Strings(replicaSet)
		placement[movie] = replicaSet
	}
	return placement, nil
}
