package store

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpeg"
)

func testMovie(id string) *mpeg.Movie {
	return mpeg.Generate(id, mpeg.StreamConfig{Duration: time.Second, Seed: 1})
}

func TestCatalogAddGet(t *testing.T) {
	c := NewCatalog()
	m := testMovie("casablanca")
	c.Add(m)
	got, err := c.Get("casablanca")
	if err != nil || got != m {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if !c.Has("casablanca") || c.Has("ghost") {
		t.Fatal("Has() inconsistent")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCatalogGetMissing(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestCatalogRemove(t *testing.T) {
	c := NewCatalog()
	c.Add(testMovie("m"))
	c.Remove("m")
	if c.Has("m") {
		t.Fatal("movie survived Remove")
	}
}

func TestCatalogListSorted(t *testing.T) {
	c := NewCatalog()
	for _, id := range []string{"zulu", "alpha", "mike"} {
		c.Add(testMovie(id))
	}
	got := c.List()
	want := []string{"alpha", "mike", "zulu"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestPlaceBasics(t *testing.T) {
	movies := []string{"m1", "m2", "m3", "m4"}
	servers := []string{"s1", "s2", "s3"}
	pl, err := Place(movies, servers, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range movies {
		reps := pl[m]
		if len(reps) != 2 {
			t.Fatalf("movie %s has %d replicas, want 2", m, len(reps))
		}
		if reps[0] == reps[1] {
			t.Fatalf("movie %s placed twice on %s", m, reps[0])
		}
	}
}

func TestPlaceBalanced(t *testing.T) {
	movies := make([]string, 9)
	for i := range movies {
		movies[i] = string(rune('a' + i))
	}
	servers := []string{"s1", "s2", "s3"}
	pl, err := Place(movies, servers, 2)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]int{}
	for _, reps := range pl {
		for _, s := range reps {
			load[s]++
		}
	}
	for s, n := range load {
		if n != 6 { // 9 movies × 2 replicas / 3 servers
			t.Fatalf("server %s holds %d replicas, want 6 (placement unbalanced: %v)", s, n, load)
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	movies := []string{"b", "a", "c"}
	servers := []string{"s2", "s1"}
	p1, err := Place(movies, servers, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffled input order must give the same placement.
	p2, err := Place([]string{"c", "b", "a"}, []string{"s1", "s2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for m := range p1 {
		if len(p1[m]) != len(p2[m]) || p1[m][0] != p2[m][0] {
			t.Fatalf("placement not deterministic: %v vs %v", p1, p2)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place([]string{"m"}, []string{"s"}, 0); err == nil {
		t.Fatal("replicas=0 accepted")
	}
	if _, err := Place([]string{"m"}, []string{"s"}, 2); err == nil {
		t.Fatal("more replicas than servers accepted")
	}
}
