// Package server implements the paper's VoD server. Each server:
//
//   - joins the server group (clients contact the abstract group, §5.1);
//   - joins one movie group per movie it holds, multicasting its clients'
//     offsets and rates every half second (§5.2);
//   - serves each of its clients over a per-client session group (control)
//     and the unreliable video channel (frames, one per datagram);
//   - on every movie-group view change, exchanges client knowledge with
//     the other members and deterministically re-distributes the clients —
//     taking over clients assigned to it and releasing the rest (§5.2).
//
// Takeover resumes "from the offset and transmission rate that were last
// heard from the previous server": state is at most one sync period stale,
// so a taking-over server conservatively retransmits up to half a second
// of video (duplicates preferred over gaps — the paper's Figure 4b).
package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/congress"
	"repro/internal/fetch"
	"repro/internal/flowctl"
	"repro/internal/gcs"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Group naming scheme shared by servers and clients.
const (
	// ServerGroup is the group of all VoD servers.
	ServerGroup = "vod.servers"
	// movieGroupPrefix + movieID names a movie group.
	movieGroupPrefix = "vod.movie."
	// sessionGroupPrefix + clientID names a client's session group.
	sessionGroupPrefix = "vod.session."
)

// MovieGroup returns the group name for a movie.
func MovieGroup(movieID string) string { return movieGroupPrefix + movieID }

// SessionGroup returns the group name for a client.
func SessionGroup(clientID string) string { return sessionGroupPrefix + clientID }

// Config configures a Server.
type Config struct {
	// ID is the server's name and transport address.
	ID string
	// Clock and Network supply the runtime environment.
	Clock   clock.Clock
	Network transport.Network
	// Catalog holds the movies this server serves. The server joins the
	// movie group of every movie in the catalog at Start.
	Catalog *store.Catalog
	// Peers are the other (potential) servers — the contact list for the
	// server and movie groups. Peers need not be alive.
	Peers []string
	// Directory, when set, is a CONGRESS directory address: the server
	// registers itself under the server-group name there so clients can
	// discover the service without a static server list (§5.1's "the
	// client communicates with the abstract group").
	Directory string
	// MaxSessions, when positive, is the admission-control limit: Opens
	// beyond it are refused (the client tries the next server). Related
	// VoD work the paper builds on treats admission control as essential
	// for keeping QoS for admitted streams; takeovers after failures are
	// never refused — degraded service beats no service.
	MaxSessions int
	// FetchMovies lists movies this server should replicate from its
	// peers at startup (§7: "a new server can be brought up without any
	// special preparations") and then serve. Movies already in the
	// catalog are skipped; each missing movie is fetched from the first
	// peer that has it.
	FetchMovies []string
	// Overload configures the class-aware overload-control subsystem
	// (egress shaping + degrade-before-refuse admission). The zero value
	// disables it entirely: classes are then tracked but never acted on,
	// and the server behaves exactly as it did before classes existed.
	Overload OverloadConfig
	// Placement, when set, is the consistent-hash movie→server ring shared
	// by the whole deployment. Each movie group's contact list is then
	// scoped to the movie's ring owners instead of every peer, so a
	// 50-server core runs one small virtual-synchrony group per movie arc
	// rather than a full mesh. Servers not on a movie's arc fall back to
	// the full peer list for that movie.
	Placement *placement.Ring
	// Replicas is the number of ring owners per movie when Placement is
	// set (default 2) — the movie group size, hence the failure budget.
	Replicas int
	// LeaseTTL is the lifetime granted to client leases (default
	// lease.DefaultTTL). A leased client renews over direct datagrams and
	// detaches from group membership entirely; when its lease lapses the
	// session is torn down as departed.
	LeaseTTL time.Duration
	// Flow is the flow-control parameter set (DefaultParams if zero).
	Flow flowctl.Params
	// SyncInterval is the state-sync period on movie groups (default
	// 500ms, the paper's value).
	SyncInterval time.Duration
	// GCS optionally overrides group-communication timing (Clock and
	// Endpoint fields are ignored).
	GCS gcs.Config
	// StripedEgress coalesces frame pacing: instead of one timer per
	// session, sessions sharing a movie and a send period attach to one
	// striped ticker that walks them in attach order, so a server streaming
	// one title to hundreds of viewers pays one timer event per frame
	// period instead of hundreds. Admission, thinning, degrade and shaper
	// decisions are unchanged — they run per session inside the stripe walk.
	//
	// Off by default for the same reason as gcs.Config.SharedTimers: a
	// session's first frame is quantized to its stripe's next tick (at most
	// one period early versus the dedicated timer), which perturbs recorded
	// event schedules. Opt in where throughput matters more than replay
	// compatibility; with a fixed seed striped runs are themselves exactly
	// reproducible.
	StripedEgress bool
	// BroadcastFanout collapses each striped pacing beat's frame sends into
	// one batched network transmission: the stripe walk collects every
	// session's (destination, packet) pair and flushes the list through the
	// video channel's PreframedRefBatchSender in one call, so the network
	// schedules one coalesced delivery event per stripe beat instead of one
	// per viewer — encode once, deliver N. Requires StripedEgress and a
	// batch-capable transport (the mux over netsim); without either it is
	// inert and sessions send per frame as before.
	//
	// Off by default for the same replay-compatibility reason as
	// StripedEgress: a beat's frames now arrive together at the last slot of
	// the beat's serialization train (sub-millisecond late at frame scale),
	// which perturbs recorded event schedules while leaving every aggregate
	// metric byte-identical (TestTableScaleBroadcastEquivalent pins that).
	BroadcastFanout bool
	// Obs, when set, receives the server's server.* counters and trace
	// events, and is forwarded to the embedded GCS process.
	Obs *obs.Registry
}

// OverloadConfig tunes the degrade-before-refuse overload ladder. It only
// takes effect when at least one of its levers is set; every field has a
// sensible default so enabling a single lever is enough.
//
// The ladder, from mildest to harshest (reserved viewers are touched only by
// the last rung, and takeover bypasses all of them):
//
//  1. shed best-effort quality: at DegradeSessions sessions, or whenever the
//     egress bucket is under pressure, best-effort streams are thinned to
//     DegradeFPS (I frames always pass, same as a client quality request);
//  2. throttle best-effort frames: with ShapeRate set, a best-effort frame
//     needs bucket tokens to leave; when the bucket is dry the frame waits
//     and retries — stretched spacing, never a dropped offset;
//  3. refuse best-effort Opens: at BestEffortSessions total sessions, new
//     best-effort Opens are refused with a Retry-After hint;
//  4. refuse reserved Opens: only at MaxSessions — truly full.
type OverloadConfig struct {
	// ShapeRate is the egress token-bucket refill rate in bytes/s. Zero
	// disables shaping (rungs 1–3 can still act on session counts).
	ShapeRate int64
	// ShapeBurst is the bucket depth in bytes (default ShapeRate/4).
	ShapeBurst int64
	// BestEffortSessions is the total session count at which new
	// best-effort Opens are refused. Zero means best-effort admits up to
	// MaxSessions like everyone else.
	BestEffortSessions int
	// DegradeSessions is the total session count at which best-effort
	// streams are thinned to DegradeFPS. Zero means thinning is driven by
	// shaper pressure alone.
	DegradeSessions int
	// DegradeFPS is the thinned best-effort frame rate (default 10).
	DegradeFPS uint16
	// RetryAfter is the hint attached to best-effort refusals (default 1s).
	RetryAfter time.Duration
}

// enabled reports whether any overload lever is configured.
func (oc *OverloadConfig) enabled() bool {
	return oc.ShapeRate > 0 || oc.BestEffortSessions > 0 || oc.DegradeSessions > 0
}

func (oc *OverloadConfig) fillDefaults() error {
	if !oc.enabled() {
		return nil
	}
	if oc.DegradeFPS == 0 {
		oc.DegradeFPS = 10
	}
	if oc.RetryAfter <= 0 {
		oc.RetryAfter = time.Second
	}
	if oc.ShapeRate > 0 {
		p := flowctl.ShaperParams{Rate: oc.ShapeRate, Burst: oc.ShapeBurst}
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Config) fillDefaults() error {
	if c.ID == "" || c.Clock == nil || c.Network == nil || c.Catalog == nil {
		return fmt.Errorf("server: ID, Clock, Network and Catalog are required")
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 500 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = lease.DefaultTTL
	}
	if c.Flow.CombinedCapacity == 0 {
		c.Flow = flowctl.DefaultParams()
	}
	if err := c.Flow.Validate(); err != nil {
		return err
	}
	if err := c.Overload.fillDefaults(); err != nil {
		return err
	}
	return nil
}

// Stats are the server's cumulative counters, used by the experiment
// harness (sync-overhead accounting, takeover counts).
type Stats struct {
	FramesSent     uint64 // video frames transmitted
	VideoBytes     uint64 // video payload bytes transmitted (incl. headers)
	SyncMessages   uint64 // state-sync multicasts sent
	SyncBytes      uint64 // state-sync payload bytes sent
	SessionsOpened uint64 // sessions started by client request
	Takeovers      uint64 // sessions adopted from another server
	Releases       uint64 // sessions handed to another server
	Emergencies    uint64 // emergency boosts granted
	FramesThinned  uint64 // frames withheld by quality adjustment

	// Overload-control counters (all zero unless Config.Overload is set or
	// best-effort clients show up).
	AdmitsReserved     uint64 // reserved-class sessions admitted via Open
	AdmitsBestEffort   uint64 // best-effort sessions admitted via Open
	RefusalsReserved   uint64 // reserved Opens refused (truly full)
	RefusalsBestEffort uint64 // best-effort Opens refused (near capacity)
	ShedTokens         uint64 // best-effort frame sends deferred by the shaper
	DegradedFrames     uint64 // best-effort frames withheld by degrade thinning
}

// Server is one VoD server instance.
type Server struct {
	cfg  Config
	mux  *transport.Mux
	proc *gcs.Process
	vid  transport.Endpoint
	// vidPre is vid's preframed fast path (non-nil for mux channels, i.e.
	// always in practice): sessions send shared packet-table slices through
	// it without any per-frame build or copy.
	vidPre transport.PreframedSender
	// vidPreRef and vidResolve are vid's resolved-destination fast path
	// (non-nil when the underlying network interns addresses, i.e. netsim):
	// each session resolves its client address once at start and every frame
	// send afterwards skips the address-string hash.
	vidPreRef  transport.PreframedRefSender
	vidResolve transport.RefResolver
	// vidBatch is vid's batched fan-out path (non-nil over netsim): one call
	// delivers a whole stripe beat's frames. Used only under
	// Config.BroadcastFanout.
	vidBatch transport.PreframedRefBatchSender
	// atCapacityMsg is the admission-refusal error, formatted once instead
	// of per refused Open — a refusal storm is exactly when the server is
	// busiest.
	atCapacityMsg string
	// beCapacityMsg is the best-effort refusal error (degrade-before-refuse
	// rung 3); equals atCapacityMsg when no separate best-effort limit is
	// configured.
	beCapacityMsg string
	// retryAfterMs is the Retry-After hint attached to best-effort
	// refusals; zero when overload control is disabled.
	retryAfterMs uint32
	// shaper is the egress token bucket (nil unless Overload.ShapeRate is
	// set). Guarded by mu, like the sessions that draw from it.
	shaper *flowctl.Shaper

	mu          sync.Mutex
	started     bool
	closed      bool
	serverGroup *gcs.Member
	movies      map[string]*movieState // by movie ID
	sessions    map[string]*session    // by client ID
	registrar   *congress.Registrar
	provider    *fetch.Provider
	fetcher     *fetch.Fetcher
	stats       Stats
	ctr         serverCounters
	// classes counts live sessions per traffic class (index by classIdx).
	classes [2]int

	// leases tracks the liveness of leased clients. Created lazily on the
	// first leased admission: its sweep Periodic would otherwise perturb
	// the virtual clock's timer free-list order and break byte-identical
	// replay of scenarios that never use leases.
	leases *lease.Table
	// renewScratch/ackScratch/ackBuf are the renew hot path's decode and
	// encode reuse (one renew per client per TTL/3), guarded by mu.
	renewScratch lease.Renew
	ackScratch   lease.Ack
	ackBuf       []byte

	// syncIntern dedups the strings decoded from peers' state-sync messages:
	// the same client IDs and addresses arrive every half second for the
	// whole session, so only the first sighting of each allocates. Guarded by
	// syncMu, not mu — decoding happens on the GCS delivery path before the
	// deferred merge takes mu.
	syncMu     sync.Mutex
	syncIntern wire.Intern

	// stripes holds the coalesced pacing tickers of Config.StripedEgress,
	// one per (movie, send period) with at least one attached session.
	// Guarded by mu; nil until the first attach.
	stripes map[stripeKey]*stripe

	// The broadcast collector (Config.BroadcastFanout): while txCollect is
	// set — only for the duration of one stripe walk — paceTickLocked
	// appends each frame send here instead of transmitting, and the stripe
	// flushes the whole batch in one network call after the walk. The
	// slices keep their capacity across beats, so a warm beat collects and
	// flushes without allocating. Guarded by mu.
	txCollect bool
	txDsts    []transport.AddrRef
	txPkts    [][]byte
}

// classIdx maps a traffic class to its index in per-class arrays.
func classIdx(c wire.Class) int {
	if c == wire.ClassBestEffort {
		return 1
	}
	return 0
}

// serverCounters mirrors Stats into the observability registry so the
// debug endpoint and scenario snapshots see live values; resolved once at
// New so each update is a single atomic add.
type serverCounters struct {
	sessionsOpened *obs.Counter
	takeovers      *obs.Counter
	releases       *obs.Counter
	framesSent     *obs.Counter
	videoBytes     *obs.Counter
	framesThinned  *obs.Counter
	emergencies    *obs.Counter
	syncMessages   *obs.Counter
	syncBytes      *obs.Counter
	activeSessions *obs.Gauge

	// Per-class overload counters. Resolved from a nil registry (working
	// but unregistered counters) when overload control is disabled, so
	// snapshots and the obs table stay byte-identical for clusters that
	// never use classes.
	admitsReserved     *obs.Counter
	admitsBestEffort   *obs.Counter
	refusalsReserved   *obs.Counter
	refusalsBestEffort *obs.Counter
	shedTokens         *obs.Counter
	degradedFrames     *obs.Counter
}

// New creates a server. Call Start to bring it online.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ep, err := cfg.Network.NewEndpoint(transport.Addr(cfg.ID))
	if err != nil {
		return nil, fmt.Errorf("server %s: %w", cfg.ID, err)
	}
	mux := transport.NewMux(ep)

	gcfg := cfg.GCS
	gcfg.Clock = cfg.Clock
	gcfg.Endpoint = mux.Channel(transport.ChannelGCS)
	gcfg.Obs = cfg.Obs
	s := &Server{
		cfg:        cfg,
		mux:        mux,
		proc:       gcs.NewProcess(gcfg),
		vid:        mux.Channel(transport.ChannelVideo),
		movies:     make(map[string]*movieState),
		sessions:   make(map[string]*session),
		syncIntern: wire.Intern{},
		ctr: serverCounters{
			sessionsOpened: cfg.Obs.Counter("server.sessions_opened"),
			takeovers:      cfg.Obs.Counter("server.takeovers"),
			releases:       cfg.Obs.Counter("server.releases"),
			framesSent:     cfg.Obs.Counter("server.frames_sent"),
			videoBytes:     cfg.Obs.Counter("server.video_bytes"),
			framesThinned:  cfg.Obs.Counter("server.frames_thinned"),
			emergencies:    cfg.Obs.Counter("server.emergency_boosts"),
			syncMessages:   cfg.Obs.Counter("server.sync_messages"),
			syncBytes:      cfg.Obs.Counter("server.sync_bytes"),
			activeSessions: cfg.Obs.Gauge("server.active_sessions"),
		},
	}
	// The per-class counters register only when overload control is on; a
	// nil registry still hands out functioning (unregistered) counters, so
	// the increment sites need no gating of their own.
	oreg := cfg.Obs
	if !cfg.Overload.enabled() {
		oreg = nil
	}
	s.ctr.admitsReserved = oreg.Counter("server.admits_reserved")
	s.ctr.admitsBestEffort = oreg.Counter("server.admits_best_effort")
	s.ctr.refusalsReserved = oreg.Counter("server.refusals_reserved")
	s.ctr.refusalsBestEffort = oreg.Counter("server.refusals_best_effort")
	s.ctr.shedTokens = oreg.Counter("server.shed_tokens")
	s.ctr.degradedFrames = oreg.Counter("server.degraded_frames")
	s.vidPre, _ = s.vid.(transport.PreframedSender)
	s.vidPreRef, _ = s.vid.(transport.PreframedRefSender)
	s.vidResolve, _ = s.vid.(transport.RefResolver)
	if cfg.BroadcastFanout {
		s.vidBatch, _ = s.vid.(transport.PreframedRefBatchSender)
	}
	if cfg.MaxSessions > 0 {
		s.atCapacityMsg = fmt.Sprintf("server %s at capacity (%d sessions)", cfg.ID, cfg.MaxSessions)
	}
	s.beCapacityMsg = s.atCapacityMsg
	if cfg.Overload.enabled() {
		s.retryAfterMs = uint32(cfg.Overload.RetryAfter.Milliseconds())
		if be := cfg.Overload.BestEffortSessions; be > 0 {
			s.beCapacityMsg = fmt.Sprintf("server %s best-effort capacity (%d sessions)", cfg.ID, be)
		}
		if cfg.Overload.ShapeRate > 0 {
			s.shaper = flowctl.NewShaper(cfg.Clock.Now, flowctl.ShaperParams{
				Rate:  cfg.Overload.ShapeRate,
				Burst: cfg.Overload.ShapeBurst,
			})
		}
	}
	return s, nil
}

// ID returns the server's identifier.
func (s *Server) ID() string { return s.cfg.ID }

// Start joins the server group and the movie groups for every movie in the
// catalog, making the server available to clients.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server %s: already started or closed", s.cfg.ID)
	}
	s.started = true
	movieIDs := s.cfg.Catalog.List()
	s.mu.Unlock()

	contacts := make([]gcs.ProcessID, 0, len(s.cfg.Peers))
	for _, p := range s.cfg.Peers {
		if p != s.cfg.ID {
			contacts = append(contacts, transport.Addr(p))
		}
	}

	// Leased clients speak to their server over direct datagrams (renews,
	// flow control, VCR). Legacy clients never Send to a server, so the
	// handler is inert for them.
	s.proc.SetDirectHandler(s.onDirect)

	sg, err := s.proc.Join(ServerGroup, gcs.Handlers{
		OnMessage: s.onServerGroupMessage,
	}, contacts...)
	if err != nil {
		return fmt.Errorf("server %s: joining server group: %w", s.cfg.ID, err)
	}
	s.mu.Lock()
	s.serverGroup = sg
	s.mu.Unlock()

	for _, id := range movieIDs {
		if err := s.serveMovie(id, s.movieContacts(id, contacts)); err != nil {
			return err
		}
	}

	// Serve replication requests from peers, and fetch whatever movies we
	// were asked to serve but do not hold.
	s.provider = fetch.NewProvider(s.cfg.Catalog,
		s.mux.Channel(transport.ChannelBulk), s.mux.Channel(transport.ChannelBulkReply), s.cfg.Obs)
	s.fetcher = fetch.NewFetcher(s.cfg.Clock,
		s.mux.Channel(transport.ChannelBulk), s.mux.Channel(transport.ChannelBulkReply), s.cfg.Obs)
	var missing []string
	for _, id := range s.cfg.FetchMovies {
		if !s.cfg.Catalog.Has(id) {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		s.later(func() { s.fetchNext(missing, contacts, 0) })
	}

	if s.cfg.Directory != "" {
		reg := congress.NewRegistrar(
			s.cfg.Clock,
			s.mux.Channel(transport.ChannelDirectory),
			transport.Addr(s.cfg.Directory),
			ServerGroup,
			transport.Addr(s.cfg.ID),
			0, // default TTL
		)
		s.mu.Lock()
		s.registrar = reg
		s.mu.Unlock()
	}
	return nil
}

// movieContacts scopes a movie group's contact list to the movie's ring
// owners when a placement ring is configured: only the owners of the arc
// need virtual synchrony for the movie, so group size — and with it sync
// fan-out, flush cost and view-change blast radius — stays at Replicas no
// matter how many servers the deployment runs. Without a ring (or for a
// movie served off-arc) the full peer list is used, as before.
func (s *Server) movieContacts(movieID string, all []gcs.ProcessID) []gcs.ProcessID {
	r := s.cfg.Placement
	if r == nil || r.Len() == 0 {
		return all
	}
	owners := r.LookupN(movieID, s.cfg.Replicas)
	onArc := false
	contacts := make([]gcs.ProcessID, 0, len(owners))
	for _, o := range owners {
		if o == s.cfg.ID {
			onArc = true
			continue
		}
		contacts = append(contacts, transport.Addr(o))
	}
	if !onArc {
		return all
	}
	return contacts
}

// serveMovie joins the movie's group and starts its sync task.
func (s *Server) serveMovie(movieID string, contacts []gcs.ProcessID) error {
	movie, err := s.cfg.Catalog.Get(movieID)
	if err != nil {
		return err
	}
	ms := &movieState{
		srv:     s,
		movie:   movie,
		clients: make(map[string]wire.ClientRecord),
	}
	member, err := s.proc.Join(MovieGroup(movieID), gcs.Handlers{
		OnView:    func(v gcs.View) { s.later(func() { ms.onView(v) }) },
		OnMessage: func(_ string, from gcs.ProcessID, payload []byte) { s.onMovieGroupMessage(ms, from, payload) },
	}, contacts...)
	if err != nil {
		return fmt.Errorf("server %s: joining movie group %s: %w", s.cfg.ID, movieID, err)
	}
	s.mu.Lock()
	ms.member = member
	ms.syncTask = clock.Every(s.cfg.Clock, s.cfg.SyncInterval, func() { ms.syncTick() })
	s.movies[movieID] = ms
	s.mu.Unlock()
	return nil
}

// later schedules f on the clock, off any caller's locks — the trampoline
// that keeps GCS callbacks, timers and server state changes on one simple
// locking level.
func (s *Server) later(f func()) {
	s.cfg.Clock.AfterFunc(0, f)
}

// noteSessionsLocked refreshes the active-session gauge; called wherever
// the sessions map changes size. Caller holds s.mu.
func (s *Server) noteSessionsLocked() {
	s.ctr.activeSessions.Set(int64(len(s.sessions)))
}

// Stop takes the server offline abruptly — equivalent to a crash as far as
// peers are concerned, except sessions stop transmitting immediately.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Stop in client-ID order: stopLocked releases pooled timers, and the
	// virtual clock's free list hands them back out in release order, so
	// map order here would leak into later timer identity (and event
	// ordering) in otherwise seed-deterministic simulations.
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sess := s.sessions[id]
		sess.stopLocked()
		s.recycleSessionLocked(sess)
	}
	s.sessions = make(map[string]*session)
	s.classes = [2]int{}
	// Stripe tickers stop in sorted key order for the same free-list
	// determinism reason the sessions above stop in client-ID order.
	if len(s.stripes) > 0 {
		keys := make([]stripeKey, 0, len(s.stripes))
		for k := range s.stripes {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].movie != keys[j].movie {
				return keys[i].movie < keys[j].movie
			}
			if keys[i].period != keys[j].period {
				return keys[i].period < keys[j].period
			}
			return keys[i].phase < keys[j].phase
		})
		for _, k := range keys {
			s.stripes[k].task.Stop()
		}
		s.stripes = nil
	}
	for _, ms := range s.movies {
		if ms.syncTask != nil {
			ms.syncTask.Stop()
		}
	}
	if s.leases != nil {
		s.leases.Close()
	}
	reg := s.registrar
	s.mu.Unlock()
	if reg != nil {
		reg.Stop()
	}
	s.proc.Close()
	_ = s.mux.Close()
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ClassSessions returns the live session count per traffic class.
func (s *Server) ClassSessions() (reserved, bestEffort int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.classes[0], s.classes[1]
}

// degradeFPSLocked returns the quality cap to impose on best-effort streams
// right now: nonzero when the session count has crossed the degrade rung or
// the egress bucket is under pressure, zero when best effort runs at full
// quality. Caller holds s.mu.
func (s *Server) degradeFPSLocked() uint16 {
	oc := &s.cfg.Overload
	if ds := oc.DegradeSessions; ds > 0 && len(s.sessions) >= ds {
		return oc.DegradeFPS
	}
	if s.shaper != nil && s.shaper.UnderPressure() {
		return oc.DegradeFPS
	}
	return 0
}

// dropSessionLocked is the single teardown path for a live session: stop it,
// remove it from the session table, keep the per-class census honest, and
// recycle the record. Caller holds s.mu.
func (s *Server) dropSessionLocked(sess *session) {
	sess.stopLocked()
	delete(s.sessions, sess.rec.ClientID)
	if sess.rec.Leased && s.leases != nil {
		s.leases.Drop(sess.rec.ClientID)
	}
	s.classes[classIdx(sess.rec.Class)]--
	s.recycleSessionLocked(sess)
	s.noteSessionsLocked()
}

// ActiveSessions returns the IDs of clients this server currently serves,
// for harness assertions ("each client is served by exactly one server").
func (s *Server) ActiveSessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	return out
}

// openEvent defers one decoded Open onto the clock and carries the scratch
// for its reply. Under over-capacity load every client retries its Open on
// a timer, so the open/refuse cycle is a steady-state hot path: the pool
// plus the decode-into/encode-from scratch makes a warm refusal cycle
// allocation-free on the server side.
type openEvent struct {
	s     *Server
	from  gcs.ProcessID
	open  wire.Open
	reply wire.OpenReply
	enc   wire.Encoder
	fire  func() // bound once to run
}

var openEventPool sync.Pool

func init() {
	// New assigned here, not in the composite literal, so fire can refer to
	// the pool's own element without an initialization cycle.
	openEventPool.New = func() any {
		e := &openEvent{}
		e.fire = e.run
		return e
	}
}

func (e *openEvent) run() {
	s := e.s
	s.handleOpen(e)
	e.s = nil
	openEventPool.Put(e)
}

// onServerGroupMessage handles messages on the server group — notably the
// Open anycasts from clients contacting the abstract VoD service.
func (s *Server) onServerGroupMessage(_ string, from gcs.ProcessID, payload []byte) {
	if len(payload) == 0 || wire.Kind(payload[0]) != wire.KindOpen {
		return
	}
	e := openEventPool.Get().(*openEvent)
	// The anycast payload aliases the transport receive buffer, so it must
	// be decoded (copied) before the deferral; DecodeOpenInto keeps the
	// event's previous strings when a retry resends the same values.
	if err := wire.DecodeOpenInto(&e.open, payload); err != nil {
		openEventPool.Put(e)
		return
	}
	e.s, e.from = s, from
	s.cfg.Clock.AfterFunc(0, e.fire)
}

// handleOpen starts a session for a requesting client, or tells it to try
// elsewhere if this server does not hold the movie. It runs deferred via
// openEvent.fire; the event supplies both the decoded Open and the reply
// scratch (safe because gcs Send copies the packet before returning).
func (s *Server) handleOpen(e *openEvent) {
	from, open := e.from, &e.open
	movie, err := s.cfg.Catalog.Get(open.Movie)
	if err != nil {
		e.reply = wire.OpenReply{OK: false, Error: err.Error(), Movie: open.Movie}
		_ = s.proc.Send(from, e.enc.Encode(&e.reply))
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	_, servedHere := s.sessions[open.ClientID]
	servedElsewhere := false
	var elseRec wire.ClientRecord
	if ms := s.movies[open.Movie]; ms != nil && !servedHere {
		// A retried Open (lost reply) may reach a second server after the
		// first one already started serving; the knowledge table knows.
		if rec, known := ms.clients[open.ClientID]; known && !rec.Departed {
			servedElsewhere = true
			elseRec = rec
		}
	}
	// A leased takeover adopts the client from the knowledge table: its
	// server went silent (lease keeper starved), so it re-anycast the Open
	// with the takeover flag and whichever live owner holds the movie
	// resumes from the last-heard offset. Like view-change takeover, this
	// bypasses admission — degraded service beats no service.
	adopt := open.Lease && open.Takeover && servedElsewhere
	if open.Lease && servedElsewhere && !adopt {
		// Plain lease retry that raced its own reply to a second server:
		// refuse briefly instead of double-streaming; the client keeps
		// cycling the owner list and re-reaches its real server.
		s.mu.Unlock()
		e.reply = wire.OpenReply{
			OK:           false,
			Error:        "session active elsewhere",
			Movie:        open.Movie,
			RetryAfterMs: 250,
		}
		_ = s.proc.Send(from, e.enc.Encode(&e.reply))
		return
	}
	if !servedHere && !servedElsewhere {
		// Degrade-before-refuse admission ladder: best-effort Opens hit
		// their (lower) limit first and carry a Retry-After hint; reserved
		// Opens are refused only when the server is truly full. Takeover
		// never comes through here and bypasses admission entirely.
		limit := s.cfg.MaxSessions
		msg, retry := s.atCapacityMsg, uint32(0)
		if open.Class == wire.ClassBestEffort {
			if be := s.cfg.Overload.BestEffortSessions; be > 0 && (limit == 0 || be < limit) {
				limit = be
			}
			msg, retry = s.beCapacityMsg, s.retryAfterMs
		}
		if limit > 0 && len(s.sessions) >= limit {
			if open.Class == wire.ClassBestEffort {
				s.stats.RefusalsBestEffort++
				s.ctr.refusalsBestEffort.Inc()
			} else {
				s.stats.RefusalsReserved++
				s.ctr.refusalsReserved.Inc()
			}
			s.mu.Unlock()
			e.reply = wire.OpenReply{
				OK:           false,
				Error:        msg,
				Movie:        open.Movie,
				RetryAfterMs: retry,
			}
			_ = s.proc.Send(from, e.enc.Encode(&e.reply))
			return
		}
	}
	switch {
	case servedHere:
		// Duplicate open (client retry); just re-send the reply below.
		if open.Lease {
			if sess := s.sessions[open.ClientID]; sess != nil && sess.rec.Leased {
				s.leasesLocked().Touch(open.ClientID)
			}
		}
	case servedElsewhere && !adopt:
		// Duplicate open (lost reply reached a second server); the peer
		// keeps the session — just re-send the reply below. Leased opens
		// never get here: they were refused above or adopt below.
	case adopt:
		rec := elseRec
		rec.ClientAddr = open.ClientAddr
		rec.Leased = true
		s.startSessionLocked(rec, movie, true)
		s.leasesLocked().Touch(rec.ClientID)
		s.stats.Takeovers++
		s.ctr.takeovers.Inc()
		s.cfg.Obs.Event("server.lease_takeover", open.ClientID+" movie="+open.Movie)
	default:
		rec := wire.ClientRecord{
			ClientID:   open.ClientID,
			ClientAddr: open.ClientAddr,
			Offset:     0,
			Rate:       uint16(movie.FPS()),
			Class:      open.Class,
			Leased:     open.Lease,
		}
		s.startSessionLocked(rec, movie, false)
		if open.Lease {
			s.leasesLocked().Touch(rec.ClientID)
		}
		s.stats.SessionsOpened++
		s.ctr.sessionsOpened.Inc()
		if open.Class == wire.ClassBestEffort {
			s.stats.AdmitsBestEffort++
			s.ctr.admitsBestEffort.Inc()
		} else {
			s.stats.AdmitsReserved++
			s.ctr.admitsReserved.Inc()
		}
		s.cfg.Obs.Event("server.session_open", open.ClientID+" movie="+open.Movie)
	}
	ms := s.movies[open.Movie]
	group := ""
	if sess := s.sessions[open.ClientID]; sess != nil {
		group = sess.group // precomputed at session start
	}
	ttlMs := uint32(0)
	if open.Lease {
		ttlMs = uint32(s.cfg.LeaseTTL.Milliseconds())
	}
	s.mu.Unlock()
	if group == "" { // served elsewhere: no local session to borrow from
		group = SessionGroup(open.ClientID)
	}

	e.reply = wire.OpenReply{
		OK:           true,
		Movie:        open.Movie,
		TotalFrames:  uint32(movie.TotalFrames()),
		FPS:          uint16(movie.FPS()),
		SessionGroup: group,
		LeaseTTLMs:   ttlMs,
	}
	_ = s.proc.Send(from, e.enc.Encode(&e.reply))

	// Tell the movie group about the new client right away, shrinking the
	// window in which a crash would orphan it.
	if ms != nil {
		s.later(ms.syncTick)
	}
}
