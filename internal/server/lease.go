package server

import (
	"repro/internal/gcs"
	"repro/internal/lease"
	"repro/internal/wire"
)

// This file is the server half of the two-tier membership split: leased
// clients are not group members at all. Their control plane — lease
// renewals, flow control, VCR — arrives as direct datagrams on the GCS
// process, and their liveness is a lease table instead of a failure
// detector. Frames were always sent point-to-point, so the video path is
// untouched.

// leasesLocked returns the lease table, creating it on first use. Lazy so
// that deployments without leased clients schedule no sweep timer — an
// extra Periodic would reorder the virtual clock's pooled timer records
// and break byte-identical replay of pre-lease scenarios. Caller holds
// s.mu.
func (s *Server) leasesLocked() *lease.Table {
	if s.leases == nil {
		s.leases = lease.NewTable(s.cfg.Clock, s.cfg.LeaseTTL, s.onLeaseExpire)
	}
	return s.leases
}

// onLeaseExpire tears down a leased session whose client went silent — the
// lease-tier analogue of the failure detector expelling a member. The
// tombstone tells the movie group the client is gone; if the client is in
// fact alive it will re-anycast its Open (takeover) and be adopted afresh.
func (s *Server) onLeaseExpire(clientID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	sess := s.sessions[clientID]
	if sess == nil || sess.closed || !sess.rec.Leased {
		return
	}
	sess.rec.Departed = true
	if ms := s.movies[sess.movie.ID()]; ms != nil {
		ms.noteDepartedLocked(sess.rec)
	}
	s.dropSessionLocked(sess)
	s.cfg.Obs.Event("server.lease_expired", clientID)
}

// onDirect handles point-to-point datagrams sent to this server: the
// leased-client control plane. The lease kinds (0x11+) and the wire
// message kinds (1–6) are disjoint, so one byte routes.
func (s *Server) onDirect(from gcs.ProcessID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case lease.KindRenew:
		s.handleRenew(from, payload)
	case byte(wire.KindFlowControl), byte(wire.KindVCR):
		s.handleDirectCtl(payload)
	}
}

// handleRenew refreshes a leased client's lease and acks. Renews for
// unknown, closed or unleased sessions are silently dropped: the client's
// keeper starves and re-anycasts its Open, which is the takeover path.
// The decode/encode scratch makes the steady state allocation-free.
func (s *Server) handleRenew(from gcs.ProcessID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.leases == nil {
		return
	}
	msg := &s.renewScratch
	if err := lease.DecodeRenewInto(msg, payload); err != nil {
		return
	}
	sess := s.sessions[msg.ClientID]
	if sess == nil || sess.closed || !sess.rec.Leased {
		return
	}
	s.leases.Touch(sess.rec.ClientID)
	s.ackScratch.ClientID = sess.rec.ClientID
	s.ackScratch.Seq = msg.Seq
	s.ackScratch.TTLMs = uint32(s.leases.TTL().Milliseconds())
	pkt := lease.AppendAck(s.ackBuf[:0], &s.ackScratch)
	s.ackBuf = pkt[:0]
	// Send under s.mu: the gcs process lock nests strictly inside it
	// (callbacks run lock-free, so the reverse order never occurs), and
	// pkt aliases ackBuf, which the next renew reuses.
	_ = s.proc.Send(from, pkt)
}

// handleDirectCtl routes a leased client's FlowControl or VCR datagram
// into the same per-session logic the session-group path uses. The client
// ID is peeked without allocating; the map lookup by byte slice compiles
// allocation-free.
func (s *Server) handleDirectCtl(payload []byte) {
	id := peekClientID(payload)
	if id == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[string(id)]
	if sess == nil || sess.closed || !sess.rec.Leased {
		return
	}
	s.sessionCtlLocked(sess, sess.rec.ClientID, payload)
}

// peekClientID returns the leading ClientID field of a framed FlowControl
// or VCR message, aliasing the payload.
func peekClientID(payload []byte) []byte {
	r := wire.NewReader(payload)
	r.U8()
	id := r.StringBytes()
	if r.Err() != nil || len(id) == 0 {
		return nil
	}
	return id
}
