package server_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/gcs"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// rig assembles servers and clients on a simulated network.
type rig struct {
	t       *testing.T
	clk     *clock.Virtual
	net     *netsim.Network
	movie   *mpeg.Movie
	peers   []string
	servers map[string]*server.Server
	clients map[string]*client.Client
}

func newRig(t *testing.T, prof netsim.Profile, peers ...string) *rig {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	return &rig{
		t:   t,
		clk: clk,
		net: netsim.New(clk, 11, prof),
		movie: mpeg.Generate("casablanca", mpeg.StreamConfig{
			Duration: 60 * time.Second,
			Seed:     1,
		}),
		peers:   peers,
		servers: make(map[string]*server.Server),
		clients: make(map[string]*client.Client),
	}
}

func (r *rig) startServer(id string) *server.Server {
	r.t.Helper()
	cat := store.NewCatalog()
	cat.Add(r.movie)
	s, err := server.New(server.Config{
		ID:      id,
		Clock:   r.clk,
		Network: r.net,
		Catalog: cat,
		Peers:   r.peers,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		r.t.Fatal(err)
	}
	r.servers[id] = s
	return s
}

func (r *rig) startClient(id string, servers ...string) *client.Client {
	r.t.Helper()
	c, err := client.New(client.Config{
		ID:      id,
		Clock:   r.clk,
		Network: r.net,
		Servers: servers,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	r.clients[id] = c
	return c
}

func (r *rig) run(d time.Duration) { r.clk.Advance(d) }

// servingCount returns how many live servers hold a session for clientID.
func (r *rig) servingCount(clientID string) int {
	n := 0
	for _, s := range r.servers {
		for _, id := range s.ActiveSessions() {
			if id == clientID {
				n++
			}
		}
	}
	return n
}

func TestOpenAndStream(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	r.run(time.Second)
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(10 * time.Second)

	if got := c.State(); got != client.StateWatching {
		t.Fatalf("client state = %v, want watching", got)
	}
	cnt := c.Counters()
	// ~10s at 30fps minus startup; the client must be displaying smoothly.
	if cnt.Displayed < 250 {
		t.Fatalf("displayed %d frames in 10s, want ≥ 250", cnt.Displayed)
	}
	if cnt.GapSkipped != 0 {
		t.Fatalf("skipped %d frames on a loss-free LAN", cnt.GapSkipped)
	}
	if cnt.Stalls > 5 {
		t.Fatalf("%d display stalls on a loss-free LAN", cnt.Stalls)
	}
	if c.TotalFrames() != uint32(r.movie.TotalFrames()) {
		t.Fatalf("TotalFrames = %d, want %d", c.TotalFrames(), r.movie.TotalFrames())
	}
}

func TestBufferReachesSteadyState(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(25 * time.Second)

	occ := c.Occupancy()
	// §6.1.2: occupancy oscillates between the water marks (54..65
	// combined) once steady.
	if occ.CombinedFrames < 40 || occ.CombinedFrames > 74 {
		t.Fatalf("combined occupancy after 25s = %d, want near water marks", occ.CombinedFrames)
	}
	if occ.HardwareBytes == 0 {
		t.Fatal("hardware buffer empty at steady state")
	}
}

func TestCrashFailover(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startServer("s1")
	r.startServer("s2")
	r.run(2 * time.Second) // let the movie group form

	c := r.startClient("c1", "s1", "s2")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(15 * time.Second) // steady state

	// Find and kill the serving server.
	var serving, other string
	for id, s := range r.servers {
		if len(s.ActiveSessions()) == 1 {
			serving = id
		} else {
			other = id
		}
	}
	if serving == "" {
		t.Fatal("no server is serving the client")
	}
	before := c.Counters()
	r.servers[serving].Stop()
	r.net.Crash(transport.Addr(serving))
	r.run(10 * time.Second)

	// The survivor must have taken over.
	if n := len(r.servers[other].ActiveSessions()); n != 1 {
		t.Fatalf("survivor has %d sessions, want 1", n)
	}
	after := c.Counters()
	displayedDuring := after.Displayed - before.Displayed
	// 10s at 30fps = 300 frames; with ~1s irregularity the client should
	// still display the vast majority.
	if displayedDuring < 250 {
		t.Fatalf("displayed only %d frames across the failover", displayedDuring)
	}
	// Takeover re-transmits ≤ one sync period of frames: duplicates are
	// expected ("late"), but bounded.
	lateDuring := after.Late - before.Late
	if lateDuring == 0 {
		t.Log("no duplicate frames at takeover (very fresh sync); acceptable")
	}
	if lateDuring > 40 {
		t.Fatalf("%d late frames at takeover, want ≤ 40 (≈ one sync period + jitter)", lateDuring)
	}
	if r.servingCount("c1") != 1 {
		t.Fatalf("client served by %d servers after failover", r.servingCount("c1"))
	}
}

func TestLoadBalanceMigration(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startServer("s1")
	c := r.startClient("c1", "s1", "s2")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(15 * time.Second)
	if n := len(r.servers["s1"].ActiveSessions()); n != 1 {
		t.Fatalf("s1 has %d sessions before LB, want 1", n)
	}

	// Bring up a fresh server: the newcomer must absorb the client.
	r.startServer("s2")
	r.run(5 * time.Second)

	if n := len(r.servers["s2"].ActiveSessions()); n != 1 {
		t.Fatalf("newcomer s2 has %d sessions after LB, want 1", n)
	}
	if n := len(r.servers["s1"].ActiveSessions()); n != 0 {
		t.Fatalf("s1 still has %d sessions after LB", n)
	}
	if got := r.servers["s1"].Stats().Releases; got != 1 {
		t.Fatalf("s1 releases = %d, want 1", got)
	}
	if got := r.servers["s2"].Stats().Takeovers; got != 1 {
		t.Fatalf("s2 takeovers = %d, want 1", got)
	}
	// Playback must continue across the migration.
	before := c.Counters().Displayed
	r.run(5 * time.Second)
	if got := c.Counters().Displayed - before; got < 130 {
		t.Fatalf("displayed %d frames after migration, want ≥ 130", got)
	}
}

func TestManyClientsBalanced(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startServer("s1")
	r.startServer("s2")
	r.run(2 * time.Second)
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("c%d", i)
		c := r.startClient(id, "s1", "s2")
		if err := c.Watch("casablanca"); err != nil {
			t.Fatal(err)
		}
		r.run(100 * time.Millisecond)
	}
	r.run(5 * time.Second)
	for i := 0; i < 6; i++ {
		if n := r.servingCount(fmt.Sprintf("c%d", i)); n != 1 {
			t.Fatalf("client c%d served by %d servers", i, n)
		}
	}
	// Crash one server: all six clients must end up on the survivor.
	r.servers["s1"].Stop()
	r.net.Crash("s1")
	r.run(5 * time.Second)
	if n := len(r.servers["s2"].ActiveSessions()); n != 6 {
		t.Fatalf("survivor has %d sessions, want 6", n)
	}
}

func TestVCRPauseResume(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(10 * time.Second)

	if err := c.Pause(); err != nil {
		t.Fatal(err)
	}
	r.run(time.Second) // control + in-flight frames settle
	displayedAtPause := c.Counters().Displayed
	framesSentAtPause := r.servers["s1"].Stats().FramesSent
	r.run(5 * time.Second)
	if got := c.Counters().Displayed; got != displayedAtPause {
		t.Fatalf("displayed %d frames while paused", got-displayedAtPause)
	}
	sentWhilePaused := r.servers["s1"].Stats().FramesSent - framesSentAtPause
	if sentWhilePaused > 2 {
		t.Fatalf("server sent %d frames while paused", sentWhilePaused)
	}

	if err := c.Resume(); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if got := c.Counters().Displayed; got < displayedAtPause+100 {
		t.Fatalf("only %d frames displayed after resume", got-displayedAtPause)
	}
}

func TestVCRSeek(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)

	// Jump deep into the movie.
	if err := c.Seek(1200); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	cnt := c.Counters()
	if cnt.Displayed < 200 {
		t.Fatalf("displayed %d frames total after seek", cnt.Displayed)
	}
	// The emergency mechanism must have kicked in on the flushed buffer.
	if c.Stats().EmergenciesSent == 0 {
		t.Fatal("seek did not trigger an emergency request")
	}
	if r.servers["s1"].Stats().Emergencies == 0 {
		t.Fatal("server granted no emergency boost after seek")
	}
}

func TestVCRQuality(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)

	if err := c.SetQuality(10); err != nil { // a third of the frames
		t.Fatal(err)
	}
	r.run(10 * time.Second)
	st := r.servers["s1"].Stats()
	if st.FramesThinned == 0 {
		t.Fatal("quality adjustment thinned no frames")
	}
	// Restore full quality; thinning must stop.
	if err := c.SetQuality(30); err != nil {
		t.Fatal(err)
	}
	r.run(time.Second)
	thinnedAtRestore := r.servers["s1"].Stats().FramesThinned
	r.run(5 * time.Second)
	if got := r.servers["s1"].Stats().FramesThinned; got != thinnedAtRestore {
		t.Fatalf("server kept thinning after quality restore: %d → %d", thinnedAtRestore, got)
	}
}

func TestVCRStopEndsSession(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startServer("s1")
	r.startServer("s2")
	r.run(2 * time.Second)
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if err := c.StopWatching(); err != nil {
		t.Fatal(err)
	}
	r.run(3 * time.Second)
	if n := r.servingCount("c1"); n != 0 {
		t.Fatalf("client still served by %d servers after stop", n)
	}
}

func TestOpenMovieNotHeld(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	// s1 holds no movie; s2 holds it.
	emptyCat := store.NewCatalog()
	s1, err := server.New(server.Config{
		ID: "s1", Clock: r.clk, Network: r.net, Catalog: emptyCat, Peers: r.peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	r.servers["s1"] = s1
	r.startServer("s2")
	r.run(time.Second)

	// Client tries s1 first; the error reply must steer it to s2 quickly.
	c := r.startClient("c1", "s1", "s2")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(3 * time.Second)
	if got := c.State(); got != client.StateWatching {
		t.Fatalf("client state = %v, want watching (redirect failed)", got)
	}
	if n := len(r.servers["s2"].ActiveSessions()); n != 1 {
		t.Fatalf("s2 sessions = %d, want 1", n)
	}
}

func TestOpenRetryAfterLostReply(t *testing.T) {
	prof := netsim.LAN()
	r := newRig(t, prof, "s1", "s2")
	r.startServer("s1")
	r.startServer("s2")
	r.run(2 * time.Second)

	// Cut the client off from s1 before opening: the first Open dies, the
	// retry reaches s2.
	c := r.startClient("c1", "s1", "s2")
	r.net.SetLinkDown("c1", "s1", true)
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if got := c.State(); got != client.StateWatching {
		t.Fatalf("client state = %v after retry, want watching", got)
	}
	if r.servingCount("c1") != 1 {
		t.Fatalf("client served by %d servers", r.servingCount("c1"))
	}
}

func TestSyncOverheadTiny(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startServer("s1")
	r.startServer("s2")
	r.run(2 * time.Second)
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(30 * time.Second)

	var video, sync uint64
	for _, s := range r.servers {
		st := s.Stats()
		video += st.VideoBytes
		sync += st.SyncBytes
	}
	if video == 0 {
		t.Fatal("no video transmitted")
	}
	ratio := float64(sync) / float64(video)
	// §1: synchronization consumes "less than one thousandth" of the
	// bandwidth. Allow 2x headroom for the short run.
	if ratio > 0.002 {
		t.Fatalf("sync overhead ratio %.5f, want < 0.002", ratio)
	}
}

func TestSequentialCrashesWithReplication3(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2", "s3")
	for _, id := range []string{"s1", "s2", "s3"} {
		r.startServer(id)
	}
	r.run(2 * time.Second)
	c := r.startClient("c1", "s1", "s2", "s3")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(10 * time.Second)

	// k=3 replication tolerates 2 sequential failures (§7).
	for _, victim := range []string{"s1", "s2"} {
		before := c.Counters().Displayed
		r.servers[victim].Stop()
		r.net.Crash(transport.Addr(victim))
		delete(r.servers, victim)
		r.run(8 * time.Second)
		if got := c.Counters().Displayed - before; got < 180 {
			t.Fatalf("after crashing %s: displayed %d frames in 8s", victim, got)
		}
		if n := r.servingCount("c1"); n != 1 {
			t.Fatalf("after crashing %s: client served by %d servers", victim, n)
		}
	}
}

func TestAssignDeterministicAndBalanced(t *testing.T) {
	order := []gcs.ProcessID{"s1", "s2", "s3"}
	clients := []string{"c5", "c2", "c9", "c1", "c7", "c3"}
	a := server.Assign(clients, order)
	b := server.Assign([]string{"c1", "c2", "c3", "c5", "c7", "c9"}, order)
	load := map[gcs.ProcessID]int{}
	for id, owner := range a {
		if b[id] != owner {
			t.Fatalf("assignment depends on input order: %v vs %v", a, b)
		}
		load[owner]++
	}
	for s, n := range load {
		if n != 2 {
			t.Fatalf("server %s assigned %d clients, want 2: %v", s, n, load)
		}
	}
}

func TestAssignEmptyOrder(t *testing.T) {
	if got := server.Assign([]string{"c1"}, nil); len(got) != 0 {
		t.Fatalf("Assign with no members = %v", got)
	}
}
