package server_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
)

// startLimitedServer brings up a server with an admission limit.
func (r *rig) startLimitedServer(t *testing.T, id string, maxSessions int) *server.Server {
	t.Helper()
	cat := store.NewCatalog()
	cat.Add(r.movie)
	s, err := server.New(server.Config{
		ID:          id,
		Clock:       r.clk,
		Network:     r.net,
		Catalog:     cat,
		Peers:       r.peers,
		MaxSessions: maxSessions,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.servers[id] = s
	return s
}

// TestAdmissionRedirectsToPeer: a full server refuses the Open and the
// client lands on the other server.
func TestAdmissionRedirectsToPeer(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startLimitedServer(t, "s1", 1)
	r.startLimitedServer(t, "s2", 1)
	r.run(2 * time.Second)

	// Both clients contact s1 first; the second must end up on s2.
	for i := 1; i <= 2; i++ {
		c := r.startClient(fmt.Sprintf("c%d", i), "s1", "s2")
		if err := c.Watch("casablanca"); err != nil {
			t.Fatal(err)
		}
		r.run(3 * time.Second)
	}
	if n := len(r.servers["s1"].ActiveSessions()); n != 1 {
		t.Fatalf("s1 sessions = %d, want 1", n)
	}
	if n := len(r.servers["s2"].ActiveSessions()); n != 1 {
		t.Fatalf("s2 sessions = %d, want 1 (admission redirect failed)", n)
	}
	for i := 1; i <= 2; i++ {
		if got := r.clients[fmt.Sprintf("c%d", i)].State(); got != client.StateWatching {
			t.Fatalf("c%d state = %v", i, got)
		}
	}
}

// TestAdmissionAllFull: when every server is full the client keeps
// retrying and never reaches watching — no session leaks anywhere.
func TestAdmissionAllFull(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startLimitedServer(t, "s1", 1)
	r.run(time.Second)

	c1 := r.startClient("c1", "s1")
	if err := c1.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(2 * time.Second)
	c2 := r.startClient("c2", "s1")
	if err := c2.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)

	if got := c2.State(); got != client.StateOpening {
		t.Fatalf("c2 state = %v, want still opening", got)
	}
	if n := len(r.servers["s1"].ActiveSessions()); n != 1 {
		t.Fatalf("s1 sessions = %d, want 1", n)
	}
	// When the first viewer leaves, the retrying client gets in.
	if err := c1.StopWatching(); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if got := c2.State(); got != client.StateWatching {
		t.Fatalf("c2 state after capacity freed = %v", got)
	}
}

// TestAdmissionNeverBlocksTakeover: failover ignores the admission limit —
// degraded service beats refusing existing viewers.
func TestAdmissionNeverBlocksTakeover(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startLimitedServer(t, "s1", 1)
	r.startLimitedServer(t, "s2", 1)
	r.run(2 * time.Second)

	for i := 1; i <= 2; i++ {
		c := r.startClient(fmt.Sprintf("c%d", i), "s1", "s2")
		if err := c.Watch("casablanca"); err != nil {
			t.Fatal(err)
		}
		r.run(3 * time.Second)
	}
	// Kill s1; s2 must adopt both clients despite MaxSessions=1.
	r.servers["s1"].Stop()
	r.net.Crash("s1")
	r.run(5 * time.Second)
	if n := len(r.servers["s2"].ActiveSessions()); n != 2 {
		t.Fatalf("survivor sessions = %d, want 2 (takeover must bypass admission)", n)
	}
	for i := 1; i <= 2; i++ {
		before := r.clients[fmt.Sprintf("c%d", i)].Counters().Displayed
		r.run(3 * time.Second)
		if got := r.clients[fmt.Sprintf("c%d", i)].Counters().Displayed - before; got < 70 {
			t.Fatalf("c%d displayed %d frames after takeover", i, got)
		}
	}
}
