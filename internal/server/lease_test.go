package server_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/transport"
)

// startLeaseClient starts a client in two-tier (lease) mode, optionally
// with a local placement ring ordering its anycast list.
func (r *rig) startLeaseClient(id string, ring *placement.Ring, servers ...string) *client.Client {
	r.t.Helper()
	c, err := client.New(client.Config{
		ID:        id,
		Clock:     r.clk,
		Network:   r.net,
		Servers:   servers,
		Lease:     true,
		Placement: ring,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	r.clients[id] = c
	return c
}

// TestLeaseOpenAndStream: a leased client streams exactly like a member
// client — and stays alive across many lease TTLs, proving renewals flow.
func TestLeaseOpenAndStream(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	r.run(time.Second)
	c := r.startLeaseClient("c1", nil, "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(10 * time.Second) // 5 lease TTLs

	if got := c.State(); got != client.StateWatching {
		t.Fatalf("client state = %v, want watching", got)
	}
	cnt := c.Counters()
	if cnt.Displayed < 250 {
		t.Fatalf("displayed %d frames in 10s, want ≥ 250", cnt.Displayed)
	}
	if cnt.GapSkipped != 0 {
		t.Fatalf("skipped %d frames on a loss-free LAN", cnt.GapSkipped)
	}
	if n := r.servingCount("c1"); n != 1 {
		t.Fatalf("client served by %d servers", n)
	}
	if got := c.Stats().Reopens; got != 0 {
		t.Fatalf("healthy leased session reopened %d times", got)
	}
}

// TestLeasePlacementOrdering: with a shared ring, the first Open lands on
// the movie's ring owner — no broadcast, no wrong-server bounce.
func TestLeasePlacementOrdering(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2", "s3")
	ring := placement.New(placement.DefaultVNodes)
	for _, id := range []string{"s1", "s2", "s3"} {
		r.startServer(id)
		ring.Add(id)
	}
	r.run(2 * time.Second)

	c := r.startLeaseClient("c1", ring, "s1", "s2", "s3")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(3 * time.Second)

	owner := ring.Lookup("casablanca")
	if n := len(r.servers[owner].ActiveSessions()); n != 1 {
		t.Fatalf("ring owner %s has %d sessions, want 1", owner, n)
	}
	if got := c.Stats().OpensSent; got != 1 {
		t.Fatalf("placement-ordered open took %d sends, want 1", got)
	}
}

// TestLeaseSilentClientExpires: a leased client that vanishes without a
// goodbye is reclaimed by the lease table — no failure detector involved.
func TestLeaseSilentClientExpires(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	s := r.startServer("s1")
	c := r.startLeaseClient("c1", nil, "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if n := len(s.ActiveSessions()); n != 1 {
		t.Fatalf("server has %d sessions before the crash, want 1", n)
	}

	// The client dies silently: renewals stop, no VCR Stop is sent.
	c.Close()
	r.net.Crash(transport.Addr("c1"))
	r.run(5 * time.Second) // > TTL + sweep granularity

	if n := len(s.ActiveSessions()); n != 0 {
		t.Fatalf("server still holds %d sessions %v after the client died", n, 5*time.Second)
	}
}

// TestLeaseTakeover: when the serving server crashes, no view change
// reassigns the leased client — its keeper notices the ack silence and
// re-anycasts the Open with the takeover flag, and the next server adopts
// the session from the synced knowledge table.
func TestLeaseTakeover(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startServer("s1")
	r.startServer("s2")
	r.run(2 * time.Second) // let the movie group form

	c := r.startLeaseClient("c1", nil, "s1", "s2")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(15 * time.Second) // steady state

	var serving, other string
	for id, s := range r.servers {
		if len(s.ActiveSessions()) == 1 {
			serving = id
		} else {
			other = id
		}
	}
	if serving == "" {
		t.Fatal("no server is serving the client")
	}
	before := c.Counters()
	r.servers[serving].Stop()
	r.net.Crash(transport.Addr(serving))
	r.run(12 * time.Second)

	if n := len(r.servers[other].ActiveSessions()); n != 1 {
		t.Fatalf("survivor has %d sessions, want 1", n)
	}
	if got := r.servers[other].Stats().Takeovers; got == 0 {
		t.Fatal("survivor adopted the session without counting a takeover")
	}
	if got := c.Stats().Reopens; got == 0 {
		t.Fatal("client recovered without a lease-driven reopen")
	}
	displayedDuring := c.Counters().Displayed - before.Displayed
	// 12s at 30fps = 360 frames; lease detection (~TTL + one renew tick)
	// costs up to ~3s of stream, partially hidden by the buffer.
	if displayedDuring < 220 {
		t.Fatalf("displayed only %d frames across the lease takeover", displayedDuring)
	}
	if r.servingCount("c1") != 1 {
		t.Fatalf("client served by %d servers after takeover", r.servingCount("c1"))
	}
}

// TestLeaseVCRDirect: pause/resume/seek ride the direct channel in lease
// mode (there is no session group to multicast into) and still control
// the stream.
func TestLeaseVCRDirect(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	c := r.startLeaseClient("c1", nil, "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)

	if err := c.Pause(); err != nil {
		t.Fatal(err)
	}
	r.run(200 * time.Millisecond) // let the pause land and pacing drain
	paused := c.Counters().Displayed
	r.run(3 * time.Second)
	if got := c.Counters().Displayed; got != paused {
		t.Fatalf("displayed advanced %d -> %d while paused", paused, got)
	}

	if err := c.Resume(); err != nil {
		t.Fatal(err)
	}
	r.run(3 * time.Second)
	if got := c.Counters().Displayed; got <= paused+60 {
		t.Fatalf("displayed %d -> %d after resume, want ≥ +60", paused, got)
	}
}
