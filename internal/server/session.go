package server

import (
	"time"

	"repro/internal/clock"
	"repro/internal/flowctl"
	"repro/internal/gcs"
	"repro/internal/mpeg"
	"repro/internal/transport"
	"repro/internal/wire"
)

// session is one client this server is actively serving: the per-client
// transmission state of §3–§4. The server paces frames at the client's
// granted rate, adjusts the rate on flow-control requests, applies the
// emergency boost, and executes VCR operations.
type session struct {
	srv   *Server
	rec   wire.ClientRecord // live state; rec.Offset is the next frame to send
	movie *mpeg.Movie
	rate  *flowctl.RateController

	member *gcs.Member // session-group membership, set once joined
	ready  bool        // the session view includes the client; streaming may start
	pacing bool        // a send is scheduled
	atEnd  bool        // offset ran past the last frame
	closed bool

	thinCredit int // quality-adjustment accumulator (frames × fps units)

	// conflicts tracks peers that claimed this client in a state sync;
	// a second consecutive claim (≥ one sync period later, so not a
	// pre-release race) triggers duplicate resolution. Reset on view
	// changes.
	conflicts map[gcs.ProcessID]bool

	sendTimer clock.Timer
	sendOneFn func() // sess.sendOne, bound once: a method value allocates per use
	decayTask *clock.Periodic
	joinTries int

	// Per-session reusable state for the frame hot path: with these warm,
	// transmitting a frame performs zero heap allocations. frame and the
	// buffers are only touched under srv.mu.
	frame      wire.Frame   // reused message header for every outgoing frame
	payloadBuf []byte       // scratch for the synthetic frame payload
	enc        wire.Encoder // scratch for the encoded datagram
}

// startSessionLocked creates the session and begins joining the client's
// session group. Transmission starts once the group view shows the client
// — the "two-way connection" of §3 — so the client's control multicasts
// are guaranteed to reach us from the first frame on. Caller holds srv.mu.
func (s *Server) startSessionLocked(rec wire.ClientRecord, movie *mpeg.Movie, takeover bool) *session {
	rate := flowctl.NewRateController(s.cfg.Flow)
	rate.SetBase(int(rec.Rate))
	sess := &session{
		srv:   s,
		rec:   rec,
		movie: movie,
		rate:  rate,
	}
	sess.sendOneFn = sess.sendOne
	if takeover {
		// Resuming at a stale offset past the end means the movie ended.
		if int(rec.Offset) >= movie.TotalFrames() {
			sess.atEnd = true
		}
	}
	s.sessions[rec.ClientID] = sess
	s.noteSessionsLocked()
	sess.decayTask = clock.Every(s.cfg.Clock, time.Second, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !sess.closed {
			sess.rate.DecayTick()
		}
	})
	s.later(sess.join)
	return sess
}

// join enters the client's session group. It retries while a previous
// membership for the same client is still deactivating (a client released
// and re-adopted in quick succession).
func (sess *session) join() {
	sess.srv.mu.Lock()
	if sess.closed {
		sess.srv.mu.Unlock()
		return
	}
	group := SessionGroup(sess.rec.ClientID)
	contact := transport.Addr(sess.rec.ClientAddr)
	clientID := sess.rec.ClientID
	sess.srv.mu.Unlock()

	member, err := sess.srv.proc.Join(group, gcs.Handlers{
		OnView: func(v gcs.View) {
			sess.srv.later(func() { sess.onSessionView(v) })
		},
		OnMessage: func(_ string, from gcs.ProcessID, payload []byte) {
			sess.srv.later(func() { sess.srv.handleSessionMessage(clientID, from, payload) })
		},
	}, contact)

	sess.srv.mu.Lock()
	defer sess.srv.mu.Unlock()
	if err != nil {
		sess.joinTries++
		if sess.closed || sess.joinTries > 50 {
			return
		}
		sess.srv.cfg.Clock.AfterFunc(100*time.Millisecond, sess.join)
		return
	}
	if sess.closed {
		// Session died while joining; undo.
		leave := member.Leave
		sess.srv.later(func() { _ = leave() })
		return
	}
	sess.member = member
}

// onSessionView watches for the client to appear in the session view, at
// which point streaming starts.
func (sess *session) onSessionView(v gcs.View) {
	sess.srv.mu.Lock()
	defer sess.srv.mu.Unlock()
	if sess.closed || sess.ready {
		return
	}
	if v.Includes(transport.Addr(sess.rec.ClientAddr)) {
		sess.ready = true
		sess.schedulePacingLocked()
	}
}

// schedulePacingLocked arms the next frame transmission at the current
// rate. Caller holds srv.mu.
func (sess *session) schedulePacingLocked() {
	if sess.closed || !sess.ready || sess.pacing || sess.rec.Paused || sess.atEnd {
		return
	}
	rate := sess.rate.Rate()
	if rate < 1 {
		rate = 1
	}
	sess.pacing = true
	if sess.sendTimer != nil {
		// The previous pacing timer has fired (pacing was false); recycle
		// its record so a streaming session reuses one event forever.
		clock.Release(sess.sendTimer)
	}
	sess.sendTimer = sess.srv.cfg.Clock.AfterFunc(time.Second/time.Duration(rate), sess.sendOneFn)
}

// sendOne handles one pacing tick: the stream position advances by exactly
// one frame per tick (so the movie always plays at the granted rate in
// movie time), and the frame is transmitted unless quality thinning
// withholds it (§4.3: transmit all I frames and as many of the others as
// the client's capabilities allow).
func (sess *session) sendOne() {
	s := sess.srv
	s.mu.Lock()
	sess.pacing = false
	if sess.closed || sess.rec.Paused {
		s.mu.Unlock()
		return
	}
	total := uint32(sess.movie.TotalFrames())
	if sess.rec.Offset >= total {
		sess.atEnd = true
		s.mu.Unlock()
		return
	}

	idx := int(sess.rec.Offset)
	info := sess.movie.Frame(idx)
	sess.rec.Offset++

	send := true
	fps := uint16(sess.movie.FPS())
	if quality := sess.rec.QualityFPS; quality > 0 && quality < fps {
		sess.thinCredit += int(quality)
		if info.Class == wire.FrameI || sess.thinCredit >= int(fps) {
			// I frames always go out; they borrow against the budget
			// (credit may go negative) so the total stays ≈ quality.
			sess.thinCredit -= int(fps)
		} else {
			send = false
			s.stats.FramesThinned++
			s.ctr.framesThinned.Inc()
		}
	}

	if !send {
		sess.schedulePacingLocked()
		s.mu.Unlock()
		return
	}
	// Build the frame in per-session reusable buffers: header struct,
	// payload scratch and encoder scratch all survive across frames, so a
	// warm session allocates nothing here. The encoded packet is handed to
	// Send while still holding s.mu — Send copies before returning (the
	// transport contract), and no transport path re-enters the server
	// synchronously, so the scratch is free again afterwards.
	sess.payloadBuf = sess.movie.AppendFrameData(sess.payloadBuf[:0], idx)
	sess.frame = wire.Frame{
		Movie:   sess.movie.ID(),
		Index:   uint32(idx),
		Class:   info.Class,
		Payload: sess.payloadBuf,
	}
	pkt := sess.enc.Encode(&sess.frame)
	dst := transport.Addr(sess.rec.ClientAddr)
	s.stats.FramesSent++
	s.stats.VideoBytes += uint64(len(pkt))
	s.ctr.framesSent.Inc()
	s.ctr.videoBytes.Add(uint64(len(pkt)))
	sess.schedulePacingLocked()
	_ = s.vid.Send(dst, pkt)
	s.mu.Unlock()
}

// stopLocked halts the session permanently. Caller holds srv.mu.
func (sess *session) stopLocked() {
	if sess.closed {
		return
	}
	sess.closed = true
	if sess.sendTimer != nil {
		clock.Release(sess.sendTimer)
		sess.sendTimer = nil
	}
	if sess.decayTask != nil {
		sess.decayTask.Stop()
	}
	if m := sess.member; m != nil {
		sess.srv.later(func() { _ = m.Leave() })
	}
}

// handleSessionMessage processes a client control message multicast into
// the session group.
func (s *Server) handleSessionMessage(clientID string, _ gcs.ProcessID, payload []byte) {
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[clientID]
	if sess == nil || sess.closed {
		return
	}
	switch msg := msg.(type) {
	case *wire.FlowControl:
		if msg.ClientID != clientID {
			return
		}
		wasActive := sess.rate.EmergencyActive()
		sess.rate.OnRequest(msg.Request)
		if !wasActive && sess.rate.EmergencyActive() {
			s.stats.Emergencies++
			s.ctr.emergencies.Inc()
			s.cfg.Obs.Event("server.emergency_boost", clientID)
		}
		sess.rec.Rate = uint16(sess.rate.Base())
	case *wire.VCR:
		if msg.ClientID != clientID {
			return
		}
		s.handleVCRLocked(sess, msg)
	}
}

// handleVCRLocked executes a VCR operation (§3: "full VCR-like control").
func (s *Server) handleVCRLocked(sess *session, msg *wire.VCR) {
	switch msg.Op {
	case wire.VCRPause:
		sess.rec.Paused = true
		if sess.sendTimer != nil {
			sess.sendTimer.Stop()
		}
		sess.pacing = false
	case wire.VCRResume:
		sess.rec.Paused = false
		sess.schedulePacingLocked()
	case wire.VCRSeek:
		target := int(msg.Arg)
		if target >= sess.movie.TotalFrames() {
			target = sess.movie.TotalFrames() - 1
		}
		// Random access lands on the next I frame so the client can
		// decode from the first delivered frame.
		idx := sess.movie.NextIFrame(target)
		if idx < 0 {
			idx = sess.movie.PrevIFrame(target)
		}
		sess.rec.Offset = uint32(idx)
		sess.atEnd = false
		sess.thinCredit = 0
		sess.schedulePacingLocked()
	case wire.VCRQuality:
		fps := uint32(sess.movie.FPS())
		if msg.Arg >= fps {
			sess.rec.QualityFPS = 0 // full quality
		} else {
			sess.rec.QualityFPS = uint16(msg.Arg)
		}
		sess.thinCredit = 0
	case wire.VCRStop:
		sess.rec.Departed = true
		if ms := s.movies[sess.movie.ID()]; ms != nil {
			ms.noteDepartedLocked(sess.rec)
		}
		sess.stopLocked()
		delete(s.sessions, sess.rec.ClientID)
		s.noteSessionsLocked()
	}
}
