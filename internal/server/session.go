package server

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/flowctl"
	"repro/internal/gcs"
	"repro/internal/mpeg"
	"repro/internal/transport"
	"repro/internal/wire"
)

// session is one client this server is actively serving: the per-client
// transmission state of §3–§4. The server paces frames at the client's
// granted rate, adjusts the rate on flow-control requests, applies the
// emergency boost, and executes VCR operations.
//
// Session records are pooled process-wide: a chaos restart or takeover wave
// that tears down and recreates hundreds of sessions reuses retired records
// instead of reallocating them. Two rules make that safe. First, no callback
// that can fire after stopLocked captures a *session — deferred work holds
// (clientID, gen) and looks the session up, so a record handed to a new
// incarnation is unreachable from its old life. Second, gen increments on
// every reuse, so a callback from a previous incarnation that finds a
// recycled record under the same client ID bails out on the mismatch.
type session struct {
	srv   *Server
	gen   uint64            // incarnation counter; guards deferred callbacks
	rec   wire.ClientRecord // live state; rec.Offset is the next frame to send
	movie *mpeg.Movie
	rate  *flowctl.RateController

	// packets is the movie's shared preframed-datagram table: one table per
	// movie serves every concurrent viewer, replacing the per-session frame
	// build buffers entirely.
	packets *mpeg.PacketTable

	// dstRef is the client address pre-resolved against the video channel's
	// network (transport.NoAddrRef when the network has no dense index), so
	// per-frame sends skip the address-string hash.
	dstRef transport.AddrRef

	// stripe/stripePos locate this session's slot in a coalesced pacing
	// ticker when Config.StripedEgress is on (stripe nil otherwise or while
	// detached); shedSkip makes the next stripe tick skip one beat after a
	// token shed, reproducing the dedicated timer's 2× retry spacing.
	stripe    *stripe
	stripePos int
	shedSkip  bool

	member *gcs.Member // session-group membership, set once joined
	ready  bool        // the session view includes the client; streaming may start
	pacing bool        // a send is scheduled
	atEnd  bool        // offset ran past the last frame
	closed bool

	thinCredit int // quality-adjustment accumulator (frames × fps units)

	// conflicts tracks peers that claimed this client in a state sync;
	// a second consecutive claim (≥ one sync period later, so not a
	// pre-release race) triggers duplicate resolution. Reset on view
	// changes.
	conflicts map[gcs.ProcessID]bool

	sendTimer clock.Timer
	sendOneFn func() // sess.sendOne, bound once per record: survives pooling
	joinFn    func() // per-incarnation join closure, reused by retries
	joinTimer clock.Timer
	decayTask *clock.Periodic
	joinTries int

	// group and the two handler closures are built once per incarnation in
	// startSessionLocked and reused by every join retry, which would
	// otherwise rebuild them on each attempt.
	group    string
	onViewFn func(gcs.View)
	onMsgFn  func(string, gcs.ProcessID, []byte)

	// fc is the reusable decode target for this client's flow-control
	// stream, guarded by srv.mu. Preserved across pooling so the keep-string
	// decode reuses the client-ID allocation for the session's lifetime.
	fc wire.FlowControl
}

// sessionPool recycles session records across incarnations — including
// across Server instances, so a restarted server reuses the records its
// previous incarnation retired. Records are only Put once nothing can reach
// them anymore (timers released, callbacks lookup-based); contents are fully
// reinitialized on reuse, so pool handout order cannot influence simulation
// behavior.
var sessionPool = sync.Pool{New: func() any { return new(session) }}

// startSessionLocked creates the session and begins joining the client's
// session group. Transmission starts once the group view shows the client
// — the "two-way connection" of §3 — so the client's control multicasts
// are guaranteed to reach us from the first frame on. Caller holds srv.mu.
func (s *Server) startSessionLocked(rec wire.ClientRecord, movie *mpeg.Movie, takeover bool) *session {
	sess := sessionPool.Get().(*session)
	gen := sess.gen + 1
	rate, conflicts, sendOneFn, fc := sess.rate, sess.conflicts, sess.sendOneFn, sess.fc
	clear(conflicts)
	*sess = session{
		srv:       s,
		gen:       gen,
		rec:       rec,
		movie:     movie,
		rate:      rate,
		conflicts: conflicts,
		sendOneFn: sendOneFn,
		fc:        fc,
	}
	if sess.rate == nil {
		sess.rate = flowctl.NewRateController(s.cfg.Flow)
	} else {
		sess.rate.Reset(s.cfg.Flow)
	}
	sess.rate.SetBase(int(rec.Rate))
	if sess.sendOneFn == nil {
		sess.sendOneFn = sess.sendOne
	}
	if s.vidPre != nil {
		sess.packets = movie.Packets(s.vidPre.Preframe())
	}
	sess.dstRef = transport.NoAddrRef
	if s.vidResolve != nil {
		sess.dstRef = s.vidResolve.ResolveAddr(transport.Addr(rec.ClientAddr))
	}
	if takeover {
		// Resuming at a stale offset past the end means the movie ended.
		if int(rec.Offset) >= movie.TotalFrames() {
			sess.atEnd = true
		}
	}
	s.sessions[rec.ClientID] = sess
	s.classes[classIdx(rec.Class)]++
	s.noteSessionsLocked()
	clientID := rec.ClientID
	sess.decayTask = clock.Every(s.cfg.Clock, time.Second, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if d := s.sessions[clientID]; d != nil && !d.closed && d.gen == gen {
			d.rate.DecayTick()
		}
	})
	sess.group = SessionGroup(clientID)
	if rec.Leased {
		// Two-tier membership: a leased session has no session group to
		// join and no view to wait for — control arrives as direct
		// datagrams and frames were always point-to-point — so streaming
		// starts the moment the session exists. The group name is still
		// reported in the OpenReply for symmetry; nothing joins it.
		sess.ready = true
		sess.schedulePacingLocked()
		return sess
	}
	sess.onViewFn = func(v gcs.View) {
		s.later(func() { s.onSessionView(clientID, gen, v) })
	}
	sess.onMsgFn = func(_ string, from gcs.ProcessID, payload []byte) {
		e := ctlEventPool.Get().(*ctlEvent)
		e.s, e.clientID, e.from, e.payload = s, clientID, from, payload
		s.cfg.Clock.AfterFunc(0, e.fire)
	}
	sess.joinFn = func() { s.joinSession(clientID, gen) }
	s.later(sess.joinFn)
	return sess
}

// ctlEvent defers one inbound session-group control message to its own
// clock event — same scheduling as a per-message closure (one AfterFunc per
// message, armed at receipt, so simulation event order is unchanged) but
// with the record and its bound fire closure pooled. The payload alias is
// safe to hold across the deferral: it points into the GCS's retained
// message buffer, which outlives this same-instant callback by the full
// stability interval.
type ctlEvent struct {
	s        *Server
	clientID string
	from     gcs.ProcessID
	payload  []byte
	fire     func() // bound once to run; survives pooling
}

var ctlEventPool sync.Pool

func init() {
	ctlEventPool.New = func() any {
		e := new(ctlEvent)
		e.fire = e.run
		return e
	}
}

func (e *ctlEvent) run() {
	s, clientID, from, payload := e.s, e.clientID, e.from, e.payload
	*e = ctlEvent{fire: e.fire}
	ctlEventPool.Put(e)
	s.handleSessionMessage(clientID, from, payload)
}

// recycleSessionLocked hands a stopped session record back to the pool.
// Caller holds srv.mu, must have called stopLocked and removed the record
// from s.sessions first — after that, every reference path to the record is
// gone (timers released, deferred callbacks lookup-based).
func (s *Server) recycleSessionLocked(sess *session) {
	sessionPool.Put(sess)
}

// joinSession enters the client's session group. It retries while a previous
// membership for the same client is still deactivating (a client released
// and re-adopted in quick succession). Deferred invocations identify the
// session by (clientID, gen) rather than holding the record, so a retry that
// fires after the session was torn down — or after its record was reused —
// is a no-op.
func (s *Server) joinSession(clientID string, gen uint64) {
	s.mu.Lock()
	sess := s.sessions[clientID]
	if sess == nil || sess.closed || sess.gen != gen {
		s.mu.Unlock()
		return
	}
	if sess.joinTimer != nil {
		// This invocation is the retry timer firing; recycle its record.
		clock.Release(sess.joinTimer)
		sess.joinTimer = nil
	}
	group := sess.group
	contact := transport.Addr(sess.rec.ClientAddr)
	joinFn := sess.joinFn
	handlers := gcs.Handlers{OnView: sess.onViewFn, OnMessage: sess.onMsgFn}
	s.mu.Unlock()

	member, err := s.proc.Join(group, handlers, contact)

	s.mu.Lock()
	defer s.mu.Unlock()
	sess = s.sessions[clientID]
	stale := sess == nil || sess.closed || sess.gen != gen
	if err != nil {
		if stale {
			return
		}
		sess.joinTries++
		if sess.joinTries > 50 {
			return
		}
		sess.joinTimer = s.cfg.Clock.AfterFunc(100*time.Millisecond, joinFn)
		return
	}
	if stale {
		// Session died while joining; undo.
		leave := member.Leave
		s.later(func() { _ = leave() })
		return
	}
	sess.member = member
}

// onSessionView watches for the client to appear in the session view, at
// which point streaming starts.
func (s *Server) onSessionView(clientID string, gen uint64, v gcs.View) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[clientID]
	if sess == nil || sess.closed || sess.gen != gen || sess.ready {
		return
	}
	if v.Includes(transport.Addr(sess.rec.ClientAddr)) {
		sess.ready = true
		sess.schedulePacingLocked()
	}
}

// sendPeriodLocked returns the inter-frame pacing interval at the current
// granted rate. Caller holds srv.mu.
func (sess *session) sendPeriodLocked() time.Duration {
	rate := sess.rate.Rate()
	if rate < 1 {
		rate = 1
	}
	return time.Second / time.Duration(rate)
}

// armSendLocked schedules the next sendOne after d. Caller holds srv.mu and
// has already passed the pacing guards.
func (sess *session) armSendLocked(d time.Duration) {
	sess.pacing = true
	if sess.sendTimer != nil {
		// The previous pacing timer has fired (pacing was false); recycle
		// its record so a streaming session reuses one event forever.
		clock.Release(sess.sendTimer)
	}
	sess.sendTimer = sess.srv.cfg.Clock.AfterFunc(d, sess.sendOneFn)
}

// schedulePacingLocked arms the next frame transmission at the current
// rate: a dedicated pacing timer normally, or an attach to the matching
// coalesced stripe under Config.StripedEgress. Caller holds srv.mu.
func (sess *session) schedulePacingLocked() {
	if sess.closed || !sess.ready || sess.rec.Paused || sess.atEnd {
		return
	}
	if sess.srv.cfg.StripedEgress {
		sess.srv.attachStripeLocked(sess)
		return
	}
	if sess.pacing {
		return
	}
	sess.armSendLocked(sess.sendPeriodLocked())
}

// sendOne handles one pacing tick: the stream position advances by exactly
// one frame per tick (so the movie always plays at the granted rate in
// movie time), and the frame is transmitted unless quality thinning
// withholds it (§4.3: transmit all I frames and as many of the others as
// the client's capabilities allow). Best-effort sessions additionally pass
// the overload ladder: degrade thinning tightens their quality cap under
// pressure, and with a shaper configured the frame needs egress tokens —
// a dry bucket holds the frame (offset does not advance) and retries at
// stretched spacing, so throttling lengthens frame intervals without ever
// skipping content.
func (sess *session) sendOne() {
	s := sess.srv
	s.mu.Lock()
	sess.pacing = false
	if !sess.closed && !sess.rec.Paused {
		sess.paceTickLocked(false)
	}
	s.mu.Unlock()
}

// txOutcome reports what one pacing tick did with its frame.
type txOutcome int

const (
	txSent  txOutcome = iota // transmitted or thinned: position advanced
	txShed                   // shaper dry: frame held, retry at 2× spacing
	txEnded                  // ran past the last frame
)

// paceTickLocked advances the stream by one pacing tick — the shared body of
// the dedicated-timer path (sendOne) and the striped walker. When striped is
// false it also arms the follow-up timer exactly where the pre-stripe code
// did (before the network send), keeping default-config event schedules
// byte-identical; when striped is true the stripe's own ticker provides the
// cadence and the caller turns txShed into a skipped beat. Caller holds
// srv.mu and has already passed the closed/paused guards.
func (sess *session) paceTickLocked(striped bool) txOutcome {
	s := sess.srv
	total := uint32(sess.movie.TotalFrames())
	if sess.rec.Offset >= total {
		sess.atEnd = true
		return txEnded
	}

	idx := int(sess.rec.Offset)
	info := sess.movie.Frame(idx)

	// Thinning decision (client quality cap, tightened by the degrade rung
	// for best-effort streams). The credit commit is deferred until the
	// frame's fate is final, so a token-shed retry of the same frame does
	// not double-charge the budget.
	fps := uint16(sess.movie.FPS())
	quality := sess.rec.QualityFPS
	degraded := false
	if sess.rec.Class == wire.ClassBestEffort {
		if dfps := s.degradeFPSLocked(); dfps > 0 && (quality == 0 || dfps < quality) {
			quality = dfps
			degraded = true
		}
	}
	thinning := quality > 0 && quality < fps
	if thinning && info.Class != wire.FrameI && sess.thinCredit+int(quality) < int(fps) {
		// Withheld by quality adjustment: the position advances (the movie
		// plays on in movie time) but nothing is transmitted.
		sess.thinCredit += int(quality)
		sess.rec.Offset++
		if degraded {
			s.stats.DegradedFrames++
			s.ctr.degradedFrames.Inc()
		} else {
			s.stats.FramesThinned++
			s.ctr.framesThinned.Inc()
		}
		if !striped {
			sess.schedulePacingLocked()
		}
		return txSent
	}

	dst := transport.Addr(sess.rec.ClientAddr)
	if t := sess.packets; t != nil {
		// Egress shaping: reserved sends always proceed (and may drive the
		// bucket into bounded debt); a best-effort send needs credit.
		if sh := s.shaper; sh != nil {
			if sess.rec.Class == wire.ClassBestEffort {
				if !sh.TakeBestEffort(t.WireSize(idx)) {
					s.stats.ShedTokens++
					s.ctr.shedTokens.Inc()
					if !striped {
						sess.armSendLocked(2 * sess.sendPeriodLocked())
					}
					return txShed
				}
			} else {
				sh.TakeReserved(t.WireSize(idx))
			}
		}
		if thinning {
			// I frames always go out; they borrow against the budget
			// (credit may go negative) so the total stays ≈ quality.
			sess.thinCredit += int(quality) - int(fps)
		}
		sess.rec.Offset++
		// The movie's shared packet table holds this frame fully framed
		// (channel prefix + encoded Frame message): no payload build, no
		// encode, and the preframed send path ships the immutable table
		// slice without copying. VideoBytes counts the wire message as the
		// per-session encoder did, i.e. without the one-byte mux prefix.
		pkt := t.Packet(idx)
		s.stats.FramesSent++
		s.stats.VideoBytes += uint64(t.WireSize(idx))
		s.ctr.framesSent.Inc()
		s.ctr.videoBytes.Add(uint64(t.WireSize(idx)))
		if !striped {
			sess.schedulePacingLocked()
		}
		if s.txCollect && sess.dstRef != transport.NoAddrRef {
			// Broadcast fan-out: the stripe walk batches this beat's frames
			// and flushes them in one network call after the walk — same
			// clock instant, same attach order, one delivery event.
			s.txDsts = append(s.txDsts, sess.dstRef)
			s.txPkts = append(s.txPkts, pkt)
		} else if s.vidPreRef != nil && sess.dstRef != transport.NoAddrRef {
			_ = s.vidPreRef.SendPreframedRef(sess.dstRef, pkt)
		} else {
			_ = s.vidPre.SendPreframed(dst, pkt)
		}
		return txSent
	}
	// Fallback for a video endpoint without preframed sends: build and
	// encode the frame per message. Send copies before returning (the
	// transport contract), so the buffers are free again afterwards.
	frame := wire.Frame{
		Movie:   sess.movie.ID(),
		Index:   uint32(idx),
		Class:   info.Class,
		Payload: sess.movie.FrameData(idx),
	}
	pkt := wire.Encode(&frame)
	if sh := s.shaper; sh != nil {
		if sess.rec.Class == wire.ClassBestEffort {
			if !sh.TakeBestEffort(len(pkt)) {
				s.stats.ShedTokens++
				s.ctr.shedTokens.Inc()
				if !striped {
					sess.armSendLocked(2 * sess.sendPeriodLocked())
				}
				return txShed
			}
		} else {
			sh.TakeReserved(len(pkt))
		}
	}
	if thinning {
		sess.thinCredit += int(quality) - int(fps)
	}
	sess.rec.Offset++
	s.stats.FramesSent++
	s.stats.VideoBytes += uint64(len(pkt))
	s.ctr.framesSent.Inc()
	s.ctr.videoBytes.Add(uint64(len(pkt)))
	if !striped {
		sess.schedulePacingLocked()
	}
	_ = s.vid.Send(dst, pkt)
	return txSent
}

// stopLocked halts the session permanently. Caller holds srv.mu.
func (sess *session) stopLocked() {
	if sess.closed {
		return
	}
	sess.closed = true
	if st := sess.stripe; st != nil {
		st.entries[sess.stripePos].sess = nil
		sess.stripe = nil
	}
	if sess.sendTimer != nil {
		clock.Release(sess.sendTimer)
		sess.sendTimer = nil
	}
	if sess.joinTimer != nil {
		clock.Release(sess.joinTimer)
		sess.joinTimer = nil
	}
	if sess.decayTask != nil {
		sess.decayTask.Stop()
	}
	if m := sess.member; m != nil {
		sess.srv.later(func() { _ = m.Leave() })
	}
}

// handleSessionMessage processes a client control message multicast into
// the session group.
func (s *Server) handleSessionMessage(clientID string, _ gcs.ProcessID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[clientID]
	if sess == nil || sess.closed {
		return
	}
	s.sessionCtlLocked(sess, clientID, payload)
}

// sessionCtlLocked executes one client control message against its session
// — shared by the session-group path and the leased direct path. Caller
// holds s.mu.
func (s *Server) sessionCtlLocked(sess *session, clientID string, payload []byte) {
	// Flow control dominates this channel (one request per granted-rate
	// adjustment, every client, all session long); decode it into the
	// session's scratch so the steady state allocates nothing.
	if len(payload) > 0 && wire.Kind(payload[0]) == wire.KindFlowControl {
		msg := &sess.fc
		if err := wire.DecodeFlowControlInto(msg, payload); err != nil || msg.ClientID != clientID {
			return
		}
		wasActive := sess.rate.EmergencyActive()
		sess.rate.OnRequest(msg.Request)
		if !wasActive && sess.rate.EmergencyActive() {
			s.stats.Emergencies++
			s.ctr.emergencies.Inc()
			s.cfg.Obs.Event("server.emergency_boost", clientID)
		}
		sess.rec.Rate = uint16(sess.rate.Base())
		return
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	if vcr, ok := msg.(*wire.VCR); ok && vcr.ClientID == clientID {
		s.handleVCRLocked(sess, vcr)
	}
}

// handleVCRLocked executes a VCR operation (§3: "full VCR-like control").
func (s *Server) handleVCRLocked(sess *session, msg *wire.VCR) {
	switch msg.Op {
	case wire.VCRPause:
		sess.rec.Paused = true
		if sess.sendTimer != nil {
			sess.sendTimer.Stop()
		}
		sess.pacing = false
	case wire.VCRResume:
		sess.rec.Paused = false
		sess.schedulePacingLocked()
	case wire.VCRSeek:
		target := int(msg.Arg)
		if target >= sess.movie.TotalFrames() {
			target = sess.movie.TotalFrames() - 1
		}
		// Random access lands on the next I frame so the client can
		// decode from the first delivered frame.
		idx := sess.movie.NextIFrame(target)
		if idx < 0 {
			idx = sess.movie.PrevIFrame(target)
		}
		sess.rec.Offset = uint32(idx)
		sess.atEnd = false
		sess.thinCredit = 0
		sess.schedulePacingLocked()
	case wire.VCRQuality:
		fps := uint32(sess.movie.FPS())
		if msg.Arg >= fps {
			sess.rec.QualityFPS = 0 // full quality
		} else {
			sess.rec.QualityFPS = uint16(msg.Arg)
		}
		sess.thinCredit = 0
	case wire.VCRStop:
		sess.rec.Departed = true
		if ms := s.movies[sess.movie.ID()]; ms != nil {
			ms.noteDepartedLocked(sess.rec)
		}
		s.dropSessionLocked(sess)
	}
}
