package server

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/gcs"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/wire"
)

func TestMemberOrderNewcomersFirst(t *testing.T) {
	members := []gcs.ProcessID{"s1", "s2", "s3", "s4"}
	order := memberOrder(members, map[gcs.ProcessID]bool{"s3": true})
	want := []gcs.ProcessID{"s3", "s1", "s2", "s4"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMemberOrderNoNewcomers(t *testing.T) {
	members := []gcs.ProcessID{"s2", "s1"}
	order := memberOrder(members, nil)
	if order[0] != "s1" || order[1] != "s2" {
		t.Fatalf("order = %v, want sorted [s1 s2]", order)
	}
}

func TestMemberOrderAllNewcomers(t *testing.T) {
	members := []gcs.ProcessID{"s2", "s1"}
	order := memberOrder(members, map[gcs.ProcessID]bool{"s1": true, "s2": true})
	if len(order) != 2 || order[0] != "s1" {
		t.Fatalf("order = %v", order)
	}
}

// TestAssignCoverageProperty: every client gets exactly one owner, and the
// load split never differs by more than one.
func TestAssignCoverageProperty(t *testing.T) {
	prop := func(nClients uint8, nServers uint8) bool {
		ns := int(nServers%8) + 1
		nc := int(nClients)
		var clients []string
		for i := 0; i < nc; i++ {
			clients = append(clients, fmt.Sprintf("c%03d", i))
		}
		var order []gcs.ProcessID
		for i := 0; i < ns; i++ {
			order = append(order, gcs.ProcessID(fmt.Sprintf("s%d", i)))
		}
		got := Assign(clients, order)
		if len(got) != nc {
			return false
		}
		load := map[gcs.ProcessID]int{}
		for _, owner := range got {
			load[owner]++
		}
		min, max := nc, 0
		for _, o := range order {
			n := load[o]
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if nc == 0 {
			return true
		}
		return max-min <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// serverRig builds a started server on a private simulated network for
// white-box tests.
func serverRig(t *testing.T) (*clock.Virtual, *Server, *mpeg.Movie) {
	t.Helper()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	network := netsim.New(clk, 1, netsim.LAN())
	movie := mpeg.Generate("m", mpeg.StreamConfig{Duration: 10 * time.Second, Seed: 1})
	cat := store.NewCatalog()
	cat.Add(movie)
	s, err := New(Config{ID: "s1", Clock: clk, Network: network, Catalog: cat, Peers: []string{"s1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	clk.Advance(time.Second)
	return clk, s, movie
}

func TestResolveDuplicateTwoStrikes(t *testing.T) {
	_, s, movie := serverRig(t)
	s.mu.Lock()
	ms := s.movies["m"]
	rec := wire.ClientRecord{ClientID: "c1", ClientAddr: "c1", Rate: 30}
	s.startSessionLocked(rec, movie, false)
	s.mu.Unlock()

	claim := func(from gcs.ProcessID) {
		s.mu.Lock()
		ms.resolveDuplicateLocked(from, rec)
		s.mu.Unlock()
	}

	// A claim from a HIGHER-ID peer never releases our session.
	claim("s9")
	claim("s9")
	if len(s.ActiveSessions()) != 1 {
		t.Fatal("higher-ID claim released the session")
	}
	// First claim from a lower-ID peer: strike one, session survives.
	claim("s0")
	if len(s.ActiveSessions()) != 1 {
		t.Fatal("single lower-ID claim released the session (race guard missing)")
	}
	// Second claim: duplicate confirmed, release.
	claim("s0")
	if len(s.ActiveSessions()) != 0 {
		t.Fatal("repeated lower-ID claim did not release the session")
	}
}

func TestResolveDuplicateResetOnViewChange(t *testing.T) {
	clk, s, movie := serverRig(t)
	s.mu.Lock()
	ms := s.movies["m"]
	rec := wire.ClientRecord{ClientID: "c1", ClientAddr: "c1", Rate: 30}
	s.startSessionLocked(rec, movie, false)
	ms.resolveDuplicateLocked("s0", rec) // strike one
	s.mu.Unlock()

	// A view change (here: the singleton view reinstalling via onView)
	// must clear conflict evidence.
	ms.onView(gcs.View{
		Group:   MovieGroup("m"),
		ID:      gcs.ViewID{Seq: 99, Coord: "s1"},
		Members: []gcs.ProcessID{"s1"},
	})
	clk.Advance(100 * time.Millisecond)

	s.mu.Lock()
	ms.resolveDuplicateLocked("s0", rec) // strike one again, not two
	s.mu.Unlock()
	if len(s.ActiveSessions()) != 1 {
		t.Fatal("conflict evidence survived a view change")
	}
}

func TestMergeLatestWins(t *testing.T) {
	_, s, _ := serverRig(t)
	ms := s.movies["m"]
	s.mu.Lock()
	defer s.mu.Unlock()

	ms.mergeLocked(wire.ClientRecord{ClientID: "c1", Offset: 100, SentAt: 1000})
	ms.mergeLocked(wire.ClientRecord{ClientID: "c1", Offset: 50, SentAt: 500}) // stale
	if got := ms.clients["c1"].Offset; got != 100 {
		t.Fatalf("stale record overwrote fresh one: offset %d", got)
	}
	ms.mergeLocked(wire.ClientRecord{ClientID: "c1", Offset: 200, SentAt: 2000})
	if got := ms.clients["c1"].Offset; got != 200 {
		t.Fatalf("fresh record not applied: offset %d", got)
	}
	// A departed tombstone removes the client, and stale resurrection is
	// rejected.
	ms.mergeLocked(wire.ClientRecord{ClientID: "c1", Departed: true, SentAt: 3000})
	if _, ok := ms.clients["c1"]; ok {
		t.Fatal("tombstone did not remove the client")
	}
	ms.mergeLocked(wire.ClientRecord{ClientID: "c1", Offset: 150, SentAt: 2500})
	if got := ms.clients["c1"].Offset; got != 150 {
		// Note: resurrection with an *older* timestamp is accepted once
		// the tombstone dropped the entry — documented simplification
		// (tombstones are not persisted). This assertion just pins the
		// current behavior.
		t.Fatalf("post-tombstone merge: offset %d", got)
	}
}

func TestQualityThinningKeepsIFrames(t *testing.T) {
	// White-box check of the thinning credit logic via a full session:
	// covered end-to-end in server_test.go; here verify the credit math
	// directly over the movie structure.
	movie := mpeg.Generate("m", mpeg.StreamConfig{Duration: 10 * time.Second, Seed: 1})
	fps := movie.FPS()
	quality := 10
	credit := 0
	sent, sentI, totalI := 0, 0, 0
	for i := 0; i < movie.TotalFrames(); i++ {
		info := movie.Frame(i)
		if info.Class == wire.FrameI {
			totalI++
		}
		credit += quality
		if info.Class == wire.FrameI || credit >= fps {
			credit -= fps
			sent++
			if info.Class == wire.FrameI {
				sentI++
			}
		}
	}
	if sentI != totalI {
		t.Fatalf("thinning dropped I frames: %d of %d sent", sentI, totalI)
	}
	// Sent rate ≈ quality/fps of the stream (I frames can push it a bit
	// above).
	frac := float64(sent) / float64(movie.TotalFrames())
	if frac < 0.30 || frac > 0.45 {
		t.Fatalf("thinned stream is %.0f%% of frames, want ≈ 33%%", frac*100)
	}
}
