package server

import (
	"time"

	"repro/internal/clock"
)

// Striped egress (Config.StripedEgress): sessions that share a movie and a
// send period attach to one coalesced ticker — the stripe — instead of each
// arming a dedicated pacing timer. At the headline two-tier scale a server
// streams one title to ~200 viewers at one shared rate, so striping turns
// ~200 timer events per frame period into one event that walks a flat entry
// slice in attach order. Every per-session decision (thinning, degrade,
// shaper tokens, end-of-movie) still runs per session inside the walk, via
// the same paceTickLocked body the dedicated-timer path uses.
//
// Determinism: stripes are created, attached to and walked in simulation
// event order; the only map (Server.stripes) is never iterated outside the
// sorted shutdown path. A striped run is therefore byte-identical for a
// fixed seed — it is only versus a non-striped run of the same scenario
// that per-frame timing shifts (first sends quantize to the stripe's next
// tick), which is why the feature is opt-in.

// stripeKey identifies a stripe: one movie at one send period and one
// frame-phase slot. Rate changes (flow control, emergency boost) migrate a
// session to the stripe matching its new period at the next tick.
type stripeKey struct {
	movie  string
	period time.Duration
	phase  int32
}

// stripePhaseSlots divides each send period into phase buckets. Sessions
// attach to the bucket holding their own pacing phase, so a session's beats
// land within period/stripePhaseSlots of where its dedicated timer would
// have fired, and each tick bursts only a bucket's worth of frames into the
// shared egress queue instead of every viewer of the movie at once — small
// enough perturbations that the scale table renders identically with
// striping on and off. One movie at one rate still collapses from one timer
// per session to at most this many tickers.
const stripePhaseSlots = 16

// stripeEntry is one attached session. gen guards against pooled session
// records reincarnating under a stale entry: a mismatch means the record
// was retired and reused, and the entry is dropped on the next walk.
type stripeEntry struct {
	sess *session
	gen  uint64
}

type stripe struct {
	srv     *Server
	key     stripeKey
	task    *clock.Periodic
	entries []stripeEntry
}

// attachStripeLocked puts sess on the stripe for its movie and current send
// period, creating the stripe (and its ticker) on first use. Attaching to
// the stripe the session is already on is a no-op, so the scheduling path
// may call this on every tick-like event. Caller holds s.mu.
func (s *Server) attachStripeLocked(sess *session) {
	period := sess.sendPeriodLocked()
	// The session's pacing phase is where "now + period" falls within the
	// period cycle, i.e. now's own phase. A stripe's ticker is created at
	// the first attach, so its beats carry that member's phase; later
	// attachers land in the same slot only if their phase is within one
	// slot width, bounding how far any beat sits from the dedicated-timer
	// schedule it replaces.
	phase := int32(s.cfg.Clock.Now().UnixNano() % int64(period) * stripePhaseSlots / int64(period))
	key := stripeKey{movie: sess.movie.ID(), period: period, phase: phase}
	if st := sess.stripe; st != nil {
		if st.key == key {
			return
		}
		st.entries[sess.stripePos].sess = nil
		sess.stripe = nil
	}
	st := s.stripes[key]
	if st == nil {
		st = &stripe{srv: s, key: key}
		if s.stripes == nil {
			s.stripes = make(map[stripeKey]*stripe)
		}
		s.stripes[key] = st
		st.task = clock.Every(s.cfg.Clock, key.period, st.tick)
	}
	st.entries = append(st.entries, stripeEntry{sess: sess, gen: sess.gen})
	sess.stripePos = len(st.entries) - 1
	sess.stripe = st
}

// tick is one stripe beat: walk the attached sessions in attach order,
// advance each by one frame, and compact detached entries in place. A
// session whose shaper draw failed last beat skips this one (shedSkip),
// reproducing the dedicated timer's 2×-period retry; one that finished its
// movie or changed rate leaves the stripe. The last leaver retires the
// stripe and its ticker.
func (st *stripe) tick() {
	s := st.srv
	s.mu.Lock()
	// Broadcast fan-out: collect the walk's frame sends into the server's
	// batch scratch instead of transmitting one by one, then flush them
	// below in a single batched network call — still inside this same clock
	// event and lock hold, so RNG draws and egress arithmetic happen in the
	// exact order the per-send path produced them.
	s.txCollect = s.vidBatch != nil
	entries := st.entries
	k := 0
	for i := range entries {
		e := entries[i]
		sess := e.sess
		if sess == nil || sess.stripe != st || sess.gen != e.gen || sess.closed {
			continue
		}
		if !sess.rec.Paused {
			if sess.shedSkip {
				sess.shedSkip = false
			} else if sess.paceTickLocked(true) == txShed {
				sess.shedSkip = true
			}
		}
		if sess.atEnd {
			sess.stripe = nil
			continue
		}
		if sess.sendPeriodLocked() != st.key.period {
			sess.stripe = nil
			s.attachStripeLocked(sess)
			continue
		}
		sess.stripePos = k
		entries[k] = e
		k++
	}
	for i := k; i < len(entries); i++ {
		entries[i] = stripeEntry{}
	}
	st.entries = entries[:k]
	if s.txCollect {
		s.txCollect = false
		if len(s.txDsts) > 0 {
			_ = s.vidBatch.SendPreframedRefBatch(s.txDsts, s.txPkts)
			s.txDsts = s.txDsts[:0]
			s.txPkts = s.txPkts[:0]
		}
	}
	if k == 0 && !s.closed {
		st.task.Stop()
		delete(s.stripes, st.key)
	}
	s.mu.Unlock()
}
