package server_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
)

// startOverloadServer brings up a server with the traffic-class ladder.
func (r *rig) startOverloadServer(t *testing.T, id string, maxSessions int, ov server.OverloadConfig) *server.Server {
	t.Helper()
	cat := store.NewCatalog()
	cat.Add(r.movie)
	s, err := server.New(server.Config{
		ID:          id,
		Clock:       r.clk,
		Network:     r.net,
		Catalog:     cat,
		Peers:       r.peers,
		MaxSessions: maxSessions,
		Overload:    ov,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.servers[id] = s
	return s
}

// startClassClient starts a client with an explicit traffic class and
// refusal-backoff tuning.
func (r *rig) startClassClient(id string, class wire.Class, backoff, cap time.Duration, servers ...string) *client.Client {
	r.t.Helper()
	c, err := client.New(client.Config{
		ID:                id,
		Clock:             r.clk,
		Network:           r.net,
		Servers:           servers,
		Class:             class,
		RefusalBackoff:    backoff,
		RefusalBackoffCap: cap,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	r.clients[id] = c
	return c
}

// TestBestEffortRefusedDuringPartitionAdmitsAfterHeal: a best-effort open
// that is refused at the best-effort rung keeps retrying through a network
// partition (during which its opens are simply lost) and is admitted once
// the partition heals and capacity has freed up — refusal is a deferral,
// never a terminal state.
func TestBestEffortRefusedDuringPartitionAdmitsAfterHeal(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startOverloadServer(t, "s1", 4, server.OverloadConfig{
		BestEffortSessions: 1,
		RetryAfter:         200 * time.Millisecond,
	})
	r.run(time.Second)

	c1 := r.startClassClient("c1", wire.ClassBestEffort, 50*time.Millisecond, time.Second, "s1")
	if err := c1.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(2 * time.Second)
	if got := c1.State(); got != client.StateWatching {
		t.Fatalf("c1 state = %v, want watching", got)
	}

	// c2 hits the best-effort rung and is refused with a retry hint.
	c2 := r.startClassClient("c2", wire.ClassBestEffort, 50*time.Millisecond, time.Second, "s1")
	if err := c2.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(2 * time.Second)
	if got := c2.State(); got != client.StateOpening {
		t.Fatalf("c2 state = %v, want still opening (refused)", got)
	}
	refusedSoFar := c2.Stats().OpenRefusals
	if refusedSoFar == 0 {
		t.Fatal("c2 saw no refusals before the partition")
	}

	// Partition c2 away; its retries go nowhere. Meanwhile the seat frees.
	r.net.Partition([]transport.Addr{"c2"}, []transport.Addr{"s1", "c1"})
	if err := c1.StopWatching(); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if got := c2.State(); got != client.StateOpening {
		t.Fatalf("c2 state = %v during partition, want still opening", got)
	}
	if n := len(r.servers["s1"].ActiveSessions()); n != 0 {
		t.Fatalf("s1 sessions = %d during partition, want 0", n)
	}

	// Heal: the next retry reaches the server and is admitted.
	r.net.Heal()
	r.run(5 * time.Second)
	if got := c2.State(); got != client.StateWatching {
		t.Fatalf("c2 state = %v after heal, want watching", got)
	}
	if n := len(r.servers["s1"].ActiveSessions()); n != 1 {
		t.Fatalf("s1 sessions = %d after heal, want 1", n)
	}
	st := r.servers["s1"].Stats()
	if st.RefusalsBestEffort == 0 || st.AdmitsBestEffort != 2 {
		t.Fatalf("server refusals=%d admits=%d, want refusals>0 admits=2",
			st.RefusalsBestEffort, st.AdmitsBestEffort)
	}
}

// TestRefusalBackoffExactCounters pins the refusal-retry schedule against
// a permanently full server: the first retry comes exactly one
// RefusalBackoff later (no jitter, preserving byte-identity for isolated
// refusals), then the delay doubles with seeded jitter up to the cap. The
// server carries no Retry-After hint (no Overload config), so this is the
// client's own schedule; the refusal counts at each checkpoint are exact
// for the rig's fixed seed.
func TestRefusalBackoffExactCounters(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startLimitedServer(t, "s1", 1)
	r.run(time.Second)

	c1 := r.startClassClient("c1", wire.ClassReserved, 100*time.Millisecond, 800*time.Millisecond, "s1")
	if err := c1.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(time.Second)

	c2 := r.startClassClient("c2", wire.ClassBestEffort, 100*time.Millisecond, 800*time.Millisecond, "s1")
	if err := c2.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	// Refusal n waits ~100·2^(n-1) ms (jittered from the second on, capped
	// at 800ms): the streak is exactly reproducible for the rig's seed.
	for _, cp := range []struct {
		after time.Duration
		want  uint64
	}{
		{50 * time.Millisecond, 1},  // initial open refused at once
		{100 * time.Millisecond, 2}, // first retry: exactly +100ms, no jitter
		{4 * time.Second, 7},        // doubling + jitter reaches the 800ms cap
		{4 * time.Second, 12},       // capped: ~800-1000ms per retry
	} {
		r.run(cp.after)
		if got := c2.Stats().OpenRefusals; got != cp.want {
			t.Fatalf("refusals at t+%s = %d, want exactly %d", cp.after, got, cp.want)
		}
	}
	if got := c2.State(); got != client.StateOpening {
		t.Fatalf("c2 state = %v, want still opening", got)
	}
}

// TestRefusalHonorsRetryAfterHint: the server's RetryAfter hint floors the
// client's own backoff — a refused client must not come back faster than
// the server asked, even when its local backoff is much shorter.
func TestRefusalHonorsRetryAfterHint(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startOverloadServer(t, "s1", 1, server.OverloadConfig{
		BestEffortSessions: 1,
		RetryAfter:         2 * time.Second,
	})
	r.run(time.Second)

	c1 := r.startClassClient("c1", wire.ClassReserved, 100*time.Millisecond, 800*time.Millisecond, "s1")
	if err := c1.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(time.Second)

	c2 := r.startClassClient("c2", wire.ClassBestEffort, 10*time.Millisecond, 100*time.Millisecond, "s1")
	if err := c2.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(10 * time.Second)
	// 10s with a 2s floor (plus up to 25% jitter) bounds the streak at
	// 1 initial + at most 5 retries; without the hint the 10ms backoff
	// would have produced ~100.
	if got := c2.Stats().OpenRefusals; got < 3 || got > 6 {
		t.Fatalf("refusals over 10s with 2s hint = %d, want 3..6", got)
	}
	if st := r.servers["s1"].Stats(); st.RefusalsBestEffort != c2.Stats().OpenRefusals {
		t.Fatalf("server counted %d refusals, client saw %d", st.RefusalsBestEffort, c2.Stats().OpenRefusals)
	}
}
