package server_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
)

// startFetchingServer brings up a server with an EMPTY catalog that must
// replicate the movie from its peers before serving it.
func (r *rig) startFetchingServer(t *testing.T, id string, movies ...string) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		ID:          id,
		Clock:       r.clk,
		Network:     r.net,
		Catalog:     store.NewCatalog(), // nothing pre-provisioned
		Peers:       r.peers,
		FetchMovies: movies,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.servers[id] = s
	return s
}

// TestFreshServerReplicatesAndServes is the paper's §7 claim end to end:
// a server brought up with no special preparations (not even the movie)
// fetches it from a peer, joins the movie group, and absorbs the client.
func TestFreshServerReplicatesAndServes(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1", "s2")
	r.startServer("s1")
	c := r.startClient("c1", "s1", "s2")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(10 * time.Second)
	if got := r.servingServerOf("c1"); got != "s1" {
		t.Fatalf("serving = %q before the new server", got)
	}

	// s2 starts empty-handed: fetch, join, take over as the newcomer.
	r.startFetchingServer(t, "s2", "casablanca")
	r.run(8 * time.Second)

	if got := r.servingServerOf("c1"); got != "s2" {
		t.Fatalf("serving = %q, want the freshly-replicated s2", got)
	}
	// Playback never noticed any of it.
	before := c.Counters().Displayed
	r.run(5 * time.Second)
	if got := c.Counters().Displayed - before; got < 130 {
		t.Fatalf("displayed %d frames after the replication handoff", got)
	}
	if got := c.Counters().MaxStallRun; got > 15 {
		t.Fatalf("froze %d ticks across the replication handoff", got)
	}
}

// TestFreshServerSurvivesDeadPeerInList: the fetch loop rotates past dead
// peers until it finds the movie.
func TestFreshServerSurvivesDeadPeerInList(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s0", "s1", "s2")
	// s0 is in everyone's peer list but never started; bind its address so
	// sends are silently dropped rather than erroring.
	if _, err := r.net.NewEndpoint("s0"); err != nil {
		t.Fatal(err)
	}
	r.startServer("s1")
	r.run(time.Second)

	r.startFetchingServer(t, "s2", "casablanca")
	r.run(15 * time.Second) // includes the dead-peer timeout cycle

	c := r.startClient("c1", "s2")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if got := c.State(); got != client.StateWatching {
		t.Fatalf("client state = %v; replicated server cannot serve", got)
	}
}
