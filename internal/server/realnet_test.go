package server_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
)

type udpNetwork struct{}

func (udpNetwork) NewEndpoint(addr transport.Addr) (transport.Endpoint, error) {
	return transport.ListenUDP(string(addr), addr)
}

// TestRealClockUDPFailover runs the whole stack — real clock, real UDP on
// loopback, no simulation — through a short stream and a crash failover.
// This is the path the cmd/ binaries use; timer jitter and goroutine
// scheduling here have historically exposed bugs the virtual clock hides
// (the duplicate-session anti-entropy, for one). Wall time ≈ 7 s.
func TestRealClockUDPFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test; skipped in -short mode")
	}
	var (
		clk     clock.Real
		network udpNetwork
		servers = []string{"127.0.0.1:19701", "127.0.0.1:19702"}
	)
	movie := mpeg.Generate("short", mpeg.StreamConfig{Duration: 20 * time.Second, Seed: 1})

	running := make(map[string]*server.Server)
	for _, id := range servers {
		cat := store.NewCatalog()
		cat.Add(movie)
		s, err := server.New(server.Config{
			ID: id, Clock: clk, Network: network, Catalog: cat, Peers: servers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
		running[id] = s
	}
	time.Sleep(500 * time.Millisecond)

	c, err := client.New(client.Config{
		ID: "127.0.0.1:19710", Clock: clk, Network: network, Servers: servers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Watch("short"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for c.State() != client.StateWatching {
		if time.Now().After(deadline) {
			t.Fatalf("never reached watching; state=%v", c.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Let the buffers build toward steady state (they need ~10 simulated
	// seconds to fill; ~6 s gives enough slack to cover the outage).
	time.Sleep(6 * time.Second)

	// Kill whichever server is streaming.
	var victim string
	for id, s := range running {
		if len(s.ActiveSessions()) > 0 {
			victim = id
		}
	}
	if victim == "" {
		t.Fatal("nobody serving")
	}
	before := c.Counters().Displayed
	running[victim].Stop()
	delete(running, victim)

	time.Sleep(4 * time.Second)
	after := c.Counters()
	if after.Displayed-before < 60 {
		t.Fatalf("displayed only %d frames across a real-network failover", after.Displayed-before)
	}
	// Real-clock timer jitter plus the partially-filled buffers allow a
	// short hiccup; a freeze beyond one second means failover is broken.
	if after.MaxStallRun > 30 {
		t.Fatalf("froze for %d ticks (>1s) during real-network failover", after.MaxStallRun)
	}
	for _, s := range running {
		if len(s.ActiveSessions()) != 1 {
			t.Fatalf("survivor has %d sessions", len(s.ActiveSessions()))
		}
	}
}
