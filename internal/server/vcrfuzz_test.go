package server_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// TestVCRFuzz drives a session with randomized VCR operations — seeks,
// pauses, quality flips — with a mid-run server crash thrown in, and
// checks the invariants that must survive any interleaving:
//
//   - the client never wedges: after the chaos, playback still advances;
//   - no I frame is ever discarded by buffer overflow;
//   - exactly one server serves the client once things settle;
//   - display order stays monotone between seeks (enforced by the buffer
//     pipeline's property tests; revalidated here end to end by progress).
func TestVCRFuzz(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r := newRig(t, netsim.LAN(), "s1", "s2")
			r.startServer("s1")
			r.startServer("s2")
			r.run(2 * time.Second)
			c := r.startClient("c1", "s1", "s2")
			if err := c.Watch("casablanca"); err != nil {
				t.Fatal(err)
			}
			r.run(3 * time.Second)

			paused := false
			crashed := false
			finished := false
			for op := 0; op < 25 && !finished; op++ {
				r.run(time.Duration(200+rng.Intn(1500)) * time.Millisecond)
				if c.State() == client.StateFinished {
					// A seek near the end legitimately finishes the movie.
					finished = true
					break
				}
				switch k := rng.Intn(10); {
				case k < 3: // random access
					if err := c.Seek(uint32(rng.Intn(1700))); err != nil {
						t.Fatal(err)
					}
				case k < 5:
					if paused {
						if err := c.Resume(); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := c.Pause(); err != nil {
							t.Fatal(err)
						}
					}
					paused = !paused
				case k < 7: // quality flip
					q := uint16([]int{10, 15, 30}[rng.Intn(3)])
					if err := c.SetQuality(q); err != nil {
						t.Fatal(err)
					}
				case k < 8 && !crashed: // kill the serving server once
					if serving := r.servingServerOf("c1"); serving != "" {
						r.servers[serving].Stop()
						r.net.Crash(transport.Addr(serving))
						delete(r.servers, serving)
						crashed = true
					}
				}
			}
			// Settle: resume, full quality, let the system stabilize.
			if !finished {
				if paused {
					if err := c.Resume(); err != nil {
						t.Fatal(err)
					}
				}
				if err := c.SetQuality(30); err != nil {
					t.Fatal(err)
				}
				r.run(5 * time.Second)

				before := c.Counters().Displayed
				r.run(5 * time.Second)
				progressed := c.Counters().Displayed - before
				// The movie may legitimately end mid-window; accept either
				// steady progress or a finished stream.
				if progressed < 100 && c.State() != client.StateFinished {
					t.Fatalf("playback wedged after VCR fuzz: %d frames in 5s (state %v)",
						progressed, c.State())
				}
			}
			if got := c.Counters().OverflowDroppedI; got != 0 {
				t.Fatalf("dropped %d I frames during fuzz", got)
			}
			if n := r.servingCount("c1"); n > 1 {
				t.Fatalf("client served by %d servers after fuzz", n)
			}
		})
	}
}

// servingServerOf returns which live server holds the session.
func (r *rig) servingServerOf(clientID string) string {
	for id, s := range r.servers {
		for _, c := range s.ActiveSessions() {
			if c == clientID {
				return id
			}
		}
	}
	return ""
}
