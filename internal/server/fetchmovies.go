package server

import (
	"time"

	"repro/internal/gcs"
	"repro/internal/mpeg"
)

// fetchNext replicates the missing movies one at a time, trying each peer
// in turn, and starts serving each movie the moment it lands (joining its
// movie group triggers the usual knowledge exchange and redistribution, so
// the fresh server immediately absorbs load — §7's "new server brought up
// without any special preparations").
func (s *Server) fetchNext(missing []string, peers []gcs.ProcessID, peerIdx int) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed || len(missing) == 0 {
		return
	}
	movieID := missing[0]
	if s.cfg.Catalog.Has(movieID) {
		s.later(func() { s.fetchNext(missing[1:], peers, 0) })
		return
	}
	if len(peers) == 0 {
		return // no peers configured; nothing to fetch from
	}
	peer := peers[peerIdx%len(peers)]
	err := s.fetcher.Fetch(movieID, peer, func(m *mpeg.Movie, err error) {
		if err != nil {
			// This peer is down or lacks the movie: rotate to the next
			// one after a beat. The loop never gives up — a peer holding
			// the movie may come up later.
			s.cfg.Clock.AfterFunc(time.Second, func() {
				s.fetchNext(missing, peers, peerIdx+1)
			})
			return
		}
		s.cfg.Catalog.Add(m)
		// Joining the movie group may race a concurrent shutdown; a
		// failure here only means the movie sits in the catalog unserved.
		_ = s.serveMovie(movieID, peers)
		s.later(func() { s.fetchNext(missing[1:], peers, 0) })
	})
	if err != nil {
		// A transfer is already in flight (should not happen — fetches
		// are sequential); retry shortly.
		s.cfg.Clock.AfterFunc(time.Second, func() {
			s.fetchNext(missing, peers, peerIdx)
		})
	}
}
