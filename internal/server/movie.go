package server

import (
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/gcs"
	"repro/internal/mpeg"
	"repro/internal/wire"
)

// movieState is this server's view of one movie group (§5.2): the group
// membership, the knowledge table of every client watching the movie
// (merged from the periodic state syncs, latest record wins), and the
// view-change machinery that exchanges knowledge and re-distributes the
// clients.
type movieState struct {
	srv    *Server
	movie  *mpeg.Movie
	member *gcs.Member

	view      gcs.View
	everMulti bool // has been in a multi-member view before

	// clients is the knowledge table: the latest ClientRecord heard for
	// each client of this movie — including this server's own clients as
	// of the last periodic sync (deliberately not fresher: takeover
	// resumes from "the offset ... last heard", §5.2).
	clients map[string]wire.ClientRecord

	// View-sync exchange state: after a view change, redistribution waits
	// until every member's knowledge message (or a timeout) arrives.
	pendingSeq    uint64
	syncFrom      map[gcs.ProcessID]bool
	newcomers     map[gcs.ProcessID]bool
	exchangeTimer clock.Timer

	syncTask *clock.Periodic

	// recScratch and syncState are the periodic sync's reusable snapshot
	// and message scratch, guarded by srv.mu. At cluster scale a sync fires
	// per open and per half second per movie; without the reuse each tick
	// allocates a fresh record slice and message.
	recScratch []wire.ClientRecord
	syncState  wire.ClientState

	// syncBuf is the sync packet's reusable encode buffer. Multicast copies
	// the payload before returning, but the buffer stays aliased until it
	// does — after srv.mu is released — so sendMu (acquired inside srv.mu,
	// held across the send) guards it rather than srv.mu.
	sendMu  sync.Mutex
	syncBuf []byte
}

// syncTick is the half-second state multicast: this server's live sessions
// for the movie, refreshed into its own knowledge table and shared with
// the group.
func (ms *movieState) syncTick() {
	s := ms.srv
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	recs := ms.ownRecordsLocked()
	if len(recs) == 0 {
		// Nothing to report; an idle server stays silent so the sync
		// overhead is proportional to the client load, as in the paper.
		s.mu.Unlock()
		return
	}
	for _, rec := range recs {
		ms.clients[rec.ClientID] = rec
	}
	ms.syncState = wire.ClientState{Server: s.cfg.ID, Clients: recs}
	ms.sendMu.Lock()
	pkt := wire.AppendMessage(ms.syncBuf[:0], &ms.syncState)
	ms.syncBuf = pkt[:0]
	s.stats.SyncMessages++
	s.stats.SyncBytes += uint64(len(pkt))
	s.ctr.syncMessages.Inc()
	s.ctr.syncBytes.Add(uint64(len(pkt)))
	member := ms.member
	s.mu.Unlock()

	if member != nil {
		_ = member.Multicast(pkt)
	}
	ms.sendMu.Unlock()
}

// ownRecordsLocked snapshots the live state of this server's sessions for
// this movie into the movie's reusable scratch slice: the snapshot is only
// referenced until the next sync tick (merged by value, encoded to a fresh
// packet), so reusing the backing array is safe. Caller holds srv.mu.
func (ms *movieState) ownRecordsLocked() []wire.ClientRecord {
	now := ms.srv.cfg.Clock.Now().UnixMilli()
	recs := ms.recScratch[:0]
	for _, sess := range ms.srv.sessions {
		if sess.movie.ID() != ms.movie.ID() || sess.closed {
			continue
		}
		rec := sess.rec
		rec.SentAt = now
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ClientID < recs[j].ClientID })
	ms.recScratch = recs
	return recs
}

// noteDepartedLocked records a finished session and announces the
// tombstone immediately so peers forget the client. Caller holds srv.mu.
func (ms *movieState) noteDepartedLocked(rec wire.ClientRecord) {
	delete(ms.clients, rec.ClientID)
	rec.Departed = true
	rec.SentAt = ms.srv.cfg.Clock.Now().UnixMilli()
	pkt := wire.Encode(&wire.ClientState{Server: ms.srv.cfg.ID, Clients: []wire.ClientRecord{rec}})
	member := ms.member
	if member != nil {
		ms.srv.later(func() { _ = member.Multicast(pkt) })
	}
}

// onMessage merges a peer's state-sync message into the knowledge table
// and advances the view-sync exchange.
func (ms *movieState) onMessage(from gcs.ProcessID, msg *wire.ClientState) {
	s := ms.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range msg.Clients {
		ms.resolveDuplicateLocked(from, rec)
		ms.mergeLocked(rec)
	}
	if msg.ViewSeq != 0 && msg.ViewSeq == ms.pendingSeq && ms.syncFrom != nil {
		ms.syncFrom[from] = true
		if msg.Newcomer {
			ms.newcomers[from] = true
		}
		for _, id := range ms.view.Members {
			if !ms.syncFrom[id] {
				return
			}
		}
		ms.redistributeLocked()
	}
}

// resolveDuplicateLocked is the anti-entropy safety net: if a peer's sync
// shows it actively serving a client this server also serves — possible
// after failure-detector flaps produce divergent redistributions — exactly
// one of the two must yield. The higher-ID claimant releases; the lower
// keeps streaming, so the client is never orphaned. Caller holds srv.mu.
func (ms *movieState) resolveDuplicateLocked(from gcs.ProcessID, rec wire.ClientRecord) {
	if rec.Departed || ms.pendingSeq != 0 {
		return // no conflict, or a redistribution is about to settle ownership
	}
	sess := ms.srv.sessions[rec.ClientID]
	if sess == nil || sess.closed || sess.movie.ID() != ms.movie.ID() {
		return
	}
	if string(from) >= ms.srv.cfg.ID {
		return // the peer is the one that must yield
	}
	// First claim may be a sync the peer sent just before releasing the
	// client itself; only a repeated claim proves a real duplicate.
	if sess.conflicts == nil {
		sess.conflicts = make(map[gcs.ProcessID]bool)
	}
	if !sess.conflicts[from] {
		sess.conflicts[from] = true
		return
	}
	ms.srv.dropSessionLocked(sess)
	ms.srv.stats.Releases++
	ms.srv.ctr.releases.Inc()
	ms.srv.cfg.Obs.Event("server.duplicate_release", rec.ClientID+" vs "+string(from))
}

// mergeLocked folds one record in, newest SentAt winning. Caller holds
// srv.mu.
func (ms *movieState) mergeLocked(rec wire.ClientRecord) {
	cur, known := ms.clients[rec.ClientID]
	if known && cur.SentAt > rec.SentAt {
		return
	}
	if rec.Departed {
		delete(ms.clients, rec.ClientID)
		return
	}
	ms.clients[rec.ClientID] = rec
}

// onView handles a movie-group membership change: start the knowledge
// exchange that precedes redistribution.
func (ms *movieState) onView(v gcs.View) {
	s := ms.srv
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// A server is a "newcomer" if this is its first multi-member view and
	// it arrives with no client knowledge — a fresh server brought up to
	// alleviate load. Newcomers are dealt clients first in redistribution.
	newcomer := !ms.everMulti && len(ms.clients) == 0
	ms.view = v
	if len(v.Members) > 1 {
		ms.everMulti = true
	}
	ms.pendingSeq = v.ID.Seq
	ms.syncFrom = map[gcs.ProcessID]bool{}
	ms.newcomers = map[gcs.ProcessID]bool{}
	if ms.exchangeTimer != nil {
		ms.exchangeTimer.Stop()
	}
	// The coming redistribution settles ownership; stale conflict
	// evidence must not linger past it.
	for _, sess := range s.sessions {
		if sess.movie.ID() == ms.movie.ID() {
			sess.conflicts = nil
		}
	}

	if len(v.Members) == 1 {
		// Alone: no exchange needed.
		ms.syncFrom[v.Members[0]] = true
		if newcomer {
			ms.newcomers[v.Members[0]] = true
		}
		ms.redistributeLocked()
		s.mu.Unlock()
		return
	}

	recs := ms.ownRecordsLocked()
	for _, rec := range recs {
		ms.clients[rec.ClientID] = rec
	}
	// The exchange shares the full knowledge table, so a joiner learns
	// about every client from any single member.
	all := make([]wire.ClientRecord, 0, len(ms.clients))
	for _, rec := range ms.clients {
		all = append(all, rec)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ClientID < all[j].ClientID })
	msg := &wire.ClientState{
		Server:   s.cfg.ID,
		Clients:  all,
		ViewSeq:  v.ID.Seq,
		Newcomer: newcomer,
	}
	pkt := wire.Encode(msg)
	s.stats.SyncMessages++
	s.stats.SyncBytes += uint64(len(pkt))
	s.ctr.syncMessages.Inc()
	s.ctr.syncBytes.Add(uint64(len(pkt)))
	member := ms.member
	seq := v.ID.Seq
	ms.exchangeTimer = s.cfg.Clock.AfterFunc(2*s.cfg.SyncInterval, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if ms.pendingSeq == seq && ms.syncFrom != nil {
			// Proceed with whoever answered; a silent member is likely
			// dead and the next view change will rebalance again.
			ms.redistributeLocked()
		}
	})
	s.mu.Unlock()

	if member != nil {
		_ = member.Multicast(pkt)
	}
}

// redistributeLocked deterministically re-assigns every known client of
// this movie across the current view and acts on the result: taking over
// clients assigned here and releasing clients assigned elsewhere. All
// members compute the same assignment from the exchanged knowledge.
// Caller holds srv.mu.
func (ms *movieState) redistributeLocked() {
	s := ms.srv
	ms.pendingSeq = 0
	ms.syncFrom = nil
	if ms.exchangeTimer != nil {
		ms.exchangeTimer.Stop()
		ms.exchangeTimer = nil
	}

	clientIDs := make([]string, 0, len(ms.clients))
	for id, rec := range ms.clients {
		if rec.Leased {
			// Leased clients re-attach by re-anycasting their Open when
			// their server goes silent; assigning them here would start a
			// stream the client never asked this server for.
			continue
		}
		clientIDs = append(clientIDs, id)
	}
	order := memberOrder(ms.view.Members, ms.newcomers)
	assignment := Assign(clientIDs, order)

	// Apply in client-ID order, not assignment-map order: takeovers start
	// sessions (timers, packets) whose relative order must be a pure
	// function of the inputs for seed-reproducible runs.
	sort.Strings(clientIDs)
	for _, id := range clientIDs {
		owner := assignment[id]
		sess := s.sessions[id]
		mine := sess != nil && !sess.closed && sess.movie.ID() == ms.movie.ID()
		switch {
		case owner == gcs.ProcessID(s.cfg.ID) && !mine:
			rec := ms.clients[id]
			s.startSessionLocked(rec, ms.movie, true)
			s.stats.Takeovers++
			s.ctr.takeovers.Inc()
			s.cfg.Obs.Event("server.takeover", id+" movie="+ms.movie.ID())
		case owner != gcs.ProcessID(s.cfg.ID) && mine:
			s.dropSessionLocked(sess)
			s.stats.Releases++
			s.ctr.releases.Inc()
		}
	}
}

// memberOrder places newcomers (fresh, knowledge-less servers) first so
// they absorb load, then the remaining members; both halves sorted.
func memberOrder(members []gcs.ProcessID, newcomers map[gcs.ProcessID]bool) []gcs.ProcessID {
	fresh := make([]gcs.ProcessID, 0, len(members))
	old := make([]gcs.ProcessID, 0, len(members))
	for _, m := range members {
		if newcomers[m] {
			fresh = append(fresh, m)
		} else {
			old = append(old, m)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })
	return append(fresh, old...)
}

// Assign deals the sorted clients round-robin over the member order. It is
// deterministic in its inputs, so every server derives the same assignment
// without further agreement (§5.2: each server "deterministically decides
// which clients it now has to serve").
func Assign(clients []string, order []gcs.ProcessID) map[string]gcs.ProcessID {
	out := make(map[string]gcs.ProcessID, len(clients))
	if len(order) == 0 {
		return out
	}
	sorted := append([]string(nil), clients...)
	sort.Strings(sorted)
	for i, c := range sorted {
		out[c] = order[i%len(order)]
	}
	return out
}

// csEvent defers one decoded state-sync message to its own clock event —
// the same one-AfterFunc-per-message scheduling as the closure it replaces,
// but with the record, its decoded message (including the Clients backing
// array) and the bound fire closure pooled. Paired with the interning
// decode, a warm sync cycle allocates nothing on the receive side.
type csEvent struct {
	ms   *movieState
	from gcs.ProcessID
	msg  wire.ClientState
	fire func() // bound once to run; survives pooling
}

var csEventPool sync.Pool

func init() {
	csEventPool.New = func() any {
		e := new(csEvent)
		e.fire = e.run
		return e
	}
}

func (e *csEvent) run() {
	ms, from := e.ms, e.from
	e.ms, e.from = nil, ""
	ms.onMessage(from, &e.msg)
	csEventPool.Put(e)
}

// onMovieGroupMessage decodes and routes a movie-group multicast. The sync
// payload aliases the transport receive buffer, so it is decoded (copied,
// with record strings interned) before the deferral.
func (s *Server) onMovieGroupMessage(ms *movieState, from gcs.ProcessID, payload []byte) {
	if len(payload) == 0 || wire.Kind(payload[0]) != wire.KindClientState {
		return
	}
	e := csEventPool.Get().(*csEvent)
	s.syncMu.Lock()
	err := wire.DecodeClientStateInto(&e.msg, s.syncIntern, payload)
	s.syncMu.Unlock()
	if err != nil {
		csEventPool.Put(e)
		return
	}
	e.ms, e.from = ms, from
	s.cfg.Clock.AfterFunc(0, e.fire)
}

// SyncNow forces an immediate state sync for every movie group — used when
// a session just opened so peers learn about the client without waiting
// half a second.
func (s *Server) SyncNow() {
	s.mu.Lock()
	states := make([]*movieState, 0, len(s.movies))
	for _, ms := range s.movies {
		states = append(states, ms)
	}
	s.mu.Unlock()
	// Sync in movie-ID order, not map order, so the multicasts hit the
	// simulated network in a seed-deterministic sequence.
	sort.Slice(states, func(i, j int) bool { return states[i].movie.ID() < states[j].movie.ID() })
	for _, ms := range states {
		ms.syncTick()
	}
}
