package server_test

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestQualityPlaybackSpeed guards against the thinning pacing bug: a
// quality-reduced stream must advance through the movie at normal movie
// time (≈30 positions/s), not faster — thinning withholds frames, it does
// not accelerate playback.
func TestQualityPlaybackSpeed(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if err := c.SetQuality(10); err != nil {
		t.Fatal(err)
	}
	r.run(20 * time.Second)

	st := r.servers["s1"].Stats()
	// In ~20s of 10fps quality the server should transmit ≈ 200 frames
	// and withhold ≈ 400; at the old bug's 3x speed it would have burned
	// through far more of the movie.
	considered := st.FramesSent + st.FramesThinned
	if considered > 850 {
		t.Fatalf("server consumed %d movie positions in ~25s; movie playing too fast", considered)
	}
	sentDuringQuality := st.FramesSent - 150 // ≈5s full quality before the switch
	if sentDuringQuality > 350 {
		t.Fatalf("sent %d frames in 20s of 10fps quality, want ≈ 200–260", sentDuringQuality)
	}
	if st.FramesThinned < 250 {
		t.Fatalf("thinned only %d frames in 20s of 10fps quality", st.FramesThinned)
	}

	// The client displays smoothly at the reduced rate: ~10 displays/s.
	cnt := c.Counters()
	if cnt.Displayed < 250 || cnt.Displayed > 500 {
		t.Fatalf("displayed %d frames, want ≈ 150 (5s@30) + 200 (20s@10)", cnt.Displayed)
	}
	if cnt.MaxStallRun > 15 {
		t.Fatalf("quality playback froze for %d ticks", cnt.MaxStallRun)
	}
}

// TestQualityRestoreResumesFullRate verifies the round trip back to full
// quality.
func TestQualityRestoreResumesFullRate(t *testing.T) {
	r := newRig(t, netsim.LAN(), "s1")
	r.startServer("s1")
	c := r.startClient("c1", "s1")
	if err := c.Watch("casablanca"); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if err := c.SetQuality(10); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Second)
	if err := c.SetQuality(30); err != nil {
		t.Fatal(err)
	}
	r.run(time.Second) // control settles
	before := c.Counters().Displayed
	r.run(10 * time.Second)
	if got := c.Counters().Displayed - before; got < 270 {
		t.Fatalf("displayed %d frames in 10s after quality restore, want ≈ 300", got)
	}
}
