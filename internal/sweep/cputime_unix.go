//go:build unix

package sweep

import (
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative user+system CPU time. The sweep
// summary uses the delta across the run so Speedup reports CPU actually
// consumed per wall second — oversubscribing workers beyond the cores
// cannot inflate it (summed per-job elapsed time would, because a job's
// elapsed time includes the time it sat descheduled).
func cpuTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return time.Duration(ru.Utime.Nano()+ru.Stime.Nano()) * time.Nanosecond, true
}
