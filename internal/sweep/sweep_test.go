package sweep_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// TestOrderedResults: results come back indexed by job, not by completion
// order, whatever the worker count.
func TestOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		results, err := sweep.Run(context.Background(), 20, workers,
			func(i int, seed int64) (string, error) {
				return fmt.Sprintf("job-%d-seed-%d", i, seed), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if want := fmt.Sprintf("job-%d-seed-%d", i, i+1); r != want {
				t.Fatalf("workers=%d: results[%d] = %q, want %q", workers, i, r, want)
			}
		}
	}
}

// TestZeroJobs: an empty sweep returns an empty slice and no error.
func TestZeroJobs(t *testing.T) {
	results, sum, err := sweep.RunOpts(context.Background(), 0, sweep.Options{}, //
		func(i int, seed int64) (int, error) { return 0, nil })
	if err != nil || len(results) != 0 {
		t.Fatalf("zero jobs: results=%v err=%v", results, err)
	}
	if sum.Jobs != 0 || sum.Failed != 0 {
		t.Fatalf("zero jobs summary: %+v", sum)
	}
}

// TestWorkersExceedJobs: the pool clamps to the job count; every job still
// runs exactly once.
func TestWorkersExceedJobs(t *testing.T) {
	var calls atomic.Int64
	results, sum, err := sweep.RunOpts(context.Background(), 3, sweep.Options{Workers: 64},
		func(i int, seed int64) (int64, error) {
			calls.Add(1)
			return seed, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("ran %d jobs, want 3", calls.Load())
	}
	if sum.Workers != 3 {
		t.Fatalf("summary workers = %d, want clamp to 3", sum.Workers)
	}
	for i, r := range results {
		if r != int64(i+1) {
			t.Fatalf("results[%d] = %d, want seed %d", i, r, i+1)
		}
	}
}

// TestPanicCapture: a panicking seed reports as that job's failure —
// carrying the seed for replay — while every other job completes.
func TestPanicCapture(t *testing.T) {
	results, sum, err := sweep.RunOpts(context.Background(), 10,
		sweep.Options{Workers: 4, KeepGoing: true},
		func(i int, seed int64) (int64, error) {
			if seed == 7 {
				panic("seed 7 exploded")
			}
			return seed, nil
		})
	var errs sweep.Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want sweep.Errors, got %T: %v", err, err)
	}
	if len(errs) != 1 || errs[0].Seed != 7 || errs[0].Index != 6 {
		t.Fatalf("failure set = %v, want only seed 7", errs)
	}
	var pe *sweep.PanicError
	if !errors.As(errs[0].Err, &pe) {
		t.Fatalf("job error is %T, want PanicError", errs[0].Err)
	}
	if sum.Jobs != 10 || sum.Failed != 1 {
		t.Fatalf("summary %+v, want 10 ran / 1 failed", sum)
	}
	for i, r := range results {
		switch {
		case i == 6 && r != 0:
			t.Fatalf("failed job left a non-zero result %d", r)
		case i != 6 && r != int64(i+1):
			t.Fatalf("results[%d] = %d despite unrelated panic", i, r)
		}
	}
}

// TestFailFast: the first error stops dispatching new jobs.
func TestFailFast(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, sum, err := sweep.RunOpts(context.Background(), 1000, sweep.Options{Workers: 2},
		func(i int, seed int64) (int, error) {
			calls.Add(1)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("fail-fast still ran all %d jobs", n)
	}
	if sum.Failed != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestKeepGoingCollectsAll: keep-going runs every job and returns the
// failures sorted by index with sorted seeds.
func TestKeepGoingCollectsAll(t *testing.T) {
	var calls atomic.Int64
	_, sum, err := sweep.RunOpts(context.Background(), 30,
		sweep.Options{Workers: 4, KeepGoing: true},
		func(i int, seed int64) (int, error) {
			calls.Add(1)
			if seed%10 == 0 {
				return 0, fmt.Errorf("bad seed %d", seed)
			}
			return i, nil
		})
	if calls.Load() != 30 {
		t.Fatalf("keep-going ran %d/30 jobs", calls.Load())
	}
	var errs sweep.Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want sweep.Errors, got %v", err)
	}
	wantSeeds := []int64{10, 20, 30}
	got := errs.Seeds()
	if len(got) != len(wantSeeds) {
		t.Fatalf("failed seeds %v, want %v", got, wantSeeds)
	}
	for i := range got {
		if got[i] != wantSeeds[i] {
			t.Fatalf("failed seeds %v, want %v", got, wantSeeds)
		}
	}
	if sum.Failed != 3 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestContextCancelMidSweep: cancellation stops dispatch; in-flight jobs
// finish; the error wraps context.Canceled.
func TestContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, sum, err := sweep.RunOpts(ctx, 1000, sweep.Options{Workers: 2},
		func(i int, seed int64) (int, error) {
			if calls.Add(1) == 5 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum.Jobs >= 1000 {
		t.Fatalf("cancellation did not stop the sweep (%d jobs ran)", sum.Jobs)
	}
}

// TestProgressCallback: OnResult fires exactly once per job, serialized,
// and sees the job's error.
func TestProgressCallback(t *testing.T) {
	seen := make(map[int]bool)
	var failures int
	_, _, err := sweep.RunOpts(context.Background(), 50,
		sweep.Options{Workers: 8, KeepGoing: true,
			OnResult: func(i int, seed int64, err error) {
				// Serialized by the sweep lock: plain map access is the test.
				if seen[i] {
					t.Errorf("job %d reported twice", i)
				}
				seen[i] = true
				if err != nil {
					failures++
				}
			}},
		func(i int, seed int64) (int, error) {
			if i == 13 {
				return 0, errors.New("unlucky")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("want failure error")
	}
	if len(seen) != 50 || failures != 1 {
		t.Fatalf("progress saw %d jobs / %d failures, want 50 / 1", len(seen), failures)
	}
}

// TestObsSummary: the optional registry receives job/failure counters and
// the sweep.done trace event.
func TestObsSummary(t *testing.T) {
	reg := obs.NewRegistry("bench", nil)
	_, _, _ = sweep.RunOpts(context.Background(), 8,
		sweep.Options{Workers: 4, KeepGoing: true, Obs: reg},
		func(i int, seed int64) (int, error) {
			if i == 2 {
				return 0, errors.New("x")
			}
			return i, nil
		})
	snap := reg.Snapshot()
	if snap.Counters["sweep.jobs"] != 8 || snap.Counters["sweep.failures"] != 1 {
		t.Fatalf("obs counters = %v", snap.Counters)
	}
	found := false
	for _, ev := range snap.Events {
		if ev.Kind == "sweep.done" {
			found = true
		}
	}
	if !found {
		t.Fatal("no sweep.done event traced")
	}
}

// TestFirstSeed: FirstSeed offsets the seed handed to every job.
func TestFirstSeed(t *testing.T) {
	results, _, err := sweep.RunOpts(context.Background(), 3,
		sweep.Options{Workers: 2, FirstSeed: 100},
		func(i int, seed int64) (int64, error) { return seed, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range results {
		if s != int64(100+i) {
			t.Fatalf("job %d got seed %d, want %d", i, s, 100+i)
		}
	}
}
