// Package sweep is the deterministic parallel run engine: it executes N
// independent, seeded simulation jobs across a bounded worker pool and
// hands the results back in job order, byte-identical to the sequential
// loop it replaces.
//
// The determinism contract is strict and simple: parallelism is *across*
// runs, never inside one. Each job builds its own virtual clock, simulated
// network and observability registries from its seed, so job i's result is
// a pure function of (i, seed) — the worker count and scheduling order can
// change which job finishes first, but never what any job computes. The
// figures, tables and chaos verdicts produced through this package are
// therefore identical at workers=1 and workers=GOMAXPROCS (the equivalence
// tests in internal/chaos and internal/sim pin this forever).
//
// A panicking job is contained: the panic is captured with its stack and
// reported as that job's error (carrying the seed, so a chaos crash is
// replayable), while every other job runs to completion unaffected.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Func computes one job: i is the job index (0-based), seed the job's
// simulation seed (Options.FirstSeed + i). It must not share mutable state
// with other jobs — everything it touches should be derived from its
// arguments.
type Func[T any] func(i int, seed int64) (T, error)

// Options configures a sweep.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	// The pool is additionally clamped to the job count.
	Workers int
	// FirstSeed is the seed of job 0 (default 1); job i runs with
	// FirstSeed + i.
	FirstSeed int64
	// KeepGoing runs every job even after failures, collecting all errors
	// (the chaos-CLI mode: one bad seed must not hide the others). The
	// default is fail-fast: the first error stops dispatching new jobs
	// (in-flight jobs still finish).
	KeepGoing bool
	// OnResult, when non-nil, is called once per finished job, serialized
	// under the sweep's lock but in *completion* order, not job order.
	// Use it for progress reporting; results[i] is already written when
	// the callback for job i fires.
	OnResult func(i int, seed int64, err error)
	// Obs, when non-nil, receives the sweep summary: counters
	// "sweep.jobs", "sweep.failures" and a "sweep.done" trace event with
	// wall/CPU time and speedup.
	Obs *obs.Registry
}

// JobError is one failed job, tagged with the seed that reproduces it.
type JobError struct {
	Index int
	Seed  int64
	Err   error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("job %d (seed %d): %v", e.Index, e.Seed, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError wraps a recovered job panic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Errors is the sweep's failure set, sorted by job index. It satisfies
// error; callers needing the seeds use errors.As and Seeds.
type Errors []*JobError

func (e Errors) Error() string {
	if len(e) == 1 {
		return e[0].Error()
	}
	return fmt.Sprintf("%d jobs failed (seeds %v), first: %v", len(e), e.Seeds(), e[0])
}

// Unwrap exposes the individual job errors to errors.Is/As traversal.
func (e Errors) Unwrap() []error {
	out := make([]error, len(e))
	for i, je := range e {
		out[i] = je
	}
	return out
}

// Seeds returns the failed seeds in ascending order.
func (e Errors) Seeds() []int64 {
	seeds := make([]int64, len(e))
	for i, je := range e {
		seeds[i] = je.Seed
	}
	sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
	return seeds
}

// Summary reports what a sweep did and what the parallelism bought.
type Summary struct {
	Jobs    int // jobs that ran to completion (ok or failed)
	Failed  int // jobs that returned an error or panicked
	Workers int // resolved worker count
	// Wall is the sweep's wall-clock time. CPU is the process CPU time
	// consumed during the sweep (rusage delta, so oversubscribed workers
	// cannot inflate it; off unix it falls back to summed per-job elapsed
	// time). CPU/Wall is the achieved speedup: ≈min(Workers, cores) when
	// jobs are uniform and the machine keeps up, ≈1 on a single core.
	Wall, CPU time.Duration
}

// Speedup is the effective across-run parallel speedup (CPU time / wall
// time); 0 when nothing ran.
func (s Summary) Speedup() float64 {
	if s.Wall <= 0 || s.CPU <= 0 {
		return 0
	}
	return s.CPU.Seconds() / s.Wall.Seconds()
}

// String renders the summary for CLI output.
func (s Summary) String() string {
	return fmt.Sprintf("%d jobs, %d failed, %d workers, wall %s, cpu %s, speedup %.1fx",
		s.Jobs, s.Failed, s.Workers, s.Wall.Round(time.Millisecond),
		s.CPU.Round(time.Millisecond), s.Speedup())
}

// Run executes jobs 0..jobs-1 with seeds 1..jobs across workers (<= 0 for
// all cores), fail-fast, and returns the results in job order. It is the
// convenience form of RunOpts for the common "replace this for-loop" case.
func Run[T any](ctx context.Context, jobs, workers int, fn Func[T]) ([]T, error) {
	results, _, err := RunOpts(ctx, jobs, Options{Workers: workers}, fn)
	return results, err
}

// RunOpts executes jobs 0..jobs-1 across a bounded worker pool and returns
// the results in job order (results[i] is job i's value; failed or unrun
// jobs leave the zero value). The returned error is nil when every job
// succeeded; an Errors (sorted by index) when jobs failed; and wraps
// ctx.Err() when cancellation stopped the sweep before all jobs ran.
func RunOpts[T any](ctx context.Context, jobs int, opts Options, fn Func[T]) ([]T, Summary, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	firstSeed := opts.FirstSeed
	if firstSeed == 0 {
		firstSeed = 1
	}

	results := make([]T, jobs)
	sum := Summary{Workers: workers}
	if jobs == 0 {
		finish(&sum, opts.Obs, 0)
		return results, sum, ctx.Err()
	}

	// Fail-fast cancels this derived context to stop dispatching; jobs
	// already in flight run to completion so their results stay valid.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu      sync.Mutex
		next    int // index of the next job to dispatch, under mu
		jobErrs Errors
		elapsed time.Duration // summed per-job elapsed time (CPU fallback)
		ran     int
		wg      sync.WaitGroup
	)
	start := time.Now()
	cpuBefore, haveCPU := cpuTime()

	runOne := func(i int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		var v T
		v, err = fn(i, firstSeed+int64(i))
		if err == nil {
			results[i] = v
		}
		return err
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= jobs || runCtx.Err() != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				jobStart := time.Now()
				err := runOne(i)
				took := time.Since(jobStart)

				mu.Lock()
				ran++
				elapsed += took
				if err != nil {
					jobErrs = append(jobErrs, &JobError{
						Index: i, Seed: firstSeed + int64(i), Err: err,
					})
					if !opts.KeepGoing {
						cancel()
					}
				}
				if opts.OnResult != nil {
					opts.OnResult(i, firstSeed+int64(i), err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sum.Jobs = ran
	sum.Failed = len(jobErrs)
	sum.Wall = time.Since(start)
	sum.CPU = elapsed
	if haveCPU {
		if cpuAfter, ok := cpuTime(); ok && cpuAfter > cpuBefore {
			sum.CPU = cpuAfter - cpuBefore
		}
	}
	finish(&sum, opts.Obs, len(jobErrs))

	var err error
	if len(jobErrs) > 0 {
		sort.Slice(jobErrs, func(a, b int) bool { return jobErrs[a].Index < jobErrs[b].Index })
		err = jobErrs
	}
	// Report cancellation only when it actually cut the sweep short and
	// the caller's context (not our fail-fast cancel) was the cause.
	if ctx.Err() != nil && ran < jobs {
		if err != nil {
			err = errors.Join(ctx.Err(), err)
		} else {
			err = fmt.Errorf("sweep: canceled after %d/%d jobs: %w", ran, jobs, ctx.Err())
		}
	}
	return results, sum, err
}

// finish publishes the summary to the optional obs registry.
func finish(sum *Summary, reg *obs.Registry, failed int) {
	if reg == nil {
		return
	}
	reg.Counter("sweep.jobs").Add(uint64(sum.Jobs))
	reg.Counter("sweep.failures").Add(uint64(failed))
	reg.Event("sweep.done", sum.String())
}
