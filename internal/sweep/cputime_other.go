//go:build !unix

package sweep

import "time"

// cpuTime is unavailable off unix; the summary falls back to summed
// per-job elapsed time (an upper bound on CPU when workers oversubscribe
// the cores).
func cpuTime() (time.Duration, bool) { return 0, false }
