package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

var simEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type rig struct {
	clk *clock.Virtual
	net *Network
}

func newRig(t *testing.T, prof Profile) *rig {
	t.Helper()
	clk := clock.NewVirtual(simEpoch)
	return &rig{clk: clk, net: New(clk, 42, prof)}
}

func (r *rig) endpoint(t *testing.T, name transport.Addr) transport.Endpoint {
	t.Helper()
	ep, err := r.net.NewEndpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func TestDeliveryWithDelay(t *testing.T) {
	r := newRig(t, Profile{Delay: 10 * time.Millisecond})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")

	var arrivedAt time.Time
	b.SetHandler(func(from transport.Addr, p []byte) {
		arrivedAt = r.clk.Now()
		if from != "a" || string(p) != "ping" {
			t.Errorf("got %q from %q", p, from)
		}
	})
	if err := a.Send("b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	r.clk.Drain(0)
	if want := simEpoch.Add(10 * time.Millisecond); !arrivedAt.Equal(want) {
		t.Fatalf("arrived at %v, want %v", arrivedAt, want)
	}
}

func TestZeroJitterPreservesFIFO(t *testing.T) {
	r := newRig(t, LAN())
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	var got []byte
	b.SetHandler(func(_ transport.Addr, p []byte) { got = append(got, p[0]) })
	for i := byte(0); i < 100; i++ {
		if err := a.Send("b", []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	r.clk.Drain(0)
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100 (LAN must not lose packets)", len(got))
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("LAN reordered packets: position %d holds %d", i, got[i])
		}
	}
}

func TestLossRate(t *testing.T) {
	r := newRig(t, Profile{Loss: 0.5})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	n := 0
	b.SetHandler(func(transport.Addr, []byte) { n++ })
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	r.clk.Drain(0)
	if n < total*4/10 || n > total*6/10 {
		t.Fatalf("delivered %d of %d at 50%% loss; outside [40%%, 60%%]", n, total)
	}
	st := r.net.Stats()
	if st.Sent != total || st.Delivered != uint64(n) || st.Dropped != uint64(total-n) {
		t.Fatalf("stats %+v inconsistent with delivered=%d", st, n)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000 bytes/sec: a 500-byte packet takes 500ms to serialize. Two
	// back-to-back packets queue: second arrives 500ms after the first.
	r := newRig(t, Profile{Bandwidth: 1000})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	var arrivals []time.Duration
	b.SetHandler(func(transport.Addr, []byte) {
		arrivals = append(arrivals, r.clk.Now().Sub(simEpoch))
	})
	payload := make([]byte, 500)
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	r.clk.Drain(0)
	want := []time.Duration{500 * time.Millisecond, time.Second}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Fatalf("arrivals %v, want %v", arrivals, want)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	r := newRig(t, Profile{Duplicate: 1.0})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	n := 0
	b.SetHandler(func(transport.Addr, []byte) { n++ })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.clk.Drain(0)
	if n != 2 {
		t.Fatalf("delivered %d copies, want 2", n)
	}
}

func TestSendToUnknownAddr(t *testing.T) {
	r := newRig(t, Profile{})
	a := r.endpoint(t, "a")
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, transport.ErrNoRoute) {
		t.Fatalf("Send to unknown = %v, want ErrNoRoute", err)
	}
}

func TestBindDuplicateAddr(t *testing.T) {
	r := newRig(t, Profile{})
	r.endpoint(t, "a")
	if _, err := r.net.NewEndpoint("a"); !errors.Is(err, transport.ErrAddrInUse) {
		t.Fatalf("duplicate bind = %v, want ErrAddrInUse", err)
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	r := newRig(t, Profile{Delay: time.Millisecond})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	n := 0
	b.SetHandler(func(transport.Addr, []byte) { n++ })

	r.net.Crash("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("send to crashed node = %v, want nil (silent drop)", err)
	}
	r.clk.Drain(0)
	if n != 0 {
		t.Fatal("crashed node received a packet")
	}
	if err := b.Send("a", []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send from crashed node = %v, want ErrClosed", err)
	}
}

func TestCrashInFlightStillArrives(t *testing.T) {
	r := newRig(t, Profile{Delay: 10 * time.Millisecond})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	n := 0
	b.SetHandler(func(transport.Addr, []byte) { n++ })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.net.Crash("a") // sender dies after the packet left its NIC
	r.clk.Drain(0)
	if n != 1 {
		t.Fatalf("in-flight packet from crashed sender: delivered %d, want 1", n)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	r := newRig(t, Profile{Delay: time.Millisecond})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	c := r.endpoint(t, "c")
	counts := map[transport.Addr]int{}
	for name, ep := range map[transport.Addr]transport.Endpoint{"a": a, "b": b, "c": c} {
		name := name
		ep.SetHandler(func(transport.Addr, []byte) { counts[name]++ })
	}

	r.net.Partition([]transport.Addr{"a"}, []transport.Addr{"b", "c"})
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.clk.Drain(0)
	if counts["a"] != 0 || counts["b"] != 0 {
		t.Fatalf("partitioned traffic leaked: %v", counts)
	}
	if counts["c"] != 1 {
		t.Fatalf("intra-partition traffic blocked: %v", counts)
	}

	r.net.Heal()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.clk.Drain(0)
	if counts["b"] != 1 {
		t.Fatalf("traffic after Heal: %v", counts)
	}
}

func TestLinkDownIsBidirectional(t *testing.T) {
	r := newRig(t, Profile{})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	n := 0
	h := func(transport.Addr, []byte) { n++ }
	a.SetHandler(h)
	b.SetHandler(h)
	r.net.SetLinkDown("a", "b", true)
	_ = a.Send("b", []byte("x"))
	_ = b.Send("a", []byte("x"))
	r.clk.Drain(0)
	if n != 0 {
		t.Fatalf("link-down leaked %d packets", n)
	}
	r.net.SetLinkDown("a", "b", false)
	_ = a.Send("b", []byte("x"))
	r.clk.Drain(0)
	if n != 1 {
		t.Fatalf("link restore failed: %d packets", n)
	}
}

func TestPerLinkProfileOverride(t *testing.T) {
	r := newRig(t, Profile{Delay: time.Millisecond})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	r.net.SetProfile("a", "b", Profile{Delay: 100 * time.Millisecond})
	var at time.Duration
	b.SetHandler(func(transport.Addr, []byte) { at = r.clk.Now().Sub(simEpoch) })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.clk.Drain(0)
	if at != 100*time.Millisecond {
		t.Fatalf("override delay: arrived at %v, want 100ms", at)
	}
}

func TestSenderBufferReuseIsSafe(t *testing.T) {
	r := newRig(t, Profile{Delay: time.Millisecond})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	var got string
	b.SetHandler(func(_ transport.Addr, p []byte) { got = string(p) })
	buf := []byte("before")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "MUTATE")
	r.clk.Drain(0)
	if got != "before" {
		t.Fatalf("delivered payload %q reflects sender mutation", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		clk := clock.NewVirtual(simEpoch)
		net := New(clk, 7, WAN())
		a, _ := net.NewEndpoint("a")
		b, _ := net.NewEndpoint("b")
		var arrivals []time.Duration
		b.SetHandler(func(transport.Addr, []byte) {
			arrivals = append(arrivals, clk.Now().Sub(simEpoch))
		})
		for i := 0; i < 200; i++ {
			_ = a.Send("b", make([]byte, 100))
		}
		clk.Drain(0)
		return arrivals
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("replay lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestWANProfileReordersAndLoses(t *testing.T) {
	r := newRig(t, WAN())
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	var seq []int
	b.SetHandler(func(_ transport.Addr, p []byte) {
		seq = append(seq, int(p[0])<<8|int(p[1]))
	})
	const total = 1000
	for i := 0; i < total; i++ {
		_ = a.Send("b", []byte{byte(i >> 8), byte(i)})
	}
	r.clk.Drain(0)
	if len(seq) == total {
		t.Fatal("WAN profile lost no packets out of 1000 at 0.5% loss")
	}
	reordered := false
	for i := 1; i < len(seq); i++ {
		if seq[i] < seq[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("WAN profile produced no reordering")
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	clk := clock.NewVirtual(simEpoch)
	net := New(clk, 1, LAN())
	src, _ := net.NewEndpoint("src")
	dst, _ := net.NewEndpoint("dst")
	dst.SetHandler(func(transport.Addr, []byte) {})
	payload := make([]byte, 1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Send("dst", payload)
		clk.Drain(0)
	}
}
