package netsim

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

// Batched fan-out: one send call delivering a stripe's worth of frames.
//
// A VoD server streams one movie to hundreds of viewers; with striped
// pacing the server already walks all of them in one clock tick, but until
// now every walk step still scheduled its own delivery event — N heap
// pushes, N timer fires, N pooled records per beat. SendStableRefBatch
// collapses the common case into one pooled broadcast record and ONE
// scheduled clock event that fans out to every surviving destination when
// it fires.
//
// The determinism contract (DESIGN §14) is equivalence with a loop over
// SendStableRef in slice order: the routing checks, the loss / extra-loss /
// duplication draws and the egress/link serialization bumps run per
// destination, in order, exactly as the per-send path runs them, so the
// seeded RNG stream and every aggregate counter are identical whether a
// sender batches or loops. Destinations needing divergent treatment — a
// per-pair profile override, a duplication draw that fired, or a jittered
// profile (per-delivery random delay) — fall back to ordinary per-delivery
// scheduling inline, right where the loop would have scheduled them; only
// uniform survivors join the batch. The batch delivers every survivor at
// the latest of their individually computed transit times (the last slot of
// the beat's serialization train, sub-millisecond behind the per-send
// schedule at frame scale), which is the one observable difference from the
// loop.
//
// Payloads are caller-guaranteed immutable (the StableSender contract), so
// sharing one buffer across the whole batch needs no reference counting:
// the record only drops its aliases on recycle and nobody ever writes
// through them.

// broadcast is one in-flight batched fan-out: the surviving destinations of
// a batch send plus each one's payload alias. Records cycle through a free
// list under n.mu, like delivery records; dsts and payloads keep their
// capacity across uses, so a warm stripe beat schedules without allocating.
type broadcast struct {
	n        *Network
	from     int32
	dsts     []int32
	payloads [][]byte
	fn       func() // b.run, bound once: a method value allocates per use
	next     *broadcast
}

// newBroadcastLocked takes a broadcast record off the free list. Caller
// holds n.mu.
func (n *Network) newBroadcastLocked(from int32) *broadcast {
	b := n.freeB
	if b != nil {
		n.freeB = b.next
		b.next = nil
	} else {
		b = &broadcast{n: n}
		b.fn = b.run
	}
	b.from = from
	return b
}

// recycleLocked returns the record to the pool, dropping the payload
// aliases (they may point into caller-owned immutable tables) while keeping
// both slices' capacity warm. Caller holds n.mu; the record's timer must
// have fired already (or never been scheduled).
func (b *broadcast) recycleLocked() {
	n := b.n
	b.from = 0
	for i := range b.payloads {
		b.payloads[i] = nil
	}
	b.dsts = b.dsts[:0]
	b.payloads = b.payloads[:0]
	b.next = n.freeB
	n.freeB = b
}

// run fires when the batch arrives: under one lock hold, re-check liveness
// for every destination (all at this same virtual instant, before any of the
// batch's handlers run), settle the stats, and snapshot the surviving
// (handler, payload) pairs into the network's reusable scratch; then release
// the lock once and invoke the handlers in batch order. The per-send path
// re-checks each destination in its own delivery event at this same instant,
// so the two differ only if one batch handler closes a later destination
// synchronously — no handler in this repository does, and handlers that need
// the stricter ordering can keep the per-send path.
func (b *broadcast) run() {
	n := b.n
	n.mu.Lock()
	hs, ds := n.bcastH[:0], n.bcastD[:0]
	var dropped, bytes uint64
	for i := 0; i < len(b.dsts); i++ {
		ep := n.eps[b.dsts[i]]
		var h transport.Handler
		if ep != nil && !ep.closed {
			h = ep.handler
		}
		if h == nil {
			dropped++
			continue
		}
		bytes += uint64(len(b.payloads[i]))
		hs = append(hs, h)
		ds = append(ds, b.payloads[i])
	}
	if dropped > 0 {
		n.stats.Dropped += dropped
		n.ctrDrop.Add(dropped)
	}
	n.stats.Delivered += uint64(len(hs))
	n.stats.Bytes += bytes
	n.ctrDeliv.Add(uint64(len(hs)))
	n.ctrBytes.Add(bytes)
	from := n.addrs[b.from]
	b.recycleLocked()
	n.bcastH, n.bcastD = hs, ds
	n.mu.Unlock()
	for i, h := range hs {
		h(from, ds[i])
	}
}

var _ transport.RefBatchSender = (*endpoint)(nil)

// SendStableRefBatch implements transport.RefBatchSender: payloads[i] is
// transmitted to dsts[i], all under one lock acquisition and (for the
// destinations that need no divergent treatment) one scheduled delivery
// event. Drop, duplication and serialization behavior are equivalent to
// calling SendStableRef once per destination in slice order; see the
// package comment above for the exact contract. Payloads must be immutable
// for the process lifetime.
func (e *endpoint) SendStableRefBatch(dsts []transport.AddrRef, payloads [][]byte) error {
	if len(dsts) != len(payloads) {
		return fmt.Errorf("netsim: batch from %s: %d destinations but %d payloads", e.addr, len(dsts), len(payloads))
	}
	return e.batchRef(dsts, payloads, nil)
}

// BroadcastRef is the single-payload form of SendStableRefBatch: one
// immutable buffer delivered to every destination — encode once, deliver N.
func (e *endpoint) BroadcastRef(dsts []transport.AddrRef, payload []byte) error {
	return e.batchRef(dsts, nil, payload)
}

// batchRef is the shared body: payloads[i] per destination when payloads is
// non-nil, the shared payload otherwise.
func (e *endpoint) batchRef(dsts []transport.AddrRef, payloads [][]byte, shared []byte) error {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	var firstErr error
	b := n.newBroadcastLocked(e.id)
	var maxDelay time.Duration
	for i, ref := range dsts {
		payload := shared
		if payloads != nil {
			payload = payloads[i]
		}
		if len(payload) > transport.MaxDatagram {
			if firstErr == nil {
				firstErr = fmt.Errorf("netsim: send to ref#%d: %w", ref, transport.ErrTooLarge)
			}
			continue
		}
		n.stats.Sent++
		n.ctrSent.Inc()
		to := int32(ref)
		if to < 0 || int(to) >= len(n.eps) || n.eps[to] == nil {
			n.stats.Dropped++
			n.ctrDrop.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("netsim: send %s→ref#%d: %w", e.addr, ref, transport.ErrNoRoute)
			}
			continue
		}
		if len(n.blocked) > 0 && n.blocked[idPair{e.id, to}] {
			n.stats.Dropped++
			n.ctrDrop.Inc()
			continue // silently lost, like a partitioned UDP packet
		}
		prof := n.def
		diverge := false
		if len(n.overrides) > 0 {
			if p, ok := n.overrides[idPair{e.id, to}]; ok {
				prof, diverge = p, true
			}
		}
		if prof.Loss > 0 && n.rng.Float64() < prof.Loss {
			n.stats.Dropped++
			n.ctrDrop.Inc()
			continue
		}
		if n.extraLoss > 0 && n.rng.Float64() < n.extraLoss {
			n.stats.Dropped++
			n.ctrDrop.Inc()
			continue
		}
		deliveries := 1
		if prof.Duplicate > 0 && n.rng.Float64() < prof.Duplicate {
			deliveries = 2
		}
		if diverge || deliveries > 1 || prof.Jitter > 0 {
			// Divergent treatment — a per-pair override, a duplicate, or
			// per-delivery jitter draws — expands to dedicated delivery
			// events right here, exactly where the per-send loop would have
			// scheduled them (so the jitter draws stay in sequence).
			for j := 0; j < deliveries; j++ {
				d := n.newDeliveryLocked(e.id, to, payload, true)
				delay := n.transitTimeLocked(e.id, to, prof, len(payload))
				clock.Schedule(n.clk, delay, d.fn)
			}
			continue
		}
		delay := n.transitTimeLocked(e.id, to, prof, len(payload))
		if delay > maxDelay {
			maxDelay = delay
		}
		b.dsts = append(b.dsts, to)
		b.payloads = append(b.payloads, payload)
	}
	if len(b.dsts) == 0 {
		b.recycleLocked()
	} else {
		clock.Schedule(n.clk, maxDelay, b.fn)
	}
	n.maybeSweepLocked(len(dsts))
	return firstErr
}
