package netsim

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

// faultRig binds two endpoints and counts deliveries at each.
type faultRig struct {
	clk  *clock.Virtual
	net  *Network
	a, b transport.Endpoint
	atA  int
	atB  int
}

func newFaultRig(t *testing.T) *faultRig {
	t.Helper()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	r := &faultRig{clk: clk, net: New(clk, 1, LAN())}
	var err error
	if r.a, err = r.net.NewEndpoint("a"); err != nil {
		t.Fatal(err)
	}
	if r.b, err = r.net.NewEndpoint("b"); err != nil {
		t.Fatal(err)
	}
	r.a.SetHandler(func(transport.Addr, []byte) { r.atA++ })
	r.b.SetHandler(func(transport.Addr, []byte) { r.atB++ })
	return r
}

// exchange sends one packet each way and lets them arrive.
func (r *faultRig) exchange() {
	_ = r.a.Send("b", []byte("a->b"))
	_ = r.b.Send("a", []byte("b->a"))
	r.clk.Advance(10 * time.Millisecond)
}

func TestSetLinkOneWayDown(t *testing.T) {
	r := newFaultRig(t)
	r.exchange()
	if r.atA != 1 || r.atB != 1 {
		t.Fatalf("baseline exchange: atA=%d atB=%d", r.atA, r.atB)
	}

	// Block only a→b: b goes deaf to a, but a still hears b — the
	// asymmetric split presence-based merging cannot see.
	r.net.SetLinkOneWayDown("a", "b", true)
	r.exchange()
	if r.atB != 1 {
		t.Errorf("a→b delivered through a one-way block (atB=%d)", r.atB)
	}
	if r.atA != 2 {
		t.Errorf("b→a blocked too (atA=%d); the block must be one-directional", r.atA)
	}

	// Unblock: symmetric service resumes.
	r.net.SetLinkOneWayDown("a", "b", false)
	r.exchange()
	if r.atA != 3 || r.atB != 2 {
		t.Errorf("after unblock: atA=%d atB=%d", r.atA, r.atB)
	}
}

func TestOneWayDownComposesWithHeal(t *testing.T) {
	r := newFaultRig(t)
	r.net.SetLinkOneWayDown("a", "b", true)
	r.net.SetLinkOneWayDown("b", "a", true)
	r.exchange()
	if r.atA != 0 || r.atB != 0 {
		t.Fatalf("both directions blocked, yet atA=%d atB=%d", r.atA, r.atB)
	}
	r.net.Heal()
	r.exchange()
	if r.atA != 1 || r.atB != 1 {
		t.Fatalf("heal did not clear one-way blocks: atA=%d atB=%d", r.atA, r.atB)
	}
}

func TestExtraLossBurst(t *testing.T) {
	r := newFaultRig(t)
	const packets = 200

	// Total loss: nothing arrives during the burst.
	r.net.SetExtraLoss(1.0)
	for i := 0; i < packets; i++ {
		_ = r.a.Send("b", []byte("x"))
	}
	r.clk.Advance(time.Second)
	if r.atB != 0 {
		t.Fatalf("%d packets survived a p=1.0 loss burst", r.atB)
	}

	// Partial loss: some but not all packets die.
	r.net.SetExtraLoss(0.5)
	for i := 0; i < packets; i++ {
		_ = r.a.Send("b", []byte("x"))
	}
	r.clk.Advance(time.Second)
	if r.atB == 0 || r.atB == packets {
		t.Fatalf("p=0.5 burst delivered %d of %d", r.atB, packets)
	}

	// Burst over: full service.
	before := r.atB
	r.net.SetExtraLoss(0)
	for i := 0; i < packets; i++ {
		_ = r.a.Send("b", []byte("x"))
	}
	r.clk.Advance(time.Second)
	if r.atB != before+packets {
		t.Fatalf("loss after burst end: delivered %d of %d", r.atB-before, packets)
	}
}

func TestRebindAfterCrash(t *testing.T) {
	r := newFaultRig(t)

	// A live address cannot be double-bound.
	if _, err := r.net.NewEndpoint("b"); err == nil {
		t.Fatal("double bind of a live address succeeded")
	}

	r.net.Crash("b")
	_ = r.a.Send("b", []byte("into the void"))
	r.clk.Advance(10 * time.Millisecond)
	if r.atB != 0 {
		t.Fatalf("crashed node received a packet")
	}

	// The restarted incarnation reclaims the address and receives traffic.
	nb, err := r.net.NewEndpoint("b")
	if err != nil {
		t.Fatalf("rebinding a crashed address: %v", err)
	}
	got := 0
	nb.SetHandler(func(transport.Addr, []byte) { got++ })
	_ = r.a.Send("b", []byte("hello again"))
	r.clk.Advance(10 * time.Millisecond)
	if got != 1 {
		t.Fatalf("restarted node received %d packets, want 1", got)
	}
	// And it can send.
	if err := nb.Send("a", []byte("back")); err != nil {
		t.Fatalf("restarted node cannot send: %v", err)
	}
	r.clk.Advance(10 * time.Millisecond)
	if r.atA != 1 {
		t.Fatalf("reply from restarted node lost (atA=%d)", r.atA)
	}
}
