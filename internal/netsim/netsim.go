// Package netsim is a deterministic packet-level network simulator
// implementing transport.Network. It reproduces the operative properties of
// the paper's two testbeds — a 100 Mbps switched-Ethernet LAN and a 7-hop
// Internet WAN — as configurable per-link profiles: propagation delay,
// jitter, loss, duplication and bandwidth (serialization delay). Delivery is
// scheduled on a clock.Clock; with a Virtual clock and a fixed seed, every
// run is exactly reproducible.
//
// Internally every address is interned to a dense integer ID the first time
// it is seen; endpoints, egress queues and per-pair link state live in flat
// slices indexed by ID, so the per-packet send path never hashes an address
// string. Senders that pre-resolve their destination (transport.RefResolver /
// RefSender) skip the one remaining map lookup too. Only the sparse fault
// state — profile overrides and blocked links — stays in (ID-pair-keyed)
// maps, off the common path.
//
// The simulator also provides the fault-injection surface the evaluation
// scenarios need: abrupt node crashes, link failures and network partitions.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Profile describes one direction of a link.
type Profile struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter). Nonzero jitter
	// can reorder packets, as on a multi-hop WAN path.
	Jitter time.Duration
	// Loss is the independent per-packet drop probability in [0, 1].
	Loss float64
	// Duplicate is the per-packet probability of a second delivery.
	Duplicate float64
	// Bandwidth is the link rate in bytes per second; packets queue behind
	// each other for their serialization time. Zero means infinite.
	Bandwidth int64
}

// LAN returns the profile used for the paper's Figure 4 testbed: a lightly
// loaded 100 Mbps switched Ethernet. Sub-millisecond delay, no jitter (so
// no reordering), no loss — the paper reports "we did not encounter message
// loss" and "messages do not arrive out of order".
func LAN() Profile {
	return Profile{
		Delay:     200 * time.Microsecond,
		Bandwidth: 100 * 1000 * 1000 / 8,
	}
}

// WAN returns the profile used for the paper's Figure 5 testbed: the 7-hop
// Internet path between the Hebrew and Tel Aviv Universities, with no QoS
// reservation — tens of milliseconds of delay, jitter-induced reordering
// and sporadic loss ("a certain percentage of the messages are lost").
func WAN() Profile {
	return Profile{
		Delay:     20 * time.Millisecond,
		Jitter:    8 * time.Millisecond,
		Loss:      0.005,
		Bandwidth: 10 * 1000 * 1000 / 8,
	}
}

// Stats aggregates network-wide counters.
type Stats struct {
	Sent      uint64 // packets handed to the network
	Delivered uint64 // packets delivered to a handler
	Dropped   uint64 // packets lost (loss, partition, dead node, no handler)
	Bytes     uint64 // payload bytes delivered
}

// Network is a simulated transport.Network.
type Network struct {
	clk clock.Clock

	mu  sync.Mutex
	rng *rand.Rand
	def Profile

	// Address interning: ids maps an address to its dense ID; the slices
	// below are all indexed by that ID and grow together. IDs are never
	// reused — a crashed-and-rebound address keeps its ID, so in-flight
	// deliveries reach the new incarnation exactly as before.
	ids        map[transport.Addr]int32
	addrs      []transport.Addr
	eps        []*endpoint // nil = address known but never bound
	egressRate []int64     // shared NIC rate, bytes/s (0 = none)
	egressNext []int64     // when the NIC finishes its queue, unix nanos (≤ now = drained)
	rows       []linkRow   // per-sender serialization state of bandwidth-limited links
	live       int         // endpoints currently open, sizes the sweep period

	// Sparse fault state, keyed by ID pair: empty in a healthy run, so the
	// send path skips both lookups entirely.
	overrides map[idPair]Profile
	blocked   map[idPair]bool

	extraLoss float64 // network-wide additional drop probability (loss burst)
	// Free lists of delivery events (the packet buffer pool), segregated
	// by buffer size class: a mixed list keeps handing records that last
	// carried a tiny control packet to full video frames, reallocating the
	// copy buffer almost every send. Records whose buffer grew to at least
	// bigBufSize go on freeDBig and are reissued to large payloads.
	freeD    *delivery
	freeDBig *delivery
	freeB    *broadcast // free list of batched fan-out events
	// bcastH/bcastD are broadcast.run's handler/payload snapshot scratch,
	// reused across batch events (events fire one at a time, and handlers
	// never re-enter run); capacity stays warm at the largest batch size.
	bcastH  []transport.Handler
	bcastD  [][]byte
	slabD   []delivery // current slab new records are carved from
	slabDN  int        // records already carved from slabD
	sweepIn int        // sends until the next stale-link sweep
	stats   Stats

	obs      *obs.Registry
	ctrSent  *obs.Counter // netsim.sent
	ctrDeliv *obs.Counter // netsim.delivered
	ctrDrop  *obs.Counter // netsim.dropped
	ctrBytes *obs.Counter // netsim.delivered_bytes
}

var _ transport.Network = (*Network)(nil)

type idPair struct{ from, to int32 }

// smallRowMax is the destination count at which a sender's link row promotes
// from a linearly scanned pair of small slices to a dense array indexed by
// destination ID. Viewers talk to a handful of servers and stay small; a
// server streaming to thousands of viewers promotes once and then indexes.
const smallRowMax = 16

// linkRow holds one sender's per-destination link serialization horizons
// (unix nanos; ≤ now means the link is drained, same as absent). Small rows
// are parallel slices scanned linearly; rows with many destinations use a
// dense slice indexed by destination ID.
type linkRow struct {
	toIDs []int32
	next  []int64
	dense []int64
}

// bump advances the serialization horizon of the link to `to`: start at
// max(now, nextFree), add ser, store and return the new horizon. ids is the
// current interned-address count, sizing a promoted dense row.
func (r *linkRow) bump(to int32, now, ser int64, ids int) int64 {
	if r.dense != nil {
		if int(to) >= len(r.dense) {
			// Interning assigns IDs monotonically, so a promoted row sees
			// ever-higher destinations while the cluster fills in; grow to a
			// power of two above the current ID count so the row reallocates
			// O(log n) times instead of once per new destination.
			size := len(r.dense) * 2
			for size < ids {
				size *= 2
			}
			grown := make([]int64, size)
			copy(grown, r.dense)
			r.dense = grown
		}
		nf := r.dense[to]
		if now > nf {
			nf = now
		}
		nf += ser
		r.dense[to] = nf
		return nf
	}
	for i, t := range r.toIDs {
		if t == to {
			nf := r.next[i]
			if now > nf {
				nf = now
			}
			nf += ser
			r.next[i] = nf
			return nf
		}
	}
	nf := now + ser
	if len(r.toIDs) < smallRowMax {
		r.toIDs = append(r.toIDs, to)
		r.next = append(r.next, nf)
		return nf
	}
	d := make([]int64, ids)
	for i, t := range r.toIDs {
		d[t] = r.next[i]
	}
	d[to] = nf
	r.dense = d
	r.toIDs, r.next = nil, nil
	return nf
}

// reap drops entries whose serialization queue has drained (horizon ≤ now).
// An idle entry behaves identically to an absent one, so this is invisible
// to the simulation; horizons still in the future are kept — they encode
// real queueing that must survive even the sender's crash (the packets
// already left the NIC).
//
// A dense row's backing array is released only when release is set (the
// endpoint closed): the periodic sweep keeps it, because a stale horizon in
// the past is behaviorally identical to an absent entry while freeing the
// array makes the next send re-promote the row and reallocate it — for a
// server streaming to thousands of viewers that cycle used to dominate the
// scale table's allocation profile.
func (r *linkRow) reap(now int64, release bool) {
	if r.dense != nil {
		if !release {
			return
		}
		for _, nf := range r.dense {
			if nf > now {
				return
			}
		}
		r.dense = nil
		return
	}
	k := 0
	for i, nf := range r.next {
		if nf > now {
			r.toIDs[k], r.next[k] = r.toIDs[i], nf
			k++
		}
	}
	if k == 0 {
		r.toIDs, r.next = nil, nil
		return
	}
	r.toIDs, r.next = r.toIDs[:k], r.next[:k]
}

// New creates a network on clk with the given default link profile. All
// randomness (loss, jitter, duplication) derives from seed.
func New(clk clock.Clock, seed int64, def Profile) *Network {
	n := &Network{
		clk:       clk,
		rng:       rand.New(rand.NewSource(seed)),
		def:       def,
		ids:       make(map[transport.Addr]int32),
		overrides: make(map[idPair]Profile),
		blocked:   make(map[idPair]bool),
	}
	n.SetObs(nil)
	return n
}

// internLocked returns the dense ID for addr, assigning the next one (and
// growing every ID-indexed slice) on first sight. Caller holds n.mu.
func (n *Network) internLocked(addr transport.Addr) int32 {
	if id, ok := n.ids[addr]; ok {
		return id
	}
	id := int32(len(n.addrs))
	n.ids[addr] = id
	n.addrs = append(n.addrs, addr)
	n.eps = append(n.eps, nil)
	n.egressRate = append(n.egressRate, 0)
	n.egressNext = append(n.egressNext, 0)
	n.rows = append(n.rows, linkRow{})
	return id
}

// SetObs attaches an observability registry: the network-wide counters are
// mirrored there, and fault injections (crashes, partitions, link failures)
// leave trace events. A nil registry detaches (counters become unregistered
// no-op instances).
func (n *Network) SetObs(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obs = reg
	n.ctrSent = reg.Counter("netsim.sent")
	n.ctrDeliv = reg.Counter("netsim.delivered")
	n.ctrDrop = reg.Counter("netsim.dropped")
	n.ctrBytes = reg.Counter("netsim.delivered_bytes")
}

// SetEgressLimit caps a node's total outbound rate (bytes/s): all packets
// it sends share one serialization queue, modeling the node's NIC. Per-link
// bandwidth still applies downstream. Zero removes the cap. This is how a
// single video server saturates — its uplink, not any one client's path.
func (n *Network) SetEgressLimit(addr transport.Addr, bytesPerSec int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.internLocked(addr)
	if bytesPerSec <= 0 {
		n.egressRate[id] = 0
		return
	}
	n.egressRate[id] = bytesPerSec
}

// NewEndpoint implements transport.Network. An address whose previous
// endpoint was closed (node crashed or shut down) may be bound again — a
// restarted node reclaiming its port. Datagrams already in flight toward
// the address are delivered to the new incarnation, exactly as late UDP
// packets reach a rebound socket.
func (n *Network) NewEndpoint(addr transport.Addr) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.internLocked(addr)
	if old := n.eps[id]; old != nil && !old.closed {
		return nil, fmt.Errorf("netsim: bind %q: %w", addr, transport.ErrAddrInUse)
	}
	ep := &endpoint{net: n, addr: addr, id: id}
	n.eps[id] = ep
	n.live++
	return ep, nil
}

// SetProfile overrides the profile of the directed link from→to.
func (n *Network) SetProfile(from, to transport.Addr, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.overrides[idPair{n.internLocked(from), n.internLocked(to)}] = p
}

// SetDefaultProfile replaces the profile used by links with no override.
func (n *Network) SetDefaultProfile(p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = p
}

// SetLinkDown blocks (or unblocks) traffic in both directions between a
// and b. Packets already in flight still arrive, as on a real network.
func (n *Network) SetLinkDown(a, b transport.Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ai, bi := n.internLocked(a), n.internLocked(b)
	if down {
		n.blocked[idPair{ai, bi}] = true
		n.blocked[idPair{bi, ai}] = true
		n.obs.Event("netsim.link_down", string(a)+" <-> "+string(b))
	} else {
		delete(n.blocked, idPair{ai, bi})
		delete(n.blocked, idPair{bi, ai})
		n.obs.Event("netsim.link_up", string(a)+" <-> "+string(b))
	}
}

// SetLinkOneWayDown blocks (or unblocks) traffic in the single direction
// from→to, leaving the reverse direction untouched. This is the asymmetric
// split that presence-based merging cannot observe directly (DESIGN §5): A
// hears B but B never hears A.
func (n *Network) SetLinkOneWayDown(from, to transport.Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := idPair{n.internLocked(from), n.internLocked(to)}
	if down {
		n.blocked[key] = true
		n.obs.Event("netsim.link_down", string(from)+" -> "+string(to))
	} else {
		delete(n.blocked, key)
		n.obs.Event("netsim.link_up", string(from)+" -> "+string(to))
	}
}

// SetExtraLoss adds an independent drop probability in [0, 1] on every link
// on top of each profile's own loss — a network-wide loss burst (congestion
// collapse, a flapping switch). Zero restores normal service. The extra
// loss draws from the same seeded RNG as profile loss, so bursts are
// deterministic; when it is zero no random number is consumed and existing
// schedules replay unchanged.
func (n *Network) SetExtraLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n.extraLoss = p
	if p > 0 {
		n.obs.Event("netsim.loss_burst", fmt.Sprintf("p=%.2f", p))
	} else {
		n.obs.Event("netsim.loss_burst_end", "")
	}
}

// Partition blocks all traffic between nodes in different groups. Nodes not
// listed in any group are unaffected. Partition composes with previously
// blocked links; use Heal to clear everything.
func (n *Network) Partition(groups ...[]transport.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obs.Event("netsim.partition", fmt.Sprintf("%d groups", len(groups)))
	for i := range groups {
		for j := range groups {
			if i == j {
				continue
			}
			for _, a := range groups[i] {
				for _, b := range groups[j] {
					n.blocked[idPair{n.internLocked(a), n.internLocked(b)}] = true
				}
			}
		}
	}
}

// Heal removes every link block and partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obs.Event("netsim.heal", "all blocks cleared")
	n.blocked = make(map[idPair]bool)
}

// Crash makes the node at addr fail-stop: its endpoint is closed and all
// packets to or from it are dropped. In-flight packets from the node still
// arrive (they already left the NIC). The address may be bound again with
// NewEndpoint — a cold restart of the node.
func (n *Network) Crash(addr transport.Addr) {
	n.mu.Lock()
	var ep *endpoint
	if id, ok := n.ids[addr]; ok {
		ep = n.eps[id]
	}
	n.obs.Event("netsim.crash", string(addr))
	n.mu.Unlock()
	if ep != nil {
		_ = ep.Close()
	}
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// sendLocked runs the routing/loss/timing pipeline for one packet, with both
// addresses already resolved to IDs (to may be -1: address never interned).
// toAddr is only used to format the no-route error. When stable is true the
// payload is caller-guaranteed immutable and the delivery aliases it instead
// of copying; the loss/duplication/timing path is identical either way (same
// RNG draws, same serialization on len(payload)), so a run using stable
// sends replays byte-for-byte like one that copies.
func (n *Network) sendLocked(from, to int32, toAddr transport.Addr, payload []byte, stable bool) error {
	n.stats.Sent++
	n.ctrSent.Inc()
	if to < 0 || n.eps[to] == nil {
		// Sending to an address that was never bound is a harness bug;
		// sending to a crashed node is normal (its endpoint is kept, closed).
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return fmt.Errorf("netsim: send %s→%s: %w", n.addrs[from], toAddr, transport.ErrNoRoute)
	}
	if len(n.blocked) > 0 && n.blocked[idPair{from, to}] {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return nil // silently lost, like a partitioned UDP packet
	}

	prof := n.def
	if len(n.overrides) > 0 {
		if p, ok := n.overrides[idPair{from, to}]; ok {
			prof = p
		}
	}
	if prof.Loss > 0 && n.rng.Float64() < prof.Loss {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return nil
	}
	if n.extraLoss > 0 && n.rng.Float64() < n.extraLoss {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return nil
	}

	deliveries := 1
	if prof.Duplicate > 0 && n.rng.Float64() < prof.Duplicate {
		deliveries = 2
	}
	for i := 0; i < deliveries; i++ {
		// The sender may reuse its buffer after Send returns, as with UDP
		// (the kernel copies); copy into a pooled delivery event before
		// scheduling. Each duplicate gets its own buffer so the handlers
		// never share backing storage. Stable payloads skip the copy:
		// immutable buffers are safe to share even between duplicates.
		d := n.newDeliveryLocked(from, to, payload, stable)
		delay := n.transitTimeLocked(from, to, prof, len(payload))
		clock.Schedule(n.clk, delay, d.fn)
	}
	n.maybeSweepLocked(1)
	return nil
}

// delivery is one in-flight packet: a pooled buffer plus the routing info
// its timer callback needs. Events cycle through a free list under n.mu so
// steady-state traffic schedules deliveries without allocating; the buffer
// is reused for the next packet as soon as the receiving handler returns,
// which is what the transport.Handler copy-on-retain rule licenses.
type delivery struct {
	n        *Network
	from, to int32
	data     []byte    // what the handler receives: either buf or a stable alias
	buf      []byte    // pool-owned copy buffer, reused across packets
	fn       func()    // d.run, bound once: a method value allocates per use
	next     *delivery // free-list link
}

// deliverySlabSize is how many delivery records one slab allocation carves
// out. Peak in-flight packet count during a capacity run is a few thousand,
// so cold start costs tens of slab allocations instead of thousands of
// individual ones.
const deliverySlabSize = 128

// newDeliveryLocked takes a delivery off the free list (or carves one from
// the current slab) and loads it with the payload: a copy into the record's
// own buffer normally, or a direct alias when the caller guaranteed the
// payload immutable. Caller holds n.mu.
func (n *Network) newDeliveryLocked(from, to int32, payload []byte, stable bool) *delivery {
	list := &n.freeD
	if !stable && len(payload) > smallBufMax {
		list = &n.freeDBig
	}
	d := *list
	if d != nil {
		*list = d.next
		d.next = nil
	} else {
		if n.slabDN == len(n.slabD) {
			n.slabD = make([]delivery, deliverySlabSize)
			n.slabDN = 0
		}
		d = &n.slabD[n.slabDN]
		n.slabDN++
		d.n = n
		d.fn = d.run
	}
	d.from, d.to = from, to
	if stable {
		d.data = payload
	} else {
		if cap(d.buf) < len(payload) {
			// Recycled records carry whatever buffer their last occupant
			// grew; round fresh growth to a power of two so a record
			// converges on its size class's maximum instead of
			// reallocating every time a slightly larger packet lands.
			size := 64
			for size < len(payload) {
				size <<= 1
			}
			d.buf = make([]byte, 0, size)
		}
		d.buf = append(d.buf[:0], payload...)
		d.data = d.buf
	}
	return d
}

// smallBufMax splits the delivery pool's size classes: GCS control traffic
// (heartbeats, acks, flow control) stays well under it, while framed video
// packets exceed it.
const smallBufMax = 512

// recycleLocked returns a delivery to the pool. data is always dropped — it
// may alias a caller's immutable table, which the pool must never write to —
// while buf (always pool-owned) keeps its capacity warm for the next copy.
// Caller holds n.mu; the delivery's timer must have fired already.
func (d *delivery) recycleLocked() {
	n := d.n
	d.from, d.to = 0, 0
	d.data = nil
	if cap(d.buf) > smallBufMax {
		d.next = n.freeDBig
		n.freeDBig = d
	} else {
		d.next = n.freeD
		n.freeD = d
	}
}

// run fires when the packet arrives: hand the payload to the destination
// handler (outside the lock, since handlers send packets of their own), then
// recycle the event.
func (d *delivery) run() {
	n := d.n
	n.mu.Lock()
	ep := n.eps[d.to]
	var h transport.Handler
	if ep != nil && !ep.closed {
		h = ep.handler
	}
	if h == nil {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		d.recycleLocked()
		n.mu.Unlock()
		return
	}
	n.stats.Delivered++
	n.stats.Bytes += uint64(len(d.data))
	n.ctrDeliv.Inc()
	n.ctrBytes.Add(uint64(len(d.data)))
	from, data := n.addrs[d.from], d.data
	n.mu.Unlock()
	h(from, data)
	n.mu.Lock()
	d.recycleLocked()
	n.mu.Unlock()
}

// transitTimeLocked computes the packet's total time in the network,
// accounting for serialization queueing on the directed link. Horizons are
// unix nanoseconds; the arithmetic is exactly the time.Time math the
// map-based implementation used, so schedules replay unchanged.
func (n *Network) transitTimeLocked(from, to int32, prof Profile, size int) time.Duration {
	delay := prof.Delay
	if prof.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
	}
	rate := n.egressRate[from]
	if rate <= 0 && prof.Bandwidth <= 0 {
		return delay
	}
	now := n.clk.Now().UnixNano()
	if rate > 0 {
		start := now
		if nf := n.egressNext[from]; nf > start {
			start = nf
		}
		nf := start + int64(size)*int64(time.Second)/rate
		n.egressNext[from] = nf
		delay += time.Duration(nf - now)
	}
	if prof.Bandwidth > 0 {
		ser := int64(size) * int64(time.Second) / prof.Bandwidth
		nf := n.rows[from].bump(to, now, ser, len(n.addrs))
		delay += time.Duration(nf - now)
	}
	return delay
}

// sweepPeriod is the floor on how many sends pass between stale-link sweeps.
// Sweeping is amortized rather than per-send because a sweep walks every
// tracked link; the actual period scales with the live-endpoint count so a
// 10k-viewer run doesn't sweep 10k rows every 4096 sends.
const sweepPeriod = 4096

// maybeSweepLocked occasionally prunes link and egress-queue state whose
// serialization queue has already drained (horizon in the past): an idle
// entry behaves identically to an absent one, so dropping it is invisible to
// the simulation, and long capacity sweeps across many node pairs no longer
// accumulate dead link state forever. Reaping is order-independent and
// consumes no randomness, so replays are unaffected. sends is how many
// packet transmissions the caller just performed (a batched fan-out credits
// its whole width, keeping sweep cadence proportional to traffic). Caller
// holds n.mu.
func (n *Network) maybeSweepLocked(sends int) {
	n.sweepIn -= sends
	if n.sweepIn > 0 {
		return
	}
	n.sweepIn = sweepPeriod
	if p := 8 * n.live; p > n.sweepIn {
		n.sweepIn = p
	}
	now := n.clk.Now().UnixNano()
	for i := range n.rows {
		n.rows[i].reap(now, false)
	}
	for i, nf := range n.egressNext {
		if nf != 0 && nf <= now {
			n.egressNext[i] = 0
		}
	}
}

type endpoint struct {
	net  *Network
	addr transport.Addr
	id   int32

	// handler and closed are guarded by net.mu: endpoint state changes
	// must be ordered with packet deliveries, which hold that lock.
	handler transport.Handler
	closed  bool
}

var (
	_ transport.Endpoint     = (*endpoint)(nil)
	_ transport.StableSender = (*endpoint)(nil)
	_ transport.RefResolver  = (*endpoint)(nil)
	_ transport.RefSender    = (*endpoint)(nil)
)

func (e *endpoint) Addr() transport.Addr { return e.addr }

func (e *endpoint) Send(to transport.Addr, payload []byte) error {
	return e.send(to, payload, false)
}

// SendStable implements transport.StableSender: the payload must never be
// mutated again, and in exchange the network neither copies it on send nor
// on duplication — the receiving handler gets the caller's backing array.
// Drop, duplication and timing behavior are identical to Send.
func (e *endpoint) SendStable(to transport.Addr, payload []byte) error {
	return e.send(to, payload, true)
}

// ResolveAddr implements transport.RefResolver: the returned reference is
// the address's dense ID, valid for the network's lifetime across crashes
// and rebinds.
func (e *endpoint) ResolveAddr(to transport.Addr) transport.AddrRef {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	return transport.AddrRef(e.net.internLocked(to))
}

// SendRef implements transport.RefSender; identical to Send with the
// referenced address.
func (e *endpoint) SendRef(to transport.AddrRef, payload []byte) error {
	return e.sendRef(to, payload, false)
}

// SendStableRef implements transport.RefSender; identical to SendStable
// with the referenced address.
func (e *endpoint) SendStableRef(to transport.AddrRef, payload []byte) error {
	return e.sendRef(to, payload, true)
}

func (e *endpoint) send(to transport.Addr, payload []byte, stable bool) error {
	if len(payload) > transport.MaxDatagram {
		return fmt.Errorf("netsim: send to %s: %w", to, transport.ErrTooLarge)
	}
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	toID := int32(-1)
	if id, ok := n.ids[to]; ok {
		toID = id
	}
	return n.sendLocked(e.id, toID, to, payload, stable)
}

func (e *endpoint) sendRef(to transport.AddrRef, payload []byte, stable bool) error {
	if len(payload) > transport.MaxDatagram {
		return fmt.Errorf("netsim: send to ref#%d: %w", to, transport.ErrTooLarge)
	}
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	if to < 0 || int(to) >= len(n.eps) {
		n.stats.Sent++
		n.ctrSent.Inc()
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return fmt.Errorf("netsim: send %s→ref#%d: %w", e.addr, to, transport.ErrNoRoute)
	}
	return n.sendLocked(e.id, int32(to), n.addrs[to], payload, stable)
}

func (e *endpoint) SetHandler(h transport.Handler) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.handler = h
}

// Close shuts the endpoint down. Its drained link and egress state is reaped
// immediately (drained entries are semantically absent, so this is invisible
// to replays); horizons still booked into the future are kept — they model
// packets that already left the NIC and must still shape later traffic
// exactly as they did before the node went away.
func (e *endpoint) Close() error {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if !e.closed {
		e.closed = true
		e.handler = nil
		n.live--
		now := n.clk.Now().UnixNano()
		n.rows[e.id].reap(now, true)
		if nf := n.egressNext[e.id]; nf != 0 && nf <= now {
			n.egressNext[e.id] = 0
		}
	}
	return nil
}

// EgressBacklog reports how far ahead of now a node's shared egress queue
// is booked — the queueing delay the next outbound packet would see.
func (n *Network) EgressBacklog(addr transport.Addr) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, ok := n.ids[addr]
	if !ok {
		return 0
	}
	nf := n.egressNext[id]
	if nf == 0 {
		return 0
	}
	d := nf - n.clk.Now().UnixNano()
	if d <= 0 {
		// Queue already drained: equivalent to no entry, so prune it.
		n.egressNext[id] = 0
		return 0
	}
	return time.Duration(d)
}
