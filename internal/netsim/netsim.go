// Package netsim is a deterministic packet-level network simulator
// implementing transport.Network. It reproduces the operative properties of
// the paper's two testbeds — a 100 Mbps switched-Ethernet LAN and a 7-hop
// Internet WAN — as configurable per-link profiles: propagation delay,
// jitter, loss, duplication and bandwidth (serialization delay). Delivery is
// scheduled on a clock.Clock; with a Virtual clock and a fixed seed, every
// run is exactly reproducible.
//
// The simulator also provides the fault-injection surface the evaluation
// scenarios need: abrupt node crashes, link failures and network partitions.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Profile describes one direction of a link.
type Profile struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter). Nonzero jitter
	// can reorder packets, as on a multi-hop WAN path.
	Jitter time.Duration
	// Loss is the independent per-packet drop probability in [0, 1].
	Loss float64
	// Duplicate is the per-packet probability of a second delivery.
	Duplicate float64
	// Bandwidth is the link rate in bytes per second; packets queue behind
	// each other for their serialization time. Zero means infinite.
	Bandwidth int64
}

// LAN returns the profile used for the paper's Figure 4 testbed: a lightly
// loaded 100 Mbps switched Ethernet. Sub-millisecond delay, no jitter (so
// no reordering), no loss — the paper reports "we did not encounter message
// loss" and "messages do not arrive out of order".
func LAN() Profile {
	return Profile{
		Delay:     200 * time.Microsecond,
		Bandwidth: 100 * 1000 * 1000 / 8,
	}
}

// WAN returns the profile used for the paper's Figure 5 testbed: the 7-hop
// Internet path between the Hebrew and Tel Aviv Universities, with no QoS
// reservation — tens of milliseconds of delay, jitter-induced reordering
// and sporadic loss ("a certain percentage of the messages are lost").
func WAN() Profile {
	return Profile{
		Delay:     20 * time.Millisecond,
		Jitter:    8 * time.Millisecond,
		Loss:      0.005,
		Bandwidth: 10 * 1000 * 1000 / 8,
	}
}

// Stats aggregates network-wide counters.
type Stats struct {
	Sent      uint64 // packets handed to the network
	Delivered uint64 // packets delivered to a handler
	Dropped   uint64 // packets lost (loss, partition, dead node, no handler)
	Bytes     uint64 // payload bytes delivered
}

// Network is a simulated transport.Network.
type Network struct {
	clk clock.Clock

	mu        sync.Mutex
	rng       *rand.Rand
	def       Profile
	overrides map[pair]Profile
	nodes     map[transport.Addr]*endpoint
	blocked   map[pair]bool
	links     map[pair]linkState
	egress    map[transport.Addr]int64 // shared NIC rate, bytes/s (0 = none)
	egressQ   map[transport.Addr]linkState
	extraLoss float64 // network-wide additional drop probability (loss burst)
	// Free lists of delivery events (the packet buffer pool), segregated
	// by buffer size class: a mixed list keeps handing records that last
	// carried a tiny control packet to full video frames, reallocating the
	// copy buffer almost every send. Records whose buffer grew to at least
	// bigBufSize go on freeDBig and are reissued to large payloads.
	freeD    *delivery
	freeDBig *delivery
	slabD    []delivery // current slab new records are carved from
	slabDN   int        // records already carved from slabD
	sweepIn  int        // sends until the next stale-link sweep
	stats    Stats

	obs      *obs.Registry
	ctrSent  *obs.Counter // netsim.sent
	ctrDeliv *obs.Counter // netsim.delivered
	ctrDrop  *obs.Counter // netsim.dropped
	ctrBytes *obs.Counter // netsim.delivered_bytes
}

var _ transport.Network = (*Network)(nil)

type pair struct{ from, to transport.Addr }

type linkState struct {
	nextFree time.Time // when the link finishes serializing queued packets
}

// New creates a network on clk with the given default link profile. All
// randomness (loss, jitter, duplication) derives from seed.
func New(clk clock.Clock, seed int64, def Profile) *Network {
	n := &Network{
		clk:       clk,
		rng:       rand.New(rand.NewSource(seed)),
		def:       def,
		overrides: make(map[pair]Profile),
		nodes:     make(map[transport.Addr]*endpoint),
		blocked:   make(map[pair]bool),
		links:     make(map[pair]linkState),
		egress:    make(map[transport.Addr]int64),
		egressQ:   make(map[transport.Addr]linkState),
	}
	n.SetObs(nil)
	return n
}

// SetObs attaches an observability registry: the network-wide counters are
// mirrored there, and fault injections (crashes, partitions, link failures)
// leave trace events. A nil registry detaches (counters become unregistered
// no-op instances).
func (n *Network) SetObs(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obs = reg
	n.ctrSent = reg.Counter("netsim.sent")
	n.ctrDeliv = reg.Counter("netsim.delivered")
	n.ctrDrop = reg.Counter("netsim.dropped")
	n.ctrBytes = reg.Counter("netsim.delivered_bytes")
}

// SetEgressLimit caps a node's total outbound rate (bytes/s): all packets
// it sends share one serialization queue, modeling the node's NIC. Per-link
// bandwidth still applies downstream. Zero removes the cap. This is how a
// single video server saturates — its uplink, not any one client's path.
func (n *Network) SetEgressLimit(addr transport.Addr, bytesPerSec int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if bytesPerSec <= 0 {
		delete(n.egress, addr)
		return
	}
	n.egress[addr] = bytesPerSec
}

// NewEndpoint implements transport.Network. An address whose previous
// endpoint was closed (node crashed or shut down) may be bound again — a
// restarted node reclaiming its port. Datagrams already in flight toward
// the address are delivered to the new incarnation, exactly as late UDP
// packets reach a rebound socket.
func (n *Network) NewEndpoint(addr transport.Addr) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.nodes[addr]; ok && !old.closed {
		return nil, fmt.Errorf("netsim: bind %q: %w", addr, transport.ErrAddrInUse)
	}
	ep := &endpoint{net: n, addr: addr}
	n.nodes[addr] = ep
	return ep, nil
}

// SetProfile overrides the profile of the directed link from→to.
func (n *Network) SetProfile(from, to transport.Addr, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.overrides[pair{from, to}] = p
}

// SetDefaultProfile replaces the profile used by links with no override.
func (n *Network) SetDefaultProfile(p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = p
}

// SetLinkDown blocks (or unblocks) traffic in both directions between a
// and b. Packets already in flight still arrive, as on a real network.
func (n *Network) SetLinkDown(a, b transport.Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.blocked[pair{a, b}] = true
		n.blocked[pair{b, a}] = true
		n.obs.Event("netsim.link_down", string(a)+" <-> "+string(b))
	} else {
		delete(n.blocked, pair{a, b})
		delete(n.blocked, pair{b, a})
		n.obs.Event("netsim.link_up", string(a)+" <-> "+string(b))
	}
}

// SetLinkOneWayDown blocks (or unblocks) traffic in the single direction
// from→to, leaving the reverse direction untouched. This is the asymmetric
// split that presence-based merging cannot observe directly (DESIGN §5): A
// hears B but B never hears A.
func (n *Network) SetLinkOneWayDown(from, to transport.Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.blocked[pair{from, to}] = true
		n.obs.Event("netsim.link_down", string(from)+" -> "+string(to))
	} else {
		delete(n.blocked, pair{from, to})
		n.obs.Event("netsim.link_up", string(from)+" -> "+string(to))
	}
}

// SetExtraLoss adds an independent drop probability in [0, 1] on every link
// on top of each profile's own loss — a network-wide loss burst (congestion
// collapse, a flapping switch). Zero restores normal service. The extra
// loss draws from the same seeded RNG as profile loss, so bursts are
// deterministic; when it is zero no random number is consumed and existing
// schedules replay unchanged.
func (n *Network) SetExtraLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n.extraLoss = p
	if p > 0 {
		n.obs.Event("netsim.loss_burst", fmt.Sprintf("p=%.2f", p))
	} else {
		n.obs.Event("netsim.loss_burst_end", "")
	}
}

// Partition blocks all traffic between nodes in different groups. Nodes not
// listed in any group are unaffected. Partition composes with previously
// blocked links; use Heal to clear everything.
func (n *Network) Partition(groups ...[]transport.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obs.Event("netsim.partition", fmt.Sprintf("%d groups", len(groups)))
	for i := range groups {
		for j := range groups {
			if i == j {
				continue
			}
			for _, a := range groups[i] {
				for _, b := range groups[j] {
					n.blocked[pair{a, b}] = true
				}
			}
		}
	}
}

// Heal removes every link block and partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obs.Event("netsim.heal", "all blocks cleared")
	n.blocked = make(map[pair]bool)
}

// Crash makes the node at addr fail-stop: its endpoint is closed and all
// packets to or from it are dropped. In-flight packets from the node still
// arrive (they already left the NIC). The address may be bound again with
// NewEndpoint — a cold restart of the node.
func (n *Network) Crash(addr transport.Addr) {
	n.mu.Lock()
	ep := n.nodes[addr]
	n.obs.Event("netsim.crash", string(addr))
	n.mu.Unlock()
	if ep != nil {
		_ = ep.Close()
	}
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// send is called by endpoints with the sender's address already validated.
// When stable is true the payload is caller-guaranteed immutable and the
// delivery aliases it instead of copying; the loss/duplication/timing path is
// identical either way (same RNG draws, same serialization on len(payload)),
// so a run using stable sends replays byte-for-byte like one that copies.
func (n *Network) send(from, to transport.Addr, payload []byte, stable bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()

	n.stats.Sent++
	n.ctrSent.Inc()
	if _, ok := n.nodes[to]; !ok {
		// Sending to an address that never existed is a harness bug;
		// sending to a crashed node is normal (its entry is kept, closed).
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return fmt.Errorf("netsim: send %s→%s: %w", from, to, transport.ErrNoRoute)
	}
	if n.blocked[pair{from, to}] {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return nil // silently lost, like a partitioned UDP packet
	}

	prof, ok := n.overrides[pair{from, to}]
	if !ok {
		prof = n.def
	}
	if prof.Loss > 0 && n.rng.Float64() < prof.Loss {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return nil
	}
	if n.extraLoss > 0 && n.rng.Float64() < n.extraLoss {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		return nil
	}

	deliveries := 1
	if prof.Duplicate > 0 && n.rng.Float64() < prof.Duplicate {
		deliveries = 2
	}
	for i := 0; i < deliveries; i++ {
		// The sender may reuse its buffer after Send returns, as with UDP
		// (the kernel copies); copy into a pooled delivery event before
		// scheduling. Each duplicate gets its own buffer so the handlers
		// never share backing storage. Stable payloads skip the copy:
		// immutable buffers are safe to share even between duplicates.
		d := n.newDeliveryLocked(from, to, payload, stable)
		delay := n.transitTimeLocked(from, to, prof, len(payload))
		clock.Schedule(n.clk, delay, d.fn)
	}
	n.maybeSweepLocked()
	return nil
}

// delivery is one in-flight packet: a pooled buffer plus the routing info
// its timer callback needs. Events cycle through a free list under n.mu so
// steady-state traffic schedules deliveries without allocating; the buffer
// is reused for the next packet as soon as the receiving handler returns,
// which is what the transport.Handler copy-on-retain rule licenses.
type delivery struct {
	n        *Network
	from, to transport.Addr
	data     []byte    // what the handler receives: either buf or a stable alias
	buf      []byte    // pool-owned copy buffer, reused across packets
	fn       func()    // d.run, bound once: a method value allocates per use
	next     *delivery // free-list link
}

// deliverySlabSize is how many delivery records one slab allocation carves
// out. Peak in-flight packet count during a capacity run is a few thousand,
// so cold start costs tens of slab allocations instead of thousands of
// individual ones.
const deliverySlabSize = 128

// newDeliveryLocked takes a delivery off the free list (or carves one from
// the current slab) and loads it with the payload: a copy into the record's
// own buffer normally, or a direct alias when the caller guaranteed the
// payload immutable. Caller holds n.mu.
func (n *Network) newDeliveryLocked(from, to transport.Addr, payload []byte, stable bool) *delivery {
	list := &n.freeD
	if !stable && len(payload) > smallBufMax {
		list = &n.freeDBig
	}
	d := *list
	if d != nil {
		*list = d.next
		d.next = nil
	} else {
		if n.slabDN == len(n.slabD) {
			n.slabD = make([]delivery, deliverySlabSize)
			n.slabDN = 0
		}
		d = &n.slabD[n.slabDN]
		n.slabDN++
		d.n = n
		d.fn = d.run
	}
	d.from, d.to = from, to
	if stable {
		d.data = payload
	} else {
		if cap(d.buf) < len(payload) {
			// Recycled records carry whatever buffer their last occupant
			// grew; round fresh growth to a power of two so a record
			// converges on its size class's maximum instead of
			// reallocating every time a slightly larger packet lands.
			size := 64
			for size < len(payload) {
				size <<= 1
			}
			d.buf = make([]byte, 0, size)
		}
		d.buf = append(d.buf[:0], payload...)
		d.data = d.buf
	}
	return d
}

// smallBufMax splits the delivery pool's size classes: GCS control traffic
// (heartbeats, acks, flow control) stays well under it, while framed video
// packets exceed it.
const smallBufMax = 512

// recycleLocked returns a delivery to the pool. data is always dropped — it
// may alias a caller's immutable table, which the pool must never write to —
// while buf (always pool-owned) keeps its capacity warm for the next copy.
// Caller holds n.mu; the delivery's timer must have fired already.
func (d *delivery) recycleLocked() {
	n := d.n
	d.from, d.to = "", ""
	d.data = nil
	if cap(d.buf) > smallBufMax {
		d.next = n.freeDBig
		n.freeDBig = d
	} else {
		d.next = n.freeD
		n.freeD = d
	}
}

// run fires when the packet arrives: hand the payload to the destination
// handler (outside the lock, since handlers send packets of their own), then
// recycle the event.
func (d *delivery) run() {
	n := d.n
	n.mu.Lock()
	ep := n.nodes[d.to]
	var h transport.Handler
	if ep != nil && !ep.closed {
		h = ep.handler
	}
	if h == nil {
		n.stats.Dropped++
		n.ctrDrop.Inc()
		d.recycleLocked()
		n.mu.Unlock()
		return
	}
	n.stats.Delivered++
	n.stats.Bytes += uint64(len(d.data))
	n.ctrDeliv.Inc()
	n.ctrBytes.Add(uint64(len(d.data)))
	from, data := d.from, d.data
	n.mu.Unlock()
	h(from, data)
	n.mu.Lock()
	d.recycleLocked()
	n.mu.Unlock()
}

// transitTimeLocked computes the packet's total time in the network,
// accounting for serialization queueing on the directed link.
func (n *Network) transitTimeLocked(from, to transport.Addr, prof Profile, size int) time.Duration {
	delay := prof.Delay
	if prof.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
	}
	if rate := n.egress[from]; rate > 0 {
		eq := n.egressQ[from] // zero value = drained link, same as absent
		now := n.clk.Now()
		start := now
		if eq.nextFree.After(start) {
			start = eq.nextFree
		}
		ser := time.Duration(int64(size) * int64(time.Second) / rate)
		eq.nextFree = start.Add(ser)
		n.egressQ[from] = eq
		delay += eq.nextFree.Sub(now)
	}
	if prof.Bandwidth > 0 {
		key := pair{from, to}
		ls := n.links[key] // zero value = drained link, same as absent
		now := n.clk.Now()
		start := now
		if ls.nextFree.After(start) {
			start = ls.nextFree
		}
		ser := time.Duration(int64(size) * int64(time.Second) / prof.Bandwidth)
		ls.nextFree = start.Add(ser)
		n.links[key] = ls
		delay += ls.nextFree.Sub(now)
	}
	return delay
}

// sweepPeriod is how many sends pass between stale-link sweeps. Sweeping is
// amortized rather than per-send because a sweep walks every tracked link.
const sweepPeriod = 4096

// maybeSweepLocked occasionally prunes link and egress-queue entries whose
// serialization queue has already drained (nextFree in the past): an idle
// entry behaves identically to an absent one, so dropping it is invisible to
// the simulation, and long capacity sweeps across many node pairs no longer
// accumulate dead link state forever. Deletion is order-independent and
// consumes no randomness, so replays are unaffected. Caller holds n.mu.
func (n *Network) maybeSweepLocked() {
	n.sweepIn--
	if n.sweepIn > 0 {
		return
	}
	n.sweepIn = sweepPeriod
	now := n.clk.Now()
	for key, ls := range n.links {
		if !ls.nextFree.After(now) {
			delete(n.links, key)
		}
	}
	for addr, eq := range n.egressQ {
		if !eq.nextFree.After(now) {
			delete(n.egressQ, addr)
		}
	}
}

type endpoint struct {
	net  *Network
	addr transport.Addr

	// handler and closed are guarded by net.mu: endpoint state changes
	// must be ordered with packet deliveries, which hold that lock.
	handler transport.Handler
	closed  bool
}

var (
	_ transport.Endpoint     = (*endpoint)(nil)
	_ transport.StableSender = (*endpoint)(nil)
)

func (e *endpoint) Addr() transport.Addr { return e.addr }

func (e *endpoint) Send(to transport.Addr, payload []byte) error {
	return e.send(to, payload, false)
}

// SendStable implements transport.StableSender: the payload must never be
// mutated again, and in exchange the network neither copies it on send nor
// on duplication — the receiving handler gets the caller's backing array.
// Drop, duplication and timing behavior are identical to Send.
func (e *endpoint) SendStable(to transport.Addr, payload []byte) error {
	return e.send(to, payload, true)
}

func (e *endpoint) send(to transport.Addr, payload []byte, stable bool) error {
	if len(payload) > transport.MaxDatagram {
		return fmt.Errorf("netsim: send to %s: %w", to, transport.ErrTooLarge)
	}
	e.net.mu.Lock()
	closed := e.closed
	e.net.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	return e.net.send(e.addr, to, payload, stable)
}

func (e *endpoint) SetHandler(h transport.Handler) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.handler = h
}

func (e *endpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closed = true
	e.handler = nil
	return nil
}

// EgressBacklog reports how far ahead of now a node's shared egress queue
// is booked — the queueing delay the next outbound packet would see.
func (n *Network) EgressBacklog(addr transport.Addr) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	eq, ok := n.egressQ[addr]
	if !ok {
		return 0
	}
	d := eq.nextFree.Sub(n.clk.Now())
	if d <= 0 {
		// Queue already drained: equivalent to no entry, so prune it.
		delete(n.egressQ, addr)
		return 0
	}
	return d
}
