package netsim

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

// TestAllocsSteadyStateDelivery pins the per-packet allocation count of the
// simulated network once its pools are warm: the delivery event, its payload
// buffer, and the clock's timer record are all recycled, so pushing one more
// packet through an idle link must not allocate.
func TestAllocsSteadyStateDelivery(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := New(clk, 1, Profile{Delay: time.Millisecond})
	a, err := net.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	b.SetHandler(func(from transport.Addr, payload []byte) { got++ })

	payload := make([]byte, 1200)
	for i := 0; i < 64; i++ { // warm the delivery and buffer pools
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
		clk.Advance(2 * time.Millisecond)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
		clk.Advance(2 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("warm send/deliver cycle = %v allocs/op, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("handler never ran")
	}
}
