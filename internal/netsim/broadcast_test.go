package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

// broadcastWorld builds one sender and nDst receivers, each counting its
// deliveries, on a network seeded identically across calls.
type broadcastWorld struct {
	r      *rig
	src    transport.Endpoint
	refs   []transport.AddrRef
	counts []int
	bytes  []int
}

func newBroadcastWorld(t *testing.T, prof Profile, nDst int) *broadcastWorld {
	t.Helper()
	w := &broadcastWorld{r: newRig(t, prof)}
	w.src = w.r.endpoint(t, "src")
	res := w.src.(transport.RefResolver)
	w.counts = make([]int, nDst)
	w.bytes = make([]int, nDst)
	for i := 0; i < nDst; i++ {
		name := transport.Addr('A' + byte(i))
		ep := w.r.endpoint(t, name)
		i := i
		ep.SetHandler(func(_ transport.Addr, p []byte) {
			w.counts[i]++
			w.bytes[i] += len(p)
		})
		w.refs = append(w.refs, res.ResolveAddr(name))
	}
	return w
}

// chaosSetup applies the same fault mix to a world: a lossy/jittery/slow
// override on one pair, a duplicating override on another, a blocked pair,
// and a network-wide extra-loss burst — every divergence class the batch
// path can hit.
func (w *broadcastWorld) chaosSetup() {
	w.r.net.SetProfile("src", "B", Profile{Delay: 3 * time.Millisecond, Jitter: time.Millisecond, Loss: 0.3, Bandwidth: 1000 * 1000})
	w.r.net.SetProfile("src", "C", Profile{Delay: time.Millisecond, Duplicate: 0.5})
	w.r.net.SetLinkDown("src", "D", true)
	w.r.net.SetExtraLoss(0.1)
}

// TestBroadcastMatchesLoop pins the batch path's determinism contract under
// divergence: with per-pair overrides (loss, jitter, duplication), a blocked
// pair and an extra-loss burst all active, a run that batches its fan-out
// must consume the seeded RNG in the same order as one that loops over
// SendStableRef — so per-destination delivery counts and the aggregate
// Stats come out identical.
func TestBroadcastMatchesLoop(t *testing.T) {
	const nDst, rounds = 8, 200
	payload := []byte("stable-frame-payload")

	run := func(batch bool) ([]int, Stats) {
		w := newBroadcastWorld(t, Profile{Delay: time.Millisecond, Bandwidth: 10 * 1000 * 1000}, nDst)
		w.chaosSetup()
		if batch {
			sender := w.src.(transport.RefBatchSender)
			payloads := make([][]byte, nDst)
			for i := range payloads {
				payloads[i] = payload
			}
			for r := 0; r < rounds; r++ {
				_ = sender.SendStableRefBatch(w.refs, payloads)
				w.r.clk.Advance(5 * time.Millisecond)
			}
		} else {
			sender := w.src.(transport.RefSender)
			for r := 0; r < rounds; r++ {
				for _, ref := range w.refs {
					_ = sender.SendStableRef(ref, payload)
				}
				w.r.clk.Advance(5 * time.Millisecond)
			}
		}
		w.r.clk.Drain(0)
		return w.counts, w.r.net.Stats()
	}

	loopCounts, loopStats := run(false)
	batchCounts, batchStats := run(true)
	for i := range loopCounts {
		if loopCounts[i] != batchCounts[i] {
			t.Errorf("dst %d: loop delivered %d, batch delivered %d", i, loopCounts[i], batchCounts[i])
		}
	}
	if loopStats != batchStats {
		t.Fatalf("stats differ:\nloop:  %+v\nbatch: %+v", loopStats, batchStats)
	}
	// Sanity: the chaos mix actually exercised loss, duplication and blocks.
	if loopStats.Dropped == 0 {
		t.Fatal("no drops — chaos setup inert")
	}
	if loopStats.Delivered <= uint64(rounds*nDst)-loopStats.Dropped {
		t.Fatalf("no duplicates observed: delivered %d, sent %d, dropped %d",
			loopStats.Delivered, loopStats.Sent, loopStats.Dropped)
	}
}

// TestBroadcastCoalescedDelivery pins the batch's one-event shape: on a
// uniform profile every destination's payload arrives at the same instant —
// the last slot of the batch's shared-NIC serialization train, exactly
// where the final looped send would have landed.
func TestBroadcastCoalescedDelivery(t *testing.T) {
	const nDst = 4
	w := newBroadcastWorld(t, Profile{Delay: time.Millisecond}, nDst)
	w.r.net.SetEgressLimit("src", 1000*1000)
	var times []time.Time
	for i := 0; i < nDst; i++ {
		name := transport.Addr('A' + byte(i))
		ep := w.r.net.eps[w.refs[i]]
		prev := ep.handler
		_ = name
		ep.handler = func(from transport.Addr, p []byte) {
			times = append(times, w.r.clk.Now())
			prev(from, p)
		}
	}
	payloads := make([][]byte, nDst)
	pkt := make([]byte, 1000)
	for i := range payloads {
		payloads[i] = pkt
	}
	if err := w.src.(transport.RefBatchSender).SendStableRefBatch(w.refs, payloads); err != nil {
		t.Fatal(err)
	}
	w.r.clk.Drain(0)
	if len(times) != nDst {
		t.Fatalf("delivered %d of %d", len(times), nDst)
	}
	// 1000 bytes at 1 MB/s = 1ms of shared-NIC serialization per packet;
	// the train is nDst packets long, plus the 1ms propagation delay.
	want := simEpoch.Add(time.Millisecond + nDst*time.Millisecond)
	for i, at := range times {
		if !at.Equal(want) {
			t.Errorf("dst %d delivered at %v, want coalesced instant %v", i, at, want)
		}
	}
	if got := w.r.net.Stats().Delivered; got != nDst {
		t.Fatalf("delivered = %d, want %d", got, nDst)
	}
}

// TestBroadcastRefSharedPayload exercises the ISSUE-named single-payload
// convenience: encode once, deliver N, with the very same backing array
// reaching every handler.
func TestBroadcastRefSharedPayload(t *testing.T) {
	const nDst = 5
	w := newBroadcastWorld(t, Profile{Delay: time.Millisecond}, nDst)
	shared := []byte("one-buffer-for-everyone")
	var aliased int
	for i := 0; i < nDst; i++ {
		ep := w.r.net.eps[w.refs[i]]
		prev := ep.handler
		ep.handler = func(from transport.Addr, p []byte) {
			if len(p) == len(shared) && &p[0] == &shared[0] {
				aliased++
			}
			prev(from, p)
		}
	}
	if err := w.src.(*endpoint).BroadcastRef(w.refs, shared); err != nil {
		t.Fatal(err)
	}
	w.r.clk.Drain(0)
	if aliased != nDst {
		t.Fatalf("payload aliased to %d of %d handlers; broadcast must not copy", aliased, nDst)
	}
}

// TestBroadcastBadDestinations: a never-interned ref drops with ErrNoRoute
// while the rest of the batch still goes through, and mismatched slice
// lengths are rejected outright.
func TestBroadcastBadDestinations(t *testing.T) {
	w := newBroadcastWorld(t, Profile{}, 2)
	sender := w.src.(transport.RefBatchSender)
	if err := sender.SendStableRefBatch(w.refs, [][]byte{{1}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	dsts := []transport.AddrRef{w.refs[0], transport.AddrRef(9999), w.refs[1]}
	p := []byte("x")
	err := sender.SendStableRefBatch(dsts, [][]byte{p, p, p})
	if !errors.Is(err, transport.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	w.r.clk.Drain(0)
	if w.counts[0] != 1 || w.counts[1] != 1 {
		t.Fatalf("valid destinations got %v, want one delivery each", w.counts)
	}
	st := w.r.net.Stats()
	if st.Sent != 3 || st.Delivered != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want Sent 3 / Delivered 2 / Dropped 1", st)
	}
}
