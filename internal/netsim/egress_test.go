package netsim

import (
	"testing"
	"time"

	"repro/internal/transport"
)

func TestEgressLimitDirect(t *testing.T) {
	r := newRig(t, Profile{})
	a := r.endpoint(t, "a")
	b := r.endpoint(t, "b")
	c := r.endpoint(t, "c")
	r.net.SetEgressLimit("a", 1000) // 1000 B/s shared
	var arrivals []time.Duration
	h := func(transport.Addr, []byte) { arrivals = append(arrivals, r.clk.Now().Sub(simEpoch)) }
	b.SetHandler(h)
	c.SetHandler(h)
	// Two 500-byte packets to different destinations share the NIC:
	// second arrives at 1s, not 0.5s.
	payload := make([]byte, 500)
	_ = a.Send("b", payload)
	_ = a.Send("c", payload)
	r.clk.Drain(0)
	if len(arrivals) != 2 || arrivals[0] != 500*time.Millisecond || arrivals[1] != time.Second {
		t.Fatalf("arrivals = %v, want [500ms 1s]", arrivals)
	}
}
