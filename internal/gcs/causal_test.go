package gcs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
)

// causalTriangle builds {a, b, c} where a→c is much slower than a→b and
// b→c — the classic topology where plain FIFO multicast violates
// causality: c hears b's reaction before a's original message.
func causalTriangle(t *testing.T) *cluster {
	t.Helper()
	c := newCluster(t, 1, netsim.Profile{Delay: time.Millisecond})
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")
	c.net.SetProfile("a", "c", netsim.Profile{Delay: 200 * time.Millisecond})
	return c
}

// TestPlainFIFOViolatesCausality documents why the causal service exists:
// with plain multicast, the reaction overtakes the cause at the slow
// receiver.
func TestPlainFIFOViolatesCausality(t *testing.T) {
	c := causalTriangle(t)
	if err := c.mem["a"].Multicast([]byte("cause")); err != nil {
		t.Fatal(err)
	}
	// b reacts as soon as it delivers the cause.
	c.settle(5 * time.Millisecond)
	if err := c.mem["b"].Multicast([]byte("reaction")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)

	got := agreedOf(c, "c")
	if len(got) != 2 {
		t.Fatalf("c delivered %v", got)
	}
	if got[0] != "reaction" {
		t.Skip("network timing did not produce the inversion this run")
	}
	// Inversion observed — exactly what MulticastCausal prevents.
}

// TestCausalOrdersCauseBeforeReaction: the same topology with causal
// multicast must deliver cause before reaction everywhere.
func TestCausalOrdersCauseBeforeReaction(t *testing.T) {
	c := causalTriangle(t)
	if err := c.mem["a"].MulticastCausal([]byte("cause")); err != nil {
		t.Fatal(err)
	}
	c.settle(5 * time.Millisecond) // b has delivered the cause; c has not
	if err := c.mem["b"].MulticastCausal([]byte("reaction")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)

	for _, id := range []ProcessID{"a", "b", "c"} {
		got := agreedOf(c, id)
		if len(got) != 2 || got[0] != "cause" || got[1] != "reaction" {
			t.Fatalf("%s delivered %v, want [cause reaction]", id, got)
		}
	}
}

// TestCausalChain: a three-step causal chain across three senders arrives
// in chain order at every member.
func TestCausalChain(t *testing.T) {
	c := causalTriangle(t)
	c.net.SetProfile("b", "a", netsim.Profile{Delay: 150 * time.Millisecond})
	if err := c.mem["a"].MulticastCausal([]byte("m1")); err != nil {
		t.Fatal(err)
	}
	c.settle(5 * time.Millisecond)
	if err := c.mem["b"].MulticastCausal([]byte("m2")); err != nil {
		t.Fatal(err)
	}
	c.settle(5 * time.Millisecond)
	if err := c.mem["c"].MulticastCausal([]byte("m3")); err != nil {
		t.Fatal(err)
	}
	c.settle(2 * time.Second)

	want := []string{"m1", "m2", "m3"}
	for _, id := range []ProcessID{"a", "b", "c"} {
		got := agreedOf(c, id)
		if len(got) != 3 {
			t.Fatalf("%s delivered %v", id, got)
		}
		for i := range want {
			// m3 is causally after m2 only if c delivered m2 before
			// sending — with the slow a→c link c may not have m1/m2 yet,
			// making m3 concurrent. Guard: require m1 < m2 everywhere,
			// and m3 after whatever c had delivered.
			_ = i
		}
		if idx(got, "m1") > idx(got, "m2") {
			t.Fatalf("%s: m2 before m1: %v", id, got)
		}
	}
}

func idx(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// TestCausalUnderLoss: causal delivery still completes under loss (the
// NAK machinery fills the gaps; causal gating must not wedge).
func TestCausalUnderLoss(t *testing.T) {
	prof := netsim.LAN()
	prof.Loss = 0.10
	c := newCluster(t, 5, prof)
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(10*time.Second, "a", "b", "c")

	for i := 0; i < 20; i++ {
		sender := []ProcessID{"a", "b", "c"}[i%3]
		if err := c.mem[sender].MulticastCausal([]byte(fmt.Sprintf("%s-%02d", sender, i))); err != nil {
			t.Fatal(err)
		}
		c.settle(15 * time.Millisecond)
	}
	c.settle(5 * time.Second)
	for _, id := range []ProcessID{"a", "b", "c"} {
		if got := len(agreedOf(c, id)); got != 20 {
			t.Fatalf("%s delivered %d/20 causal messages under loss", id, got)
		}
	}
}

// TestCausalAcrossViewChange: messages issued before a crash-driven view
// change are delivered (or consistently dropped) under virtual synchrony,
// and causal traffic continues in the new view.
func TestCausalAcrossViewChange(t *testing.T) {
	c := newCluster(t, 2, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	for i := 0; i < 10; i++ {
		if err := c.mem["a"].MulticastCausal([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(50 * time.Millisecond)
	c.net.Crash("a")
	c.waitConverged(5*time.Second, "b", "c")
	if err := c.mem["b"].MulticastCausal([]byte("post")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)

	gotB, gotC := agreedOf(c, "b"), agreedOf(c, "c")
	if len(gotB) != len(gotC) {
		t.Fatalf("virtual synchrony violated for causal traffic: %d vs %d", len(gotB), len(gotC))
	}
	if gotB[len(gotB)-1] != "post" || gotC[len(gotC)-1] != "post" {
		t.Fatal("post-view causal message missing")
	}
}

// TestCausalMixedWithAgreedAndPlain: the three delivery services coexist
// on one group without losing anything.
func TestCausalMixedWithAgreedAndPlain(t *testing.T) {
	c := newCluster(t, 4, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.waitConverged(3*time.Second, "a", "b")

	if err := c.mem["a"].Multicast([]byte("plain")); err != nil {
		t.Fatal(err)
	}
	if err := c.mem["a"].MulticastCausal([]byte("causal")); err != nil {
		t.Fatal(err)
	}
	if err := c.mem["a"].MulticastAgreed([]byte("agreed")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)
	for _, id := range []ProcessID{"a", "b"} {
		got := agreedOf(c, id)
		if len(got) != 3 {
			t.Fatalf("%s delivered %v", id, got)
		}
		seen := map[string]bool{}
		for _, d := range got {
			seen[d] = true
		}
		if !seen["plain"] || !seen["causal"] || !seen["agreed"] {
			t.Fatalf("%s missing a service's message: %v", id, got)
		}
	}
}
