package gcs

import (
	"sort"

	"repro/internal/wire"
)

// Agreed (totally-ordered) multicast — the second delivery service Transis
// offers alongside FIFO. Implemented with the classical sequencer pattern:
// the sender hands the message to the view coordinator, which re-multicasts
// it through its own reliable FIFO stream. Since every member delivers the
// coordinator's stream in the same order, all agreed messages are delivered
// in one total order at every member.
//
// Reliability across coordinator failure: the sender retains each agreed
// message until it observes its own delivery, retransmitting to whoever the
// current coordinator is; receivers deliver per-sender agreed messages in
// sequence-number order and drop duplicates, so retries and coordinator
// changes are safe. Agreed sequence state survives view changes (unlike
// the per-view FIFO state), which is what makes the retry loop exactly-once.
//
// Payload framing: every application payload that travels through the FIFO
// layer carries a one-byte tag — payloadPlain for ordinary multicasts,
// payloadAgreed for sequencer-forwarded ones (followed by the original
// sender and its agreed sequence number). The tag is internal; handlers
// always see the bare application payload.

const (
	payloadPlain  uint8 = 0
	payloadAgreed uint8 = 1
	payloadCausal uint8 = 2
	payloadSafe   uint8 = 3
)

// wrapAgreed frames a sequencer-forwarded payload.
func wrapAgreed(sender ProcessID, seq uint64, data []byte) []byte {
	out := make([]byte, 0, len(data)+16+len(sender))
	out = wire.AppendU8(out, payloadAgreed)
	out = wire.AppendString(out, string(sender))
	out = wire.AppendU64(out, seq)
	return append(out, data...)
}

// MulticastAgreed reliably multicasts payload with agreed (total-order)
// delivery: every group member delivers all agreed messages in the same
// order. Stronger and costlier than Multicast (one extra hop through the
// view coordinator); the VoD layer does not need it, but applications
// built on the GCS may (it is one of the Transis services the paper's
// platform provides).
func (m *Member) MulticastAgreed(payload []byte) error {
	data := append([]byte(nil), payload...)
	m.p.mu.Lock()
	if !m.active {
		m.p.mu.Unlock()
		return ErrClosed
	}
	if m.agreedPending == nil {
		m.agreedPending = make(map[uint64][]byte)
	}
	seq := m.agreedSendSeq
	m.agreedSendSeq++
	m.agreedPending[seq] = data
	coord := m.view.Coordinator()
	req := encodeAgreedReq(&msgAgreedReq{group: m.group, seq: seq, payload: data})
	var cb callbacks
	if coord == m.p.id {
		m.onAgreedReqLocked(m.p.id, &msgAgreedReq{group: m.group, seq: seq, payload: data}, &cb)
		m.p.mu.Unlock()
		cb.run()
		return nil
	}
	m.p.mu.Unlock()
	return m.p.cfg.Endpoint.Send(coord, req)
}

// onAgreedReqLocked runs at the coordinator: forward the message through
// our own FIFO stream, once per (sender, seq). Requests can arrive out of
// order (unicast under loss, retries), so dedup is per sequence number,
// not a high-water cursor.
func (m *Member) onAgreedReqLocked(from ProcessID, msg *msgAgreedReq, cb *callbacks) {
	if m.view.Coordinator() != m.p.id {
		return // stale request; the sender will retry at the right coordinator
	}
	if m.agreedNext != nil && msg.seq < m.agreedNext[from] {
		return // already ordered and delivered here
	}
	if m.agreedForwarded == nil {
		m.agreedForwarded = make(map[ProcessID]map[uint64]bool)
	}
	fwd := m.agreedForwarded[from]
	if fwd == nil {
		fwd = make(map[uint64]bool)
		m.agreedForwarded[from] = fwd
	}
	if fwd[msg.seq] {
		return // already forwarded; FIFO repair finishes the delivery
	}
	fwd[msg.seq] = true
	wrapped := wrapAgreed(from, msg.seq, msg.payload)
	if m.status != statusNormal {
		m.sendQueue = append(m.sendQueue, wrapped)
		return
	}
	m.multicastWrappedLocked(wrapped, cb)
}

// deliverAgreedLocked handles an unwrapped agreed payload arriving through
// the FIFO layer: drop duplicates, park out-of-order, deliver in per-sender
// sequence order, and settle the sender's retry state.
func (m *Member) deliverAgreedLocked(orig ProcessID, seq uint64, data []byte, cb *callbacks) {
	if m.agreedNext == nil {
		m.agreedNext = make(map[ProcessID]uint64)
		m.agreedParked = make(map[ProcessID]map[uint64][]byte)
	}
	if seq < m.agreedNext[orig] {
		return // duplicate (retry already delivered)
	}
	parked := m.agreedParked[orig]
	if parked == nil {
		parked = make(map[uint64][]byte)
		m.agreedParked[orig] = parked
	}
	parked[seq] = data
	for {
		next := m.agreedNext[orig]
		d, ok := parked[next]
		if !ok {
			return
		}
		delete(parked, next)
		m.agreedNext[orig] = next + 1
		if orig == m.p.id {
			delete(m.agreedPending, next) // our retry loop can stop
		}
		if fwd := m.agreedForwarded[orig]; fwd != nil {
			delete(fwd, next) // sequencer dedup no longer needs this entry
		}
		if h := m.handlers.OnMessage; h != nil {
			cb.addMsg(h, m.group, orig, d)
		}
	}
}

// agreedRetryLocked retransmits unacknowledged agreed messages to the
// current coordinator — called from the retransmission tick.
func (m *Member) agreedRetryLocked(cb *callbacks) {
	if len(m.agreedPending) == 0 || m.status != statusNormal {
		return
	}
	coord := m.view.Coordinator()
	// Retransmit in sequence order, not map order: each send perturbs the
	// simulated network's shared RNG, so ordering must be deterministic.
	seqs := make([]uint64, 0, len(m.agreedPending))
	for seq := range m.agreedPending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		req := &msgAgreedReq{group: m.group, seq: seq, payload: m.agreedPending[seq]}
		if coord == m.p.id {
			m.onAgreedReqLocked(m.p.id, req, cb)
		} else {
			_ = m.p.cfg.Endpoint.Send(coord, encodeAgreedReq(req))
		}
	}
}
