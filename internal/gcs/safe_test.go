package gcs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestSafeDeliversEverywhere(t *testing.T) {
	c := agreedCluster(t, 3, 7, netsim.LAN())
	for i := 0; i < 10; i++ {
		if err := c.mem["p0"].MulticastSafe([]byte(fmt.Sprintf("s%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(2 * time.Second)
	for _, id := range []ProcessID{"p0", "p1", "p2"} {
		got := agreedOf(c, id)
		if len(got) != 10 {
			t.Fatalf("%s delivered %d/10 safe messages", id, len(got))
		}
		for i, d := range got {
			if want := fmt.Sprintf("s%02d", i); d != want {
				t.Fatalf("%s order: %v", id, got)
			}
		}
	}
}

// TestSafeWaitsForUniversalReceipt: while one member is unreachable (but
// not yet excluded), nobody — including the sender — delivers the safe
// message; once the link heals and receipt is acknowledged, all deliver.
func TestSafeWaitsForUniversalReceipt(t *testing.T) {
	c := agreedCluster(t, 3, 8, netsim.LAN())

	// Cut p2 off from p0 only; p2 still heartbeats p1, and suspicion takes
	// 500ms — the message is sent into that window.
	c.net.SetLinkDown("p0", "p2", true)
	if err := c.mem["p0"].MulticastSafe([]byte("precious")); err != nil {
		t.Fatal(err)
	}
	c.settle(300 * time.Millisecond) // under the suspicion timeout

	for _, id := range []ProcessID{"p0", "p1"} {
		for _, m := range c.rec[id].messages() {
			if m.data == "precious" {
				t.Fatalf("%s delivered a safe message before universal receipt", id)
			}
		}
	}

	c.net.SetLinkDown("p0", "p2", false)
	c.settle(2 * time.Second)
	for _, id := range []ProcessID{"p0", "p1", "p2"} {
		found := false
		for _, m := range c.rec[id].messages() {
			if m.data == "precious" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s never delivered the safe message after the heal", id)
		}
	}
}

// TestSafeUnblocksWhenReceiverExcluded: if the unreachable member is
// excluded by a view change instead, the flush delivers the safe message
// to the surviving view (receipt is then universal among survivors).
func TestSafeUnblocksWhenReceiverExcluded(t *testing.T) {
	c := agreedCluster(t, 3, 9, netsim.LAN())
	c.net.Crash("p2")
	c.settle(50 * time.Millisecond) // crashed but not yet suspected
	if err := c.mem["p0"].MulticastSafe([]byte("survivor-safe")); err != nil {
		t.Fatal(err)
	}
	c.settle(200 * time.Millisecond)
	for _, id := range []ProcessID{"p0", "p1"} {
		for _, m := range c.rec[id].messages() {
			if m.data == "survivor-safe" {
				t.Fatalf("%s delivered before exclusion or receipt", id)
			}
		}
	}
	c.waitConverged(5*time.Second, "p0", "p1")
	c.settle(time.Second)
	for _, id := range []ProcessID{"p0", "p1"} {
		found := false
		for _, m := range c.rec[id].messages() {
			if m.data == "survivor-safe" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s never delivered the safe message after the view change", id)
		}
	}
}

// TestSafeOrdersSubsequentTraffic: a safe message blocks later messages
// from the same sender until it clears — FIFO holds across the gate.
func TestSafeOrdersSubsequentTraffic(t *testing.T) {
	c := agreedCluster(t, 3, 10, netsim.LAN())
	if err := c.mem["p0"].MulticastSafe([]byte("first-safe")); err != nil {
		t.Fatal(err)
	}
	if err := c.mem["p0"].Multicast([]byte("second-plain")); err != nil {
		t.Fatal(err)
	}
	c.settle(2 * time.Second)
	for _, id := range []ProcessID{"p0", "p1", "p2"} {
		got := agreedOf(c, id)
		if len(got) != 2 || got[0] != "first-safe" || got[1] != "second-plain" {
			t.Fatalf("%s delivered %v, want [first-safe second-plain]", id, got)
		}
	}
}

func TestSafeSingletonDeliversImmediately(t *testing.T) {
	c := newCluster(t, 11, netsim.LAN())
	c.join("solo", "g")
	if err := c.mem["solo"].MulticastSafe([]byte("alone")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)
	got := agreedOf(c, "solo")
	if len(got) != 1 || got[0] != "alone" {
		t.Fatalf("singleton safe delivery: %v", got)
	}
}

func TestSafeUnderLoss(t *testing.T) {
	prof := netsim.LAN()
	prof.Loss = 0.08
	c := agreedCluster(t, 3, 12, prof)
	for i := 0; i < 15; i++ {
		if err := c.mem["p1"].MulticastSafe([]byte(fmt.Sprintf("s%02d", i))); err != nil {
			t.Fatal(err)
		}
		c.settle(20 * time.Millisecond)
	}
	c.settle(5 * time.Second)
	for _, id := range []ProcessID{"p0", "p1", "p2"} {
		if got := len(agreedOf(c, id)); got != 15 {
			t.Fatalf("%s delivered %d/15 safe messages under loss", id, got)
		}
	}
}

func TestSafeOnClosedMember(t *testing.T) {
	c := agreedCluster(t, 2, 13, netsim.LAN())
	c.proc["p1"].Close()
	if err := c.mem["p1"].MulticastSafe([]byte("x")); err != ErrClosed {
		t.Fatalf("MulticastSafe after Close = %v, want ErrClosed", err)
	}
}
