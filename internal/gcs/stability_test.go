package gcs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// TestStabilityGarbageCollection: retained (delivered-but-unstable)
// messages must be reclaimed once the acknowledgement vectors show every
// member delivered them — otherwise a long-lived group leaks every message
// ever sent.
func TestStabilityGarbageCollection(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	for i := 0; i < 100; i++ {
		if err := c.mem["a"].Multicast([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Several ack rounds (200ms interval) must establish stability.
	c.settle(2 * time.Second)

	for _, id := range []ProcessID{"a", "b", "c"} {
		m := c.mem[id]
		m.p.mu.Lock()
		retained := 0
		for _, byseq := range m.ms.retained {
			retained += len(byseq)
		}
		m.p.mu.Unlock()
		if retained > 10 {
			t.Errorf("%s retains %d messages after stability; GC broken", id, retained)
		}
	}
}

// TestRetainedServeFlushAfterSenderCrash: stability must NOT reclaim
// messages too early — a message delivered at only one member must survive
// there until everyone has it, because flush recovery needs it when the
// sender dies.
func TestRetainedServeFlushAfterSenderCrash(t *testing.T) {
	prof := netsim.LAN()
	c := newCluster(t, 2, prof)
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	// Cut a→c so only b receives a's burst directly; then kill a before
	// any repair. b's retained copies are now the sole source for c.
	c.net.SetLinkDown("a", "c", true)
	for i := 0; i < 10; i++ {
		if err := c.mem["a"].Multicast([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(20 * time.Millisecond) // delivery at b, no ack round yet
	c.net.Crash("a")
	c.waitConverged(5*time.Second, "b", "c")
	c.settle(time.Second)

	// Virtual synchrony: b delivered the burst before the new view, so c
	// must have too — out of b's retained copies.
	var gotC int
	for _, m := range c.rec["c"].messages() {
		if m.from == "a" {
			gotC++
		}
	}
	if gotC != 10 {
		t.Fatalf("c delivered %d/10 of the dead sender's messages; flush recovery failed", gotC)
	}
}

// TestMultiMemberPartitionMerge splits a 4-member group into two 2-member
// sides, verifies both sides keep working independently, then heals and
// requires one merged view of all four.
func TestMultiMemberPartitionMerge(t *testing.T) {
	c := newCluster(t, 3, netsim.LAN())
	ids := []ProcessID{"a", "b", "c", "d"}
	c.join("a", "g")
	for _, id := range ids[1:] {
		c.join(id, "g", "a", "b", "c", "d")
	}
	c.waitConverged(5*time.Second, ids...)

	c.net.Partition([]transport.Addr{"a", "b"}, []transport.Addr{"c", "d"})
	c.waitConverged(5*time.Second, "a", "b")
	c.waitConverged(5*time.Second, "c", "d")

	// Both sides keep multicasting within their views.
	if err := c.mem["a"].Multicast([]byte("left")); err != nil {
		t.Fatal(err)
	}
	if err := c.mem["c"].Multicast([]byte("right")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)
	for _, id := range []ProcessID{"a", "b"} {
		if msgs := c.rec[id].messages(); len(msgs) == 0 || msgs[len(msgs)-1].data != "left" {
			t.Fatalf("%s did not deliver the left-side message", id)
		}
	}
	for _, id := range []ProcessID{"c", "d"} {
		if msgs := c.rec[id].messages(); len(msgs) == 0 || msgs[len(msgs)-1].data != "right" {
			t.Fatalf("%s did not deliver the right-side message", id)
		}
	}

	c.net.Heal()
	c.waitConverged(10*time.Second, ids...)

	// The merged view works end to end.
	if err := c.mem["d"].Multicast([]byte("merged")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)
	for _, id := range ids {
		msgs := c.rec[id].messages()
		if len(msgs) == 0 || msgs[len(msgs)-1].data != "merged" {
			t.Fatalf("%s did not deliver post-merge traffic", id)
		}
	}
}

// TestCoordinatorGracefulLeave: the coordinator announcing a leave hands
// the group to the next member quickly and cleanly.
func TestCoordinatorGracefulLeave(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	if err := c.mem["a"].Leave(); err != nil {
		t.Fatal(err)
	}
	took := c.waitConverged(3*time.Second, "b", "c")
	if took >= 500*time.Millisecond {
		t.Fatalf("coordinator leave took %v, want faster than failure detection", took)
	}
	if got := c.rec["b"].lastView().Coordinator(); got != "b" {
		t.Fatalf("new coordinator = %s, want b", got)
	}
	// The departed coordinator must not linger in anyone's view.
	if c.rec["b"].lastView().Includes("a") || c.rec["c"].lastView().Includes("a") {
		t.Fatal("left member still in a view")
	}
}

// TestRejoinAfterLeave: a member that left can join the same group again
// under the same process.
func TestRejoinAfterLeave(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.waitConverged(3*time.Second, "a", "b")

	if err := c.mem["b"].Leave(); err != nil {
		t.Fatal(err)
	}
	c.waitConverged(3*time.Second, "a")
	c.settle(3 * time.Second) // leave grace must fully deactivate

	rec := &recorder{}
	m, err := c.proc["b"].Join("g", rec.handlers(), "a")
	if err != nil {
		t.Fatalf("rejoin failed: %v", err)
	}
	c.rec["b"] = rec
	c.mem["b"] = m
	c.waitConverged(5*time.Second, "a", "b")
}
