// Package gcs is a from-scratch group communication system providing the
// services the paper obtains from Transis [Amir, Dolev, Kramer, Malki,
// FTCS'92]: named process groups, reliable FIFO multicast within a
// membership view, and agreed membership views delivered to members on
// every change — under crash failures and network partitions.
//
// The design follows the classical partitionable virtual-synchrony
// architecture:
//
//   - a process-level heartbeat failure detector (unreliable, as the paper
//     permits) raises suspicions;
//   - the lowest-ID member of a view coordinates a view change: it proposes
//     a candidate membership, collects each member's message cut, drives
//     retransmission until all members reach a common cut, then installs
//     the new view — so members that survive from one view to the next
//     deliver the same set of messages in the old view (virtual synchrony);
//   - joins and partition merges are the same protocol: a joiner starts as
//     a singleton view and announces itself (presence) to contact
//     addresses; coordinators fold foreign views into the next proposal.
//
// Multicast within a view is sender-FIFO with NAK-driven retransmission;
// delivered-but-unstable messages are retained until an acknowledgement
// vector round establishes stability, and are the source for flush
// recovery.
package gcs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/transport"
)

// ProcessID identifies a GCS process; it is the process's transport address.
type ProcessID = transport.Addr

// ViewID identifies a membership view. Views are partially ordered by Seq;
// Coord disambiguates views installed concurrently in different partitions.
type ViewID struct {
	Seq   uint64
	Coord ProcessID
}

// String implements fmt.Stringer.
func (v ViewID) String() string { return fmt.Sprintf("%d@%s", v.Seq, v.Coord) }

// View is a membership view of one group.
type View struct {
	Group   string
	ID      ViewID
	Members []ProcessID // sorted ascending
}

// Includes reports whether p is a member of the view.
func (v View) Includes(p ProcessID) bool {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i] >= p })
	return i < len(v.Members) && v.Members[i] == p
}

// Coordinator returns the member that coordinates view changes: the lowest
// process ID, a deterministic choice every member agrees on.
func (v View) Coordinator() ProcessID {
	if len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// Handlers are the callbacks a group member registers at Join. Callbacks
// run without internal locks held, so they may call back into the GCS
// (Multicast, Leave). They must not block.
type Handlers struct {
	// OnView is invoked when a new view is installed, including the
	// initial singleton view at Join.
	OnView func(v View)

	// OnMessage is invoked for every delivered group message — reliable
	// FIFO multicasts from view members (including the member's own) and
	// anycasts from processes outside the group. The payload must be
	// copied if retained.
	OnMessage func(group string, from ProcessID, payload []byte)
}

// Config configures a Process. Zero-valued durations take the defaults
// noted on each field; Clock and Endpoint are required.
type Config struct {
	Clock    clock.Clock
	Endpoint transport.Endpoint

	// Obs, when set, receives the process's gcs.* counters and trace
	// events (view changes, suspicions, NAK/retransmission activity).
	Obs *obs.Registry

	// HeartbeatInterval is the failure-detector ping period (default 100ms).
	HeartbeatInterval time.Duration
	// SuspectTimeout is how long a silent peer stays unsuspected (default
	// 500ms). With the paper's parameters this dominates takeover time.
	SuspectTimeout time.Duration
	// AckInterval is the stability-gossip period (default 200ms).
	AckInterval time.Duration
	// RetransmitInterval is the NAK retry period (default 50ms).
	RetransmitInterval time.Duration
	// PresenceInterval is the join/merge announcement period (default 250ms).
	PresenceInterval time.Duration
	// ProposalTimeout bounds each view-change phase (default 300ms).
	ProposalTimeout time.Duration

	// SharedTimers coalesces all the process's periodic duties — the
	// failure-detector heartbeat plus every membership's ack, retransmit
	// and presence gossip — onto one timer ticking at the gcd of the four
	// intervals, instead of one Periodic per membership per duty. Each
	// duty still fires at its configured period; only timer-wheel load
	// changes (a 50-group server drops from 151 standing Periodics to 1).
	// Off by default: the coalesced tick drains the virtual clock's timer
	// free list in a different order, which would perturb byte-identical
	// replay of pre-existing scenarios.
	SharedTimers bool
}

func (c *Config) fillDefaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 500 * time.Millisecond
	}
	if c.AckInterval <= 0 {
		c.AckInterval = 200 * time.Millisecond
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 50 * time.Millisecond
	}
	if c.PresenceInterval <= 0 {
		c.PresenceInterval = 250 * time.Millisecond
	}
	if c.ProposalTimeout <= 0 {
		c.ProposalTimeout = 300 * time.Millisecond
	}
}

var (
	// ErrClosed is returned by operations on a closed Process or a left
	// group membership.
	ErrClosed = errors.New("gcs: closed")

	// ErrAlreadyJoined is returned by Join for a group this process is
	// already a member of.
	ErrAlreadyJoined = errors.New("gcs: already joined")
)

// Process is one GCS endpoint: it hosts this node's memberships and runs
// the shared failure detector. All methods are safe for concurrent use.
type Process struct {
	cfg Config
	id  ProcessID
	ctr procCounters

	mu      sync.Mutex
	closed  bool
	members map[string]*Member // by group name
	fd      *detector
	direct  func(from ProcessID, payload []byte)

	// codec holds the inbound decode reuse state (intern table, message and
	// vector free lists). It has its own lock: decoding happens before p.mu
	// is taken.
	codec codec

	// bufFree recycles plain-multicast payload buffers (the wrap-on-send
	// and copy-on-receive allocations), bucketed by power-of-two capacity
	// class. A buffer returns to its class when the retaining member
	// garbage-collects it at stability — the point after which no
	// retransmission or delivery can reference it. Allocated on first
	// multicast: lease-only processes (viewers) never pay for the class
	// table. Guarded by p.mu.
	bufFree *bufPool

	// mScratch backs membersOrderedLocked; consumers finish with the slice
	// before p.mu is released.
	mScratch []*Member

	// sendBuf frames outbound Anycast/Send datagrams. Guarded by p.mu and
	// handed to Endpoint.Send while still held — legal because Send
	// implementations never retain the payload after returning (the
	// transport copy-on-retain rule), and inbound dispatch never runs
	// under another process's p.mu, so the nested lock order is one-way.
	sendBuf []byte

	hbTask *clock.Periodic

	// Shared-timer state (cfg.SharedTimers): hbTask ticks at tickBase, and
	// each duty runs when tickCount is divisible by its divisor. tickCount
	// is guarded by p.mu; tickScratch is a snapshot consumed outside the
	// lock (member ticks relock p.mu themselves), distinct from mScratch,
	// whose contract ends when the lock is released.
	tickCount                          uint64
	hbDiv, ackDiv, retransDiv, presDiv uint64
	tickScratch                        []*Member
}

// maxBufFree bounds the payload free list (across all classes) so a burst
// does not pin its high-water mark of buffers forever.
const maxBufFree = 256

// Capacity classes for the payload free list: powers of two from 64 B
// (class 0) to 4 MiB. Small heartbeat-sized wraps and multi-kilobyte
// state-sync payloads interleave on the same process, so a single stack
// with a top-only capacity check misses constantly — a small buffer on top
// hides every larger one beneath it. Bucketing by class makes reuse exact.
const (
	bufClassMin = 6  // 1<<6 = 64 B, the smallest pooled capacity
	bufClasses  = 17 // up to 1<<(bufClassMin+bufClasses-1) = 4 MiB
)

// bufClassFor returns the class whose buffers all have capacity ≥ n, or
// bufClasses if n exceeds the largest pooled size.
func bufClassFor(n int) int {
	c := 0
	for n > 64<<c && c < bufClasses {
		c++
	}
	return c
}

// bufPool is the per-process payload free list: one stack per capacity
// class plus the shared entry count that maxBufFree bounds.
type bufPool struct {
	class [bufClasses][][]byte
	n     int
}

// getBufLocked returns an empty buffer with at least n bytes of capacity,
// reusing a recycled payload buffer when one is large enough: the request's
// own class first, then the next larger ones. Fresh allocations round up to
// a power of two — state-sync payloads grow steadily as viewers join, and
// exact-size allocation would make every request miss the pool by a few
// bytes forever.
func (p *Process) getBufLocked(n int) []byte {
	if pool := p.bufFree; pool != nil {
		for c := bufClassFor(n); c < bufClasses; c++ {
			if k := len(pool.class[c]); k > 0 {
				b := pool.class[c][k-1]
				pool.class[c][k-1] = nil
				pool.class[c] = pool.class[c][:k-1]
				pool.n--
				return b[:0]
			}
		}
	}
	c := 64
	for c < n {
		c *= 2
	}
	return make([]byte, 0, c)
}

// putBufLocked recycles a payload buffer into its capacity class. Callers
// must guarantee no alias of b survives: the only caller is stability
// garbage collection of plain payloads, whose handler callbacks fired
// strictly earlier. A buffer files under the largest class it fully covers,
// so a get from that class always satisfies its request.
func (p *Process) putBufLocked(b []byte) {
	if cap(b) < 64 {
		return
	}
	if p.bufFree == nil {
		p.bufFree = &bufPool{}
	}
	if p.bufFree.n >= maxBufFree {
		return
	}
	c := 0
	for c+1 < bufClasses && cap(b) >= 64<<(c+1) {
		c++
	}
	p.bufFree.class[c] = append(p.bufFree.class[c], b[:0])
	p.bufFree.n++
}

// procCounters are the protocol counters, resolved once at NewProcess so
// updates on lock-held paths stay a single atomic add.
type procCounters struct {
	suspicions  *obs.Counter // gcs.fd_suspicions
	viewChanges *obs.Counter // gcs.view_changes (installs, beyond the singleton)
	flushRounds *obs.Counter // gcs.flush_rounds (entries into the flush phase)
	naksSent    *obs.Counter // gcs.naks_sent (gap-repair requests)
	retransmits *obs.Counter // gcs.retransmissions (messages re-sent on NAK)
}

// NewProcess creates a Process on cfg.Endpoint and starts its failure
// detector. The caller must eventually Close it.
func NewProcess(cfg Config) *Process {
	cfg.fillDefaults()
	p := &Process{
		cfg:     cfg,
		id:      cfg.Endpoint.Addr(),
		members: make(map[string]*Member),
		ctr: procCounters{
			suspicions:  cfg.Obs.Counter("gcs.fd_suspicions"),
			viewChanges: cfg.Obs.Counter("gcs.view_changes"),
			flushRounds: cfg.Obs.Counter("gcs.flush_rounds"),
			naksSent:    cfg.Obs.Counter("gcs.naks_sent"),
			retransmits: cfg.Obs.Counter("gcs.retransmissions"),
		},
	}
	p.fd = newDetector(p)
	cfg.Endpoint.SetHandler(p.onPacket)
	if cfg.SharedTimers {
		base := gcdDur(gcdDur(cfg.HeartbeatInterval, cfg.AckInterval),
			gcdDur(cfg.RetransmitInterval, cfg.PresenceInterval))
		p.hbDiv = uint64(cfg.HeartbeatInterval / base)
		p.ackDiv = uint64(cfg.AckInterval / base)
		p.retransDiv = uint64(cfg.RetransmitInterval / base)
		p.presDiv = uint64(cfg.PresenceInterval / base)
		p.hbTask = clock.Every(cfg.Clock, base, p.sharedTick)
	} else {
		p.hbTask = clock.Every(cfg.Clock, cfg.HeartbeatInterval, p.heartbeatTick)
	}
	return p
}

// gcdDur is the greatest common divisor of two positive durations — the
// shared-timer base tick.
func gcdDur(a, b time.Duration) time.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// sharedTick is the single coalesced Periodic installed under
// Config.SharedTimers. Duties run in a fixed order at coincident ticks —
// heartbeat first, then per-membership gossip in group order, ack before
// retransmit before presence within a membership — matching the
// registration order the per-member timers would have had.
func (p *Process) sharedTick() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.tickCount++
	n := p.tickCount
	var run []*Member
	if n%p.ackDiv == 0 || n%p.retransDiv == 0 || n%p.presDiv == 0 {
		// Snapshot into the dedicated scratch: member ticks retake p.mu
		// themselves, so the snapshot outlives this critical section (which
		// mScratch must not), and each tick self-guards on m.active if a
		// membership deactivates in between.
		run = append(p.tickScratch[:0], p.membersOrderedLocked()...)
		p.tickScratch = run
	}
	p.mu.Unlock()
	if n%p.hbDiv == 0 {
		p.heartbeatTick()
	}
	for _, m := range run {
		if n%p.ackDiv == 0 {
			m.ackTick()
		}
		if n%p.retransDiv == 0 {
			m.retransTick()
		}
		if n%p.presDiv == 0 {
			m.presenceTick()
		}
	}
}

// ID returns this process's identifier (its transport address).
func (p *Process) ID() ProcessID { return p.id }

// Join makes this process a member of group. The membership starts as a
// singleton view (delivered via h.OnView) and then merges with any views
// reachable through the contact processes. Contacts are also re-announced
// periodically, so a partitioned group re-merges once links heal.
func (p *Process) Join(group string, h Handlers, contacts ...ProcessID) (*Member, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := p.members[group]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: group %q", ErrAlreadyJoined, group)
	}
	m := newMember(p, group, h, contacts)
	p.members[group] = m
	var cb callbacks
	m.installSingleton(&cb)
	p.mu.Unlock()
	cb.run()
	return m, nil
}

// Anycast delivers payload to the group member hosted at target, as a
// group message from this process. This is how a process outside a group
// talks to "the abstract group" (the paper's clients contacting the VoD
// server group) — delivery is best-effort, like the UDP it rides on.
func (p *Process) Anycast(target ProcessID, group string, payload []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	pkt := appendAnycast(p.sendBuf[:0], group, payload)
	p.sendBuf = pkt[:0]
	err := p.cfg.Endpoint.Send(target, pkt)
	p.mu.Unlock()
	return err
}

// Send delivers payload to target's direct handler — a plain datagram
// between GCS processes, outside any group (used for point-to-point
// replies such as the VoD OpenReply).
func (p *Process) Send(target ProcessID, payload []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	pkt := appendDirect(p.sendBuf[:0], payload)
	p.sendBuf = pkt[:0]
	err := p.cfg.Endpoint.Send(target, pkt)
	p.mu.Unlock()
	return err
}

// SetDirectHandler installs the handler for Send datagrams.
func (p *Process) SetDirectHandler(h func(from ProcessID, payload []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.direct = h
}

// Close stops the process: all memberships cease without graceful leave
// (peers will detect the silence), timers stop, and the endpoint handler
// is detached.
func (p *Process) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, m := range p.membersOrderedLocked() {
		m.deactivateLocked()
	}
	p.mu.Unlock()
	p.hbTask.Stop()
	p.cfg.Endpoint.SetHandler(nil)
}

// heartbeatTick drives the failure detector.
func (p *Process) heartbeatTick() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	peers := p.fd.peersLocked()
	var cb callbacks
	newlySuspected := p.fd.checkLocked()
	for _, s := range newlySuspected {
		p.ctr.suspicions.Inc()
		p.cfg.Obs.Event("gcs.suspect", string(s))
		// Iterate in group order, not map order: suspicion handling sends
		// packets and queues callbacks, and every simulated packet draws
		// from a shared RNG — map order here would make whole runs
		// irreproducible.
		for _, m := range p.membersOrderedLocked() {
			m.onSuspicionLocked(s, &cb)
		}
	}
	p.mu.Unlock()
	cb.run()
	for _, peer := range peers {
		_ = p.cfg.Endpoint.Send(peer, encodeHeartbeat())
	}
}

// onPacket is the transport inbound handler.
func (p *Process) onPacket(from ProcessID, payload []byte) {
	msg, err := p.codec.decode(payload)
	if err != nil {
		return // corrupt or alien datagram; drop like UDP noise
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.codec.recycle(msg)
		return
	}
	p.fd.heardLocked(from)

	var cb callbacks
	switch msg := msg.(type) {
	case *msgHeartbeat:
		// Liveness already recorded above.
	case *msgDirect:
		if h := p.direct; h != nil {
			cb.addDirect(h, from, msg.payload)
		}
	case *msgAnycast:
		if m := p.members[msg.group]; m != nil && m.active {
			if h := m.handlers.OnMessage; h != nil {
				cb.addMsg(h, msg.group, from, msg.payload)
			}
		}
	default:
		if g, ok := groupOf(msg); ok {
			if m := p.members[g]; m != nil && m.active {
				m.onMessageLocked(from, msg, &cb)
			}
		}
	}
	p.mu.Unlock()
	// Dispatch done: pooled kinds were either copied (parked multicasts)
	// or folded into persistent state (ack vectors), so their decoded
	// forms can be reused. Deferred callbacks never capture msg itself.
	p.codec.recycle(msg)
	cb.run()
}

// callbacks collects application callbacks while the process lock is held,
// to run after it is released: handlers may re-enter the GCS.
//
// The hot delivery shapes — message handlers and the direct handler — are
// stored as typed entries rather than closures, so queuing a delivery
// allocates nothing; cold shapes (view changes) still go through add. The
// backing array is pooled: run returns it once the entries have fired.
type callbacks struct {
	backing *[]cbEntry
	entries []cbEntry
}

// cbEntry is one queued callback. Exactly one of fn, msgH, dirH is set.
type cbEntry struct {
	fn     func()
	msgH   func(group string, from ProcessID, payload []byte)
	dirH   func(from ProcessID, payload []byte)
	group  string
	sender ProcessID
	data   []byte
}

var cbSlicePool = sync.Pool{New: func() any {
	s := make([]cbEntry, 0, 8)
	return &s
}}

func (c *callbacks) push(e cbEntry) {
	if c.backing == nil {
		c.backing = cbSlicePool.Get().(*[]cbEntry)
		c.entries = (*c.backing)[:0]
	}
	c.entries = append(c.entries, e)
}

func (c *callbacks) add(f func()) { c.push(cbEntry{fn: f}) }

func (c *callbacks) addMsg(h func(string, ProcessID, []byte), group string, sender ProcessID, data []byte) {
	c.push(cbEntry{msgH: h, group: group, sender: sender, data: data})
}

func (c *callbacks) addDirect(h func(ProcessID, []byte), sender ProcessID, data []byte) {
	c.push(cbEntry{dirH: h, sender: sender, data: data})
}

func (c *callbacks) run() {
	if c.backing == nil {
		return
	}
	for i := range c.entries {
		e := &c.entries[i]
		switch {
		case e.fn != nil:
			e.fn()
		case e.msgH != nil:
			e.msgH(e.group, e.sender, e.data)
		default:
			e.dirH(e.sender, e.data)
		}
	}
	// Handlers may have re-entered the GCS, but any nested callbacks drew
	// their own backing from the pool, so this one is ours to return.
	clear(c.entries)
	*c.backing = c.entries[:0]
	cbSlicePool.Put(c.backing)
	c.backing, c.entries = nil, nil
}

// sortIDs sorts ids ascending in place. Insertion sort: membership and key
// lists are small (tens at most), and unlike sort.Slice this allocates
// nothing (no closure, no reflect-based swapper), which matters on the
// per-tick gossip paths.
func sortIDs(ids []ProcessID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// sortedIDs returns a sorted copy of ids with duplicates removed.
func sortedIDs(ids []ProcessID) []ProcessID {
	out := make([]ProcessID, 0, len(ids))
	for _, id := range ids {
		dup := false
		for _, seen := range out {
			if seen == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// Groups returns the names of the groups this process is currently a
// member of, for introspection and diagnostics.
func (p *Process) Groups() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.members))
	for g, m := range p.members {
		if m.active {
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}

// membersOrderedLocked returns the memberships sorted by group name.
// Anything that fans out across groups — suspicion handling, shutdown —
// must use this rather than ranging over the members map: those paths send
// packets and queue callbacks, and the simulated network draws loss and
// jitter from one shared RNG, so map iteration order would leak into (and
// randomize) otherwise seed-deterministic runs.
func (p *Process) membersOrderedLocked() []*Member {
	out := p.mScratch[:0]
	for _, m := range p.members {
		out = append(out, m)
	}
	// Insertion sort: a process belongs to a handful of groups, and unlike
	// sort.Slice this allocates nothing. Callers consume the slice before
	// releasing p.mu, so the scratch can back every call.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].group < out[j-1].group; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	p.mScratch = out
	return out
}
