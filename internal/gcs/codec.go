package gcs

import (
	"fmt"
	"sync"

	"repro/internal/wire"
)

// codec is the per-Process decode-side reuse state: a string intern table
// (group names and process IDs are drawn from a small, stable universe) and
// free lists for the hot inbound message kinds and their vector maps.
// Decoding runs before p.mu is taken — and concurrently under a real clock —
// so the codec carries its own lock, held across one decode. The codec never
// calls back into the Process, so the lock nests safely under p.mu.
type codec struct {
	mu          sync.Mutex
	interned    map[string]string
	freeVec     []map[ProcessID]uint64
	freeMcast   []*msgMcast
	freeAck     []*msgAckVec
	freeDirect  []*msgDirect
	freeAnycast []*msgAnycast
}

// Bounds keep a pathological workload (say, unbounded group-name churn)
// from turning the reuse state into a leak.
const (
	maxInterned = 4096
	maxFreeList = 64
)

func (c *codec) internLocked(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := c.interned[string(b)]; ok { // string(b) here does not allocate
		return s
	}
	s := string(b)
	if c.interned == nil {
		c.interned = make(map[string]string)
	}
	if len(c.interned) < maxInterned {
		c.interned[s] = s
	}
	return s
}

func (c *codec) getVecLocked(n int) map[ProcessID]uint64 {
	if k := len(c.freeVec); k > 0 {
		m := c.freeVec[k-1]
		c.freeVec = c.freeVec[:k-1]
		return m
	}
	return make(map[ProcessID]uint64, n)
}

func (c *codec) putVecLocked(m map[ProcessID]uint64) {
	if m == nil || len(c.freeVec) >= maxFreeList {
		return
	}
	clear(m)
	c.freeVec = append(c.freeVec, m)
}

// recycle returns a message's reusable parts to the codec after dispatch.
// Only kinds whose handlers never retain the decoded form are pooled:
// multicast payloads are copied when parked (acceptMcastLocked) or buffered
// for a future view, and ack vectors are folded into persistent per-peer
// maps (onAckVecLocked). Everything else — view-change traffic, NAKs — is
// cold and left to the garbage collector.
func (c *codec) recycle(msg any) {
	switch m := msg.(type) {
	case *msgMcast:
		c.mu.Lock()
		*m = msgMcast{}
		if len(c.freeMcast) < maxFreeList {
			c.freeMcast = append(c.freeMcast, m)
		}
		c.mu.Unlock()
	case *msgAckVec:
		c.mu.Lock()
		c.putVecLocked(m.vec)
		c.putVecLocked(m.contig)
		*m = msgAckVec{}
		if len(c.freeAck) < maxFreeList {
			c.freeAck = append(c.freeAck, m)
		}
		c.mu.Unlock()
	case *msgDirect:
		// The payload slice (aliasing the transport receive buffer) was
		// copied into the callback entry before dispatch released p.mu,
		// so only the envelope struct is being reused here.
		c.mu.Lock()
		*m = msgDirect{}
		if len(c.freeDirect) < maxFreeList {
			c.freeDirect = append(c.freeDirect, m)
		}
		c.mu.Unlock()
	case *msgAnycast:
		// Same contract as msgDirect: the handler entry captured group and
		// payload by value before dispatch finished, never the struct.
		c.mu.Lock()
		*m = msgAnycast{}
		if len(c.freeAnycast) < maxFreeList {
			c.freeAnycast = append(c.freeAnycast, m)
		}
		c.mu.Unlock()
	}
}

func (c *codec) stringLocked(r *wire.Reader) string {
	return c.internLocked(r.StringBytes())
}

func (c *codec) idLocked(r *wire.Reader) ProcessID {
	return ProcessID(c.internLocked(r.StringBytes()))
}

func (c *codec) viewIDLocked(r *wire.Reader) ViewID {
	return ViewID{Seq: r.U64(), Coord: c.idLocked(r)}
}

func (c *codec) pidLocked(r *wire.Reader) proposalID {
	return proposalID{Round: r.U64(), Coord: c.idLocked(r)}
}

func (c *codec) idsLocked(r *wire.Reader) []ProcessID {
	n := int(r.U16())
	if r.Err() != nil {
		return nil
	}
	ids := make([]ProcessID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, c.idLocked(r))
		if r.Err() != nil {
			return nil
		}
	}
	return ids
}

func (c *codec) vecLocked(r *wire.Reader) map[ProcessID]uint64 {
	n := int(r.U16())
	if r.Err() != nil {
		return nil
	}
	vec := c.getVecLocked(n)
	for i := 0; i < n; i++ {
		k := c.idLocked(r)
		v := r.U64()
		if r.Err() != nil {
			c.putVecLocked(vec)
			return nil
		}
		vec[k] = v
	}
	return vec
}

func (c *codec) takeMcastLocked() *msgMcast {
	if k := len(c.freeMcast); k > 0 {
		m := c.freeMcast[k-1]
		c.freeMcast = c.freeMcast[:k-1]
		return m
	}
	return new(msgMcast)
}

func (c *codec) takeDirectLocked() *msgDirect {
	if k := len(c.freeDirect); k > 0 {
		m := c.freeDirect[k-1]
		c.freeDirect = c.freeDirect[:k-1]
		return m
	}
	return new(msgDirect)
}

func (c *codec) takeAnycastLocked() *msgAnycast {
	if k := len(c.freeAnycast); k > 0 {
		m := c.freeAnycast[k-1]
		c.freeAnycast = c.freeAnycast[:k-1]
		return m
	}
	return new(msgAnycast)
}

func (c *codec) takeAckLocked() *msgAckVec {
	if k := len(c.freeAck); k > 0 {
		m := c.freeAck[k-1]
		c.freeAck = c.freeAck[:k-1]
		return m
	}
	return new(msgAckVec)
}

// decode parses any GCS datagram, reusing pooled structures for the hot
// kinds (see recycle). It returns an error for malformed input; callers
// drop such datagrams silently.
func (c *codec) decode(buf []byte) (any, error) {
	r := wire.NewReader(buf)
	kind := r.U8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var m any
	switch kind {
	case kindHeartbeat:
		m = &msgHeartbeat{}
	case kindDirect:
		d := c.takeDirectLocked()
		d.payload = r.Bytes()
		m = d
	case kindAnycast:
		a := c.takeAnycastLocked()
		a.group = c.stringLocked(r)
		a.payload = r.Bytes()
		m = a
	case kindMcast:
		mc := c.takeMcastLocked()
		mc.group = c.stringLocked(r)
		mc.view = c.viewIDLocked(r)
		mc.sender = c.idLocked(r)
		mc.seq = r.U64()
		mc.payload = r.Bytes()
		m = mc
	case kindNak:
		m = &msgNak{
			group:  c.stringLocked(r),
			view:   c.viewIDLocked(r),
			sender: c.idLocked(r),
			from:   r.U64(),
			to:     r.U64(),
		}
	case kindAckVec:
		av := c.takeAckLocked()
		av.group = c.stringLocked(r)
		av.view = c.viewIDLocked(r)
		av.vec = c.vecLocked(r)
		av.contig = c.vecLocked(r)
		m = av
	case kindPresence:
		m = &msgPresence{group: c.stringLocked(r), view: c.viewIDLocked(r), members: c.idsLocked(r)}
	case kindPropose:
		m = &msgPropose{group: c.stringLocked(r), pid: c.pidLocked(r), candidates: c.idsLocked(r)}
	case kindSyncInfo:
		m = &msgSyncInfo{
			group:      c.stringLocked(r),
			pid:        c.pidLocked(r),
			oldView:    c.viewIDLocked(r),
			oldMembers: c.idsLocked(r),
			sendSeq:    r.U64(),
			recvNext:   c.vecLocked(r),
		}
	case kindCut:
		m = &msgCut{group: c.stringLocked(r), pid: c.pidLocked(r), targets: c.vecLocked(r)}
	case kindCutDone:
		m = &msgCutDone{group: c.stringLocked(r), pid: c.pidLocked(r)}
	case kindInstall:
		m = &msgInstall{group: c.stringLocked(r), pid: c.pidLocked(r), view: c.viewIDLocked(r), members: c.idsLocked(r)}
	case kindLeave:
		m = &msgLeave{group: c.stringLocked(r)}
	case kindAgreedReq:
		m = &msgAgreedReq{group: c.stringLocked(r), seq: r.U64(), payload: r.Bytes()}
	default:
		return nil, fmt.Errorf("gcs: unknown message kind %d", kind)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return m, nil
}
