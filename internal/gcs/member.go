package gcs

import (
	"time"

	"repro/internal/clock"
	"repro/internal/wire"
)

type memberStatus int

const (
	statusNormal memberStatus = iota + 1
	statusFlushing
)

// Member is one process's membership in one group: the handle returned by
// Process.Join. All exported methods are safe for concurrent use.
type Member struct {
	p        *Process
	group    string
	handlers Handlers
	contacts []ProcessID

	active  bool
	leaving bool

	view View
	ms   *mcastState

	status memberStatus
	curPID proposalID // highest proposal followed so far
	round  uint64     // my own proposal round counter

	prop *proposal // set while I coordinate a view change

	// Participant-side flush state.
	flushOldView    View        // the view whose messages are being flushed
	flushCandidates []ProcessID // candidate set of the followed proposal
	cutTargets      map[ProcessID]uint64
	sentCutDone     bool
	flushHeard      time.Time // last flush-protocol activity, for the watchdog
	sendQueue       [][]byte  // multicasts issued while flushing

	// foreign holds processes known to be outside the view (joiners,
	// members of merged-away partitions) with an expiry deadline.
	foreign map[ProcessID]time.Time

	// departed holds members that announced a graceful leave.
	departed map[ProcessID]bool

	// Divergence detection: ack vectors carrying a different ViewID from
	// a process we consider a member reveal that the group split without
	// a partition (e.g. a lost install). Three consecutive mismatches
	// (longer than normal install skew) force a reconciling view change.
	divergeCount map[ProcessID]int
	forceChange  bool

	// future buffers multicasts tagged with views not yet installed here.
	future map[ViewID][]*msgMcast

	// Agreed-multicast state (see agreed.go). Unlike the per-view FIFO
	// state, this survives view changes.
	agreedSendSeq   uint64
	agreedPending   map[uint64][]byte               // my unacked agreed sends
	agreedForwarded map[ProcessID]map[uint64]bool   // sequencer-side dedup
	agreedNext      map[ProcessID]uint64            // delivery cursor per sender
	agreedParked    map[ProcessID]map[uint64][]byte // out-of-order agreed

	ackTask      *clock.Periodic
	retransTask  *clock.Periodic
	presenceTask *clock.Periodic
	debounce     clock.Timer
	leaveTimer   clock.Timer

	// Reusable scratch for the periodic gossip ticks, guarded by p.mu.
	// Packets are fully serialized and handed to Send (which copies) before
	// the lock is released, so one warm buffer set serves every tick.
	encBuf        []byte
	vecKeys       []ProcessID
	contigScratch map[ProcessID]uint64
}

// mcastState is the per-view reliable-FIFO multicast machinery.
type mcastState struct {
	sendSeq  uint64                          // next sequence number I assign
	recvNext map[ProcessID]uint64            // next seq to deliver, per sender
	pending  map[ProcessID]map[uint64][]byte // received out of order / frozen
	retained map[ProcessID]map[uint64][]byte // delivered but unstable
	peerAck  map[ProcessID]map[ProcessID]uint64
	// peerContig holds each member's received-contiguous watermark — the
	// acknowledgement the safe-delivery gate waits on (see safe.go).
	peerContig map[ProcessID]map[ProcessID]uint64
}

func newMcastState(members []ProcessID) *mcastState {
	ms := &mcastState{
		recvNext:   make(map[ProcessID]uint64, len(members)),
		pending:    make(map[ProcessID]map[uint64][]byte),
		retained:   make(map[ProcessID]map[uint64][]byte),
		peerAck:    make(map[ProcessID]map[ProcessID]uint64),
		peerContig: make(map[ProcessID]map[ProcessID]uint64),
	}
	for _, m := range members {
		ms.recvNext[m] = 0
	}
	return ms
}

// lookup returns the payload of (sender, seq) if this member still has it.
func (ms *mcastState) lookup(sender ProcessID, seq uint64) ([]byte, bool) {
	if m := ms.retained[sender]; m != nil {
		if p, ok := m[seq]; ok {
			return p, true
		}
	}
	if m := ms.pending[sender]; m != nil {
		if p, ok := m[seq]; ok {
			return p, true
		}
	}
	return nil, false
}

func (ms *mcastState) retain(sender ProcessID, seq uint64, payload []byte) {
	m := ms.retained[sender]
	if m == nil {
		m = make(map[uint64][]byte)
		ms.retained[sender] = m
	}
	m[seq] = payload
}

func (ms *mcastState) park(sender ProcessID, seq uint64, payload []byte) {
	m := ms.pending[sender]
	if m == nil {
		m = make(map[uint64][]byte)
		ms.pending[sender] = m
	}
	m[seq] = payload
}

func newMember(p *Process, group string, h Handlers, contacts []ProcessID) *Member {
	m := &Member{
		p:        p,
		group:    group,
		handlers: h,
		contacts: sortedIDs(contacts),
		active:   true,
		status:   statusNormal,
		foreign:  make(map[ProcessID]time.Time),
		departed: make(map[ProcessID]bool),
		future:   make(map[ViewID][]*msgMcast),
	}
	if !p.cfg.SharedTimers {
		m.ackTask = clock.Every(p.cfg.Clock, p.cfg.AckInterval, m.ackTick)
		m.retransTask = clock.Every(p.cfg.Clock, p.cfg.RetransmitInterval, m.retransTick)
		m.presenceTask = clock.Every(p.cfg.Clock, p.cfg.PresenceInterval, m.presenceTick)
	}
	return m
}

// installSingleton installs the initial one-member view at Join time.
// Caller holds p.mu.
func (m *Member) installSingleton(cb *callbacks) {
	m.view = View{
		Group:   m.group,
		ID:      ViewID{Seq: 1, Coord: m.p.id},
		Members: []ProcessID{m.p.id},
	}
	m.ms = newMcastState(m.view.Members)
	m.notifyViewLocked(cb)
	// Announce immediately; the periodic presence task keeps retrying.
	m.sendPresenceLocked()
}

// View returns the currently installed view.
func (m *Member) View() View {
	m.p.mu.Lock()
	defer m.p.mu.Unlock()
	v := m.view
	v.Members = append([]ProcessID(nil), v.Members...)
	return v
}

// Multicast reliably FIFO-multicasts payload to the group's current view,
// including this member itself. During a view change the message is queued
// and sent in the next view.
func (m *Member) Multicast(payload []byte) error {
	m.p.mu.Lock()
	if !m.active {
		m.p.mu.Unlock()
		return ErrClosed
	}
	// Wrap into a pooled buffer (recycled at stability GC) rather than
	// wrapPlain's fresh allocation: every multicast send passes here.
	data := append(append(m.p.getBufLocked(len(payload)+1), payloadPlain), payload...)
	if m.status != statusNormal {
		m.sendQueue = append(m.sendQueue, data)
		m.p.mu.Unlock()
		return nil
	}
	var cb callbacks
	m.multicastWrappedLocked(data, &cb)
	m.p.mu.Unlock()
	cb.run()
	return nil
}

// multicastWrappedLocked assigns the next sequence number, transmits to
// peers and self-delivers in FIFO position. data carries the internal
// payload framing (see agreed.go). Caller holds p.mu.
func (m *Member) multicastWrappedLocked(data []byte, cb *callbacks) {
	seq := m.ms.sendSeq
	m.ms.sendSeq++
	m.ms.retain(m.p.id, seq, data)
	// Encode into the member scratch: Send copies, and the nested dispatch
	// below (which can re-enter this function through the agreed-forward
	// path) only runs after the send loop has fully consumed pkt.
	pkt := appendMcast(m.encBuf[:0], &msgMcast{
		group:   m.group,
		view:    m.view.ID,
		sender:  m.p.id,
		seq:     seq,
		payload: data,
	})
	m.encBuf = pkt[:0]
	for _, id := range m.view.Members {
		if id != m.p.id {
			_ = m.p.cfg.Endpoint.Send(id, pkt)
		}
	}
	// Self-delivery goes through the same gated path as everyone else's
	// messages: plain/causal/agreed payloads deliver immediately from the
	// head of our own stream, while safe payloads wait for universal
	// receipt like they must.
	m.ms.park(m.p.id, seq, data)
	m.deliverAllReadyLocked(cb)
}

// dispatchPayloadLocked unwraps the internal framing of a FIFO-delivered
// payload and routes it: plain payloads go to the application handler,
// agreed payloads go through the total-order machinery. Caller holds p.mu.
func (m *Member) dispatchPayloadLocked(sender ProcessID, data []byte, cb *callbacks) {
	if len(data) == 0 {
		return
	}
	switch data[0] {
	case payloadPlain:
		if h := m.handlers.OnMessage; h != nil {
			cb.addMsg(h, m.group, sender, data[1:])
		}
	case payloadAgreed:
		r := wire.NewReader(data[1:])
		orig := ProcessID(r.String())
		seq := r.U64()
		body := r.Rest()
		if r.Err() != nil {
			return
		}
		m.deliverAgreedLocked(orig, seq, body, cb)
	case payloadCausal:
		env, ok := parseCausal(data[1:])
		if !ok {
			return
		}
		if h := m.handlers.OnMessage; h != nil {
			cb.addMsg(h, m.group, sender, env.body)
		}
	case payloadSafe:
		if h := m.handlers.OnMessage; h != nil {
			cb.addMsg(h, m.group, sender, data[1:])
		}
	}
}

// Leave gracefully departs the group: peers are told, the member keeps
// serving retransmissions until the view change that excludes it completes
// (or a grace timeout elapses), and then deactivates.
func (m *Member) Leave() error {
	m.p.mu.Lock()
	if !m.active {
		m.p.mu.Unlock()
		return ErrClosed
	}
	if m.leaving {
		m.p.mu.Unlock()
		return nil
	}
	m.leaving = true
	pkt := encodeLeave(&msgLeave{group: m.group})
	peers := make([]ProcessID, 0, len(m.view.Members))
	for _, id := range m.view.Members {
		if id != m.p.id {
			peers = append(peers, id)
		}
	}
	if len(peers) == 0 {
		m.deactivateLocked()
		m.p.mu.Unlock()
		return nil
	}
	grace := m.p.cfg.SuspectTimeout + 4*m.p.cfg.ProposalTimeout
	m.leaveTimer = m.p.cfg.Clock.AfterFunc(grace, func() {
		m.p.mu.Lock()
		m.deactivateLocked()
		m.p.mu.Unlock()
	})
	m.p.mu.Unlock()
	for _, id := range peers {
		_ = m.p.cfg.Endpoint.Send(id, pkt)
	}
	return nil
}

// deactivateLocked stops the membership entirely. Caller holds p.mu.
func (m *Member) deactivateLocked() {
	if !m.active {
		return
	}
	m.active = false
	if m.ackTask != nil { // nil under Config.SharedTimers
		m.ackTask.Stop()
		m.retransTask.Stop()
		m.presenceTask.Stop()
	}
	if m.debounce != nil {
		m.debounce.Stop()
	}
	if m.leaveTimer != nil {
		m.leaveTimer.Stop()
	}
	if m.prop != nil && m.prop.timer != nil {
		m.prop.timer.Stop()
	}
	if m.p.members[m.group] == m {
		delete(m.p.members, m.group)
	}
}

// notifyViewLocked queues the OnView callback with a defensive copy.
func (m *Member) notifyViewLocked(cb *callbacks) {
	if h := m.handlers.OnView; h != nil {
		v := m.view
		v.Members = append([]ProcessID(nil), v.Members...)
		cb.add(func() { h(v) })
	}
}

// onMessageLocked dispatches a group-scoped message. Caller holds p.mu.
func (m *Member) onMessageLocked(from ProcessID, msg any, cb *callbacks) {
	switch msg := msg.(type) {
	case *msgMcast:
		m.onMcastLocked(msg, cb)
	case *msgNak:
		m.onNakLocked(from, msg)
	case *msgAckVec:
		m.onAckVecLocked(from, msg, cb)
	case *msgPresence:
		m.onPresenceLocked(from, msg)
	case *msgLeave:
		m.onLeaveLocked(from)
	case *msgAgreedReq:
		m.onAgreedReqLocked(from, msg, cb)
	case *msgPropose:
		m.onProposeLocked(msg, cb)
	case *msgSyncInfo:
		m.onSyncInfoLocked(from, msg, cb)
	case *msgCut:
		m.onCutLocked(msg, cb)
	case *msgCutDone:
		m.onCutDoneLocked(from, msg, cb)
	case *msgInstall:
		m.onInstallLocked(msg, cb)
	}
}

// onMcastLocked handles an inbound multicast or retransmission.
func (m *Member) onMcastLocked(msg *msgMcast, cb *callbacks) {
	// Scope the message to a view.
	switch {
	case m.status == statusNormal && msg.view == m.view.ID:
		m.acceptMcastLocked(msg, true /* deliver */, cb)
	case m.status == statusFlushing && msg.view == m.flushOldView.ID:
		// Frozen: park the message; the cut decides what gets delivered.
		m.acceptMcastLocked(msg, false, cb)
		m.drainTowardCutLocked(cb)
	case msg.view.Seq > m.view.ID.Seq:
		// A peer already installed a later view; hold the message until
		// our own install catches up.
		if len(m.future[msg.view]) < 4096 {
			cp := *msg
			cp.payload = append([]byte(nil), msg.payload...)
			m.future[msg.view] = append(m.future[msg.view], &cp)
		}
	default:
		// Stale view; drop.
	}
}

// acceptMcastLocked files one multicast into the FIFO machinery. When
// deliver is true, in-order messages are delivered immediately along with
// any unblocked pending ones.
func (m *Member) acceptMcastLocked(msg *msgMcast, deliver bool, cb *callbacks) {
	scope := m.view
	if m.status == statusFlushing {
		scope = m.flushOldView
	}
	if !scope.Includes(msg.sender) {
		return
	}
	next := m.ms.recvNext[msg.sender]
	if msg.seq < next {
		return // duplicate
	}
	// The decoded payload aliases the transport's receive buffer; copy it
	// into a pooled buffer that lives until stability garbage collection.
	data := append(m.p.getBufLocked(len(msg.payload)), msg.payload...)
	m.ms.park(msg.sender, msg.seq, data)
	if deliver {
		m.deliverAllReadyLocked(cb)
	}
}

// deliverAllReadyLocked delivers every pending message that is in FIFO
// position and causally ready, looping to a fixpoint: delivering one
// message can unblock causal successors from other senders.
func (m *Member) deliverAllReadyLocked(cb *callbacks) {
	for progress := true; progress; {
		progress = false
		for _, sender := range m.view.Members {
			pend := m.ms.pending[sender]
			for {
				next := m.ms.recvNext[sender]
				data, ok := pend[next]
				if !ok || !m.causalReadyLocked(sender, data) || !m.safeReadyLocked(sender, next, data) {
					break
				}
				delete(pend, next)
				m.deliverOneLocked(sender, next, data, cb)
				progress = true
			}
		}
	}
}

// deliverOneLocked delivers one message and retains it for stability.
func (m *Member) deliverOneLocked(sender ProcessID, seq uint64, data []byte, cb *callbacks) {
	m.ms.recvNext[sender] = seq + 1
	m.ms.retain(sender, seq, data)
	m.dispatchPayloadLocked(sender, data, cb)
}

// onNakLocked serves a retransmission request from whatever this member
// still holds. NAKs are answered for the current and the flushing view.
func (m *Member) onNakLocked(from ProcessID, msg *msgNak) {
	if msg.view != m.view.ID && !(m.status == statusFlushing && msg.view == m.flushOldView.ID) {
		return
	}
	for seq := msg.from; seq < msg.to; seq++ {
		payload, ok := m.ms.lookup(msg.sender, seq)
		if !ok {
			continue
		}
		pkt := appendMcast(m.encBuf[:0], &msgMcast{
			group:   m.group,
			view:    msg.view,
			sender:  msg.sender,
			seq:     seq,
			payload: payload,
		})
		m.encBuf = pkt[:0]
		m.p.ctr.retransmits.Inc()
		_ = m.p.cfg.Endpoint.Send(from, pkt)
	}
}

// onAckVecLocked folds a stability vector in and garbage-collects retained
// messages that every member has delivered. The vector also reveals tail
// loss: the sender's own entry is its send counter, so a higher value than
// our delivery cursor means messages we never saw — and, being the newest,
// nothing after them would ever trigger gap detection. NAK immediately.
func (m *Member) onAckVecLocked(from ProcessID, msg *msgAckVec, cb *callbacks) {
	if m.status != statusNormal {
		return
	}
	if msg.view != m.view.ID {
		m.onDivergentTrafficLocked(from, msg.view)
		return
	}
	if !m.view.Includes(from) {
		return
	}
	delete(m.divergeCount, from)
	// Fold the vectors into persistent per-peer maps rather than retaining
	// msg's maps: the decode layer recycles them once dispatch returns.
	mergeVec(&m.ms.peerAck, from, msg.vec)
	// Tail-loss repair: the sender's own contig entry equals its send
	// counter (it parks everything it sends), so a higher value than our
	// contiguous receipt means messages we never saw — and, being the
	// newest, nothing after them would trigger ordinary gap detection.
	theirs := msg.vec[from]
	if msg.contig != nil && msg.contig[from] > theirs {
		theirs = msg.contig[from]
	}
	if mine := m.contigForLocked(from); theirs > mine {
		nak := encodeNak(&msgNak{
			group:  m.group,
			view:   m.view.ID,
			sender: from,
			from:   mine,
			to:     theirs,
		})
		m.p.ctr.naksSent.Inc()
		_ = m.p.cfg.Endpoint.Send(from, nak)
	}
	if msg.contig != nil {
		mergeVec(&m.ms.peerContig, from, msg.contig)
		// Fresh receipt acknowledgements may open the safe-delivery gate.
		m.deliverAllReadyLocked(cb)
	}
	m.gcStableLocked()
}

// mergeVec replaces (*peer)[from]'s contents with src, reusing the existing
// map storage when present.
func mergeVec(peer *map[ProcessID]map[ProcessID]uint64, from ProcessID, src map[ProcessID]uint64) {
	dst := (*peer)[from]
	if dst == nil {
		dst = make(map[ProcessID]uint64, len(src))
		(*peer)[from] = dst
	} else {
		clear(dst)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func (m *Member) gcStableLocked() {
	for sender, retained := range m.ms.retained {
		stable := m.ms.recvNext[sender]
		for _, member := range m.view.Members {
			if member == m.p.id {
				continue
			}
			vec := m.ms.peerAck[member]
			if vec == nil {
				stable = 0
				break
			}
			if v := vec[sender]; v < stable {
				stable = v
			}
		}
		for seq, data := range retained {
			if seq < stable {
				// Stability means every member delivered it: handler
				// callbacks have fired and no NAK can ask for it again,
				// so plain payload buffers are safe to recycle. Tagged
				// payloads (agreed/causal/safe) are excluded — their
				// bodies may be parked in holdback state that outlives
				// the carrier buffer's stability.
				if len(data) > 0 && data[0] == payloadPlain {
					m.p.putBufLocked(data)
				}
				delete(retained, seq)
			}
		}
	}
}

// onPresenceLocked learns about processes outside the view — joiners and
// members of other partitions — and steers them to the coordinator.
func (m *Member) onPresenceLocked(from ProcessID, msg *msgPresence) {
	if m.leaving {
		return
	}
	// Presence from a process we already count as a member, but living in
	// a different view, is the asymmetric-split signature (it does not
	// count us as a member, or a lost install stranded one side).
	if m.view.Includes(from) && msg.view != m.view.ID && m.status == statusNormal {
		m.onDivergentTrafficLocked(from, msg.view)
	}
	expiry := m.p.cfg.Clock.Now().Add(2 * m.p.cfg.SuspectTimeout)
	for _, id := range append([]ProcessID{from}, msg.members...) {
		if id == m.p.id || m.view.Includes(id) {
			continue
		}
		m.foreign[id] = expiry
	}
	if len(m.foreign) == 0 {
		return
	}
	if m.isActingCoordinatorLocked() {
		m.scheduleProposalLocked()
	} else {
		// Relay on every presence (they are periodic and cheap) so the
		// coordinator learns even if earlier relays were lost.
		coord := m.actingCoordinatorLocked()
		if coord != m.p.id {
			_ = m.p.cfg.Endpoint.Send(coord, encodePresence(&msgPresence{
				group:   m.group,
				view:    msg.view,
				members: msg.members,
			}))
		}
	}
}

// onDivergentTrafficLocked counts view-mismatched traffic from a supposed
// member; a persistent mismatch (longer than install skew) forces a
// reconciling view change at the acting coordinator.
func (m *Member) onDivergentTrafficLocked(from ProcessID, _ ViewID) {
	if m.divergeCount == nil {
		m.divergeCount = make(map[ProcessID]int)
	}
	if !m.view.Includes(from) {
		// Traffic from a non-member whose view differs: treat the sender
		// as foreign so the merge machinery picks it up.
		m.foreign[from] = m.p.cfg.Clock.Now().Add(2 * m.p.cfg.SuspectTimeout)
		if m.isActingCoordinatorLocked() {
			m.scheduleProposalLocked()
		}
		return
	}
	m.divergeCount[from]++
	if m.divergeCount[from] < 3 {
		return
	}
	delete(m.divergeCount, from)
	m.forceChange = true
	if m.isActingCoordinatorLocked() {
		m.scheduleProposalLocked()
	}
}

// onLeaveLocked records a graceful departure and triggers a view change.
func (m *Member) onLeaveLocked(from ProcessID) {
	if !m.view.Includes(from) {
		return
	}
	m.departed[from] = true
	if m.isActingCoordinatorLocked() {
		m.scheduleProposalLocked()
	}
}

// onSuspicionLocked reacts to the failure detector suspecting s.
func (m *Member) onSuspicionLocked(s ProcessID, cb *callbacks) {
	if !m.active || m.leaving {
		return
	}
	delete(m.foreign, s)
	relevant := m.view.Includes(s) ||
		(m.status == statusFlushing && (m.curPID.Coord == s || m.flushOldView.Includes(s)))
	if !relevant {
		return
	}
	if m.status == statusFlushing && m.curPID.Coord == s {
		// The coordinator of the in-flight proposal died; the lowest
		// unsuspected candidate takes over immediately.
		if m.isActingCoordinatorLocked() {
			m.startProposalLocked(cb)
		}
		return
	}
	if m.isActingCoordinatorLocked() {
		m.scheduleProposalLocked()
	}
}

// actingCoordinatorLocked returns the lowest unsuspected view member — the
// process responsible for proposing the next view. During a flush whose
// coordinator died, candidates of the proposal are considered instead.
func (m *Member) actingCoordinatorLocked() ProcessID {
	base := m.view.Members
	if m.status == statusFlushing && m.p.fd.isSuspectedLocked(m.curPID.Coord) {
		if m.prop != nil {
			base = m.prop.candidates
		} else {
			base = m.flushCandidates
		}
	}
	for _, id := range base {
		if id == m.p.id || !m.p.fd.isSuspectedLocked(id) {
			if !m.departed[id] {
				return id
			}
		}
	}
	return m.p.id
}

func (m *Member) isActingCoordinatorLocked() bool {
	return m.actingCoordinatorLocked() == m.p.id
}

// scheduleProposalLocked debounces proposal initiation so that a burst of
// triggers (several suspicions, a joining batch) folds into one view change.
func (m *Member) scheduleProposalLocked() {
	if m.debounce != nil || m.leaving || !m.active {
		return
	}
	m.debounce = m.p.cfg.Clock.AfterFunc(20*time.Millisecond, func() {
		var cb callbacks
		m.p.mu.Lock()
		m.debounce = nil
		if m.active && !m.leaving && m.isActingCoordinatorLocked() && m.changeNeededLocked() {
			m.startProposalLocked(&cb)
		}
		m.p.mu.Unlock()
		cb.run()
	})
}

// changeNeededLocked reports whether the desired membership differs from
// the installed view (or a flush is already underway that we must restart).
func (m *Member) changeNeededLocked() bool {
	if m.status == statusFlushing || m.forceChange {
		return true
	}
	desired := m.desiredCandidatesLocked()
	if len(desired) != len(m.view.Members) {
		return true
	}
	for i, id := range desired {
		if m.view.Members[i] != id {
			return true
		}
	}
	return false
}

// desiredCandidatesLocked computes the next membership: current members
// minus suspects and leavers, plus live foreign processes.
func (m *Member) desiredCandidatesLocked() []ProcessID {
	now := m.p.cfg.Clock.Now()
	var out []ProcessID
	for _, id := range m.view.Members {
		if id != m.p.id && (m.p.fd.isSuspectedLocked(id) || m.departed[id]) {
			continue
		}
		out = append(out, id)
	}
	for id, exp := range m.foreign {
		if exp.Before(now) {
			delete(m.foreign, id)
			continue
		}
		if m.p.fd.isSuspectedLocked(id) || m.departed[id] {
			continue
		}
		out = append(out, id)
	}
	return sortedIDs(out)
}

// ackTick gossips the delivery vector for stability.
func (m *Member) ackTick() {
	m.p.mu.Lock()
	if !m.active || m.status != statusNormal || len(m.view.Members) <= 1 {
		m.p.mu.Unlock()
		return
	}
	if m.contigScratch == nil {
		m.contigScratch = make(map[ProcessID]uint64, len(m.view.Members))
	} else {
		clear(m.contigScratch)
	}
	for _, sender := range m.view.Members {
		m.contigScratch[sender] = m.contigForLocked(sender)
	}
	// Encode straight from the live delivery map into the member scratch:
	// the packet is complete (and Send copies) before the lock is released,
	// so neither the map nor the buffer needs a defensive copy.
	pkt := appendAckVec(m.encBuf[:0], m.group, m.view.ID, m.ms.recvNext, m.contigScratch, &m.vecKeys)
	m.encBuf = pkt[:0]
	for _, id := range m.view.Members {
		if id != m.p.id {
			_ = m.p.cfg.Endpoint.Send(id, pkt)
		}
	}
	m.p.mu.Unlock()
}

// retransTick drives NAK-based gap repair, flush progress and the flush
// watchdog.
func (m *Member) retransTick() {
	var cb callbacks
	m.p.mu.Lock()
	if !m.active {
		m.p.mu.Unlock()
		return
	}
	switch m.status {
	case statusNormal:
		m.agreedRetryLocked(&cb)
		// Ask senders to fill detected gaps.
		for _, sender := range m.view.Members {
			if sender == m.p.id {
				continue
			}
			pend := m.ms.pending[sender]
			if len(pend) == 0 {
				continue
			}
			lo := m.ms.recvNext[sender]
			hi := lo
			for seq := range pend {
				if seq >= hi {
					hi = seq + 1
				}
			}
			if hi > lo {
				pkt := encodeNak(&msgNak{group: m.group, view: m.view.ID, sender: sender, from: lo, to: hi})
				m.p.ctr.naksSent.Inc()
				_ = m.p.cfg.Endpoint.Send(sender, pkt)
			}
		}
	case statusFlushing:
		m.flushTickLocked(&cb)
	}
	m.p.mu.Unlock()
	cb.run()
}

// presenceTick announces this view to contacts outside it, driving joins
// and partition re-merges.
func (m *Member) presenceTick() {
	m.p.mu.Lock()
	if m.active && !m.leaving {
		m.sendPresenceLocked()
	}
	m.p.mu.Unlock()
}

// sendPresenceLocked announces the view to contacts outside it (periodic,
// and immediately after Join). The packet is built in the member scratch
// and handed to Send under p.mu — Send copies, so that is safe.
func (m *Member) sendPresenceLocked() {
	pkt := appendPresence(m.encBuf[:0], m.group, m.view.ID, m.view.Members)
	m.encBuf = pkt[:0]
	for _, id := range m.contacts {
		if id != m.p.id && !m.view.Includes(id) {
			_ = m.p.cfg.Endpoint.Send(id, pkt)
		}
	}
}
