package gcs

import "time"

// detector is the process-level unreliable failure detector: every
// HeartbeatInterval the process pings each peer of interest; a peer silent
// for SuspectTimeout becomes suspected. Any inbound datagram counts as life,
// so heartbeats only add traffic on otherwise idle links. The paper requires
// exactly this: "a (possibly unreliable) failure detection mechanism".
//
// All methods require the owning Process's lock.
type detector struct {
	p         *Process
	lastHeard map[ProcessID]time.Time
	suspected map[ProcessID]bool

	// peersLocked scratch: the watch set is rebuilt every heartbeat tick,
	// but its contents only change on membership events, so the rebuild
	// runs in reusable storage and the returned snapshot is reallocated
	// only when the set actually differs.
	scratchSet map[ProcessID]bool
	scratch    []ProcessID
	cache      []ProcessID // immutable once returned; callers may hold it unlocked
}

func newDetector(p *Process) *detector {
	return &detector{
		p:          p,
		lastHeard:  make(map[ProcessID]time.Time),
		suspected:  make(map[ProcessID]bool),
		scratchSet: make(map[ProcessID]bool),
	}
}

// peersLocked returns every process this one should ping and watch: the
// co-members of all views plus pending view-change candidates and foreign
// (joining/merging) processes.
func (d *detector) peersLocked() []ProcessID {
	set := d.scratchSet
	clear(set)
	for _, m := range d.p.members {
		if !m.active {
			continue
		}
		for _, id := range m.view.Members {
			set[id] = true
		}
		for id := range m.foreign {
			set[id] = true
		}
		if m.prop != nil {
			for _, id := range m.prop.candidates {
				set[id] = true
			}
		}
		if m.status == statusFlushing {
			for _, id := range m.flushOldView.Members {
				set[id] = true
			}
			set[m.curPID.Coord] = true
		}
	}
	delete(set, d.p.id)

	now := d.p.cfg.Clock.Now()
	peers := d.scratch[:0]
	for id := range set {
		peers = append(peers, id)
		if _, ok := d.lastHeard[id]; !ok {
			// Grace period: a peer becomes suspectable only after it has
			// had one full timeout to say anything.
			d.lastHeard[id] = now
		}
	}
	// Forget peers no longer of interest so state does not grow forever.
	for id := range d.lastHeard {
		if !set[id] {
			delete(d.lastHeard, id)
			delete(d.suspected, id)
		}
	}
	sortIDs(peers)
	d.scratch = peers
	// The caller sends heartbeats after dropping the process lock, so hand
	// out an immutable snapshot rather than the scratch. The set is stable
	// between membership events; reallocate only when it changed.
	if !idsEqual(peers, d.cache) {
		d.cache = append([]ProcessID(nil), peers...)
	}
	return d.cache
}

// idsEqual reports whether a and b hold the same IDs in the same order.
func idsEqual(a, b []ProcessID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// heardLocked records life from a peer, clearing any suspicion.
func (d *detector) heardLocked(from ProcessID) {
	if _, tracked := d.lastHeard[from]; tracked {
		d.lastHeard[from] = d.p.cfg.Clock.Now()
	}
	delete(d.suspected, from)
}

// checkLocked scans for peers that newly exceeded the suspect timeout and
// returns them.
func (d *detector) checkLocked() []ProcessID {
	now := d.p.cfg.Clock.Now()
	var newly []ProcessID
	for id, t := range d.lastHeard {
		if d.suspected[id] {
			continue
		}
		if now.Sub(t) >= d.p.cfg.SuspectTimeout {
			d.suspected[id] = true
			newly = append(newly, id)
		}
	}
	return sortedIDs(newly)
}

// isSuspectedLocked reports whether id is currently suspected.
func (d *detector) isSuspectedLocked(id ProcessID) bool { return d.suspected[id] }

// suspectLocked marks id suspected immediately — used when the view-change
// protocol itself establishes unresponsiveness (a candidate that never
// answers despite retransmissions). Hearing from the peer clears it again.
func (d *detector) suspectLocked(id ProcessID) {
	if id == d.p.id {
		return
	}
	d.suspected[id] = true
}
