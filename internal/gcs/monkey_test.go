package gcs

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// TestMonkey drives the GCS with randomized operation schedules — crashes,
// joins of fresh processes, partitions and heals, and a steady multicast
// load under packet loss — and then checks the protocol invariants:
//
//  1. view agreement: any two processes that ever install the same ViewID
//     have identical memberships;
//  2. per-sender FIFO: each receiver sees each sender's payloads in send
//     order (the senders embed a sequence number in the payload);
//  3. no duplicates: no receiver delivers the same payload twice;
//  4. convergence: after the chaos stops and the network heals, all live
//     processes end in one common view and a fresh multicast reaches all.
func TestMonkey(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { monkeyRun(t, seed) })
	}
}

// monkeyRun executes one randomized schedule; extracted so deeper fuzzing
// runs can sweep many more seeds.
func monkeyRun(t *testing.T, seed int64) {
	{
		{
			rng := rand.New(rand.NewSource(seed))
			prof := netsim.LAN()
			prof.Loss = float64(rng.Intn(4)) / 100
			c := newCluster(t, seed, prof)

			alive := map[ProcessID]bool{}
			spawn := func(id ProcessID, contacts ...ProcessID) {
				c.join(id, "g", contacts...)
				alive[id] = true
			}
			spawn("p0")
			spawn("p1", "p0")
			spawn("p2", "p0")
			c.settle(2 * time.Second)

			liveIDs := func() []ProcessID {
				var out []ProcessID
				for id, ok := range alive {
					if ok {
						out = append(out, id)
					}
				}
				sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
				return out
			}

			sent := map[ProcessID]int{} // per-sender payload counter
			nextID := 3
			partitioned := false

			for step := 0; step < 30; step++ {
				c.settle(time.Duration(100+rng.Intn(400)) * time.Millisecond)
				switch op := rng.Intn(10); {
				case op < 4: // multicast a numbered payload from a live member
					senders := liveIDs()
					if len(senders) == 0 {
						continue
					}
					sender := senders[rng.Intn(len(senders))]
					n := sent[sender]
					sent[sender] = n + 1
					_ = c.mem[sender].Multicast([]byte(fmt.Sprintf("%s/%06d", sender, n)))
				case op < 6: // crash someone (but never the last process)
					victims := liveIDs()
					if len(victims) <= 1 {
						continue
					}
					v := victims[rng.Intn(len(victims))]
					alive[v] = false
					c.net.Crash(transport.Addr(v))
				case op < 8: // join a brand-new process via any live contact
					contacts := liveIDs()
					if len(contacts) == 0 {
						continue
					}
					id := ProcessID(fmt.Sprintf("p%d", nextID))
					nextID++
					spawn(id, contacts...)
				case op < 9 && !partitioned: // partition the live set in two
					var live []transport.Addr
					for _, id := range liveIDs() {
						live = append(live, transport.Addr(id))
					}
					if len(live) < 2 {
						continue
					}
					cut := 1 + rng.Intn(len(live)-1)
					c.net.Partition(live[:cut], live[cut:])
					partitioned = true
				default:
					if partitioned {
						c.net.Heal()
						partitioned = false
					}
				}
			}
			c.net.Heal()
			c.settle(8 * time.Second) // converge

			// Invariant 1: view agreement across all processes, all time.
			byID := map[ViewID]string{}
			for id := range alive {
				rec := c.rec[id]
				rec.mu.Lock()
				views := append([]View(nil), rec.views...)
				rec.mu.Unlock()
				for _, v := range views {
					key := fmt.Sprint(v.Members)
					if prev, ok := byID[v.ID]; ok && prev != key {
						t.Fatalf("view %v: %s vs %s", v.ID, prev, key)
					}
					byID[v.ID] = key
				}
			}

			// Invariants 2+3: per-sender order without duplicates.
			for id, ok := range alive {
				if !ok {
					continue
				}
				lastSeen := map[string]int{}
				for _, m := range c.rec[id].messages() {
					var sender string
					var n int
					if _, err := fmt.Sscanf(m.data, "%6s/%06d", &sender, &n); err != nil {
						// Sender names vary in length; split manually.
						for i := range m.data {
							if m.data[i] == '/' {
								sender = m.data[:i]
								fmt.Sscanf(m.data[i+1:], "%06d", &n)
								break
							}
						}
					}
					if prev, seen := lastSeen[sender]; seen && n <= prev {
						t.Fatalf("%s: sender %s delivered %d after %d (dup or reorder)", id, sender, n, prev)
					}
					lastSeen[sender] = n
				}
			}

			// Invariant 4: the live processes converge and traffic flows.
			live := liveIDs()
			c.waitConverged(60*time.Second, live...)
			probe := fmt.Sprintf("probe/%06d", 999999)
			if err := c.mem[live[0]].Multicast([]byte(probe)); err != nil {
				t.Fatal(err)
			}
			c.settle(2 * time.Second)
			for _, id := range live {
				msgs := c.rec[id].messages()
				if len(msgs) == 0 || msgs[len(msgs)-1].data != probe {
					t.Fatalf("%s did not deliver the post-chaos probe", id)
				}
			}
		}
	}
}
