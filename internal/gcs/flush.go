package gcs

import (
	"fmt"

	"repro/internal/clock"
)

// This file implements the view-change protocol. One member — the lowest
// unsuspected ID, the "coordinator" — drives three phases over a candidate
// membership:
//
//	PROPOSE  → every candidate freezes delivery and reports its cut
//	            (sendSeq + per-sender delivered counts)       [msgSyncInfo]
//	CUT      → coordinator broadcasts the per-sender delivery targets
//	            (max over all reports); candidates deliver and NAK-repair
//	            up to the targets, then confirm                [msgCutDone]
//	INSTALL  → coordinator assigns the new ViewID and membership; members
//	            reset multicast state and resume.
//
// The freeze–cut–repair sequence gives virtual synchrony: every member that
// survives from view V to view V' delivered exactly the same set of V's
// messages before installing V'. Competing proposals (concurrent failures,
// merges) are serialized by proposalID: candidates follow the highest
// proposal they have seen, and abandoned coordinators stand down.

type proposalPhase int

const (
	phaseSync proposalPhase = iota + 1
	phaseCut
)

// proposal is coordinator-side state for one view-change attempt.
type proposal struct {
	pid        proposalID
	candidates []ProcessID
	phase      proposalPhase
	syncInfos  map[ProcessID]*msgSyncInfo
	cutDone    map[ProcessID]bool
	// Delivery targets are computed PER OLD VIEW: sequence numbers are
	// meaningless across views, and a merge (or a member stranded one
	// view behind) brings candidates from several old views into one
	// proposal. Each candidate receives the cut of its own old view.
	targetsByView map[ViewID]map[ProcessID]uint64
	viewOf        map[ProcessID]ViewID
	retries       int
	timer         clock.Timer
}

func (pr *proposal) has(id ProcessID) bool {
	for _, c := range pr.candidates {
		if c == id {
			return true
		}
	}
	return false
}

// startProposalLocked begins (or restarts) a view change coordinated by
// this member over the currently desired candidate set.
func (m *Member) startProposalLocked(cb *callbacks) {
	if !m.active || m.leaving {
		return
	}
	candidates := m.desiredCandidatesLocked()
	if len(candidates) == 0 {
		candidates = []ProcessID{m.p.id}
	}
	if m.round < m.curPID.Round {
		m.round = m.curPID.Round
	}
	m.round++
	pid := proposalID{Round: m.round, Coord: m.p.id}

	if m.prop != nil && m.prop.timer != nil {
		m.prop.timer.Stop()
	}
	pr := &proposal{
		pid:        pid,
		candidates: candidates,
		phase:      phaseSync,
		syncInfos:  make(map[ProcessID]*msgSyncInfo, len(candidates)),
		cutDone:    make(map[ProcessID]bool, len(candidates)),
	}
	m.prop = pr
	pr.timer = m.p.cfg.Clock.AfterFunc(m.p.cfg.ProposalTimeout, func() { m.proposalTimeout(pid) })

	msg := &msgPropose{group: m.group, pid: pid, candidates: candidates}
	pkt := encodePropose(msg)
	for _, id := range candidates {
		if id != m.p.id {
			_ = m.p.cfg.Endpoint.Send(id, pkt)
		}
	}
	m.onProposeLocked(msg, cb)
}

// proposalTimeout fires when a phase stalls: first it retransmits to the
// laggards, then it declares them failed and restarts without them.
func (m *Member) proposalTimeout(pid proposalID) {
	var cb callbacks
	m.p.mu.Lock()
	pr := m.prop
	if !m.active || pr == nil || pr.pid != pid {
		m.p.mu.Unlock()
		return
	}
	missing := pr.missingLocked()
	if len(missing) == 0 {
		m.p.mu.Unlock()
		return
	}
	pr.retries++
	if pr.retries <= 2 {
		// Retransmit the current phase message to the laggards.
		for _, id := range missing {
			var pkt []byte
			switch pr.phase {
			case phaseSync:
				pkt = encodePropose(&msgPropose{group: m.group, pid: pr.pid, candidates: pr.candidates})
			case phaseCut:
				pkt = encodeCut(&msgCut{group: m.group, pid: pr.pid, targets: pr.targetsByView[pr.viewOf[id]]})
			}
			_ = m.p.cfg.Endpoint.Send(id, pkt)
		}
		pr.timer = m.p.cfg.Clock.AfterFunc(m.p.cfg.ProposalTimeout, func() { m.proposalTimeout(pid) })
	} else {
		// Give up on the laggards: suspect them so the candidate
		// computation excludes them, and restart the view change.
		for _, id := range missing {
			m.p.fd.suspectLocked(id)
		}
		m.startProposalLocked(&cb)
	}
	m.p.mu.Unlock()
	cb.run()
}

// missingLocked returns candidates that have not completed the current
// phase.
func (pr *proposal) missingLocked() []ProcessID {
	var out []ProcessID
	for _, id := range pr.candidates {
		switch pr.phase {
		case phaseSync:
			if pr.syncInfos[id] == nil {
				out = append(out, id)
			}
		case phaseCut:
			if !pr.cutDone[id] {
				out = append(out, id)
			}
		}
	}
	return out
}

// onProposeLocked is the participant's entry into a view change.
func (m *Member) onProposeLocked(msg *msgPropose, cb *callbacks) {
	if m.leaving {
		return
	}
	in := false
	for _, id := range msg.candidates {
		if id == m.p.id {
			in = true
			break
		}
	}
	if !in {
		return // we are being excluded (e.g. we announced a leave)
	}
	switch {
	case msg.pid.supersedes(m.curPID):
		m.curPID = msg.pid
		m.flushCandidates = append([]ProcessID(nil), msg.candidates...)
		if m.status == statusNormal {
			m.status = statusFlushing
			m.flushOldView = m.view
			m.p.ctr.flushRounds.Inc()
		}
		if m.prop != nil && m.prop.pid != msg.pid {
			// Our own proposal lost; stand down as coordinator.
			if m.prop.timer != nil {
				m.prop.timer.Stop()
			}
			m.prop = nil
		}
		m.cutTargets = nil
		m.sentCutDone = false
	case msg.pid == m.curPID:
		// Retransmitted propose; answer again below.
	default:
		return // stale proposal
	}
	m.flushHeard = m.p.cfg.Clock.Now()

	info := &msgSyncInfo{
		group:      m.group,
		pid:        m.curPID,
		oldView:    m.flushOldView.ID,
		oldMembers: append([]ProcessID(nil), m.flushOldView.Members...),
		sendSeq:    m.ms.sendSeq,
		recvNext:   copyVec(m.ms.recvNext),
	}
	if m.curPID.Coord == m.p.id {
		m.onSyncInfoLocked(m.p.id, info, cb)
	} else {
		_ = m.p.cfg.Endpoint.Send(m.curPID.Coord, encodeSyncInfo(info))
	}
}

// onSyncInfoLocked collects candidate reports at the coordinator.
func (m *Member) onSyncInfoLocked(from ProcessID, msg *msgSyncInfo, cb *callbacks) {
	pr := m.prop
	if pr == nil || msg.pid != pr.pid || pr.phase != phaseSync || !pr.has(from) {
		return
	}
	pr.syncInfos[from] = msg
	if len(pr.syncInfos) < len(pr.candidates) {
		return
	}

	// Everyone reported: compute the delivery targets, separately per old
	// view (sequence numbers do not compare across views). Within each
	// old view, a sender's target is the max of its own sendSeq (if it
	// reported) and every same-view reporter's delivered count — so
	// nothing any same-view survivor sent or delivered is lost.
	pr.targetsByView = make(map[ViewID]map[ProcessID]uint64)
	pr.viewOf = make(map[ProcessID]ViewID, len(pr.syncInfos))
	for reporter, info := range pr.syncInfos {
		pr.viewOf[reporter] = info.oldView
		targets := pr.targetsByView[info.oldView]
		if targets == nil {
			targets = make(map[ProcessID]uint64)
			pr.targetsByView[info.oldView] = targets
		}
		if info.sendSeq > targets[reporter] {
			targets[reporter] = info.sendSeq
		}
		for sender, next := range info.recvNext {
			if next > targets[sender] {
				targets[sender] = next
			}
		}
	}
	pr.phase = phaseCut
	pr.retries = 0
	if pr.timer != nil {
		pr.timer.Stop()
	}
	pid := pr.pid
	pr.timer = m.p.cfg.Clock.AfterFunc(m.p.cfg.ProposalTimeout, func() { m.proposalTimeout(pid) })

	for _, id := range pr.candidates {
		cut := &msgCut{group: m.group, pid: pr.pid, targets: pr.targetsByView[pr.viewOf[id]]}
		if id == m.p.id {
			m.onCutLocked(cut, cb)
			continue
		}
		_ = m.p.cfg.Endpoint.Send(id, encodeCut(cut))
	}
}

// onCutLocked receives the delivery targets and begins repairing toward
// them.
func (m *Member) onCutLocked(msg *msgCut, cb *callbacks) {
	if msg.pid != m.curPID || m.status != statusFlushing {
		return
	}
	m.cutTargets = msg.targets
	m.flushHeard = m.p.cfg.Clock.Now()
	m.drainTowardCutLocked(cb)
}

// drainTowardCutLocked delivers parked old-view messages up to (but never
// beyond) the cut targets, honoring causal readiness, then reports
// completion if reached. Causal predecessors of in-cut messages are
// themselves in the cut (see causal.go), so the fixpoint loop reaches the
// targets once the NAK repair has filled the gaps.
func (m *Member) drainTowardCutLocked(cb *callbacks) {
	if m.status != statusFlushing || m.cutTargets == nil {
		return
	}
	for progress := true; progress; {
		progress = false
		for _, sender := range m.flushOldView.Members {
			target := m.cutTargets[sender]
			pend := m.ms.pending[sender]
			for m.ms.recvNext[sender] < target {
				next := m.ms.recvNext[sender]
				data, ok := pend[next]
				if !ok || !m.causalReadyLocked(sender, data) {
					break // gap or causal wait: NAK repair will progress it
				}
				delete(pend, next)
				m.deliverOneLocked(sender, next, data, cb)
				progress = true
			}
		}
	}
	m.tryCompleteCutLocked(cb)
}

// tryCompleteCutLocked sends CutDone once every old-view sender's target is
// reached.
func (m *Member) tryCompleteCutLocked(cb *callbacks) {
	if m.status != statusFlushing || m.cutTargets == nil || m.sentCutDone {
		return
	}
	for _, sender := range m.flushOldView.Members {
		if m.ms.recvNext[sender] < m.cutTargets[sender] {
			return
		}
	}
	m.sentCutDone = true
	done := &msgCutDone{group: m.group, pid: m.curPID}
	if m.curPID.Coord == m.p.id {
		m.onCutDoneLocked(m.p.id, done, cb)
	} else {
		_ = m.p.cfg.Endpoint.Send(m.curPID.Coord, encodeCutDone(done))
	}
}

// onCutDoneLocked collects completions at the coordinator and installs the
// new view when all candidates have reached the cut.
func (m *Member) onCutDoneLocked(from ProcessID, msg *msgCutDone, cb *callbacks) {
	pr := m.prop
	if pr == nil || msg.pid != pr.pid || pr.phase != phaseCut || !pr.has(from) {
		return
	}
	pr.cutDone[from] = true
	for _, id := range pr.candidates {
		if !pr.cutDone[id] {
			return
		}
	}

	maxSeq := m.view.ID.Seq
	for _, info := range pr.syncInfos {
		if info.oldView.Seq > maxSeq {
			maxSeq = info.oldView.Seq
		}
	}
	install := &msgInstall{
		group:   m.group,
		pid:     pr.pid,
		view:    ViewID{Seq: maxSeq + 1, Coord: m.p.id},
		members: pr.candidates,
	}
	pkt := encodeInstall(install)
	for _, id := range pr.candidates {
		if id != m.p.id {
			_ = m.p.cfg.Endpoint.Send(id, pkt)
		}
	}
	m.onInstallLocked(install, cb)
}

// onInstallLocked commits the new view: reset multicast state, notify the
// application, release queued multicasts and replay early messages.
func (m *Member) onInstallLocked(msg *msgInstall, cb *callbacks) {
	if msg.pid != m.curPID || m.status != statusFlushing {
		return
	}
	members := sortedIDs(msg.members)
	in := false
	for _, id := range members {
		if id == m.p.id {
			in = true
			break
		}
	}
	if !in {
		return
	}

	m.view = View{Group: m.group, ID: msg.view, Members: members}
	m.ms = newMcastState(members)
	m.status = statusNormal
	m.p.ctr.viewChanges.Inc()
	m.p.cfg.Obs.Event("gcs.view",
		fmt.Sprintf("%s %s members=%d", m.group, msg.view, len(members)))
	m.cutTargets = nil
	m.sentCutDone = false
	m.flushCandidates = nil
	m.flushOldView = View{}
	m.forceChange = false
	m.divergeCount = nil
	if m.prop != nil {
		if m.prop.timer != nil {
			m.prop.timer.Stop()
		}
		m.prop = nil
	}
	for id := range m.departed {
		if !m.view.Includes(id) {
			delete(m.departed, id)
		}
	}
	for id := range m.foreign {
		if m.view.Includes(id) {
			delete(m.foreign, id)
		}
	}

	m.notifyViewLocked(cb)

	// Replay multicasts that raced ahead of our install.
	if early := m.future[msg.view]; early != nil {
		delete(m.future, msg.view)
		for _, em := range early {
			m.acceptMcastLocked(em, true, cb)
		}
	}
	for vid := range m.future {
		if vid.Seq <= msg.view.Seq {
			delete(m.future, vid)
		}
	}

	// Send what the application queued during the flush.
	queued := m.sendQueue
	m.sendQueue = nil
	for _, data := range queued {
		m.multicastWrappedLocked(data, cb)
	}

	// Conditions may have accumulated during the flush (new suspicions,
	// new joiners); the coordinator checks again.
	if m.isActingCoordinatorLocked() && m.changeNeededLocked() {
		m.scheduleProposalLocked()
	}
}

// flushTickLocked runs on the retransmission period while flushing: it
// NAK-repairs toward the cut and escalates if the coordinator went silent.
func (m *Member) flushTickLocked(cb *callbacks) {
	if m.cutTargets != nil {
		m.drainTowardCutLocked(cb)
		for _, sender := range m.flushOldView.Members {
			lo := m.ms.recvNext[sender]
			hi := m.cutTargets[sender]
			if lo >= hi {
				continue
			}
			nak := encodeNak(&msgNak{group: m.group, view: m.flushOldView.ID, sender: sender, from: lo, to: hi})
			for _, id := range m.flushOldView.Members {
				if id != m.p.id && !m.p.fd.isSuspectedLocked(id) {
					m.p.ctr.naksSent.Inc()
					_ = m.p.cfg.Endpoint.Send(id, nak)
				}
			}
		}
	}
	// Watchdog: if the flush stalls and its coordinator is gone, the next
	// candidate in line takes over. And as a last resort — the INSTALL
	// message travels unreliably exactly once, so a member that missed it
	// is stranded with a live, already-moved-on coordinator — ANY member
	// stuck long enough starts its own superseding proposal, which drags
	// the whole group (whatever views its members reached) into a fresh
	// common view.
	stallFor := m.p.cfg.Clock.Now().Sub(m.flushHeard)
	switch {
	case stallFor > 3*m.p.cfg.ProposalTimeout && m.isActingCoordinatorLocked() && m.prop == nil:
		m.startProposalLocked(cb)
	case stallFor > 8*m.p.cfg.ProposalTimeout && m.prop == nil:
		m.flushHeard = m.p.cfg.Clock.Now() // pace the escalation
		m.startProposalLocked(cb)
	}
}

func copyVec(v map[ProcessID]uint64) map[ProcessID]uint64 {
	out := make(map[ProcessID]uint64, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}
