package gcs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
)

// agreedCluster builds a converged group of n members.
func agreedCluster(t *testing.T, n int, seed int64, prof netsim.Profile) *cluster {
	t.Helper()
	c := newCluster(t, seed, prof)
	ids := make([]ProcessID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, ProcessID(fmt.Sprintf("p%d", i)))
	}
	c.join(ids[0], "g")
	for _, id := range ids[1:] {
		c.join(id, "g", ids[0])
	}
	c.waitConverged(10*time.Second, ids...)
	return c
}

// agreedOf extracts the delivered agreed payloads for a member (agreed
// messages are the only ones these tests send).
func agreedOf(c *cluster, id ProcessID) []string {
	var out []string
	for _, m := range c.rec[id].messages() {
		out = append(out, m.data)
	}
	return out
}

func assertSameOrder(t *testing.T, c *cluster, ids []ProcessID, wantLen int) {
	t.Helper()
	ref := agreedOf(c, ids[0])
	if wantLen >= 0 && len(ref) != wantLen {
		t.Fatalf("%s delivered %d messages, want %d", ids[0], len(ref), wantLen)
	}
	for _, id := range ids[1:] {
		got := agreedOf(c, id)
		if len(got) != len(ref) {
			t.Fatalf("total order violated: %s delivered %d, %s delivered %d",
				ids[0], len(ref), id, len(got))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order violated at %d: %s saw %q, %s saw %q",
					i, ids[0], ref[i], id, got[i])
			}
		}
	}
}

func TestAgreedTotalOrderConcurrentSenders(t *testing.T) {
	c := agreedCluster(t, 3, 1, netsim.LAN())
	ids := []ProcessID{"p0", "p1", "p2"}
	// All three multicast concurrently — interleaved in scenario time.
	for i := 0; i < 10; i++ {
		for _, id := range ids {
			if err := c.mem[id].MulticastAgreed([]byte(fmt.Sprintf("%s-%d", id, i))); err != nil {
				t.Fatal(err)
			}
		}
		c.settle(7 * time.Millisecond)
	}
	c.settle(2 * time.Second)
	assertSameOrder(t, c, ids, 30)
}

func TestAgreedPerSenderFIFO(t *testing.T) {
	c := agreedCluster(t, 3, 2, netsim.LAN())
	for i := 0; i < 20; i++ {
		if err := c.mem["p1"].MulticastAgreed([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(2 * time.Second)
	for _, id := range []ProcessID{"p0", "p1", "p2"} {
		got := agreedOf(c, id)
		if len(got) != 20 {
			t.Fatalf("%s delivered %d/20", id, len(got))
		}
		for i, d := range got {
			if want := fmt.Sprintf("m%02d", i); d != want {
				t.Fatalf("%s: position %d = %q, want %q", id, i, d, want)
			}
		}
	}
}

func TestAgreedUnderLoss(t *testing.T) {
	prof := netsim.LAN()
	prof.Loss = 0.10
	c := agreedCluster(t, 3, 3, prof)
	ids := []ProcessID{"p0", "p1", "p2"}
	for i := 0; i < 15; i++ {
		for _, id := range ids {
			if err := c.mem[id].MulticastAgreed([]byte(fmt.Sprintf("%s-%d", id, i))); err != nil {
				t.Fatal(err)
			}
		}
		c.settle(20 * time.Millisecond)
	}
	c.settle(5 * time.Second) // retries + NAK repair
	assertSameOrder(t, c, ids, 45)
}

func TestAgreedSurvivesCoordinatorCrash(t *testing.T) {
	c := agreedCluster(t, 3, 4, netsim.LAN())
	survivors := []ProcessID{"p1", "p2"}

	// Send a batch, then immediately kill the coordinator (p0, lowest ID)
	// before everything is forwarded.
	for i := 0; i < 10; i++ {
		if err := c.mem["p1"].MulticastAgreed([]byte(fmt.Sprintf("a%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(5 * time.Millisecond)
	c.net.Crash("p0")
	c.waitConverged(5*time.Second, survivors...)
	// More traffic through the new coordinator (p1).
	for i := 10; i < 20; i++ {
		if err := c.mem["p2"].MulticastAgreed([]byte(fmt.Sprintf("b%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(5 * time.Second)

	// Survivors must agree on one order, with every message delivered at
	// least at the survivors (the crashed coordinator may or may not have
	// forwarded some — retries via the new coordinator recover them).
	refB, refC := agreedOf(c, "p1"), agreedOf(c, "p2")
	if len(refB) != len(refC) {
		t.Fatalf("survivors disagree on count: %d vs %d", len(refB), len(refC))
	}
	for i := range refB {
		if refB[i] != refC[i] {
			t.Fatalf("survivors disagree at %d: %q vs %q", i, refB[i], refC[i])
		}
	}
	seen := map[string]int{}
	for _, d := range refB {
		seen[d]++
	}
	for i := 0; i < 10; i++ {
		if n := seen[fmt.Sprintf("a%02d", i)]; n != 1 {
			t.Fatalf("pre-crash message a%02d delivered %d times, want 1", i, n)
		}
	}
	for i := 10; i < 20; i++ {
		if n := seen[fmt.Sprintf("b%02d", i)]; n != 1 {
			t.Fatalf("post-crash message b%02d delivered %d times, want 1", i, n)
		}
	}
}

func TestAgreedOnClosedMember(t *testing.T) {
	c := agreedCluster(t, 2, 5, netsim.LAN())
	c.proc["p1"].Close()
	if err := c.mem["p1"].MulticastAgreed([]byte("x")); err != ErrClosed {
		t.Fatalf("MulticastAgreed after Close = %v, want ErrClosed", err)
	}
}

func TestAgreedInterleavesWithPlain(t *testing.T) {
	c := agreedCluster(t, 2, 6, netsim.LAN())
	if err := c.mem["p0"].Multicast([]byte("plain-1")); err != nil {
		t.Fatal(err)
	}
	if err := c.mem["p0"].MulticastAgreed([]byte("agreed-1")); err != nil {
		t.Fatal(err)
	}
	if err := c.mem["p0"].Multicast([]byte("plain-2")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)
	for _, id := range []ProcessID{"p0", "p1"} {
		got := agreedOf(c, id)
		if len(got) != 3 {
			t.Fatalf("%s delivered %d messages, want 3 (%v)", id, len(got), got)
		}
		seen := map[string]bool{}
		for _, d := range got {
			seen[d] = true
		}
		for _, want := range []string{"plain-1", "agreed-1", "plain-2"} {
			if !seen[want] {
				t.Fatalf("%s missing %q: %v", id, want, got)
			}
		}
	}
}
