package gcs

// Safe delivery — the fourth Transis service: a safe message is delivered
// only once every member of the current view is known to have RECEIVED it,
// so an application acting on a safe message knows no membership subset
// can exist that never saw it (Transis calls this "safe"; ISIS "stable").
//
// Receipt (not delivery) is what must be acknowledged — acknowledging
// delivery would deadlock, since everyone would hold the message waiting
// for everyone else to deliver it first. The periodic ack gossip therefore
// carries a second vector: the received-contiguous watermark (the FIFO
// prefix present in the pending/retained stores, delivered or not).
//
// A safe message at the head of a sender's FIFO stream blocks that stream,
// exactly as the semantics require: later messages from the same sender
// are ordered after it. During a view-change flush the gate is waived for
// messages inside the agreed cut — the cut itself proves that every
// surviving member received them.

// MulticastSafe reliably multicasts payload with safe delivery.
func (m *Member) MulticastSafe(payload []byte) error {
	body := append([]byte(nil), payload...)
	m.p.mu.Lock()
	if !m.active {
		m.p.mu.Unlock()
		return ErrClosed
	}
	data := make([]byte, 0, len(body)+1)
	data = append(data, payloadSafe)
	data = append(data, body...)
	if m.status != statusNormal {
		m.sendQueue = append(m.sendQueue, data)
		m.p.mu.Unlock()
		return nil
	}
	var cb callbacks
	m.multicastWrappedLocked(data, &cb)
	m.p.mu.Unlock()
	cb.run()
	return nil
}

// safeReadyLocked reports whether the in-order head message data from
// sender may be delivered with respect to the safe gate. Caller holds
// p.mu.
func (m *Member) safeReadyLocked(sender ProcessID, seq uint64, data []byte) bool {
	if len(data) == 0 || data[0] != payloadSafe {
		return true
	}
	if m.status == statusFlushing {
		return true // inside the cut: the flush proves universal receipt
	}
	for _, member := range m.view.Members {
		if member == m.p.id {
			continue // we received it — we are holding it
		}
		vec := m.ms.peerContig[member]
		if vec == nil || vec[sender] <= seq {
			return false
		}
	}
	return true
}

// contigForLocked computes this member's received-contiguous watermark for
// one sender: the delivered prefix plus the run of consecutively parked
// messages after it. Caller holds p.mu.
func (m *Member) contigForLocked(sender ProcessID) uint64 {
	next := m.ms.recvNext[sender]
	pend := m.ms.pending[sender]
	for {
		if _, ok := pend[next]; !ok {
			return next
		}
		next++
	}
}

// contigLocked computes the watermark for every sender. Caller holds p.mu.
func (m *Member) contigLocked() map[ProcessID]uint64 {
	out := make(map[ProcessID]uint64, len(m.view.Members))
	for _, sender := range m.view.Members {
		out[sender] = m.contigForLocked(sender)
	}
	return out
}
