package gcs

import (
	"fmt"
	"testing"
)

// TestDeepMonkey sweeps many more randomized schedules than TestMonkey —
// the seeds in this range have historically exposed three protocol bugs
// (cross-view cut mixing, lost-install stranding, asymmetric-view
// divergence), so they stay in the suite as regression coverage.
func TestDeepMonkey(t *testing.T) {
	for seed := int64(10); seed <= 150; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("s%d", seed), func(t *testing.T) { monkeyRun(t, seed) })
	}
}
