package gcs

import "repro/internal/wire"

// Causal multicast — the third Transis delivery service, between FIFO and
// agreed: if a member multicasts m2 after delivering m1, then every member
// delivers m1 before m2 (potential causality, Lamport's happened-before).
//
// Each causal message carries the sender's delivery vector (its per-sender
// delivered counts at send time, within the current view). A receiver
// holds the message until its own vector dominates: for every view member
// q other than the sender, delivered[q] ≥ V[q]. The sender's own FIFO
// position is enforced by the sequence numbers of the reliable layer.
//
// Causality is scoped to a view, like the FIFO guarantee: the view-change
// flush delivers a common cut, and any causal predecessor of an in-cut
// message is itself in the cut (the sender's delivered counts at send time
// are bounded by every reporter's counts at the freeze), so the causal
// drain in the flush terminates.
type causalEnvelope struct {
	vector map[ProcessID]uint64
	body   []byte
}

// MulticastCausal reliably multicasts payload with causal delivery.
func (m *Member) MulticastCausal(payload []byte) error {
	body := append([]byte(nil), payload...)
	m.p.mu.Lock()
	if !m.active {
		m.p.mu.Unlock()
		return ErrClosed
	}
	data := wrapCausal(copyVec(m.ms.recvNext), body)
	if m.status != statusNormal {
		m.sendQueue = append(m.sendQueue, data)
		m.p.mu.Unlock()
		return nil
	}
	var cb callbacks
	m.multicastWrappedLocked(data, &cb)
	m.p.mu.Unlock()
	cb.run()
	return nil
}

// wrapCausal frames a causal payload: tag, vector, body.
func wrapCausal(vector map[ProcessID]uint64, body []byte) []byte {
	out := make([]byte, 0, 16+len(body)+16*len(vector))
	out = wire.AppendU8(out, payloadCausal)
	out = appendVec(out, vector, nil)
	return append(out, body...)
}

// parseCausal decodes a causal frame (without the leading tag byte).
func parseCausal(data []byte) (causalEnvelope, bool) {
	r := wire.NewReader(data)
	vec := readVec(r)
	body := r.Rest()
	if r.Err() != nil || vec == nil {
		return causalEnvelope{}, false
	}
	return causalEnvelope{vector: vec, body: body}, true
}

// causalReadyLocked reports whether the in-order head message data from
// sender may be delivered now: non-causal payloads always may; causal ones
// wait until this member's delivery vector dominates the message's.
// Caller holds p.mu.
func (m *Member) causalReadyLocked(sender ProcessID, data []byte) bool {
	if len(data) == 0 || data[0] != payloadCausal {
		return true
	}
	env, ok := parseCausal(data[1:])
	if !ok {
		return true // malformed: deliver and let dispatch drop it
	}
	for q, needed := range env.vector {
		if q == sender {
			continue // the sender's own stream is ordered by seq already
		}
		if m.ms.recvNext[q] < needed {
			return false
		}
	}
	return true
}
