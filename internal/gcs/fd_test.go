package gcs

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// fdRig builds a process whose detector we can poke directly.
func fdRig(t *testing.T) (*cluster, *Process) {
	t.Helper()
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.waitConverged(3*time.Second, "a", "b")
	return c, c.proc["a"]
}

func TestDetectorGracePeriod(t *testing.T) {
	c, p := fdRig(t)
	p.mu.Lock()
	// b is a fresh peer of interest: it must not be suspectable before a
	// full timeout has passed, even if it said nothing yet.
	suspected := p.fd.isSuspectedLocked("b")
	p.mu.Unlock()
	if suspected {
		t.Fatal("peer suspected during its grace period")
	}
	c.settle(100 * time.Millisecond)
	p.mu.Lock()
	suspected = p.fd.isSuspectedLocked("b")
	p.mu.Unlock()
	if suspected {
		t.Fatal("live peer suspected")
	}
}

func TestDetectorSuspectsSilentPeer(t *testing.T) {
	c, p := fdRig(t)
	c.net.Crash("b")
	// The suspicion is transient: once the view change excludes b, the
	// detector prunes its state. Step in small increments to observe it.
	sawSuspected := false
	for i := 0; i < 40 && !sawSuspected; i++ {
		c.settle(50 * time.Millisecond)
		p.mu.Lock()
		sawSuspected = p.fd.isSuspectedLocked("b")
		p.mu.Unlock()
	}
	if !sawSuspected {
		t.Fatal("silent peer never suspected")
	}
	// And the view change it triggered completes.
	c.waitConverged(5*time.Second, "a")
}

func TestDetectorUnsuspectsOnTraffic(t *testing.T) {
	_, p := fdRig(t)
	p.mu.Lock()
	p.fd.suspectLocked("b")
	if !p.fd.isSuspectedLocked("b") {
		p.mu.Unlock()
		t.Fatal("suspectLocked had no effect")
	}
	p.fd.heardLocked("b")
	suspected := p.fd.isSuspectedLocked("b")
	p.mu.Unlock()
	if suspected {
		t.Fatal("suspicion not cleared by inbound traffic")
	}
}

func TestDetectorForgetsUninterestingPeers(t *testing.T) {
	c, p := fdRig(t)
	c.net.Crash("b")
	c.waitConverged(5*time.Second, "a")
	// b is out of every view; the detector must prune its state rather
	// than track the dead process forever.
	c.settle(3 * time.Second)
	p.mu.Lock()
	_, tracked := p.fd.lastHeard["b"]
	p.mu.Unlock()
	if tracked {
		t.Fatal("detector still tracks a peer outside every view")
	}
}

func TestDetectorSuspectLockedIgnoresSelf(t *testing.T) {
	_, p := fdRig(t)
	p.mu.Lock()
	p.fd.suspectLocked(p.id)
	self := p.fd.isSuspectedLocked(p.id)
	p.mu.Unlock()
	if self {
		t.Fatal("process suspected itself")
	}
}
