package gcs

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// addProcessCfg is addProcess with config knobs (the plain rig helper pins
// the default config).
func (c *cluster) addProcessCfg(id ProcessID, cfg Config) *Process {
	c.t.Helper()
	ep, err := c.net.NewEndpoint(id)
	if err != nil {
		c.t.Fatal(err)
	}
	cfg.Clock = c.clk
	cfg.Endpoint = ep
	p := NewProcess(cfg)
	c.proc[id] = p
	return p
}

// TestSharedTimersProtocolEquivalence runs the join/multicast/crash cycle
// with every process on coalesced timers: convergence, FIFO delivery and
// failure-driven view changes must all work exactly as with per-member
// Periodics.
func TestSharedTimersProtocolEquivalence(t *testing.T) {
	c := newCluster(t, 7, netsim.LAN())
	for _, id := range []ProcessID{"a", "b", "c"} {
		c.addProcessCfg(id, Config{SharedTimers: true})
	}
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(5*time.Second, "a", "b", "c")

	if err := c.mem["a"].Multicast([]byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := c.mem["b"].Multicast([]byte("m2")); err != nil {
		t.Fatal(err)
	}
	c.settle(time.Second)
	for _, id := range []ProcessID{"a", "b", "c"} {
		msgs := c.rec[id].messages()
		if len(msgs) != 2 {
			t.Fatalf("%s delivered %d messages, want 2: %v", id, len(msgs), msgs)
		}
	}

	// Crash one member: the survivors' failure detector (also on the shared
	// tick) must drive a view change excluding it.
	c.proc["c"].Close()
	c.waitConverged(5*time.Second, "a", "b")
}

// TestSharedTimersTimerCount pins the tentpole's resource claim: a process
// serving many groups holds ONE standing timer, where per-member mode holds
// 1 + 3 per group. Measured on idle singleton memberships so pending
// network events cannot pollute the clock's event count.
func TestSharedTimersTimerCount(t *testing.T) {
	const groups = 10
	count := func(shared bool) int {
		clk := clock.NewVirtual(gcsEpoch)
		net := netsim.New(clk, 1, netsim.LAN())
		ep, err := net.NewEndpoint("p")
		if err != nil {
			t.Fatal(err)
		}
		p := NewProcess(Config{Clock: clk, Endpoint: ep, SharedTimers: shared})
		defer p.Close()
		for i := 0; i < groups; i++ {
			if _, err := p.Join(string(rune('a'+i)), Handlers{}); err != nil {
				t.Fatal(err)
			}
		}
		clk.Advance(time.Second) // steady state; singletons emit no packets
		return clk.Len()
	}
	if got := count(false); got != 1+3*groups {
		t.Fatalf("per-member timers = %d, want %d", got, 1+3*groups)
	}
	if got := count(true); got != 1 {
		t.Fatalf("shared timers = %d, want 1", got)
	}
}

// TestSharedTickAllocFree pins that the coalesced tick allocates nothing in
// steady state: the member snapshot, gossip encode buffers and heartbeat
// path all run from warm scratch.
func TestSharedTickAllocFree(t *testing.T) {
	clk := clock.NewVirtual(gcsEpoch)
	net := netsim.New(clk, 1, netsim.LAN())
	ep, err := net.NewEndpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(Config{Clock: clk, Endpoint: ep, SharedTimers: true})
	defer p.Close()
	for _, g := range []string{"g1", "g2", "g3"} {
		if _, err := p.Join(g, Handlers{}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second) // warm the scratch buffers
	allocs := testing.AllocsPerRun(5, func() { clk.Advance(time.Second) })
	if allocs != 0 {
		t.Fatalf("shared tick allocs per simulated second = %v, want 0", allocs)
	}
}
