package gcs_test

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/gcs"
	"repro/internal/netsim"
)

// Example shows the GCS API end to end: two processes join a group, the
// membership converges, and a reliable multicast reaches both members.
func Example() {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	network := netsim.New(clk, 1, netsim.LAN())

	join := func(id gcs.ProcessID, contacts ...gcs.ProcessID) *gcs.Member {
		ep, err := network.NewEndpoint(id)
		if err != nil {
			panic(err)
		}
		proc := gcs.NewProcess(gcs.Config{Clock: clk, Endpoint: ep})
		m, err := proc.Join("demo", gcs.Handlers{
			OnMessage: func(_ string, from gcs.ProcessID, payload []byte) {
				fmt.Printf("%s delivered %q from %s\n", id, payload, from)
			},
		}, contacts...)
		if err != nil {
			panic(err)
		}
		return m
	}

	alice := join("alice")
	join("bob", "alice")
	clk.Advance(2 * time.Second) // membership converges

	view := alice.View()
	fmt.Println("view members:", view.Members)

	if err := alice.Multicast([]byte("hello group")); err != nil {
		panic(err)
	}
	clk.Advance(time.Second)

	// Output:
	// view members: [alice bob]
	// alice delivered "hello group" from alice
	// bob delivered "hello group" from alice
}
