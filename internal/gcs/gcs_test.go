package gcs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/transport"
)

var gcsEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// recorder captures a member's view and message history in delivery order.
type recorder struct {
	mu    sync.Mutex
	views []View
	msgs  []recMsg
}

type recMsg struct {
	view ViewID // view installed at delivery time
	from ProcessID
	data string
}

func (r *recorder) handlers() Handlers {
	return Handlers{
		OnView: func(v View) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.views = append(r.views, v)
		},
		OnMessage: func(_ string, from ProcessID, payload []byte) {
			r.mu.Lock()
			defer r.mu.Unlock()
			var cur ViewID
			if len(r.views) > 0 {
				cur = r.views[len(r.views)-1].ID
			}
			r.msgs = append(r.msgs, recMsg{view: cur, from: from, data: string(payload)})
		},
	}
}

func (r *recorder) lastView() View {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.views) == 0 {
		return View{}
	}
	return r.views[len(r.views)-1]
}

func (r *recorder) messages() []recMsg {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]recMsg(nil), r.msgs...)
}

// cluster is the GCS test rig: processes on a simulated network driven by a
// virtual clock.
type cluster struct {
	t    *testing.T
	clk  *clock.Virtual
	net  *netsim.Network
	proc map[ProcessID]*Process
	rec  map[ProcessID]*recorder
	mem  map[ProcessID]*Member
}

func newCluster(t *testing.T, seed int64, prof netsim.Profile) *cluster {
	t.Helper()
	clk := clock.NewVirtual(gcsEpoch)
	return &cluster{
		t:    t,
		clk:  clk,
		net:  netsim.New(clk, seed, prof),
		proc: make(map[ProcessID]*Process),
		rec:  make(map[ProcessID]*recorder),
		mem:  make(map[ProcessID]*Member),
	}
}

func (c *cluster) addProcess(id ProcessID) *Process {
	c.t.Helper()
	ep, err := c.net.NewEndpoint(id)
	if err != nil {
		c.t.Fatal(err)
	}
	p := NewProcess(Config{Clock: c.clk, Endpoint: ep})
	c.proc[id] = p
	return p
}

func (c *cluster) join(id ProcessID, group string, contacts ...ProcessID) {
	c.t.Helper()
	p := c.proc[id]
	if p == nil {
		p = c.addProcess(id)
	}
	rec := &recorder{}
	m, err := p.Join(group, rec.handlers(), contacts...)
	if err != nil {
		c.t.Fatal(err)
	}
	c.rec[id] = rec
	c.mem[id] = m
}

// settle advances simulated time by d.
func (c *cluster) settle(d time.Duration) { c.clk.Advance(d) }

// converged reports whether the given processes share one view containing
// exactly them.
func (c *cluster) converged(ids ...ProcessID) bool {
	want := sortedIDs(ids)
	var ref View
	for i, id := range ids {
		v := c.rec[id].lastView()
		if len(v.Members) != len(want) {
			return false
		}
		for j := range want {
			if v.Members[j] != want[j] {
				return false
			}
		}
		if i == 0 {
			ref = v
		} else if v.ID != ref.ID {
			return false
		}
	}
	return true
}

// waitConverged advances time until the processes converge or the deadline
// passes.
func (c *cluster) waitConverged(max time.Duration, ids ...ProcessID) time.Duration {
	c.t.Helper()
	start := c.clk.Now()
	for elapsed := time.Duration(0); elapsed < max; elapsed += 50 * time.Millisecond {
		if c.converged(ids...) {
			return c.clk.Now().Sub(start)
		}
		c.settle(50 * time.Millisecond)
	}
	if c.converged(ids...) {
		return c.clk.Now().Sub(start)
	}
	for _, id := range ids {
		c.t.Logf("%s: view=%v", id, c.rec[id].lastView())
	}
	c.t.Fatalf("processes %v did not converge within %v", ids, max)
	return 0
}

func TestSingletonJoin(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	v := c.rec["a"].lastView()
	if len(v.Members) != 1 || v.Members[0] != "a" {
		t.Fatalf("initial view = %v, want singleton {a}", v)
	}
	if v.ID.Coord != "a" || v.ID.Seq != 1 {
		t.Fatalf("initial view ID = %v", v.ID)
	}
}

func TestTwoProcessJoin(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.waitConverged(3*time.Second, "a", "b")
	v := c.rec["a"].lastView()
	if v.Coordinator() != "a" {
		t.Fatalf("coordinator = %s, want a", v.Coordinator())
	}
}

func TestMulticastFIFO(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.waitConverged(3*time.Second, "a", "b")

	for i := 0; i < 20; i++ {
		if err := c.mem["a"].Multicast([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(time.Second)

	for _, id := range []ProcessID{"a", "b"} {
		var got []string
		for _, m := range c.rec[id].messages() {
			if m.from == "a" {
				got = append(got, m.data)
			}
		}
		if len(got) != 20 {
			t.Fatalf("%s delivered %d messages, want 20", id, len(got))
		}
		for i, d := range got {
			if want := fmt.Sprintf("m%02d", i); d != want {
				t.Fatalf("%s FIFO violation at %d: %q != %q", id, i, d, want)
			}
		}
	}
}

func TestMulticastSelfDelivery(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	if err := c.mem["a"].Multicast([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	c.settle(100 * time.Millisecond)
	msgs := c.rec["a"].messages()
	if len(msgs) != 1 || msgs[0].data != "solo" || msgs[0].from != "a" {
		t.Fatalf("self delivery = %v", msgs)
	}
}

func TestThreeProcessesCrashOne(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	c.net.Crash("c")
	took := c.waitConverged(5*time.Second, "a", "b")
	t.Logf("takeover after crash took %v", took)
	if took > 2*time.Second {
		t.Fatalf("view change after crash took %v, want < 2s", took)
	}
}

func TestCoordinatorCrash(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	c.net.Crash("a") // "a" is the coordinator (lowest ID)
	c.waitConverged(5*time.Second, "b", "c")
	v := c.rec["b"].lastView()
	if v.Coordinator() != "b" {
		t.Fatalf("new coordinator = %s, want b", v.Coordinator())
	}
}

func TestSequentialCrashesDownToOne(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	ids := []ProcessID{"a", "b", "c", "d"}
	c.join("a", "g")
	for _, id := range ids[1:] {
		c.join(id, "g", "a")
	}
	c.waitConverged(5*time.Second, ids...)

	c.net.Crash("a")
	c.waitConverged(5*time.Second, "b", "c", "d")
	c.net.Crash("b")
	c.waitConverged(5*time.Second, "c", "d")
	c.net.Crash("c")
	c.waitConverged(5*time.Second, "d")
}

func TestMulticastUnderLoss(t *testing.T) {
	prof := netsim.LAN()
	prof.Loss = 0.10 // harsh: 10% loss on the control plane
	c := newCluster(t, 7, prof)
	c.join("a", "g")
	c.join("b", "g", "a")
	c.waitConverged(10*time.Second, "a", "b")

	for i := 0; i < 50; i++ {
		if err := c.mem["a"].Multicast([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(5 * time.Second) // NAK repair needs some rounds

	var got []string
	for _, m := range c.rec["b"].messages() {
		if m.from == "a" {
			got = append(got, m.data)
		}
	}
	if len(got) != 50 {
		t.Fatalf("b delivered %d/50 under 10%% loss; reliable multicast failed", len(got))
	}
	for i, d := range got {
		if want := fmt.Sprintf("m%02d", i); d != want {
			t.Fatalf("FIFO violation at %d: %q", i, d)
		}
	}
}

// TestVirtualSynchrony checks the defining property: members that survive a
// view change together deliver the same set of old-view messages before the
// new view, even when the sender crashes mid-burst under packet loss.
func TestVirtualSynchrony(t *testing.T) {
	prof := netsim.LAN()
	prof.Loss = 0.05
	c := newCluster(t, 3, prof)
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(10*time.Second, "a", "b", "c")

	for i := 0; i < 30; i++ {
		if err := c.mem["a"].Multicast([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let some (but likely not all) repair happen, then kill the sender.
	c.settle(30 * time.Millisecond)
	c.net.Crash("a")
	c.waitConverged(5*time.Second, "b", "c")
	c.settle(time.Second)

	deliveredBefore := func(id ProcessID) []string {
		newID := c.rec[id].lastView().ID
		var out []string
		for _, m := range c.rec[id].messages() {
			if m.from == "a" && m.view != newID {
				out = append(out, m.data)
			}
		}
		return out
	}
	gotB, gotC := deliveredBefore("b"), deliveredBefore("c")
	if len(gotB) != len(gotC) {
		t.Fatalf("virtual synchrony violated: b delivered %d, c delivered %d", len(gotB), len(gotC))
	}
	for i := range gotB {
		if gotB[i] != gotC[i] {
			t.Fatalf("virtual synchrony violated at %d: %q vs %q", i, gotB[i], gotC[i])
		}
	}
	t.Logf("both survivors delivered the same %d of 30 messages from the crashed sender", len(gotB))
}

func TestPartitionThenMerge(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a", "b")
	c.waitConverged(3*time.Second, "a", "b", "c")

	c.net.Partition([]transport.Addr{"a"}, []transport.Addr{"b", "c"})
	c.waitConverged(5*time.Second, "b", "c")
	if !c.converged("a") {
		c.settle(2 * time.Second)
	}
	va := c.rec["a"].lastView()
	if len(va.Members) != 1 || va.Members[0] != "a" {
		t.Fatalf("a's partition view = %v, want {a}", va)
	}

	c.net.Heal()
	c.waitConverged(8*time.Second, "a", "b", "c")
}

func TestLeaveGraceful(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	if err := c.mem["c"].Leave(); err != nil {
		t.Fatal(err)
	}
	took := c.waitConverged(3*time.Second, "a", "b")
	// Graceful leave must be faster than failure detection.
	if took >= 500*time.Millisecond {
		t.Fatalf("graceful leave took %v, want < suspect timeout (500ms)", took)
	}
	if err := c.mem["c"].Multicast([]byte("x")); err == nil {
		c.settle(3 * time.Second) // allow grace deactivation
		if err := c.mem["c"].Multicast([]byte("x")); err != ErrClosed {
			t.Fatalf("Multicast after Leave = %v, want ErrClosed", err)
		}
	}
}

func TestConcurrentJoins(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	ids := []ProcessID{"a", "b", "c", "d", "e"}
	c.join("a", "g")
	for _, id := range ids[1:] {
		c.join(id, "g", "a")
	}
	c.waitConverged(8*time.Second, ids...)
}

func TestCrashDuringJoinStorm(t *testing.T) {
	c := newCluster(t, 5, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.settle(200 * time.Millisecond)
	c.join("c", "g", "a")
	c.join("d", "g", "a")
	c.net.Crash("b") // crash while joins are in flight
	c.waitConverged(8*time.Second, "a", "c", "d")
}

func TestMulticastDuringViewChangeIsQueued(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.join("c", "g", "a")
	c.waitConverged(3*time.Second, "a", "b", "c")

	c.net.Crash("c")
	// Give the FD time to suspect and the flush to start, then multicast
	// mid-change.
	c.settle(600 * time.Millisecond)
	if err := c.mem["a"].Multicast([]byte("during-change")); err != nil {
		t.Fatal(err)
	}
	c.waitConverged(5*time.Second, "a", "b")
	c.settle(time.Second)

	found := false
	for _, m := range c.rec["b"].messages() {
		if m.data == "during-change" {
			found = true
		}
	}
	if !found {
		t.Fatal("message multicast during view change was lost")
	}
}

func TestAnycastDeliversToMember(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	outsider := c.addProcess("z")
	if err := outsider.Anycast("a", "g", []byte("hello-group")); err != nil {
		t.Fatal(err)
	}
	c.settle(100 * time.Millisecond)
	msgs := c.rec["a"].messages()
	if len(msgs) != 1 || msgs[0].data != "hello-group" || msgs[0].from != "z" {
		t.Fatalf("anycast delivery = %v", msgs)
	}
}

func TestAnycastToNonMemberGroupIsDropped(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	outsider := c.addProcess("z")
	if err := outsider.Anycast("a", "other-group", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.settle(100 * time.Millisecond)
	if msgs := c.rec["a"].messages(); len(msgs) != 0 {
		t.Fatalf("anycast for a non-member group delivered: %v", msgs)
	}
}

func TestDirectSend(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	a := c.addProcess("a")
	b := c.addProcess("b")
	var got string
	var from ProcessID
	b.SetDirectHandler(func(f ProcessID, payload []byte) {
		from, got = f, string(payload)
	})
	if err := a.Send("b", []byte("direct")); err != nil {
		t.Fatal(err)
	}
	c.settle(100 * time.Millisecond)
	if got != "direct" || from != "a" {
		t.Fatalf("direct send: got %q from %q", got, from)
	}
}

func TestJoinTwiceFails(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	if _, err := c.proc["a"].Join("g", Handlers{}); err == nil {
		t.Fatal("second Join of the same group succeeded")
	}
}

func TestProcessClose(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g")
	c.join("b", "g", "a")
	c.waitConverged(3*time.Second, "a", "b")
	c.proc["b"].Close()
	if err := c.mem["b"].Multicast([]byte("x")); err != ErrClosed {
		t.Fatalf("Multicast after Close = %v, want ErrClosed", err)
	}
	// "a" must eventually see "b" gone via the failure detector.
	c.waitConverged(5*time.Second, "a")
}

func TestViewIncludes(t *testing.T) {
	v := View{Members: []ProcessID{"a", "c", "e"}}
	for _, tt := range []struct {
		id   ProcessID
		want bool
	}{{"a", true}, {"b", false}, {"c", true}, {"e", true}, {"f", false}, {"", false}} {
		if got := v.Includes(tt.id); got != tt.want {
			t.Errorf("Includes(%q) = %v, want %v", tt.id, got, tt.want)
		}
	}
}

func TestProposalIDSupersedes(t *testing.T) {
	tests := []struct {
		a, b proposalID
		want bool
	}{
		{proposalID{}, proposalID{1, "a"}, true},
		{proposalID{1, "a"}, proposalID{2, "b"}, true},
		{proposalID{2, "b"}, proposalID{1, "a"}, false},
		{proposalID{1, "b"}, proposalID{1, "a"}, true},
		{proposalID{1, "a"}, proposalID{1, "b"}, false},
		{proposalID{1, "a"}, proposalID{1, "a"}, false},
	}
	for _, tt := range tests {
		if got := tt.b.supersedes(tt.a); got != tt.want {
			t.Errorf("%v supersedes %v = %v, want %v", tt.b, tt.a, got, tt.want)
		}
	}
}

// TestViewAgreementProperty: whenever two processes report the same ViewID,
// they must report identical membership. Exercised over a randomized
// crash/join schedule.
func TestViewAgreementProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prof := netsim.LAN()
			prof.Loss = 0.02
			c := newCluster(t, seed, prof)
			ids := []ProcessID{"a", "b", "c", "d"}
			c.join("a", "g")
			for _, id := range ids[1:] {
				c.join(id, "g", "a")
			}
			c.settle(time.Duration(seed) * 333 * time.Millisecond)
			crash := ids[seed%int64(len(ids))]
			if crash != "a" || seed%2 == 0 {
				c.net.Crash(crash)
			}
			c.settle(4 * time.Second)

			// Gather every view ever installed by anyone; same ID must
			// mean same membership.
			byID := make(map[ViewID][]ProcessID)
			for _, id := range ids {
				c.rec[id].mu.Lock()
				views := append([]View(nil), c.rec[id].views...)
				c.rec[id].mu.Unlock()
				for _, v := range views {
					if prev, ok := byID[v.ID]; ok {
						if len(prev) != len(v.Members) {
							t.Fatalf("view %v: memberships %v vs %v", v.ID, prev, v.Members)
						}
						for i := range prev {
							if prev[i] != v.Members[i] {
								t.Fatalf("view %v: memberships %v vs %v", v.ID, prev, v.Members)
							}
						}
					} else {
						byID[v.ID] = v.Members
					}
				}
			}
		})
	}
}

func BenchmarkMulticastTwoMembers(b *testing.B) {
	clk := clock.NewVirtual(gcsEpoch)
	net := netsim.New(clk, 1, netsim.LAN())
	mkProc := func(id ProcessID) *Process {
		ep, err := net.NewEndpoint(id)
		if err != nil {
			b.Fatal(err)
		}
		return NewProcess(Config{Clock: clk, Endpoint: ep})
	}
	pa, pb := mkProc("a"), mkProc("b")
	n := 0
	ma, _ := pa.Join("g", Handlers{})
	_, _ = pb.Join("g", Handlers{OnMessage: func(string, ProcessID, []byte) { n++ }}, "a")
	clk.Advance(3 * time.Second)
	payload := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ma.Multicast(payload)
		clk.Advance(time.Millisecond)
	}
}

func TestProcessGroups(t *testing.T) {
	c := newCluster(t, 1, netsim.LAN())
	c.join("a", "g1")
	if _, err := c.proc["a"].Join("g2", Handlers{}); err != nil {
		t.Fatal(err)
	}
	got := c.proc["a"].Groups()
	if len(got) != 2 || got[0] != "g1" || got[1] != "g2" {
		t.Fatalf("Groups = %v", got)
	}
	if err := c.mem["a"].Leave(); err != nil { // leaves g1 (singleton: immediate)
		t.Fatal(err)
	}
	if got := c.proc["a"].Groups(); len(got) != 1 || got[0] != "g2" {
		t.Fatalf("Groups after leave = %v", got)
	}
}
