package gcs

import (
	"fmt"

	"repro/internal/wire"
)

// proposalID orders concurrent view-change proposals: higher round wins,
// and within a round the lower coordinator wins (it is the legitimate one).
type proposalID struct {
	Round uint64
	Coord ProcessID
}

// supersedes reports whether b should replace a as the proposal a member
// follows. The zero proposalID is superseded by any real proposal.
func (b proposalID) supersedes(a proposalID) bool {
	if b.Round != a.Round {
		return b.Round > a.Round
	}
	if a.Coord == "" {
		return b.Coord != ""
	}
	return b.Coord < a.Coord
}

func (b proposalID) String() string { return fmt.Sprintf("r%d@%s", b.Round, b.Coord) }

// Internal message kinds. These share the GCS transport channel.
const (
	kindHeartbeat uint8 = iota + 1
	kindDirect
	kindAnycast
	kindMcast
	kindNak
	kindAckVec
	kindPresence
	kindPropose
	kindSyncInfo
	kindCut
	kindCutDone
	kindInstall
	kindLeave
	kindAgreedReq
)

type (
	msgHeartbeat struct{}

	msgDirect struct{ payload []byte }

	msgAnycast struct {
		group   string
		payload []byte
	}

	// msgMcast carries one group multicast. sender is the original
	// sender, which differs from the transport source on retransmission.
	msgMcast struct {
		group   string
		view    ViewID
		sender  ProcessID
		seq     uint64
		payload []byte
	}

	// msgNak requests retransmission of sender's messages [from, to).
	msgNak struct {
		group  string
		view   ViewID
		sender ProcessID
		from   uint64
		to     uint64
	}

	// msgAckVec gossips the member's delivered-count vector, used for
	// stability (garbage collection of retained messages), plus its
	// received-contiguous watermark, used by the safe-delivery gate.
	msgAckVec struct {
		group  string
		view   ViewID
		vec    map[ProcessID]uint64
		contig map[ProcessID]uint64
	}

	// msgPresence announces a view to processes outside it, triggering
	// joins and partition merges.
	msgPresence struct {
		group   string
		view    ViewID
		members []ProcessID
	}

	// msgPropose opens a view change over the candidate membership.
	msgPropose struct {
		group      string
		pid        proposalID
		candidates []ProcessID
	}

	// msgSyncInfo reports a candidate's state to the proposal
	// coordinator: its current view and its multicast cut.
	msgSyncInfo struct {
		group      string
		pid        proposalID
		oldView    ViewID
		oldMembers []ProcessID
		sendSeq    uint64
		recvNext   map[ProcessID]uint64
	}

	// msgCut distributes the agreed delivery targets for the old views.
	msgCut struct {
		group   string
		pid     proposalID
		targets map[ProcessID]uint64
	}

	// msgCutDone reports that the member reached the cut.
	msgCutDone struct {
		group string
		pid   proposalID
	}

	// msgInstall commits the new view.
	msgInstall struct {
		group   string
		pid     proposalID
		view    ViewID
		members []ProcessID
	}

	// msgLeave announces a graceful departure from the group.
	msgLeave struct{ group string }

	// msgAgreedReq hands an agreed-multicast payload to the view
	// coordinator for total ordering (seq is the sender's agreed
	// sequence number).
	msgAgreedReq struct {
		group   string
		seq     uint64
		payload []byte
	}
)

// groupOf returns the group a message is scoped to.
func groupOf(m any) (string, bool) {
	switch m := m.(type) {
	case *msgAnycast:
		return m.group, true
	case *msgMcast:
		return m.group, true
	case *msgNak:
		return m.group, true
	case *msgAckVec:
		return m.group, true
	case *msgPresence:
		return m.group, true
	case *msgPropose:
		return m.group, true
	case *msgSyncInfo:
		return m.group, true
	case *msgCut:
		return m.group, true
	case *msgCutDone:
		return m.group, true
	case *msgInstall:
		return m.group, true
	case *msgLeave:
		return m.group, true
	case *msgAgreedReq:
		return m.group, true
	default:
		return "", false
	}
}

func appendViewID(b []byte, v ViewID) []byte {
	b = wire.AppendU64(b, v.Seq)
	return wire.AppendString(b, string(v.Coord))
}

func appendPID(b []byte, pid proposalID) []byte {
	b = wire.AppendU64(b, pid.Round)
	return wire.AppendString(b, string(pid.Coord))
}

func appendIDs(b []byte, ids []ProcessID) []byte {
	b = wire.AppendU16(b, uint16(len(ids)))
	for _, id := range ids {
		b = wire.AppendString(b, string(id))
	}
	return b
}

// appendVec encodes a process→seq map in sorted key order so encodings are
// deterministic (useful for tests and replay). scratch, when non-nil, lends
// a reusable key buffer so steady-state callers (the ack gossip tick) sort
// without allocating; it is left reset for the next call.
func appendVec(b []byte, vec map[ProcessID]uint64, scratch *[]ProcessID) []byte {
	var keys []ProcessID
	if scratch != nil {
		keys = (*scratch)[:0]
	} else {
		keys = make([]ProcessID, 0, len(vec))
	}
	for k := range vec {
		keys = append(keys, k)
	}
	sortIDs(keys)
	b = wire.AppendU16(b, uint16(len(keys)))
	for _, k := range keys {
		b = wire.AppendString(b, string(k))
		b = wire.AppendU64(b, vec[k])
	}
	if scratch != nil {
		*scratch = keys[:0]
	}
	return b
}

func readVec(r *wire.Reader) map[ProcessID]uint64 {
	n := int(r.U16())
	if r.Err() != nil {
		return nil
	}
	vec := make(map[ProcessID]uint64, n)
	for i := 0; i < n; i++ {
		k := ProcessID(r.String())
		v := r.U64()
		if r.Err() != nil {
			return nil
		}
		vec[k] = v
	}
	return vec
}

// heartbeatPkt is the singleton heartbeat datagram: one constant byte, sent
// to every peer every tick, so per-send allocation would be pure waste.
// Send implementations never mutate the payload.
var heartbeatPkt = []byte{kindHeartbeat}

func encodeHeartbeat() []byte { return heartbeatPkt }

// appendDirect and appendAnycast frame into caller scratch: the Process
// send paths reuse one buffer per process (see Process.sendBuf).
func appendDirect(b, payload []byte) []byte {
	b = wire.AppendU8(b, kindDirect)
	return wire.AppendBytes(b, payload)
}

func appendAnycast(b []byte, group string, payload []byte) []byte {
	b = wire.AppendU8(b, kindAnycast)
	b = wire.AppendString(b, group)
	return wire.AppendBytes(b, payload)
}

func encodeMcast(m *msgMcast) []byte {
	return appendMcast(make([]byte, 0, 48+len(m.group)+len(m.payload)), m)
}

// appendMcast is encodeMcast's append-into-scratch form for the multicast
// send and retransmission paths, which run once per reliable message.
func appendMcast(b []byte, m *msgMcast) []byte {
	b = wire.AppendU8(b, kindMcast)
	b = wire.AppendString(b, m.group)
	b = appendViewID(b, m.view)
	b = wire.AppendString(b, string(m.sender))
	b = wire.AppendU64(b, m.seq)
	return wire.AppendBytes(b, m.payload)
}

func encodeNak(m *msgNak) []byte {
	b := make([]byte, 0, 64)
	b = wire.AppendU8(b, kindNak)
	b = wire.AppendString(b, m.group)
	b = appendViewID(b, m.view)
	b = wire.AppendString(b, string(m.sender))
	b = wire.AppendU64(b, m.from)
	return wire.AppendU64(b, m.to)
}

func encodeAckVec(m *msgAckVec) []byte {
	b := make([]byte, 0, 96)
	b = wire.AppendU8(b, kindAckVec)
	b = wire.AppendString(b, m.group)
	b = appendViewID(b, m.view)
	b = appendVec(b, m.vec, nil)
	return appendVec(b, m.contig, nil)
}

// appendAckVec is encodeAckVec's append-into-scratch form for the periodic
// ack gossip, which runs hot enough that a fresh packet buffer per tick
// shows up in profiles.
func appendAckVec(b []byte, group string, view ViewID, vec, contig map[ProcessID]uint64, scratch *[]ProcessID) []byte {
	b = wire.AppendU8(b, kindAckVec)
	b = wire.AppendString(b, group)
	b = appendViewID(b, view)
	b = appendVec(b, vec, scratch)
	return appendVec(b, contig, scratch)
}

func encodePresence(m *msgPresence) []byte {
	b := make([]byte, 0, 64)
	b = wire.AppendU8(b, kindPresence)
	b = wire.AppendString(b, m.group)
	b = appendViewID(b, m.view)
	return appendIDs(b, m.members)
}

// appendPresence is encodePresence's append-into-scratch form for the
// periodic presence announcement.
func appendPresence(b []byte, group string, view ViewID, members []ProcessID) []byte {
	b = wire.AppendU8(b, kindPresence)
	b = wire.AppendString(b, group)
	b = appendViewID(b, view)
	return appendIDs(b, members)
}

func encodePropose(m *msgPropose) []byte {
	b := make([]byte, 0, 64)
	b = wire.AppendU8(b, kindPropose)
	b = wire.AppendString(b, m.group)
	b = appendPID(b, m.pid)
	return appendIDs(b, m.candidates)
}

func encodeSyncInfo(m *msgSyncInfo) []byte {
	b := make([]byte, 0, 128)
	b = wire.AppendU8(b, kindSyncInfo)
	b = wire.AppendString(b, m.group)
	b = appendPID(b, m.pid)
	b = appendViewID(b, m.oldView)
	b = appendIDs(b, m.oldMembers)
	b = wire.AppendU64(b, m.sendSeq)
	return appendVec(b, m.recvNext, nil)
}

func encodeCut(m *msgCut) []byte {
	b := make([]byte, 0, 64)
	b = wire.AppendU8(b, kindCut)
	b = wire.AppendString(b, m.group)
	b = appendPID(b, m.pid)
	return appendVec(b, m.targets, nil)
}

func encodeCutDone(m *msgCutDone) []byte {
	b := make([]byte, 0, 32)
	b = wire.AppendU8(b, kindCutDone)
	b = wire.AppendString(b, m.group)
	return appendPID(b, m.pid)
}

func encodeInstall(m *msgInstall) []byte {
	b := make([]byte, 0, 64)
	b = wire.AppendU8(b, kindInstall)
	b = wire.AppendString(b, m.group)
	b = appendPID(b, m.pid)
	b = appendViewID(b, m.view)
	return appendIDs(b, m.members)
}

func encodeLeave(m *msgLeave) []byte {
	b := make([]byte, 0, 32)
	b = wire.AppendU8(b, kindLeave)
	return wire.AppendString(b, m.group)
}

func encodeAgreedReq(m *msgAgreedReq) []byte {
	b := make([]byte, 0, 32+len(m.group)+len(m.payload))
	b = wire.AppendU8(b, kindAgreedReq)
	b = wire.AppendString(b, m.group)
	b = wire.AppendU64(b, m.seq)
	return wire.AppendBytes(b, m.payload)
}
