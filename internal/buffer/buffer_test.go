package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func smallCfg() Config {
	return Config{SoftwareCapacity: 8, HardwareCapacityBytes: 4000}
}

func frame(i uint32, class wire.FrameClass, size int) FrameMeta {
	return FrameMeta{Index: i, Class: class, Size: size}
}

func TestInOrderFlow(t *testing.T) {
	p := New(smallCfg())
	for i := uint32(0); i < 4; i++ {
		if r := p.Insert(frame(i, wire.FrameP, 500)); r != Buffered {
			t.Fatalf("Insert(%d) = %v", i, r)
		}
	}
	occ := p.Occupancy()
	// 4 × 500 = 2000 bytes fit in the 4000-byte decoder; software empty.
	if occ.HardwareFrames != 4 || occ.SoftwareFrames != 0 || occ.HardwareBytes != 2000 {
		t.Fatalf("occupancy = %+v", occ)
	}
	for i := uint32(0); i < 4; i++ {
		f, ok := p.Tick()
		if !ok || f.Index != i {
			t.Fatalf("Tick %d = %+v, %v", i, f, ok)
		}
	}
	if _, ok := p.Tick(); ok {
		t.Fatal("Tick on empty pipeline returned a frame")
	}
	c := p.Counters()
	if c.Displayed != 4 || c.Received != 4 || c.Skipped() != 0 || c.Late != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestHardwareBackpressureFillsSoftware(t *testing.T) {
	p := New(smallCfg())
	// 8 frames × 1000 bytes: only 4 fit in hardware, rest queue in software.
	for i := uint32(0); i < 8; i++ {
		p.Insert(frame(i, wire.FrameP, 1000))
	}
	occ := p.Occupancy()
	if occ.HardwareFrames != 4 || occ.SoftwareFrames != 4 {
		t.Fatalf("occupancy = %+v, want hw=4 sw=4", occ)
	}
	if occ.CombinedFrames != 8 {
		t.Fatalf("combined = %d, want 8", occ.CombinedFrames)
	}
	// Consuming one hardware frame streams one in from software.
	p.Tick()
	occ = p.Occupancy()
	if occ.HardwareFrames != 4 || occ.SoftwareFrames != 3 {
		t.Fatalf("after tick: %+v", occ)
	}
}

func TestReordering(t *testing.T) {
	p := New(smallCfg())
	// Fill hardware so arrivals queue in software and can reorder there.
	for i := uint32(0); i < 4; i++ {
		p.Insert(frame(i, wire.FrameP, 1000))
	}
	for _, i := range []uint32{6, 4, 7, 5} {
		p.Insert(frame(i, wire.FrameP, 1000))
	}
	var got []uint32
	for {
		f, ok := p.Tick()
		if !ok {
			break
		}
		got = append(got, f.Index)
	}
	want := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("displayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("displayed %v, want %v", got, want)
		}
	}
	if c := p.Counters(); c.Late != 0 || c.Skipped() != 0 {
		t.Fatalf("reordering cost: %+v", c)
	}
}

func TestLateFrame(t *testing.T) {
	p := New(smallCfg())
	p.Insert(frame(0, wire.FrameI, 500))
	p.Insert(frame(1, wire.FrameP, 500))
	p.Tick() // displays 0; next acceptable is 2
	if r := p.Insert(frame(0, wire.FrameI, 500)); r != LateDiscarded {
		t.Fatalf("re-insert displayed frame = %v, want LateDiscarded", r)
	}
	if c := p.Counters(); c.Late != 1 {
		t.Fatalf("Late = %d, want 1", c.Late)
	}
}

func TestDuplicateInBuffer(t *testing.T) {
	p := New(smallCfg())
	// Frame 5 parks in software (gap before it, hw space available but
	// streaming jumps gaps eagerly)... insert two copies back to back.
	p.Insert(frame(0, wire.FrameI, 3500)) // nearly fills hw
	p.Insert(frame(1, wire.FrameP, 1000)) // must wait in software
	if r := p.Insert(frame(1, wire.FrameP, 1000)); r != LateDiscarded {
		t.Fatalf("duplicate buffered frame = %v, want LateDiscarded", r)
	}
	if c := p.Counters(); c.Late != 1 {
		t.Fatalf("Late = %d, want 1", c.Late)
	}
}

func TestGapSkipping(t *testing.T) {
	p := New(smallCfg())
	p.Insert(frame(0, wire.FrameI, 500))
	p.Insert(frame(3, wire.FrameP, 500)) // frames 1, 2 lost
	f, ok := p.Tick()
	if !ok || f.Index != 0 {
		t.Fatalf("Tick = %+v", f)
	}
	f, ok = p.Tick()
	if !ok || f.Index != 3 {
		t.Fatalf("Tick after gap = %+v, want frame 3", f)
	}
	if c := p.Counters(); c.GapSkipped != 2 {
		t.Fatalf("GapSkipped = %d, want 2", c.GapSkipped)
	}
	// The lost frames arriving now are late.
	if r := p.Insert(frame(1, wire.FrameB, 500)); r != LateDiscarded {
		t.Fatalf("post-gap arrival = %v, want LateDiscarded", r)
	}
}

func TestOverflowPrefersIncrementalVictim(t *testing.T) {
	cfg := Config{SoftwareCapacity: 4, HardwareCapacityBytes: 1000}
	p := New(cfg)
	p.Insert(frame(0, wire.FrameI, 1000)) // fills hardware exactly
	// Software now takes the rest: I, B, P, B.
	p.Insert(frame(1, wire.FrameI, 900))
	p.Insert(frame(2, wire.FrameB, 900))
	p.Insert(frame(3, wire.FrameP, 900))
	p.Insert(frame(4, wire.FrameB, 900))
	// Buffer full; next insert must evict the highest-index incremental
	// frame (4, a B frame) — never the I frame.
	p.Insert(frame(5, wire.FrameI, 900))
	c := p.Counters()
	if c.OverflowDropped != 1 {
		t.Fatalf("OverflowDropped = %d, want 1", c.OverflowDropped)
	}
	if c.OverflowDroppedI != 0 {
		t.Fatal("discard policy dropped an I frame while incrementals were available")
	}
	var displayed []uint32
	for {
		f, ok := p.Tick()
		if !ok {
			break
		}
		displayed = append(displayed, f.Index)
	}
	want := []uint32{0, 1, 2, 3, 5}
	if len(displayed) != len(want) {
		t.Fatalf("displayed %v, want %v", displayed, want)
	}
	for i := range want {
		if displayed[i] != want[i] {
			t.Fatalf("displayed %v, want %v", displayed, want)
		}
	}
}

func TestOverflowAllIFramesDropsI(t *testing.T) {
	cfg := Config{SoftwareCapacity: 2, HardwareCapacityBytes: 1000}
	p := New(cfg)
	p.Insert(frame(0, wire.FrameI, 1000))
	p.Insert(frame(1, wire.FrameI, 900))
	p.Insert(frame(2, wire.FrameI, 900))
	p.Insert(frame(3, wire.FrameI, 900)) // overflow: all candidates are I
	c := p.Counters()
	if c.OverflowDropped != 1 || c.OverflowDroppedI != 1 {
		t.Fatalf("counters = %+v, want one I frame dropped", c)
	}
}

func TestStallCountsOnlyAfterStart(t *testing.T) {
	p := New(smallCfg())
	p.Tick() // before any frame: startup, not a stall
	p.Tick()
	if c := p.Counters(); c.Stalls != 0 {
		t.Fatalf("startup ticks counted as stalls: %+v", c)
	}
	p.Insert(frame(0, wire.FrameI, 500))
	p.Tick() // displays 0
	p.Tick() // genuine stall
	if c := p.Counters(); c.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", c.Stalls)
	}
}

func TestMaxStallRun(t *testing.T) {
	p := New(smallCfg())
	p.Insert(frame(0, wire.FrameI, 500))
	p.Tick() // displays 0
	for i := 0; i < 3; i++ {
		p.Tick() // stall streak of 3
	}
	p.Insert(frame(1, wire.FrameP, 500))
	p.Tick() // displays 1, streak broken
	p.Tick() // single stall
	c := p.Counters()
	if c.Stalls != 4 {
		t.Fatalf("Stalls = %d, want 4", c.Stalls)
	}
	if c.MaxStallRun != 3 {
		t.Fatalf("MaxStallRun = %d, want 3", c.MaxStallRun)
	}
}

func TestResetForSeek(t *testing.T) {
	p := New(smallCfg())
	for i := uint32(0); i < 6; i++ {
		p.Insert(frame(i, wire.FrameP, 500))
	}
	p.Tick()
	p.Reset(100)
	occ := p.Occupancy()
	if occ.CombinedFrames != 0 {
		t.Fatalf("occupancy after Reset = %+v", occ)
	}
	// Backward-in-stream frames are acceptable again from the new origin.
	if r := p.Insert(frame(100, wire.FrameI, 500)); r != Buffered {
		t.Fatalf("Insert(100) after Reset = %v", r)
	}
	if r := p.Insert(frame(99, wire.FrameP, 500)); r != LateDiscarded {
		t.Fatalf("Insert(99) after Reset(100) = %v, want LateDiscarded", r)
	}
}

func TestOversizedFrameDoesNotWedge(t *testing.T) {
	cfg := Config{SoftwareCapacity: 4, HardwareCapacityBytes: 1000}
	p := New(cfg)
	p.Insert(frame(0, wire.FrameI, 5000)) // larger than the whole decoder
	f, ok := p.Tick()
	if !ok || f.Index != 0 {
		t.Fatalf("oversized frame never displayed: %+v %v", f, ok)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a zero config")
		}
	}()
	New(Config{})
}

// TestDisplayOrderProperty: regardless of arrival order, displayed frame
// indices are strictly increasing — the invariant that makes playback
// watchable.
func TestDisplayOrderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(DefaultConfig())
		perm := rng.Perm(300)
		last := -1
		tick := func() bool {
			f, ok := p.Tick()
			if !ok {
				return true
			}
			if int(f.Index) <= last {
				return false
			}
			last = int(f.Index)
			return true
		}
		for i, idx := range perm {
			class := wire.FrameB
			if idx%12 == 0 {
				class = wire.FrameI
			}
			p.Insert(frame(uint32(idx), class, 2000+rng.Intn(4000)))
			if i%3 == 0 && !tick() {
				return false
			}
		}
		for i := 0; i < 400; i++ {
			if !tick() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationProperty: every received frame is accounted for exactly
// once across displayed / late / overflow-dropped / still-buffered.
func TestConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(Config{SoftwareCapacity: 10, HardwareCapacityBytes: 8000})
		n := uint64(0)
		for i := 0; i < 500; i++ {
			idx := uint32(rng.Intn(200))
			p.Insert(frame(idx, wire.FrameB, 500+rng.Intn(1500)))
			n++
			if rng.Intn(3) == 0 {
				p.Tick()
			}
		}
		c := p.Counters()
		occ := p.Occupancy()
		accounted := c.Displayed + c.Late + c.OverflowDropped + uint64(occ.CombinedFrames)
		return c.Received == n && accounted == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertTick(b *testing.B) {
	p := New(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Insert(frame(uint32(i), wire.FrameP, 5800))
		p.Tick()
	}
}
