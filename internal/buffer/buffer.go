// Package buffer implements the VoD client's two-level frame buffering
// exactly as §3 and §4.2 of the paper describe it:
//
//   - a software buffer (37 frames in the paper's prototype) that absorbs
//     network irregularity and re-orders frames that arrive out of order;
//   - a hardware MPEG-decoder buffer (240 KB ≈ 1.2 s) modeled as a
//     byte-bounded FIFO drained at the display rate.
//
// Received frames enter the software buffer and are streamed into the
// hardware decoder in index order as decoder space frees up. Frames that
// arrive after the decoder has consumed frames following them are "late"
// and discarded (this includes duplicates transmitted by two servers
// during migration). On software-buffer overflow a buffered frame is
// discarded to make room, preferring an incremental (P/B) frame over an I
// frame (§3).
package buffer

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/wire"
)

// FrameMeta identifies a frame moving through the pipeline. Payload bytes
// are not retained — only sizes matter for buffer occupancy.
type FrameMeta struct {
	Index uint32
	Class wire.FrameClass
	Size  int
}

// Config sizes the two buffers. The defaults (via DefaultConfig) are the
// paper's prototype values.
type Config struct {
	// SoftwareCapacity is the software buffer size in frames.
	SoftwareCapacity int
	// HardwareCapacityBytes is the decoder buffer size in bytes.
	HardwareCapacityBytes int
	// NaiveDiscard disables the I-frame-preserving overflow policy and
	// evicts the highest-index frame regardless of class. Exists only for
	// the ablation that quantifies the policy's value (§3).
	NaiveDiscard bool
}

// DefaultConfig returns the paper's prototype buffer sizes: 37 software
// frames plus a hardware decoder buffer holding ≈1.2 s of the 1.4 Mbps /
// 30 fps stream (≈37 frames ≈ 216 KB) — together about 2.4 seconds of
// video (§4.2, §6).
func DefaultConfig() Config {
	return Config{
		SoftwareCapacity:      37,
		HardwareCapacityBytes: 216_000,
	}
}

// Counters accumulate the quantities the paper's evaluation plots.
type Counters struct {
	// Received counts every frame handed to Insert.
	Received uint64
	// Displayed counts frames consumed by the decoder at display ticks.
	Displayed uint64
	// Late counts frames that arrived after the decoder consumed frames
	// following them — including duplicates during migration (Figure 4b).
	Late uint64
	// OverflowDropped counts frames discarded on software-buffer overflow
	// (Figure 5b). Unless such a frame is retransmitted and arrives again
	// in time, it also shows up in GapSkipped when its display turn comes.
	OverflowDropped uint64
	// OverflowDroppedI counts the I frames among OverflowDropped; the
	// discard policy keeps this at zero whenever avoidable (§6.1.1).
	OverflowDroppedI uint64
	// GapSkipped counts frames never streamed to the decoder — because
	// they were lost on the video channel or discarded on overflow and
	// absent when their turn came.
	GapSkipped uint64
	// Stalls counts display ticks that found the decoder buffer empty —
	// visible jitter when sustained.
	Stalls uint64
	// MaxStallRun is the longest consecutive stall streak, in display
	// ticks — the paper's smoothness criterion: an irregularity is
	// noticeable to a human observer when video halts for a sustained
	// stretch ("usually during no more than a second" when buffers are
	// undersized, §4.2).
	MaxStallRun uint64
}

// Skipped returns the paper's "skipped frames" metric: frames not
// displayed to the user (Figures 4a, 5a). GapSkipped already covers both
// causes — network loss and overflow discards — so it is the metric.
func (c Counters) Skipped() uint64 { return c.GapSkipped }

// Occupancy is a snapshot of buffer fill levels.
type Occupancy struct {
	SoftwareFrames int
	HardwareFrames int
	HardwareBytes  int
	// CombinedFrames is the flow-control view: total frames buffered
	// ahead of the display point.
	CombinedFrames int
}

// Pipeline is the client buffering pipeline. Safe for concurrent use.
type Pipeline struct {
	mu  sync.Mutex
	cfg Config

	sw     []FrameMeta // sorted ascending by Index
	hw     []FrameMeta // FIFO in display order
	hwSize int         // bytes in hw
	next   uint32      // lowest frame index still acceptable

	stallRun uint64 // current consecutive-stall streak
	c        Counters
}

// New returns a pipeline expecting the stream to start at frame 0.
func New(cfg Config) *Pipeline {
	if cfg.SoftwareCapacity <= 0 || cfg.HardwareCapacityBytes <= 0 {
		panic(fmt.Sprintf("buffer: invalid config %+v", cfg))
	}
	// The software buffer is bounded by its capacity, so one allocation
	// serves the pipeline's lifetime; consumption shifts in place rather
	// than re-slicing, which would walk the slice off its backing array
	// and force a fresh allocation on almost every insert. The decoder
	// buffer is byte-bounded, but its working set is the same order as
	// the software buffer (≈1.2 s of stream each at the paper defaults),
	// so seed it at the same capacity and skip the append-doubling churn;
	// it still grows if small frames pack past the estimate.
	return &Pipeline{
		cfg: cfg,
		sw:  make([]FrameMeta, 0, cfg.SoftwareCapacity+1),
		hw:  make([]FrameMeta, 0, cfg.SoftwareCapacity+1),
	}
}

// InsertResult reports what happened to an arriving frame.
type InsertResult int

// The Insert outcomes.
const (
	// Buffered: the frame was accepted into the software buffer (possibly
	// evicting another frame, see Counters.OverflowDropped).
	Buffered InsertResult = iota + 1
	// LateDiscarded: the frame arrived after its display turn passed, or
	// is a duplicate; it was dropped and counted late.
	LateDiscarded
)

// Insert files an arriving frame.
func (p *Pipeline) Insert(f FrameMeta) InsertResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.c.Received++

	if f.Index < p.next {
		p.c.Late++
		return LateDiscarded
	}
	pos := sort.Search(len(p.sw), func(i int) bool { return p.sw[i].Index >= f.Index })
	if pos < len(p.sw) && p.sw[pos].Index == f.Index {
		p.c.Late++ // duplicate of a frame still buffered
		return LateDiscarded
	}

	if len(p.sw) >= p.cfg.SoftwareCapacity {
		p.evictLocked()
		// Eviction may have removed a frame below the insertion point.
		pos = sort.Search(len(p.sw), func(i int) bool { return p.sw[i].Index >= f.Index })
	}

	p.sw = append(p.sw, FrameMeta{})
	copy(p.sw[pos+1:], p.sw[pos:])
	p.sw[pos] = f

	p.streamLocked()
	return Buffered
}

// evictLocked discards one buffered frame to make room: the highest-index
// incremental frame if any exists, otherwise the highest-index frame.
func (p *Pipeline) evictLocked() {
	victim := len(p.sw) - 1
	if !p.cfg.NaiveDiscard {
		for i := len(p.sw) - 1; i >= 0; i-- {
			if p.sw[i].Class != wire.FrameI {
				victim = i
				break
			}
		}
	}
	if p.sw[victim].Class == wire.FrameI {
		p.c.OverflowDroppedI++
	}
	p.c.OverflowDropped++
	copy(p.sw[victim:], p.sw[victim+1:])
	p.sw = p.sw[:len(p.sw)-1]
}

// streamLocked moves frames from the software buffer into the decoder in
// index order while decoder space allows. A missing index is skipped (and
// counted) — if it shows up afterwards it will be late, exactly the
// paper's semantics.
func (p *Pipeline) streamLocked() {
	for len(p.sw) > 0 {
		f := p.sw[0]
		// A frame larger than the whole decoder buffer streams alone into
		// an empty decoder rather than wedging the pipeline.
		if p.hwSize+f.Size > p.cfg.HardwareCapacityBytes && !(len(p.hw) == 0 && f.Size > p.cfg.HardwareCapacityBytes) {
			return
		}
		if f.Index > p.next {
			p.c.GapSkipped += uint64(f.Index - p.next)
		}
		p.next = f.Index + 1
		copy(p.sw, p.sw[1:])
		p.sw = p.sw[:len(p.sw)-1]
		p.hw = append(p.hw, f)
		p.hwSize += f.Size
	}
}

// Tick consumes one frame from the decoder at a display instant. It
// returns the displayed frame, or ok=false on a stall (empty decoder).
func (p *Pipeline) Tick() (f FrameMeta, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.hw) == 0 {
		// Only count a stall once playback has actually started; an empty
		// decoder before the first frame is just startup.
		if p.c.Displayed > 0 {
			p.c.Stalls++
			p.stallRun++
			if p.stallRun > p.c.MaxStallRun {
				p.c.MaxStallRun = p.stallRun
			}
		}
		p.streamLocked()
		return FrameMeta{}, false
	}
	f = p.hw[0]
	copy(p.hw, p.hw[1:])
	p.hw = p.hw[:len(p.hw)-1]
	p.hwSize -= f.Size
	p.c.Displayed++
	p.stallRun = 0
	p.streamLocked()
	return f, true
}

// Reset flushes both buffers and repositions the stream at start — used on
// random access (VCR seek). Counters are preserved; a seek is not an error.
func (p *Pipeline) Reset(start uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sw = p.sw[:0]
	p.hw = p.hw[:0]
	p.hwSize = 0
	p.next = start
}

// Occupancy returns a snapshot of the fill levels.
func (p *Pipeline) Occupancy() Occupancy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Occupancy{
		SoftwareFrames: len(p.sw),
		HardwareFrames: len(p.hw),
		HardwareBytes:  p.hwSize,
		CombinedFrames: len(p.sw) + len(p.hw),
	}
}

// Counters returns a snapshot of the accumulated counters.
func (p *Pipeline) Counters() Counters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.c
}

// NextIndex returns the lowest frame index the pipeline still accepts.
func (p *Pipeline) NextIndex() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}
