package client_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type rig struct {
	clk   *clock.Virtual
	net   *netsim.Network
	movie *mpeg.Movie
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	return &rig{
		clk: clk,
		net: netsim.New(clk, 9, netsim.LAN()),
		movie: mpeg.Generate("feature", mpeg.StreamConfig{
			Duration: 20 * time.Second,
			Seed:     2,
		}),
	}
}

func (r *rig) server(t *testing.T, id string, peers ...string) *server.Server {
	t.Helper()
	cat := store.NewCatalog()
	cat.Add(r.movie)
	s, err := server.New(server.Config{
		ID: id, Clock: r.clk, Network: r.net, Catalog: cat, Peers: peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func (r *rig) client(t *testing.T, id string, servers ...string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		ID: id, Clock: r.clk, Network: r.net, Servers: servers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t)
	cases := []client.Config{
		{Clock: r.clk, Network: r.net, Servers: []string{"s"}}, // no ID
		{ID: "c", Network: r.net, Servers: []string{"s"}},      // no clock
		{ID: "c", Clock: r.clk, Servers: []string{"s"}},        // no network
		{ID: "c", Clock: r.clk, Network: r.net},                // no servers
	}
	for i, cfg := range cases {
		if _, err := client.New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStateMachine(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")

	if got := c.State(); got != client.StateIdle {
		t.Fatalf("initial state = %v", got)
	}
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	if err := c.Watch("feature"); err == nil {
		t.Fatal("second Watch accepted")
	}
	r.clk.Advance(2 * time.Second)
	if got := c.State(); got != client.StateWatching {
		t.Fatalf("state after open = %v", got)
	}
	// Counters and occupancy are live.
	if c.Counters().Displayed == 0 {
		t.Fatal("nothing displayed after 2s")
	}
	if c.TotalFrames() != uint32(r.movie.TotalFrames()) {
		t.Fatalf("TotalFrames = %d", c.TotalFrames())
	}
}

func TestFinishesAtMovieEnd(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	// Movie is 20s; allow slack for startup and rate dynamics.
	r.clk.Advance(30 * time.Second)
	if got := c.State(); got != client.StateFinished {
		t.Fatalf("state at movie end = %v, want finished", got)
	}
	cnt := c.Counters()
	if cnt.Displayed+cnt.Skipped() < uint64(r.movie.TotalFrames()) {
		t.Fatalf("displayed %d + skipped %d < %d total",
			cnt.Displayed, cnt.Skipped(), r.movie.TotalFrames())
	}
	// No stall spam after the end.
	stalls := cnt.Stalls
	r.clk.Advance(5 * time.Second)
	if got := c.Counters().Stalls; got != stalls {
		t.Fatalf("stalls kept counting after the movie ended: %d → %d", stalls, got)
	}
}

func TestOpenRetriesAcrossServers(t *testing.T) {
	r := newRig(t)
	// "ghost" was never started; the client must fall through to s1.
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "ghost", "s1")
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(5 * time.Second)
	if got := c.State(); got != client.StateWatching {
		t.Fatalf("state = %v after retrying past a dead server", got)
	}
	if got := c.Stats().OpensSent; got < 2 {
		t.Fatalf("OpensSent = %d, want ≥ 2 (one retry)", got)
	}
}

func TestUnknownMovie(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Watch("no-such-movie"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(3 * time.Second)
	// The server keeps answering "not found"; the client keeps trying
	// (there might be another server later) but never reaches watching.
	if got := c.State(); got != client.StateOpening {
		t.Fatalf("state = %v, want still opening", got)
	}
}

func TestVCRBeforeOpenFails(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Pause(); err == nil {
		t.Fatal("Pause before Watch succeeded")
	}
	if err := c.Seek(100); err == nil {
		t.Fatal("Seek before Watch succeeded")
	}
}

func TestFlowControlEmission(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(10 * time.Second)
	st := c.Stats()
	if st.FlowSent == 0 {
		t.Fatal("no flow-control requests sent in 10s of playback")
	}
	if st.EmergenciesSent == 0 {
		t.Fatal("startup (empty buffers) sent no emergency request")
	}
}

func TestPauseFreezesCounters(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(5 * time.Second)
	if err := c.Pause(); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(time.Second) // drain in-flight frames
	displayed := c.Counters().Displayed
	r.clk.Advance(10 * time.Second)
	if got := c.Counters().Displayed; got != displayed {
		t.Fatalf("displayed while paused: %d → %d", displayed, got)
	}
	if err := c.Resume(); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(3 * time.Second)
	if got := c.Counters().Displayed; got <= displayed {
		t.Fatal("nothing displayed after resume")
	}
}

func TestStopWatching(t *testing.T) {
	r := newRig(t)
	srv := r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(5 * time.Second)
	if err := c.StopWatching(); err != nil {
		t.Fatal(err)
	}
	if got := c.State(); got != client.StateStopped {
		t.Fatalf("state = %v", got)
	}
	r.clk.Advance(2 * time.Second)
	if got := len(srv.ActiveSessions()); got != 0 {
		t.Fatalf("server still has %d sessions after stop", got)
	}
	if err := c.Pause(); err == nil {
		t.Fatal("VCR op after StopWatching succeeded")
	}
}

func TestCloseDuringWatch(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(3 * time.Second)
	c.Close()
	// The simulation must keep running cleanly; the server eventually
	// notices the silent client via its session-group failure detector.
	r.clk.Advance(5 * time.Second)
}

func TestSeekFlushesAndRefills(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	c := r.client(t, "c1", "s1")
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(8 * time.Second)
	emergenciesBefore := c.Stats().EmergenciesSent
	if err := c.Seek(450); err != nil {
		t.Fatal(err)
	}
	// The flush is immediate.
	if occ := c.Occupancy().CombinedFrames; occ != 0 {
		t.Fatalf("occupancy right after seek = %d, want 0", occ)
	}
	r.clk.Advance(4 * time.Second)
	if got := c.Stats().EmergenciesSent; got <= emergenciesBefore {
		t.Fatal("seek did not trigger an emergency request")
	}
	if occ := c.Occupancy().CombinedFrames; occ < 20 {
		t.Fatalf("buffers did not refill after seek: %d frames", occ)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[client.State]string{
		client.StateIdle:     "idle",
		client.StateOpening:  "opening",
		client.StateWatching: "watching",
		client.StateFinished: "finished",
		client.StateStopped:  "stopped",
		client.State(99):     "State(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// TestJitterEstimator: a jittery WAN path must show materially more
// inter-arrival jitter than a quiet LAN.
func TestJitterEstimator(t *testing.T) {
	measure := func(prof netsim.Profile) time.Duration {
		clk := clock.NewVirtual(epoch)
		net := netsim.New(clk, 3, prof)
		movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 20 * time.Second, Seed: 2})
		cat := store.NewCatalog()
		cat.Add(movie)
		s, err := server.New(server.Config{
			ID: "s1", Clock: clk, Network: net, Catalog: cat, Peers: []string{"s1"},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		c, err := client.New(client.Config{ID: "c1", Clock: clk, Network: net, Servers: []string{"s1"}})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Watch("feature"); err != nil {
			t.Fatal(err)
		}
		clk.Advance(15 * time.Second)
		return c.Jitter()
	}

	lan := measure(netsim.LAN())
	wan := measure(netsim.WAN())
	t.Logf("jitter: LAN=%v WAN=%v", lan, wan)
	if lan > 2*time.Millisecond {
		t.Errorf("LAN jitter = %v, want ≈ 0", lan)
	}
	if wan < 2*lan+time.Millisecond {
		t.Errorf("WAN jitter (%v) not clearly above LAN (%v)", wan, lan)
	}
}

// TestOpenRetryBackoff: against a service that never answers, the Open
// anycast must back off exponentially (capped) instead of hammering every
// second. In 40 simulated seconds the fixed-1s schedule would fire ~40
// opens; the capped-backoff schedule fires well under a dozen.
func TestOpenRetryBackoff(t *testing.T) {
	r := newRig(t)
	// Bind the server address but run no server: opens vanish into it.
	if _, err := r.net.NewEndpoint("s1"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("c1", r.clk.Now)
	c, err := client.New(client.Config{
		ID: "c1", Clock: r.clk, Network: r.net, Servers: []string{"s1"}, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Watch(r.movie.ID()); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(40 * time.Second)

	st := c.Stats()
	if st.OpensSent < 5 || st.OpensSent > 12 {
		t.Errorf("OpensSent = %d over 40s; want 5..12 (capped backoff)", st.OpensSent)
	}
	if st.OpenRetries != st.OpensSent-1 {
		t.Errorf("OpenRetries = %d, OpensSent = %d; every open but the first is a retry",
			st.OpenRetries, st.OpensSent)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["client.open_retries"]; got != st.OpenRetries {
		t.Errorf("client.open_retries counter = %d, stats say %d", got, st.OpenRetries)
	}
	if got := c.State(); got != client.StateOpening {
		t.Errorf("state = %v, still opening expected", got)
	}
}

// TestReopenAfterLinkLoss: the client loses its only server mid-movie to a
// (bidirectional) link failure longer than StarveTimeout. It must notice
// the starvation, count a reopen, and resume playback when the link heals.
func TestReopenAfterLinkLoss(t *testing.T) {
	r := newRig(t)
	r.server(t, "s1", "s1")
	reg := obs.NewRegistry("c1", r.clk.Now)
	c, err := client.New(client.Config{
		ID: "c1", Clock: r.clk, Network: r.net, Servers: []string{"s1"}, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Watch(r.movie.ID()); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(5 * time.Second)
	beforeCut := c.Counters().Displayed
	if beforeCut == 0 {
		t.Fatal("no frames displayed before the cut")
	}

	r.net.SetLinkDown("c1", "s1", true)
	r.clk.Advance(10 * time.Second)
	if got := c.Stats().Reopens; got == 0 {
		t.Fatal("client never reopened across a 10s link outage")
	}
	atHeal := c.Counters().Displayed

	r.net.SetLinkDown("c1", "s1", false)
	r.clk.Advance(10 * time.Second)
	after := c.Counters().Displayed
	if after <= atHeal {
		t.Fatalf("playback did not resume after heal: %d -> %d displayed", atHeal, after)
	}
	if got := reg.Snapshot().Counters["client.reopens"]; got != c.Stats().Reopens {
		t.Errorf("client.reopens counter = %d, stats say %d", got, c.Stats().Reopens)
	}
	// The starvation window plus recovery costs display continuity but not
	// correctness: no I frame may be dropped by overflow.
	if got := c.Counters().OverflowDroppedI; got != 0 {
		t.Errorf("%d I frames dropped on overflow across the outage", got)
	}
}
