// Package client implements the paper's VoD client: it contacts the
// abstract server group to open a movie (never a particular server), joins
// its per-session group for control traffic, buffers arriving frames
// through the two-level pipeline of package buffer, displays at the movie's
// frame rate, and drives the Figure 2 flow-control policy. The client is
// deliberately oblivious to which server is transmitting — server crashes
// and migrations are invisible except as brief buffer-occupancy dips.
package client

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/congress"
	"repro/internal/flowctl"
	"repro/internal/gcs"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/transport"
	"repro/internal/wire"
)

// State is the client's session lifecycle state.
type State int

// The client states.
const (
	StateIdle State = iota + 1
	StateOpening
	StateWatching
	StateFinished // the whole movie has been displayed
	StateStopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateOpening:
		return "opening"
	case StateWatching:
		return "watching"
	case StateFinished:
		return "finished"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config configures a Client.
type Config struct {
	// ID is the client's name and transport address.
	ID string
	// Clock and Network supply the runtime environment.
	Clock   clock.Clock
	Network transport.Network
	// Servers is the bootstrap list of VoD server addresses. The client
	// anycasts its Open to them in turn until one responds. May be empty
	// when Directory is set. The client retains the slice read-only, so
	// one list can back any number of clients; callers must not mutate it
	// after New.
	Servers []string
	// Directory, when set, is a CONGRESS directory address: at Watch time
	// the client resolves the server-group name there instead of (or in
	// addition to) the static Servers list — the client stays oblivious
	// to server identities, as §5.1 requires.
	Directory string
	// Buffer sizes the two-level pipeline (paper defaults if zero).
	Buffer buffer.Config
	// Flow is the flow-control parameter set (paper defaults if zero).
	Flow flowctl.Params
	// OpenTimeout is how long to wait for an OpenReply before trying the
	// next server (default 1s). Each further retry doubles the wait, up to
	// OpenBackoffCap, plus up to 25% deterministic jitter seeded from the
	// client ID — so a fleet of clients cut off by the same fault does not
	// retry in lockstep.
	OpenTimeout time.Duration
	// OpenBackoffCap bounds the open-retry backoff (default 8s).
	OpenBackoffCap time.Duration
	// RefusalBackoff is the wait after the first refused Open in a cycle
	// (default 10ms — the next server in the list may have room). Each
	// consecutive refusal doubles the wait up to RefusalBackoffCap, with
	// 25% seeded jitter after the first; a Retry-After hint from the
	// server sets the floor. Refusals are answers, not timeouts, so this
	// schedule is separate from the OpenTimeout no-reply backoff.
	RefusalBackoff time.Duration
	// RefusalBackoffCap bounds the refusal backoff (default 2s).
	RefusalBackoffCap time.Duration
	// Class is the traffic class carried on every Open (default reserved;
	// reserved-class Opens are byte-identical to pre-class ones).
	Class wire.Class
	// Lease switches the client to two-tier membership (DESIGN §12): it
	// never joins its session group — instead it leases its session from
	// the serving server, renewing every TTL/3 on the injected clock.
	// Flow control and VCR commands go point-to-point to that server, and
	// a full TTL of ack silence triggers the same Open re-anycast as
	// playback starvation, with the takeover flag set. The video path is
	// unchanged (frames were always point-to-point).
	Lease bool
	// Placement, when set (lease mode), is the shared consistent-hash
	// ring of server IDs. The Open anycast walks servers in the movie's
	// ring order, so the first probe normally lands on the owner and the
	// first takeover retry lands on its successor — no broadcast, no
	// directory round-trip.
	Placement *placement.Ring
	// StarveTimeout is how long playback may fail to progress (while
	// watching, unpaused and unfinished) before the client decides its
	// session is dead — a crashed-and-gone server, a network partition —
	// and re-anycasts the Open to the server group (default 3s). The
	// re-anycast reaches whichever server now owns (or adopts) the session,
	// and a Seek resynchronizes the stream to the client's position.
	StarveTimeout time.Duration
	// GCS optionally overrides group-communication timing.
	GCS gcs.Config
	// Obs, when set, receives the client.* counters, occupancy gauges and
	// trace events, and is forwarded to the embedded GCS process.
	Obs *obs.Registry
}

func (c *Config) fillDefaults() error {
	if c.ID == "" || c.Clock == nil || c.Network == nil {
		return fmt.Errorf("client: ID, Clock and Network are required")
	}
	if len(c.Servers) == 0 && c.Directory == "" {
		return fmt.Errorf("client %s: no servers and no directory configured", c.ID)
	}
	if c.Buffer.SoftwareCapacity == 0 {
		c.Buffer = buffer.DefaultConfig()
	}
	if c.Flow.CombinedCapacity == 0 {
		c.Flow = flowctl.DefaultParams()
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = time.Second
	}
	if c.OpenBackoffCap <= 0 {
		c.OpenBackoffCap = 8 * time.Second
	}
	if c.RefusalBackoff <= 0 {
		c.RefusalBackoff = 10 * time.Millisecond
	}
	if c.RefusalBackoffCap <= 0 {
		c.RefusalBackoffCap = 2 * time.Second
	}
	if c.StarveTimeout <= 0 {
		c.StarveTimeout = 3 * time.Second
	}
	return c.Flow.Validate()
}

// Stats counts the client's control-plane activity.
type Stats struct {
	OpensSent       uint64 // Open anycasts (including retries)
	OpenRetries     uint64 // the retries among them (timer-driven re-sends)
	OpenRefusals    uint64 // OK=false OpenReplies received (admission refusals)
	Reopens         uint64 // starvation-triggered session re-establishments
	FlowSent        uint64 // flow-control requests multicast
	EmergenciesSent uint64 // the emergency requests among them
	VCRSent         uint64 // VCR commands multicast
}

// clientCounters mirror the interesting playback events into the obs
// registry. The buffer package keeps its own cumulative Counters; the
// client publishes deltas from displayTick so the pipeline stays
// observability-free.
type clientCounters struct {
	opensSent   *obs.Counter // client.opens_sent
	openRetries *obs.Counter // client.open_retries
	reopens     *obs.Counter // client.reopens
	flowSent    *obs.Counter // client.flow_sent
	emergSent   *obs.Counter // client.emergencies_sent
	vcrSent     *obs.Counter // client.vcr_sent
	framesRecv  *obs.Counter // client.frames_received
	stalls      *obs.Counter // client.stalls
	lateFrames  *obs.Counter // client.late_frames
	skipped     *obs.Counter // client.skipped_frames
	strayFrames *obs.Counter // client.stray_frames (dropped while reopening)

	swOcc       *obs.Gauge // client.sw_occupancy (frames)
	combinedOcc *obs.Gauge // client.combined_occupancy (frames)
	hwBytes     *obs.Gauge // client.hw_occupancy_bytes
}

// Client is one VoD client instance.
type Client struct {
	cfg  Config
	mux  *transport.Mux
	proc *gcs.Process
	vid  transport.Endpoint
	ctr  clientCounters

	resolver *congress.Resolver

	mu          sync.Mutex
	state       State
	movie       string
	servers     []string // current server list (static + resolved)
	totalFrames uint32
	fps         int
	pipeline    *buffer.Pipeline
	policy      *flowctl.Policy
	session     *gcs.Member
	displayTask *clock.Periodic
	openTimer   clock.Timer
	serverIdx   int
	paused      bool
	stats       Stats

	// Open-retry backoff and starvation-recovery state. rng supplies the
	// retry jitter, seeded from the client ID so virtual-clock runs are
	// deterministic while distinct clients desynchronize. It is created
	// lazily at the first draw (rngLocked): a healthy viewer never retries,
	// and the generator's ~5 KB state times ten thousand viewers was a
	// measurable slice of the scale table's footprint.
	rng         *rand.Rand
	openAttempt int  // timer-driven retries since the last reply
	refusals    int  // consecutive refused Opens in this open cycle
	reopening   bool // a starvation re-anycast is in flight
	starveTask  *clock.Periodic
	lastShown   uint64    // Displayed count at the last progress check
	lastMoved   time.Time // when playback last made progress

	// Last buffer.Counters values already published to obs; displayTick
	// adds only the delta since the previous tick.
	obsSeen buffer.Counters

	// Inter-arrival jitter estimate (RFC 3550-style EWMA over the
	// deviation of consecutive-frame arrival intervals from the nominal
	// frame period) — quantifies §2's "bounded jitter" concern.
	lastArrival time.Time
	lastIndex   uint32
	jitter      time.Duration

	// frameIn is the reusable decode target for inbound video frames,
	// guarded by mu. Nothing past onVideo retains it or its payload, so a
	// warm client decodes a frame with zero allocations (the movie string is
	// reused across the whole session).
	frameIn wire.Frame

	// fcOut/fcEnc build outbound flow-control requests without allocating.
	// They are used only by onVideo, whose invocations are sequential (one
	// transport dispatch goroutine); the encoded packet is fully copied by
	// Multicast before the next frame can arrive.
	fcOut wire.FlowControl
	fcEnc wire.Encoder

	// sendOpenFn is c.sendOpen bound once: the open-retry timer re-arms on
	// every attempt and every refusal, and a fresh method-value closure per
	// arm is pure garbage.
	sendOpenFn func()

	// orIn is the reusable OpenReply decode target, guarded by mu. A client
	// waiting out a full cluster receives a stream of identical at-capacity
	// refusals; decoding them into scratch costs nothing.
	orIn wire.OpenReply

	// Lease-mode state (cfg.Lease): the keeper renews the session lease,
	// serving is the server that last accepted our Open (renew/control
	// target), and the scratch fields make the renew path allocation-free.
	// All guarded by mu except the keeper's own internals.
	keeper   *lease.Keeper
	serving  gcs.ProcessID
	ackIn    lease.Ack
	renewOut lease.Renew
	renewBuf []byte
}

// dirEvent defers one direct (point-to-point) GCS payload onto the clock.
// The payload must be copied out of the transport receive buffer before the
// handler returns, and the deferral itself used to cost a fresh slice plus
// two closures per reply; the pool reduces a warm cycle to a copy.
type dirEvent struct {
	c    *Client
	from gcs.ProcessID
	buf  []byte
	fire func() // bound once to run
}

var dirEventPool sync.Pool

func init() {
	// New assigned here, not in the composite literal, so fire can refer to
	// the pool's own element without an initialization cycle.
	dirEventPool.New = func() any {
		e := &dirEvent{}
		e.fire = e.run
		return e
	}
}

func (e *dirEvent) run() {
	c, from := e.c, e.from
	c.onDirect(from, e.buf)
	// onDirect never retains the payload (DecodeOpenReplyInto copies the
	// few strings it keeps), so the buffer can be reused immediately.
	e.c, e.from, e.buf = nil, "", e.buf[:0]
	dirEventPool.Put(e)
}

// New creates a client bound to its own endpoint. Call Watch to start.
func New(cfg Config) (*Client, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ep, err := cfg.Network.NewEndpoint(transport.Addr(cfg.ID))
	if err != nil {
		return nil, fmt.Errorf("client %s: %w", cfg.ID, err)
	}
	mux := transport.NewMux(ep)
	gcfg := cfg.GCS
	gcfg.Clock = cfg.Clock
	gcfg.Endpoint = mux.Channel(transport.ChannelGCS)
	gcfg.Obs = cfg.Obs

	c := &Client{
		cfg:     cfg,
		mux:     mux,
		proc:    gcs.NewProcess(gcfg),
		vid:     mux.Channel(transport.ChannelVideo),
		state:   StateIdle,
		servers: cfg.Servers,
		ctr: clientCounters{
			opensSent:   cfg.Obs.Counter("client.opens_sent"),
			openRetries: cfg.Obs.Counter("client.open_retries"),
			reopens:     cfg.Obs.Counter("client.reopens"),
			flowSent:    cfg.Obs.Counter("client.flow_sent"),
			emergSent:   cfg.Obs.Counter("client.emergencies_sent"),
			vcrSent:     cfg.Obs.Counter("client.vcr_sent"),
			framesRecv:  cfg.Obs.Counter("client.frames_received"),
			stalls:      cfg.Obs.Counter("client.stalls"),
			lateFrames:  cfg.Obs.Counter("client.late_frames"),
			skipped:     cfg.Obs.Counter("client.skipped_frames"),
			strayFrames: cfg.Obs.Counter("client.stray_frames"),
			swOcc:       cfg.Obs.Gauge("client.sw_occupancy"),
			combinedOcc: cfg.Obs.Gauge("client.combined_occupancy"),
			hwBytes:     cfg.Obs.Gauge("client.hw_occupancy_bytes"),
		},
	}
	if cfg.Directory != "" {
		c.resolver = congress.NewResolver(cfg.Clock,
			mux.Channel(transport.ChannelDirectory), transport.Addr(cfg.Directory))
	}
	c.sendOpenFn = c.sendOpen
	c.vid.SetHandler(c.onVideo)
	c.proc.SetDirectHandler(func(from gcs.ProcessID, payload []byte) {
		e := dirEventPool.Get().(*dirEvent)
		e.c, e.from = c, from
		e.buf = append(e.buf[:0], payload...)
		cfg.Clock.AfterFunc(0, e.fire)
	})
	return c, nil
}

// ID returns the client identifier.
func (c *Client) ID() string { return c.cfg.ID }

// Watch requests the movie from the VoD service. The client joins its
// session group first — the serving server joins the same group to form
// the two-way connection — then anycasts the Open to the server group.
func (c *Client) Watch(movieID string) error {
	c.mu.Lock()
	switch c.state {
	case StateIdle, StateStopped, StateFinished:
		// A stopped or finished client may watch again; its session state
		// (pipeline, policy) is reused in place rather than reallocated,
		// so a fleet cycling through titles — or a chaos harness
		// restarting viewers — pays the setup allocations once.
	default:
		c.mu.Unlock()
		return fmt.Errorf("client %s: cannot watch in state %v", c.cfg.ID, c.state)
	}
	c.state = StateOpening
	c.movie = movieID
	if c.pipeline == nil {
		c.pipeline = buffer.New(c.cfg.Buffer)
	} else {
		c.pipeline.Reset(0)
	}
	if c.policy == nil {
		c.policy = flowctl.NewPolicy(c.cfg.Flow)
	} else {
		c.policy.Reset(c.cfg.Flow)
	}
	c.paused = false
	c.reopening = false
	c.openAttempt = 0
	c.refusals = 0
	if c.cfg.Lease {
		c.serving = ""
		c.orderServersLocked()
	}
	rejoined := c.session != nil // finished-then-rewatch: still a member
	c.mu.Unlock()

	if !rejoined && !c.cfg.Lease {
		session, err := c.proc.Join(SessionGroupName(c.cfg.ID), gcs.Handlers{})
		if err != nil {
			return fmt.Errorf("client %s: joining session group: %w", c.cfg.ID, err)
		}
		c.mu.Lock()
		c.session = session
		c.mu.Unlock()
	}

	if c.resolver != nil {
		c.resolveThenOpen()
	} else {
		c.sendOpen()
	}
	return nil
}

// leaseOwnerFanout is how many ring owners a leased client asks the
// directory for: the movie's owner plus enough successors that a crashed
// owner (or two) still leaves a resolved target to re-anycast to.
const leaseOwnerFanout = 4

// resolveThenOpen asks the directory for servers before opening. In lease
// mode it resolves the movie's ring owners (ResolveKey), so the directory
// answers with the placement order instead of the whole group; otherwise
// it resolves the full server-group membership. Failures fall back to the
// static list (if any) or retry.
func (c *Client) resolveThenOpen() {
	if c.cfg.Lease {
		c.mu.Lock()
		movie := c.movie
		c.mu.Unlock()
		c.resolver.ResolveKey("vod.servers", movie, leaseOwnerFanout, 5, c.applyResolved)
		return
	}
	c.resolver.Resolve("vod.servers", 5, c.applyResolved)
}

// applyResolved installs a directory answer as the anycast server list
// and opens. An empty answer falls back to the static list, or re-asks
// the directory after a beat (no server may have registered yet).
func (c *Client) applyResolved(addrs []transport.Addr) {
	c.mu.Lock()
	if !c.openActiveLocked() {
		c.mu.Unlock()
		return
	}
	if len(addrs) > 0 {
		resolved := make([]string, 0, len(addrs))
		for _, a := range addrs {
			resolved = append(resolved, string(a))
		}
		// Resolved servers first — they are known live — then any
		// static fallbacks not already listed.
		for _, s := range c.cfg.Servers {
			if !containsString(resolved, s) {
				resolved = append(resolved, s)
			}
		}
		c.servers = resolved
		c.serverIdx = 0
		c.mu.Unlock()
		c.sendOpen()
		return
	}
	if len(c.cfg.Servers) > 0 {
		c.servers = c.cfg.Servers
		c.mu.Unlock()
		c.sendOpen()
		return
	}
	c.mu.Unlock()
	// Nothing to try yet: the directory may be empty because no
	// server registered; ask again shortly.
	c.cfg.Clock.AfterFunc(time.Second, c.resolveThenOpen)
}

// orderServersLocked reorders the anycast list by the movie's consistent-
// hash placement: ring owners in order, then any bootstrap servers not on
// the ring. The first Open probe lands on the owner, and a takeover retry
// walks to its successor — the same order the congress directory would
// answer with. Caller holds c.mu.
func (c *Client) orderServersLocked() {
	ring := c.cfg.Placement
	if ring == nil || ring.Len() == 0 {
		return
	}
	// Order returns a cached slice shared by every client of the movie;
	// c.servers is only ever read or reassigned whole, so aliasing it is
	// safe — but it must be copied before appending off-ring bootstraps.
	ordered := ring.Order(c.movie)
	shared := true
	for _, s := range c.cfg.Servers {
		if !containsString(ordered, s) {
			if shared {
				ordered = append(make([]string, 0, len(ordered)+len(c.cfg.Servers)), ordered...)
				shared = false
			}
			ordered = append(ordered, s)
		}
	}
	c.servers = ordered
	c.serverIdx = 0
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// SessionGroupName returns the session group for a client ID. It mirrors
// server.SessionGroup without importing the server package.
func SessionGroupName(clientID string) string { return "vod.session." + clientID }

// rngLocked returns the client's jitter RNG, creating it on first use. The
// seed is a pure function of the client ID, so lazy creation draws the
// exact sequence the eager generator drew. Caller holds c.mu.
func (c *Client) rngLocked() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(seedFrom(c.cfg.ID)))
	}
	return c.rng
}

// seedFrom derives a deterministic RNG seed from an identity string.
func seedFrom(s string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return int64(h.Sum64())
}

// openActiveLocked reports whether an Open anycast cycle should proceed:
// either the initial open, or a starvation-triggered reopen mid-watch.
// Caller holds c.mu.
func (c *Client) openActiveLocked() bool {
	return c.state == StateOpening || (c.state == StateWatching && c.reopening)
}

// openDelayLocked computes the wait before the next Open retry: the
// configured timeout doubled per consecutive attempt, capped, with up to
// 25% jitter on retries. The first attempt waits exactly OpenTimeout, so a
// healthy open is as prompt as ever. Caller holds c.mu.
func (c *Client) openDelayLocked() time.Duration {
	d := c.cfg.OpenTimeout
	for i := 0; i < c.openAttempt && d < c.cfg.OpenBackoffCap; i++ {
		d *= 2
	}
	if d > c.cfg.OpenBackoffCap {
		d = c.cfg.OpenBackoffCap
	}
	if c.openAttempt > 0 {
		d += time.Duration(c.rngLocked().Int63n(int64(d)/4 + 1))
	}
	return d
}

// refusalDelayLocked computes the wait after a refused Open. The first
// refusal in a cycle waits exactly RefusalBackoff with no jitter draw (so a
// lone refusal perturbs nothing); consecutive refusals double the wait up to
// RefusalBackoffCap with 25% seeded jitter, and the server's Retry-After
// hint sets the floor — the server knows its own load better than we do.
// Caller holds c.mu.
func (c *Client) refusalDelayLocked(hintMs uint32) time.Duration {
	d := c.cfg.RefusalBackoff
	for i := 0; i < c.refusals && d < c.cfg.RefusalBackoffCap; i++ {
		d *= 2
	}
	if d > c.cfg.RefusalBackoffCap {
		d = c.cfg.RefusalBackoffCap
	}
	if hint := time.Duration(hintMs) * time.Millisecond; d < hint {
		d = hint
	}
	if c.refusals > 0 || hintMs != 0 {
		d += time.Duration(c.rngLocked().Int63n(int64(d)/4 + 1))
	}
	return d
}

// sendOpen anycasts the Open to the current bootstrap server and arms the
// retry timer (capped exponential backoff across consecutive attempts).
func (c *Client) sendOpen() {
	c.mu.Lock()
	if !c.openActiveLocked() {
		c.mu.Unlock()
		return
	}
	if len(c.servers) == 0 {
		c.mu.Unlock()
		c.resolveThenOpen()
		return
	}
	target := transport.Addr(c.servers[c.serverIdx%len(c.servers)])
	c.serverIdx++
	c.stats.OpensSent++
	c.ctr.opensSent.Inc()
	if c.openAttempt > 0 {
		c.stats.OpenRetries++
		c.ctr.openRetries.Inc()
	}
	open := &wire.Open{
		ClientID:   c.cfg.ID,
		ClientAddr: c.cfg.ID,
		Movie:      c.movie,
		Class:      c.cfg.Class,
		Lease:      c.cfg.Lease,
		Takeover:   c.cfg.Lease && c.reopening,
	}
	if c.openTimer != nil {
		c.openTimer.Stop()
	}
	c.openTimer = c.cfg.Clock.AfterFunc(c.openDelayLocked(), c.sendOpenFn)
	c.openAttempt++
	c.mu.Unlock()

	_ = c.proc.Anycast(target, "vod.servers", wire.Encode(open))
}

// onDirect handles point-to-point replies — the OpenReply, and in lease
// mode the lease Acks confirming our renewals.
func (c *Client) onDirect(from gcs.ProcessID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if payload[0] == lease.KindAck {
		c.onLeaseAck(payload)
		return
	}
	if wire.Kind(payload[0]) != wire.KindOpenReply {
		return
	}
	c.mu.Lock()
	reply := &c.orIn
	if err := wire.DecodeOpenReplyInto(reply, payload); err != nil {
		c.mu.Unlock()
		return
	}
	if reply.Movie != c.movie || !c.openActiveLocked() {
		c.mu.Unlock()
		return
	}
	if !reply.OK {
		// This server cannot serve the movie (or refused admission); the
		// retry timer will try the next one, on the refusal cycle's own
		// backoff schedule.
		c.stats.OpenRefusals++
		d := c.refusalDelayLocked(reply.RetryAfterMs)
		c.refusals++
		if c.openTimer != nil {
			c.openTimer.Stop()
		}
		c.openTimer = c.cfg.Clock.AfterFunc(d, c.sendOpenFn)
		c.mu.Unlock()
		return
	}
	if c.state == StateWatching {
		// A reopen succeeded: some server (the original one across a healed
		// partition, or a fresh owner) acknowledged the session. Resync its
		// stream position to ours — without the seek a new owner would
		// start from frame zero, and a surviving owner would keep streaming
		// from wherever the partition left it.
		c.reopening = false
		c.openAttempt = 0
		c.refusals = 0
		if c.openTimer != nil {
			c.openTimer.Stop()
			c.openTimer = nil
		}
		if c.cfg.Lease {
			// The acceptor — original owner or adopter — is the lease
			// holder now; renewals and control traffic follow it.
			c.serving = from
			c.ensureKeeperLocked(reply.LeaseTTLMs)
		}
		next := c.pipeline.NextIndex()
		paused := c.paused
		c.cfg.Obs.Event("client.reopen_ok", fmt.Sprintf("%s resync at frame %d", c.cfg.ID, next))
		c.mu.Unlock()
		// Re-assert the playback state before the resync: if an earlier
		// Resume was lost to the same fault that starved us, the server
		// still believes the session is paused and would ignore the Seek's
		// pacing restart.
		if !paused {
			_ = c.Resume()
		}
		_ = c.Seek(next)
		return
	}
	c.state = StateWatching
	c.totalFrames = reply.TotalFrames
	c.fps = int(reply.FPS)
	c.openAttempt = 0
	c.refusals = 0
	if c.openTimer != nil {
		c.openTimer.Stop()
		c.openTimer = nil
	}
	if c.cfg.Lease {
		c.serving = from
		c.ensureKeeperLocked(reply.LeaseTTLMs)
	}
	period := time.Second / time.Duration(c.fps)
	c.displayTask = clock.Every(c.cfg.Clock, period, c.displayTick)
	// Arm the starvation watchdog: if playback stops progressing for
	// StarveTimeout the session is presumed dead and reopened.
	c.lastShown = 0
	c.lastMoved = c.cfg.Clock.Now()
	if c.starveTask == nil {
		c.starveTask = clock.Every(c.cfg.Clock, c.cfg.StarveTimeout/4, c.starveTick)
	}
	c.mu.Unlock()
}

// starveTick is the starvation watchdog: while watching, playback must
// advance the Displayed counter (or be deliberately paused). When it fails
// to for StarveTimeout — the serving server died with no peer to take over,
// or a partition separates the client from the whole cluster — the client
// stops waiting on the dead session and re-anycasts the Open to the server
// group, with the same capped backoff as the initial open (§5.1: the
// client knows only the abstract service, so recovery is just asking it
// again).
func (c *Client) starveTick() {
	c.mu.Lock()
	if c.state != StateWatching {
		c.mu.Unlock()
		return
	}
	now := c.cfg.Clock.Now()
	shown := c.pipeline.Counters().Displayed
	if shown != c.lastShown || c.paused {
		c.lastShown = shown
		c.lastMoved = now
		c.mu.Unlock()
		return
	}
	if c.reopening || now.Sub(c.lastMoved) < c.cfg.StarveTimeout {
		c.mu.Unlock()
		return
	}
	c.reopening = true
	c.openAttempt = 0
	c.refusals = 0
	c.lastMoved = now // next starvation window starts fresh
	c.stats.Reopens++
	c.ctr.reopens.Inc()
	c.cfg.Obs.Event("client.reopen",
		fmt.Sprintf("%s starved at frame %d", c.cfg.ID, c.pipeline.NextIndex()))
	c.mu.Unlock()
	c.sendOpen()
}

// ensureKeeperLocked (re)arms the lease keeper after an accepted Open.
// The TTL comes from the server's reply (zero falls back to the package
// default); a surviving keeper is just touched — the fresh OpenReply is
// as good a liveness proof as an Ack. Caller holds c.mu.
func (c *Client) ensureKeeperLocked(ttlMs uint32) {
	if c.keeper != nil {
		c.keeper.Touch()
		return
	}
	ttl := time.Duration(ttlMs) * time.Millisecond
	c.keeper = lease.NewKeeper(c.cfg.Clock, ttl, c.sendRenew, c.onLeaseLost)
}

// onLeaseAck records the server's lease confirmation.
func (c *Client) onLeaseAck(payload []byte) {
	c.mu.Lock()
	k := c.keeper
	if k == nil || lease.DecodeAckInto(&c.ackIn, payload) != nil ||
		c.ackIn.ClientID != c.cfg.ID {
		c.mu.Unlock()
		return
	}
	seq := c.ackIn.Seq
	c.mu.Unlock()
	k.Ack(seq)
}

// sendRenew transmits one lease renewal to the serving server (keeper
// callback, called without the keeper lock). Renewals continue after the
// movie finishes — the session stays leased until StopWatching or Close
// releases it — but stop in any other state.
func (c *Client) sendRenew(seq uint64) {
	c.mu.Lock()
	serving := c.serving
	if serving == "" || (c.state != StateWatching && c.state != StateFinished) {
		c.mu.Unlock()
		return
	}
	c.renewOut.ClientID = c.cfg.ID
	c.renewOut.Seq = seq
	pkt := lease.AppendRenew(c.renewBuf[:0], &c.renewOut)
	c.renewBuf = pkt[:0]
	// Send under c.mu: the gcs process never calls back into the client
	// while holding its own lock, so the order c.mu -> proc is one-way;
	// and pkt aliases renewBuf, which the next renewal reuses.
	_ = c.proc.Send(serving, pkt)
	c.mu.Unlock()
}

// onLeaseLost fires when a full TTL passes without an Ack: the serving
// server (or the path to it) is gone. Recovery is exactly the starvation
// path — re-anycast the Open, takeover flag set — but it triggers on
// control-plane silence, typically well before the playback buffer runs
// dry and the starvation watchdog would notice.
func (c *Client) onLeaseLost() {
	c.mu.Lock()
	if c.state != StateWatching || c.reopening {
		c.mu.Unlock()
		return
	}
	c.reopening = true
	c.openAttempt = 0
	c.refusals = 0
	c.lastMoved = c.cfg.Clock.Now() // the starvation window starts fresh too
	c.stats.Reopens++
	c.ctr.reopens.Inc()
	c.cfg.Obs.Event("client.lease_lost",
		fmt.Sprintf("%s reopening at frame %d", c.cfg.ID, c.pipeline.NextIndex()))
	c.mu.Unlock()
	c.sendOpen()
}

// onVideo handles an arriving video frame: buffer it and run the flow
// control policy on the new occupancy.
func (c *Client) onVideo(_ transport.Addr, payload []byte) {
	c.mu.Lock()
	// Decode into the per-client scratch frame (under mu: concurrent
	// deliveries are possible on a real clock). Non-frame or malformed
	// datagrams on the video channel are dropped, as before.
	frame := &c.frameIn
	if err := wire.DecodeFrameInto(frame, payload); err != nil {
		c.mu.Unlock()
		return
	}
	if c.state != StateWatching || frame.Movie != c.movie {
		c.mu.Unlock()
		return
	}
	if c.reopening {
		// While renegotiating a starved session, a far-future frame is a
		// server streaming into the void of the old one (it kept
		// transmitting across the partition); accepting it would jump
		// playback past every frame lost in between. Drop it — the
		// reopen's Seek rewinds the server to our position instead.
		if next := c.pipeline.NextIndex(); frame.Index >= next &&
			frame.Index-next > uint32(4*c.cfg.Buffer.SoftwareCapacity) {
			c.ctr.strayFrames.Inc()
			c.mu.Unlock()
			return
		}
	}
	now := c.cfg.Clock.Now()
	if c.fps > 0 && frame.Index == c.lastIndex+1 && !c.lastArrival.IsZero() {
		dev := now.Sub(c.lastArrival) - time.Second/time.Duration(c.fps)
		if dev < 0 {
			dev = -dev
		}
		c.jitter += (dev - c.jitter) / 16
	}
	c.lastArrival, c.lastIndex = now, frame.Index

	c.ctr.framesRecv.Inc()
	c.pipeline.Insert(buffer.FrameMeta{
		Index: frame.Index,
		Class: frame.Class,
		Size:  len(frame.Payload),
	})
	occ := c.pipeline.Occupancy()
	kind, due := c.policy.OnFrame(occ.CombinedFrames, occ.SoftwareFrames)
	var pkt []byte
	session := c.session
	serving := c.serving
	if due && (session != nil || serving != "") {
		c.stats.FlowSent++
		c.ctr.flowSent.Inc()
		if kind == wire.FlowEmergencyMajor || kind == wire.FlowEmergencyMinor {
			c.stats.EmergenciesSent++
			c.ctr.emergSent.Inc()
			c.cfg.Obs.Event("client.emergency", fmt.Sprintf("%s occ=%d", c.cfg.ID, occ.CombinedFrames))
		}
		c.fcOut = wire.FlowControl{
			ClientID:  c.cfg.ID,
			Request:   kind,
			Occupancy: uint16(occ.CombinedFrames),
		}
		pkt = c.fcEnc.Encode(&c.fcOut)
	}
	c.mu.Unlock()

	if pkt != nil {
		if session != nil {
			_ = session.Multicast(pkt)
		} else {
			// Lease mode: no session group exists; the request goes
			// point-to-point to the serving server, which routes it into
			// the same per-session flow-control logic.
			_ = c.proc.Send(serving, pkt)
		}
	}
}

// displayTick consumes one frame at the display rate. When the stream has
// reached the movie's end and the buffers are dry, the session is finished
// — empty ticks after that are not stalls.
func (c *Client) displayTick() {
	c.mu.Lock()
	if c.state != StateWatching || c.paused {
		c.mu.Unlock()
		return
	}
	if c.totalFrames > 0 && c.pipeline.NextIndex() >= c.totalFrames &&
		c.pipeline.Occupancy().CombinedFrames == 0 {
		c.state = StateFinished
		if c.displayTask != nil {
			c.displayTask.Stop()
		}
		if c.starveTask != nil {
			c.starveTask.Stop()
			c.starveTask = nil
		}
		c.mu.Unlock()
		return
	}
	c.pipeline.Tick()
	c.publishObsLocked()
	c.mu.Unlock()
}

// publishObsLocked folds the pipeline's cumulative counters into the obs
// registry as deltas and refreshes the occupancy gauges. Caller holds c.mu.
func (c *Client) publishObsLocked() {
	cur := c.pipeline.Counters()
	c.ctr.stalls.Add(cur.Stalls - c.obsSeen.Stalls)
	c.ctr.lateFrames.Add(cur.Late - c.obsSeen.Late)
	c.ctr.skipped.Add(cur.Skipped() - c.obsSeen.Skipped())
	c.obsSeen = cur

	occ := c.pipeline.Occupancy()
	c.ctr.swOcc.Set(int64(occ.SoftwareFrames))
	c.ctr.combinedOcc.Set(int64(occ.CombinedFrames))
	c.ctr.hwBytes.Set(int64(occ.HardwareBytes))
}

// sendVCR multicasts a VCR command into the session group — or, in lease
// mode, sends it point-to-point to the serving server.
func (c *Client) sendVCR(op wire.VCROp, arg uint32) error {
	c.mu.Lock()
	session := c.session
	serving := c.serving
	if c.state != StateWatching || (session == nil && serving == "") {
		c.mu.Unlock()
		return fmt.Errorf("client %s: no active session", c.cfg.ID)
	}
	c.stats.VCRSent++
	c.ctr.vcrSent.Inc()
	c.mu.Unlock()
	pkt := wire.Encode(&wire.VCR{ClientID: c.cfg.ID, Op: op, Arg: arg})
	if session != nil {
		return session.Multicast(pkt)
	}
	return c.proc.Send(serving, pkt)
}

// Pause freezes playback and tells the server to stop transmitting.
func (c *Client) Pause() error {
	if err := c.sendVCR(wire.VCRPause, 0); err != nil {
		return err
	}
	c.mu.Lock()
	c.paused = true
	c.mu.Unlock()
	return nil
}

// Resume restarts playback after a Pause.
func (c *Client) Resume() error {
	if err := c.sendVCR(wire.VCRResume, 0); err != nil {
		return err
	}
	c.mu.Lock()
	c.paused = false
	c.mu.Unlock()
	return nil
}

// Seek jumps to the given frame ("arbitrary random access", §3). The
// server snaps the target forward to the next I frame; the local pipeline
// flushes, which triggers the emergency refill exactly as §4.1 describes.
func (c *Client) Seek(frame uint32) error {
	if err := c.sendVCR(wire.VCRSeek, frame); err != nil {
		return err
	}
	c.mu.Lock()
	c.pipeline.Reset(frame)
	// A seek is a new irregularity period: the next critical-threshold
	// crossing must request a fresh emergency refill even if the trigger
	// was spent on a recent dip.
	c.policy.Rearm()
	c.mu.Unlock()
	return nil
}

// SetQuality caps the delivered frame rate (§4.3) — the server keeps all I
// frames and thins the rest, and the local display drops to the same rate
// (a constrained client repeats frames instead of stalling). Pass the
// movie's full rate (or higher) to restore full quality.
//
// Note on counters: frames the server withholds appear as GapSkipped in
// the buffer counters — they are index gaps by design. Compare against the
// server's FramesThinned stat when evaluating quality sessions.
func (c *Client) SetQuality(fps uint16) error {
	if err := c.sendVCR(wire.VCRQuality, uint32(fps)); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.displayTask != nil && c.fps > 0 {
		rate := int(fps)
		if rate <= 0 || rate > c.fps {
			rate = c.fps
		}
		c.displayTask.SetPeriod(time.Second / time.Duration(rate))
	}
	return nil
}

// StopWatching ends the session gracefully.
func (c *Client) StopWatching() error {
	err := c.sendVCR(wire.VCRStop, 0)
	c.mu.Lock()
	c.state = StateStopped
	if c.displayTask != nil {
		c.displayTask.Stop()
	}
	if c.starveTask != nil {
		c.starveTask.Stop()
		c.starveTask = nil
	}
	session := c.session
	c.session = nil
	keeper := c.keeper
	c.keeper = nil
	c.serving = ""
	c.mu.Unlock()
	if keeper != nil {
		keeper.Stop()
	}
	if session != nil {
		_ = session.Leave()
	}
	return err
}

// Close releases the client entirely.
func (c *Client) Close() {
	c.mu.Lock()
	if c.state == StateWatching {
		c.state = StateStopped
	}
	if c.displayTask != nil {
		c.displayTask.Stop()
	}
	if c.starveTask != nil {
		c.starveTask.Stop()
		c.starveTask = nil
	}
	if c.openTimer != nil {
		c.openTimer.Stop()
	}
	keeper := c.keeper
	c.keeper = nil
	c.serving = ""
	c.mu.Unlock()
	if keeper != nil {
		keeper.Stop()
	}
	c.proc.Close()
	_ = c.mux.Close()
}

// State returns the client's lifecycle state.
func (c *Client) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Counters returns the buffering counters (zero before Watch).
func (c *Client) Counters() buffer.Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pipeline == nil {
		return buffer.Counters{}
	}
	return c.pipeline.Counters()
}

// Occupancy returns the buffer occupancy snapshot (zero before Watch).
func (c *Client) Occupancy() buffer.Occupancy {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pipeline == nil {
		return buffer.Occupancy{}
	}
	return c.pipeline.Occupancy()
}

// Stats returns the control-plane counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// TotalFrames returns the movie length learned from the OpenReply.
func (c *Client) TotalFrames() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalFrames
}

// Jitter returns the smoothed inter-arrival jitter estimate: how far
// consecutive frames' arrival spacing deviates from the nominal frame
// period. Near zero on an idle LAN; tens of milliseconds on a multi-hop
// best-effort WAN (§2).
func (c *Client) Jitter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jitter
}
