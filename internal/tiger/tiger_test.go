package tiger

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/netsim"
)

func tigerRig(t *testing.T, cubs []string, mirrors int) (*clock.Virtual, *netsim.Network, *Service, *Receiver) {
	t.Helper()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 3, netsim.LAN())
	movie := mpeg.Generate("striped", mpeg.StreamConfig{Duration: 40 * time.Second, Seed: 1})
	svc, err := New(Config{
		Clock:   clk,
		Network: net,
		Cubs:    cubs,
		Mirrors: mirrors,
		Movie:   movie,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	recv, err := NewReceiver(clk, net, "viewer", movie.FPS())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(recv.Close)
	return clk, net, svc, recv
}

func TestStripedStreaming(t *testing.T) {
	clk, _, svc, recv := tigerRig(t, []string{"cub-0", "cub-1", "cub-2", "cub-3"}, 2)
	clk.Advance(time.Second) // heartbeats settle
	svc.StartStream("viewer")
	clk.Advance(10 * time.Second)

	c := recv.Counters()
	if c.Displayed < 280 {
		t.Fatalf("displayed %d frames in 10s, want ≈ 300", c.Displayed)
	}
	if c.GapSkipped != 0 {
		t.Fatalf("%d frames skipped with all cubs alive", c.GapSkipped)
	}
	if c.Late != 0 {
		t.Fatalf("%d duplicate frames with all cubs alive (two cubs sent the same block)", c.Late)
	}
}

func TestOneCubFailureIsMasked(t *testing.T) {
	clk, net, svc, recv := tigerRig(t, []string{"cub-0", "cub-1", "cub-2", "cub-3"}, 2)
	clk.Advance(time.Second)
	svc.StartStream("viewer")
	clk.Advance(5 * time.Second)

	svc.CrashCub("cub-1")
	net.Crash("cub-1")
	clk.Advance(10 * time.Second)

	c := recv.Counters()
	// A short detection window loses some frames, then the mirror covers.
	// ~15 frames (500ms of cub-1's quarter share ≈ 4) plus margin.
	if c.GapSkipped > 20 {
		t.Fatalf("one failure: %d frames skipped; mirroring should mask it", c.GapSkipped)
	}
	// Confirm the mirror is actually covering: continued smooth display.
	before := c.Displayed
	clk.Advance(5 * time.Second)
	if got := recv.Counters().Displayed - before; got < 140 {
		t.Fatalf("only %d frames displayed after single failure", got)
	}
}

func TestTwoAdjacentFailuresLoseBlocks(t *testing.T) {
	clk, net, svc, recv := tigerRig(t, []string{"cub-0", "cub-1", "cub-2", "cub-3"}, 2)
	clk.Advance(time.Second)
	svc.StartStream("viewer")
	clk.Advance(5 * time.Second)

	// cub-0's blocks are mirrored on cub-1: killing both loses 1/4 of all
	// frames for good — the Tiger failure mode §7 contrasts with
	// replication-k.
	svc.CrashCub("cub-0")
	net.Crash("cub-0")
	svc.CrashCub("cub-1")
	net.Crash("cub-1")
	clk.Advance(12 * time.Second)

	c := recv.Counters()
	// 12s × 30fps × 1/4 = 90 frames owned by cub-0 are gone, plus cub-1's
	// detection-window losses.
	if c.GapSkipped < 60 {
		t.Fatalf("two adjacent failures skipped only %d frames; expected sustained loss", c.GapSkipped)
	}
}

func TestTwoNonAdjacentFailuresAreMasked(t *testing.T) {
	clk, net, svc, recv := tigerRig(t, []string{"cub-0", "cub-1", "cub-2", "cub-3"}, 2)
	clk.Advance(time.Second)
	svc.StartStream("viewer")
	clk.Advance(5 * time.Second)

	// cub-0 (mirrored on cub-1) and cub-2 (mirrored on cub-3): disjoint
	// mirror chains — both failures are masked.
	svc.CrashCub("cub-0")
	net.Crash("cub-0")
	svc.CrashCub("cub-2")
	net.Crash("cub-2")
	clk.Advance(10 * time.Second)

	c := recv.Counters()
	if c.GapSkipped > 40 {
		t.Fatalf("non-adjacent failures skipped %d frames; mirrors should cover both", c.GapSkipped)
	}
}

func TestConfigValidation(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1, netsim.LAN())
	movie := mpeg.Generate("m", mpeg.StreamConfig{Duration: time.Second})
	cases := []Config{
		{Network: net, Cubs: []string{"a", "b"}, Movie: movie},                         // no clock
		{Clock: clk, Network: net, Cubs: []string{"a"}, Movie: movie},                  // one cub
		{Clock: clk, Network: net, Cubs: []string{"a", "b"}},                           // no movie
		{Clock: clk, Network: net, Cubs: []string{"a", "b"}, Movie: movie, Mirrors: 3}, // mirrors > cubs
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
