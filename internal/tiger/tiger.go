// Package tiger is a simplified reimplementation of the Microsoft Tiger
// video file server's delivery architecture [Bolosky et al., NOSSDAV'96 /
// SOSP'97] — the availability baseline the paper compares against in §7.
//
// Tiger stripes every movie across all servers ("cubs") and mirrors each
// block on the next servers in stripe order (declustered mirroring). A
// global schedule makes the cub owning a block transmit it at its display
// slot; when a cub fails, the mirrors of its blocks take over. The
// architecture thus smoothly tolerates ONE cub failure, but a second
// failure hitting an adjacent cub leaves blocks with no live copy — unlike
// the paper's replication-k design, which tolerates any k−1 failures.
//
// The model here keeps exactly the properties that comparison measures:
// striping, chained mirroring, schedule-driven transmission, and
// heartbeat-based failover between mirror chains. It deliberately omits
// Tiger's disk scheduling and network fan-in, which are orthogonal to the
// availability question.
package tiger

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config configures a Tiger service.
type Config struct {
	Clock   clock.Clock
	Network transport.Network
	// Cubs are the striped servers, in stripe order.
	Cubs []string
	// Mirrors is the number of copies of each frame: the owner plus
	// Mirrors−1 chained successors (default 2, Tiger's mirroring).
	Mirrors int
	// Movie is the striped content.
	Movie *mpeg.Movie
	// HeartbeatInterval / SuspectTimeout drive cub failure detection
	// (defaults 100ms / 500ms, matching the VoD service's detector).
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
}

func (c *Config) fillDefaults() error {
	if c.Clock == nil || c.Network == nil || c.Movie == nil {
		return fmt.Errorf("tiger: Clock, Network and Movie are required")
	}
	if len(c.Cubs) < 2 {
		return fmt.Errorf("tiger: need at least 2 cubs, got %d", len(c.Cubs))
	}
	if c.Mirrors <= 0 {
		c.Mirrors = 2
	}
	if c.Mirrors > len(c.Cubs) {
		return fmt.Errorf("tiger: %d mirrors with %d cubs", c.Mirrors, len(c.Cubs))
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 500 * time.Millisecond
	}
	return nil
}

// Service is a running Tiger deployment.
type Service struct {
	cfg  Config
	mu   sync.Mutex
	cubs map[string]*cub
}

// New builds and starts the cubs.
func New(cfg Config) (*Service, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	svc := &Service{cfg: cfg, cubs: make(map[string]*cub, len(cfg.Cubs))}
	for i, id := range cfg.Cubs {
		ep, err := cfg.Network.NewEndpoint(transport.Addr(id))
		if err != nil {
			return nil, fmt.Errorf("tiger: cub %s: %w", id, err)
		}
		c := &cub{
			svc:       svc,
			id:        id,
			index:     i,
			ep:        ep,
			lastHeard: make(map[string]time.Time),
			streams:   make(map[transport.Addr]*stream),
		}
		ep.SetHandler(c.onPacket)
		c.hbTask = clock.Every(cfg.Clock, cfg.HeartbeatInterval, c.heartbeat)
		svc.cubs[id] = c
	}
	return svc, nil
}

// StartStream makes every cub begin the schedule for one client from
// frame 0 at the movie's frame rate. (Tiger's schedule slots; all cubs
// share the clock, so their frame counters advance in lockstep.)
func (s *Service) StartStream(clientAddr transport.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.cubs {
		c.startStream(clientAddr)
	}
}

// CrashCub fail-stops one cub: its schedule and heartbeats halt and its
// endpoint closes, so peers see silence and fail its blocks over.
func (s *Service) CrashCub(id string) {
	s.mu.Lock()
	c := s.cubs[id]
	delete(s.cubs, id)
	s.mu.Unlock()
	if c != nil {
		c.stop()
	}
}

// Stop halts every cub.
func (s *Service) Stop() {
	s.mu.Lock()
	cubs := s.cubs
	s.cubs = map[string]*cub{}
	s.mu.Unlock()
	for _, c := range cubs {
		c.stop()
	}
}

// cub is one striped server.
type cub struct {
	svc   *Service
	id    string
	index int
	ep    transport.Endpoint

	mu        sync.Mutex
	stopped   bool
	lastHeard map[string]time.Time
	streams   map[transport.Addr]*stream
	hbTask    *clock.Periodic

	// Reusable frame-transmission scratch, guarded by mu: the encoded
	// packet is handed to Send before the lock is released and Send does
	// not retain it, so one warm buffer set serves every stream.
	frame      wire.Frame
	payloadBuf []byte
	enc        wire.Encoder
}

type stream struct {
	next uint32
	task *clock.Periodic
}

func (c *cub) startStream(clientAddr transport.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	if _, ok := c.streams[clientAddr]; ok {
		return
	}
	st := &stream{}
	period := time.Second / time.Duration(c.svc.cfg.Movie.FPS())
	st.task = clock.Every(c.svc.cfg.Clock, period, func() { c.slot(clientAddr, st) })
	c.streams[clientAddr] = st
}

// slot is one schedule slot: transmit the frame if this cub is the first
// live holder in its mirror chain.
func (c *cub) slot(clientAddr transport.Addr, st *stream) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	movie := c.svc.cfg.Movie
	frame := st.next
	st.next++
	if int(frame) >= movie.TotalFrames() {
		st.task.Stop()
		delete(c.streams, clientAddr)
		c.mu.Unlock()
		return
	}
	responsible := c.responsibleLocked(int(frame))
	if responsible != c.index {
		c.mu.Unlock()
		return
	}
	info := movie.Frame(int(frame))
	c.payloadBuf = movie.AppendFrameData(c.payloadBuf[:0], int(frame))
	c.frame = wire.Frame{
		Movie:   movie.ID(),
		Index:   frame,
		Class:   info.Class,
		Payload: c.payloadBuf,
	}
	pkt := c.enc.Encode(&c.frame)
	_ = c.ep.Send(clientAddr, pkt)
	c.mu.Unlock()
}

// responsibleLocked returns the index of the first cub in the frame's
// mirror chain this cub believes is alive, or -1 if the whole chain is
// dead (the frame is lost — Tiger's two-adjacent-failure hole).
func (c *cub) responsibleLocked(frame int) int {
	n := len(c.svc.cfg.Cubs)
	owner := frame % n
	now := c.svc.cfg.Clock.Now()
	for m := 0; m < c.svc.cfg.Mirrors; m++ {
		idx := (owner + m) % n
		if idx == c.index {
			return idx // we are alive by definition
		}
		heard, ok := c.lastHeard[c.svc.cfg.Cubs[idx]]
		if !ok || now.Sub(heard) < c.svc.cfg.SuspectTimeout {
			// Alive, or never heard from (startup grace): assume alive.
			return idx
		}
	}
	return -1
}

func (c *cub) heartbeat() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	peers := make([]string, 0, len(c.svc.cfg.Cubs)-1)
	for _, id := range c.svc.cfg.Cubs {
		if id != c.id {
			peers = append(peers, id)
		}
	}
	c.mu.Unlock()
	for _, id := range peers {
		_ = c.ep.Send(transport.Addr(id), []byte{1})
	}
}

func (c *cub) onPacket(from transport.Addr, _ []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastHeard[string(from)] = c.svc.cfg.Clock.Now()
}

func (c *cub) stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	c.hbTask.Stop()
	for _, st := range c.streams {
		st.task.Stop()
	}
	c.streams = map[transport.Addr]*stream{}
	_ = c.ep.Close()
}
