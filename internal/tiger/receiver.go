package tiger

import (
	"fmt"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Receiver is the minimal Tiger client: it feeds arriving frames through
// the same two-level buffer pipeline the VoD client uses (so skipped/late
// accounting is directly comparable) and displays at the movie rate.
// Tiger has no client feedback loop — the schedule pushes at exactly the
// display rate — so there is no flow control here.
type Receiver struct {
	ep       transport.Endpoint
	pipeline *buffer.Pipeline
	task     *clock.Periodic
}

// NewReceiver binds the client endpoint and starts displaying at fps.
func NewReceiver(clk clock.Clock, network transport.Network, addr transport.Addr, fps int) (*Receiver, error) {
	ep, err := network.NewEndpoint(addr)
	if err != nil {
		return nil, fmt.Errorf("tiger: receiver %s: %w", addr, err)
	}
	r := &Receiver{
		ep:       ep,
		pipeline: buffer.New(buffer.DefaultConfig()),
	}
	ep.SetHandler(r.onPacket)
	r.task = clock.Every(clk, time.Second/time.Duration(fps), func() { r.pipeline.Tick() })
	return r, nil
}

func (r *Receiver) onPacket(_ transport.Addr, payload []byte) {
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	f, ok := msg.(*wire.Frame)
	if !ok {
		return
	}
	r.pipeline.Insert(buffer.FrameMeta{Index: f.Index, Class: f.Class, Size: len(f.Payload)})
}

// Counters exposes the pipeline counters for comparison with the VoD
// client.
func (r *Receiver) Counters() buffer.Counters { return r.pipeline.Counters() }

// Close stops the receiver.
func (r *Receiver) Close() {
	r.task.Stop()
	_ = r.ep.Close()
}
