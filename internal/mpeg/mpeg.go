// Package mpeg models MPEG-1 video streams as the paper's VoD service sees
// them: a sequence of typed frames (I/P/B) with realistic sizes, transmitted
// one frame per message. No pixel data is involved — every quantity the
// paper's evaluation measures (frames skipped, frames late, buffer
// occupancies in frames and bytes) depends only on frame timing, sizes and
// types, which this model reproduces.
//
// This substitutes for the paper's real MPEG movies and Optibase hardware
// decoders (see DESIGN.md, substitution 2).
package mpeg

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/wire"
)

// FrameInfo describes one frame of a movie.
type FrameInfo struct {
	Class wire.FrameClass
	Size  int // bytes on the wire
}

// StreamConfig parameterizes synthetic movie generation. The defaults
// reproduce the paper's test stream: a 1.4 Mbps, 30 frames/s MPEG movie.
type StreamConfig struct {
	// Duration of the movie (default 90s, enough for the paper's
	// evaluation scenarios).
	Duration time.Duration
	// FPS is the nominal display rate (default 30).
	FPS int
	// BitRate is the mean stream rate in bits/s (default 1.4e6).
	BitRate int64
	// GOPSize is the group-of-pictures length (default 12: IBBPBBPBBPBB).
	GOPSize int
	// Seed drives the per-frame size variation.
	Seed int64
}

func (c *StreamConfig) fillDefaults() {
	if c.Duration <= 0 {
		c.Duration = 90 * time.Second
	}
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.BitRate <= 0 {
		c.BitRate = 1_400_000
	}
	if c.GOPSize <= 0 {
		c.GOPSize = 12
	}
}

// Movie is an immutable synthetic MPEG stream. Safe for concurrent use.
type Movie struct {
	id     string
	fps    int
	frames []FrameInfo
	total  int64 // sum of frame sizes

	pktMu sync.Mutex
	pkts  map[byte]*PacketTable // lazily built, keyed by channel prefix
}

// Generate synthesizes a movie with the given ID and stream parameters.
//
// The GOP structure follows MPEG-1 practice with M=3: an I frame, then
// P frames every third slot with B frames between (IBBPBBPBB...). Frame
// sizes use the usual compression ratios (I ≈ 4x, P ≈ 2x, B ≈ 0.7x the
// base unit) scaled so the stream hits the configured mean bit rate, with
// ±10% deterministic per-frame variation.
func Generate(id string, cfg StreamConfig) *Movie {
	cfg.fillDefaults()
	n := int(cfg.Duration.Seconds() * float64(cfg.FPS))
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Weights per GOP position; the base unit is solved from the target
	// mean frame size.
	weightOf := func(class wire.FrameClass) float64 {
		switch class {
		case wire.FrameI:
			return 4.0
		case wire.FrameP:
			return 2.0
		default:
			return 0.7
		}
	}
	var weightSum float64
	for i := 0; i < cfg.GOPSize; i++ {
		weightSum += weightOf(classAt(i, cfg.GOPSize))
	}
	meanFrame := float64(cfg.BitRate) / 8 / float64(cfg.FPS)
	unit := meanFrame * float64(cfg.GOPSize) / weightSum

	m := &Movie{id: id, fps: cfg.FPS, frames: make([]FrameInfo, n)}
	for i := 0; i < n; i++ {
		class := classAt(i%cfg.GOPSize, cfg.GOPSize)
		jitter := 0.9 + 0.2*rng.Float64()
		size := int(unit * weightOf(class) * jitter)
		if size < 64 {
			size = 64
		}
		m.frames[i] = FrameInfo{Class: class, Size: size}
		m.total += int64(size)
	}
	return m
}

// classAt returns the frame class at GOP position pos (0-based).
func classAt(pos, gopSize int) wire.FrameClass {
	switch {
	case pos == 0:
		return wire.FrameI
	case pos%3 == 0 && pos < gopSize:
		return wire.FrameP
	default:
		return wire.FrameB
	}
}

// ID returns the movie identifier.
func (m *Movie) ID() string { return m.id }

// FPS returns the nominal display rate.
func (m *Movie) FPS() int { return m.fps }

// TotalFrames returns the number of frames in the movie.
func (m *Movie) TotalFrames() int { return len(m.frames) }

// Duration returns the playing time at the nominal rate.
func (m *Movie) Duration() time.Duration {
	return time.Duration(len(m.frames)) * time.Second / time.Duration(m.fps)
}

// TotalBytes returns the movie's size on the wire.
func (m *Movie) TotalBytes() int64 { return m.total }

// MeanBitRate returns the stream's mean rate in bits/s.
func (m *Movie) MeanBitRate() int64 {
	if len(m.frames) == 0 {
		return 0
	}
	return m.total * 8 * int64(m.fps) / int64(len(m.frames))
}

// Frame returns the metadata of frame i. It panics on out-of-range i, which
// is always a caller bug (offsets are validated at the protocol layer).
func (m *Movie) Frame(i int) FrameInfo {
	return m.frames[i]
}

// FrameData materializes the synthetic payload of frame i: a deterministic
// byte pattern of the frame's exact size, carrying the frame index in its
// first bytes so tests can verify end-to-end integrity.
func (m *Movie) FrameData(i int) []byte {
	return m.AppendFrameData(nil, i)
}

// AppendFrameData appends frame i's synthetic payload to b and returns the
// extended slice, so streaming senders can reuse one scratch buffer instead
// of materializing a fresh payload per frame.
func (m *Movie) AppendFrameData(b []byte, i int) []byte {
	info := m.frames[i]
	start := len(b)
	b = append(b, make([]byte, info.Size)...)
	data := b[start:]
	data[0] = byte(info.Class)
	if info.Size >= 5 {
		data[1] = byte(i >> 24)
		data[2] = byte(i >> 16)
		data[3] = byte(i >> 8)
		data[4] = byte(i)
	}
	for j := 5; j < len(data); j++ {
		data[j] = byte(i + j)
	}
	return b
}

// PacketTable holds every frame of one movie as a fully framed, ready-to-send
// datagram — a transport channel prefix byte followed by the wire-encoded
// Frame message — packed back to back in a single contiguous arena. The table
// is immutable once built; all sessions streaming the movie share it, so N
// concurrent viewers of one title cost one table, not N per-session frame
// buffers, and senders ship table slices over a no-copy stable-send path.
type PacketTable struct {
	arena []byte
	offs  []int // offs[i]..offs[i+1] bounds packet i; len(offs) = frames+1
}

// Packet returns the framed datagram for frame i. The slice aliases the
// shared arena and must never be written to; its capacity is clipped so even
// an append cannot reach the next packet.
func (t *PacketTable) Packet(i int) []byte {
	return t.arena[t.offs[i]:t.offs[i+1]:t.offs[i+1]]
}

// WireSize returns the size of frame i's encoded Frame message, excluding
// the one-byte channel prefix — the number a per-message sender would have
// counted before handing the message to the mux.
func (t *PacketTable) WireSize(i int) int {
	return t.offs[i+1] - t.offs[i] - 1
}

// Bytes returns the arena footprint, for capacity accounting in tests.
func (t *PacketTable) Bytes() int { return len(t.arena) }

// Packets returns the movie's shared table of preframed datagrams for the
// given channel prefix byte, building it on first use. Each entry is
// byte-identical to what a per-session encoder would produce: prefix, then
// AppendMessage of a Frame{Movie, Index, Class, Payload} with the synthetic
// payload from AppendFrameData.
func (m *Movie) Packets(prefix byte) *PacketTable {
	m.pktMu.Lock()
	defer m.pktMu.Unlock()
	if t, ok := m.pkts[prefix]; ok {
		return t
	}
	n := len(m.frames)
	// Per-frame overhead: prefix, kind, movie-ID length prefix + bytes,
	// index, class, payload length prefix.
	per := 1 + 1 + 2 + len(m.id) + 4 + 1 + 4
	arena := make([]byte, 0, int(m.total)+n*per)
	offs := make([]int, n+1)
	f := wire.Frame{Movie: m.id}
	var payload []byte
	for i := 0; i < n; i++ {
		offs[i] = len(arena)
		arena = append(arena, prefix)
		payload = m.AppendFrameData(payload[:0], i)
		f.Index = uint32(i)
		f.Class = m.frames[i].Class
		f.Payload = payload
		arena = wire.AppendMessage(arena, &f)
	}
	offs[n] = len(arena)
	t := &PacketTable{arena: arena, offs: offs}
	if m.pkts == nil {
		m.pkts = make(map[byte]*PacketTable, 1)
	}
	m.pkts[prefix] = t
	return t
}

// PrevIFrame returns the largest I-frame index ≤ i. Random access lands on
// I frames because incremental frames cannot be decoded without them.
func (m *Movie) PrevIFrame(i int) int {
	if i >= len(m.frames) {
		i = len(m.frames) - 1
	}
	for ; i > 0; i-- {
		if m.frames[i].Class == wire.FrameI {
			return i
		}
	}
	return 0
}

// NextIFrame returns the smallest I-frame index ≥ i, or -1 if none remains.
func (m *Movie) NextIFrame(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < len(m.frames); i++ {
		if m.frames[i].Class == wire.FrameI {
			return i
		}
	}
	return -1
}

// String implements fmt.Stringer.
func (m *Movie) String() string {
	return fmt.Sprintf("movie %s: %d frames, %v, %d kbit/s",
		m.id, len(m.frames), m.Duration(), m.MeanBitRate()/1000)
}
