package mpeg

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Movie file format: how the synthetic movies are stored on server disks,
// standing in for the paper's MPEG files ("new movies can be added on the
// fly by storing them on machines where servers are running", §7). Only
// the stream structure is stored — frame classes and sizes — because the
// synthetic payload bytes are a deterministic function of the frame index.
//
//	magic "VODM" | version u8 | id string | fps u16 |
//	frame count u32 | count × (class u8, size u32)

const fileMagic = "VODM"

const fileVersion = 1

// WriteTo serializes the movie. It implements io.WriterTo.
func (m *Movie) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 0, 16+5*len(m.frames))
	buf = append(buf, fileMagic...)
	buf = wire.AppendU8(buf, fileVersion)
	buf = wire.AppendString(buf, m.id)
	buf = wire.AppendU16(buf, uint16(m.fps))
	buf = wire.AppendU32(buf, uint32(len(m.frames)))
	for _, f := range m.frames {
		buf = wire.AppendU8(buf, uint8(f.Class))
		buf = wire.AppendU32(buf, uint32(f.Size))
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom deserializes a movie written by WriteTo.
func ReadFrom(r io.Reader) (*Movie, error) {
	data, err := io.ReadAll(bufio.NewReader(r))
	if err != nil {
		return nil, fmt.Errorf("mpeg: reading movie: %w", err)
	}
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("mpeg: not a movie file (bad magic)")
	}
	rd := wire.NewReader(data[len(fileMagic):])
	if v := rd.U8(); v != fileVersion {
		return nil, fmt.Errorf("mpeg: unsupported movie file version %d", v)
	}
	m := &Movie{
		id:  rd.String(),
		fps: int(rd.U16()),
	}
	n := int(rd.U32())
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("mpeg: corrupt movie header: %w", err)
	}
	if m.id == "" || m.fps <= 0 || n <= 0 || n > 1<<26 {
		return nil, fmt.Errorf("mpeg: implausible movie header (id=%q fps=%d frames=%d)", m.id, m.fps, n)
	}
	m.frames = make([]FrameInfo, 0, n)
	for i := 0; i < n; i++ {
		class := wire.FrameClass(rd.U8())
		size := int(rd.U32())
		if rd.Err() != nil {
			return nil, fmt.Errorf("mpeg: corrupt frame table at %d: %w", i, rd.Err())
		}
		if class < wire.FrameI || class > wire.FrameB || size <= 0 || size > 1<<20 {
			return nil, fmt.Errorf("mpeg: implausible frame %d (class=%d size=%d)", i, class, size)
		}
		m.frames = append(m.frames, FrameInfo{Class: class, Size: size})
		m.total += int64(size)
	}
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("mpeg: trailing data: %w", err)
	}
	return m, nil
}
