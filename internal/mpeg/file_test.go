package mpeg

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestFileRoundTrip(t *testing.T) {
	in := Generate("casablanca", StreamConfig{Duration: 10 * time.Second, Seed: 3})
	var buf bytes.Buffer
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID() != in.ID() || out.FPS() != in.FPS() ||
		out.TotalFrames() != in.TotalFrames() || out.TotalBytes() != in.TotalBytes() {
		t.Fatalf("round trip header mismatch: %v vs %v", out, in)
	}
	for i := 0; i < in.TotalFrames(); i++ {
		if in.Frame(i) != out.Frame(i) {
			t.Fatalf("frame %d differs: %+v vs %+v", i, in.Frame(i), out.Frame(i))
		}
	}
	// Payload regeneration is deterministic from structure alone.
	if !bytes.Equal(in.FrameData(123), out.FrameData(123)) {
		t.Fatal("frame data differs after round trip")
	}
}

func TestReadFromRejectsCorrupt(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		m := Generate("m", StreamConfig{Duration: time.Second, Seed: 1})
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("NOPE"), good[4:]...),
		"truncated":    good[:len(good)/2],
		"trailing":     append(append([]byte{}, good...), 0xFF),
		"zero version": append([]byte(fileMagic), 0),
	}
	for name, data := range cases {
		if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt file accepted", name)
		}
	}
}

// TestReadFromNeverPanics: arbitrary bytes must fail cleanly.
func TestReadFromNeverPanics(t *testing.T) {
	prop := func(data []byte) bool {
		_, _ = ReadFrom(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
