package mpeg

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func paperMovie() *Movie {
	return Generate("casablanca", StreamConfig{Seed: 1})
}

func TestGenerateDefaults(t *testing.T) {
	m := paperMovie()
	if got := m.TotalFrames(); got != 2700 {
		t.Fatalf("TotalFrames = %d, want 2700 (90s × 30fps)", got)
	}
	if got := m.FPS(); got != 30 {
		t.Fatalf("FPS = %d, want 30", got)
	}
	if got := m.Duration(); got != 90*time.Second {
		t.Fatalf("Duration = %v, want 90s", got)
	}
}

func TestMeanBitRateNearTarget(t *testing.T) {
	m := paperMovie()
	rate := m.MeanBitRate()
	if rate < 1_330_000 || rate > 1_470_000 {
		t.Fatalf("mean bit rate %d outside ±5%% of 1.4 Mbps", rate)
	}
}

func TestGOPStructure(t *testing.T) {
	m := paperMovie()
	// GOP of 12 with M=3: positions 0=I, 3/6/9=P, rest B.
	for i := 0; i < 48; i++ {
		got := m.Frame(i).Class
		var want wire.FrameClass
		switch {
		case i%12 == 0:
			want = wire.FrameI
		case i%3 == 0:
			want = wire.FrameP
		default:
			want = wire.FrameB
		}
		if got != want {
			t.Fatalf("frame %d class = %v, want %v", i, got, want)
		}
	}
}

func TestFrameSizeOrdering(t *testing.T) {
	m := paperMovie()
	// Averaged over the movie, I frames must be much larger than P, and
	// P larger than B — the compression structure the discard policy
	// depends on.
	var sum [4]int64
	var cnt [4]int64
	for i := 0; i < m.TotalFrames(); i++ {
		f := m.Frame(i)
		sum[f.Class] += int64(f.Size)
		cnt[f.Class]++
	}
	avgI := sum[wire.FrameI] / cnt[wire.FrameI]
	avgP := sum[wire.FrameP] / cnt[wire.FrameP]
	avgB := sum[wire.FrameB] / cnt[wire.FrameB]
	if !(avgI > avgP && avgP > avgB) {
		t.Fatalf("size ordering violated: I=%d P=%d B=%d", avgI, avgP, avgB)
	}
	if float64(avgI) < 1.8*float64(avgP) {
		t.Fatalf("I frames (%d) not ≫ P frames (%d)", avgI, avgP)
	}
}

func TestFramesFitInDatagram(t *testing.T) {
	m := paperMovie()
	for i := 0; i < m.TotalFrames(); i++ {
		if s := m.Frame(i).Size; s > 50_000 {
			t.Fatalf("frame %d is %d bytes; exceeds one-frame-per-datagram design", i, s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("m", StreamConfig{Seed: 42})
	b := Generate("m", StreamConfig{Seed: 42})
	if a.TotalBytes() != b.TotalBytes() {
		t.Fatal("same seed produced different movies")
	}
	c := Generate("m", StreamConfig{Seed: 43})
	if a.TotalBytes() == c.TotalBytes() {
		t.Fatal("different seeds produced identical movies (suspicious)")
	}
}

func TestFrameData(t *testing.T) {
	m := paperMovie()
	d := m.FrameData(1234)
	if len(d) != m.Frame(1234).Size {
		t.Fatalf("FrameData length %d != declared size %d", len(d), m.Frame(1234).Size)
	}
	idx := int(d[1])<<24 | int(d[2])<<16 | int(d[3])<<8 | int(d[4])
	if idx != 1234 {
		t.Fatalf("embedded index = %d, want 1234", idx)
	}
	if wire.FrameClass(d[0]) != m.Frame(1234).Class {
		t.Fatalf("embedded class mismatch")
	}
}

func TestPrevNextIFrame(t *testing.T) {
	m := paperMovie()
	tests := []struct {
		in, prev, next int
	}{
		{0, 0, 0},
		{1, 0, 12},
		{11, 0, 12},
		{12, 12, 12},
		{13, 12, 24},
		{2699, 2688, -1},
	}
	for _, tt := range tests {
		if got := m.PrevIFrame(tt.in); got != tt.prev {
			t.Errorf("PrevIFrame(%d) = %d, want %d", tt.in, got, tt.prev)
		}
		if got := m.NextIFrame(tt.in); got != tt.next {
			t.Errorf("NextIFrame(%d) = %d, want %d", tt.in, got, tt.next)
		}
	}
}

func TestPrevIFrameClampsOutOfRange(t *testing.T) {
	m := paperMovie()
	if got := m.PrevIFrame(99999); got != 2688 {
		t.Fatalf("PrevIFrame(out of range) = %d, want last I frame 2688", got)
	}
	if got := m.NextIFrame(-5); got != 0 {
		t.Fatalf("NextIFrame(-5) = %d, want 0", got)
	}
}

// TestIFrameReachableProperty: from any frame, PrevIFrame lands on an I
// frame at or before it — the invariant seeks rely on.
func TestIFrameReachableProperty(t *testing.T) {
	m := paperMovie()
	prop := func(i uint16) bool {
		idx := int(i) % m.TotalFrames()
		p := m.PrevIFrame(idx)
		return p <= idx && m.Frame(p).Class == wire.FrameI
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShortMovie(t *testing.T) {
	m := Generate("short", StreamConfig{Duration: 100 * time.Millisecond, FPS: 30})
	if m.TotalFrames() != 3 {
		t.Fatalf("TotalFrames = %d, want 3", m.TotalFrames())
	}
	if m.Frame(0).Class != wire.FrameI {
		t.Fatal("movie must start with an I frame")
	}
}

func BenchmarkGenerate90s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate("m", StreamConfig{Seed: int64(i)})
	}
}

func BenchmarkFrameData(b *testing.B) {
	m := paperMovie()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FrameData(i % m.TotalFrames())
	}
}
