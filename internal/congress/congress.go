// Package congress implements a group-address resolution service modeled
// on CONGRESS ("CONnection-oriented Group-address RESolution Service",
// Anker, Breitgand, Dolev, Levy — the paper's references [3, 4]): a
// directory that maps logical group names to the transport addresses of
// their current members.
//
// The paper's clients contact "the abstract VoD service" without knowing
// any server identity (§5.1); in the prototype Transis resolved the group
// name. Here, servers register themselves under "vod.servers" with a TTL
// and refresh periodically; clients resolve the name once at startup and
// then speak to the addresses directly. Registrations expire when a server
// dies, so the directory never hands out long-dead addresses.
//
// The directory itself is soft state only: if it restarts, the next
// registration round repopulates it. Resolution and registration both ride
// the same unreliable datagrams as everything else, with retries.
package congress

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/placement"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Message kinds on the directory channel.
const (
	kindRegister uint8 = iota + 1
	kindResolve
	kindReply
	kindResolveKey
)

// DefaultTTL is the registration lifetime when none is given; registrants
// refresh at a third of it.
const DefaultTTL = 3 * time.Second

// Directory is the resolution daemon. Run one (or several, at different
// well-known addresses) per deployment.
type Directory struct {
	clk clock.Clock
	mux *transport.Mux
	ep  transport.Endpoint // the directory channel of the mux

	mu      sync.Mutex
	entries map[string]map[transport.Addr]time.Time // group → addr → expiry
	rings   map[string]*ringCache                   // group → placement ring over live members
	sweep   *clock.Periodic
	closed  bool
}

// ringCache is a consistent-hash ring over a group's live members, rebuilt
// only when the member list actually changes — resolutions between
// registration churn reuse it.
type ringCache struct {
	members []transport.Addr // sorted snapshot the ring was built from
	ring    *placement.Ring
}

// NewDirectory starts a directory daemon on its own endpoint at addr. Like
// every node in the system, it multiplexes its endpoint; directory traffic
// rides the directory channel.
func NewDirectory(clk clock.Clock, network transport.Network, addr transport.Addr) (*Directory, error) {
	raw, err := network.NewEndpoint(addr)
	if err != nil {
		return nil, fmt.Errorf("congress: directory at %s: %w", addr, err)
	}
	mux := transport.NewMux(raw)
	d := &Directory{
		clk:     clk,
		mux:     mux,
		ep:      mux.Channel(transport.ChannelDirectory),
		entries: make(map[string]map[transport.Addr]time.Time),
		rings:   make(map[string]*ringCache),
	}
	d.ep.SetHandler(d.onPacket)
	d.sweep = clock.Every(clk, time.Second, d.expire)
	return d, nil
}

// Addr returns the directory's address.
func (d *Directory) Addr() transport.Addr { return d.ep.Addr() }

// Close stops the daemon.
func (d *Directory) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.sweep.Stop()
	_ = d.mux.Close()
}

// Members returns the live addresses registered under group, sorted.
func (d *Directory) Members(group string) []transport.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.membersLocked(group)
}

func (d *Directory) membersLocked(group string) []transport.Addr {
	now := d.clk.Now()
	var out []transport.Addr
	for addr, exp := range d.entries[group] {
		if exp.After(now) {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Directory) expire() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clk.Now()
	for group, byAddr := range d.entries {
		for addr, exp := range byAddr {
			if !exp.After(now) {
				delete(byAddr, addr)
			}
		}
		if len(byAddr) == 0 {
			delete(d.entries, group)
			delete(d.rings, group)
		}
	}
}

// addrsEqual reports whether two sorted address lists are identical.
func addrsEqual(a, b []transport.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ownersLocked resolves key to its first n owners on the group's placement
// ring, building (or rebuilding) the ring only when the live member list
// changed since the last key resolution.
func (d *Directory) ownersLocked(group, key string, n int) []transport.Addr {
	members := d.membersLocked(group)
	if len(members) == 0 {
		return nil
	}
	rc := d.rings[group]
	if rc == nil || !addrsEqual(rc.members, members) {
		ring := placement.New(placement.DefaultVNodes)
		for _, m := range members {
			ring.Add(string(m))
		}
		rc = &ringCache{members: members, ring: ring}
		d.rings[group] = rc
	}
	ids := rc.ring.AppendOrder(nil, key, n)
	out := make([]transport.Addr, len(ids))
	for i, id := range ids {
		out[i] = transport.Addr(id)
	}
	return out
}

func (d *Directory) onPacket(from transport.Addr, payload []byte) {
	r := wire.NewReader(payload)
	kind := r.U8()
	if r.Err() != nil {
		return
	}
	switch kind {
	case kindRegister:
		group := r.String()
		addr := transport.Addr(r.String())
		ttl := time.Duration(r.U64()) * time.Millisecond
		if r.Done() != nil || group == "" || addr == "" || ttl <= 0 {
			return
		}
		d.mu.Lock()
		byAddr := d.entries[group]
		if byAddr == nil {
			byAddr = make(map[transport.Addr]time.Time)
			d.entries[group] = byAddr
		}
		byAddr[addr] = d.clk.Now().Add(ttl)
		d.mu.Unlock()
	case kindResolve:
		group := r.String()
		nonce := r.U64()
		if r.Done() != nil {
			return
		}
		d.mu.Lock()
		members := d.membersLocked(group)
		d.mu.Unlock()
		d.reply(from, group, nonce, members)
	case kindResolveKey:
		group := r.String()
		key := r.String()
		n := int(r.U16())
		nonce := r.U64()
		if r.Done() != nil || key == "" {
			return
		}
		d.mu.Lock()
		owners := d.ownersLocked(group, key, n)
		d.mu.Unlock()
		d.reply(from, group, nonce, owners)
	}
}

// reply sends a kindReply carrying addrs; both resolution flavors share the
// format, so one resolver-side decoder serves both.
func (d *Directory) reply(to transport.Addr, group string, nonce uint64, addrs []transport.Addr) {
	pkt := make([]byte, 0, 64)
	pkt = wire.AppendU8(pkt, kindReply)
	pkt = wire.AppendString(pkt, group)
	pkt = wire.AppendU64(pkt, nonce)
	pkt = wire.AppendU16(pkt, uint16(len(addrs)))
	for _, m := range addrs {
		pkt = wire.AppendString(pkt, string(m))
	}
	_ = d.ep.Send(to, pkt)
}

// Registrar keeps one (group, addr) registration alive at a directory,
// refreshing at TTL/3 — the keepalive side of CONGRESS.
type Registrar struct {
	task *clock.Periodic
}

// NewRegistrar starts refreshing immediately. ep is the registrant's own
// endpoint (typically a dedicated mux channel); addr is the address being
// advertised (usually ep's own).
func NewRegistrar(clk clock.Clock, ep transport.Endpoint, directory transport.Addr, group string, addr transport.Addr, ttl time.Duration) *Registrar {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	send := func() {
		pkt := make([]byte, 0, 64)
		pkt = wire.AppendU8(pkt, kindRegister)
		pkt = wire.AppendString(pkt, group)
		pkt = wire.AppendString(pkt, string(addr))
		pkt = wire.AppendU64(pkt, uint64(ttl.Milliseconds()))
		_ = ep.Send(directory, pkt)
	}
	send()
	return &Registrar{task: clock.Every(clk, ttl/3, send)}
}

// Stop ceases refreshing; the registration expires at the directory.
func (r *Registrar) Stop() { r.task.Stop() }

// Resolution retry backoff: the first retry waits ResolveRetryBase, each
// further retry doubles the wait up to ResolveRetryCap, and every wait adds
// up to 25% deterministic jitter. Without the jitter, every client that
// lost its directory to the same partition would retry in lockstep and the
// heal would be greeted by a synchronized lookup storm.
const (
	ResolveRetryBase = 300 * time.Millisecond
	ResolveRetryCap  = 2 * time.Second
)

// Resolver performs resolutions against a directory over an endpoint it
// shares with its owner. Replies are matched to requests by nonce.
type Resolver struct {
	clk       clock.Clock
	ep        transport.Endpoint
	directory transport.Addr

	mu      sync.Mutex
	rng     *rand.Rand // jitter; seeded from the endpoint address
	nonce   uint64
	pending map[uint64]*resolution

	// streak counts resolutions that exhausted their retries since the last
	// directory reply, across Resolve calls: when the directory has been
	// unreachable for a while, a fresh resolution starts deeper in the
	// backoff schedule instead of restarting the probe storm from the base
	// delay. Any reply — even an empty member list — resets it, so the
	// first success after a directory heal drops later resolutions straight
	// back to the base delay.
	streak int
}

type resolution struct {
	group    string
	key      string // non-empty: placement-ring resolution (kindResolveKey)
	count    int    // owners requested for a key resolution
	callback func([]transport.Addr)
	retries  int
	attempt  int // retries already taken, drives the backoff
	timer    clock.Timer
}

// NewResolver wires a resolver to ep: it takes over ep's inbound handler.
// Retry jitter is seeded from ep's address, so runs on a virtual clock are
// deterministic while distinct nodes still desynchronize.
func NewResolver(clk clock.Clock, ep transport.Endpoint, directory transport.Addr) *Resolver {
	r := &Resolver{
		clk:       clk,
		ep:        ep,
		directory: directory,
		rng:       rand.New(rand.NewSource(seedFrom(string(ep.Addr()) + "|" + string(directory)))),
		pending:   make(map[uint64]*resolution),
	}
	ep.SetHandler(r.onPacket)
	return r
}

// seedFrom derives a deterministic RNG seed from an identity string.
func seedFrom(s string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return int64(h.Sum64())
}

// Resolve looks group up, invoking callback exactly once: with the member
// list on success, or with nil after maxRetries request timeouts.
func (r *Resolver) Resolve(group string, maxRetries int, callback func([]transport.Addr)) {
	r.start(&resolution{group: group, callback: callback, retries: maxRetries})
}

// ResolveKey looks up the first n owners of key on the directory's
// consistent-hash ring over group's live members — the congress answers a
// movie Open by ring lookup instead of handing back the whole membership.
// callback is invoked exactly once: with the owners in ring order on
// success (empty if the group has no live members), or with nil after
// maxRetries request timeouts.
func (r *Resolver) ResolveKey(group, key string, n, maxRetries int, callback func([]transport.Addr)) {
	r.start(&resolution{group: group, key: key, count: n, callback: callback, retries: maxRetries})
}

func (r *Resolver) start(res *resolution) {
	r.mu.Lock()
	r.nonce++
	nonce := r.nonce
	r.pending[nonce] = res
	r.mu.Unlock()
	r.send(nonce, res)
}

func (r *Resolver) send(nonce uint64, res *resolution) {
	pkt := make([]byte, 0, 32)
	if res.key != "" {
		pkt = wire.AppendU8(pkt, kindResolveKey)
		pkt = wire.AppendString(pkt, res.group)
		pkt = wire.AppendString(pkt, res.key)
		pkt = wire.AppendU16(pkt, uint16(res.count))
	} else {
		pkt = wire.AppendU8(pkt, kindResolve)
		pkt = wire.AppendString(pkt, res.group)
	}
	pkt = wire.AppendU64(pkt, nonce)
	_ = r.ep.Send(r.directory, pkt)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending[nonce] != res {
		return // answered meanwhile
	}
	res.timer = r.clk.AfterFunc(r.retryDelayLocked(res.attempt+r.streak), func() {
		r.mu.Lock()
		if r.pending[nonce] != res {
			r.mu.Unlock()
			return
		}
		if res.retries <= 0 {
			delete(r.pending, nonce)
			r.streak++
			cb := res.callback
			r.mu.Unlock()
			cb(nil)
			return
		}
		res.retries--
		res.attempt++
		r.mu.Unlock()
		r.send(nonce, res)
	})
}

// retryDelayLocked computes the capped exponential backoff with jitter for
// the given retry attempt. Caller holds r.mu.
func (r *Resolver) retryDelayLocked(attempt int) time.Duration {
	d := ResolveRetryBase
	for i := 0; i < attempt && d < ResolveRetryCap; i++ {
		d *= 2
	}
	if d > ResolveRetryCap {
		d = ResolveRetryCap
	}
	return d + time.Duration(r.rng.Int63n(int64(d)/4+1))
}

func (r *Resolver) onPacket(_ transport.Addr, payload []byte) {
	rd := wire.NewReader(payload)
	if rd.U8() != kindReply {
		return
	}
	group := rd.String()
	nonce := rd.U64()
	n := int(rd.U16())
	if rd.Err() != nil {
		return
	}
	addrs := make([]transport.Addr, 0, n)
	for i := 0; i < n; i++ {
		addrs = append(addrs, transport.Addr(rd.String()))
	}
	if rd.Done() != nil {
		return
	}

	r.mu.Lock()
	res, ok := r.pending[nonce]
	if !ok || res.group != group {
		r.mu.Unlock()
		return
	}
	delete(r.pending, nonce)
	r.streak = 0 // the directory is answering again
	if res.timer != nil {
		res.timer.Stop()
	}
	cb := res.callback
	r.mu.Unlock()
	cb(addrs)
}
