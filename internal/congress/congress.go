// Package congress implements a group-address resolution service modeled
// on CONGRESS ("CONnection-oriented Group-address RESolution Service",
// Anker, Breitgand, Dolev, Levy — the paper's references [3, 4]): a
// directory that maps logical group names to the transport addresses of
// their current members.
//
// The paper's clients contact "the abstract VoD service" without knowing
// any server identity (§5.1); in the prototype Transis resolved the group
// name. Here, servers register themselves under "vod.servers" with a TTL
// and refresh periodically; clients resolve the name once at startup and
// then speak to the addresses directly. Registrations expire when a server
// dies, so the directory never hands out long-dead addresses.
//
// The directory itself is soft state only: if it restarts, the next
// registration round repopulates it. Resolution and registration both ride
// the same unreliable datagrams as everything else, with retries.
package congress

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Message kinds on the directory channel.
const (
	kindRegister uint8 = iota + 1
	kindResolve
	kindReply
)

// DefaultTTL is the registration lifetime when none is given; registrants
// refresh at a third of it.
const DefaultTTL = 3 * time.Second

// Directory is the resolution daemon. Run one (or several, at different
// well-known addresses) per deployment.
type Directory struct {
	clk clock.Clock
	mux *transport.Mux
	ep  transport.Endpoint // the directory channel of the mux

	mu      sync.Mutex
	entries map[string]map[transport.Addr]time.Time // group → addr → expiry
	sweep   *clock.Periodic
	closed  bool
}

// NewDirectory starts a directory daemon on its own endpoint at addr. Like
// every node in the system, it multiplexes its endpoint; directory traffic
// rides the directory channel.
func NewDirectory(clk clock.Clock, network transport.Network, addr transport.Addr) (*Directory, error) {
	raw, err := network.NewEndpoint(addr)
	if err != nil {
		return nil, fmt.Errorf("congress: directory at %s: %w", addr, err)
	}
	mux := transport.NewMux(raw)
	d := &Directory{
		clk:     clk,
		mux:     mux,
		ep:      mux.Channel(transport.ChannelDirectory),
		entries: make(map[string]map[transport.Addr]time.Time),
	}
	d.ep.SetHandler(d.onPacket)
	d.sweep = clock.Every(clk, time.Second, d.expire)
	return d, nil
}

// Addr returns the directory's address.
func (d *Directory) Addr() transport.Addr { return d.ep.Addr() }

// Close stops the daemon.
func (d *Directory) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.sweep.Stop()
	_ = d.mux.Close()
}

// Members returns the live addresses registered under group, sorted.
func (d *Directory) Members(group string) []transport.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.membersLocked(group)
}

func (d *Directory) membersLocked(group string) []transport.Addr {
	now := d.clk.Now()
	var out []transport.Addr
	for addr, exp := range d.entries[group] {
		if exp.After(now) {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Directory) expire() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clk.Now()
	for group, byAddr := range d.entries {
		for addr, exp := range byAddr {
			if !exp.After(now) {
				delete(byAddr, addr)
			}
		}
		if len(byAddr) == 0 {
			delete(d.entries, group)
		}
	}
}

func (d *Directory) onPacket(from transport.Addr, payload []byte) {
	r := wire.NewReader(payload)
	kind := r.U8()
	if r.Err() != nil {
		return
	}
	switch kind {
	case kindRegister:
		group := r.String()
		addr := transport.Addr(r.String())
		ttl := time.Duration(r.U64()) * time.Millisecond
		if r.Done() != nil || group == "" || addr == "" || ttl <= 0 {
			return
		}
		d.mu.Lock()
		byAddr := d.entries[group]
		if byAddr == nil {
			byAddr = make(map[transport.Addr]time.Time)
			d.entries[group] = byAddr
		}
		byAddr[addr] = d.clk.Now().Add(ttl)
		d.mu.Unlock()
	case kindResolve:
		group := r.String()
		nonce := r.U64()
		if r.Done() != nil {
			return
		}
		d.mu.Lock()
		members := d.membersLocked(group)
		d.mu.Unlock()
		reply := make([]byte, 0, 64)
		reply = wire.AppendU8(reply, kindReply)
		reply = wire.AppendString(reply, group)
		reply = wire.AppendU64(reply, nonce)
		reply = wire.AppendU16(reply, uint16(len(members)))
		for _, m := range members {
			reply = wire.AppendString(reply, string(m))
		}
		_ = d.ep.Send(from, reply)
	}
}

// Registrar keeps one (group, addr) registration alive at a directory,
// refreshing at TTL/3 — the keepalive side of CONGRESS.
type Registrar struct {
	task *clock.Periodic
}

// NewRegistrar starts refreshing immediately. ep is the registrant's own
// endpoint (typically a dedicated mux channel); addr is the address being
// advertised (usually ep's own).
func NewRegistrar(clk clock.Clock, ep transport.Endpoint, directory transport.Addr, group string, addr transport.Addr, ttl time.Duration) *Registrar {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	send := func() {
		pkt := make([]byte, 0, 64)
		pkt = wire.AppendU8(pkt, kindRegister)
		pkt = wire.AppendString(pkt, group)
		pkt = wire.AppendString(pkt, string(addr))
		pkt = wire.AppendU64(pkt, uint64(ttl.Milliseconds()))
		_ = ep.Send(directory, pkt)
	}
	send()
	return &Registrar{task: clock.Every(clk, ttl/3, send)}
}

// Stop ceases refreshing; the registration expires at the directory.
func (r *Registrar) Stop() { r.task.Stop() }

// Resolution retry backoff: the first retry waits ResolveRetryBase, each
// further retry doubles the wait up to ResolveRetryCap, and every wait adds
// up to 25% deterministic jitter. Without the jitter, every client that
// lost its directory to the same partition would retry in lockstep and the
// heal would be greeted by a synchronized lookup storm.
const (
	ResolveRetryBase = 300 * time.Millisecond
	ResolveRetryCap  = 2 * time.Second
)

// Resolver performs resolutions against a directory over an endpoint it
// shares with its owner. Replies are matched to requests by nonce.
type Resolver struct {
	clk       clock.Clock
	ep        transport.Endpoint
	directory transport.Addr

	mu      sync.Mutex
	rng     *rand.Rand // jitter; seeded from the endpoint address
	nonce   uint64
	pending map[uint64]*resolution
}

type resolution struct {
	group    string
	callback func([]transport.Addr)
	retries  int
	attempt  int // retries already taken, drives the backoff
	timer    clock.Timer
}

// NewResolver wires a resolver to ep: it takes over ep's inbound handler.
// Retry jitter is seeded from ep's address, so runs on a virtual clock are
// deterministic while distinct nodes still desynchronize.
func NewResolver(clk clock.Clock, ep transport.Endpoint, directory transport.Addr) *Resolver {
	r := &Resolver{
		clk:       clk,
		ep:        ep,
		directory: directory,
		rng:       rand.New(rand.NewSource(seedFrom(string(ep.Addr()) + "|" + string(directory)))),
		pending:   make(map[uint64]*resolution),
	}
	ep.SetHandler(r.onPacket)
	return r
}

// seedFrom derives a deterministic RNG seed from an identity string.
func seedFrom(s string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return int64(h.Sum64())
}

// Resolve looks group up, invoking callback exactly once: with the member
// list on success, or with nil after maxRetries request timeouts.
func (r *Resolver) Resolve(group string, maxRetries int, callback func([]transport.Addr)) {
	r.mu.Lock()
	r.nonce++
	nonce := r.nonce
	res := &resolution{group: group, callback: callback, retries: maxRetries}
	r.pending[nonce] = res
	r.mu.Unlock()
	r.send(nonce, res)
}

func (r *Resolver) send(nonce uint64, res *resolution) {
	pkt := make([]byte, 0, 32)
	pkt = wire.AppendU8(pkt, kindResolve)
	pkt = wire.AppendString(pkt, res.group)
	pkt = wire.AppendU64(pkt, nonce)
	_ = r.ep.Send(r.directory, pkt)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending[nonce] != res {
		return // answered meanwhile
	}
	res.timer = r.clk.AfterFunc(r.retryDelayLocked(res.attempt), func() {
		r.mu.Lock()
		if r.pending[nonce] != res {
			r.mu.Unlock()
			return
		}
		if res.retries <= 0 {
			delete(r.pending, nonce)
			cb := res.callback
			r.mu.Unlock()
			cb(nil)
			return
		}
		res.retries--
		res.attempt++
		r.mu.Unlock()
		r.send(nonce, res)
	})
}

// retryDelayLocked computes the capped exponential backoff with jitter for
// the given retry attempt. Caller holds r.mu.
func (r *Resolver) retryDelayLocked(attempt int) time.Duration {
	d := ResolveRetryBase
	for i := 0; i < attempt && d < ResolveRetryCap; i++ {
		d *= 2
	}
	if d > ResolveRetryCap {
		d = ResolveRetryCap
	}
	return d + time.Duration(r.rng.Int63n(int64(d)/4+1))
}

func (r *Resolver) onPacket(_ transport.Addr, payload []byte) {
	rd := wire.NewReader(payload)
	if rd.U8() != kindReply {
		return
	}
	group := rd.String()
	nonce := rd.U64()
	n := int(rd.U16())
	if rd.Err() != nil {
		return
	}
	addrs := make([]transport.Addr, 0, n)
	for i := 0; i < n; i++ {
		addrs = append(addrs, transport.Addr(rd.String()))
	}
	if rd.Done() != nil {
		return
	}

	r.mu.Lock()
	res, ok := r.pending[nonce]
	if !ok || res.group != group {
		r.mu.Unlock()
		return
	}
	delete(r.pending, nonce)
	if res.timer != nil {
		res.timer.Stop()
	}
	cb := res.callback
	r.mu.Unlock()
	cb(addrs)
}
