package congress_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/congress"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type rig struct {
	clk *clock.Virtual
	net *netsim.Network
	dir *congress.Directory
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 13, netsim.LAN())
	dir, err := congress.NewDirectory(clk, net, "directory")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dir.Close)
	return &rig{clk: clk, net: net, dir: dir}
}

// channelOf binds a fresh endpoint and returns its directory channel.
func (r *rig) channelOf(t *testing.T, addr transport.Addr) transport.Endpoint {
	t.Helper()
	raw, err := r.net.NewEndpoint(addr)
	if err != nil {
		t.Fatal(err)
	}
	return transport.NewMux(raw).Channel(transport.ChannelDirectory)
}

func TestRegisterAndResolve(t *testing.T) {
	r := newRig(t)
	ep1 := r.channelOf(t, "node-1")
	ep2 := r.channelOf(t, "node-2")
	reg1 := congress.NewRegistrar(r.clk, ep1, "directory", "vod.servers", "node-1", 0)
	defer reg1.Stop()
	reg2 := congress.NewRegistrar(r.clk, ep2, "directory", "vod.servers", "node-2", 0)
	defer reg2.Stop()
	r.clk.Advance(100 * time.Millisecond)

	got := r.dir.Members("vod.servers")
	if len(got) != 2 || got[0] != "node-1" || got[1] != "node-2" {
		t.Fatalf("Members = %v", got)
	}

	epC := r.channelOf(t, "client")
	resolver := congress.NewResolver(r.clk, epC, "directory")
	var answer []transport.Addr
	resolver.Resolve("vod.servers", 3, func(addrs []transport.Addr) { answer = addrs })
	r.clk.Advance(100 * time.Millisecond)
	if len(answer) != 2 {
		t.Fatalf("Resolve = %v", answer)
	}
}

func TestRegistrationExpires(t *testing.T) {
	r := newRig(t)
	ep := r.channelOf(t, "node-1")
	reg := congress.NewRegistrar(r.clk, ep, "directory", "g", "node-1", 2*time.Second)
	r.clk.Advance(100 * time.Millisecond)
	if got := r.dir.Members("g"); len(got) != 1 {
		t.Fatalf("Members = %v", got)
	}
	// Stop refreshing: the entry must disappear after the TTL.
	reg.Stop()
	r.clk.Advance(3 * time.Second)
	if got := r.dir.Members("g"); len(got) != 0 {
		t.Fatalf("expired registration still resolves: %v", got)
	}
}

func TestRefreshKeepsEntryAlive(t *testing.T) {
	r := newRig(t)
	ep := r.channelOf(t, "node-1")
	reg := congress.NewRegistrar(r.clk, ep, "directory", "g", "node-1", 2*time.Second)
	defer reg.Stop()
	r.clk.Advance(10 * time.Second) // many TTLs, with refreshes
	if got := r.dir.Members("g"); len(got) != 1 {
		t.Fatalf("refreshed registration expired: %v", got)
	}
}

func TestResolveUnknownGroup(t *testing.T) {
	r := newRig(t)
	ep := r.channelOf(t, "client")
	resolver := congress.NewResolver(r.clk, ep, "directory")
	called := false
	resolver.Resolve("nobody-here", 1, func(addrs []transport.Addr) {
		called = true
		if len(addrs) != 0 {
			t.Errorf("unknown group resolved to %v", addrs)
		}
	})
	r.clk.Advance(time.Second)
	if !called {
		t.Fatal("callback never invoked for an empty group")
	}
}

func TestResolveRetriesUnderLoss(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	prof := netsim.LAN()
	prof.Loss = 0.5
	net := netsim.New(clk, 3, prof)
	dir, err := congress.NewDirectory(clk, net, "directory")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	raw, err := net.NewEndpoint("node-1")
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.NewMux(raw).Channel(transport.ChannelDirectory)
	reg := congress.NewRegistrar(clk, ep, "directory", "g", "node-1", 0)
	defer reg.Stop()
	clk.Advance(3 * time.Second) // registrations retry via refresh

	rawC, err := net.NewEndpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	resolver := congress.NewResolver(clk, transport.NewMux(rawC).Channel(transport.ChannelDirectory), "directory")
	var answer []transport.Addr
	resolver.Resolve("g", 20, func(addrs []transport.Addr) { answer = addrs })
	// With capped-backoff retries the 20 attempts stretch over ~40s.
	clk.Advance(45 * time.Second)
	if len(answer) != 1 {
		t.Fatalf("resolution failed under 50%% loss: %v", answer)
	}
}

func TestResolveTimesOutWithoutDirectory(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1, netsim.LAN())
	// Bind the directory address but never run a directory on it, so
	// sends succeed and vanish.
	if _, err := net.NewEndpoint("directory"); err != nil {
		t.Fatal(err)
	}
	raw, err := net.NewEndpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	resolver := congress.NewResolver(clk, transport.NewMux(raw).Channel(transport.ChannelDirectory), "directory")
	var called bool
	var got []transport.Addr
	resolver.Resolve("g", 2, func(addrs []transport.Addr) { called, got = true, addrs })
	clk.Advance(5 * time.Second)
	if !called || got != nil {
		t.Fatalf("timeout path: called=%v got=%v", called, got)
	}
}

// TestResolveBackoffSpreads observes the retry schedule against a deaf
// directory: each retry waits roughly twice as long as the previous one
// (plus jitter) until the cap, so partitioned clients cannot synchronize
// their lookup storms.
func TestResolveBackoffSpreads(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1, netsim.LAN())
	deaf, err := net.NewEndpoint("directory")
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Time
	deaf.SetHandler(func(transport.Addr, []byte) { arrivals = append(arrivals, clk.Now()) })

	raw, err := net.NewEndpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	resolver := congress.NewResolver(clk, transport.NewMux(raw).Channel(transport.ChannelDirectory), "directory")
	done := false
	resolver.Resolve("g", 5, func([]transport.Addr) { done = true })
	clk.Advance(30 * time.Second)

	if !done {
		t.Fatal("resolution never gave up")
	}
	if len(arrivals) != 6 {
		t.Fatalf("directory saw %d requests, want 6 (initial + 5 retries)", len(arrivals))
	}
	var gaps []time.Duration
	for i := 1; i < len(arrivals); i++ {
		gaps = append(gaps, arrivals[i].Sub(arrivals[i-1]))
	}
	// Doubling with ≤25% jitter: successive gaps strictly grow until the
	// cap; every gap sits in [base, cap+25%].
	for i := 0; i+1 < 3; i++ {
		if gaps[i+1] <= gaps[i] {
			t.Errorf("gap %d (%v) did not grow over gap %d (%v)", i+1, gaps[i+1], i, gaps[i])
		}
	}
	for i, g := range gaps {
		if g < congress.ResolveRetryBase || g > congress.ResolveRetryCap+congress.ResolveRetryCap/4 {
			t.Errorf("gap %d = %v outside [%v, %v]", i, g,
				congress.ResolveRetryBase, congress.ResolveRetryCap+congress.ResolveRetryCap/4)
		}
	}
}

// TestEndToEndDiscovery wires the whole service through the directory: the
// client is configured with NO server list and finds the service purely by
// resolving "vod.servers".
func TestEndToEndDiscovery(t *testing.T) {
	r := newRig(t)
	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 20 * time.Second, Seed: 1})
	for _, id := range []string{"srv-a", "srv-b"} {
		cat := store.NewCatalog()
		cat.Add(movie)
		s, err := server.New(server.Config{
			ID:        id,
			Clock:     r.clk,
			Network:   r.net,
			Catalog:   cat,
			Peers:     []string{"srv-a", "srv-b"},
			Directory: "directory",
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
	}
	r.clk.Advance(time.Second)
	if got := r.dir.Members(server.ServerGroup); len(got) != 2 {
		t.Fatalf("directory knows %v, want both servers", got)
	}

	c, err := client.New(client.Config{
		ID:        "viewer-1",
		Clock:     r.clk,
		Network:   r.net,
		Directory: "directory", // no Servers at all
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(8 * time.Second)
	if got := c.State(); got != client.StateWatching {
		t.Fatalf("state = %v; directory-based discovery failed", got)
	}
	if got := c.Counters().Displayed; got < 180 {
		t.Fatalf("displayed %d frames", got)
	}
}

// TestDiscoveryBeforeServersStart: a client that asks while the directory
// is still empty keeps re-resolving and connects once a server appears.
func TestDiscoveryBeforeServersStart(t *testing.T) {
	r := newRig(t)
	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 20 * time.Second, Seed: 1})

	c, err := client.New(client.Config{
		ID:        "viewer-1",
		Clock:     r.clk,
		Network:   r.net,
		Directory: "directory",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(3 * time.Second) // resolving into the void

	cat := store.NewCatalog()
	cat.Add(movie)
	s, err := server.New(server.Config{
		ID:        "srv-a",
		Clock:     r.clk,
		Network:   r.net,
		Catalog:   cat,
		Peers:     []string{"srv-a"},
		Directory: "directory",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	r.clk.Advance(8 * time.Second)
	if got := c.State(); got != client.StateWatching {
		t.Fatalf("state = %v; late-server discovery failed", got)
	}
}
