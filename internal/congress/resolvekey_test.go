package congress_test

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/congress"
	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestResolveKeyMatchesLocalRing verifies the directory's key resolution is
// the same consistent-hash placement a node computes locally: with the
// registered members on a local ring, ResolveKey(key, n) must return
// exactly AppendOrder(key, n).
func TestResolveKeyMatchesLocalRing(t *testing.T) {
	r := newRig(t)
	servers := []transport.Addr{"srv-1", "srv-2", "srv-3", "srv-4"}
	for _, s := range servers {
		reg := congress.NewRegistrar(r.clk, r.channelOf(t, s), "directory", "vod.servers", s, 0)
		defer reg.Stop()
	}
	r.clk.Advance(100 * time.Millisecond)

	local := placement.New(placement.DefaultVNodes)
	for _, s := range servers {
		local.Add(string(s))
	}

	resolver := congress.NewResolver(r.clk, r.channelOf(t, "client"), "directory")
	for _, movie := range []string{"casablanca", "vertigo", "metropolis", "m"} {
		var got []transport.Addr
		resolver.ResolveKey("vod.servers", movie, 2, 3, func(addrs []transport.Addr) { got = addrs })
		r.clk.Advance(100 * time.Millisecond)
		want := local.LookupN(movie, 2)
		if len(got) != len(want) {
			t.Fatalf("%s: owners = %v, want %v", movie, got, want)
		}
		for i := range want {
			if string(got[i]) != want[i] {
				t.Fatalf("%s: owners = %v, want %v", movie, got, want)
			}
		}
	}
}

// TestResolveKeyTracksMembership verifies the directory rebuilds its ring
// when registrations change: after a server's registration lapses, key
// resolutions stop returning it.
func TestResolveKeyTracksMembership(t *testing.T) {
	r := newRig(t)
	regs := map[transport.Addr]*congress.Registrar{}
	for _, s := range []transport.Addr{"srv-1", "srv-2", "srv-3"} {
		regs[s] = congress.NewRegistrar(r.clk, r.channelOf(t, s), "directory", "vod.servers", s, time.Second)
	}
	defer func() {
		for _, reg := range regs {
			reg.Stop()
		}
	}()
	r.clk.Advance(100 * time.Millisecond)

	resolver := congress.NewResolver(r.clk, r.channelOf(t, "client"), "directory")
	resolveAll := func(movies []string) map[string][]transport.Addr {
		out := make(map[string][]transport.Addr)
		for _, m := range movies {
			m := m
			resolver.ResolveKey("vod.servers", m, 1, 3, func(addrs []transport.Addr) { out[m] = addrs })
			r.clk.Advance(50 * time.Millisecond)
		}
		return out
	}
	movies := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	before := resolveAll(movies)
	for m, owners := range before {
		if len(owners) != 1 {
			t.Fatalf("movie %s: owners = %v", m, owners)
		}
	}

	// Let srv-2's registration lapse; survivors keep only their own arcs
	// plus srv-2's orphaned movies.
	regs["srv-2"].Stop()
	r.clk.Advance(3 * time.Second)
	after := resolveAll(movies)
	for _, m := range movies {
		if after[m][0] == "srv-2" {
			t.Fatalf("movie %s still resolves to the lapsed server", m)
		}
		if before[m][0] != "srv-2" && after[m][0] != before[m][0] {
			t.Fatalf("movie %s moved from %s to %s though its owner never lapsed",
				m, before[m][0], after[m][0])
		}
	}
}

// TestResolveKeyEmptyGroup: a key resolution against a group with no live
// members answers with an empty list — an answer, not a timeout.
func TestResolveKeyEmptyGroup(t *testing.T) {
	r := newRig(t)
	resolver := congress.NewResolver(r.clk, r.channelOf(t, "client"), "directory")
	called := false
	var got []transport.Addr
	resolver.ResolveKey("vod.servers", "casablanca", 2, 3, func(addrs []transport.Addr) {
		called, got = true, addrs
	})
	r.clk.Advance(200 * time.Millisecond)
	if !called || len(got) != 0 {
		t.Fatalf("called=%v got=%v, want prompt empty answer", called, got)
	}
}

// TestResolveStreakEscalatesAndResets pins the cross-resolution backoff
// memory: while the directory stays unreachable, each new resolution starts
// deeper in the backoff schedule (fewer probes for the same wall time), and
// one successful reply resets the streak so the next failure probes from
// the base delay again.
func TestResolveStreakEscalatesAndResets(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	net := netsim.New(clk, 1, netsim.LAN())

	// A scriptable directory: counts requests, and answers them (with an
	// empty member list — still an answer) only when told to.
	raw, err := net.NewEndpoint("directory")
	if err != nil {
		t.Fatal(err)
	}
	dirCh := transport.NewMux(raw).Channel(transport.ChannelDirectory)
	requests, answering := 0, false
	dirCh.SetHandler(func(from transport.Addr, payload []byte) {
		requests++
		if !answering {
			return
		}
		rd := wire.NewReader(payload)
		if rd.U8() != 2 { // kindResolve
			return
		}
		group := rd.String()
		nonce := rd.U64()
		reply := wire.AppendU8(nil, 3) // kindReply
		reply = wire.AppendString(reply, group)
		reply = wire.AppendU64(reply, nonce)
		reply = wire.AppendU16(reply, 0)
		_ = dirCh.Send(from, reply)
	})

	rawC, err := net.NewEndpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	resolver := congress.NewResolver(clk, transport.NewMux(rawC).Channel(transport.ChannelDirectory), "directory")

	// The retry count is fixed (initial + maxRetries probes), so the streak
	// shows up as time: a deeper starting backoff stretches the same five
	// probes over a longer window. Measure time-to-give-up.
	failedDuration := func() time.Duration {
		requests = 0
		start := clk.Now()
		done := false
		resolver.Resolve("g", 4, func([]transport.Addr) { done = true })
		for i := 0; i < 3000 && !done; i++ {
			clk.Advance(10 * time.Millisecond)
		}
		if !done {
			t.Fatal("resolution never gave up")
		}
		if requests != 5 {
			t.Fatalf("probes = %d, want 5", requests)
		}
		return clk.Now().Sub(start)
	}

	// Consecutive failed resolutions start deeper in the schedule. With
	// base 300ms, cap 2s and ≤25% jitter the windows are disjoint for the
	// first escalation and monotone to the cap after.
	first, second, third := failedDuration(), failedDuration(), failedDuration()
	if second <= first {
		t.Fatalf("failure streak did not escalate backoff: %v then %v", first, second)
	}
	if third <= first {
		t.Fatalf("streak escalation not sustained: %v, %v, %v", first, second, third)
	}

	// One answered resolution resets the streak: the next failed
	// resolution probes like the very first again.
	answering = true
	answered := false
	var got []transport.Addr
	resolver.Resolve("g", 4, func(addrs []transport.Addr) { answered, got = true, addrs })
	clk.Advance(time.Second)
	if !answered || got == nil || len(got) != 0 {
		t.Fatalf("answered resolve: called=%v got=%v, want empty success", answered, got)
	}
	// Back to the base schedule: the post-reset failure finishes faster
	// than any escalated one (jitter keeps it within ~25% of the first).
	answering = false
	if after := failedDuration(); after >= second {
		t.Fatalf("streak not reset by success: %v, escalated run took %v", after, second)
	}
}
