package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sweep"
)

// BenchmarkSweepSpeedup measures what across-run parallelism buys: the
// wall-clock time of a 32-seed chaos sweep at workers=1 versus
// workers=GOMAXPROCS, through the exact chaos.Sweep path that
// `vodbench -chaos` and TestClusterMonkey use. The reported "speedup"
// metric is summed per-job CPU time over wall time (≈ the core count when
// the machine keeps up; ≈ 1 on a single-core box). ns/op is the headline:
// the whole 32-seed sweep, end to end. Recorded into BENCH_sweep.json by
// `make bench-json` for regression comparison.
// The gomaxprocs metric is recorded alongside the speedup so a reader of
// BENCH_sweep.json can tell a real parallelism regression from a hardware
// artifact, and the parallel leg is skipped outright on a single-core
// container — there it can only ever report ≈1.0×, which polluted the bench
// trajectory when it was recorded as if it were meaningful.
func BenchmarkSweepSpeedup(b *testing.B) {
	const seeds = 32
	procs := runtime.GOMAXPROCS(0)
	for legIdx, workers := range []int{1, procs} {
		parallelLeg := legIdx == 1
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if parallelLeg && procs == 1 {
				b.Skipf("GOMAXPROCS=1: the parallel leg cannot beat workers=1 on this hardware")
			}
			var sum sweep.Summary
			for i := 0; i < b.N; i++ {
				reports, s, err := chaos.Sweep(context.Background(), 1, seeds, workers, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) != seeds {
					b.Fatalf("sweep returned %d reports, want %d", len(reports), seeds)
				}
				sum = s
			}
			b.ReportMetric(sum.Speedup(), "speedup")
			b.ReportMetric(float64(sum.Wall.Milliseconds()), "wall-ms/sweep")
			b.ReportMetric(float64(procs), "gomaxprocs")
		})
	}
}
