// Package repro's root benchmarks regenerate every figure and table of the
// paper's evaluation (one benchmark per experiment; see DESIGN.md §3 for
// the index). Each benchmark reports the experiment's headline quantities
// via b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report; `cmd/vodbench` prints the full series and tables.
package repro

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/flowctl"
	"repro/internal/sim"
)

// BenchmarkSimThroughput measures the frame hot path end to end: the LAN
// scenario's delivered datagrams per wall-clock second and the simulated-
// to-wall time ratio, via the same sim.MeasureThroughput that backs
// `vodbench -stats`. The allocs/op column is the alloc-regression headline
// for the whole scenario; per-component floors are pinned by the
// TestAllocs* tests in internal/{wire,clock,netsim}.
func BenchmarkSimThroughput(b *testing.B) {
	var packets, simSecs, wallSecs float64
	for i := 0; i < b.N; i++ {
		tp := sim.MeasureThroughput(int64(i + 1))
		packets += float64(tp.Packets)
		simSecs += tp.SimTime.Seconds()
		wallSecs += tp.WallTime.Seconds()
	}
	b.ReportMetric(packets/wallSecs, "packets/s")
	b.ReportMetric(simSecs/wallSecs, "sim-s/wall-s")
}

// BenchmarkFig4LANScenario regenerates Figures 4a–4d: the 90-second LAN
// run with a server crash at ~38s and a load-balancing migration ~24s
// later. Reported metrics are the figures' headline values.
func BenchmarkFig4LANScenario(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res = sim.Run(sim.LANScenario(int64(i + 1)))
	}
	crashAt, _ := sim.EventTimesLAN()
	b.ReportMetric(float64(res.Final.Skipped()), "skipped-frames")
	b.ReportMetric(float64(res.Final.Late), "late-frames")
	b.ReportMetric(float64(res.Final.Stalls), "stalls")
	b.ReportMetric(res.SWOccupancy.MeanBetween(20*time.Second, 35*time.Second), "sw-occ-mean")
	b.ReportMetric(res.HWOccupancy.MinBetween(crashAt, crashAt+4*time.Second), "hw-bytes-min-at-crash")
}

// BenchmarkFig5WANScenario regenerates Figures 5a–5b: the same behavior
// over a lossy 7-hop WAN path.
func BenchmarkFig5WANScenario(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res = sim.Run(sim.WANScenario(int64(i + 1)))
	}
	b.ReportMetric(float64(res.Final.Skipped()), "skipped-frames")
	b.ReportMetric(float64(res.Final.OverflowDropped), "overflow-discards")
	b.ReportMetric(float64(res.Final.Displayed), "displayed-frames")
}

// BenchmarkTableTakeover measures crash-takeover latency (paper: ≈0.5s on
// a LAN, dominated by failure detection).
func BenchmarkTableTakeover(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		total += sim.TakeoverTrial(int64(i + 1))
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "takeover-ms")
}

// BenchmarkTableSyncOverhead measures the state-sync bandwidth share
// (paper: < 1/1000 of the service's bandwidth).
func BenchmarkTableSyncOverhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.LANScenario(int64(i + 1)))
		var video, syncBytes uint64
		for _, st := range res.ServerStats {
			video += st.VideoBytes
			syncBytes += st.SyncBytes
		}
		ratio = float64(syncBytes) / float64(video)
	}
	b.ReportMetric(ratio*1e6, "sync-ppm") // parts per million of video bandwidth
}

// BenchmarkTableEmergency measures the §4.1 emergency mechanism: the total
// extra frames of the decaying burst and the peak bandwidth boost after a
// crash (paper: 43 frames; ≤ +40%).
func BenchmarkTableEmergency(b *testing.B) {
	var boost float64
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.LANScenario(int64(i + 1)))
		crashAt, _ := sim.EventTimesLAN()
		var peak float64
		for w := crashAt; w < crashAt+3500*time.Millisecond; w += 100 * time.Millisecond {
			r := res.VideoBytesCum.At(w+time.Second) - res.VideoBytesCum.At(w)
			if r > peak {
				peak = r
			}
		}
		mean := res.VideoBytesCum.Last() / res.VideoBytesCum.Times[len(res.VideoBytesCum.Times)-1].Seconds()
		boost = (peak - mean) / mean * 100
	}
	b.ReportMetric(float64(flowctl.EmergencyTotal(12, 0.8)), "extra-frames-q12")
	b.ReportMetric(boost, "peak-boost-pct")
}

// BenchmarkTableFaultTolerance contrasts replication-k with Tiger striping
// (§7): k=3 survives two failures; Tiger loses blocks when two adjacent
// cubs die.
func BenchmarkTableFaultTolerance(b *testing.B) {
	var t sim.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = sim.TableByID("faults", int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	// Row 0: replication k=3 with 2 failures; row 3: Tiger, 2 adjacent.
	repl, _ := strconv.Atoi(t.Rows[0][2])
	tiger, _ := strconv.Atoi(t.Rows[3][2])
	b.ReportMetric(float64(repl), "repl-k3-frames-lost")
	b.ReportMetric(float64(tiger), "tiger-2adj-frames-lost")
}

// BenchmarkTableFlowControl verifies and times the Figure 2 policy table.
func BenchmarkTableFlowControl(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.TableFlowControl()
	}
	ok := 0.0
	for _, row := range t.Rows {
		if row[3] == "OK" {
			ok++
		}
	}
	b.ReportMetric(ok, "policy-rows-verified")
}

// BenchmarkAblationBufferSweep regenerates the §4.2 buffer-sizing sweep.
func BenchmarkAblationBufferSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.TableByID("buffersweep", int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEmergencySweep regenerates the §4.1 (q, f) tradeoff.
func BenchmarkAblationEmergencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.TableByID("emergencysweep", int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSyncSweep regenerates the §5.2 sync-period tradeoff.
func BenchmarkAblationSyncSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.TableByID("syncsweep", int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationQoS regenerates the §2 comparison: the WAN scenario
// with and without a reserved (loss-free, low-jitter) channel.
func BenchmarkAblationQoS(b *testing.B) {
	var t sim.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = sim.TableByID("qos", int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	bestEffort, _ := strconv.Atoi(t.Rows[0][2])
	reserved, _ := strconv.Atoi(t.Rows[1][2])
	b.ReportMetric(float64(bestEffort), "skipped-best-effort")
	b.ReportMetric(float64(reserved), "skipped-reserved")
}

// BenchmarkAblationOverload regenerates the traffic-class overload trial:
// a flash crowd of best-effort viewers on one title while the server runs
// the degrade-before-refuse ladder (shaper + quality shedding + admission
// refusals). The metrics pin the class guarantees: reserved viewers stall
// zero times while best-effort load is degraded, shed, and refused.
func BenchmarkAblationOverload(b *testing.B) {
	var res sim.OverloadResult
	for i := 0; i < b.N; i++ {
		res = sim.OverloadTrial(sim.OverloadConfig{Seed: int64(i + 1)})
	}
	b.ReportMetric(float64(res.Reserved.Stalls), "reserved-stalls")
	b.ReportMetric(float64(res.Stats.DegradedFrames), "degraded-frames")
	b.ReportMetric(float64(res.Stats.ShedTokens), "shed-tokens")
	b.ReportMetric(float64(res.Stats.RefusalsBestEffort), "refused-best-effort")
}

// BenchmarkAblationCapacity regenerates the viewers-per-server saturation
// experiment (one 100 Mbps uplink; the knee near 70 motivates the paper's
// bring-up-another-server design and admission control).
func BenchmarkAblationCapacity(b *testing.B) {
	var t sim.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = sim.TableByID("capacity", int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	starvedAt85, _ := strconv.Atoi(t.Rows[3][4])
	b.ReportMetric(float64(starvedAt85), "starved-viewers-at-119pct")
}

// BenchmarkTableScale regenerates the two-tier capacity table (DESIGN
// §12): sharded movie groups plus leased viewers, up to 50 servers and
// 10,000 concurrent streams. The metrics pin the headline row: every
// viewer healthy, and exactly one Open per viewer (the ring-ordered
// anycast lands on the owner first try).
func BenchmarkTableScale(b *testing.B) {
	var t sim.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = sim.TableByID("scale", int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	last := t.Rows[len(t.Rows)-1]
	healthy, _ := strconv.Atoi(last[3])
	opens, _ := strconv.ParseFloat(last[7], 64)
	b.ReportMetric(float64(healthy), "healthy-viewers-50x10k")
	b.ReportMetric(opens, "opens-per-viewer")
}

// BenchmarkAblationDiscardPolicy regenerates the §3 discard-policy
// ablation (I-frame preserving vs naive).
func BenchmarkAblationDiscardPolicy(b *testing.B) {
	var t sim.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = sim.TableByID("discard", int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	iPreserving, _ := strconv.Atoi(t.Rows[0][2])
	iNaive, _ := strconv.Atoi(t.Rows[1][2])
	b.ReportMetric(float64(iPreserving), "iframes-lost-paper-policy")
	b.ReportMetric(float64(iNaive), "iframes-lost-naive")
}
