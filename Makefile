# Convenience targets; everything is plain `go` underneath.

.PHONY: test test-short race bench bench-json bench-smoke bench-capacity bench-scale bench-scale-budget profile-scale chaos sweep figures tables examples vet fuzz-smoke

test:        ## full test suite (includes ~20s of real-clock tests)
	go test ./...

test-short:  ## skip real-time tests
	go test -short ./...

race:        ## race detector over the whole module
	go test -race -short ./...

bench:       ## one benchmark per paper figure/table + micro benches
	go test -bench=. -benchmem ./...

bench-json:  ## hot-path + sweep benchmarks, appended for regression comparison
	@go test -run='^$$' -bench='^Benchmark(Sim|Fig|Table|Ablation)' -benchmem -json . > BENCH_json.tmp || { cat BENCH_json.tmp; rm -f BENCH_json.tmp; exit 1; }
	@cat BENCH_json.tmp >> BENCH_hotpath.json
	@rm -f BENCH_json.tmp
	@echo "bench-json: appended to BENCH_hotpath.json"
	go test -run='^$$' -bench=SweepSpeedup -benchtime=2x -benchmem -json . > BENCH_sweep.json

bench-smoke: ## one cheap iteration of the throughput benchmark (CI)
	go test -run='^$$' -bench=SimThroughput -benchtime=1x .

bench-capacity: ## capacity-scale benchmark; fails if B/op exceeds the checked-in budget
	@out=$$(go test -run='^$$' -bench='^BenchmarkAblationCapacity$$' -benchtime=1x -benchmem .) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	bop=$$(echo "$$out" | awk '/^BenchmarkAblationCapacity/ { for (i = 2; i <= NF; i++) if ($$i == "B/op") print $$(i-1) }'); \
	budget=$$(grep -v '^#' BENCH_capacity_budget); \
	if [ -z "$$bop" ]; then echo "bench-capacity: could not parse B/op from benchmark output"; exit 1; fi; \
	if [ "$$bop" -gt "$$budget" ]; then echo "bench-capacity: FAIL $$bop B/op exceeds budget $$budget"; exit 1; fi; \
	echo "bench-capacity: OK $$bop B/op within budget $$budget"

bench-scale: ## two-tier 50-server/10k-viewer capacity row, recorded into BENCH_hotpath.json
	@go test -run='^$$' -bench='^BenchmarkTableScale$$' -benchtime=1x -benchmem -json . > BENCH_scale.tmp || { cat BENCH_scale.tmp; rm -f BENCH_scale.tmp; exit 1; }
	@grep -h '"Output"' BENCH_scale.tmp | grep -o 'Benchmark[^"\\]*' | head -2 || true
	@cat BENCH_scale.tmp >> BENCH_hotpath.json
	@rm -f BENCH_scale.tmp
	@echo "bench-scale: recorded into BENCH_hotpath.json"

bench-scale-budget: ## scale-table benchmark; fails if B/op exceeds the checked-in budget
	@out=$$(go test -run='^$$' -bench='^BenchmarkTableScale$$' -benchtime=1x -benchmem .) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	bop=$$(echo "$$out" | awk '/^BenchmarkTableScale/ { for (i = 2; i <= NF; i++) if ($$i == "B/op") print $$(i-1) }'); \
	budget=$$(grep -v '^#' BENCH_scale_budget); \
	if [ -z "$$bop" ]; then echo "bench-scale-budget: could not parse B/op from benchmark output"; exit 1; fi; \
	if [ "$$bop" -gt "$$budget" ]; then echo "bench-scale-budget: FAIL $$bop B/op exceeds budget $$budget"; exit 1; fi; \
	echo "bench-scale-budget: OK $$bop B/op within budget $$budget"

profile-scale: ## CPU + allocation profiles of the 50-server/10k-viewer table
	go run ./cmd/vodbench -table scale -cpuprofile scale.cpu.prof -memprofile scale.mem.prof > /dev/null
	@echo "profile-scale: wrote scale.cpu.prof and scale.mem.prof"
	@echo "  inspect with: go tool pprof -top scale.cpu.prof"

chaos:       ## seeded fault schedules + invariant checks, race-clean
	go test -race -short -run 'Chaos|Monkey|Sweep' ./...
	go run ./cmd/vodbench -chaos -runs 50
	go run ./cmd/vodbench -classes -runs 24

sweep:       ## 120-seed chaos sweep across all cores (wall-time budgeted)
	timeout 300 go run ./cmd/vodbench -chaos -runs 120

figures:     ## regenerate every evaluation figure as TSV
	go run ./cmd/vodbench -fig all

tables:      ## regenerate every evaluation table
	go run ./cmd/vodbench -table all

examples:    ## run all simulated examples
	for e in quickstart failover loadbalance vcr discovery hacounter; do \
		echo "== $$e =="; go run ./examples/$$e; done

fuzz-smoke:  ## short fuzz pass over the wire decoders (one -fuzz per run)
	go test -run='^$$' -fuzz='^FuzzDecodeMessage$$' -fuzztime=10s ./internal/wire
	go test -run='^$$' -fuzz='^FuzzDecodeOpenInto$$' -fuzztime=10s ./internal/wire
	go test -run='^$$' -fuzz='^FuzzDecodeLease$$' -fuzztime=10s ./internal/lease

vet:
	go vet ./...
	gofmt -l .
