package repro

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
)

// leaseRig builds the smallest two-tier deployment: one server and one
// leased viewer, the configuration the 10k-viewer scale table instantiates
// ten thousand times. striped selects the coalesced pacing path; broadcast
// additionally batches each stripe beat's sends into one network call.
func leaseRig(t *testing.T, striped, broadcast bool) (*clock.Virtual, *server.Server, *client.Client) {
	t.Helper()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, 1, netsim.LAN())
	movie := mpeg.Generate("feature", mpeg.StreamConfig{Duration: 10 * time.Minute, Seed: 1})
	cat := store.NewCatalog()
	cat.Add(movie)
	srv, err := server.New(server.Config{
		ID:              "server-1",
		Clock:           clk,
		Network:         net,
		Catalog:         cat,
		Peers:           []string{"server-1"},
		StripedEgress:   striped,
		BroadcastFanout: broadcast,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		srv.Stop()
		t.Fatal(err)
	}
	clk.Advance(500 * time.Millisecond)
	c, err := client.New(client.Config{
		ID:      "viewer-1",
		Clock:   clk,
		Network: net,
		Servers: []string{"server-1"},
		Lease:   true,
	})
	if err != nil {
		srv.Stop()
		t.Fatal(err)
	}
	return clk, srv, c
}

// TestAllocsLeasedViewerSetup pins the per-viewer setup cost in lease mode:
// Open, lease grant, a second of streaming with renewals, graceful stop. At
// the headline table size this cycle runs ten thousand times per trial, so
// a stray per-incarnation allocation multiplies straight into the table's
// footprint. Lease mode involves no group membership — no view change, no
// knowledge exchange — so the warm budget is far tighter than the
// session-group pin in TestAllocsSessionSetup.
func TestAllocsLeasedViewerSetup(t *testing.T) {
	clk, srv, c := leaseRig(t, true, false)
	defer srv.Stop()
	defer c.Close()

	cycle := func() {
		if err := c.Watch("feature"); err != nil {
			t.Fatal(err)
		}
		clk.Advance(1 * time.Second)
		if st := c.State(); st != client.StateWatching {
			t.Fatalf("after open: state %v, want watching", st)
		}
		if err := c.StopWatching(); err != nil {
			t.Fatal(err)
		}
		// Let the server retire the session and the lease sweep observe it.
		clk.Advance(2 * time.Second)
	}
	for i := 0; i < 8; i++ { // warm the pools on both sides
		cycle()
	}
	allocs := testing.AllocsPerRun(16, cycle)

	// A warm cycle measures ≈55 allocs (sync multicasts of the movie's
	// single-entry knowledge table dominate); 2× headroom for toolchain
	// drift while still catching any per-viewer reallocation.
	const budget = 120
	if allocs > budget {
		t.Fatalf("leased viewer setup cycle = %v allocs, budget %d", allocs, budget)
	}
	t.Logf("leased viewer setup cycle = %v allocs (budget %d)", allocs, budget)
}

// TestAllocsStripedStreaming pins the striped egress steady state: with one
// warm leased viewer streaming under a stripe, a simulated second moves ~30
// frames through stripe tick → per-session pacing → preframed ref send →
// delivery, plus renewals and the half-second state sync. The budget is a
// small constant, far below the frame count, so a single allocation anywhere
// on the per-frame striped path (the stripe walk, the pacing body, the
// dense-index network send) would blow it by an order of magnitude.
func TestAllocsStripedStreaming(t *testing.T) {
	clk, srv, c := leaseRig(t, true, false)
	defer srv.Stop()
	defer c.Close()

	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second) // warm: pools, stripe, flow control settled

	before := c.Counters().Displayed
	allocs := testing.AllocsPerRun(10, func() { clk.Advance(time.Second) })
	if after := c.Counters().Displayed; after == before {
		t.Fatal("stream idle during measurement")
	}

	const budget = 40
	if allocs > budget {
		t.Fatalf("striped streaming = %v allocs per simulated second, budget %d", allocs, budget)
	}
	t.Logf("striped streaming = %v allocs per simulated second (budget %d)", allocs, budget)
}

// TestAllocsBroadcastStreaming pins the broadcast fan-out steady state: the
// same warm streaming second as TestAllocsStripedStreaming, but with each
// stripe beat collected into the server's batch scratch and delivered
// through one pooled netsim broadcast event. The per-STRIPE-TICK cost must
// be at most one allocation (it measures zero once the batch record and
// collector scratch are warm) — ~30 stripe beats move through per simulated
// second, so the whole-second budget below holds only if the per-beat frame
// path (collect, flush, batch schedule, batch fire) allocates nothing.
func TestAllocsBroadcastStreaming(t *testing.T) {
	clk, srv, c := leaseRig(t, true, true)
	defer srv.Stop()
	defer c.Close()

	if err := c.Watch("feature"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second) // warm: pools, stripe, batch record settled

	before := c.Counters().Displayed
	allocs := testing.AllocsPerRun(10, func() { clk.Advance(time.Second) })
	if after := c.Counters().Displayed; after == before {
		t.Fatal("stream idle during measurement")
	}

	// ~30 stripe ticks per simulated second: a budget of 30 is the "at most
	// one alloc per stripe tick" line, and the renewal/sync background fits
	// inside it because the batched frame path itself measures zero.
	const budget = 30
	if allocs > budget {
		t.Fatalf("broadcast streaming = %v allocs per simulated second, budget %d", allocs, budget)
	}
	t.Logf("broadcast streaming = %v allocs per simulated second (budget %d)", allocs, budget)
}
