// Command vod-server runs one fault-tolerant VoD server over real UDP.
//
// Start a replicated service on two terminals:
//
//	vod-server -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002
//	vod-server -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7002
//
// then watch a movie with vod-client. Servers may be started and stopped
// at any time; clients migrate transparently. Every server generates the
// same synthetic movies from the shared seed, standing in for the paper's
// separate replication mechanism for video material.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/mpeg"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/transport"
)

type udpNetwork struct {
	reg *obs.Registry
}

func (n udpNetwork) NewEndpoint(addr transport.Addr) (transport.Endpoint, error) {
	return transport.ListenUDP(string(addr), addr, n.reg)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vod-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vod-server", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "UDP address to serve on (also the server's ID)")
	peers := fs.String("peers", "", "comma-separated list of all server addresses (including this one)")
	movies := fs.String("movies", "casablanca:90s", "comma-separated movie specs, id:duration")
	movieDir := fs.String("moviedir", "", "directory of .vodm movie files (overrides -movies; see store.SaveTo)")
	seed := fs.Int64("seed", 1, "movie generation seed (must match on all servers)")
	statsEvery := fs.Duration("stats", 10*time.Second, "stats print period (0 disables)")
	debugAddr := fs.String("debug-addr", "", "HTTP address serving the observability snapshot as JSON (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var catalog *store.Catalog
	if *movieDir != "" {
		var err error
		catalog, err = store.LoadDirectory(*movieDir)
		if err != nil {
			return err
		}
		for _, id := range catalog.List() {
			m, _ := catalog.Get(id)
			fmt.Println("serving", m)
		}
	} else {
		catalog = store.NewCatalog()
		for _, spec := range strings.Split(*movies, ",") {
			id, durStr, ok := strings.Cut(strings.TrimSpace(spec), ":")
			if !ok {
				return fmt.Errorf("bad movie spec %q, want id:duration", spec)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil {
				return fmt.Errorf("bad movie duration in %q: %w", spec, err)
			}
			m := mpeg.Generate(id, mpeg.StreamConfig{Duration: dur, Seed: *seed})
			catalog.Add(m)
			fmt.Println("serving", m)
		}
	}

	peerList := []string{*listen}
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}

	reg := obs.NewRegistry(*listen, nil)
	s, err := server.New(server.Config{
		ID:      *listen,
		Clock:   clock.Real{},
		Network: udpNetwork{reg: reg},
		Catalog: catalog,
		Peers:   peerList,
		Obs:     reg,
	})
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	defer s.Stop()
	fmt.Printf("server %s up; peers: %v\n", *listen, peerList)

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/debug/vod", reg)
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("debug counters at http://%s/debug/vod\n", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			return nil
		case <-tick:
			st := s.Stats()
			fmt.Printf("sessions=%v frames-sent=%d takeovers=%d releases=%d emergencies=%d\n",
				s.ActiveSessions(), st.FramesSent, st.Takeovers, st.Releases, st.Emergencies)
		}
	}
}
