package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/mpeg"
	"repro/internal/store"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-movies", "no-duration"}); err == nil {
		t.Fatal("bad movie spec accepted")
	}
	if err := run([]string{"-movies", "m:notaduration"}); err == nil {
		t.Fatal("bad duration accepted")
	}
	if err := run([]string{"-moviedir", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing movie directory accepted")
	}
}

func TestMovieDirRoundTrip(t *testing.T) {
	// The -moviedir path loads what store.SaveTo wrote.
	dir := t.TempDir()
	cat := store.NewCatalog()
	cat.Add(mpeg.Generate("saved", mpeg.StreamConfig{Duration: time.Second, Seed: 1}))
	if err := cat.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.LoadDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Has("saved") {
		t.Fatal("movie lost in the directory round trip")
	}
	// Corrupt the file: the server must refuse to start on it.
	if err := os.WriteFile(filepath.Join(dir, "saved"+store.MovieFileExt), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-moviedir", dir}); err == nil {
		t.Fatal("corrupt movie dir accepted")
	}
}
