package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRunSingleFigure(t *testing.T) {
	for _, fig := range []string{"4a", "4b", "4c", "4d", "5a", "5b"} {
		if err := run([]string{"-fig", fig}); err != nil {
			t.Fatalf("vodbench -fig %s: %v", fig, err)
		}
	}
}

func TestRunSingleTable(t *testing.T) {
	// The cheap tables; the sweeps are exercised by the root benchmarks.
	for _, table := range []string{"flowctl", "takeover", "sync"} {
		if err := run([]string{"-table", table}); err != nil {
			t.Fatalf("vodbench -table %s: %v", table, err)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run([]string{"-fig", "9z"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-table", "nope"}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunChaos(t *testing.T) {
	// One seeded schedule end to end; a violation surfaces as an error.
	if err := run([]string{"-chaos", "-seed", "7"}); err != nil {
		t.Fatalf("vodbench -chaos -seed 7: %v", err)
	}
}

// TestChaosParallelOutputIdentical: the chaos sweep's stdout is the CLI's
// replay contract — it must not change a byte when the seeds fan across
// workers. Reports stream in seed order through the contiguous-prefix
// flush, so -parallel 8 and -parallel 1 render identically (the sweep
// summary line carries wall-clock times, so it is excluded by comparing
// per-seed report blocks, which is everything above it).
func TestChaosParallelOutputIdentical(t *testing.T) {
	capture := func(parallel string) string {
		var buf bytes.Buffer
		if err := runTo(&buf, []string{"-chaos", "-runs", "6", "-parallel", parallel}); err != nil {
			t.Fatalf("-parallel %s: %v", parallel, err)
		}
		// Drop the summary line (wall/cpu times are nondeterministic).
		lines := strings.Split(buf.String(), "\n")
		var kept []string
		for _, l := range lines {
			if strings.HasPrefix(l, "sweep:") {
				continue
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n")
	}
	seq := capture("1")
	par := capture("8")
	if seq != par {
		t.Fatalf("chaos output diverged between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "chaos seed 6:") {
		t.Fatalf("sweep output missing later seeds:\n%s", seq)
	}
}

// TestChaosNoFailedSeedLineOnSuccess pins the success-path contract: a
// clean sweep prints the summary but no "failed seeds" list. (The failure
// path — sorted seed extraction from a mixed report set — is pinned by
// TestFailedSeedsSorted in internal/chaos, since no real seed violates
// the invariants today.)
func TestChaosNoFailedSeedLineOnSuccess(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"-chaos", "-runs", "3"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "failed seeds:") {
		t.Fatalf("clean sweep printed a failed-seed list:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "sweep: 3 jobs, 0 failed") {
		t.Fatalf("missing sweep summary:\n%s", buf.String())
	}
}

// TestStatsParallelRuns: -stats fans the LAN and WAN scenarios out and
// must still print them in the canonical order.
func TestStatsParallelRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, []string{"-stats", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lan := strings.Index(out, "== fig4-lan: observability counters ==")
	wan := strings.Index(out, "== fig5-wan: observability counters ==")
	if lan < 0 || wan < 0 || wan < lan {
		t.Fatalf("stats sections missing or out of order (lan@%d wan@%d)", lan, wan)
	}
}

func TestRunSeedChangesOutput(t *testing.T) {
	// Just verify alternate seeds execute cleanly end to end.
	if err := run([]string{"-fig", "4a", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureTSVFormat(t *testing.T) {
	// Each figure must emit parseable "# comment" and "seconds<TAB>value"
	// lines — the contract plotting scripts rely on.
	s, ann, err := sim.Figure("4c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ann) != 2 {
		t.Fatalf("LAN figure annotations = %v, want crash + load balance", ann)
	}
	var sb strings.Builder
	if err := s.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d samples in a 90s figure", len(lines))
	}
	for _, line := range lines[1:] {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("malformed TSV row %q", line)
		}
		if _, err := strconv.ParseFloat(parts[0], 64); err != nil {
			t.Fatalf("bad time in %q", line)
		}
		if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
			t.Fatalf("bad value in %q", line)
		}
	}
}
