package main

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRunSingleFigure(t *testing.T) {
	for _, fig := range []string{"4a", "4b", "4c", "4d", "5a", "5b"} {
		if err := run([]string{"-fig", fig}); err != nil {
			t.Fatalf("vodbench -fig %s: %v", fig, err)
		}
	}
}

func TestRunSingleTable(t *testing.T) {
	// The cheap tables; the sweeps are exercised by the root benchmarks.
	for _, table := range []string{"flowctl", "takeover", "sync"} {
		if err := run([]string{"-table", table}); err != nil {
			t.Fatalf("vodbench -table %s: %v", table, err)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run([]string{"-fig", "9z"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-table", "nope"}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunChaos(t *testing.T) {
	// One seeded schedule end to end; a violation surfaces as an error.
	if err := run([]string{"-chaos", "-seed", "7"}); err != nil {
		t.Fatalf("vodbench -chaos -seed 7: %v", err)
	}
}

func TestRunSeedChangesOutput(t *testing.T) {
	// Just verify alternate seeds execute cleanly end to end.
	if err := run([]string{"-fig", "4a", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureTSVFormat(t *testing.T) {
	// Each figure must emit parseable "# comment" and "seconds<TAB>value"
	// lines — the contract plotting scripts rely on.
	s, ann, err := sim.Figure("4c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ann) != 2 {
		t.Fatalf("LAN figure annotations = %v, want crash + load balance", ann)
	}
	var sb strings.Builder
	if err := s.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d samples in a 90s figure", len(lines))
	}
	for _, line := range lines[1:] {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("malformed TSV row %q", line)
		}
		if _, err := strconv.ParseFloat(parts[0], 64); err != nil {
			t.Fatalf("bad time in %q", line)
		}
		if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
			t.Fatalf("bad value in %q", line)
		}
	}
}
