// Command vodbench regenerates every figure and table of the paper's
// evaluation (§6) from the deterministic simulation harness.
//
// Usage:
//
//	vodbench                  # everything: all figures and tables
//	vodbench -fig 4a          # one figure as TSV (seconds <TAB> value)
//	vodbench -fig all         # all figures
//	vodbench -table takeover  # one table
//	vodbench -table all       # all tables
//	vodbench -seed 7          # change the simulation seed
//	vodbench -chaos -runs 50  # run 50 seeded fault schedules, report invariants
//	vodbench -chaos -seed 53  # replay one schedule (e.g. a CI failure) exactly
//	vodbench -classes -runs 24 # run seeded overload trials, check class invariants
//	vodbench -parallel 4      # bound the sweep worker pool (default: all cores)
//
// Independent simulation runs — chaos seeds, table trials, the figure
// scenarios — fan out across all cores by default (internal/sweep).
// Parallelism is strictly across runs, never inside one, so every figure,
// table and chaos report is byte-identical at any -parallel setting; a
// failing chaos sweep ends with a sorted "failed seeds" list, each
// replayable exactly with -chaos -seed N.
//
// Figures: 4a skipped frames (LAN) · 4b late frames (LAN) · 4c software
// buffer occupancy (LAN) · 4d hardware buffer occupancy (LAN) · 5a skipped
// frames (WAN) · 5b overflow discards (WAN).
//
// Tables: flowctl (Figure 2 policy) · emergency (§4.1) · sync (§5.2
// overhead) · takeover · faults (vs Tiger, §7) · buffersweep ·
// emergencysweep · syncsweep · discard (ablations).
//
// One extra table is reachable by name only (not part of -table all, so
// the default outputs never change): `vodbench -table scale` runs the
// two-tier capacity table (DESIGN §12) — sharded movie groups plus leased
// viewers at 10×1,000, 25×4,000 and 50×10,000 servers×viewers. It is the
// most expensive table (about a minute on one core; the rows fan out
// across available cores).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vodbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runTo(os.Stdout, args) }

// profileTo starts CPU profiling into path (empty = no-op) and returns the
// stop function. Profiles cover the full run including the parallel sweeps,
// so a speed round starts from measurements instead of guesses.
func profileTo(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile dumps an allocation profile to path (empty = no-op).
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle accounting so the profile reflects live + cumulative allocs
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// runTo executes the CLI against an arbitrary writer; the output-
// equivalence tests capture it to prove -parallel never changes a byte.
func runTo(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("vodbench", flag.ContinueOnError)
	fig := fs.String("fig", "", "figure to regenerate (4a 4b 4c 4d 5a 5b, or all)")
	table := fs.String("table", "", "table to regenerate (see package doc, or all)")
	list := fs.Bool("list", false, "list available figures and tables, then exit")
	seed := fs.Int64("seed", 1, "simulation seed")
	stats := fs.Bool("stats", false, "dump per-node observability counters for the LAN and WAN scenarios, then exit")
	chaosRun := fs.Bool("chaos", false, "execute seeded chaos schedules and check service invariants")
	classesRun := fs.Bool("classes", false, "execute seeded traffic-class overload trials and check the degrade-before-refuse invariants")
	runs := fs.Int("runs", 1, "with -chaos/-classes: number of consecutive seeds to run, starting at -seed")
	parallel := fs.Int("parallel", 0, "worker pool for independent simulation runs — chaos seeds, table trials, figure scenarios (0 = all cores, 1 = sequential)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sim.SetParallelism(*parallel)

	stopProf, err := profileTo(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopProf()
	defer func() {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "vodbench:", err)
		}
	}()

	if *chaosRun {
		// Seeds fan out across the worker pool; reports stream in seed
		// order as a contiguous prefix finishes, so the output is
		// byte-identical to a sequential sweep.
		reports, sum, err := chaos.Sweep(context.Background(), *seed, *runs, *parallel, nil,
			func(rep *chaos.Report) { rep.Write(out) })
		if err != nil {
			return fmt.Errorf("chaos sweep: %w", err)
		}
		if *runs > 1 {
			fmt.Fprintf(out, "sweep: %s\n", sum)
		}
		if failed := chaos.FailedSeeds(reports); len(failed) > 0 {
			fmt.Fprintf(out, "failed seeds: %v\n", failed)
			return fmt.Errorf("%d of %d chaos schedules violated invariants (failed seeds %v)",
				len(failed), *runs, failed)
		}
		return nil
	}
	if *classesRun {
		reports, sum, err := chaos.SweepClasses(context.Background(), *seed, *runs, *parallel, nil,
			func(rep *chaos.ClassReport) { rep.Write(out) })
		if err != nil {
			return fmt.Errorf("class sweep: %w", err)
		}
		if *runs > 1 {
			fmt.Fprintf(out, "sweep: %s\n", sum)
		}
		if failed := chaos.FailedClassSeeds(reports); len(failed) > 0 {
			fmt.Fprintf(out, "failed seeds: %v\n", failed)
			return fmt.Errorf("%d of %d class trials violated invariants (failed seeds %v)",
				len(failed), *runs, failed)
		}
		return nil
	}
	if *list {
		fmt.Fprintln(out, "figures:", sim.FigureIDs())
		fmt.Fprintln(out, "tables: ", sim.TableIDs())
		return nil
	}
	if *stats {
		// The LAN and WAN scenarios are independent runs: execute them in
		// parallel, print in the fixed order.
		scs := []sim.Scenario{sim.LANScenario(*seed), sim.WANScenario(*seed)}
		results, err := sweep.Run(context.Background(), len(scs), *parallel,
			func(i int, _ int64) (*sim.Result, error) { return sim.Run(scs[i]), nil })
		if err != nil {
			return err
		}
		for _, res := range results {
			fmt.Fprintf(out, "== %s: observability counters ==\n", res.Name)
			nodes := make([]string, 0, len(res.Obs))
			for id := range res.Obs {
				nodes = append(nodes, id)
			}
			sort.Strings(nodes)
			for _, id := range nodes {
				snap := res.Obs[id]
				names := make([]string, 0, len(snap.Counters))
				for name := range snap.Counters {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					fmt.Fprintf(out, "%-12s %-28s %d\n", id, name, snap.Counters[name])
				}
				for _, ev := range snap.Events {
					fmt.Fprintf(out, "%-12s event %-21s %s (%s)\n", id, ev.Kind, ev.Note, ev.At.Format("15:04:05.000"))
				}
			}
			fmt.Fprintln(out)
		}
		// Hot-path throughput, from the exact code path the
		// BenchmarkSimThroughput regression benchmark measures.
		tp := sim.MeasureThroughput(*seed)
		fmt.Fprintf(out, "== hot path: simulator throughput (LAN scenario, seed %d) ==\n", *seed)
		fmt.Fprintf(out, "%-24s %d\n", "delivered packets", tp.Packets)
		fmt.Fprintf(out, "%-24s %d\n", "delivered bytes", tp.Bytes)
		fmt.Fprintf(out, "%-24s %d\n", "heap allocs", tp.Allocs)
		fmt.Fprintf(out, "%-24s %d\n", "heap bytes", tp.AllocBytes)
		fmt.Fprintf(out, "%-24s %.2f\n", "allocs per packet", float64(tp.Allocs)/float64(tp.Packets))
		fmt.Fprintf(out, "%-24s %s\n", "wall time", tp.WallTime.Round(time.Millisecond))
		fmt.Fprintf(out, "%-24s %.0f\n", "packets/s (wall)", tp.PacketsPerSec())
		fmt.Fprintf(out, "%-24s %.0f\n", "sim-s per wall-s", tp.SpeedRatio())
		return nil
	}
	all := *fig == "" && *table == ""

	writeFig := func(s *metrics.Series, ann []sim.Annotation) error {
		for _, a := range ann {
			fmt.Fprintf(out, "# event %.1fs: %s\n", a.At.Seconds(), a.Label)
		}
		return s.WriteTSV(out)
	}

	if *fig == "all" || all {
		figs, anns := sim.Figures(*seed)
		for _, id := range sim.FigureIDs() {
			fmt.Fprintf(out, "== Figure %s ==\n", id)
			if err := writeFig(figs[id], anns[id]); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	} else if *fig != "" {
		s, ann, err := sim.Figure(*fig, *seed)
		if err != nil {
			return err
		}
		return writeFig(s, ann)
	}

	if *table == "all" || all {
		// Generate the tables in parallel (each table additionally fans its
		// own trials), then print in the canonical order.
		ids := sim.TableIDs()
		tables, err := sweep.Run(context.Background(), len(ids), *parallel,
			func(i int, _ int64) (sim.Table, error) { return sim.TableByID(ids[i], *seed) })
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Write(out); err != nil {
				return err
			}
		}
	} else if *table != "" {
		t, err := sim.TableByID(*table, *seed)
		if err != nil {
			return err
		}
		return t.Write(out)
	}
	return nil
}
