package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// A client without any servers must fail fast (config validation),
	// not hang waiting for a reply.
	if err := run([]string{"-servers", "", "-listen", "127.0.0.1:0"}); err == nil {
		t.Fatal("empty server list accepted")
	}
}

func TestApplyVCRParsing(t *testing.T) {
	// applyVCR command parsing — the client is nil-safe here because every
	// command path that reaches the client requires a well-formed command
	// first; feed only malformed ones.
	for _, cmd := range []string{"seek", "quality", "warp 9"} {
		if err := applyVCR(nil, cmd); err == nil {
			t.Errorf("command %q accepted", cmd)
		}
	}
	if err := applyVCR(nil, ""); err != nil {
		t.Errorf("blank line should be ignored, got %v", err)
	}
}
