// Command vod-client is a headless VoD client over real UDP: it opens a
// movie against the abstract server group, plays it (displaying means
// consuming frames at the nominal rate), and reports the same quantities
// the paper's evaluation plots — buffer occupancies, skipped, late and
// stalled frames.
//
//	vod-client -listen 127.0.0.1:7100 \
//	           -servers 127.0.0.1:7001,127.0.0.1:7002 -movie casablanca
//
// Kill the serving vod-server mid-playback and watch the counters: the
// surviving replica takes over within about half a second.
//
// The client reads VCR commands from stdin while playing:
//
//	pause | resume | seek <frame> | quality <fps> | stop
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/transport"
)

type udpNetwork struct {
	reg *obs.Registry
}

func (n udpNetwork) NewEndpoint(addr transport.Addr) (transport.Endpoint, error) {
	return transport.ListenUDP(string(addr), addr, n.reg)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vod-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vod-client", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7100", "UDP address to receive video on")
	servers := fs.String("servers", "127.0.0.1:7001", "comma-separated VoD server addresses")
	movie := fs.String("movie", "casablanca", "movie ID to watch")
	statsEvery := fs.Duration("stats", time.Second, "stats print period")
	seek := fs.Uint("seek", 0, "seek to this frame 5 seconds in (0 = no seek)")
	debugAddr := fs.String("debug-addr", "", "HTTP address serving the observability snapshot as JSON (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var serverList []string
	for _, s := range strings.Split(*servers, ",") {
		if s = strings.TrimSpace(s); s != "" {
			serverList = append(serverList, s)
		}
	}
	if len(serverList) == 0 {
		return fmt.Errorf("no servers given (-servers)")
	}

	reg := obs.NewRegistry(*listen, nil)
	c, err := client.New(client.Config{
		ID:      *listen,
		Clock:   clock.Real{},
		Network: udpNetwork{reg: reg},
		Servers: serverList,
		Obs:     reg,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Watch(*movie); err != nil {
		return err
	}
	fmt.Printf("watching %q via %s\n", *movie, *servers)

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/debug/vod", reg)
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("debug counters at http://%s/debug/vod\n", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()

	commands := make(chan string, 1)
	go func() {
		// Stdin may be closed (piped deployments); the goroutine then
		// simply ends and playback continues without interactive control.
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			commands <- strings.TrimSpace(scanner.Text())
		}
	}()

	start := time.Now()
	seekDone := *seek == 0
	for {
		select {
		case <-stop:
			fmt.Println("\nbye")
			return nil
		case cmd := <-commands:
			if err := applyVCR(c, cmd); err != nil {
				fmt.Println("?", err)
			}
			if cmd == "stop" {
				return nil
			}
		case <-ticker.C:
			if !seekDone && time.Since(start) > 5*time.Second {
				seekDone = true
				fmt.Printf("-- seeking to frame %d --\n", *seek)
				if err := c.Seek(uint32(*seek)); err != nil {
					return err
				}
			}
			cnt := c.Counters()
			occ := c.Occupancy()
			fmt.Printf("%-9s displayed=%-5d sw=%-2d hw=%-6dB skipped=%-3d late=%-3d stalls=%-3d jitter=%-8s state=%s\n",
				time.Since(start).Truncate(time.Second), cnt.Displayed,
				occ.SoftwareFrames, occ.HardwareBytes, cnt.Skipped(), cnt.Late, cnt.Stalls,
				c.Jitter().Truncate(100*time.Microsecond), c.State())
			if c.State() == client.StateFinished {
				fmt.Println("movie finished")
				return nil
			}
		}
	}
}

// applyVCR executes one interactive command.
func applyVCR(c *client.Client, cmd string) error {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return nil
	}
	arg := func() (uint64, error) {
		if len(fields) < 2 {
			return 0, fmt.Errorf("%s needs an argument", fields[0])
		}
		return strconv.ParseUint(fields[1], 10, 32)
	}
	switch fields[0] {
	case "pause":
		return c.Pause()
	case "resume":
		return c.Resume()
	case "seek":
		n, err := arg()
		if err != nil {
			return err
		}
		return c.Seek(uint32(n))
	case "quality":
		n, err := arg()
		if err != nil {
			return err
		}
		return c.SetQuality(uint16(n))
	case "stop":
		return c.StopWatching()
	default:
		return fmt.Errorf("unknown command %q (pause|resume|seek N|quality N|stop)", fields[0])
	}
}
