// UDP LAN: the same servers and client running over real UDP sockets on
// the loopback interface with the real clock — no simulation. Two servers
// stream a short movie; halfway through, the serving server is stopped and
// the survivor takes the client over, exactly as in the simulated runs.
//
// This example runs in real time (about 25 seconds).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mpeg"
	"repro/internal/store"
	"repro/internal/transport"
)

// udpNetwork adapts transport.ListenUDP to the transport.Network interface:
// each endpoint binds the UDP port named by its address.
type udpNetwork struct{}

func (udpNetwork) NewEndpoint(addr transport.Addr) (transport.Endpoint, error) {
	return transport.ListenUDP(string(addr), addr)
}

func main() {
	var (
		clk     clock.Real
		network udpNetwork
		servers = []string{"127.0.0.1:18701", "127.0.0.1:18702"}
	)
	movie := mpeg.Generate("short-feature", mpeg.StreamConfig{
		Duration: 30 * time.Second,
		Seed:     1,
	})

	running := make(map[string]*core.Server, len(servers))
	for _, id := range servers {
		cat := store.NewCatalog()
		cat.Add(movie)
		s, err := core.NewServer(core.ServerConfig{
			ID:      id,
			Clock:   clk,
			Network: network,
			Catalog: cat,
			Peers:   servers,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Start(); err != nil {
			log.Fatal(err)
		}
		defer s.Stop()
		running[id] = s
	}
	time.Sleep(time.Second) // let the server group form over loopback

	viewer, err := client.New(client.Config{
		ID:      "127.0.0.1:18710",
		Clock:   clk,
		Network: network,
		Servers: servers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Watch(movie.ID()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("streaming", movie, "over real UDP on loopback")

	servingServer := func() string {
		for id, s := range running {
			if len(s.ActiveSessions()) > 0 {
				return id
			}
		}
		return ""
	}

	for i := 0; i < 10; i++ {
		time.Sleep(time.Second)
		c := viewer.Counters()
		fmt.Printf("t=%2ds  displayed=%-4d buffered=%-3d skipped=%-2d served-by=%s\n",
			i+1, c.Displayed, viewer.Occupancy().CombinedFrames, c.Skipped(), servingServer())
	}

	victim := servingServer()
	fmt.Printf("\nstopping %s mid-stream ...\n\n", victim)
	running[victim].Stop()
	delete(running, victim)

	for i := 10; i < 20; i++ {
		time.Sleep(time.Second)
		c := viewer.Counters()
		fmt.Printf("t=%2ds  displayed=%-4d buffered=%-3d skipped=%-2d served-by=%s\n",
			i+1, c.Displayed, viewer.Occupancy().CombinedFrames, c.Skipped(), servingServer())
	}

	c := viewer.Counters()
	fmt.Printf("\nfinal: displayed=%d late=%d skipped=%d stalls=%d — failover on a real network\n",
		c.Displayed, c.Late, c.Skipped(), c.Stalls)
}
