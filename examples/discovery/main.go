// Discovery: clients find "the abstract VoD service" with no configuration
// beyond a directory address, via the CONGRESS-style group-address
// resolution service (the paper's references [3, 4]). Servers register
// under the server-group name with a TTL and refresh; clients resolve the
// name at startup. A server that dies simply expires from the directory.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/congress"
	"repro/internal/core"
	"repro/internal/netsim"
)

func main() {
	clk := clock.NewVirtual(time.Now())
	network := netsim.New(clk, 17, netsim.LAN())

	directory, err := congress.NewDirectory(clk, network, "directory")
	if err != nil {
		log.Fatal(err)
	}
	defer directory.Close()

	movie := core.GenerateMovie("casablanca", 60*time.Second, 1)
	deployment, err := core.Deploy(core.DeployOptions{
		Clock:     clk,
		Network:   network,
		Servers:   []string{"server-1", "server-2"},
		Movies:    []*core.Movie{movie},
		Directory: "directory",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Stop()

	clk.Advance(time.Second)
	fmt.Println("directory knows:", directory.Members("vod.servers"))

	// The client is configured with the directory only — it has never
	// heard of server-1 or server-2.
	viewer, err := core.NewClient(core.ClientConfig{
		ID:        "viewer-1",
		Clock:     clk,
		Network:   network,
		Directory: "directory",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Watch("casablanca"); err != nil {
		log.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	fmt.Printf("after 10s: state=%v displayed=%d served-by=%s\n",
		viewer.State(), viewer.Counters().Displayed, deployment.ServingServer("viewer-1"))

	// Kill a server: its registration expires from the directory within
	// one TTL, so future clients never see it.
	deployment.StopServer("server-1")
	clk.Advance(5 * time.Second)
	fmt.Println("after killing server-1, directory knows:", directory.Members("vod.servers"))
	fmt.Printf("viewer still fine: displayed=%d served-by=%s\n",
		viewer.Counters().Displayed, deployment.ServingServer("viewer-1"))
}
