// Failover: the paper's headline demonstration. A client watches a movie;
// mid-playback the server transmitting it is killed. The surviving replica
// detects the failure through the group membership service, takes the
// client over from the last synchronized offset, and refills the client's
// buffers with the decaying emergency burst — the viewer never notices.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/transport"
)

func main() {
	clk := clock.NewVirtual(time.Now())
	network := netsim.New(clk, 7, netsim.LAN())

	movie := core.GenerateMovie("casablanca", 90*time.Second, 1)
	deployment, err := core.Deploy(core.DeployOptions{
		Clock:   clk,
		Network: network,
		Servers: []string{"server-1", "server-2"},
		Movies:  []*core.Movie{movie},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Stop()
	clk.Advance(time.Second)

	viewer, err := deployment.NewClient("viewer-1")
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Watch("casablanca"); err != nil {
		log.Fatal(err)
	}

	clk.Advance(20 * time.Second)
	victim := deployment.ServingServer("viewer-1")
	before := viewer.Counters()
	fmt.Printf("t=20s   %s is serving the client — killing it now\n", victim)
	deployment.StopServer(victim)
	network.Crash(transport.Addr(victim))

	// Watch the takeover happen.
	for i := 0; i < 8; i++ {
		clk.Advance(250 * time.Millisecond)
		serving := deployment.ServingServer("viewer-1")
		occ := viewer.Occupancy()
		label := serving
		if label == "" {
			label = "(nobody — failure being detected)"
		}
		fmt.Printf("t=%vs  serving=%-36s buffered=%d frames\n",
			20.25+float64(i)*0.25, label, occ.CombinedFrames)
	}

	clk.Advance(15 * time.Second)
	after := viewer.Counters()
	fmt.Println()
	fmt.Printf("displayed across the failure window: %d frames\n", after.Displayed-before.Displayed)
	fmt.Printf("frames skipped:                      %d\n", after.Skipped()-before.Skipped())
	fmt.Printf("duplicate (late) frames:             %d  (the new server conservatively\n", after.Late-before.Late)
	fmt.Println("                                         re-sent the ≤0.5s sync gap)")
	fmt.Printf("display stalls:                      %d\n", after.Stalls-before.Stalls)
	fmt.Println("\nthe transition is invisible to a human observer (paper §6.1).")
}
