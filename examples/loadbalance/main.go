// Load balancing: "new servers may be brought up on the fly to alleviate
// the load on other servers" (§1). Six clients watch the same movie from
// two servers; a third, fresh server is brought up mid-stream. The movie
// group's membership change triggers a knowledge exchange and a
// deterministic re-distribution, and the newcomer absorbs its share of the
// clients — transparently to every viewer.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
)

func main() {
	clk := clock.NewVirtual(time.Now())
	network := netsim.New(clk, 11, netsim.LAN())

	movie := core.GenerateMovie("casablanca", 120*time.Second, 1)
	deployment, err := core.Deploy(core.DeployOptions{
		Clock:      clk,
		Network:    network,
		Servers:    []string{"server-1", "server-2"},
		ExtraPeers: []string{"server-3"}, // may join later
		Movies:     []*core.Movie{movie},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Stop()
	clk.Advance(time.Second)

	var viewers []*core.Client
	for i := 1; i <= 6; i++ {
		v, err := deployment.NewClient(fmt.Sprintf("viewer-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		defer v.Close()
		if err := v.Watch("casablanca"); err != nil {
			log.Fatal(err)
		}
		viewers = append(viewers, v)
		clk.Advance(200 * time.Millisecond)
	}
	clk.Advance(10 * time.Second)

	printLoad := func(when string) {
		load := map[string]int{}
		for _, id := range deployment.ServerIDs() {
			load[id] = len(deployment.Server(id).ActiveSessions())
		}
		keys := make([]string, 0, len(load))
		for k := range load {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("%-28s", when)
		for _, k := range keys {
			fmt.Printf("  %s: %d clients", k, load[k])
		}
		fmt.Println()
	}

	printLoad("before (2 servers):")
	fmt.Println("\nbringing up server-3 to alleviate the load ...")
	if err := deployment.AddServer("server-3"); err != nil {
		log.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	printLoad("after (3 servers):")

	// No viewer noticed.
	clk.Advance(10 * time.Second)
	fmt.Println()
	for _, v := range viewers {
		c := v.Counters()
		fmt.Printf("%s: displayed=%d skipped=%d late=%d stalls=%d\n",
			v.ID(), c.Displayed, c.Skipped(), c.Late, c.Stalls)
	}
}
